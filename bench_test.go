package repro

// One benchmark per table and figure of the paper (plus the ablations and
// the substrate micro-benchmarks). Each artifact benchmark regenerates its
// experiment end to end in Quick mode, so `go test -bench=.` is a full,
// timed reproduction pass.

import (
	"io"
	"testing"

	"repro/internal/benches"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
)

// --- Suite-level execution: serial baseline vs concurrent engine ---
//
// Run both with `go test -bench='RunAll' -benchtime=1x` to compare. The
// experiments are independent, so with GOMAXPROCS >= 4 the engine's
// wall-clock time should beat the serial baseline by >= 2x (cfg.Workers
// is pinned to 1 in both so inner sweeps don't contend for the same
// cores the engine is fanning experiments out onto).

// BenchmarkRunAllSerial is the serial baseline: core.RunAll in Quick mode.
func BenchmarkRunAllSerial(b *testing.B) {
	cfg := core.Config{Seed: 2004, Quick: true, Workers: 1}
	for i := 0; i < b.N; i++ {
		outs, err := core.RunAll(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for id, o := range outs {
			if failed := o.Failed(); len(failed) > 0 {
				b.Fatalf("%s: check failed: %+v", id, failed[0])
			}
		}
	}
}

// BenchmarkEngineRunAll regenerates the same suite through the concurrent
// engine.
func BenchmarkEngineRunAll(b *testing.B) {
	cfg := core.Config{Seed: 2004, Quick: true, Workers: 1}
	eng := engine.New(engine.Options{})
	for i := 0; i < b.N; i++ {
		results, err := eng.RunAll(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if failed := r.Outcome.Failed(); len(failed) > 0 {
				b.Fatalf("%s: check failed: %+v", r.ID, failed[0])
			}
		}
	}
}

// BenchmarkEngineReplicated measures a 4-replication aggregated pass over
// a representative experiment.
func BenchmarkEngineReplicated(b *testing.B) {
	e, err := core.Find("fig12")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Seed: 2004, Quick: true, Workers: 1}
	eng := engine.New(engine.Options{Replications: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(cfg, []*core.Experiment{e}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchExperiment regenerates one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := core.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Seed: 2004, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := e.Run(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if failed := o.Failed(); len(failed) > 0 {
			b.Fatalf("%s: check failed: %+v", id, failed[0])
		}
	}
}

// --- Paper artifacts ---

func BenchmarkTable1Params(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkFig4Timeline(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig9Migration(b *testing.B)      { benchExperiment(b, "fig9") }
func BenchmarkFig5Gain(b *testing.B)           { benchExperiment(b, "fig5") }
func BenchmarkFig6ResponseTime(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7Analytic(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkAccuracyBand(b *testing.B)       { benchExperiment(b, "accuracy") }
func BenchmarkFig11LatencyHiding(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12IdleTime(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkBandwidthClaims(b *testing.B)    { benchExperiment(b, "bandwidth") }
func BenchmarkSensitivity(b *testing.B)        { benchExperiment(b, "sensitivity") }
func BenchmarkReplication(b *testing.B)        { benchExperiment(b, "replication") }
func BenchmarkCombinedHybrid(b *testing.B)     { benchExperiment(b, "combined") }

// --- Ablations ---

func BenchmarkAblationControlPolicy(b *testing.B) { benchExperiment(b, "ablation-control") }
func BenchmarkAblationOverhead(b *testing.B)      { benchExperiment(b, "ablation-overhead") }
func BenchmarkAblationTopology(b *testing.B)      { benchExperiment(b, "ablation-topology") }
func BenchmarkAblationCache(b *testing.B)         { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationOverlap(b *testing.B)       { benchExperiment(b, "ablation-overlap") }
func BenchmarkAblationDRAM(b *testing.B)          { benchExperiment(b, "ablation-dram") }
func BenchmarkAblationHotspot(b *testing.B)       { benchExperiment(b, "ablation-hotspot") }
func BenchmarkAblationMTControl(b *testing.B)     { benchExperiment(b, "ablation-mtcontrol") }

// --- Substrate micro-benchmarks ---

// BenchmarkKernelEventThroughput measures raw event scheduling and
// dispatch (no processes).
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := sim.NewKernel()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.Schedule(1, tick)
		}
	}
	b.ResetTimer()
	k.Schedule(1, tick)
	if _, err := k.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelProcessSwitch measures the goroutine handoff cost of one
// process Wait.
func BenchmarkKernelProcessSwitch(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("p", func(c *sim.Context) {
		for i := 0; i < b.N; i++ {
			c.Wait(1)
		}
	})
	b.ResetTimer()
	if _, err := k.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
}

// The model-level micro-benchmarks delegate to internal/benches — the
// same drivers cmd/pimbench records into BENCH_<n>.json, so the workload
// behind each trajectory name cannot fork.

func BenchmarkMM1Simulation(b *testing.B)   { benches.MM1Simulation(b) }
func BenchmarkHostPIMSimulate(b *testing.B) { benches.HostPIMSimulate(b) }
func BenchmarkParcelSysRun(b *testing.B)    { benches.ParcelSysRun(b) }
func BenchmarkSimParcel1K(b *testing.B)     { benches.SimParcel1K(b) }
func BenchmarkSimParcelPar(b *testing.B)    { benches.SimParcelPar(b) }
func BenchmarkMachineGUPS(b *testing.B)     { benches.MachineGUPS(b) }
func BenchmarkMachineGUPS256(b *testing.B)  { benches.MachineGUPS256(b) }
func BenchmarkMachineGUPSPar(b *testing.B)  { benches.MachineGUPSPar(b) }
func BenchmarkMachineDecode(b *testing.B)   { benches.MachineDecode(b) }

func BenchmarkMachineFaultTreeSum(b *testing.B) { benches.MachineFaultTreeSum(b) }

func BenchmarkServeSpecDecode(b *testing.B) { benches.ServeSpecDecode(b) }
func BenchmarkServeRoundTrip(b *testing.B)  { benches.ServeRoundTrip(b) }
