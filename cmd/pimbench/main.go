// Command pimbench records the repository's performance trajectory: it
// times the full artifact suite (every registered experiment, Quick mode,
// through both the serial path and the concurrent engine) plus the
// substrate micro-benchmarks (event queue, process handoff, the two DES
// models, M/M/1 throughput), and writes a machine-readable BENCH_<n>.json
// snapshot — ns/op, allocs/op, suite wall-clock, git SHA — next to the
// previous ones, so every PR appends a point to a measured perf history
// instead of asserting speedups in prose.
//
// Usage:
//
//	go run ./cmd/pimbench                      # append BENCH_<n+1>.json in .
//	go run ./cmd/pimbench -dir out             # scan/write snapshots in out/
//	go run ./cmd/pimbench -o current.json      # explicit output path
//	go run ./cmd/pimbench -against BENCH_1.json -maxregress 0.25
//	go run ./cmd/pimbench -compare BENCH_1.json -suite=false
//	go run ./cmd/pimbench -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With -against, pimbench compares the new suite wall-clock to the given
// snapshot and exits non-zero when it regresses by more than -maxregress
// (CI uses this as the perf gate). -compare prints per-benchmark ns/op
// and allocs/op deltas against a previous snapshot with no gate — the
// tool for eyeballing a work-in-progress optimisation; a bare -compare
// run writes no snapshot (add -o to keep one). -micros=false and
// -suite=false cut the run down for smoke tests; -cpuprofile/-memprofile
// write pprof profiles of the measured run for drilling into a
// regression the trajectory surfaces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/benches"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
)

// Record is one measured benchmark.
type Record struct {
	// Name identifies the measurement ("micro/kernel_schedule",
	// "experiment/fig5", ...).
	Name string `json:"name"`
	// NsPerOp is nanoseconds per operation (for experiments: per full
	// Quick-mode regeneration).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are reported for micro-benchmarks
	// (testing.Benchmark); -1 when not measured.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// Snapshot is one BENCH_<n>.json file.
type Snapshot struct {
	Schema    int    `json:"schema"`
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Timestamp string `json:"timestamp"`
	// SuiteWallClockSec is the wall-clock of one serial Quick-mode pass
	// over every registered experiment — the regression-gate metric.
	SuiteWallClockSec float64 `json:"suite_wall_clock_sec"`
	// EngineWallClockSec is the same suite through the concurrent engine.
	EngineWallClockSec float64 `json:"engine_wall_clock_sec"`
	// CalibrationSec times a fixed, code-stable CPU workload on this
	// machine. The regression gate divides suite wall-clock by it, so
	// snapshots from machines of different speeds (a laptop baseline vs a
	// CI runner) compare work, not hardware.
	CalibrationSec float64  `json:"calibration_sec"`
	Benchmarks     []Record `json:"benchmarks"`
}

// calibrationSink defeats dead-code elimination of the calibration loop.
var calibrationSink uint64

// calibrate times a fixed SplitMix64 loop. The loop is deliberately not
// simulation code: optimizing the kernel must move the gate metric, while
// a faster or slower host moves calibration and suite together.
func calibrate() float64 {
	const steps = 200_000_000
	sm := rng.SplitMix64{State: 1}
	start := time.Now()
	var sink uint64
	for i := 0; i < steps; i++ {
		sink ^= sm.Next()
	}
	calibrationSink = sink
	return time.Since(start).Seconds()
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pimbench", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory holding BENCH_<n>.json snapshots")
	outPath := fs.String("o", "", "explicit output file (default: next BENCH_<n>.json in -dir)")
	seed := fs.Uint64("seed", 2004, "suite seed")
	micros := fs.Bool("micros", true, "run the substrate micro-benchmarks")
	suite := fs.Bool("suite", true, "run the artifact suite")
	against := fs.String("against", "", "baseline snapshot to compare the suite wall-clock to")
	maxRegress := fs.Float64("maxregress", 0.25, "max tolerated suite wall-clock regression vs -against")
	compareTo := fs.String("compare", "", "previous snapshot: print ns/op and allocs/op deltas, no gate")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the measured run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the measured run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	snap := Snapshot{
		Schema:    1,
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	if *suite {
		snap.CalibrationSec = calibrate()
		fmt.Fprintf(out, "calibration: %.3fs\n", snap.CalibrationSec)
		serial, engineWall, records, err := measureSuite(*seed, out)
		if err != nil {
			return err
		}
		snap.SuiteWallClockSec = serial
		snap.EngineWallClockSec = engineWall
		snap.Benchmarks = append(snap.Benchmarks, records...)
	}
	if *micros {
		snap.Benchmarks = append(snap.Benchmarks, measureMicros(out)...)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	path := *outPath
	if path == "" && *compareTo != "" && *against == "" {
		// A bare -compare is an eyeballing flow: don't litter the snapshot
		// directory with a partial numbered BENCH_<n>.json (a stray one
		// would become the CI gate's baseline). Pass -o to keep the run.
		path = "-"
	}
	if path == "" {
		next, err := nextIndex(*dir)
		if err != nil {
			return err
		}
		path = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", next))
	}
	if path != "-" {
		if err := writeSnapshot(path, snap); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (suite %.2fs, engine %.2fs, %d benchmarks, sha %s)\n",
			path, snap.SuiteWallClockSec, snap.EngineWallClockSec, len(snap.Benchmarks), snap.GitSHA)
	}

	if *compareTo != "" {
		base, err := readSnapshot(*compareTo)
		if err != nil {
			return err
		}
		printDeltas(out, base, snap)
	}
	if *against != "" {
		base, err := readSnapshot(*against)
		if err != nil {
			return err
		}
		return compare(out, base, snap, *maxRegress)
	}
	return nil
}

// printDeltas prints per-benchmark ns/op and allocs/op deltas of the new
// snapshot against a previous one — purely informational, no gate.
func printDeltas(out io.Writer, base, cur Snapshot) {
	type baseRec struct {
		ns     float64
		allocs int64
	}
	prev := make(map[string]baseRec, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		prev[r.Name] = baseRec{ns: r.NsPerOp, allocs: r.AllocsPerOp}
	}
	fmt.Fprintf(out, "deltas vs %s (%s):\n", base.GitSHA, base.Timestamp)
	fmt.Fprintf(out, "%-26s %14s %12s %14s %12s\n", "benchmark", "ns/op", "Δns/op", "allocs/op", "Δallocs")
	for _, r := range cur.Benchmarks {
		b, ok := prev[r.Name]
		if !ok {
			fmt.Fprintf(out, "%-26s %14.1f %12s %14d %12s\n", r.Name, r.NsPerOp, "(new)", r.AllocsPerOp, "")
			continue
		}
		delete(prev, r.Name)
		dns := "n/a"
		if b.ns > 0 {
			dns = fmt.Sprintf("%+.1f%%", (r.NsPerOp/b.ns-1)*100)
		}
		dal := ""
		if r.AllocsPerOp >= 0 && b.allocs >= 0 {
			dal = fmt.Sprintf("%+d", r.AllocsPerOp-b.allocs)
		}
		fmt.Fprintf(out, "%-26s %14.1f %12s %14d %12s\n", r.Name, r.NsPerOp, dns, r.AllocsPerOp, dal)
	}
	// Anything left in prev was measured in the baseline but not now.
	for _, r := range base.Benchmarks {
		if _, dropped := prev[r.Name]; dropped {
			fmt.Fprintf(out, "%-26s dropped (was %.1f ns/op)\n", r.Name, r.NsPerOp)
		}
	}
}

// measureSuite regenerates every registered experiment once in Quick mode
// — serially (per-experiment timings and the gate metric) and through the
// concurrent engine.
func measureSuite(seed uint64, out io.Writer) (serialSec, engineSec float64, records []Record, err error) {
	cfg := core.Config{Seed: seed, Quick: true, Workers: 1}
	start := time.Now()
	for _, exp := range core.Registry() {
		t0 := time.Now()
		o, rerr := exp.Run(cfg, io.Discard)
		if rerr != nil {
			return 0, 0, nil, fmt.Errorf("%s: %w", exp.ID, rerr)
		}
		if failed := o.Failed(); len(failed) > 0 {
			return 0, 0, nil, fmt.Errorf("%s: check failed: %+v", exp.ID, failed[0])
		}
		records = append(records, Record{
			Name:        "experiment/" + exp.ID,
			NsPerOp:     float64(time.Since(t0).Nanoseconds()),
			AllocsPerOp: -1,
			BytesPerOp:  -1,
		})
	}
	serialSec = time.Since(start).Seconds()
	fmt.Fprintf(out, "suite (serial, quick): %.2fs over %d experiments\n", serialSec, len(records))

	start = time.Now()
	eng := engine.New(engine.Options{})
	results, rerr := eng.RunAll(cfg)
	if rerr != nil {
		return 0, 0, nil, rerr
	}
	for _, r := range results {
		if failed := r.Outcome.Failed(); len(failed) > 0 {
			return 0, 0, nil, fmt.Errorf("%s: check failed: %+v", r.ID, failed[0])
		}
	}
	engineSec = time.Since(start).Seconds()
	fmt.Fprintf(out, "suite (engine, quick): %.2fs\n", engineSec)
	return serialSec, engineSec, records, nil
}

// microBenchmarks is the substrate micro-benchmark suite. Names are part
// of the snapshot schema: the trajectory is only comparable across
// BENCH_<n>.json files if both the names and the workloads stay put —
// the drivers live in internal/benches, shared with the in-repo `go test
// -bench` benchmarks, so the two measurements cannot fork.
var microBenchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"kernel_schedule", benches.KernelSchedule},
	{"kernel_wait_resume", benches.KernelWaitResume},
	{"kernel_handoff_chain", benches.KernelHandoffChain},
	{"kernel_activity_chain", benches.KernelActivityChain},
	{"mm1_simulation", benches.MM1Simulation},
	{"hostpim_simulate", benches.HostPIMSimulate},
	{"parcelsys_run", benches.ParcelSysRun},
	{"sim_parcel_1k", benches.SimParcel1K},
	{"sim_parcel_par", benches.SimParcelPar},
	{"machine_gups", benches.MachineGUPS},
	{"machine_gups_256", benches.MachineGUPS256},
	{"machine_gups_par", benches.MachineGUPSPar},
	{"machine_decode", benches.MachineDecode},
	{"machine_fault_treesum", benches.MachineFaultTreeSum},
	{"serve_decode", benches.ServeSpecDecode},
	{"serve_roundtrip", benches.ServeRoundTrip},
}

// measureMicros runs the substrate micro-benchmarks through
// testing.Benchmark.
func measureMicros(out io.Writer) []Record {
	records := make([]Record, 0, len(microBenchmarks))
	for _, m := range microBenchmarks {
		r := testing.Benchmark(m.fn)
		rec := Record{
			Name:        "micro/" + m.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(out, "%-26s %12.1f ns/op %8d allocs/op\n", rec.Name, rec.NsPerOp, rec.AllocsPerOp)
		records = append(records, rec)
	}
	return records
}

// benchIndexRe matches committed snapshot names.
var benchIndexRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextIndex returns 1 + the highest BENCH_<n>.json index in dir.
func nextIndex(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, e := range entries {
		m := benchIndexRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n > max {
			max = n
		}
	}
	return max + 1, nil
}

func writeSnapshot(path string, s Snapshot) error {
	sort.Slice(s.Benchmarks, func(i, j int) bool { return s.Benchmarks[i].Name < s.Benchmarks[j].Name })
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compare gates the suite wall-clock against a baseline snapshot and
// prints per-benchmark deltas for context.
func compare(out io.Writer, base, cur Snapshot, maxRegress float64) error {
	baseNs := make(map[string]float64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseNs[r.Name] = r.NsPerOp
	}
	for _, r := range cur.Benchmarks {
		if b, ok := baseNs[r.Name]; ok && b > 0 {
			fmt.Fprintf(out, "%-26s %+7.1f%% vs baseline\n", r.Name, (r.NsPerOp/b-1)*100)
		}
	}
	if base.SuiteWallClockSec <= 0 || cur.SuiteWallClockSec <= 0 {
		fmt.Fprintln(out, "no suite wall-clock on one side; skipping the gate")
		return nil
	}
	if base.GoVersion != cur.GoVersion {
		// Different compilers optimize the suite and the calibration loop
		// differently, so the ratio would gate on codegen, not code.
		fmt.Fprintf(out, "toolchain mismatch (%s vs baseline %s); comparison is informational, skipping the gate\n",
			cur.GoVersion, base.GoVersion)
		return nil
	}
	baseMetric, curMetric := base.SuiteWallClockSec, cur.SuiteWallClockSec
	metric := "suite wall-clock"
	if base.CalibrationSec > 0 && cur.CalibrationSec > 0 {
		// Normalize by each machine's calibration so the gate measures
		// suite work, not host speed (the baseline and the CI runner are
		// different hardware).
		baseMetric /= base.CalibrationSec
		curMetric /= cur.CalibrationSec
		metric = "calibrated suite time"
	}
	ratio := curMetric / baseMetric
	fmt.Fprintf(out, "%s: %.2f vs baseline %.2f (%+.1f%%; gate %+.0f%%)\n",
		metric, curMetric, baseMetric, (ratio-1)*100, maxRegress*100)
	if ratio > 1+maxRegress {
		return fmt.Errorf("%s regressed %.1f%% (> %.0f%% gate) vs baseline %s",
			metric, (ratio-1)*100, maxRegress*100, base.GitSHA)
	}
	return nil
}

// gitSHA returns the current commit hash, or "unknown" outside a git
// checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := string(out)
	for len(sha) > 0 && (sha[len(sha)-1] == '\n' || sha[len(sha)-1] == '\r') {
		sha = sha[:len(sha)-1]
	}
	return sha
}
