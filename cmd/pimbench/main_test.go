package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs skips the artifact suite and micro-benchmarks so the CLI
// plumbing (snapshot naming, JSON shape, the gate) tests in milliseconds.
func fastArgs(extra ...string) []string {
	return append([]string{"-suite=false", "-micros=false"}, extra...)
}

func TestSnapshotNamingAndShape(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(fastArgs("-dir", dir), &out); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, "BENCH_1.json")
	if _, err := os.Stat(first); err != nil {
		t.Fatalf("first snapshot not at BENCH_1.json: %v", err)
	}
	// The next run appends BENCH_2.json.
	if err := run(fastArgs("-dir", dir), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Fatalf("second snapshot not at BENCH_2.json: %v", err)
	}
	s, err := readSnapshot(first)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != 1 || s.GOOS == "" || s.GOARCH == "" || s.GoVersion == "" {
		t.Fatalf("snapshot missing identity fields: %+v", s)
	}
}

func TestExplicitOutputPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "current.json")
	var out bytes.Buffer
	if err := run(fastArgs("-o", path), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := writeSnapshot(base, Snapshot{Schema: 1, GitSHA: "base", SuiteWallClockSec: 10}); err != nil {
		t.Fatal(err)
	}

	// A faster current run passes the gate.
	fast := Snapshot{Schema: 1, SuiteWallClockSec: 9}
	var out bytes.Buffer
	b, err := readSnapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := compare(&out, b, fast, 0.25); err != nil {
		t.Fatalf("faster run failed the gate: %v", err)
	}

	// A >25% slower run fails it.
	slow := Snapshot{Schema: 1, SuiteWallClockSec: 13}
	if err := compare(&out, b, slow, 0.25); err == nil {
		t.Fatal("30% regression passed the 25% gate")
	} else if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// With calibration on both sides, the gate is hardware-normalized: a
	// run twice as slow on a machine twice as slow is not a regression...
	calBase := Snapshot{Schema: 1, SuiteWallClockSec: 10, CalibrationSec: 1}
	slowHost := Snapshot{Schema: 1, SuiteWallClockSec: 20, CalibrationSec: 2}
	if err := compare(&out, calBase, slowHost, 0.25); err != nil {
		t.Fatalf("hardware-normalized gate tripped on a slower host: %v", err)
	}
	// ...while more work at equal calibration still is.
	moreWork := Snapshot{Schema: 1, SuiteWallClockSec: 13, CalibrationSec: 1}
	if err := compare(&out, calBase, moreWork, 0.25); err == nil {
		t.Fatal("calibrated 30% regression passed the 25% gate")
	}

	// A toolchain mismatch downgrades the gate to informational: codegen
	// differences are not code regressions.
	otherGo := Snapshot{Schema: 1, SuiteWallClockSec: 20, CalibrationSec: 1, GoVersion: "go1.99"}
	out.Reset()
	if err := compare(&out, calBase, otherGo, 0.25); err != nil {
		t.Fatalf("gate tripped across toolchains: %v", err)
	}
	if !strings.Contains(out.String(), "toolchain mismatch") {
		t.Fatalf("expected toolchain-mismatch notice, got:\n%s", out.String())
	}

	// End to end through the CLI: a no-suite run has no wall-clock, so the
	// gate is skipped rather than tripped.
	if err := run(fastArgs("-o", filepath.Join(dir, "cur.json"), "-against", base), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipping the gate") {
		t.Fatalf("expected gate skip notice, got:\n%s", out.String())
	}
}

func TestMicroBenchNamesStable(t *testing.T) {
	// The trajectory is only comparable across snapshots if the names stay
	// put; pin them.
	want := []string{
		"kernel_schedule",
		"kernel_wait_resume",
		"kernel_handoff_chain",
		"kernel_activity_chain",
		"mm1_simulation",
		"hostpim_simulate",
		"parcelsys_run",
		"sim_parcel_1k",
		"sim_parcel_par",
		"machine_gups",
		"machine_gups_256",
		"machine_gups_par",
		"machine_decode",
		"machine_fault_treesum",
		"serve_decode",
		"serve_roundtrip",
	}
	if len(microBenchmarks) != len(want) {
		t.Fatalf("micro suite has %d benchmarks, want %d — extend this pin, never rename", len(microBenchmarks), len(want))
	}
	for i, m := range microBenchmarks {
		if m.name != want[i] {
			t.Fatalf("micro %d named %s, want %s", i, m.name, want[i])
		}
	}
}
