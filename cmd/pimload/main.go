// Command pimload is a deterministic open-arrival load generator for
// pimserve: it schedules requests from a seeded Poisson or bursty MMPP
// arrival process (internal/queueing), fires them at the daemon without
// waiting for earlier responses (open arrivals — exactly the pattern that
// exposes queueing collapse), and reports the latency distribution and
// the server's degradation behavior: shed rate, coalescing, cache hits.
//
// Usage:
//
//	pimload -addr HOST:PORT [flags]
//
// Flags:
//
//	-addr ADDR        daemon address (host:port or http://... URL)
//	-requests N       how many requests to send (default 1000)
//	-rate R           mean arrival rate, requests/second (default 200)
//	-shape NAME       arrival process: poisson or mmpp (default poisson)
//	-burst R          MMPP burst-state rate (default 10x -rate)
//	-dwell D          MMPP mean dwell in the base state (default 1s)
//	-burstdwell D     MMPP mean dwell in the burst state (default 100ms)
//	-seed N           arrival-schedule seed (default 1)
//	-preset NAME      scenario preset to request (default paper-baseline)
//	-backend NAME     backend to request ("" = server picks)
//	-field k=v        field override, repeatable
//	-quick            request quick mode (default true)
//	-seedpool N       cycle request seeds through N values (default 16;
//	                  duplicates drive coalescing and cache hits)
//	-replications N   replications per request (default 1)
//	-timeout D        per-request deadline sent as timeout_ms (default 10s)
//	-json             emit the report as JSON
//
// Exit status is 0 as long as the load completed and every response was
// either a success or a deliberate overload response (429/503/504); any
// transport failure or 4xx/5xx outside that contract fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimload:", err)
		os.Exit(1)
	}
}

// fieldFlags collects repeatable -field k=v overrides.
type fieldFlags map[string]float64

func (f fieldFlags) String() string { return fmt.Sprint(map[string]float64(f)) }
func (f fieldFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	f[k] = x
	return nil
}

// Report is the end-of-run summary (also the -json payload).
type Report struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`      // 429 + 503
	Deadlined int     `json:"deadlined"` // 504
	Errors    int     `json:"errors"`    // anything else
	Coalesced int     `json:"coalesced"`
	CacheHits int     `json:"cache_hits"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
	ShedRate  float64 `json:"shed_rate"`
	HitRate   float64 `json:"cache_hit_rate"` // of OK responses
	ElapsedS  float64 `json:"elapsed_s"`
	RateSent  float64 `json:"rate_sent"` // achieved send rate
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pimload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "daemon address (host:port or URL)")
	requests := fs.Int("requests", 1000, "requests to send")
	rate := fs.Float64("rate", 200, "mean arrival rate (req/s)")
	shape := fs.String("shape", "poisson", "arrival process: poisson or mmpp")
	burst := fs.Float64("burst", 0, "MMPP burst rate (0 = 10x -rate)")
	dwell := fs.Duration("dwell", time.Second, "MMPP base-state mean dwell")
	burstDwell := fs.Duration("burstdwell", 100*time.Millisecond, "MMPP burst-state mean dwell")
	seed := fs.Uint64("seed", 1, "arrival-schedule seed")
	preset := fs.String("preset", "paper-baseline", "scenario preset")
	backend := fs.String("backend", "", "backend (empty = server picks)")
	quick := fs.Bool("quick", true, "request quick mode")
	seedPool := fs.Int("seedpool", 16, "cycle request seeds through N values")
	replications := fs.Int("replications", 1, "replications per request")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	fields := fieldFlags{}
	fs.Var(fields, "field", "field override name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests <= 0 {
		return fmt.Errorf("-requests %d: want > 0", *requests)
	}
	if *seedPool <= 0 {
		return fmt.Errorf("-seedpool %d: want > 0", *seedPool)
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	var arrivals queueing.ArrivalProcess
	var err error
	switch *shape {
	case "poisson":
		arrivals, err = queueing.NewPoissonArrivals(*rate, rng.NewWithStream(*seed, 1))
	case "mmpp":
		b := *burst
		if b == 0 {
			b = 10 * *rate
		}
		arrivals, err = queueing.NewMMPPArrivals(*rate, b,
			dwell.Seconds(), burstDwell.Seconds(), rng.NewWithStream(*seed, 1))
	default:
		return fmt.Errorf("-shape %q: want poisson or mmpp", *shape)
	}
	if err != nil {
		return err
	}

	// Pre-build the request bodies so the send loop does no marshaling.
	// Request i reuses seed i mod seedpool: a pool much smaller than the
	// request count guarantees duplicates, which is what exercises the
	// server's coalescing and cache paths.
	bodies := make([][]byte, *requests)
	for i := range bodies {
		sp := scenario.Spec{
			Preset:       *preset,
			Backend:      *backend,
			Seed:         *seed + uint64(i%*seedPool),
			Quick:        *quick,
			Replications: *replications,
			TimeoutMS:    int(timeout.Milliseconds()),
		}
		if len(fields) > 0 {
			sp.Fields = fields
		}
		b, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	client := &http.Client{Timeout: *timeout + 5*time.Second}
	type outcome struct {
		status    int
		latency   time.Duration
		coalesced bool
		fromCache bool
		failed    error
	}
	outcomes := make([]outcome, *requests)
	var wg sync.WaitGroup

	start := time.Now()
	next := start
	for i := 0; i < *requests; i++ {
		next = next.Add(time.Duration(arrivals.Next() * float64(time.Second)))
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(base+"/run", "application/json",
				strings.NewReader(string(bodies[i])))
			if err != nil {
				outcomes[i] = outcome{failed: err}
				return
			}
			var rr serve.RunResponse
			dec := json.NewDecoder(resp.Body)
			decErr := dec.Decode(&rr)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if decErr != nil {
				outcomes[i] = outcome{failed: fmt.Errorf("bad response body: %w", decErr)}
				return
			}
			outcomes[i] = outcome{
				status:    resp.StatusCode,
				latency:   time.Since(t0),
				coalesced: rr.Coalesced,
				fromCache: rr.FromCache,
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Requests: *requests, ElapsedS: elapsed.Seconds()}
	if elapsed > 0 {
		rep.RateSent = float64(*requests) / elapsed.Seconds()
	}
	var latencies []float64
	var firstErr error
	for _, o := range outcomes {
		if o.failed != nil {
			rep.Errors++
			if firstErr == nil {
				firstErr = o.failed
			}
			continue
		}
		switch o.status {
		case http.StatusOK:
			rep.OK++
			latencies = append(latencies, float64(o.latency)/float64(time.Millisecond))
			if o.fromCache {
				rep.CacheHits++
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rep.Shed++
		case http.StatusGatewayTimeout:
			rep.Deadlined++
		default:
			rep.Errors++
			if firstErr == nil {
				firstErr = fmt.Errorf("unexpected status %d", o.status)
			}
		}
		if o.coalesced {
			rep.Coalesced++
		}
	}
	rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	if rep.OK > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(rep.OK)
	}
	sort.Float64s(latencies)
	rep.P50MS = percentile(latencies, 0.50)
	rep.P99MS = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMS = latencies[n-1]
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		fmt.Fprintf(stdout, "pimload: %d requests in %.2fs (%.1f req/s sent, %s arrivals)\n",
			rep.Requests, rep.ElapsedS, rep.RateSent, *shape)
		fmt.Fprintf(stdout, "  ok %d  shed %d (%.1f%%)  deadlined %d  errors %d\n",
			rep.OK, rep.Shed, 100*rep.ShedRate, rep.Deadlined, rep.Errors)
		fmt.Fprintf(stdout, "  coalesced %d  cache hits %d (%.1f%% of ok)\n",
			rep.Coalesced, rep.CacheHits, 100*rep.HitRate)
		fmt.Fprintf(stdout, "  latency ms: p50 %.2f  p99 %.2f  max %.2f\n",
			rep.P50MS, rep.P99MS, rep.MaxMS)
	}
	if firstErr != nil {
		return fmt.Errorf("%d request(s) failed, first: %w", rep.Errors, firstErr)
	}
	return nil
}

// percentile reads the p-quantile from an ascending slice by nearest
// rank: the smallest value with at least p·n observations at or below it,
// index ceil(p·n)-1 clamped to the slice. The old floor-of-linear-index
// form under-read tail quantiles on small samples (p99 of 10 requests
// returned the 9th-of-10 latency, never the max).
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}
