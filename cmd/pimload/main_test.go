package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// loadServer runs an in-process pimserve core for the generator to hit.
func loadServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts.URL
}

func TestLoadAgainstServer(t *testing.T) {
	s, url := loadServer(t, serve.Options{})
	var out bytes.Buffer
	err := run([]string{
		"-addr", url,
		"-requests", "60",
		"-rate", "2000",
		"-seedpool", "4",
		"-preset", "machine-gups",
		"-field", "nodes=4", "-field", "updates=8",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad report %q: %v", out.String(), err)
	}
	if rep.OK+rep.Shed+rep.Deadlined != 60 || rep.Errors != 0 {
		t.Errorf("report = %+v", rep)
	}
	// 60 requests over 4 distinct seeds: nearly everything after the first
	// four is a coalesce or a cache hit.
	if rep.CacheHits+rep.Coalesced == 0 {
		t.Errorf("no duplicate-spec reuse observed: %+v", rep)
	}
	if m := s.Metrics(); m.Received != 60 {
		t.Errorf("server saw %d requests, want 60", m.Received)
	}
}

func TestLoadMMPPShedsUnderOverload(t *testing.T) {
	// One worker, depth-1 queue, a run stub is not reachable from here —
	// use a tiny real preset and a burst far beyond capacity instead.
	_, url := loadServer(t, serve.Options{Workers: 1, QueueDepth: 1})
	var out bytes.Buffer
	err := run([]string{
		"-addr", url,
		"-requests", "80",
		"-rate", "4000",
		"-shape", "mmpp",
		"-burstdwell", "50ms",
		"-seedpool", "80", // all-distinct specs: no coalescing relief
		"-preset", "machine-gups",
		"-field", "nodes=8", "-field", "updates=64",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("transport errors under overload: %+v", rep)
	}
	t.Logf("overload report: ok %d shed %d p99 %.2fms", rep.OK, rep.Shed, rep.P99MS)
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-requests", "0"},
		{"-seedpool", "0"},
		{"-shape", "fractal"},
		{"-field", "nodes"},
		{"-rate", "0"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReportAgainstDeadServer(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-requests", "3", "-rate", "1000"}, &out)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("err = %v, want transport failures reported", err)
	}
}

// TestPercentileNearestRank pins the nearest-rank definition
// (ceil(p*n)-1, clamped): the old floor-of-linear-index form under-read
// tail quantiles — p99 of 10 samples returned the 9th-of-10 value, never
// the max.
func TestPercentileNearestRank(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.99, 0},
		{"n=1 p50", []float64{42}, 0.50, 42},
		{"n=1 p99", []float64{42}, 0.99, 42},
		{"n=1 p100", []float64{42}, 1.0, 42},
		// The pinned regression: p99 of 10 samples is the max (rank
		// ceil(9.9) = 10), not the 9th-of-10 the old code returned.
		{"n=10 p99", ten, 0.99, 10},
		{"n=10 p100", ten, 1.0, 10},
		{"n=10 p50", ten, 0.50, 5},
		{"n=10 p90", ten, 0.90, 9},
		{"n=10 p0", ten, 0, 1},
		{"n=4 p50", []float64{1, 2, 3, 4}, 0.50, 2},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(%v, %g) = %g, want %g", c.name, c.sorted, c.p, got, c.want)
		}
	}
}
