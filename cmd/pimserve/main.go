// Command pimserve is the model-evaluation daemon: an HTTP/JSON service
// that accepts scenario specs (the internal/scenario wire format) and
// evaluates them through the engine on any registered backend.
//
// Usage:
//
//	pimserve [-addr HOST:PORT] [flags]
//
// Endpoints:
//
//	POST /run      {"preset":..., "backend":..., "fields":{...}, "seed":...,
//	               "quick":..., "replications":..., "timeout_ms":...}
//	GET  /healthz  liveness (200 while the process runs)
//	GET  /readyz   readiness (503 once draining)
//	GET  /metrics  JSON counters: admission, shedding, coalescing, cache
//
// Overload behavior: admission is a bounded queue; beyond it requests are
// shed with 429 and a Retry-After hint. Identical in-flight specs coalesce
// into one run, and completed runs are cached, so repeat specs are cheap.
// Every request runs under a deadline that propagates into the engine's
// watchdog and the backends' cooperative cancellation.
//
// On SIGTERM/SIGINT the daemon drains: it stops admitting work, finishes
// (or deadlines-out) what was admitted within -draintimeout, and exits 0
// on a clean drain.
//
// Flags:
//
//	-addr HOST:PORT   listen address (default 127.0.0.1:8080; port 0 picks
//	                  a free port and prints it)
//	-queue N          admission queue depth (default 64)
//	-workers N        concurrent runs (default GOMAXPROCS)
//	-timeout D        default per-request deadline (default 30s)
//	-maxtimeout D     cap on client-requested deadlines (default 5m)
//	-draintimeout D   budget for the shutdown drain (default 30s)
//	-retryafter D     Retry-After hint on 429/503 (default 1s)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stdout, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pimserve:", err)
		os.Exit(1)
	}
}

// run is the testable daemon body: it serves until sig delivers or the
// listener fails, then drains. ready, when non-nil, receives the bound
// address once the listener is up (how tests learn a port-0 choice).
func run(args []string, stdout io.Writer, sig <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("pimserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	queue := fs.Int("queue", 64, "admission queue depth")
	workers := fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("maxtimeout", 5*time.Minute, "cap on client-requested deadlines")
	drainTimeout := fs.Duration("draintimeout", 30*time.Second, "budget for the shutdown drain")
	retryAfter := fs.Duration("retryafter", time.Second, "Retry-After hint on 429/503")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Options{
		QueueDepth:     *queue,
		Workers:        *workers,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "pimserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	case s := <-sig:
		fmt.Fprintf(stdout, "pimserve: %v: draining\n", s)
	}

	// Drain order: first stop admitting runs (new /run requests get 503,
	// /readyz flips) and wait the admitted flights out, then shut the HTTP
	// layer down so every response is written before the listener dies.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("http shutdown: %w", err)
	}

	out, _ := json.Marshal(srv.Metrics())
	fmt.Fprintf(stdout, "pimserve: final metrics %s\n", out)
	if drainErr != nil {
		return drainErr
	}
	fmt.Fprintln(stdout, "pimserve: drained cleanly")
	return nil
}
