package main

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeAndDrain boots the daemon on a free port, runs a spec through
// it, then delivers SIGTERM and expects a clean (nil-error) drain.
func TestServeAndDrain(t *testing.T) {
	sig := make(chan os.Signal, 1)
	addrCh := make(chan string, 1)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0"}, &out, sig,
			func(a string) { addrCh <- a })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	body := `{"preset":"machine-gups","fields":{"nodes":4,"updates":8},"quick":true}`
	resp, err = http.Post(base+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), `"metrics"`) {
		t.Errorf("no metrics in response: %s", buf.String())
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never drained\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("missing drain confirmation in output:\n%s", out.String())
	}
}

func TestBadFlagRejected(t *testing.T) {
	sig := make(chan os.Signal)
	if err := run([]string{"-nope"}, &bytes.Buffer{}, sig, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListenFailure(t *testing.T) {
	if err := run([]string{"-addr", "256.0.0.1:bad"}, &bytes.Buffer{}, make(chan os.Signal), nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
