// Command pimstudy regenerates every table and figure of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (SC 2004) from
// the models in this repository. Experiments execute through the
// concurrent engine (internal/engine): independent artifacts run in
// parallel on a bounded worker pool with per-run buffered output, so the
// rendered stream is byte-identical to a serial pass.
//
// Usage:
//
//	pimstudy [flags] <experiment>|all|list
//	pimstudy -scenario <name>|all|list [-backend <name>|all] [flags]
//
// Experiments: table1, fig5, fig6, fig7, accuracy, fig11, fig12,
// bandwidth, ablation-control, ablation-overhead, ablation-topology,
// ablation-cache.
//
// Scenario mode runs a named machine+workload preset (internal/scenario)
// on one model backend — or on every backend that supports it, with
// cross-backend agreement checks. Backends: analytic, queueing, sim,
// hybrid, and machine (execution-driven: assembled ISA programs on the
// multi-node VM with DRAM row-buffer timing and network topologies).
// Scenario runs execute through the same engine, so -replications,
// -parallel, -json, and -csv all apply.
//
// Flags:
//
//	-seed N          random seed (default 2004)
//	-quick           reduced grids (seconds instead of minutes)
//	-workers N       per-experiment sweep parallelism (default GOMAXPROCS)
//	-parallel N      experiments run concurrently (default GOMAXPROCS)
//	-replications N  runs per experiment with derived seeds; metrics are
//	                 aggregated as mean / min / max / 95% CI (default 1)
//	-json            emit structured JSON instead of rendered artifacts
//	-progress        log per-replicate progress events to stderr
//	-csv DIR         also write each table as CSV into DIR
//	-scenario NAME   run a scenario preset (all = every preset, list = show them)
//	-backend NAME    model backend for -scenario (default all)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimstudy", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2004, "random seed")
	quick := fs.Bool("quick", false, "reduced grids for a fast pass")
	workers := fs.Int("workers", 0, "per-experiment sweep parallelism (0 = GOMAXPROCS, or 1 when several runs execute concurrently)")
	parallel := fs.Int("parallel", 0, "experiments run concurrently (0 = GOMAXPROCS)")
	replications := fs.Int("replications", 1, "runs per experiment with derived seeds")
	jsonOut := fs.Bool("json", false, "emit structured JSON")
	progress := fs.Bool("progress", false, "log progress events to stderr")
	csvDir := fs.String("csv", "", "write tables as CSV into this directory")
	scenarioName := fs.String("scenario", "", "run a scenario preset (all = every preset, list = show them)")
	backend := fs.String("backend", "all", "model backend for -scenario: analytic|queueing|sim|hybrid|machine|all")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pimstudy [flags] <experiment>|all|list\n")
		fmt.Fprintf(fs.Output(), "       pimstudy -scenario <name>|all|list [-backend <name>|all] [flags]\n\nexperiments:\n")
		for _, e := range core.Registry() {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(fs.Output(), "\nscenario presets (backends: %v):\n", scenario.BackendNames())
		for _, s := range scenario.Presets() {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", s.Name, s.About)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// engine.Run validates cfg before any experiment executes; validating
	// here too would probe CSVDir twice and as a side effect of pure
	// listing commands.
	cfg := core.Config{Seed: *seed, Quick: *quick, Workers: *workers, CSVDir: *csvDir}
	opts := engine.Options{Workers: *parallel, Replications: *replications}
	if *progress {
		opts.Events = func(ev engine.Event) {
			fmt.Fprintf(os.Stderr, "pimstudy: %s %s replicate %d/%d\n",
				ev.Kind, ev.ID, ev.Replicate+1, ev.Replications)
		}
	}
	if *scenarioName != "" {
		if fs.NArg() != 0 {
			fs.Usage()
			return fmt.Errorf("-scenario takes no experiment argument")
		}
		return runScenarioMode(cfg, opts, *scenarioName, *backend, *jsonOut)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment id")
	}

	switch id := fs.Arg(0); id {
	case "list":
		for _, e := range core.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.PaperClaim)
		}
		return nil
	case "all":
		return runExperiments(cfg, opts, core.Registry(), *jsonOut, true)
	default:
		e, err := core.Find(id)
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("%s — %s\npaper claim: %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return runExperiments(cfg, opts, []*core.Experiment{e}, *jsonOut, false)
	}
}

// runScenarioMode resolves -scenario/-backend into ad-hoc experiments and
// runs them through the engine like any registered artifact.
func runScenarioMode(cfg core.Config, opts engine.Options, name, backend string, jsonOut bool) error {
	if name == "list" {
		for _, s := range scenario.Presets() {
			var names []string
			for _, b := range scenario.SupportingBackends(s) {
				names = append(names, b.Name())
			}
			fmt.Printf("%-20s %-7s %v\n", s.Name, s.Kind(), names)
			fmt.Printf("%-20s %s\n", "", s.About)
		}
		return nil
	}
	var names []string
	if name == "all" {
		names = scenario.PresetNames()
	} else {
		names = []string{name}
	}
	exps := make([]*core.Experiment, 0, len(names))
	for _, n := range names {
		e, err := core.ScenarioExperiment(n, backend)
		if err != nil {
			return err
		}
		exps = append(exps, e)
	}
	return runExperiments(cfg, opts, exps, jsonOut, len(exps) > 1)
}

// runExperiments executes experiments through the engine, renders them,
// and reports failed checks; summary controls whether the all-passed
// footer is printed.
func runExperiments(cfg core.Config, opts engine.Options, exps []*core.Experiment, jsonOut, summary bool) error {
	eng := engine.New(opts)
	// When the engine fans several runs out at once, pin the inner sweep
	// pools to one worker each (unless -workers was set explicitly) so
	// total goroutines stay ~GOMAXPROCS instead of its square.
	if cfg.Workers == 0 && eng.Options().Workers > 1 && len(exps)*eng.Options().Replications > 1 {
		cfg.Workers = 1
	}
	results, runErr := eng.Run(cfg, exps)
	// Render everything we have before reporting failures: successful
	// results stay valid even when a sibling experiment errored, and both
	// writers render per-result errors in place.
	if jsonOut {
		if err := engine.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	} else if err := engine.WriteResults(os.Stdout, results, eng.Options().Level); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	failures := 0
	for _, r := range results {
		for _, c := range r.Outcome.Failed() {
			if !jsonOut {
				fmt.Printf("FAILED CHECK %s: %s (%s)\n", r.ID, c.Name, c.Detail)
			}
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d checks failed", failures)
	}
	if summary && !jsonOut {
		fmt.Println("\nall experiments reproduced; all checks passed")
	}
	return nil
}
