// Command pimstudy regenerates every table and figure of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (SC 2004) from
// the models in this repository.
//
// Usage:
//
//	pimstudy [flags] <experiment>|all|list
//
// Experiments: table1, fig5, fig6, fig7, accuracy, fig11, fig12,
// bandwidth, ablation-control, ablation-overhead, ablation-topology,
// ablation-cache.
//
// Flags:
//
//	-seed N     random seed (default 2004)
//	-quick      reduced grids (seconds instead of minutes)
//	-workers N  sweep parallelism (default GOMAXPROCS)
//	-csv DIR    also write each table as CSV into DIR
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimstudy", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2004, "random seed")
	quick := fs.Bool("quick", false, "reduced grids for a fast pass")
	workers := fs.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
	csvDir := fs.String("csv", "", "write tables as CSV into this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pimstudy [flags] <experiment>|all|list\n\nexperiments:\n")
		for _, e := range core.Registry() {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment id")
	}
	cfg := core.Config{Seed: *seed, Quick: *quick, Workers: *workers, CSVDir: *csvDir}

	switch id := fs.Arg(0); id {
	case "list":
		for _, e := range core.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.PaperClaim)
		}
		return nil
	case "all":
		outs, err := core.RunAll(cfg, os.Stdout)
		if err != nil {
			return err
		}
		failures := 0
		for id, o := range outs {
			for _, c := range o.Failed() {
				fmt.Printf("FAILED CHECK %s: %s (%s)\n", id, c.Name, c.Detail)
				failures++
			}
		}
		if failures > 0 {
			return fmt.Errorf("%d checks failed", failures)
		}
		fmt.Println("\nall experiments reproduced; all checks passed")
		return nil
	default:
		e, err := core.Find(id)
		if err != nil {
			return err
		}
		fmt.Printf("%s — %s\npaper claim: %s\n\n", e.ID, e.Title, e.PaperClaim)
		o, err := e.Run(cfg, os.Stdout)
		if err != nil {
			return err
		}
		for _, c := range o.Checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
			}
			fmt.Printf("check %-44s %s  %s\n", c.Name, status, c.Detail)
		}
		if failed := o.Failed(); len(failed) > 0 {
			return fmt.Errorf("%d checks failed", len(failed))
		}
		return nil
	}
}
