// Command pimstudy regenerates every table and figure of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (SC 2004) from
// the models in this repository. Experiments execute through the
// concurrent engine (internal/engine): independent artifacts run in
// parallel on a bounded worker pool with per-run buffered output, so the
// rendered stream is byte-identical to a serial pass.
//
// Usage:
//
//	pimstudy [flags] <experiment>|all|list
//
// Experiments: table1, fig5, fig6, fig7, accuracy, fig11, fig12,
// bandwidth, ablation-control, ablation-overhead, ablation-topology,
// ablation-cache.
//
// Flags:
//
//	-seed N          random seed (default 2004)
//	-quick           reduced grids (seconds instead of minutes)
//	-workers N       per-experiment sweep parallelism (default GOMAXPROCS)
//	-parallel N      experiments run concurrently (default GOMAXPROCS)
//	-replications N  runs per experiment with derived seeds; metrics are
//	                 aggregated as mean / min / max / 95% CI (default 1)
//	-json            emit structured JSON instead of rendered artifacts
//	-progress        log per-replicate progress events to stderr
//	-csv DIR         also write each table as CSV into DIR
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimstudy", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2004, "random seed")
	quick := fs.Bool("quick", false, "reduced grids for a fast pass")
	workers := fs.Int("workers", 0, "per-experiment sweep parallelism (0 = GOMAXPROCS, or 1 when several runs execute concurrently)")
	parallel := fs.Int("parallel", 0, "experiments run concurrently (0 = GOMAXPROCS)")
	replications := fs.Int("replications", 1, "runs per experiment with derived seeds")
	jsonOut := fs.Bool("json", false, "emit structured JSON")
	progress := fs.Bool("progress", false, "log progress events to stderr")
	csvDir := fs.String("csv", "", "write tables as CSV into this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pimstudy [flags] <experiment>|all|list\n\nexperiments:\n")
		for _, e := range core.Registry() {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", e.ID, e.Title)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment id")
	}
	cfg := core.Config{Seed: *seed, Quick: *quick, Workers: *workers, CSVDir: *csvDir}
	opts := engine.Options{Workers: *parallel, Replications: *replications}
	if *progress {
		opts.Events = func(ev engine.Event) {
			fmt.Fprintf(os.Stderr, "pimstudy: %s %s replicate %d/%d\n",
				ev.Kind, ev.ID, ev.Replicate+1, ev.Replications)
		}
	}

	switch id := fs.Arg(0); id {
	case "list":
		for _, e := range core.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
			fmt.Printf("%-20s paper: %s\n", "", e.PaperClaim)
		}
		return nil
	case "all":
		return runExperiments(cfg, opts, core.Registry(), *jsonOut, true)
	default:
		e, err := core.Find(id)
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("%s — %s\npaper claim: %s\n", e.ID, e.Title, e.PaperClaim)
		}
		return runExperiments(cfg, opts, []*core.Experiment{e}, *jsonOut, false)
	}
}

// runExperiments executes experiments through the engine, renders them,
// and reports failed checks; summary controls whether the all-passed
// footer is printed.
func runExperiments(cfg core.Config, opts engine.Options, exps []*core.Experiment, jsonOut, summary bool) error {
	eng := engine.New(opts)
	// When the engine fans several runs out at once, pin the inner sweep
	// pools to one worker each (unless -workers was set explicitly) so
	// total goroutines stay ~GOMAXPROCS instead of its square.
	if cfg.Workers == 0 && eng.Options().Workers > 1 && len(exps)*eng.Options().Replications > 1 {
		cfg.Workers = 1
	}
	results, runErr := eng.Run(cfg, exps)
	// Render everything we have before reporting failures: successful
	// results stay valid even when a sibling experiment errored, and both
	// writers render per-result errors in place.
	if jsonOut {
		if err := engine.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	} else if err := engine.WriteResults(os.Stdout, results, eng.Options().Level); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}
	failures := 0
	for _, r := range results {
		for _, c := range r.Outcome.Failed() {
			if !jsonOut {
				fmt.Printf("FAILED CHECK %s: %s (%s)\n", r.ID, c.Name, c.Detail)
			}
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d checks failed", failures)
	}
	if summary && !jsonOut {
		fmt.Println("\nall experiments reproduced; all checks passed")
	}
	return nil
}
