package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing experiment accepted")
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "fig7"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_normalized.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunSeedFlag(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "7", "sensitivity"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplications(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-replications", "3", "replication"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "replications: 3 (95% CI)") {
		t.Errorf("missing replication summary:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-json", "table1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded) != 1 || decoded[0]["id"] != "table1" {
		t.Fatalf("unexpected JSON: %v", decoded)
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment regeneration in -short mode")
	}
	// The engine path must render "all" byte-identically at any -parallel.
	run1, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-parallel", "1", "all"})
	})
	if err != nil {
		t.Fatal(err)
	}
	run8, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-parallel", "8", "all"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if run1 != run8 {
		t.Error("-parallel changed the rendered output of `pimstudy all`")
	}
}

func TestRunProgressEvents(t *testing.T) {
	// -progress writes to stderr; just exercise the path.
	if err := run([]string{"-quick", "-progress", "-replications", "2", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioList(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-scenario", "list"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"paper-baseline", "fig11-point", "hybrid-baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario list missing %q", want)
		}
	}
}

func TestScenarioSingleBackend(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-scenario", "paper-baseline", "-backend", "analytic"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paper-baseline") || !strings.Contains(out, "gain") {
		t.Errorf("scenario output missing content:\n%s", out)
	}
}

func TestScenarioAllBackendsAgreement(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-scenario", "fig11-point", "-backend", "all"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cross-backend agreement") {
		t.Errorf("missing agreement table:\n%s", out)
	}
	if strings.Contains(out, "DISAGREE") {
		t.Errorf("backends disagree:\n%s", out)
	}
}

func TestScenarioUnknownNameOrBackend(t *testing.T) {
	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", "paper-baseline", "-backend", "warp"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-scenario", "paper-baseline", "table1"}); err == nil {
		t.Fatal("-scenario with a positional experiment accepted")
	}
}

func TestScenarioJSON(t *testing.T) {
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"-quick", "-json", "-scenario", "paper-baseline", "-backend", "analytic"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var results []map[string]any
	if jerr := json.Unmarshal([]byte(out), &results); jerr != nil {
		t.Fatalf("invalid JSON: %v\n%s", jerr, out)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 result, got %d", len(results))
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	if err := run([]string{"-workers", "-2", "table1"}); err == nil ||
		!strings.Contains(err.Error(), "Workers") {
		t.Fatalf("negative workers: got %v", err)
	}
}
