package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing experiment accepted")
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-csv", dir, "fig7"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7_normalized.csv")); err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
}

func TestRunSeedFlag(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "7", "sensitivity"}); err != nil {
		t.Fatal(err)
	}
}
