// Command pimsweep runs custom parameter sweeps of the two models and
// emits a table (and optionally CSV) — the tool for design-space questions
// the canned pimstudy experiments don't answer. Sweeps execute through the
// concurrent engine (internal/engine): each sweep is wrapped as an ad-hoc
// experiment, so it gets replication with derived seeds, statistical
// aggregation (mean / min / max / 95% CI per grid point), and structured
// JSON output for free.
//
// Usage:
//
//	pimsweep hostpim   -pct 0:1:11 -nodes 1,2,4,8,16,32,64 [flags]
//	pimsweep parcelsys -parallelism 1,2,4,8 -latency 10,100,1000 [flags]
//
// Axis syntax: either a comma list ("1,2,4,8") or "lo:hi:n" for n evenly
// spaced values ("0:1:11"). Every combination of the two axes is run.
//
// Common flags:
//
//	-seed N          base seed (default 1)
//	-csv FILE        also write the table as CSV
//	-workers N       parallel runs within one sweep (default GOMAXPROCS)
//	-parallel N      replicated sweeps run concurrently (default GOMAXPROCS)
//	-replications N  sweep repetitions with derived seeds; a mean/CI table
//	                 follows the base table (default 1)
//	-json            emit structured JSON instead of tables
//
// hostpim flags: -pmiss, -mix, -w, -overlap, -fixedmiss, -sim
// parcelsys flags: -nodes, -remote, -mem, -horizon, -software
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hostpim"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pimsweep hostpim|parcelsys [flags]")
	}
	switch args[0] {
	case "hostpim":
		return runHostPIM(args[1:])
	case "parcelsys":
		return runParcelSys(args[1:])
	default:
		return fmt.Errorf("unknown model %q (want hostpim or parcelsys)", args[0])
	}
}

// parseAxis accepts "a,b,c" lists or "lo:hi:n" linspace syntax.
func parseAxis(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty axis")
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("axis %q: want lo:hi:n", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		n, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || n <= 0 {
			return nil, fmt.Errorf("axis %q: bad lo:hi:n", s)
		}
		return sweep.Linspace(lo, hi, n), nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("axis %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// engineFlags are the execution flags shared by both sweep subcommands.
type engineFlags struct {
	seed         *uint64
	csvPath      *string
	workers      *int
	parallel     *int
	replications *int
	jsonOut      *bool
}

func addEngineFlags(fs *flag.FlagSet) *engineFlags {
	return &engineFlags{
		seed:         fs.Uint64("seed", 1, "base seed"),
		csvPath:      fs.String("csv", "", "write CSV to this file"),
		workers:      fs.Int("workers", 0, "parallel runs within one sweep (0 = GOMAXPROCS)"),
		parallel:     fs.Int("parallel", 0, "replicated sweeps run concurrently (0 = GOMAXPROCS)"),
		replications: fs.Int("replications", 1, "sweep repetitions with derived seeds"),
		jsonOut:      fs.Bool("json", false, "emit structured JSON"),
	}
}

// sweepSpec describes one sweep as the engine sees it: the grid, how to
// evaluate a point, and how to lay the results out as a table.
type sweepSpec struct {
	id, title   string
	tableTitle  string
	axes        []sweep.Axis
	axisHeaders []string
	// axisCols formats a point's axis values for a table row.
	axisCols func(p sweep.Point) []any
	// metrics lists the metric keys in column order.
	metrics []string
	// metricHeaders are the table headers for metrics, same order.
	metricHeaders []string
	run           sweep.RunFunc
}

// pointKey flattens a grid point into a stable metric-name prefix, e.g.
// "pct=0.5,n=8".
func (s *sweepSpec) pointKey(p sweep.Point) string {
	var sb strings.Builder
	for i, a := range s.axes {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%g", a.Name, p.Get(a.Name))
	}
	return sb.String()
}

// table renders one sweep's outcomes in point order.
func (s *sweepSpec) table(outs []sweep.Outcome) *report.Table {
	t := report.NewTable(s.tableTitle, append(append([]string{}, s.axisHeaders...), s.metricHeaders...)...)
	for _, o := range outs {
		row := s.axisCols(o.Point)
		for _, m := range s.metrics {
			row = append(row, o.Metrics[m])
		}
		t.AddRow(row...)
	}
	return t
}

// aggregateTable lays the engine's per-point aggregates out as a table:
// one row per grid point, a mean and CI column per metric.
func (s *sweepSpec) aggregateTable(baseSeed uint64, aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error) {
	g, err := sweep.NewGrid(baseSeed, s.axes...)
	if err != nil {
		return nil, err
	}
	headers := append([]string{}, s.axisHeaders...)
	for _, h := range s.metricHeaders {
		headers = append(headers, h+" mean", h+" ±ci")
	}
	t := report.NewTable(fmt.Sprintf("%s — %d replications (%.0f%% CI)", s.tableTitle, reps, level*100), headers...)
	for _, p := range g.Points() {
		row := s.axisCols(p)
		key := s.pointKey(p)
		for _, m := range s.metrics {
			a := aggs[key+"/"+m]
			row = append(row, a.Mean, a.CI)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// experiment wraps the sweep as an ad-hoc core.Experiment. Each replicate
// rebuilds the grid from its own (engine-derived) seed; the replicate that
// runs the base seed captures its table for CSV emission.
func (s *sweepSpec) experiment(baseSeed uint64, capture func(*report.Table)) *core.Experiment {
	return &core.Experiment{
		ID:         s.id,
		Title:      s.title,
		PaperClaim: "custom sweep (not a paper artifact)",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			g, err := sweep.NewGrid(cfg.Seed, s.axes...)
			if err != nil {
				return nil, err
			}
			outs := g.Run(cfg.Workers, s.run)
			if err := sweep.FirstError(outs); err != nil {
				return nil, err
			}
			t := s.table(outs)
			if err := t.Render(w); err != nil {
				return nil, err
			}
			o := &core.Outcome{Metrics: make(map[string]float64, len(outs)*len(s.metrics))}
			for _, out := range outs {
				key := s.pointKey(out.Point)
				for _, m := range s.metrics {
					o.Metrics[key+"/"+m] = out.Metrics[m]
				}
			}
			if cfg.Seed == baseSeed {
				capture(t)
			}
			return o, nil
		},
	}
}

// executeSweep runs the sweep through the engine and emits table, CSV, and
// aggregate output per the shared flags.
func executeSweep(ef *engineFlags, spec *sweepSpec) error {
	cfg := core.Config{Seed: *ef.seed, Workers: *ef.workers}
	var mu sync.Mutex
	var baseTable *report.Table
	exp := spec.experiment(*ef.seed, func(t *report.Table) {
		mu.Lock()
		defer mu.Unlock()
		baseTable = t
	})
	eng := engine.New(engine.Options{Workers: *ef.parallel, Replications: *ef.replications})
	// When replicated sweeps run concurrently, pin each sweep's inner pool
	// to one worker (unless -workers was set explicitly) so total
	// goroutines stay ~GOMAXPROCS instead of its square.
	if cfg.Workers == 0 && eng.Options().Workers > 1 && eng.Options().Replications > 1 {
		cfg.Workers = 1
	}
	results, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		return err
	}
	// Render to stdout before touching the CSV path: a bad -csv target
	// must not swallow a completed sweep's results.
	if *ef.jsonOut {
		if err := engine.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	} else {
		r := results[0]
		if _, err := os.Stdout.Write(r.Output); err != nil {
			return err
		}
		reps := eng.Options().Replications
		if reps > 1 {
			at, err := spec.aggregateTable(*ef.seed, r.Aggregates, reps, eng.Options().Level)
			if err != nil {
				return err
			}
			fmt.Println()
			if err := at.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	if *ef.csvPath == "" {
		return nil
	}
	f, err := os.Create(*ef.csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return baseTable.RenderCSV(f)
}

func runHostPIM(args []string) error {
	fs := flag.NewFlagSet("pimsweep hostpim", flag.ContinueOnError)
	pctAxis := fs.String("pct", "0:1:11", "axis: %WL values")
	nodeAxis := fs.String("nodes", "1,2,4,8,16,32,64", "axis: PIM node counts")
	pmiss := fs.Float64("pmiss", 0.1, "HWP cache miss rate")
	mix := fs.Float64("mix", 0.3, "load/store fraction")
	w := fs.Float64("w", 100e6, "total operations")
	overlap := fs.Bool("overlap", false, "overlap HWP and LWP phases")
	fixedMiss := fs.Bool("fixedmiss", false, "fixed-miss control policy (default locality-aware)")
	useSim := fs.Bool("sim", false, "run the DES simulation instead of the closed form")
	ef := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pcts, err := parseAxis(*pctAxis)
	if err != nil {
		return err
	}
	nodes, err := parseAxis(*nodeAxis)
	if err != nil {
		return err
	}
	spec := &sweepSpec{
		id:    "hostpim-sweep",
		title: "custom hostpim sweep",
		tableTitle: fmt.Sprintf("hostpim sweep (pmiss=%g mix=%g overlap=%v sim=%v)",
			*pmiss, *mix, *overlap, *useSim),
		axes: []sweep.Axis{
			{Name: "pct", Values: pcts},
			{Name: "n", Values: nodes},
		},
		axisHeaders: []string{"%WL", "N"},
		axisCols: func(p sweep.Point) []any {
			return []any{p.Get("pct"), p.GetInt("n")}
		},
		metrics:       []string{"total", "gain", "relative"},
		metricHeaders: []string{"total cycles", "gain", "relative"},
		run: func(pt sweep.Point) (map[string]float64, error) {
			p := hostpim.DefaultParams()
			p.PctWL = pt.Get("pct")
			p.N = pt.GetInt("n")
			p.Pmiss = *pmiss
			p.MixLS = *mix
			p.W = *w
			p.Overlap = *overlap
			if *fixedMiss {
				p.Control = hostpim.ControlFixedMiss
			}
			var r hostpim.Result
			var err error
			if *useSim {
				r, err = hostpim.Simulate(p, hostpim.SimOptions{Seed: pt.Seed})
			} else {
				r, err = hostpim.Analytic(p)
			}
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"total": r.Total, "gain": r.Gain, "relative": r.Relative,
			}, nil
		},
	}
	return executeSweep(ef, spec)
}

func runParcelSys(args []string) error {
	fs := flag.NewFlagSet("pimsweep parcelsys", flag.ContinueOnError)
	parAxis := fs.String("parallelism", "1,2,4,8,16,32", "axis: parcels per node")
	latAxis := fs.String("latency", "10,100,1000", "axis: one-way latency (cycles)")
	nodes := fs.Int("nodes", 16, "node count")
	remote := fs.Float64("remote", 0.3, "remote access fraction")
	mem := fs.Float64("mem", 10, "local memory cycles")
	horizon := fs.Float64("horizon", 100000, "simulated cycles")
	software := fs.Bool("software", false, "software-only parcel overheads")
	ef := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pars, err := parseAxis(*parAxis)
	if err != nil {
		return err
	}
	lats, err := parseAxis(*latAxis)
	if err != nil {
		return err
	}
	spec := &sweepSpec{
		id:    "parcelsys-sweep",
		title: "custom parcelsys sweep",
		tableTitle: fmt.Sprintf("parcelsys sweep (%d nodes, remote=%g, software=%v)",
			*nodes, *remote, *software),
		axes: []sweep.Axis{
			{Name: "p", Values: pars},
			{Name: "l", Values: lats},
		},
		axisHeaders: []string{"parallelism", "latency"},
		axisCols: func(p sweep.Point) []any {
			return []any{p.GetInt("p"), p.Get("l")}
		},
		metrics:       []string{"ratio", "ctrlIdle", "testIdle"},
		metricHeaders: []string{"ratio", "control idle", "test idle"},
		run: func(pt sweep.Point) (map[string]float64, error) {
			p := parcelsys.DefaultParams()
			p.Nodes = *nodes
			p.Parallelism = pt.GetInt("p")
			p.Latency = pt.Get("l")
			p.RemoteFrac = *remote
			p.MemCycles = *mem
			p.Horizon = *horizon
			p.Seed = pt.Seed
			if *software {
				p.Overhead = parcel.SoftwareOnly()
			}
			r, err := parcelsys.Run(p)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"ratio": r.Ratio, "ctrlIdle": r.Control.IdleFrac, "testIdle": r.Test.IdleFrac,
			}, nil
		},
	}
	return executeSweep(ef, spec)
}
