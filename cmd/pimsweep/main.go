// Command pimsweep runs custom parameter sweeps of the two models and
// emits a table (and optionally CSV) — the tool for design-space questions
// the canned pimstudy experiments don't answer.
//
// Usage:
//
//	pimsweep hostpim   -pct 0:1:11 -nodes 1,2,4,8,16,32,64 [flags]
//	pimsweep parcelsys -parallelism 1,2,4,8 -latency 10,100,1000 [flags]
//
// Axis syntax: either a comma list ("1,2,4,8") or "lo:hi:n" for n evenly
// spaced values ("0:1:11"). Every combination of the two axes is run.
//
// Common flags:
//
//	-seed N     base seed (default 1)
//	-csv FILE   also write the table as CSV
//	-workers N  parallel runs (default GOMAXPROCS)
//
// hostpim flags: -pmiss, -mix, -w, -overlap, -fixedmiss, -sim
// parcelsys flags: -nodes, -remote, -mem, -horizon, -software
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/hostpim"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pimsweep hostpim|parcelsys [flags]")
	}
	switch args[0] {
	case "hostpim":
		return runHostPIM(args[1:])
	case "parcelsys":
		return runParcelSys(args[1:])
	default:
		return fmt.Errorf("unknown model %q (want hostpim or parcelsys)", args[0])
	}
}

// parseAxis accepts "a,b,c" lists or "lo:hi:n" linspace syntax.
func parseAxis(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty axis")
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("axis %q: want lo:hi:n", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		n, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || n <= 0 {
			return nil, fmt.Errorf("axis %q: bad lo:hi:n", s)
		}
		return sweep.Linspace(lo, hi, n), nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("axis %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// emit renders the table and writes optional CSV.
func emit(t *report.Table, csvPath string) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if csvPath == "" {
		return nil
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.RenderCSV(f)
}

func runHostPIM(args []string) error {
	fs := flag.NewFlagSet("pimsweep hostpim", flag.ContinueOnError)
	pctAxis := fs.String("pct", "0:1:11", "axis: %WL values")
	nodeAxis := fs.String("nodes", "1,2,4,8,16,32,64", "axis: PIM node counts")
	pmiss := fs.Float64("pmiss", 0.1, "HWP cache miss rate")
	mix := fs.Float64("mix", 0.3, "load/store fraction")
	w := fs.Float64("w", 100e6, "total operations")
	overlap := fs.Bool("overlap", false, "overlap HWP and LWP phases")
	fixedMiss := fs.Bool("fixedmiss", false, "fixed-miss control policy (default locality-aware)")
	useSim := fs.Bool("sim", false, "run the DES simulation instead of the closed form")
	seed := fs.Uint64("seed", 1, "base seed")
	csvPath := fs.String("csv", "", "write CSV to this file")
	workers := fs.Int("workers", 0, "parallel runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pcts, err := parseAxis(*pctAxis)
	if err != nil {
		return err
	}
	nodes, err := parseAxis(*nodeAxis)
	if err != nil {
		return err
	}
	grid, err := sweep.NewGrid(*seed,
		sweep.Axis{Name: "pct", Values: pcts},
		sweep.Axis{Name: "n", Values: nodes},
	)
	if err != nil {
		return err
	}
	outs := grid.Run(*workers, func(pt sweep.Point) (map[string]float64, error) {
		p := hostpim.DefaultParams()
		p.PctWL = pt.Get("pct")
		p.N = pt.GetInt("n")
		p.Pmiss = *pmiss
		p.MixLS = *mix
		p.W = *w
		p.Overlap = *overlap
		if *fixedMiss {
			p.Control = hostpim.ControlFixedMiss
		}
		var r hostpim.Result
		var err error
		if *useSim {
			r, err = hostpim.Simulate(p, hostpim.SimOptions{Seed: pt.Seed})
		} else {
			r, err = hostpim.Analytic(p)
		}
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"total": r.Total, "gain": r.Gain, "relative": r.Relative,
		}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("hostpim sweep (pmiss=%g mix=%g overlap=%v sim=%v)",
		*pmiss, *mix, *overlap, *useSim),
		"%WL", "N", "total cycles", "gain", "relative")
	for _, o := range outs {
		t.AddRow(o.Point.Get("pct"), o.Point.GetInt("n"),
			o.Metrics["total"], o.Metrics["gain"], o.Metrics["relative"])
	}
	return emit(t, *csvPath)
}

func runParcelSys(args []string) error {
	fs := flag.NewFlagSet("pimsweep parcelsys", flag.ContinueOnError)
	parAxis := fs.String("parallelism", "1,2,4,8,16,32", "axis: parcels per node")
	latAxis := fs.String("latency", "10,100,1000", "axis: one-way latency (cycles)")
	nodes := fs.Int("nodes", 16, "node count")
	remote := fs.Float64("remote", 0.3, "remote access fraction")
	mem := fs.Float64("mem", 10, "local memory cycles")
	horizon := fs.Float64("horizon", 100000, "simulated cycles")
	software := fs.Bool("software", false, "software-only parcel overheads")
	seed := fs.Uint64("seed", 1, "base seed")
	csvPath := fs.String("csv", "", "write CSV to this file")
	workers := fs.Int("workers", 0, "parallel runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pars, err := parseAxis(*parAxis)
	if err != nil {
		return err
	}
	lats, err := parseAxis(*latAxis)
	if err != nil {
		return err
	}
	grid, err := sweep.NewGrid(*seed,
		sweep.Axis{Name: "p", Values: pars},
		sweep.Axis{Name: "l", Values: lats},
	)
	if err != nil {
		return err
	}
	outs := grid.Run(*workers, func(pt sweep.Point) (map[string]float64, error) {
		p := parcelsys.DefaultParams()
		p.Nodes = *nodes
		p.Parallelism = pt.GetInt("p")
		p.Latency = pt.Get("l")
		p.RemoteFrac = *remote
		p.MemCycles = *mem
		p.Horizon = *horizon
		p.Seed = pt.Seed
		if *software {
			p.Overhead = parcel.SoftwareOnly()
		}
		r, err := parcelsys.Run(p)
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"ratio": r.Ratio, "ctrlIdle": r.Control.IdleFrac, "testIdle": r.Test.IdleFrac,
		}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("parcelsys sweep (%d nodes, remote=%g, software=%v)",
		*nodes, *remote, *software),
		"parallelism", "latency", "ratio", "control idle", "test idle")
	for _, o := range outs {
		t.AddRow(o.Point.GetInt("p"), o.Point.Get("l"),
			o.Metrics["ratio"], o.Metrics["ctrlIdle"], o.Metrics["testIdle"])
	}
	return emit(t, *csvPath)
}
