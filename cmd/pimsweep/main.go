// Command pimsweep runs custom parameter sweeps of the two models and
// emits a table (and optionally CSV) — the tool for design-space questions
// the canned pimstudy experiments don't answer. Sweeps execute through the
// concurrent engine (internal/engine): each sweep is wrapped as an ad-hoc
// experiment, so it gets replication with derived seeds, statistical
// aggregation (mean / min / max / 95% CI per grid point), and structured
// JSON output for free.
//
// Usage:
//
//	pimsweep hostpim   -pct 0:1:11 -nodes 1,2,4,8,16,32,64 [flags]
//	pimsweep parcelsys -parallelism 1,2,4,8 -latency 10,100,1000 [flags]
//	pimsweep scenario  -preset fig11-point -backend sim \
//	                   -sweep parallelism=1,2,4,8 -sweep latency=10:1000:4 [flags]
//	pimsweep scenario  -preset machine-dram -backend machine \
//	                   -sweep pagepolicy=0,1,2 -sweep updates=256,1024,4096 [flags]
//
// Axis syntax: either a comma list ("1,2,4,8") or "lo:hi:n" for n evenly
// spaced values ("0:1:11"). Every combination of the axes is run.
//
// The scenario subcommand starts from a named preset (internal/scenario)
// and sweeps any of its fields by name on any model backend; the metric
// columns are whatever that backend reports for the scenario.
//
// Common flags:
//
//	-seed N          base seed (default 1)
//	-csv FILE        also write the table as CSV
//	-workers N       parallel runs within one sweep (default GOMAXPROCS)
//	-parallel N      replicated sweeps run concurrently (default GOMAXPROCS)
//	-replications N  sweep repetitions with derived seeds; a mean/CI table
//	                 follows the base table (default 1)
//	-json            emit structured JSON instead of tables
//	-runtimeout D    wall-clock watchdog per sweep replicate (0 = none)
//	-retries N       re-run a failed sweep point up to N times, each attempt
//	                 with a seed derived from (point seed, attempt) and
//	                 exponential backoff between attempts (default 0)
//	-retrybackoff D  base backoff between point retries (default 100ms)
//	-v               print retry counts and result-cache statistics
//
// hostpim flags: -pmiss, -mix, -w, -overlap, -fixedmiss, -sim
// parcelsys flags: -nodes, -remote, -mem, -horizon, -software
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hostpim"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pimsweep hostpim|parcelsys [flags]")
	}
	switch args[0] {
	case "hostpim":
		return runHostPIM(args[1:])
	case "parcelsys":
		return runParcelSys(args[1:])
	case "scenario":
		return runScenarioSweep(args[1:])
	default:
		return fmt.Errorf("unknown model %q (want hostpim, parcelsys, or scenario)", args[0])
	}
}

// parseAxis accepts "a,b,c" lists or "lo:hi:n" linspace syntax.
func parseAxis(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty axis")
	}
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("axis %q: want lo:hi:n", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		n, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || n <= 0 {
			return nil, fmt.Errorf("axis %q: bad lo:hi:n", s)
		}
		return sweep.Linspace(lo, hi, n), nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("axis %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// engineFlags are the execution flags shared by both sweep subcommands.
type engineFlags struct {
	seed         *uint64
	csvPath      *string
	workers      *int
	parallel     *int
	replications *int
	jsonOut      *bool
	runTimeout   *time.Duration
	retries      *int
	retryBackoff *time.Duration
	verbose      *bool
	retryStats   sweep.RetryStats
}

func addEngineFlags(fs *flag.FlagSet) *engineFlags {
	return &engineFlags{
		seed:         fs.Uint64("seed", 1, "base seed"),
		csvPath:      fs.String("csv", "", "write CSV to this file"),
		workers:      fs.Int("workers", 0, "parallel runs within one sweep (0 = GOMAXPROCS)"),
		parallel:     fs.Int("parallel", 0, "replicated sweeps run concurrently (0 = GOMAXPROCS)"),
		replications: fs.Int("replications", 1, "sweep repetitions with derived seeds"),
		jsonOut:      fs.Bool("json", false, "emit structured JSON"),
		runTimeout:   fs.Duration("runtimeout", 0, "wall-clock watchdog per sweep replicate (0 = none)"),
		retries:      fs.Int("retries", 0, "re-run a failed sweep point up to N times with derived seeds"),
		retryBackoff: fs.Duration("retrybackoff", 100*time.Millisecond, "base backoff between point retries (doubles, capped at 32x)"),
		verbose:      fs.Bool("v", false, "print retry and cache statistics after the sweep"),
	}
}

// withRetries applies the -retries policy to a point function; with
// -retries 0 it returns fn unchanged.
func (ef *engineFlags) withRetries(fn sweep.RunFunc) sweep.RunFunc {
	return sweep.WithRetries(fn, *ef.retries, *ef.retryBackoff, nil, &ef.retryStats)
}

// sweepSpec describes one sweep as the engine sees it: the grid, how to
// evaluate a point, and how to lay the results out as a table.
type sweepSpec struct {
	id, title   string
	tableTitle  string
	axes        []sweep.Axis
	axisHeaders []string
	// axisCols formats a point's axis values for a table row.
	axisCols func(p sweep.Point) []any
	// metrics lists the metric keys in column order.
	metrics []string
	// metricHeaders are the table headers for metrics, same order.
	metricHeaders []string
	run           sweep.RunFunc
}

// pointKey flattens a grid point into a stable metric-name prefix, e.g.
// "pct=0.5,n=8".
func (s *sweepSpec) pointKey(p sweep.Point) string {
	return pointKeyOf(s.axes, p)
}

// table renders one sweep's outcomes in point order. Points that failed
// (an injected crash, the livelock guard, the watchdog) render "-" in
// every metric column instead of fabricated zeros.
func (s *sweepSpec) table(outs []sweep.Outcome) *report.Table {
	headers := make([]string, 0, len(s.axisHeaders)+len(s.metricHeaders))
	headers = append(append(headers, s.axisHeaders...), s.metricHeaders...)
	t := report.NewTable(s.tableTitle, headers...)
	row := make([]any, 0, len(headers))
	for _, o := range outs {
		row = append(row[:0], s.axisCols(o.Point)...)
		for _, m := range s.metrics {
			if o.Err != nil {
				row = append(row, "-")
			} else {
				row = append(row, o.Metrics[m])
			}
		}
		t.AddRow(row...)
	}
	return t
}

// sweepErrors implements graceful per-point degradation: a sweep aborts
// only when every point failed (returning that first error); otherwise the
// failed count comes back and the surviving points carry the sweep.
func sweepErrors(outs []sweep.Outcome) (int, error) {
	failed := 0
	for _, o := range outs {
		if o.Err != nil {
			failed++
		}
	}
	if failed == len(outs) && failed > 0 {
		return failed, sweep.FirstError(outs)
	}
	return failed, nil
}

// renderPointErrors appends the failure note after a degraded table.
func renderPointErrors(w io.Writer, outs []sweep.Outcome, failed int) error {
	if failed == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w, "%d of %d points failed; first: %v\n",
		failed, len(outs), sweep.FirstError(outs))
	return err
}

// aggregateTable lays the engine's per-point aggregates out as a table:
// one row per grid point, a mean and CI column per metric.
func (s *sweepSpec) aggregateTable(baseSeed uint64, aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error) {
	g, err := sweep.NewGrid(baseSeed, s.axes...)
	if err != nil {
		return nil, err
	}
	headers := append([]string{}, s.axisHeaders...)
	for _, h := range s.metricHeaders {
		headers = append(headers, h+" mean", h+" ±ci")
	}
	t := report.NewTable(fmt.Sprintf("%s — %d replications (%.0f%% CI)", s.tableTitle, reps, level*100), headers...)
	row := make([]any, 0, len(headers))
	var keyBuf []byte
	for _, p := range g.Points() {
		row = append(row[:0], s.axisCols(p)...)
		// Build "pointkey/metric" in a reused buffer; the map lookup with
		// string(keyBuf) does not allocate.
		keyBuf = appendPointKey(keyBuf[:0], s.axes, p)
		keyBuf = append(keyBuf, '/')
		base := len(keyBuf)
		for _, m := range s.metrics {
			keyBuf = append(keyBuf[:base], m...)
			a := aggs[string(keyBuf)]
			row = append(row, a.Mean, a.CI)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// experiment wraps the sweep as an ad-hoc core.Experiment. Each replicate
// rebuilds the grid from its own (engine-derived) seed; the replicate that
// runs the base seed captures its table for CSV emission.
func (s *sweepSpec) experiment(baseSeed uint64, capture func(*report.Table)) *core.Experiment {
	return &core.Experiment{
		ID:         s.id,
		Title:      s.title,
		PaperClaim: "custom sweep (not a paper artifact)",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			g, err := sweep.NewGrid(cfg.Seed, s.axes...)
			if err != nil {
				return nil, err
			}
			outs := g.Run(cfg.Workers, s.run)
			failed, err := sweepErrors(outs)
			if err != nil {
				return nil, fmt.Errorf("all %d sweep points failed: %w", len(outs), err)
			}
			t := s.table(outs)
			if err := t.Render(w); err != nil {
				return nil, err
			}
			if err := renderPointErrors(w, outs, failed); err != nil {
				return nil, err
			}
			o := &core.Outcome{Metrics: make(map[string]float64, len(outs)*len(s.metrics))}
			for _, out := range outs {
				if out.Err != nil {
					continue
				}
				key := s.pointKey(out.Point)
				for _, m := range s.metrics {
					o.Metrics[key+"/"+m] = out.Metrics[m]
				}
			}
			if cfg.Seed == baseSeed {
				capture(t)
			}
			return o, nil
		},
	}
}

// executeSweep runs the sweep through the engine and emits table, CSV, and
// aggregate output per the shared flags.
func executeSweep(ef *engineFlags, spec *sweepSpec) error {
	spec.run = ef.withRetries(spec.run)
	var mu sync.Mutex
	var baseTable *report.Table
	exp := spec.experiment(*ef.seed, func(t *report.Table) {
		mu.Lock()
		defer mu.Unlock()
		baseTable = t
	})
	return emitSweepResults(ef, exp,
		func() *report.Table {
			mu.Lock()
			defer mu.Unlock()
			return baseTable
		},
		func(aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error) {
			return spec.aggregateTable(*ef.seed, aggs, reps, level)
		})
}

// emitSweepResults runs one sweep experiment through the engine and emits
// the table (or JSON), the replication aggregate table, and CSV from the
// base-seed replicate — the output tail shared by every sweep subcommand.
func emitSweepResults(ef *engineFlags, exp *core.Experiment, baseTable func() *report.Table,
	aggTable func(aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error)) error {
	cfg := core.Config{Seed: *ef.seed, Workers: *ef.workers}
	cache := engine.NewCache()
	eng := engine.New(engine.Options{Workers: *ef.parallel, Replications: *ef.replications,
		RunTimeout: *ef.runTimeout, Cache: cache})
	// When replicated sweeps run concurrently, pin each sweep's inner pool
	// to one worker (unless -workers was set explicitly) so total
	// goroutines stay ~GOMAXPROCS instead of its square.
	if cfg.Workers == 0 && eng.Options().Workers > 1 && eng.Options().Replications > 1 {
		cfg.Workers = 1
	}
	results, err := eng.Run(cfg, []*core.Experiment{exp})
	if *ef.verbose {
		st := cache.Stats()
		fmt.Fprintf(os.Stderr,
			"pimsweep: retries: %d attempts, %d retried, %d recovered; cache: %d hits, %d misses, %d evictions\n",
			ef.retryStats.Attempts.Load(), ef.retryStats.Retries.Load(), ef.retryStats.Recovered.Load(),
			st.Hits, st.Misses, st.Evictions)
	}
	if err != nil {
		return err
	}
	// Render to stdout before touching the CSV path: a bad -csv target
	// must not swallow a completed sweep's results.
	if *ef.jsonOut {
		if err := engine.WriteJSON(os.Stdout, results); err != nil {
			return err
		}
	} else {
		r := results[0]
		if _, err := os.Stdout.Write(r.Output); err != nil {
			return err
		}
		reps := eng.Options().Replications
		if reps > 1 {
			at, err := aggTable(r.Aggregates, reps, eng.Options().Level)
			if err != nil {
				return err
			}
			fmt.Println()
			if err := at.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	if *ef.csvPath == "" {
		return nil
	}
	f, err := os.Create(*ef.csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return baseTable().RenderCSV(f)
}

func runHostPIM(args []string) error {
	fs := flag.NewFlagSet("pimsweep hostpim", flag.ContinueOnError)
	pctAxis := fs.String("pct", "0:1:11", "axis: %WL values")
	nodeAxis := fs.String("nodes", "1,2,4,8,16,32,64", "axis: PIM node counts")
	pmiss := fs.Float64("pmiss", 0.1, "HWP cache miss rate")
	mix := fs.Float64("mix", 0.3, "load/store fraction")
	w := fs.Float64("w", 100e6, "total operations")
	overlap := fs.Bool("overlap", false, "overlap HWP and LWP phases")
	fixedMiss := fs.Bool("fixedmiss", false, "fixed-miss control policy (default locality-aware)")
	useSim := fs.Bool("sim", false, "run the DES simulation instead of the closed form")
	ef := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pcts, err := parseAxis(*pctAxis)
	if err != nil {
		return err
	}
	nodes, err := parseAxis(*nodeAxis)
	if err != nil {
		return err
	}
	spec := &sweepSpec{
		id:    "hostpim-sweep",
		title: "custom hostpim sweep",
		tableTitle: fmt.Sprintf("hostpim sweep (pmiss=%g mix=%g overlap=%v sim=%v)",
			*pmiss, *mix, *overlap, *useSim),
		axes: []sweep.Axis{
			{Name: "pct", Values: pcts},
			{Name: "n", Values: nodes},
		},
		axisHeaders: []string{"%WL", "N"},
		axisCols: func(p sweep.Point) []any {
			return []any{p.Get("pct"), p.GetInt("n")}
		},
		metrics:       []string{"total", "gain", "relative"},
		metricHeaders: []string{"total cycles", "gain", "relative"},
		run: func(pt sweep.Point) (map[string]float64, error) {
			p := hostpim.DefaultParams()
			p.PctWL = pt.Get("pct")
			p.N = pt.GetInt("n")
			p.Pmiss = *pmiss
			p.MixLS = *mix
			p.W = *w
			p.Overlap = *overlap
			if *fixedMiss {
				p.Control = hostpim.ControlFixedMiss
			}
			var r hostpim.Result
			var err error
			if *useSim {
				r, err = hostpim.Simulate(p, hostpim.SimOptions{Seed: pt.Seed})
			} else {
				r, err = hostpim.Analytic(p)
			}
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"total": r.Total, "gain": r.Gain, "relative": r.Relative,
			}, nil
		},
	}
	return executeSweep(ef, spec)
}

func runParcelSys(args []string) error {
	fs := flag.NewFlagSet("pimsweep parcelsys", flag.ContinueOnError)
	parAxis := fs.String("parallelism", "1,2,4,8,16,32", "axis: parcels per node")
	latAxis := fs.String("latency", "10,100,1000", "axis: one-way latency (cycles)")
	nodes := fs.Int("nodes", 16, "node count")
	remote := fs.Float64("remote", 0.3, "remote access fraction")
	mem := fs.Float64("mem", 10, "local memory cycles")
	horizon := fs.Float64("horizon", 100000, "simulated cycles")
	software := fs.Bool("software", false, "software-only parcel overheads")
	ef := addEngineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pars, err := parseAxis(*parAxis)
	if err != nil {
		return err
	}
	lats, err := parseAxis(*latAxis)
	if err != nil {
		return err
	}
	spec := &sweepSpec{
		id:    "parcelsys-sweep",
		title: "custom parcelsys sweep",
		tableTitle: fmt.Sprintf("parcelsys sweep (%d nodes, remote=%g, software=%v)",
			*nodes, *remote, *software),
		axes: []sweep.Axis{
			{Name: "p", Values: pars},
			{Name: "l", Values: lats},
		},
		axisHeaders: []string{"parallelism", "latency"},
		axisCols: func(p sweep.Point) []any {
			return []any{p.GetInt("p"), p.Get("l")}
		},
		metrics:       []string{"ratio", "ctrlIdle", "testIdle"},
		metricHeaders: []string{"ratio", "control idle", "test idle"},
		run: func(pt sweep.Point) (map[string]float64, error) {
			p := parcelsys.DefaultParams()
			p.Nodes = *nodes
			p.Parallelism = pt.GetInt("p")
			p.Latency = pt.Get("l")
			p.RemoteFrac = *remote
			p.MemCycles = *mem
			p.Horizon = *horizon
			p.Seed = pt.Seed
			if *software {
				p.Overhead = parcel.SoftwareOnly()
			}
			r, err := parcelsys.Run(p)
			if err != nil {
				return nil, err
			}
			return map[string]float64{
				"ratio": r.Ratio, "ctrlIdle": r.Control.IdleFrac, "testIdle": r.Test.IdleFrac,
			}, nil
		},
	}
	return executeSweep(ef, spec)
}

// sweepList collects repeatable -sweep field=axis flags.
type sweepList []string

func (l *sweepList) String() string { return strings.Join(*l, " ") }

// Set appends one field=axis entry.
func (l *sweepList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// appendPointKey appends a grid point's stable metric-name prefix
// ("pct=0.5,n=8") to buf without going through fmt.
func appendPointKey(buf []byte, axes []sweep.Axis, p sweep.Point) []byte {
	for i, a := range axes {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, a.Name...)
		buf = append(buf, '=')
		// 'g' with precision -1 matches the %g the keys historically used.
		buf = strconv.AppendFloat(buf, p.Get(a.Name), 'g', -1, 64)
	}
	return buf
}

// pointKeyOf flattens a grid point into a stable metric-name prefix.
func pointKeyOf(axes []sweep.Axis, p sweep.Point) string {
	return string(appendPointKey(nil, axes, p))
}

// metricUnion returns the sorted union of metric names over outcomes. The
// set can vary across points when a sweep crosses a scenario-kind
// boundary (e.g. remote 0 -> 0.3); missing cells render as NaN.
func metricUnion(outs []sweep.Outcome) []string {
	seen := map[string]bool{}
	for _, o := range outs {
		for m := range o.Metrics {
			seen[m] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func runScenarioSweep(args []string) error {
	fs := flag.NewFlagSet("pimsweep scenario", flag.ContinueOnError)
	preset := fs.String("preset", "paper-baseline", "scenario preset to start from")
	backendName := fs.String("backend", "sim", "model backend to run")
	quick := fs.Bool("quick", false, "clamp workload sizes and horizons (quick mode)")
	var sweeps sweepList
	fs.Var(&sweeps, "sweep", "field=axis to sweep, repeatable (see sweepable fields)")
	ef := addEngineFlags(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pimsweep scenario -preset <name> -backend <name> -sweep field=axis [-sweep ...]\n\npresets:\n")
		for _, s := range scenario.Presets() {
			fmt.Fprintf(fs.Output(), "  %-20s %s\n", s.Name, s.About)
		}
		fmt.Fprintf(fs.Output(), "\nbackends: %v\n\nsweepable fields:\n", scenario.BackendNames())
		for _, f := range scenario.Fields() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", f.Name, f.About)
		}
		fmt.Fprintf(fs.Output(), "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	base, err := scenario.Find(*preset)
	if err != nil {
		return err
	}
	if _, err := scenario.FindBackend(*backendName); err != nil {
		return err
	}
	if len(sweeps) == 0 {
		return fmt.Errorf("need at least one -sweep field=axis")
	}
	var axes []sweep.Axis
	for _, spec := range sweeps {
		name, axisSpec, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-sweep %q: want field=axis", spec)
		}
		probe := base // name check against the field registry
		if err := scenario.SetField(&probe, name, 0); err != nil {
			return err
		}
		vals, err := parseAxis(axisSpec)
		if err != nil {
			return err
		}
		axes = append(axes, sweep.Axis{Name: name, Values: vals})
	}

	title := fmt.Sprintf("scenario sweep: %s on %s", base.Name, *backendName)
	var mu sync.Mutex
	var baseTable *report.Table
	exp := &core.Experiment{
		ID:         "scenario-sweep",
		Title:      title,
		PaperClaim: "custom sweep (not a paper artifact)",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			g, err := sweep.NewGrid(cfg.Seed, axes...)
			if err != nil {
				return nil, err
			}
			outs := g.Run(cfg.Workers, ef.withRetries(func(pt sweep.Point) (map[string]float64, error) {
				s := base
				for _, a := range axes {
					if err := scenario.SetField(&s, a.Name, pt.Get(a.Name)); err != nil {
						return nil, err
					}
				}
				r, err := scenario.Run(s, *backendName, scenario.Config{Seed: pt.Seed, Quick: *quick})
				if err != nil {
					return nil, err
				}
				return r.Metrics, nil
			}))
			failed, err := sweepErrors(outs)
			if err != nil {
				return nil, fmt.Errorf("all %d sweep points failed: %w", len(outs), err)
			}
			metrics := metricUnion(outs)
			headers := make([]string, 0, len(axes)+len(metrics))
			for _, a := range axes {
				headers = append(headers, a.Name)
			}
			headers = append(headers, metrics...)
			t := report.NewTable(title, headers...)
			o := &core.Outcome{Metrics: make(map[string]float64, len(outs)*len(metrics))}
			for _, out := range outs {
				row := make([]any, 0, len(headers))
				for _, a := range axes {
					row = append(row, out.Point.Get(a.Name))
				}
				key := pointKeyOf(axes, out.Point)
				for _, m := range metrics {
					v, ok := out.Metrics[m]
					if !ok {
						row = append(row, "-")
						continue
					}
					row = append(row, v)
					o.Metrics[key+"/"+m] = v
				}
				t.AddRow(row...)
			}
			if err := t.Render(w); err != nil {
				return nil, err
			}
			if err := renderPointErrors(w, outs, failed); err != nil {
				return nil, err
			}
			if cfg.Seed == *ef.seed {
				mu.Lock()
				baseTable = t
				mu.Unlock()
			}
			return o, nil
		},
	}

	return emitSweepResults(ef, exp,
		func() *report.Table {
			mu.Lock()
			defer mu.Unlock()
			return baseTable
		},
		func(aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error) {
			return scenarioAggregateTable(title, axes, *ef.seed, aggs, reps, level)
		})
}

// scenarioAggregateTable lays the engine's per-point aggregates out as a
// table. Metric names are recovered from the aggregate keys (pointkey is
// slash-free, so the first slash separates the two).
func scenarioAggregateTable(title string, axes []sweep.Axis, baseSeed uint64, aggs map[string]engine.Aggregate, reps int, level float64) (*report.Table, error) {
	seen := map[string]bool{}
	for k := range aggs {
		if _, metric, ok := strings.Cut(k, "/"); ok {
			seen[metric] = true
		}
	}
	metrics := make([]string, 0, len(seen))
	for m := range seen {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	g, err := sweep.NewGrid(baseSeed, axes...)
	if err != nil {
		return nil, err
	}
	headers := make([]string, 0, len(axes)+2*len(metrics))
	for _, a := range axes {
		headers = append(headers, a.Name)
	}
	for _, m := range metrics {
		headers = append(headers, m+" mean", m+" ±ci")
	}
	t := report.NewTable(fmt.Sprintf("%s — %d replications (%.0f%% CI)", title, reps, level*100), headers...)
	row := make([]any, 0, len(headers))
	var keyBuf []byte
	for _, p := range g.Points() {
		row = row[:0]
		for _, a := range axes {
			row = append(row, p.Get(a.Name))
		}
		keyBuf = appendPointKey(keyBuf[:0], axes, p)
		keyBuf = append(keyBuf, '/')
		base := len(keyBuf)
		for _, m := range metrics {
			keyBuf = append(keyBuf[:base], m...)
			a, ok := aggs[string(keyBuf)]
			if !ok {
				// The metric does not exist at this grid point (the sweep
				// crossed a scenario-kind boundary) — mirror the base
				// table's "-" rather than fabricating a zero.
				row = append(row, "-", "-")
				continue
			}
			row = append(row, a.Mean, a.CI)
		}
		t.AddRow(row...)
	}
	return t, nil
}
