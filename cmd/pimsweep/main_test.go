package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseAxisList(t *testing.T) {
	got, err := parseAxis("1,2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{1, 2, 4, 8}) {
		t.Errorf("got %v", got)
	}
}

func TestParseAxisLinspace(t *testing.T) {
	got, err := parseAxis("0:1:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
}

func TestParseAxisErrors(t *testing.T) {
	for _, bad := range []string{"", "a,b", "0:1", "0:1:0", "0:x:3"} {
		if _, err := parseAxis(bad); err == nil {
			t.Errorf("axis %q accepted", bad)
		}
	}
}

func TestHostPIMSweep(t *testing.T) {
	if err := run([]string{"hostpim", "-pct", "0,0.5,1", "-nodes", "1,8"}); err != nil {
		t.Fatal(err)
	}
}

func TestHostPIMSweepSimulated(t *testing.T) {
	if err := run([]string{"hostpim", "-sim", "-w", "1e6", "-pct", "0.5", "-nodes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestParcelSysSweep(t *testing.T) {
	if err := run([]string{"parcelsys", "-parallelism", "1,8", "-latency", "100",
		"-nodes", "4", "-horizon", "5000"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"hostpim", "-pct", "0.5", "-nodes", "4", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestBadModel(t *testing.T) {
	if err := run([]string{"nonsense"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing model accepted")
	}
}
