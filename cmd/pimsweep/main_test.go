package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/testutil"
)

func TestParseAxisList(t *testing.T) {
	got, err := parseAxis("1,2, 4,8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []float64{1, 2, 4, 8}) {
		t.Errorf("got %v", got)
	}
}

func TestParseAxisLinspace(t *testing.T) {
	got, err := parseAxis("0:1:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v", got)
	}
}

func TestParseAxisErrors(t *testing.T) {
	for _, bad := range []string{"", "a,b", "0:1", "0:1:0", "0:x:3"} {
		if _, err := parseAxis(bad); err == nil {
			t.Errorf("axis %q accepted", bad)
		}
	}
}

func TestHostPIMSweep(t *testing.T) {
	if err := run([]string{"hostpim", "-pct", "0,0.5,1", "-nodes", "1,8"}); err != nil {
		t.Fatal(err)
	}
}

func TestHostPIMSweepSimulated(t *testing.T) {
	if err := run([]string{"hostpim", "-sim", "-w", "1e6", "-pct", "0.5", "-nodes", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestParcelSysSweep(t *testing.T) {
	if err := run([]string{"parcelsys", "-parallelism", "1,8", "-latency", "100",
		"-nodes", "4", "-horizon", "5000"}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"hostpim", "-pct", "0.5", "-nodes", "4", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV")
	}
}

func TestBadModel(t *testing.T) {
	if err := run([]string{"nonsense"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if err := run(nil); err == nil {
		t.Fatal("missing model accepted")
	}
}

// captureStdout runs fn, failing the test on error, and returns stdout.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	out, err := testutil.CaptureStdout(t, fn)
	if err != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", err, out)
	}
	return out
}

func TestReplicationsEmitAggregateTable(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"parcelsys", "-parallelism", "1,4", "-latency", "100",
			"-nodes", "4", "-horizon", "5000", "-replications", "3"})
	})
	for _, want := range []string{"3 replications (95% CI)", "ratio mean", "ratio ±ci"} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate table missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"hostpim", "-pct", "0.5", "-nodes", "4,8",
			"-replications", "2", "-json"})
	})
	var decoded []map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded) != 1 || decoded[0]["id"] != "hostpim-sweep" {
		t.Fatalf("unexpected JSON: %v", decoded)
	}
	metrics, ok := decoded[0]["metrics"].(map[string]any)
	if !ok || metrics["pct=0.5,n=4/gain"] == nil {
		t.Errorf("per-point metrics missing: %v", decoded[0]["metrics"])
	}
	aggs, ok := decoded[0]["aggregates"].(map[string]any)
	if !ok || aggs["pct=0.5,n=8/gain"] == nil {
		t.Errorf("per-point aggregates missing")
	}
}

func TestParallelFlagDeterministic(t *testing.T) {
	// Replicate-level parallelism must not change any emitted byte.
	args := []string{"parcelsys", "-parallelism", "1,4", "-latency", "50",
		"-nodes", "4", "-horizon", "4000", "-replications", "4"}
	serial := captureStdout(t, func() error { return run(append([]string{args[0], "-parallel", "1"}, args[1:]...)) })
	par := captureStdout(t, func() error { return run(append([]string{args[0], "-parallel", "8"}, args[1:]...)) })
	if serial != par {
		t.Errorf("-parallel changed output:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

func TestCSVWithReplications(t *testing.T) {
	// CSV must come from the base-seed replicate regardless of scheduling.
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"hostpim", "-pct", "0.5", "-nodes", "4", "-csv", path,
		"-replications", "3", "-parallel", "3"}); err != nil {
		t.Fatal(err)
	}
	single := filepath.Join(t.TempDir(), "single.csv")
	if err := run([]string{"hostpim", "-pct", "0.5", "-nodes", "4", "-csv", single}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("replicated CSV differs from single-run CSV:\n%s\nvs\n%s", a, b)
	}
}

func TestScenarioSweep(t *testing.T) {
	if err := run([]string{"scenario", "-quick", "-preset", "fig11-point", "-backend", "queueing",
		"-sweep", "parallelism=1,4", "-sweep", "latency=100,1000"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioSweepSim(t *testing.T) {
	if err := run([]string{"scenario", "-quick", "-preset", "fig11-point", "-backend", "sim",
		"-sweep", "parallelism=1,4", "-sweep", "horizon=5000"}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioSweepErrors(t *testing.T) {
	if err := run([]string{"scenario", "-preset", "nope", "-sweep", "latency=1"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"scenario", "-backend", "warp", "-sweep", "latency=1"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"scenario", "-sweep", "warp-drive=1"}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := run([]string{"scenario"}); err == nil {
		t.Fatal("missing -sweep accepted")
	}
	if err := run([]string{"scenario", "-sweep", "latency"}); err == nil {
		t.Fatal("malformed -sweep accepted")
	}
}

func TestScenarioSweepCSVAndReplications(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"scenario", "-quick", "-preset", "fig11-point", "-backend", "queueing",
			"-sweep", "parallelism=1,4", "-replications", "3", "-csv", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 replications") {
		t.Errorf("missing aggregate table:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ratio") {
		t.Errorf("CSV missing metric column: %s", data)
	}
}

// captureStderr redirects os.Stderr around fn.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	ch := make(chan string, 1)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		ch <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stderr = old
	return <-ch, runErr
}

func TestRetriesAndVerboseStats(t *testing.T) {
	// A healthy sweep with -retries on: nothing retries, and -v reports
	// the attempt and cache counters.
	errOut, err := captureStderr(t, func() error {
		_, err := testutil.CaptureStdout(t, func() error {
			return run([]string{"hostpim", "-pct", "0,1", "-nodes", "2",
				"-retries", "2", "-retrybackoff", "1ms", "-v"})
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "retries: 2 attempts, 0 retried, 0 recovered") {
		t.Errorf("verbose retry stats missing or wrong:\n%s", errOut)
	}
	if !strings.Contains(errOut, "cache:") {
		t.Errorf("verbose cache stats missing:\n%s", errOut)
	}
}

func TestRetriesExhaustDegradesGracefully(t *testing.T) {
	// faultdrop=1 on the machine backend loses every parcel: the point
	// fails on each attempt, retries exhaust, and the sweep still renders
	// with "-" cells rather than aborting (single-point sweeps abort when
	// everything failed, so sweep two points where one is healthy).
	out, err := testutil.CaptureStdout(t, func() error {
		return run([]string{"scenario", "-quick", "-preset", "machine-treesum-faults",
			"-backend", "machine", "-sweep", "faultdrop=0,1",
			"-retries", "1", "-retrybackoff", "1ms"})
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "-") || !strings.Contains(out, "failed") {
		t.Errorf("degraded sweep output missing failure markers:\n%s", out)
	}
}
