// Command pimvm assembles and runs programs for the lightweight PIM node
// ISA (internal/isa) on a multi-node machine with parcel-spawn support.
//
// Usage:
//
//	pimvm [flags] program.pasm
//
// Flags:
//
//	-nodes N     number of PIM nodes (default 4)
//	-mem W       words of memory per node (default 65536)
//	-latency L   inter-node parcel latency in cycles (default 200)
//	-entry LBL   entry label (default "main"), started on node 0
//	-threads T   initial threads at the entry point (default 1)
//	-max C       cycle budget (default 10,000,000)
//	-dis         print the disassembly and exit
//	-stats       print per-node statistics after the run
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimvm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimvm", flag.ContinueOnError)
	nodes := fs.Int("nodes", 4, "number of PIM nodes")
	mem := fs.Int("mem", 65536, "words of memory per node")
	latency := fs.Int64("latency", 200, "inter-node parcel latency (cycles)")
	entry := fs.String("entry", "main", "entry label")
	threads := fs.Int("threads", 1, "initial threads at the entry point")
	maxCycles := fs.Int64("max", 10_000_000, "cycle budget")
	dis := fs.Bool("dis", false, "disassemble and exit")
	stats := fs.Bool("stats", false, "print per-node statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: pimvm [flags] program.pasm")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		return err
	}
	if *dis {
		fmt.Print(isa.Disassemble(prog))
		return nil
	}
	timing := isa.DefaultTiming()
	timing.NetLatency = *latency
	m, err := isa.NewMachine(*nodes, *mem, timing)
	if err != nil {
		return err
	}
	if err := m.LoadAll(prog); err != nil {
		return err
	}
	m.Output = func(node int, v uint64) {
		fmt.Printf("node %d: %d\n", node, v)
	}
	m.MaxCycles = *maxCycles
	addr, err := prog.Entry(*entry)
	if err != nil {
		return err
	}
	for i := 0; i < *threads; i++ {
		m.Nodes[0].StartThread(addr, uint64(i), 0)
	}
	cycles, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("completed in %d cycles, %d instructions\n", cycles, m.TotalInstructions())
	if *stats {
		t := report.NewTable("per-node statistics",
			"node", "instructions", "mem ops", "wide ops", "spawns", "threads done", "utilization")
		for i, n := range m.Nodes {
			t.AddRow(i, n.Instructions, n.MemOps, n.WideOps, n.Spawns, n.Completed, m.Utilization(i))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
