// Command pimvm assembles and runs programs for the lightweight PIM node
// ISA (internal/isa) on a multi-node machine with parcel-spawn support.
//
// Usage:
//
//	pimvm [flags] program.pasm
//	pimvm [flags] -builtin gups|treesum|ping|triad
//
// Flags:
//
//	-nodes N      number of PIM nodes (default 4)
//	-mem W        words of memory per node (default 65536)
//	-latency L    inter-node parcel latency in cycles (default 200);
//	              per-hop cost when -topology is set
//	-topology T   parcel routing: flat (default), ring, mesh, torus,
//	              hypercube (mesh/torus need a square node count,
//	              hypercube a power of two)
//	-entry LBL    entry label (default "main"), started on node 0
//	-threads T    initial threads at the entry point (default 1)
//	-max C        cycle budget (default 10,000,000)
//	-builtin P    run a reference program from internal/isa instead of a
//	              file (gups, treesum, ping, triad)
//	-parallel P   execute the run on P workers via the VM's conservative
//	              time-windowed PDES (default 1 = serial). Results are
//	              byte-identical to serial for any P; OUT output is
//	              unavailable in parallel mode.
//	-fingerprint  print a determinism fingerprint (cycles, counters, and
//	              an FNV-64a hash of every node's memory) after the run
//	-faultdrop P     parcel drop probability per attempt, [0, 1)
//	-faultcorrupt P  parcel corruption probability per attempt, [0, 1)
//	-faultdup P      parcel duplication probability per attempt, [0, 1)
//	-faultjitter J   max extra parcel delivery delay in cycles
//	-straggler F     deterministic straggler cost factor (0/1 = off)
//	-faultseed S     fault-plan seed (plans are pure functions of the seed)
//	-dis          print the disassembly and exit
//	-stats        print per-node statistics after the run
//
// When any fault rate is nonzero the machine runs its seq/ack retransmit
// protocol, a delivery summary follows the run, and the fingerprint
// additionally covers the per-node parcel counters. Fault decisions are
// keyed by parcel identity, never execution order, so fingerprints stay
// byte-identical across -parallel settings even under injected faults.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/report"
	"repro/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pimvm:", err)
		os.Exit(1)
	}
}

// builtinProgram assembles one of the internal/isa reference programs and
// returns it with its entry label, a start function, and whether the
// program honors -threads (only gups fans the flag out; the others define
// their own thread structure).
func builtinProgram(name string, nodes int) (*isa.Program, string, func(m *isa.Machine, threads int) error, bool, error) {
	switch name {
	case "gups":
		prog, err := isa.GUPSProgram(isa.DefaultGUPSLayout())
		if err != nil {
			return nil, "", nil, false, err
		}
		start := func(m *isa.Machine, threads int) error {
			entry, err := prog.Entry("main")
			if err != nil {
				return err
			}
			sm := rng.SplitMix64{State: 2004}
			for _, n := range m.Nodes {
				for t := 0; t < threads; t++ {
					n.StartThread(entry, sm.Next(), 0)
				}
			}
			return nil
		}
		return prog, "main", start, true, nil
	case "treesum":
		layout := isa.DefaultTreeSumLayout()
		prog, err := isa.TreeSumProgram(nodes, layout)
		if err != nil {
			return nil, "", nil, false, err
		}
		start := func(m *isa.Machine, threads int) error {
			for i, n := range m.Nodes {
				for k := 0; k < layout.DataWords; k++ {
					n.Mem[layout.DataBase+uint64(k)] = uint64(i*layout.DataWords + k)
				}
			}
			entry, err := prog.Entry("main")
			if err != nil {
				return err
			}
			m.Nodes[0].StartThread(entry, 0, 0)
			return nil
		}
		return prog, "main", start, false, nil
	case "ping":
		if nodes < 2 {
			return nil, "", nil, false, fmt.Errorf("-builtin ping needs at least 2 nodes")
		}
		layout := isa.DefaultPingLayout()
		layout.Peer = nodes / 2
		const rounds = 64
		prog, err := isa.PingProgram(layout, rounds)
		if err != nil {
			return nil, "", nil, false, err
		}
		start := func(m *isa.Machine, threads int) error {
			entry, err := prog.Entry("ping")
			if err != nil {
				return err
			}
			m.Nodes[0].StartThread(entry, rounds, 0)
			return nil
		}
		return prog, "ping", start, false, nil
	case "triad":
		layout := isa.DefaultTriadLayout()
		prog, err := isa.StreamTriadProgram(layout)
		if err != nil {
			return nil, "", nil, false, err
		}
		start := func(m *isa.Machine, threads int) error {
			for _, n := range m.Nodes {
				for k := 0; k < layout.Words; k++ {
					n.Mem[layout.A+uint64(k)] = uint64(k)
					n.Mem[layout.B+uint64(k)] = uint64(2 * k)
				}
			}
			entry, err := prog.Entry("main")
			if err != nil {
				return err
			}
			for _, n := range m.Nodes {
				n.StartThread(entry, 0, 0)
			}
			return nil
		}
		return prog, "main", start, false, nil
	default:
		return nil, "", nil, false, fmt.Errorf("unknown -builtin %q (want gups, treesum, ping, triad)", name)
	}
}

// machineFingerprint condenses a finished run into one comparable line:
// the cycle count, every node's execution counters, and an FNV-64a hash of
// all node memories folded into a single hash. Two runs of the same
// program agree on this line exactly iff they agree on every counter and
// every memory word — the CI smoke test compares it across -parallel
// settings to hold the PDES determinism guarantee.
func machineFingerprint(m *isa.Machine, cycles int64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d\n", cycles)
	for _, n := range m.Nodes {
		fmt.Fprintf(h, "node %d: instr=%d mem=%d wide=%d spawn=%d busy=%d idle=%d done=%d\n",
			n.ID, n.Instructions, n.MemOps, n.WideOps, n.Spawns,
			n.BusyCycles, n.IdleCycles, n.Completed)
		if m.Fault != nil {
			// Fault runs fold the resilience counters in too; fault-free
			// fingerprints stay byte-compatible with earlier releases.
			fmt.Fprintf(h, "node %d parcels: sent=%d drop=%d corrupt=%d dup=%d retry=%d deliver=%d lost=%d\n",
				n.ID, n.ParcelsSent, n.ParcelDrops, n.ParcelCorrupts, n.ParcelDups,
				n.ParcelRetries, n.ParcelsDelivered, n.ParcelsLost)
		}
		var raw [8]byte
		for _, w := range n.Mem {
			for i := range raw {
				raw[i] = byte(w >> (8 * i))
			}
			h.Write(raw[:])
		}
	}
	return fmt.Sprintf("fingerprint=%#016x", h.Sum64())
}

func run(args []string) error {
	fs := flag.NewFlagSet("pimvm", flag.ContinueOnError)
	nodes := fs.Int("nodes", 4, "number of PIM nodes")
	mem := fs.Int("mem", 65536, "words of memory per node")
	latency := fs.Int64("latency", 200, "inter-node parcel latency (cycles; per hop with -topology)")
	topology := fs.String("topology", "flat", "parcel routing: flat, ring, mesh, torus, hypercube")
	entry := fs.String("entry", "main", "entry label")
	threads := fs.Int("threads", 1, "initial threads at the entry point")
	maxCycles := fs.Int64("max", 10_000_000, "cycle budget")
	builtin := fs.String("builtin", "", "run a reference program: gups, treesum, ping, triad")
	parallel := fs.Int("parallel", 1, "PDES workers for the run (1 = serial; results identical)")
	fingerprint := fs.Bool("fingerprint", false, "print a determinism fingerprint after the run")
	dis := fs.Bool("dis", false, "disassemble and exit")
	stats := fs.Bool("stats", false, "print per-node statistics")
	faultDrop := fs.Float64("faultdrop", 0, "parcel drop probability per attempt, [0, 1)")
	faultCorrupt := fs.Float64("faultcorrupt", 0, "parcel corruption probability per attempt, [0, 1)")
	faultDup := fs.Float64("faultdup", 0, "parcel duplication probability per attempt, [0, 1)")
	faultJitter := fs.Int64("faultjitter", 0, "max extra parcel delivery delay in cycles")
	straggler := fs.Int64("straggler", 0, "deterministic straggler cost factor (0/1 = off)")
	faultSeed := fs.Uint64("faultseed", 0x9142, "fault-plan seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var prog *isa.Program
	var start func(m *isa.Machine, threads int) error
	switch {
	case *builtin != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-builtin takes no program file")
		}
		var honorsThreads bool
		var err error
		prog, _, start, honorsThreads, err = builtinProgram(*builtin, *nodes)
		if err != nil {
			return err
		}
		if *threads != 1 && !honorsThreads {
			return fmt.Errorf("-builtin %s defines its own thread structure; -threads applies only to gups (and .pasm programs)", *builtin)
		}
		if *entry != "main" {
			return fmt.Errorf("-builtin %s starts at its own entry point; -entry applies only to .pasm programs", *builtin)
		}
	case fs.NArg() == 1:
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err = isa.Assemble(string(src))
		if err != nil {
			return err
		}
		start = func(m *isa.Machine, threads int) error {
			addr, err := prog.Entry(*entry)
			if err != nil {
				return err
			}
			for i := 0; i < threads; i++ {
				m.Nodes[0].StartThread(addr, uint64(i), 0)
			}
			return nil
		}
	default:
		return fmt.Errorf("usage: pimvm [flags] program.pasm | pimvm [flags] -builtin <name>")
	}
	if *dis {
		fmt.Print(isa.Disassemble(prog))
		return nil
	}

	timing := isa.DefaultTiming()
	timing.NetLatency = *latency
	m, err := isa.NewMachine(*nodes, *mem, timing)
	if err != nil {
		return err
	}
	topo, err := network.ByName(*topology, *nodes)
	if err != nil {
		return err
	}
	if topo != nil {
		m.NetDelay = network.HopDelay(topo, float64(*latency))
		m.NetLookahead = network.HopLookahead(topo, float64(*latency))
	}
	if err := m.LoadAll(prog); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel %d: want at least 1", *parallel)
	}
	m.Parallelism = *parallel
	if *parallel == 1 {
		// An Output hook forces the observable per-cycle path, so only the
		// serial mode streams OUT values; parallel runs leave OUT silent.
		m.Output = func(node int, v uint64) {
			fmt.Printf("node %d: %d\n", node, v)
		}
	}
	m.MaxCycles = *maxCycles
	if *faultDrop != 0 || *faultCorrupt != 0 || *faultDup != 0 || *faultJitter != 0 || *straggler > 1 {
		for _, r := range []struct {
			name string
			v    float64
		}{{"-faultdrop", *faultDrop}, {"-faultcorrupt", *faultCorrupt}, {"-faultdup", *faultDup}} {
			if r.v >= 1 {
				return fmt.Errorf("%s %g: want [0, 1) — a certain fault would retransmit forever", r.name, r.v)
			}
		}
		plan, err := fault.New(fault.Config{
			Seed:            *faultSeed,
			DropRate:        *faultDrop,
			CorruptRate:     *faultCorrupt,
			DupRate:         *faultDup,
			JitterMax:       *faultJitter,
			StragglerFactor: *straggler,
		})
		if err != nil {
			return err
		}
		m.Fault = plan
		m.Reliable = plan.NetEnabled()
	}
	if err := start(m, *threads); err != nil {
		return err
	}
	cycles, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("completed in %d cycles, %d instructions\n", cycles, m.TotalInstructions())
	if m.Fault != nil {
		st := m.DeliveryStats()
		fmt.Printf("parcels: sent=%d delivered=%d lost=%d drops=%d corrupts=%d dups=%d retries=%d\n",
			st.Sent, st.Delivered, st.Lost, st.Drops, st.Corrupts, st.Dups, st.Retries)
	}
	if *fingerprint {
		fmt.Println(machineFingerprint(m, cycles))
	}
	if *stats {
		t := report.NewTable("per-node statistics",
			"node", "instructions", "mem ops", "wide ops", "spawns", "threads done", "utilization")
		for i, n := range m.Nodes {
			t.AddRow(i, n.Instructions, n.MemOps, n.WideOps, n.Spawns, n.Completed, m.Utilization(i))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
