package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.pasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const countdown = `
main:
    addi r1, r0, 5
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    print r1
    halt
`

func TestRunProgram(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithStats(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-stats", "-nodes", "2", path}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-dis", path}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent.pasm"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadEntry(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-entry", "nowhere", path}); err == nil {
		t.Fatal("bad entry label accepted")
	}
}

func TestAssemblyError(t *testing.T) {
	path := writeProgram(t, "main:\n bogus r1\n")
	if err := run([]string{path}); err == nil {
		t.Fatal("assembly error not surfaced")
	}
}

func TestCycleBudgetExceeded(t *testing.T) {
	path := writeProgram(t, "main:\n jmp main\n")
	if err := run([]string{"-max", "100", path}); err == nil {
		t.Fatal("livelock not reported")
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing program accepted")
	}
}
