package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.pasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const countdown = `
main:
    addi r1, r0, 5
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    print r1
    halt
`

func TestRunProgram(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithStats(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-stats", "-nodes", "2", path}); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-dis", path}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run([]string{"/nonexistent.pasm"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBadEntry(t *testing.T) {
	path := writeProgram(t, countdown)
	if err := run([]string{"-entry", "nowhere", path}); err == nil {
		t.Fatal("bad entry label accepted")
	}
}

func TestAssemblyError(t *testing.T) {
	path := writeProgram(t, "main:\n bogus r1\n")
	if err := run([]string{path}); err == nil {
		t.Fatal("assembly error not surfaced")
	}
}

func TestCycleBudgetExceeded(t *testing.T) {
	path := writeProgram(t, "main:\n jmp main\n")
	if err := run([]string{"-max", "100", path}); err == nil {
		t.Fatal("livelock not reported")
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing program accepted")
	}
}

// captureRun runs the CLI with stdout captured and returns its output.
func captureRun(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run %v: %v", args, runErr)
	}
	return string(out)
}

func TestParallelFingerprintMatchesSerial(t *testing.T) {
	// The CLI face of the PDES determinism guarantee: the gups builtin
	// fingerprints identically on 1 and 4 workers, flat and hop-routed.
	for _, topo := range []string{"flat", "torus"} {
		base := []string{"-builtin", "gups", "-nodes", "16", "-threads", "2",
			"-topology", topo, "-latency", "20", "-fingerprint"}
		serial := captureRun(t, append([]string{"-parallel", "1"}, base...))
		par := captureRun(t, append([]string{"-parallel", "4"}, base...))
		if serial != par {
			t.Errorf("%s: output differs across -parallel:\nserial:\n%s\nparallel:\n%s", topo, serial, par)
		}
		if !strings.Contains(serial, "fingerprint=0x") {
			t.Errorf("%s: no fingerprint line in output:\n%s", topo, serial)
		}
	}
}

func TestParallelRejectsZeroWorkers(t *testing.T) {
	if err := run([]string{"-parallel", "0", "-builtin", "gups"}); err == nil {
		t.Fatal("-parallel 0 accepted")
	}
}
