package repro

// Determinism regression tests: every registered experiment must be a
// pure function of its Config — same seed, same bytes — and the engine's
// concurrent execution path must reproduce the serial path exactly.
// Under -short only a cheap experiment subset runs; the full suite runs
// in the regular (tier-1) pass.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// determinismSubjects returns the experiments under test: all of them, or
// a cheap subset in -short mode.
func determinismSubjects(t *testing.T) []*core.Experiment {
	t.Helper()
	if !testing.Short() {
		return core.Registry()
	}
	var out []*core.Experiment
	for _, id := range []string{"table1", "fig7", "bandwidth"} {
		e, err := core.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestExperimentsDeterministic(t *testing.T) {
	// Two runs with the same seed in Quick mode: byte-identical rendered
	// output and identical Outcome.Metrics, for every experiment.
	cfg := core.Config{Seed: 2004, Quick: true}
	for _, e := range determinismSubjects(t) {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			run := func() (*core.Outcome, []byte) {
				var buf bytes.Buffer
				o, err := e.Run(cfg, &buf)
				if err != nil {
					t.Fatal(err)
				}
				return o, buf.Bytes()
			}
			o1, out1 := run()
			o2, out2 := run()
			if !bytes.Equal(out1, out2) {
				t.Errorf("%s: rendered output differs between identical runs", e.ID)
			}
			if !reflect.DeepEqual(o1.Metrics, o2.Metrics) {
				t.Errorf("%s: metrics differ between identical runs:\n%v\nvs\n%v",
					e.ID, o1.Metrics, o2.Metrics)
			}
			if !reflect.DeepEqual(o1.Checks, o2.Checks) {
				t.Errorf("%s: checks differ between identical runs", e.ID)
			}
		})
	}
}

func TestEngineParallelMatchesSerialPath(t *testing.T) {
	// The engine with many workers must produce the same Outcomes and the
	// same rendered byte stream as a serial pass over the same
	// experiments.
	cfg := core.Config{Seed: 2004, Quick: true}
	exps := determinismSubjects(t)

	var serialOut bytes.Buffer
	serial := make(map[string]*core.Outcome, len(exps))
	for _, e := range exps {
		serialOut.WriteString(core.Banner(e.ID, e.Title))
		o, err := e.Run(cfg, &serialOut)
		if err != nil {
			t.Fatal(err)
		}
		serial[e.ID] = o
		core.RenderChecks(o, &serialOut)
	}

	results, err := engine.New(engine.Options{Workers: 8}).Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	var engineOut bytes.Buffer
	if err := engine.WriteResults(&engineOut, results, 0.95); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut.Bytes(), engineOut.Bytes()) {
		t.Error("engine rendered stream differs from serial pass")
	}
	for _, r := range results {
		want := serial[r.ID]
		if !reflect.DeepEqual(r.Outcome.Metrics, want.Metrics) {
			t.Errorf("%s: engine metrics differ from serial run", r.ID)
		}
		if !reflect.DeepEqual(r.Outcome.Checks, want.Checks) {
			t.Errorf("%s: engine checks differ from serial run", r.ID)
		}
	}
}

func TestEngineFullSuiteMatchesCoreRunAll(t *testing.T) {
	// End to end against the real serial entry point: core.RunAll's
	// outcomes and bytes, reproduced by the concurrent engine over the
	// whole registry.
	if testing.Short() {
		t.Skip("full-suite comparison in -short mode")
	}
	cfg := core.Config{Seed: 2004, Quick: true}
	var serialOut bytes.Buffer
	serial, err := core.RunAll(cfg, &serialOut)
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.New(engine.Options{Workers: 4}).RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var engineOut bytes.Buffer
	if err := engine.WriteResults(&engineOut, results, 0.95); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialOut.Bytes(), engineOut.Bytes()) {
		// Find the first differing line for a readable failure.
		a := strings.Split(serialOut.String(), "\n")
		b := strings.Split(engineOut.String(), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("line %d differs:\nserial: %q\nengine: %q", i+1, a[i], b[i])
			}
		}
		t.Fatalf("outputs differ in length: serial %d lines, engine %d lines", len(a), len(b))
	}
	if len(results) != len(serial) {
		t.Fatalf("engine returned %d results, serial %d", len(results), len(serial))
	}
	for _, r := range results {
		if !reflect.DeepEqual(r.Outcome, serial[r.ID]) {
			t.Errorf("%s: engine outcome differs from core.RunAll", r.ID)
		}
	}
}
