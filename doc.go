// Package repro is a from-scratch Go reproduction of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (Upchurch,
// Sterling, Brockman; SC 2004).
//
// The implementation lives under internal/: a deterministic discrete-event
// simulation kernel (internal/sim) with queueing components
// (internal/queueing) stands in for the paper's SES/Workbench substrate;
// internal/hostpim and internal/parcelsys implement the paper's two
// studies; internal/analytic holds the closed forms; internal/core
// registers one runnable experiment per table and figure. The pimstudy
// command (cmd/pimstudy) regenerates every artifact; bench_test.go at this
// root carries one benchmark per artifact.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
