// Package repro is a from-scratch Go reproduction of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (Upchurch,
// Sterling, Brockman; SC 2004).
//
// The implementation lives under internal/: a deterministic discrete-event
// simulation kernel (internal/sim) with queueing components
// (internal/queueing) stands in for the paper's SES/Workbench substrate;
// internal/hostpim and internal/parcelsys implement the paper's two
// studies; internal/analytic holds the closed forms; internal/core
// registers one runnable experiment per table and figure; internal/engine
// executes any set of registered experiments concurrently on a bounded
// worker pool, with N-replication runs (derived seeds, mean/min/max/CI
// aggregation of metrics), structured progress events, and a result cache
// keyed by (experiment ID, Config). The pimstudy command (cmd/pimstudy)
// regenerates every artifact through the engine (-parallel,
// -replications, -json); bench_test.go at this root carries one benchmark
// per artifact plus serial-vs-engine suite benchmarks.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
