// Package repro is a from-scratch Go reproduction of "Analysis and
// Modeling of Advanced PIM Architecture Design Tradeoffs" (Upchurch,
// Sterling, Brockman; SC 2004).
//
// The implementation lives under internal/: a deterministic discrete-event
// simulation kernel (internal/sim) with queueing components
// (internal/queueing) stands in for the paper's SES/Workbench substrate;
// internal/hostpim and internal/parcelsys implement the paper's two
// studies; internal/analytic holds the closed forms; internal/scenario is
// the declarative layer above them all — one Scenario value (machine +
// workload) runs on every model backend (analytic, queueing/MVA, the DES
// simulation, the hybrid composition, and the execution-driven machine
// backend, which assembles ISA programs from internal/isa and runs them
// on the multi-node VM — programs are pre-decoded into per-node slabs
// for direct dispatch with superinstruction fusion and a
// self-modification guard, with the per-cycle interpretive path kept as
// a differential-testing oracle, and one run can execute on several PDES
// workers (Machine.RunParallel) via conservative time windows whose
// results are byte-identical to serial — with internal/dram row-buffer
// timing and internal/network parcel topologies) through a common interface, with
// named presets and a cross-backend agreement validator; internal/core
// registers one runnable experiment per table and figure (including the
// scenarios cross-validation); internal/engine executes any set of
// registered experiments concurrently on a bounded worker pool, with
// N-replication runs (derived seeds, mean/min/max/CI aggregation of
// metrics), structured progress events, and a bounded LRU result cache
// keyed by (experiment ID, Config). The pimstudy command (cmd/pimstudy)
// regenerates every artifact through the engine (-parallel,
// -replications, -json) and runs scenario presets on any backend
// (-scenario, -backend); pimsweep sweeps model parameters or scenario
// fields by name; bench_test.go at this root carries one benchmark per
// artifact plus serial-vs-engine suite benchmarks. The pimbench command
// (cmd/pimbench) is the benchmark-trajectory harness: it times the
// artifact suite and the substrate micro-benchmarks and appends a
// machine-readable BENCH_<n>.json snapshot (ns/op, allocs/op, suite
// wall-clock, git SHA), which CI compares against the committed baseline
// as a perf regression gate. Native Go fuzz targets guard the parcel wire
// codec (FuzzParcelCodec: round trip plus checksum/truncation corruption
// rejection), the assembler (FuzzAsmRoundTrip: assemble -> disassemble ->
// assemble fixed point), and the interpreter (FuzzMachineExecute: random
// images fault cleanly, never panic); CI runs each for a few seconds per
// push.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
