// dramexplore example: the §2.1 "hidden bandwidth" argument, measured.
// It sweeps access patterns from pure streaming to pure random over a PIM
// chip model and shows how row-buffer locality and bank parallelism
// produce the paper's 50 Gbit/s-per-macro and >1 Tbit/s-per-chip numbers —
// and what happens to a cache-line-sized fraction of that bandwidth when
// locality disappears.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func main() {
	macro := dram.PaperMacro()
	chip := dram.PaperChip()

	fmt.Println("paper macro:", macro.RowBits, "bit rows,", macro.WordBits, "bit words,",
		macro.RowAccessNS, "ns row /", macro.PageAccessNS, "ns page")
	fmt.Printf("arithmetic: stream %.1f Gbit/s, burst %.1f Gbit/s, random %.1f Gbit/s\n",
		macro.StreamBandwidthBitsPerSec()/1e9,
		macro.PeakPageBandwidthBitsPerSec()/1e9,
		macro.RandomWordBandwidthBitsPerSec()/1e9)
	fmt.Printf("chip (%d nodes): %.2f Tbit/s aggregate\n\n",
		chip.Banks, chip.PeakBandwidthBitsPerSec()/1e12)

	// Measure effective per-bank bandwidth under a locality sweep: each
	// access is sequential with probability `seq`, else uniform random.
	const accesses = 200000
	st := rng.New(7)
	t := report.NewTable("measured per-bank bandwidth vs access locality (open-page policy)",
		"P(sequential)", "row hit rate", "effective Gbit/s", "% of stream peak")
	for _, seq := range []float64{1.0, 0.95, 0.8, 0.5, 0.2, 0.0} {
		bank, err := dram.NewBank(macro, dram.OpenPage)
		if err != nil {
			log.Fatal(err)
		}
		totalNS := 0.0
		row, wordsLeft := 0, macro.WordsPerRow()
		for i := 0; i < accesses; i++ {
			if !st.Bernoulli(seq) {
				row = st.Intn(macro.Rows)
				wordsLeft = macro.WordsPerRow()
			} else if wordsLeft == 0 {
				row = (row + 1) % macro.Rows
				wordsLeft = macro.WordsPerRow()
			}
			totalNS += bank.Access(row)
			wordsLeft--
		}
		bw := dram.EffectiveBandwidth(accesses, macro.WordBits, totalNS)
		t.AddRow(seq, bank.HitRate(), bw/1e9, 100*bw/macro.StreamBandwidthBitsPerSec())
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Page policy comparison on a mixed stream.
	fmt.Println()
	t2 := report.NewTable("open vs closed page policy on a 70% sequential stream",
		"policy", "row hit rate", "effective Gbit/s")
	for _, pol := range []dram.PagePolicy{dram.OpenPage, dram.ClosedPage} {
		bank, err := dram.NewBank(macro, pol)
		if err != nil {
			log.Fatal(err)
		}
		st2 := rng.New(13)
		totalNS := 0.0
		row := 0
		for i := 0; i < accesses; i++ {
			if !st2.Bernoulli(0.7) {
				row = st2.Intn(macro.Rows)
			}
			totalNS += bank.Access(row)
		}
		bw := dram.EffectiveBandwidth(accesses, macro.WordBits, totalNS)
		t2.AddRow(pol.String(), bank.HitRate(), bw/1e9)
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Bank parallelism: interleaved streaming across the whole chip.
	fmt.Println()
	c, err := dram.NewChip(chip, dram.OpenPage)
	if err != nil {
		log.Fatal(err)
	}
	perBankNS := make([]float64, c.NumBanks())
	words := int64(c.NumBanks()) * int64(macro.WordsPerRow()) * 64
	for addr := int64(0); addr < words; addr++ {
		bank, ns := c.Access(addr)
		perBankNS[bank] += ns
	}
	slowest := 0.0
	for _, ns := range perBankNS {
		if ns > slowest {
			slowest = ns
		}
	}
	agg := dram.EffectiveBandwidth(int(words), macro.WordBits, slowest)
	fmt.Printf("chip streaming measured: %.2f Tbit/s across %d banks (hit rate %.3f)\n",
		agg/1e12, c.NumBanks(), c.AggregateHitRate())

	// Execution-driven coda: the machine-dram preset runs the wide-word
	// stream triad in actual PIM assembly with every memory operation
	// timed through a per-node row-buffer bank — the same open/closed
	// page story, measured from instructions instead of address traces.
	fmt.Println()
	t3 := report.NewTable("stream triad on the ISA VM, per-node DRAM bank timing",
		"page policy", "row hit rate", "cycles", "cycles/chunk")
	s := scenario.MustFind("machine-dram")
	for _, policy := range []string{"open", "closed"} {
		s.Machine.PagePolicy = policy
		r, err := scenario.Run(s, "machine", scenario.Config{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(policy, r.Metrics[scenario.MetricRowHit],
			r.Metrics[scenario.MetricTotal], r.Metrics[scenario.MetricCyclesPerUpdate])
	}
	if err := t3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na 2048-bit row feeds four 8-word wide ops: open-page streaming hits")
	fmt.Println("3 of 4 accesses and the closed-page triad pays an activate on each.")
}
