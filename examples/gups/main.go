// gups example: the full workload-to-prediction loop the paper's intro
// motivates. Profile five synthetic kernels (streaming, GUPS random
// update, pointer chasing, 5-point stencil, Zipf histogram) against a
// concrete host cache, partition them between host and PIM by measured
// temporal locality, fit the paper's Table 1 model from the measurements,
// and predict the whole-application speedup of adding PIM nodes.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cache"
	"repro/internal/hostpim"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/workload"
)

func main() {
	hostCache := cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU}
	const opsPerKernel = 400000
	const mix = 0.3

	kernels := []workload.Generator{
		workload.NewStreamer(rng.New(1), 1<<26, 8, mix),
		workload.NewGUPS(rng.New(2), 1<<28, mix),
		workload.NewPointerChase(rng.New(3), 1<<20, mix),
		workload.NewStencil(rng.New(4), 2048, 2048, mix),
		workload.NewHistogram(rng.New(5), 512, 1.1, mix),
	}
	// Relative dynamic op weights of each kernel in the application.
	weights := []float64{2, 4, 2, 3, 1}

	var profiles []workload.Profile
	for _, k := range kernels {
		p, err := workload.Measure(k, hostCache, nil, opsPerKernel)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	placements := workload.Partition(profiles)

	t := report.NewTable("kernel profiles against a 32 KiB 4-way LRU host cache",
		"kernel", "weight", "mem-op mix", "miss rate", "placement")
	for i, pl := range placements {
		where := "host (HWP)"
		if pl.OnPIM {
			where = "PIM (LWP)"
		}
		t.AddRow(pl.Profile.Kernel, weights[i], pl.Profile.MixLS, pl.Profile.MissRate, where)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	params, err := workload.FitParams(hostpim.DefaultParams(), placements, weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted model: %%WL=%.3f  Pmiss(host)=%.3f  mix=%.3f  NB=%.3f\n\n",
		params.PctWL, params.Pmiss, params.MixLS, params.NB())

	t2 := report.NewTable("predicted application speedup from adding PIM nodes",
		"PIM nodes", "gain (analytic)", "gain (simulated)")
	for _, n := range []int{1, 4, 16, 64, 256} {
		p := params
		p.N = n
		an, err := hostpim.Analytic(p)
		if err != nil {
			log.Fatal(err)
		}
		p.W = 2e6 // scaled-down sim; statistics are W-invariant
		sr, err := hostpim.Simulate(p, hostpim.SimOptions{Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(n, an.Gain, sr.Gain)
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe GUPS and pointer-chase phases dominate the win: exactly the \"data")
	fmt.Println("intensive, no temporal locality\" regime the paper argues PIM serves.")

	// The execution-driven counterpart: the machine-gups preset runs real
	// GUPS assembly (LCG random updates) on the multi-node ISA VM. Where
	// the model above predicts speedup statistically, the machine backend
	// measures the issue rate of the actual random-update loop under
	// fine-grain multithreading.
	fmt.Println()
	t3 := report.NewTable("execution-driven GUPS on the ISA VM (machine backend)",
		"threads/node", "cycles", "cycles/update", "issue rate (ipc)")
	s := scenario.MustFind("machine-gups")
	for _, par := range []int{1, 2, 4, 8} {
		s.Workload.Parallelism = par
		r, err := scenario.Run(s, "machine", scenario.Config{Seed: 2004})
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(par, r.Metrics[scenario.MetricTotal],
			r.Metrics[scenario.MetricCyclesPerUpdate], r.Metrics[scenario.MetricIPC])
	}
	if err := t3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmore threads per node soak up the memory stalls: the measured")
	fmt.Println("cycles-per-update converge toward the single-issue bound.")
}
