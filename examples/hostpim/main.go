// hostpim example: a design-space walk for a hypothetical accelerator
// team. Given a fixed silicon budget, is it better to (a) halve the host's
// cache miss rate, or (b) double the PIM node count? The paper's NB
// parameter answers this directly; this example sweeps both options across
// workload mixes and renders Fig. 5/7-style comparisons, plus the NB
// sensitivity table.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/analytic"
	"repro/internal/hostpim"
	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	base := hostpim.DefaultParams()

	// Option A: better host cache (Pmiss 0.1 -> 0.05).
	betterCache := base
	betterCache.Pmiss = 0.05
	// Option B: the baseline host, but we may buy twice the PIM nodes.

	pcts := sweep.Linspace(0.1, 0.9, 9)
	t := report.NewTable("Design choice: halve Pmiss (A) vs double PIM nodes (B), N=16 baseline",
		"%WL", "gain(base,N=16)", "gain(A: Pmiss/2, N=16)", "gain(B: base, N=32)")
	for _, pct := range pcts {
		g := func(p hostpim.Params, n int) float64 {
			p.PctWL = pct
			p.N = n
			r, err := hostpim.Analytic(p)
			if err != nil {
				log.Fatal(err)
			}
			return r.Gain
		}
		t.AddRow(pct, g(base, 16), g(betterCache, 16), g(base, 32))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("NB(baseline)     = %.3f\n", base.NB())
	fmt.Printf("NB(better cache) = %.3f  (better host raises the bar for PIM)\n", betterCache.NB())

	fmt.Println("\nNB elasticities (d ln NB / d ln θ) — which knob moves the break-even most:")
	st := report.NewTable("", "parameter", "elasticity")
	for _, s := range analytic.NBSensitivities(base) {
		st.AddRow(s.Param, s.Elasticity)
	}
	if err := st.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Where does PIM stop paying off? Boundary of the winning region.
	fmt.Println()
	for _, n := range []int{1, 2, 3} {
		if pct, ok := analytic.BreakEvenPctWL(base, n); ok {
			fmt.Printf("N=%d: PIM wins only above %%WL = %.3f\n", n, pct)
		} else {
			fmt.Printf("N=%d: PIM wins (or ties) across the whole %%WL range\n", n)
		}
	}
}
