// hybrid example: the question a Cascade-era architect actually faces.
// Study 1 says 32 PIM nodes give ~10x on a half-low-locality workload —
// but that assumes PIM nodes never talk to each other. This example
// composes study 1 with study 2: the low-locality phase has a remote
// fraction over the PIM interconnect, and the gain becomes a function of
// interconnect latency and parcels per node. It then asks how good the
// interconnect must be (or how much parallelism the application must
// expose) to keep 90% of the ideal gain.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/hostpim"
	"repro/internal/hybrid"
	"repro/internal/report"
)

func main() {
	base := hybrid.DefaultParams() // %WL=0.5, N=32, r=0.3
	ideal, err := hostpim.Analytic(base.Host)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal study-1 gain (no inter-PIM communication): %.2fx\n\n", ideal.Gain)

	t := report.NewTable("hybrid gain vs interconnect latency and parcels per node",
		"latency (cycles)", "P=1", "P=4", "P=16", "P=64")
	for _, l := range []float64{0, 50, 200, 1000, 5000} {
		row := []any{l}
		for _, threads := range []int{1, 4, 16, 64} {
			p := base
			p.Latency = l
			p.ThreadsPerNode = threads
			r, err := hybrid.Analytic(p)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, r.Gain)
		}
		t.AddRow(row...)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// How much latency can each parallelism level absorb while keeping
	// 90% of the ideal gain?
	fmt.Println()
	for _, threads := range []int{1, 4, 16, 64} {
		lo, hi := 0.0, 1e6
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			p := base
			p.Latency = mid
			p.ThreadsPerNode = threads
			r, err := hybrid.Analytic(p)
			if err != nil {
				log.Fatal(err)
			}
			if r.Gain >= 0.9*ideal.Gain {
				lo = mid
			} else {
				hi = mid
			}
		}
		fmt.Printf("P=%-3d tolerates up to %7.0f cycles of latency at 90%% of ideal gain\n",
			threads, lo)
	}

	// Cross-check the analytic efficiency against a parcel simulation.
	fmt.Println()
	p := base
	p.Latency = 1000
	p.ThreadsPerNode = 16
	an, err := hybrid.Analytic(p)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := hybrid.AnalyticCalibrated(p, 40000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at L=1000, P=16: analytic gain %.2fx (eff %.2f), parcel-simulation-calibrated %.2fx (eff %.2f)\n",
		an.Gain, an.Efficiency, cal.Gain, cal.Efficiency)
}
