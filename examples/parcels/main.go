// parcels example: message-driven computation on the functional parcel
// machine (§4.1, Figs. 8–9), then the statistical latency-hiding study on
// the same mechanism (§4.2, Fig. 11).
//
// Part 1 builds a distributed histogram over 8 PIM nodes using AMO-add
// parcels and then a tree-sum via method-invocation parcels, round-tripping
// every parcel through the binary wire codec.
//
// Part 2 asks the paper's question for this machine: how much does
// split-transaction parcel processing buy once the network latency grows?
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/rng"
)

const (
	histogramBase = 0x1000 // per-node histogram bucket array
	methodSum     = 7      // tree-sum method id
)

func main() {
	part1FunctionalParcels()
	part2LatencyHiding()
}

func part1FunctionalParcels() {
	fmt.Println("== Part 1: message-driven histogram + tree sum over 8 PIM nodes ==")
	reg := parcel.NewRegistry()
	// methodSum: sum this node's buckets and AMO-add the partial into the
	// root's accumulator — one invocation parcel per node, one AMO parcel
	// back: classic parcel-style split transaction.
	reg.Register(methodSum, func(m *parcel.Memory, p *parcel.Parcel) []*parcel.Parcel {
		var local uint64
		for b := uint64(0); b < 16; b++ {
			local += m.Load(histogramBase + b)
		}
		return []*parcel.Parcel{{
			DestNode: p.SrcNode,
			DestAddr: p.ContAddr,
			Action:   parcel.ActionAMOAdd,
			Operands: []uint64{local},
			SrcNode:  p.DestNode,
			ContAddr: 0x9000, // ack cell, unused
		}}
	})

	m := parcel.NewMachine(8, reg)
	m.CheckWire = true // exercise Encode/Decode on every hop

	// Scatter 10k samples into per-node histogram buckets with AMO-adds.
	st := rng.New(42)
	var batch []*parcel.Parcel
	for i := 0; i < 10000; i++ {
		v := st.Normal(32, 8)
		bucket := uint64(v) % 16
		node := uint32(st.Intn(8))
		batch = append(batch, &parcel.Parcel{
			DestNode: node,
			DestAddr: histogramBase + bucket,
			Action:   parcel.ActionAMOAdd,
			Operands: []uint64{1},
			SrcNode:  0,
			ContAddr: 0x8000,
		})
	}
	if _, err := m.Run(batch...); err != nil {
		log.Fatal(err)
	}

	// Gather: invoke methodSum on every node; partials AMO-add into node
	// 0's accumulator at 0x40.
	var gather []*parcel.Parcel
	for n := uint32(0); n < 8; n++ {
		gather = append(gather, &parcel.Parcel{
			DestNode: n,
			Action:   parcel.ActionInvoke,
			MethodID: methodSum,
			SrcNode:  0,
			ContAddr: 0x40,
		})
	}
	if _, err := m.Run(gather...); err != nil {
		log.Fatal(err)
	}
	total := m.Nodes[0].Mem.Load(0x40)
	fmt.Printf("parcels delivered: %d (all wire-verified)\n", m.Delivered)
	fmt.Printf("histogram total via tree-sum parcels: %d (want 10000)\n", total)
	if total != 10000 {
		log.Fatalf("histogram lost samples: %d", total)
	}
	fmt.Println()
}

func part2LatencyHiding() {
	fmt.Println("== Part 2: how much latency can parcels hide on this machine? ==")
	t := report.NewTable("split-transaction vs blocking message passing (16 nodes, 40% remote)",
		"latency (cycles)", "parallelism", "ops ratio", "control idle", "test idle")
	for _, lat := range []float64{50, 500, 5000} {
		for _, par := range []int{1, 8, 64} {
			p := parcelsys.DefaultParams()
			p.RemoteFrac = 0.4
			p.Latency = lat
			p.Parallelism = par
			p.Horizon = 50000
			r, err := parcelsys.Run(p)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(lat, par, r.Ratio, r.Control.IdleFrac, r.Test.IdleFrac)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreading: ratio ~1 at low latency/low parallelism; an order of magnitude")
	fmt.Println("once latency is large and enough parcels are resident (the paper's Fig. 11).")
}
