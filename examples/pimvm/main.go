// pimvm example: message-driven computation in PIM assembly. A
// divide-and-conquer tree sum across all nodes: node 0 spawns a worker on
// every node (parcel-style remote thread creation), each worker reduces
// its local vector with row-buffer-wide vsum instructions and AMO-adds its
// partial into node 0's accumulator; node 0 spins until all partials have
// arrived. The same experiment is then repeated with a sweep of network
// latencies to show the multithreaded nodes hiding parcel latency.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
)

// program computes: each node sums dataWords words starting at `data` and
// AMO-adds the result into node 0's mem[acc]; node 0 counts completions.
const program = `
; memory map (per node)
;   9000: accumulator (node 0 only)
;   9001: completion counter (node 0 only)
;   8192: local data vector (256 words)

main:                      ; runs on node 0
    addi r3, r0, 0         ; node cursor
    addi r4, r0, nodes
    addi r5, r0, worker
fan:
    spawn r0, r3, r5       ; start worker on node r3
    addi r3, r3, 1
    bne  r3, r4, fan
    ; wait for all partials
    addi r6, r0, 9001
wait:
    ld   r7, r6, 0
    bne  r7, r4, wait
    ; print the grand total
    addi r8, r0, 9000
    ld   r9, r8, 0
    print r9
    halt

worker:                    ; runs on every node
    addi r3, r0, 8192      ; vector base
    addi r4, r0, 0         ; partial sum
    addi r5, r0, 32        ; 256 words / 8-wide vsum = 32 chunks
chunk:
    vsum r6, r3
    add  r4, r4, r6
    addi r3, r3, 8
    addi r5, r5, -1
    bne  r5, r0, chunk
    ; send the partial home: spawn an accumulate thread on node 0
    addi r7, r0, 0         ; destination node 0
    addi r8, r0, accum
    spawn r4, r7, r8       ; r1 at the far end = partial
    halt

accum:                     ; runs on node 0, once per worker
    addi r3, r0, 9000
    amoadd r5, r3, r1      ; fold the partial in
    addi r3, r0, 9001
    addi r4, r0, 1
    amoadd r5, r3, r4      ; completion count
    halt

nodes: .word 0             ; patched below (label used as constant via ld)
`

func main() {
	const nodes = 8
	const dataWords = 256

	// The assembly references `nodes` as an immediate label constant; the
	// label resolves to its address, so instead we patch the instruction
	// stream by assembling with the count inlined.
	prog, err := isa.Assemble(replaceNodesConstant(program, nodes))
	if err != nil {
		log.Fatal(err)
	}

	for _, latency := range []int64{10, 200, 2000} {
		timing := isa.DefaultTiming()
		timing.NetLatency = latency
		m, err := isa.NewMachine(nodes, 16384, timing)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadAll(prog); err != nil {
			log.Fatal(err)
		}
		// Fill each node's vector: node i holds values i*dataWords+k.
		want := uint64(0)
		for i, n := range m.Nodes {
			for k := 0; k < dataWords; k++ {
				v := uint64(i*dataWords + k)
				n.Mem[8192+k] = v
				want += v
			}
		}
		var got uint64
		m.Output = func(node int, v uint64) { got = v }
		entry, err := prog.Entry("main")
		if err != nil {
			log.Fatal(err)
		}
		m.Nodes[0].StartThread(entry, 0, 0)
		m.MaxCycles = 10_000_000
		cycles, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if got != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("latency %4d: tree sum = %10d  [%s]  in %6d cycles, %d instructions\n",
			latency, got, status, cycles, m.TotalInstructions())
	}
	fmt.Println("\nnote: total cycles grow far slower than latency — the fan-out of")
	fmt.Println("worker parcels overlaps flight time with computation (the paper's §4).")
}

// replaceNodesConstant rewrites `addi r4, r0, nodes` to use the literal
// node count (the assembler treats bare identifiers as label addresses, so
// a true constant must be inlined).
func replaceNodesConstant(src string, nodes int) string {
	out := ""
	for _, line := range splitLines(src) {
		if line == "    addi r4, r0, nodes" {
			line = fmt.Sprintf("    addi r4, r0, %d", nodes)
		}
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	lines = append(lines, cur)
	return lines
}
