// pimvm example: message-driven computation in PIM assembly. A
// divide-and-conquer tree sum across all nodes (the reference
// isa.TreeSumProgram): node 0 spawns a worker on every node (parcel-style
// remote thread creation), each worker reduces its local vector with
// row-buffer-wide vsum instructions and AMO-adds its partial into node
// 0's accumulator; node 0 spins until all partials have arrived. The
// experiment is repeated over a sweep of network latencies to show the
// multithreaded nodes hiding parcel latency, then over the
// internal/network topologies (ring, mesh, hypercube) at a fixed per-hop
// cost — the flat-latency assumption the paper makes, stress-tested.
package main

import (
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/network"
)

const nodes = 16

// runTreeSum executes the tree sum once and returns (total cycles, sum
// correct).
func runTreeSum(latency int64, topo network.Topology) (int64, bool) {
	layout := isa.DefaultTreeSumLayout()
	prog, err := isa.TreeSumProgram(nodes, layout)
	if err != nil {
		log.Fatal(err)
	}
	timing := isa.DefaultTiming()
	timing.NetLatency = latency
	m, err := isa.NewMachine(nodes, 16384, timing)
	if err != nil {
		log.Fatal(err)
	}
	if topo != nil {
		m.NetDelay = network.HopDelay(topo, float64(latency))
	}
	if err := m.LoadAll(prog); err != nil {
		log.Fatal(err)
	}
	// Fill each node's vector: node i holds values i*words+k.
	want := uint64(0)
	for i, n := range m.Nodes {
		for k := 0; k < layout.DataWords; k++ {
			v := uint64(i*layout.DataWords + k)
			n.Mem[layout.DataBase+uint64(k)] = v
			want += v
		}
	}
	var got uint64
	m.Output = func(node int, v uint64) { got = v }
	entry, err := prog.Entry("main")
	if err != nil {
		log.Fatal(err)
	}
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 10_000_000
	cycles, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return cycles, got == want
}

func main() {
	fmt.Println("latency sweep (flat network):")
	for _, latency := range []int64{10, 200, 2000} {
		cycles, ok := runTreeSum(latency, nil)
		status := "ok"
		if !ok {
			status = "WRONG SUM"
		}
		fmt.Printf("  latency %4d: [%s] %7d cycles\n", latency, status, cycles)
	}
	fmt.Println("\nnote: total cycles grow far slower than latency — the fan-out of")
	fmt.Println("worker parcels overlaps flight time with computation (the paper's §4).")

	fmt.Println("\ntopology sweep (200 cycles per hop vs 200 flat):")
	topos := []struct {
		name string
		topo network.Topology
	}{
		{"flat", nil},
		{"hypercube", network.Hypercube{Dim: 4}},
		{"mesh", network.Mesh2D{W: 4, H: 4}},
		{"ring", network.Ring{N: nodes}},
	}
	for _, tc := range topos {
		cycles, ok := runTreeSum(200, tc.topo)
		status := "ok"
		if !ok {
			status = "WRONG SUM"
		}
		diameter := "-"
		if tc.topo != nil {
			diameter = fmt.Sprint(tc.topo.Diameter())
		}
		fmt.Printf("  %-10s [%s] %7d cycles (diameter %s)\n", tc.name, status, cycles, diameter)
	}
	fmt.Println("\nthe ring pays its diameter on every parcel; the hypercube (the")
	fmt.Println("EXECUBE interconnect the paper cites) stays within 2x of flat.")
}
