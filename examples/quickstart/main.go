// Quickstart: evaluate the paper's headline question in a few lines —
// "how much does bolting N PIM processors onto a host buy me for a
// workload that is %WL low-locality?" — using both the closed-form model
// and the discrete-event queuing simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/hostpim"
)

func main() {
	// Table 1 parameters; 60% of the work has no temporal locality and is
	// offloaded to 32 PIM nodes.
	p := hostpim.DefaultParams()
	p.PctWL = 0.6
	p.N = 32

	an, err := hostpim.Analytic(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic : control=%.3g cycles  pim=%.3g cycles  gain=%.2fx\n",
		an.ControlTime, an.Total, an.Gain)

	sr, err := hostpim.Simulate(p, hostpim.SimOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: control=%.3g cycles  pim=%.3g cycles  gain=%.2fx\n",
		sr.ControlTime, sr.Total, sr.Gain)

	fmt.Printf("\nbreak-even node count NB = %.3f (PIM wins for any %%WL once N > NB)\n", p.NB())
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		q := p
		q.N = n
		r, err := hostpim.Analytic(q)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if float64(n) > q.NB() {
			marker = "  <- PIM wins"
		}
		fmt.Printf("  N=%3d  time=%.4g cycles  gain=%.2fx%s\n", n, r.Total, r.Gain, marker)
	}
}
