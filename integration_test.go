package repro

// Cross-module integration tests: each test exercises a pipeline that no
// single package covers — workload profiling feeding the study-1 model,
// the ISA machine against the functional parcel machine, MVA bounds
// against the parcel-system simulation, and analytic multithreading theory
// against measured idle curves.

import (
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hostpim"
	"repro/internal/isa"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestEngineRegeneratesArtifactSuite(t *testing.T) {
	// The whole registered-experiment suite regenerates concurrently
	// through the engine: every artifact present, every check passing.
	if testing.Short() {
		t.Skip("full artifact regeneration in -short mode")
	}
	cfg := core.Config{Seed: 2004, Quick: true}
	var events int
	eng := engine.New(engine.Options{Workers: 4, Events: func(engine.Event) { events++ }})
	results, err := eng.RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.Registry()) {
		t.Fatalf("engine returned %d results for %d registered experiments",
			len(results), len(core.Registry()))
	}
	for i, e := range core.Registry() {
		r := results[i]
		if r.ID != e.ID {
			t.Errorf("result %d is %s, want %s (input order lost)", i, r.ID, e.ID)
		}
		if len(r.Output) == 0 {
			t.Errorf("%s regenerated no artifact output", r.ID)
		}
		for _, c := range r.Outcome.Failed() {
			t.Errorf("%s: check %q failed: %s", r.ID, c.Name, c.Detail)
		}
	}
	if want := 2 * len(results); events != want {
		t.Errorf("engine emitted %d progress events, want %d", events, want)
	}
}

func TestWorkloadToModelPipeline(t *testing.T) {
	// Profile kernels -> partition -> fit -> both evaluation paths agree.
	hostCache := cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU}
	kernels := []workload.Generator{
		workload.NewStencil(rng.New(4), 1024, 1024, 0.3),
		workload.NewGUPS(rng.New(2), 1<<26, 0.3),
	}
	var profiles []workload.Profile
	for _, k := range kernels {
		p, err := workload.Measure(k, hostCache, nil, 200000)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	placements := workload.Partition(profiles)
	if placements[0].OnPIM || !placements[1].OnPIM {
		t.Fatalf("partition wrong: %+v", placements)
	}
	params, err := workload.FitParams(hostpim.DefaultParams(), placements, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	params.N = 16
	an, err := hostpim.Analytic(params)
	if err != nil {
		t.Fatal(err)
	}
	params.W = 2e6
	sr, err := hostpim.Simulate(params, hostpim.SimOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(an.Gain, sr.Gain) > 0.05 {
		t.Errorf("fitted model: analytic gain %g vs simulated %g", an.Gain, sr.Gain)
	}
	if an.Gain < 2 {
		t.Errorf("half-GUPS app on 16 nodes gains only %g", an.Gain)
	}
}

func TestISAMachineMatchesParcelMachineSemantics(t *testing.T) {
	// The same distributed AMO-counter computation on the timed ISA
	// machine and the untimed functional parcel machine must agree.
	const nodes = 4
	const perNode = 5

	// Functional parcel machine.
	pm := parcel.NewMachine(nodes, parcel.NewRegistry())
	var ps []*parcel.Parcel
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			ps = append(ps, &parcel.Parcel{
				DestNode: 0, DestAddr: 0x100, Action: parcel.ActionAMOAdd,
				Operands: []uint64{uint64(n + 1)}, SrcNode: uint32(n), ContAddr: 0x200,
			})
		}
	}
	if _, err := pm.Run(ps...); err != nil {
		t.Fatal(err)
	}
	want := pm.Nodes[0].Mem.Load(0x100)

	// ISA machine: every node spawns perNode incrementer threads at node 0.
	src := `
main:
    nodeid r3
    addi r3, r3, 1     ; contribution = node id + 1
    addi r4, r0, 5     ; perNode
    addi r5, r0, bump
fan:
    spawn r3, r0, r5   ; node 0
    addi r4, r4, -1
    bne r4, r0, fan
    halt
bump:
    addi r3, r0, 256   ; 0x100
    amoadd r5, r3, r1
    halt
`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := isa.NewMachine(nodes, 2048, isa.DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	entry, _ := prog.Entry("main")
	for n := 0; n < nodes; n++ {
		m.Nodes[n].StartThread(entry, 0, 0)
	}
	m.MaxCycles = 1_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[0].Mem[256]; got != want {
		t.Errorf("ISA machine counter = %d, parcel machine = %d", got, want)
	}
}

func TestMVABoundsParcelSystem(t *testing.T) {
	// The test system's per-node throughput cannot exceed the closed-
	// network bottleneck bound for its workload.
	p := parcelsys.DefaultParams()
	p.Nodes = 8
	p.Parallelism = 32
	p.RemoteFrac = 0.5
	p.Latency = 200
	p.Horizon = 50000
	r, err := parcelsys.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Per-node ops/cycle in the test system.
	opsPerCycle := float64(r.Test.Ops) / (p.Horizon * float64(p.Nodes))
	// Bottleneck: the node CPU serves eOps useful + 1 access (+ overhead)
	// per access-cycle of eOps+1 ops.
	eOps := (1 - p.MixMem) / p.MixMem
	demand := eOps + p.MemCycles + p.RemoteFrac*(p.Overhead.CreateCycles+p.Overhead.AssimilateCycles)
	opsPerAccessCycle := eOps + 1
	bound := opsPerAccessCycle / demand // ops per cycle at 100% utilization
	if opsPerCycle > bound*1.02 {
		t.Errorf("test throughput %g ops/cycle exceeds bottleneck bound %g", opsPerCycle, bound)
	}
	// And with P=32 at short latency it should be close to the bound.
	if opsPerCycle < 0.85*bound {
		t.Errorf("saturated throughput %g well below bound %g", opsPerCycle, bound)
	}
}

func TestSaavedraBarreraPredictsIdleCurve(t *testing.T) {
	// The analytic multithreading model's efficiency curve should track
	// the measured busy fraction of the parcel test system across P.
	base := parcelsys.DefaultParams()
	base.Nodes = 16
	base.RemoteFrac = 0.5
	base.Latency = 400
	base.Horizon = 40000
	mm, err := analytic.ParcelModelFromWorkload(
		base.MixMem, base.RemoteFrac, base.MemCycles, base.Latency,
		base.Overhead.CreateCycles+base.Overhead.AssimilateCycles)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4, 16, 64} {
		p := base
		p.Parallelism = par
		r, err := parcelsys.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		measuredBusy := 1 - r.Test.IdleFrac
		predicted := mm.Efficiency(float64(par))
		if math.Abs(measuredBusy-predicted) > 0.15 {
			t.Errorf("P=%d: measured busy %g vs Saavedra-Barrera %g",
				par, measuredBusy, predicted)
		}
	}
}

func TestMVAAgreesWithSaavedraBarreraAtSaturation(t *testing.T) {
	// Two independent analytic models of the same phenomenon: the MVA
	// saturation population equals the Saavedra-Barrera saturation point
	// for a single-queue + delay network.
	const r, l, c = 12.0, 300.0, 4.0
	mm := analytic.MultithreadModel{R: r, L: l, C: c}
	stations := []queueing.Station{
		{Name: "cpu", Kind: queueing.QueueingStation, Demand: r + c},
		{Name: "net", Kind: queueing.DelayStation, Demand: l},
	}
	nStar, xMax, _, err := queueing.BottleneckAnalysis(stations)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nStar-mm.SaturationPoint()) > 1e-9 {
		t.Errorf("MVA N* = %g, Saavedra-Barrera P* = %g", nStar, mm.SaturationPoint())
	}
	// Saturated MVA throughput × runlength = saturated efficiency.
	if math.Abs(xMax*(r+c)-1) > 1e-12 {
		t.Errorf("bottleneck utilization bound broken")
	}
}

func TestDeterministicGoldenMetrics(t *testing.T) {
	// Regression guard: key fixed-seed results. Tolerances are loose
	// enough to survive refactors that preserve semantics, tight enough
	// to catch model changes.
	p := hostpim.DefaultParams()
	p.PctWL = 0.6
	p.N = 32
	an, err := hostpim.Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Gain-10.1266) > 0.01 {
		t.Errorf("golden analytic gain = %g, want ~10.13", an.Gain)
	}
	q := parcelsys.DefaultParams()
	q.Horizon = 30000
	r, err := parcelsys.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 2 || r.Ratio > 8 {
		t.Errorf("golden parcel ratio = %g outside [2, 8]", r.Ratio)
	}
}
