// Package analytic is the paper's MATLAB/Excel layer: closed-form design-
// space analysis on top of the two models. It evaluates the §3.1.2
// equations over parameter surfaces, locates the N = NB coincidence point,
// quantifies parameter sensitivities, and implements the Saavedra-Barrera
// multithreading efficiency model ([27]) that §5.2 invokes to explain the
// parcel results.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/hostpim"
)

// SurfacePoint is one evaluated point of the Fig. 7 surface.
type SurfacePoint struct {
	PctWL    float64
	N        int
	Relative float64 // Time_relative = 1 − %WL (1 − NB/N)
}

// Surface evaluates Time_relative over the cross product of pcts and
// nodes, in row-major order (pct outer, node inner).
func Surface(base hostpim.Params, pcts []float64, nodes []int) ([]SurfacePoint, error) {
	out := make([]SurfacePoint, 0, len(pcts)*len(nodes))
	for _, pct := range pcts {
		for _, n := range nodes {
			p := base
			p.PctWL = pct
			p.N = n
			if err := p.Validate(); err != nil {
				return nil, err
			}
			out = append(out, SurfacePoint{PctWL: pct, N: n, Relative: hostpim.TimeRelative(p)})
		}
	}
	return out, nil
}

// CoincidenceSpread returns the spread (max − min) of Time_relative across
// the given %WL values at node count n. At n = NB the spread is exactly 0
// — the paper's "point of coincidence... independent of %WL". Callers use
// it to verify (and plot) the orthogonality of NB.
func CoincidenceSpread(base hostpim.Params, pcts []float64, n float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	nb := base.NB()
	for _, pct := range pcts {
		rel := 1 - pct*(1-nb/n)
		if rel < lo {
			lo = rel
		}
		if rel > hi {
			hi = rel
		}
	}
	return hi - lo
}

// Sensitivity reports the local elasticity of NB with respect to each
// Table 1 parameter: d(ln NB)/d(ln θ), estimated by central finite
// differences. Elasticities answer the designer's question "which knob
// moves the break-even node count most".
type Sensitivity struct {
	Param      string
	Elasticity float64
}

// NBSensitivities returns elasticities for every continuous parameter of
// the model, sorted as declared.
func NBSensitivities(p hostpim.Params) []Sensitivity {
	type knob struct {
		name string
		get  func(*hostpim.Params) *float64
	}
	knobs := []knob{
		{"TLcycle", func(q *hostpim.Params) *float64 { return &q.TLCycle }},
		{"TMH", func(q *hostpim.Params) *float64 { return &q.TMH }},
		{"TCH", func(q *hostpim.Params) *float64 { return &q.TCH }},
		{"TML", func(q *hostpim.Params) *float64 { return &q.TML }},
		{"Pmiss", func(q *hostpim.Params) *float64 { return &q.Pmiss }},
		{"mix_l/s", func(q *hostpim.Params) *float64 { return &q.MixLS }},
	}
	out := make([]Sensitivity, 0, len(knobs))
	const h = 1e-6
	for _, kb := range knobs {
		up := p
		down := p
		pu := kb.get(&up)
		pd := kb.get(&down)
		base := *kb.get(&p)
		*pu = base * (1 + h)
		*pd = base * (1 - h)
		el := (math.Log(up.NB()) - math.Log(down.NB())) / (2 * h)
		out = append(out, Sensitivity{Param: kb.name, Elasticity: el})
	}
	return out
}

// BreakEvenPctWL returns the %WL at which the locality-aware control and
// the PIM-augmented system tie for a given N, i.e. the boundary of the
// "PIM wins" region in the (%WL, N) plane. Below NB nodes the system can
// still win because the control also degrades; the boundary solves
// gain(pct, N) = 1. Returns (pct, true) if a boundary exists in (0, 1).
func BreakEvenPctWL(base hostpim.Params, n int) (float64, bool) {
	p := base
	p.N = n
	gain := func(pct float64) float64 {
		q := p
		q.PctWL = pct
		r, err := hostpim.Analytic(q)
		if err != nil {
			return math.NaN()
		}
		return r.Gain
	}
	// Gain(0) == 1 exactly; test the sign of the slope by probing.
	const eps = 1e-6
	g := gain(eps)
	if math.IsNaN(g) {
		return 0, false
	}
	if g >= 1 {
		return 0, false // PIM wins (or ties) for every positive %WL
	}
	// Gain decreases then possibly recovers; find a crossing in (eps, 1].
	lo, hi := eps, 1.0
	if gain(hi) < 1 {
		return 0, false // PIM never recovers: no interior boundary
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if gain(mid) < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// MultithreadModel is the Saavedra-Barrera analysis of multithreaded
// latency tolerance the paper's §5.2 appeals to: a processor runs R cycles
// of work per thread between long-latency events of L cycles, paying C
// cycles per context switch, with P threads resident.
type MultithreadModel struct {
	R float64 // run length between latency events (cycles)
	L float64 // latency per event (cycles)
	C float64 // context switch cost (cycles)
}

// Validate checks the model.
func (m MultithreadModel) Validate() error {
	if m.R <= 0 || m.L < 0 || m.C < 0 {
		return fmt.Errorf("analytic: invalid multithread model %+v", m)
	}
	return nil
}

// SaturationPoint returns the number of threads at which the processor
// saturates: P* = 1 + L / (R + C).
func (m MultithreadModel) SaturationPoint() float64 {
	return 1 + m.L/(m.R+m.C)
}

// Efficiency returns the processor efficiency with P resident threads:
// linear regime  P·R/(R + C + L)        for P < P*,
// saturated      R/(R + C)              for P ≥ P*.
func (m MultithreadModel) Efficiency(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p < m.SaturationPoint() {
		return p * m.R / (m.R + m.C + m.L)
	}
	return m.R / (m.R + m.C)
}

// Speedup returns Efficiency(P)/Efficiency(1) — the gain from
// multithreading alone.
func (m MultithreadModel) Speedup(p float64) float64 {
	e1 := m.Efficiency(1)
	if e1 == 0 {
		return 0
	}
	return m.Efficiency(p) / e1
}

// ParcelModelFromWorkload maps the parcel-study workload parameters onto
// the multithread model: run length R is the expected busy time between
// remote events, latency L is the one-way flight time, and C the parcel
// create+assimilate overhead. This is the analytic skeleton beneath the
// Fig. 11 curves.
func ParcelModelFromWorkload(mixMem, remoteFrac, memCycles, latency, overhead float64) (MultithreadModel, error) {
	if mixMem <= 0 || mixMem > 1 || remoteFrac < 0 || remoteFrac > 1 {
		return MultithreadModel{}, fmt.Errorf("analytic: invalid workload mix %g/%g", mixMem, remoteFrac)
	}
	if remoteFrac == 0 {
		return MultithreadModel{R: 1, L: 0, C: 0}, nil
	}
	eOps := (1 - mixMem) / mixMem // useful ops per memory access
	// Accesses per remote event: 1/remoteFrac; all but the last are local.
	accesses := 1 / remoteFrac
	busy := accesses*eOps + (accesses-1)*memCycles + memCycles // remote access serviced at destination
	return MultithreadModel{R: busy, L: latency, C: overhead}, nil
}
