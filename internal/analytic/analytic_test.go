package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hostpim"
)

func TestSurfaceMatchesEquation(t *testing.T) {
	base := hostpim.DefaultParams()
	pcts := []float64{0, 0.5, 1}
	nodes := []int{1, 4, 64}
	pts, err := Surface(base, pcts, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("points = %d, want 9", len(pts))
	}
	nb := base.NB()
	for _, pt := range pts {
		want := 1 - pt.PctWL*(1-nb/float64(pt.N))
		if math.Abs(pt.Relative-want) > 1e-12 {
			t.Errorf("(%g, %d): %g != %g", pt.PctWL, pt.N, pt.Relative, want)
		}
	}
}

func TestCoincidenceAtNB(t *testing.T) {
	base := hostpim.DefaultParams()
	pcts := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1}
	// Exactly at NB, all %WL curves meet: spread = 0.
	if s := CoincidenceSpread(base, pcts, base.NB()); s > 1e-12 {
		t.Errorf("spread at N=NB = %g, want 0", s)
	}
	// Away from NB the curves fan out.
	if s := CoincidenceSpread(base, pcts, 2*base.NB()); s < 0.1 {
		t.Errorf("spread at 2NB = %g, expected a visible fan", s)
	}
	if s := CoincidenceSpread(base, pcts, base.NB()/2); s < 0.1 {
		t.Errorf("spread at NB/2 = %g, expected a visible fan", s)
	}
}

func TestNBSensitivitiesSigns(t *testing.T) {
	// NB = tL/tH. Raising LWP costs (TLcycle, TML) raises NB; raising HWP
	// costs (TCH, TMH, Pmiss) lowers it.
	sens := NBSensitivities(hostpim.DefaultParams())
	bySign := map[string]float64{}
	for _, s := range sens {
		bySign[s.Param] = s.Elasticity
	}
	for _, pos := range []string{"TLcycle", "TML"} {
		if bySign[pos] <= 0 {
			t.Errorf("elasticity of %s = %g, want > 0", pos, bySign[pos])
		}
	}
	for _, neg := range []string{"TMH", "TCH", "Pmiss"} {
		if bySign[neg] >= 0 {
			t.Errorf("elasticity of %s = %g, want < 0", neg, bySign[neg])
		}
	}
	// Elasticities of a ratio in log space: TL+TML elasticities apply to
	// the numerator only, so each must be <= 1 in magnitude.
	for _, s := range sens {
		if math.Abs(s.Elasticity) > 1+1e-6 {
			t.Errorf("elasticity of %s = %g, |e| should be <= 1", s.Param, s.Elasticity)
		}
	}
}

func TestNBSensitivityValue(t *testing.T) {
	// Analytical check for TLcycle: dln(NB)/dln(TL) = TL(1-mix)/tL.
	p := hostpim.DefaultParams()
	want := p.TLCycle * (1 - p.MixLS) / p.LWPOpCycles()
	sens := NBSensitivities(p)
	for _, s := range sens {
		if s.Param == "TLcycle" {
			if math.Abs(s.Elasticity-want) > 1e-4 {
				t.Errorf("TLcycle elasticity = %g, want %g", s.Elasticity, want)
			}
		}
	}
}

func TestBreakEvenPctWL(t *testing.T) {
	base := hostpim.DefaultParams() // locality-aware control
	// With many nodes PIM wins for every %WL: no interior boundary.
	if _, ok := BreakEvenPctWL(base, 64); ok {
		t.Error("found a break-even with N=64 where PIM always wins")
	}
	// With a single node the LWP array is slower than the degraded HWP
	// only for part of the range; check the boundary exists and brackets
	// a real sign change.
	if pct, ok := BreakEvenPctWL(base, 1); ok {
		p := base
		p.N = 1
		p.PctWL = pct
		r, err := hostpim.Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Gain-1) > 1e-6 {
			t.Errorf("gain at reported boundary = %g, want 1", r.Gain)
		}
	}
}

func TestMultithreadSaturation(t *testing.T) {
	m := MultithreadModel{R: 10, L: 90, C: 0}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp := m.SaturationPoint(); math.Abs(sp-10) > 1e-12 {
		t.Errorf("saturation point = %g, want 10", sp)
	}
	// Below saturation: linear. E(1) = 10/100 = 0.1; E(5) = 0.5.
	if e := m.Efficiency(1); math.Abs(e-0.1) > 1e-12 {
		t.Errorf("E(1) = %g", e)
	}
	if e := m.Efficiency(5); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("E(5) = %g", e)
	}
	// At/above saturation: R/(R+C) = 1.
	if e := m.Efficiency(10); math.Abs(e-1) > 1e-12 {
		t.Errorf("E(10) = %g", e)
	}
	if e := m.Efficiency(100); math.Abs(e-1) > 1e-12 {
		t.Errorf("E(100) = %g", e)
	}
}

func TestMultithreadSwitchCostCapsEfficiency(t *testing.T) {
	m := MultithreadModel{R: 10, L: 90, C: 10}
	// Saturated efficiency = R/(R+C) = 0.5, never 1.
	if e := m.Efficiency(1000); math.Abs(e-0.5) > 1e-12 {
		t.Errorf("saturated efficiency with switch cost = %g, want 0.5", e)
	}
}

func TestMultithreadEfficiencyMonotone(t *testing.T) {
	err := quick.Check(func(rRaw, lRaw, cRaw, p1Raw, p2Raw uint8) bool {
		m := MultithreadModel{
			R: 1 + float64(rRaw%50),
			L: float64(lRaw % 200),
			C: float64(cRaw % 20),
		}
		p1 := 1 + float64(p1Raw%32)
		p2 := p1 + 1 + float64(p2Raw%32)
		return m.Efficiency(p2) >= m.Efficiency(p1)-1e-12
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestMultithreadSpeedup(t *testing.T) {
	m := MultithreadModel{R: 10, L: 90, C: 0}
	// Speedup at saturation: E(10)/E(1) = 1/0.1 = 10.
	if s := m.Speedup(10); math.Abs(s-10) > 1e-12 {
		t.Errorf("speedup = %g, want 10", s)
	}
}

func TestParcelModelFromWorkload(t *testing.T) {
	m, err := ParcelModelFromWorkload(0.3, 0.5, 10, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	// accesses per remote = 2; busy = 2*(7/3) + 1*10 + 10 = 24.67.
	want := 2*(0.7/0.3) + 10 + 10
	if math.Abs(m.R-want) > 1e-9 {
		t.Errorf("R = %g, want %g", m.R, want)
	}
	if m.L != 500 || m.C != 4 {
		t.Errorf("L/C = %g/%g", m.L, m.C)
	}
	// Zero remote: no latency to hide.
	m0, err := ParcelModelFromWorkload(0.3, 0, 10, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m0.L != 0 {
		t.Errorf("L = %g with no remote traffic", m0.L)
	}
	if _, err := ParcelModelFromWorkload(0, 0.5, 10, 500, 4); err == nil {
		t.Error("invalid mix accepted")
	}
}

func TestSurfaceRejectsInvalid(t *testing.T) {
	base := hostpim.DefaultParams()
	if _, err := Surface(base, []float64{2}, []int{1}); err == nil {
		t.Error("invalid pct accepted")
	}
	if _, err := Surface(base, []float64{0.5}, []int{0}); err == nil {
		t.Error("invalid node count accepted")
	}
}
