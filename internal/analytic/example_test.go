package analytic_test

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/hostpim"
)

// The Saavedra-Barrera multithreading model the paper's §5.2 invokes:
// 10 cycles of run length against 90 cycles of latency saturates at 10
// threads.
func ExampleMultithreadModel() {
	m := analytic.MultithreadModel{R: 10, L: 90, C: 0}
	fmt.Printf("saturation at %.0f threads; E(1)=%.2f E(5)=%.2f E(10)=%.2f\n",
		m.SaturationPoint(), m.Efficiency(1), m.Efficiency(5), m.Efficiency(10))
	// Output: saturation at 10 threads; E(1)=0.10 E(5)=0.50 E(10)=1.00
}

// The spread of the Fig. 7 curves vanishes exactly at N = NB.
func ExampleCoincidenceSpread() {
	base := hostpim.DefaultParams()
	pcts := []float64{0.1, 0.5, 0.9}
	fmt.Printf("spread at NB: %.3f, at 2NB: %.3f\n",
		analytic.CoincidenceSpread(base, pcts, base.NB()),
		analytic.CoincidenceSpread(base, pcts, 2*base.NB()))
	// Output: spread at NB: 0.000, at 2NB: 0.400
}
