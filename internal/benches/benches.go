// Package benches holds the substrate micro-benchmark drivers shared by
// the in-repo benchmarks (internal/sim, the root bench_test.go) and the
// pimbench trajectory harness. The BENCH_<n>.json snapshot names promise
// a stable workload per name; keeping one driver per workload here means
// a tuning change cannot silently fork the measured code between `go
// test -bench` and the CI perf gate.
package benches

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/hostpim"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/parcelsys"
	"repro/internal/queueing"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
)

// KernelSchedule measures the callback-event path: schedule a batch of
// events, drain them. With the free list, steady-state scheduling reuses
// recycled event structs instead of heap-allocating one per Schedule, and
// the value Timer handle lives on the caller's stack.
func KernelSchedule(b *testing.B) {
	k := sim.NewKernel()
	var sink int
	fn := func() { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 256
	for done := 0; done < b.N; done += batch {
		for j := 0; j < batch; j++ {
			k.Schedule(sim.Time(j), fn)
		}
		if _, err := k.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	if sink < 0 {
		b.Fatal("unreachable")
	}
}

// KernelWaitResume measures the kernel's hottest path — a process
// advancing time with Wait. Under direct handoff the process's own
// resumption is dispatched by the parking goroutine itself, so a burst of
// Waits costs one controller round trip per Advance window, not two
// channel operations per event. The ns/op is per completed Wait.
func KernelWaitResume(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("waiter", func(c *sim.Context) {
		for {
			c.Wait(1)
		}
	})
	b.Cleanup(func() { _ = k.Run(k.Now()) })
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 1024
	for done := 0; done < b.N; done += batch {
		if err := k.Advance(sim.Time(done + batch)); err != nil {
			b.Fatal(err)
		}
	}
}

// KernelHandoffChain measures a proc→proc resumption chain: two processes
// alternate at the same timestamps, so every dispatch hands the logical
// thread directly from one process goroutine to the other (one channel
// operation per switch instead of a round trip through a central event
// loop).
func KernelHandoffChain(b *testing.B) {
	k := sim.NewKernel()
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(c *sim.Context) {
			for {
				c.Wait(1)
			}
		})
	}
	b.Cleanup(func() { _ = k.Run(k.Now()) })
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 512
	for done := 0; done < b.N; done += batch {
		// Each window completes batch Waits per process; 2 procs → count
		// iterations in proc-waits.
		if err := k.Advance(sim.Time((done + batch) / 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// waitLoop is the activity counterpart of the KernelHandoffChain /
// KernelWaitResume workers: an endless 1-cycle wait loop.
type waitLoop struct{}

func (waitLoop) Step(a *sim.ActCtx) { a.Wait(1) }

// KernelActivityChain is KernelHandoffChain in activity mode: two
// activities alternate at the same timestamps, so every switch is a heap
// pop plus an inline Step — no goroutines, no channel operations. The
// ns/op gap to KernelHandoffChain is the cost the activity execution mode
// removes from every proc→proc switch.
func KernelActivityChain(b *testing.B) {
	k := sim.NewKernel()
	var w waitLoop
	k.SpawnActivity("a0", w)
	k.SpawnActivity("a1", w)
	b.Cleanup(func() { _ = k.Run(k.Now()) })
	b.ReportAllocs()
	b.ResetTimer()
	const batch = 512
	for done := 0; done < b.N; done += batch {
		// Each window completes batch Waits per activity; 2 activities →
		// count iterations in activity-waits.
		if err := k.Advance(sim.Time((done + batch) / 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// MM1Simulation measures throughput of the queueing toolkit on a standard
// M/M/1 at rho=0.7, using the activity-mode stations (jobs are values
// flowing through inline handlers; the Proc-based stations remain for
// interactive models and are covered by the queueing package's own
// benchmarks).
func MM1Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		arr := rng.NewWithStream(uint64(i), 1)
		svc := rng.NewWithStream(uint64(i), 2)
		sink := queueing.NewSink("out")
		srv := queueing.NewActServer(k, "srv", 1,
			func(*queueing.Job) float64 { return svc.Exp(1) }, sink)
		src := queueing.NewActSource(k, "in", func() float64 { return arr.Exp(1 / 0.7) }, srv)
		sink.Recycle = src.Dispose
		src.Start()
		if err := k.Run(5000); err != nil {
			b.Fatal(err)
		}
	}
}

// HostPIMSimulate measures one full study-1 simulation point.
func HostPIMSimulate(b *testing.B) {
	p := hostpim.DefaultParams()
	p.PctWL = 0.5
	p.N = 16
	p.W = 1e6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hostpim.Simulate(p, hostpim.SimOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ParcelSysRun measures one full study-2 paired run.
func ParcelSysRun(b *testing.B) {
	p := parcelsys.DefaultParams()
	p.Horizon = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		if _, err := parcelsys.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// simParcel1K drives the big-run workload behind both sim-kernel
// parallelism benchmarks: the parcel-scale-1k scenario shape (1024 nodes
// x 8 parcels over a 500-cycle interconnect) on the partitioned parcelsys
// formulation, executed with the given worker count. One driver for both
// names keeps the serial baseline and the parallel run measuring the
// identical workload — the partitioned kernel's results are identical for
// every worker count >= 1, so the ns/op ratio is the single-run speedup
// and nothing else.
func simParcel1K(b *testing.B, workers int) {
	p := parcelsys.DefaultParams()
	p.Nodes = 1024
	p.Parallelism = 8
	p.RemoteFrac = 0.4
	p.Latency = 500
	p.Horizon = 20000
	p.RunParallel = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		if _, err := parcelsys.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// SimParcel1K is the serial baseline of the sim-kernel pair: the
// parcel-scale-1k workload on one shard (the plain serial kernel runs the
// whole model).
func SimParcel1K(b *testing.B) { simParcel1K(b, 1) }

// SimParcelPar is the parallel side of the sim-kernel pair: the identical
// workload partitioned across GOMAXPROCS shards (floored at 2, so the
// windowed kernel is exercised even on one core) with the 500-cycle
// one-way latency as the conservative lookahead. On a single-core host
// expect parity modulo the window machinery's overhead (~10%); with real
// cores the shards run concurrently and the ratio is the speedup.
func SimParcelPar(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	simParcel1K(b, w)
}

// MachineGUPS measures the execution-driven backend's substrate: the ISA
// interpreter running the GUPS random-update kernel on an 8-node machine
// with 4 threads per node. One Machine is Reset and re-driven per
// iteration, so the ns/op tracks the stepping loop's cost and allocs/op
// pins its slab discipline (steady state: 0).
func MachineGUPS(b *testing.B) {
	layout := isa.DefaultGUPSLayout()
	layout.Updates = 256
	prog, err := isa.GUPSProgram(layout)
	if err != nil {
		b.Fatal(err)
	}
	const nodes, threads = 8, 4
	m, err := isa.NewMachine(nodes, 16384, isa.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	entry, err := prog.Entry("main")
	if err != nil {
		b.Fatal(err)
	}
	sm := rng.SplitMix64{State: 2004}
	run := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			for t := 0; t < threads; t++ {
				m.Nodes[i].StartThread(entry, sm.Next(), 0)
			}
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the slabs outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// machineGUPS256 drives the big-run workload behind both single-run
// parallelism benchmarks: GUPS on 256 nodes x 4 threads over a 16x16
// torus (the machine-gups-256 scenario preset's shape), executed on the
// given PDES worker count. One driver for both names keeps the serial
// baseline and the parallel run measuring the identical workload, so
// their ratio is the single-run speedup and nothing else.
func machineGUPS256(b *testing.B, parallelism int) {
	layout := isa.DefaultGUPSLayout()
	layout.Updates = 128
	prog, err := isa.GUPSProgram(layout)
	if err != nil {
		b.Fatal(err)
	}
	const nodes, threads, perHop = 256, 4, 20.0
	m, err := isa.NewMachine(nodes, 16384, isa.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	topo, err := network.ByName("torus", nodes)
	if err != nil {
		b.Fatal(err)
	}
	m.NetDelay = network.HopDelay(topo, perHop)
	m.NetLookahead = network.HopLookahead(topo, perHop)
	m.Parallelism = parallelism
	entry, err := prog.Entry("main")
	if err != nil {
		b.Fatal(err)
	}
	sm := rng.SplitMix64{State: 2004}
	run := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			for t := 0; t < threads; t++ {
				m.Nodes[i].StartThread(entry, sm.Next(), 0)
			}
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the slabs (and worker plumbing) outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// MachineGUPS256 is the serial baseline of the big-run pair: the
// machine-gups-256 workload on one worker.
func MachineGUPS256(b *testing.B) { machineGUPS256(b, 1) }

// MachineGUPSPar is the parallel side of the big-run pair: the identical
// workload on GOMAXPROCS PDES workers. Its ns/op against MachineGUPS256's
// is the single-run speedup; on a multi-core host with P >= 4 the
// conservative windows are wide enough (one torus hop = 20 cycles) that
// the partitions dominate the barrier cost.
func MachineGUPSPar(b *testing.B) { machineGUPS256(b, runtime.GOMAXPROCS(0)) }

// MachineDecode measures the pre-decoded dispatch layer in isolation: a
// register-only countdown kernel on one node and one thread, so no
// memory stalls break the issue stream and the superinstruction fuser
// sees its single-ready-thread precondition every cycle. The ns/op is
// (nearly) pure decode-and-issue cost; allocs/op pins the decoded slab's
// reuse across Reset/Load (steady state: 0).
func MachineDecode(b *testing.B) {
	prog, err := isa.Assemble(`
main:
    addi r1, r0, 4096
    lui  r2, 1
loop:
    xor r3, r1, r2
    add r4, r3, r1
    shr r5, r4, r2
    and r6, r5, r3
    or  r7, r6, r1
    sub r2, r7, r6
    addi r1, r1, -1
    bne r1, r0, loop
    halt
`)
	if err != nil {
		b.Fatal(err)
	}
	m, err := isa.NewMachine(1, 2048, isa.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	entry, err := prog.Entry("main")
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			b.Fatal(err)
		}
		m.Nodes[0].StartThread(entry, 0, 0)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the slabs outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// MachineFaultTreeSum measures the resilient delivery path: the treesum
// parcel fan-in on 16 nodes with the mixed fault plan armed (12% drop, 6%
// corrupt, 10% dup, 8-cycle jitter) and the seq/ack retransmit protocol
// on. Every spawn pays the injector's hash draws plus the analytic
// retransmit planning, so the delta against a fault-free treesum prices
// the whole fault layer; allocs/op pins that planning stays allocation-
// free (steady state: 0).
func MachineFaultTreeSum(b *testing.B) {
	const nodes = 16
	layout := isa.DefaultTreeSumLayout()
	prog, err := isa.TreeSumProgram(nodes, layout)
	if err != nil {
		b.Fatal(err)
	}
	m, err := isa.NewMachine(nodes, 16384, isa.DefaultTiming())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fault.New(fault.Config{
		Seed: 0x9142, DropRate: 0.12, CorruptRate: 0.06, DupRate: 0.10, JitterMax: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	m.Fault = plan
	m.Reliable = true
	entry, err := prog.Entry("main")
	if err != nil {
		b.Fatal(err)
	}
	run := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			b.Fatal(err)
		}
		for i, n := range m.Nodes {
			for k := 0; k < layout.DataWords; k++ {
				n.Mem[layout.DataBase+uint64(k)] = uint64(i*layout.DataWords + k)
			}
		}
		m.Nodes[0].StartThread(entry, 0, 0)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the slabs outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// ServeSpecDecode measures the daemon's per-request admission CPU in
// isolation: strict JSON decode, preset resolution with field overrides,
// resource-limit checks, and the canonical run key. This is work pimserve
// does for every request before any queueing, so its cost bounds the
// spec-validation throughput of one core.
func ServeSpecDecode(b *testing.B) {
	body := []byte(`{"preset":"machine-gups","backend":"machine",` +
		`"fields":{"nodes":16,"updates":64},"seed":7,"quick":true}`)
	lim := scenario.DefaultSpecLimits()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := scenario.DecodeSpec(body)
		if err != nil {
			b.Fatal(err)
		}
		r, err := sp.Resolve(lim)
		if err != nil {
			b.Fatal(err)
		}
		if r.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

// ServeRoundTrip measures the hot serving path end to end over loopback
// HTTP: the same spec every iteration, so after the warm-up request every
// round trip is decode + resolve + single-flight lookup + result-cache
// hit + JSON response — the daemon's best case, and the floor under every
// served request's latency.
func ServeRoundTrip(b *testing.B) {
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	body := `{"preset":"paper-baseline","quick":true}`
	post := func() {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // warm: run once so the timed loop measures cache hits
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}
