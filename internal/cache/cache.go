// Package cache provides the two cache models used by the host-processor
// (HWP) side of the paper's study 1.
//
// The paper models the HWP cache *statistically*: each load/store hits with
// probability 1−Pmiss and costs TCH cycles, otherwise it costs the main
// memory time TMH. StatCache reproduces exactly that. For the A4 ablation
// (EXPERIMENTS.md) we also provide a concrete set-associative cache
// simulator (SetAssocCache) plus reference address-stream generators, so
// the statistical miss rate can be cross-checked against a real structure
// on streams of controlled temporal locality.
package cache

import (
	"fmt"

	"repro/internal/rng"
)

// StatCache is the paper's statistical cache: a Bernoulli(Pmiss) coin per
// access deciding between cache time and memory time.
type StatCache struct {
	// Pmiss is the miss probability for each access.
	Pmiss float64
	// HitCycles is the access time on a hit (the paper's TCH).
	HitCycles float64
	// MissCycles is the access time on a miss (the paper's TMH).
	MissCycles float64

	st       *rng.Stream
	accesses int64
	misses   int64
}

// NewStatCache creates a statistical cache. It panics unless
// 0 <= pmiss <= 1 and times are positive.
func NewStatCache(pmiss, hitCycles, missCycles float64, st *rng.Stream) *StatCache {
	if pmiss < 0 || pmiss > 1 {
		panic(fmt.Sprintf("cache: Pmiss = %g", pmiss))
	}
	if hitCycles <= 0 || missCycles <= 0 {
		panic(fmt.Sprintf("cache: non-positive access times (%g, %g)", hitCycles, missCycles))
	}
	return &StatCache{Pmiss: pmiss, HitCycles: hitCycles, MissCycles: missCycles, st: st}
}

// Access samples one memory access and returns its latency in cycles.
func (c *StatCache) Access() float64 {
	c.accesses++
	if c.st.Bernoulli(c.Pmiss) {
		c.misses++
		return c.MissCycles
	}
	return c.HitCycles
}

// ExpectedCycles returns the closed-form mean access time
// (1−Pmiss)·TCH + Pmiss·TMH.
func (c *StatCache) ExpectedCycles() float64 {
	return (1-c.Pmiss)*c.HitCycles + c.Pmiss*c.MissCycles
}

// MissRate returns the observed miss rate so far.
func (c *StatCache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Accesses returns the number of sampled accesses.
func (c *StatCache) Accesses() int64 { return c.accesses }

// Replacement selects the eviction policy of a concrete cache set.
type Replacement int

// Replacement policies.
const (
	LRU Replacement = iota
	FIFOREPL
	RandomRepl
)

func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFOREPL:
		return "FIFO"
	case RandomRepl:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes a concrete set-associative cache.
type Config struct {
	// SizeBytes is total capacity; LineBytes the block size; Ways the
	// associativity. Sets = SizeBytes / (LineBytes * Ways).
	SizeBytes int
	LineBytes int
	Ways      int
	Policy    Replacement
}

// Validate checks structural invariants (powers of two where required).
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: LineBytes %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// SetAssocCache is a functional set-associative cache simulator tracking
// hit/miss counts over an address stream. Addresses are byte addresses.
type SetAssocCache struct {
	cfg  Config
	sets []cacheSet
	st   *rng.Stream // used only by RandomRepl

	accesses int64
	misses   int64

	lineShift uint
	setMask   int64
}

type cacheSet struct {
	tags  []int64 // -1 = invalid
	order []int64 // LRU stamp or FIFO insertion stamp
}

// New creates a concrete cache. st may be nil unless Policy is RandomRepl.
func New(cfg Config, st *rng.Stream) (*SetAssocCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == RandomRepl && st == nil {
		return nil, fmt.Errorf("cache: RandomRepl requires a random stream")
	}
	sets := cfg.Sets()
	c := &SetAssocCache{cfg: cfg, sets: make([]cacheSet, sets), st: st}
	for i := range c.sets {
		c.sets[i] = cacheSet{tags: make([]int64, cfg.Ways), order: make([]int64, cfg.Ways)}
		for w := 0; w < cfg.Ways; w++ {
			c.sets[i].tags[w] = -1
		}
	}
	for shift := cfg.LineBytes; shift > 1; shift >>= 1 {
		c.lineShift++
	}
	c.setMask = int64(sets - 1)
	return c, nil
}

// Config returns the cache geometry.
func (c *SetAssocCache) Config() Config { return c.cfg }

// Access performs one access to the given byte address and reports whether
// it hit.
func (c *SetAssocCache) Access(addr int64) bool {
	if addr < 0 {
		panic(fmt.Sprintf("cache: negative address %d", addr))
	}
	c.accesses++
	line := addr >> c.lineShift
	setIdx := line & c.setMask
	tag := line >> uint(popShift(c.setMask))
	set := &c.sets[setIdx]

	for w := range set.tags {
		if set.tags[w] == tag {
			if c.cfg.Policy == LRU {
				set.order[w] = c.accesses
			}
			return true
		}
	}
	c.misses++
	// Choose a victim: first invalid way, else per policy.
	victim := -1
	for w := range set.tags {
		if set.tags[w] == -1 {
			victim = w
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case LRU, FIFOREPL:
			victim = 0
			for w := 1; w < len(set.order); w++ {
				if set.order[w] < set.order[victim] {
					victim = w
				}
			}
		case RandomRepl:
			victim = c.st.Intn(len(set.tags))
		}
	}
	set.tags[victim] = tag
	set.order[victim] = c.accesses // LRU stamp == FIFO insertion stamp here
	return false
}

// popShift returns the number of set-index bits for a mask of form 2^k - 1.
func popShift(mask int64) int {
	n := 0
	for mask > 0 {
		n++
		mask >>= 1
	}
	return n
}

// MissRate returns the observed miss rate.
func (c *SetAssocCache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Accesses returns the access count.
func (c *SetAssocCache) Accesses() int64 { return c.accesses }

// Misses returns the miss count.
func (c *SetAssocCache) Misses() int64 { return c.misses }

// Flush invalidates all lines, keeping statistics.
func (c *SetAssocCache) Flush() {
	for i := range c.sets {
		for w := range c.sets[i].tags {
			c.sets[i].tags[w] = -1
		}
	}
}

// --- Address stream generators for locality experiments ---

// StreamGen produces a synthetic address stream with controllable temporal
// locality; used to cross-validate the statistical cache against the
// concrete one (ablation A4).
type StreamGen struct {
	st *rng.Stream
	// Footprint is the number of distinct lines the stream touches.
	Footprint int64
	LineBytes int64
	// Reuse is the probability each access revisits the hot working set
	// instead of streaming on; 0 gives a pure streaming scan, values near 1
	// give high temporal locality.
	Reuse float64
	// HotLines is the size (in lines) of the hot working set.
	HotLines int64

	next int64
}

// NewStreamGen creates a generator.
func NewStreamGen(st *rng.Stream, footprint, hotLines int64, lineBytes int64, reuse float64) *StreamGen {
	if footprint <= 0 || hotLines <= 0 || hotLines > footprint || lineBytes <= 0 {
		panic("cache: invalid StreamGen geometry")
	}
	if reuse < 0 || reuse > 1 {
		panic("cache: Reuse out of [0,1]")
	}
	return &StreamGen{st: st, Footprint: footprint, HotLines: hotLines, LineBytes: lineBytes, Reuse: reuse}
}

// Next returns the next byte address.
func (g *StreamGen) Next() int64 {
	if g.st.Bernoulli(g.Reuse) {
		// Touch the hot set uniformly.
		return int64(g.st.Uint64n(uint64(g.HotLines))) * g.LineBytes
	}
	// Stream through the cold region beyond the hot set.
	cold := g.Footprint - g.HotLines
	addr := (g.HotLines + g.next%cold) * g.LineBytes
	g.next++
	return addr
}
