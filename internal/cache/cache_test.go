package cache

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStatCacheMissRateConverges(t *testing.T) {
	st := rng.New(1)
	c := NewStatCache(0.1, 2, 90, st)
	var total float64
	const n = 200000
	for i := 0; i < n; i++ {
		total += c.Access()
	}
	if math.Abs(c.MissRate()-0.1) > 0.005 {
		t.Errorf("observed miss rate = %g, want 0.1", c.MissRate())
	}
	mean := total / n
	if math.Abs(mean-c.ExpectedCycles())/c.ExpectedCycles() > 0.02 {
		t.Errorf("mean access = %g, expected %g", mean, c.ExpectedCycles())
	}
}

func TestStatCacheExpectedCycles(t *testing.T) {
	// Table 1 parameters: TCH=2, TMH=90, Pmiss=0.1 ⇒ 0.9*2 + 0.1*90 = 10.8.
	c := NewStatCache(0.1, 2, 90, rng.New(2))
	if e := c.ExpectedCycles(); math.Abs(e-10.8) > 1e-12 {
		t.Errorf("expected cycles = %g, want 10.8", e)
	}
}

func TestStatCacheDegenerate(t *testing.T) {
	st := rng.New(3)
	always := NewStatCache(1, 2, 90, st)
	for i := 0; i < 100; i++ {
		if always.Access() != 90 {
			t.Fatal("Pmiss=1 returned a hit")
		}
	}
	never := NewStatCache(0, 2, 90, st)
	for i := 0; i < 100; i++ {
		if never.Access() != 2 {
			t.Fatal("Pmiss=0 returned a miss")
		}
	}
}

func TestStatCacheRejectsBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewStatCache(-0.1, 2, 90, nil) },
		func() { NewStatCache(1.1, 2, 90, nil) },
		func() { NewStatCache(0.1, 0, 90, nil) },
		func() { NewStatCache(0.1, 2, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid StatCache accepted")
				}
			}()
			f()
		}()
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: LRU}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.Sets() != 128 {
		t.Errorf("sets = %d, want 128", good.Sets())
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 32768, LineBytes: 63, Ways: 4},      // not pow2
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},       // not divisible
		{SizeBytes: 64 * 3 * 4, LineBytes: 64, Ways: 4}, // 3 sets
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: LRU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(32) {
		t.Error("same-line access missed")
	}
	if c.Misses() != 1 {
		t.Errorf("misses = %d, want 1", c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, force 3 lines into one set.
	cfg := Config{SizeBytes: 2 * 64 * 4, LineBytes: 64, Ways: 2, Policy: LRU} // 4 sets
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	setStride := int64(64 * 4) // same set every 4 lines
	a, b2, d := int64(0), setStride, 2*setStride
	c.Access(a)  // miss
	c.Access(b2) // miss
	c.Access(a)  // hit, a now MRU
	c.Access(d)  // miss, evicts b2 (LRU)
	if !c.Access(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Access(b2) {
		t.Error("b2 still resident despite LRU eviction")
	}
}

func TestFIFOEvictionDiffersFromLRU(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 64 * 4, LineBytes: 64, Ways: 2, Policy: FIFOREPL}
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	setStride := int64(64 * 4)
	a, b2, d := int64(0), setStride, 2*setStride
	c.Access(a)  // insert a
	c.Access(b2) // insert b2
	c.Access(a)  // hit; FIFO does NOT refresh a
	c.Access(d)  // evicts a (oldest insertion)
	if c.Access(a) {
		t.Error("FIFO kept a alive; LRU behaviour detected")
	}
}

func TestRandomReplNeedsStream(t *testing.T) {
	_, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: RandomRepl}, nil)
	if err == nil {
		t.Fatal("RandomRepl without stream accepted")
	}
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: RandomRepl}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		c.Access(i * 64)
	}
	if c.Accesses() != 100 {
		t.Errorf("accesses = %d", c.Accesses())
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// Working set of 8 lines in a 16-line fully-covered cache: after warmup,
	// zero misses.
	c, err := New(Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 4, Policy: LRU}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 10; pass++ {
		for line := int64(0); line < 8; line++ {
			c.Access(line * 64)
		}
	}
	if c.Misses() != 8 {
		t.Errorf("misses = %d, want 8 cold misses only", c.Misses())
	}
}

func TestThrashingScanAllMisses(t *testing.T) {
	// Cyclic scan over 2x the cache size under LRU: every access misses
	// after warmup (the classic LRU pathology).
	cfg := Config{SizeBytes: 8 * 64, LineBytes: 64, Ways: 8, Policy: LRU} // 1 set, 8 ways
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 5; pass++ {
		for line := int64(0); line < 16; line++ {
			c.Access(line * 64)
		}
	}
	if c.MissRate() != 1 {
		t.Errorf("thrash miss rate = %g, want 1", c.MissRate())
	}
}

func TestFlush(t *testing.T) {
	c, _ := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: LRU}, nil)
	c.Access(0)
	c.Flush()
	if c.Access(0) {
		t.Error("hit after flush")
	}
}

func TestMissRateMonotoneInReuse(t *testing.T) {
	// Higher temporal locality (Reuse) must not raise the miss rate.
	missAt := func(reuse float64) float64 {
		c, err := New(Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: LRU}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := NewStreamGen(rng.New(42), 1<<20, 256, 64, reuse)
		for i := 0; i < 100000; i++ {
			c.Access(g.Next())
		}
		return c.MissRate()
	}
	prev := 1.1
	for _, reuse := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		mr := missAt(reuse)
		if mr > prev+0.01 {
			t.Errorf("miss rate rose with locality: reuse=%g mr=%g prev=%g", reuse, mr, prev)
		}
		prev = mr
	}
	if m0 := missAt(0); m0 < 0.9 {
		t.Errorf("pure streaming over huge footprint miss rate = %g, want ~1", m0)
	}
	if m1 := missAt(0.99); m1 > 0.15 {
		t.Errorf("hot-set reuse=0.99 miss rate = %g, want small", m1)
	}
}

func TestDecodeUniqueTags(t *testing.T) {
	// Two addresses mapping to the same set with different tags never
	// alias: filling way 0/1 and re-accessing both must hit.
	err := quick.Check(func(raw uint16) bool {
		c, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 2, Policy: LRU}, nil)
		if err != nil {
			return false
		}
		sets := int64(c.Config().Sets())
		base := int64(raw%64) * 64
		other := base + sets*64 // same set, different tag
		c.Access(base)
		c.Access(other)
		return c.Access(base) && c.Access(other)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestNegativeAddressPanics(t *testing.T) {
	c, _ := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, Policy: LRU}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Access(-4)
}

func BenchmarkSetAssocAccess(b *testing.B) {
	c, _ := New(Config{SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: LRU}, nil)
	g := NewStreamGen(rng.New(7), 1<<18, 512, 64, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(g.Next())
	}
}
