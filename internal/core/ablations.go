package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cache"
	"repro/internal/hostpim"
	"repro/internal/network"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// The ablations probe design choices the paper leaves implicit. Each is a
// registered experiment so the CLI and benches can regenerate them. Base
// design points come from the scenario layer; knobs outside the scenario
// space (topologies, traffic skew, control threading) are set on the
// returned parameter structs.

// fig11Base returns the study-2 reference point as a scenario.
func fig11Base() scenario.Scenario { return scenario.MustFind("fig11-point") }

// parcelParams resolves a communication scenario into the parcelsys
// parameter struct with the given seed.
func parcelParams(s scenario.Scenario, seed uint64) (parcelsys.Params, error) {
	return s.ParcelParams(scenario.Config{Seed: seed})
}

func init() {
	register(&Experiment{
		ID:    "ablation-control",
		Title: "A1: control-run cache policy (fixed miss vs locality-aware)",
		PaperClaim: "the text's '100X' extreme requires the control run's cache to " +
			"degrade on no-reuse data; the analytic normalization uses a fixed miss rate",
		Run: runAblationControl,
	})
	register(&Experiment{
		ID:    "ablation-overhead",
		Title: "A2: parcel handling overhead (hardware-assisted vs software-only)",
		PaperClaim: "efficient parcel handling mechanisms are required to realize " +
			"performance gains (Sec 5.2)",
		Run: runAblationOverhead,
	})
	register(&Experiment{
		ID:    "ablation-topology",
		Title: "A3: flat latency vs topology hop latency",
		PaperClaim: "the study assumes flat system-wide latency; hop-count topologies " +
			"bracket it from both sides",
		Run: runAblationTopology,
	})
	register(&Experiment{
		ID:    "ablation-dram",
		Title: "A6: Table 1 memory constants vs DRAM-model calibration",
		PaperClaim: "TML/TMH are Table 1 givens; deriving them from the paper's own " +
			"§2.1 DRAM macro timing shows how row-buffer locality moves NB",
		Run: runAblationDRAM,
	})
	register(&Experiment{
		ID:    "ablation-hotspot",
		Title: "A7: uniform vs hotspot parcel traffic",
		PaperClaim: "the study assumes uniform random remote destinations; skewed " +
			"traffic concentrates parcels on one node and erodes the latency-hiding win",
		Run: runAblationHotspot,
	})
	register(&Experiment{
		ID:    "ablation-mtcontrol",
		Title: "A8: parcels vs multithreaded blocking message passing",
		PaperClaim: "the paper's control is single-threaded; giving it the same thread " +
			"count isolates the parcels' intrinsic advantage (one-way migration and " +
			"cheap handling) from generic multithreading",
		Run: runAblationMTControl,
	})
	register(&Experiment{
		ID:    "ablation-cache",
		Title: "A4: statistical cache vs concrete set-associative cache",
		PaperClaim: "the model's Bernoulli(Pmiss) cache abstraction matches a real " +
			"structure driven by streams of matching temporal locality",
		Run: runAblationCache,
	})
}

func runAblationControl(cfg Config, w io.Writer) (*Outcome, error) {
	nodes := []int{1, 4, 16, 64}
	pcts := []float64{0.1, 0.5, 1.0}
	t := report.NewTable("A1 — Gain under the two control policies",
		"%WL", "N", "gain(fixed miss)", "gain(locality-aware)")
	o := &Outcome{Metrics: map[string]float64{}}
	var fixed1, aware1 float64
	for _, pct := range pcts {
		for _, n := range nodes {
			s := table1Base()
			s.Workload.PctWL = pct
			s.Machine.N = n
			s.Control = hostpim.ControlFixedMiss
			rf, err := scenario.Run(s, "analytic", scenario.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			s.Control = hostpim.ControlLocalityAware
			ra, err := scenario.Run(s, "analytic", scenario.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			gf := rf.Metrics[scenario.MetricGain]
			ga := ra.Metrics[scenario.MetricGain]
			t.AddRow(pct, n, gf, ga)
			if pct == 1.0 && n == 64 {
				fixed1, aware1 = gf, ga
			}
		}
	}
	if err := emitTable(cfg, w, "ablation_control", t); err != nil {
		return nil, err
	}
	o.Metrics["gain_fixed_extreme"] = fixed1
	o.Metrics["gain_aware_extreme"] = aware1
	o.check("fixed-miss control caps the extreme gain at N/NB",
		math.Abs(fixed1-64/hostpim.DefaultParams().NB()) < 1e-6,
		"gain=%.1f, N/NB=%.1f", fixed1, 64/hostpim.DefaultParams().NB())
	o.check("locality-aware control reaches the paper's ~100X",
		aware1 >= 100, "gain=%.1f", aware1)
	return o, nil
}

func runAblationOverhead(cfg Config, w io.Writer) (*Outcome, error) {
	horizon := 30000.0
	if cfg.Quick {
		horizon = 15000
	}
	t := report.NewTable("A2 — Fig. 11 ratio under parcel-overhead models",
		"latency", "parallelism", "ratio(hardware)", "ratio(software)")
	o := &Outcome{Metrics: map[string]float64{}}
	var hwShort, swShort float64
	for _, l := range []float64{10, 200, 2000} {
		for _, par := range []int{1, 8} {
			s := fig11Base()
			s.Machine.Latency = l
			s.Workload.Parallelism = par
			s.Workload.Horizon = horizon
			s.Software = false
			rh, err := scenario.Run(s, "sim", scenario.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			s.Software = true
			rs, err := scenario.Run(s, "sim", scenario.Config{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			hw := rh.Metrics[scenario.MetricRatio]
			sw := rs.Metrics[scenario.MetricRatio]
			t.AddRow(l, par, hw, sw)
			if l == 10 && par == 1 {
				hwShort, swShort = hw, sw
			}
		}
	}
	if err := emitTable(cfg, w, "ablation_overhead", t); err != nil {
		return nil, err
	}
	o.Metrics["hw_ratio_short_latency"] = hwShort
	o.Metrics["sw_ratio_short_latency"] = swShort
	o.check("software overhead reverses the advantage at short latency",
		swShort < 1 && swShort < hwShort,
		"software ratio=%.3f vs hardware %.3f", swShort, hwShort)
	return o, nil
}

func runAblationTopology(cfg Config, w io.Writer) (*Outcome, error) {
	// Compare the flat-latency assumption against hop-count topologies
	// calibrated to the same mean latency: if the parcel result is robust,
	// ratios should be close.
	const n = 16
	horizon := 30000.0
	if cfg.Quick {
		horizon = 15000
	}
	flatL := 500.0
	topos := []network.Topology{
		network.Ring{N: n},
		network.Mesh2D{W: 4, H: 4},
		network.Torus2D{W: 4, H: 4},
		network.Hypercube{Dim: 4},
	}
	t := report.NewTable("A3 — Topology mean hops and flat-equivalent latency calibration",
		"topology", "mean hops", "diameter", "per-hop cycles for mean=500")
	perHops := make([]float64, len(topos))
	for i, topo := range topos {
		mh := network.MeanHops(topo)
		perHops[i] = flatL / mh
		t.AddRow(topo.Name(), mh, topo.Diameter(), perHops[i])
	}
	if err := emitTable(cfg, w, "ablation_topology_calibration", t); err != nil {
		return nil, err
	}

	// Run the actual paired simulation with each topology supplying real
	// per-pair latencies, calibrated so the uniform-traffic mean equals
	// the flat model's 500 cycles, and compare ratios.
	t2 := report.NewTable("A3 — Fig. 11 ratio: flat latency vs real topologies (mean-calibrated)",
		"network", "ops ratio", "test idle", "deviation from flat")
	o := &Outcome{Metrics: map[string]float64{}}
	sbase := fig11Base()
	sbase.Machine.N = n
	sbase.Workload.Parallelism = 16
	sbase.Workload.RemoteFrac = 0.5
	sbase.Workload.Horizon = horizon
	sbase.Machine.Latency = flatL
	base, err := parcelParams(sbase, cfg.Seed)
	if err != nil {
		return nil, err
	}
	flat, err := parcelsys.Run(base)
	if err != nil {
		return nil, err
	}
	t2.AddRow("flat", flat.Ratio, flat.Test.IdleFrac, 0.0)
	var worstDev float64
	for i, topo := range topos {
		p := base
		p.Net = network.NewHop(topo, perHops[i], 0)
		r, err := parcelsys.Run(p)
		if err != nil {
			return nil, err
		}
		dev := math.Abs(r.Ratio-flat.Ratio) / flat.Ratio
		if dev > worstDev {
			worstDev = dev
		}
		t2.AddRow(topo.Name(), r.Ratio, r.Test.IdleFrac, dev)
	}
	if err := emitTable(cfg, w, "ablation_topology_ratio", t2); err != nil {
		return nil, err
	}
	o.Metrics["ratio_flat"] = flat.Ratio
	o.Metrics["worst_topology_deviation"] = worstDev
	o.check("flat-latency abstraction holds under real topologies",
		worstDev < 0.25,
		"worst ratio deviation from flat = %.1f%%", worstDev*100)
	return o, nil
}

func runAblationDRAM(cfg Config, w io.Writer) (*Outcome, error) {
	s := table1Base()
	s.Workload.PctWL = 0.8
	s.Machine.N = 32
	base, err := hostParams(s)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A6 — DRAM-calibrated memory times vs Table 1 constants",
		"LWP row hit rate", "TML (cycles)", "TMH (cycles)", "NB", "gain(%WL=0.8, N=32)")
	// Reference row: Table 1 as published.
	rRef, err := hostpim.Analytic(base)
	if err != nil {
		return nil, err
	}
	t.AddStringRow("Table 1 constants", report.FormatFloat(base.TML),
		report.FormatFloat(base.TMH), report.FormatFloat(base.NB()),
		report.FormatFloat(rRef.Gain))
	o := &Outcome{Metrics: map[string]float64{"gain_table1": rRef.Gain}}
	var nbLo, nbHi float64 = math.Inf(1), 0
	for _, h := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		cal := hostpim.DefaultDRAMCalibration()
		cal.LWPRowHitRate = h
		p, err := cal.Apply(base)
		if err != nil {
			return nil, err
		}
		r, err := hostpim.Analytic(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(h, p.TML, p.TMH, p.NB(), r.Gain)
		if nb := p.NB(); nb < nbLo {
			nbLo = nb
		}
		if nb := p.NB(); nb > nbHi {
			nbHi = nb
		}
	}
	if err := emitTable(cfg, w, "ablation_dram", t); err != nil {
		return nil, err
	}
	o.Metrics["nb_min"] = nbLo
	o.Metrics["nb_max"] = nbHi
	o.check("Table 1's NB sits inside the calibrated envelope",
		nbLo <= base.NB() && base.NB() <= nbHi+1,
		"NB range [%.2f, %.2f], Table 1 %.3f", nbLo, nbHi, base.NB())
	o.check("row-buffer locality meaningfully moves the break-even",
		nbHi/nbLo > 1.5, "NB swing %.2fx across hit rates", nbHi/nbLo)
	return o, nil
}

func runAblationHotspot(cfg Config, w io.Writer) (*Outcome, error) {
	horizon := 40000.0
	if cfg.Quick {
		horizon = 15000
	}
	sbase := fig11Base()
	sbase.Machine.N = 16
	sbase.Workload.Parallelism = 16
	sbase.Workload.RemoteFrac = 0.5
	sbase.Machine.Latency = 500
	sbase.Workload.Horizon = horizon
	base, err := parcelParams(sbase, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A7 — Parcel ratio and balance under hotspot traffic skew",
		"hotspot fraction", "ops ratio", "test idle (mean)", "hotspot-node idle", "max/min node idle spread")
	o := &Outcome{Metrics: map[string]float64{}}
	var uniformRatio, worstRatio float64
	for _, hs := range []float64{0, 0.25, 0.5, 0.75} {
		p := base
		p.Hotspot = hs
		r, err := parcelsys.Run(p)
		if err != nil {
			return nil, err
		}
		minIdle, maxIdle := 1.0, 0.0
		for _, idle := range r.Test.PerNodeIdle {
			if idle < minIdle {
				minIdle = idle
			}
			if idle > maxIdle {
				maxIdle = idle
			}
		}
		t.AddRow(hs, r.Ratio, r.Test.IdleFrac, r.Test.PerNodeIdle[0], maxIdle-minIdle)
		if hs == 0 {
			uniformRatio = r.Ratio
		}
		worstRatio = r.Ratio
	}
	if err := emitTable(cfg, w, "ablation_hotspot", t); err != nil {
		return nil, err
	}
	o.Metrics["ratio_uniform"] = uniformRatio
	o.Metrics["ratio_hotspot_75"] = worstRatio
	o.check("hotspot skew erodes the parcel advantage",
		worstRatio < uniformRatio,
		"uniform %.1f -> 75%% hotspot %.1f", uniformRatio, worstRatio)
	o.check("latency hiding survives moderate skew",
		worstRatio > 1, "ratio %.2f still above 1", worstRatio)
	return o, nil
}

func runAblationMTControl(cfg Config, w io.Writer) (*Outcome, error) {
	horizon := 40000.0
	if cfg.Quick {
		horizon = 15000
	}
	sbase := fig11Base()
	sbase.Machine.N = 16
	sbase.Workload.RemoteFrac = 0.5
	sbase.Machine.Latency = 500
	sbase.Workload.Horizon = horizon
	base, err := parcelParams(sbase, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A8 — Parcel advantage vs control-system threading (P = parcels and control threads)",
		"threads", "ratio vs 1-thread control", "ratio vs P-thread control", "MT control idle")
	o := &Outcome{Metrics: map[string]float64{}}
	matched := map[int]float64{}
	single := map[int]float64{}
	for _, threads := range []int{1, 4, 16, 64} {
		p := base
		p.Parallelism = threads
		p.ControlThreads = 1
		s, err := parcelsys.Run(p)
		if err != nil {
			return nil, err
		}
		p.ControlThreads = threads
		m, err := parcelsys.Run(p)
		if err != nil {
			return nil, err
		}
		t.AddRow(threads, s.Ratio, m.Ratio, m.Control.IdleFrac)
		matched[threads] = m.Ratio
		single[threads] = s.Ratio
	}
	if err := emitTable(cfg, w, "ablation_mtcontrol", t); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "note: at saturating thread counts the matched control can even win —\n"+
		"its remote reads are serviced by the destination *memory* while parcels\n"+
		"consume the destination *processor*; parcels' edge lives at moderate\n"+
		"parallelism, where one-way migration beats blocking round trips.\n\n")
	o.Metrics["ratio_single_P64"] = single[64]
	o.Metrics["ratio_matched_P64"] = matched[64]
	o.Metrics["ratio_matched_P16"] = matched[16]
	o.check("most of Fig. 11's win is generic multithreading",
		matched[64] < single[64]/2,
		"matched-threads ratio %.2f vs single-thread %.2f", matched[64], single[64])
	o.check("parcels retain an edge at moderate matched threading",
		matched[4] > 1.2 && matched[16] > 1.2,
		"matched ratio %.2f at P=4, %.2f at P=16", matched[4], matched[16])
	return o, nil
}

func runAblationCache(cfg Config, w io.Writer) (*Outcome, error) {
	// Drive a concrete 4-way LRU cache with streams of varying temporal
	// locality and measure its mean access cost; then run the paper's
	// Bernoulli(Pmiss) statistical cache calibrated to the measured miss
	// rate and compare the *sampled* mean cost. Agreement validates the
	// paper's cache abstraction; the reuse column locates Table 1's
	// Pmiss = 0.1 among concrete locality levels.
	accesses := 200000
	if cfg.Quick {
		accesses = 50000
	}
	p, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A4 — Statistical vs concrete cache mean access cost",
		"reuse", "concrete miss rate", "mean cost(concrete)", "mean cost(stat sampled)", "rel err")
	o := &Outcome{Metrics: map[string]float64{}}
	var worst float64
	var bestReuse, bestDelta float64 = math.NaN(), math.Inf(1)
	for _, reuse := range []float64{0, 0.5, 0.9, 0.95, 0.99} {
		cc, err := cache.New(cache.Config{
			SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4, Policy: cache.LRU,
		}, nil)
		if err != nil {
			return nil, err
		}
		gen := cache.NewStreamGen(rng.NewWithStream(cfg.Seed, 77), 1<<22, 256, 64, reuse)
		var concreteCost float64
		for i := 0; i < accesses; i++ {
			if cc.Access(gen.Next()) {
				concreteCost += p.TCH
			} else {
				concreteCost += p.TMH
			}
		}
		concreteCost /= float64(accesses)
		mr := cc.MissRate()
		// Sample the statistical cache at the measured miss rate with an
		// independent stream: the comparison is stochastic, not circular.
		var statCost float64
		if mr > 0 && mr < 1 {
			sc := cache.NewStatCache(mr, p.TCH, p.TMH, rng.NewWithStream(cfg.Seed, 177))
			for i := 0; i < accesses; i++ {
				statCost += sc.Access()
			}
			statCost /= float64(accesses)
		} else {
			statCost = (1-mr)*p.TCH + mr*p.TMH
		}
		e := stats.RelErr(statCost, concreteCost)
		if e > worst {
			worst = e
		}
		if d := math.Abs(mr - p.Pmiss); d < bestDelta {
			bestDelta = d
			bestReuse = reuse
		}
		t.AddRow(reuse, mr, concreteCost, statCost, e)
	}
	if err := emitTable(cfg, w, "ablation_cache", t); err != nil {
		return nil, err
	}
	o.Metrics["worst_rel_err"] = worst
	o.Metrics["reuse_closest_to_table1_pmiss"] = bestReuse
	o.check("statistical cache reproduces concrete mean access cost",
		worst < 0.02, "worst rel err = %.4f", worst)
	o.check("some concrete locality level matches Table 1's Pmiss=0.1",
		bestDelta < 0.1, "reuse=%.2f gives miss rate within %.3f of 0.1", bestReuse, bestDelta)
	return o, nil
}
