package core

import (
	"io"

	"repro/internal/dram"
	"repro/internal/report"
)

func init() {
	register(&Experiment{
		ID:    "bandwidth",
		Title: "Sec 2.1: reclaiming the hidden bandwidth",
		PaperClaim: "a single on-chip DRAM macro sustains over 50 Gbit/s; with many " +
			"nodes per chip, on-chip peak memory bandwidth exceeds 1 Tbit/s",
		Run: runBandwidth,
	})
}

func runBandwidth(cfg Config, w io.Writer) (*Outcome, error) {
	macro := dram.PaperMacro()
	chip := dram.PaperChip()

	t := report.NewTable("Sec 2.1 — DRAM bandwidth arithmetic (paper parameters)",
		"quantity", "value", "unit")
	t.AddStringRow("row width", report.FormatFloat(float64(macro.RowBits)), "bits")
	t.AddStringRow("page word width", report.FormatFloat(float64(macro.WordBits)), "bits")
	t.AddStringRow("row access time", report.FormatFloat(macro.RowAccessNS), "ns")
	t.AddStringRow("page access time", report.FormatFloat(macro.PageAccessNS), "ns")
	t.AddStringRow("macro streaming bandwidth", report.FormatFloat(macro.StreamBandwidthBitsPerSec()/1e9), "Gbit/s")
	t.AddStringRow("macro burst (open row) bandwidth", report.FormatFloat(macro.PeakPageBandwidthBitsPerSec()/1e9), "Gbit/s")
	t.AddStringRow("macro random-word bandwidth", report.FormatFloat(macro.RandomWordBandwidthBitsPerSec()/1e9), "Gbit/s")
	t.AddStringRow("nodes per chip", report.FormatFloat(float64(chip.Banks)), "")
	t.AddStringRow("chip peak bandwidth", report.FormatFloat(chip.PeakBandwidthBitsPerSec()/1e12), "Tbit/s")
	if err := emitTable(cfg, w, "bandwidth", t); err != nil {
		return nil, err
	}

	// Cross-check against the functional bank simulator: stream every row
	// of one macro and measure effective bandwidth.
	bank, err := dram.NewBank(macro, dram.OpenPage)
	if err != nil {
		return nil, err
	}
	rows := macro.Rows
	if cfg.Quick {
		rows = 256
	}
	totalNS := 0.0
	words := 0
	for r := 0; r < rows; r++ {
		totalNS += bank.AccessRun(r, macro.WordsPerRow())
		words += macro.WordsPerRow()
	}
	measured := dram.EffectiveBandwidth(words, macro.WordBits, totalNS)

	o := &Outcome{Metrics: map[string]float64{
		"macro_stream_gbit": macro.StreamBandwidthBitsPerSec() / 1e9,
		"chip_peak_tbit":    chip.PeakBandwidthBitsPerSec() / 1e12,
		"measured_gbit":     measured / 1e9,
	}}
	o.check("macro sustains over 50 Gbit/s",
		macro.StreamBandwidthBitsPerSec() > 50e9,
		"%.1f Gbit/s", macro.StreamBandwidthBitsPerSec()/1e9)
	o.check("chip exceeds 1 Tbit/s",
		chip.PeakBandwidthBitsPerSec() > 1e12,
		"%.2f Tbit/s with %d nodes", chip.PeakBandwidthBitsPerSec()/1e12, chip.Banks)
	o.check("functional bank simulation matches the arithmetic",
		relErr(measured, macro.StreamBandwidthBitsPerSec()) < 1e-9,
		"measured %.2f Gbit/s", measured/1e9)
	return o, nil
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}
