// Package core is the experiment layer: one registered, runnable
// experiment per table and figure of the paper, plus the ablations listed
// in DESIGN.md. Each experiment regenerates its artifact (tables and ASCII
// charts on a writer, optional CSV files), reports key metrics, and
// self-checks the paper's qualitative claims about its own result ("who
// wins, by roughly what factor, where crossovers fall").
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/report"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all stochastic draws; every experiment is deterministic
	// given Seed.
	Seed uint64
	// Quick shrinks grids and horizons for tests and benchmarks. The full
	// configuration reproduces the paper-scale sweeps.
	Quick bool
	// Workers bounds sweep parallelism (0 = GOMAXPROCS).
	Workers int
	// CSVDir, when non-empty, receives one CSV file per emitted table.
	CSVDir string
	// Cancel, when non-nil, is polled by long-running experiments (via
	// Canceled); once it returns true the run should stop early with an
	// error. The engine's RunTimeout watchdog and pimserve's per-request
	// deadlines arm it so abandoned runs actually terminate instead of
	// leaking goroutines. It must be safe to call concurrently.
	Cancel func() bool
}

// Canceled reports whether the run's Cancel hook, if any, has fired.
func (c Config) Canceled() bool { return c.Cancel != nil && c.Cancel() }

// DefaultConfig returns the full-scale configuration with seed 2004 (the
// paper's year; any seed works).
func DefaultConfig() Config { return Config{Seed: 2004} }

// Validate checks the configuration in one place so a bad value fails
// fast with a clear error instead of deep inside an experiment: Workers
// must be non-negative, and CSVDir (when set) must be a creatable,
// writable directory. Validate creates CSVDir if needed — the same thing
// emitTable would do mid-run — and probes it with a temporary file.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers = %d (want >= 0; 0 means GOMAXPROCS)", c.Workers)
	}
	if c.CSVDir != "" {
		if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
			return fmt.Errorf("core: CSVDir %q is not creatable: %w", c.CSVDir, err)
		}
		probe, err := os.CreateTemp(c.CSVDir, ".csvdir-probe-*")
		if err != nil {
			return fmt.Errorf("core: CSVDir %q is not writable: %w", c.CSVDir, err)
		}
		name := probe.Name()
		probe.Close()
		os.Remove(name)
	}
	return nil
}

// Check is one verified claim about an experiment's outcome.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Outcome is what an experiment hands back besides its rendered output.
type Outcome struct {
	// Metrics are headline numbers (gains, ratios, error bands) keyed by
	// stable names; EXPERIMENTS.md cites them.
	Metrics map[string]float64
	// Checks verify the paper's qualitative claims.
	Checks []Check
}

// Failed returns the failed checks.
func (o *Outcome) Failed() []Check {
	var out []Check
	for _, c := range o.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// check appends a named pass/fail with a formatted detail.
func (o *Outcome) check(name string, pass bool, format string, args ...any) {
	o.Checks = append(o.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Experiment is one runnable artifact reproduction.
type Experiment struct {
	// ID is the registry key ("table1", "fig5", ..., "ablation-control").
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim summarizes what the paper reports for this artifact.
	PaperClaim string
	// Run regenerates the artifact, writing human-readable output to w.
	Run func(cfg Config, w io.Writer) (*Outcome, error)
}

// registry holds all experiments in presentation order.
var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// Registry returns all experiments in presentation order.
func Registry() []*Experiment { return registry }

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("core: unknown experiment %q (known: %v)", id, IDs())
}

// RunAll executes every registered experiment in order, writing each
// artifact to w, and returns outcomes keyed by id.
func RunAll(cfg Config, w io.Writer) (map[string]*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string]*Outcome, len(registry))
	for _, e := range registry {
		fmt.Fprint(w, Banner(e.ID, e.Title))
		o, err := e.Run(cfg, w)
		if err != nil {
			return out, fmt.Errorf("core: %s: %w", e.ID, err)
		}
		out[e.ID] = o
		RenderChecks(o, w)
	}
	return out, nil
}

// Banner returns the separator RunAll prints before each artifact. The
// engine uses it to keep concurrent output byte-identical to the serial
// path.
func Banner(id, title string) string {
	return fmt.Sprintf("\n================ %s — %s ================\n", id, title)
}

// RenderChecks prints an outcome's checks and headline metrics.
func RenderChecks(o *Outcome, w io.Writer) {
	if len(o.Metrics) > 0 {
		keys := make([]string, 0, len(o.Metrics))
		for k := range o.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "metrics:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, report.FormatFloat(o.Metrics[k]))
		}
		fmt.Fprintln(w)
	}
	for _, c := range o.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "check %-44s %s  %s\n", c.Name, status, c.Detail)
	}
}

// emitTable renders a table to w and, if cfg.CSVDir is set, writes
// <CSVDir>/<name>.csv.
func emitTable(cfg Config, w io.Writer, name string, t *report.Table) error {
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(cfg.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.RenderCSV(f)
}

// emitChart renders a chart to w, tolerating nothing: chart errors are
// experiment bugs.
func emitChart(w io.Writer, c *report.Chart) error {
	if err := c.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
