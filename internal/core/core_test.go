package core

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Seed: 2004, Quick: true}
}

// skipInShort guards the multi-second experiment regenerations so
// `go test -short` (the CI race pass) keeps this package fast; the cheap
// experiments still run either way.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("heavy experiment regeneration skipped in -short mode")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every artifact in DESIGN.md's per-experiment index must be present.
	want := []string{
		"table1", "fig4", "fig5", "fig6", "fig7", "fig9", "accuracy", "fig11", "fig12",
		"bandwidth", "sensitivity", "replication", "combined", "scenarios",
		"ablation-control", "ablation-overhead", "ablation-topology", "ablation-cache",
		"ablation-overlap", "ablation-dram", "ablation-hotspot", "ablation-mtcontrol",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing experiment %q", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, index lists %d", len(IDs()), len(want))
	}
}

func TestFind(t *testing.T) {
	e, err := Find("table1")
	if err != nil || e.ID != "table1" {
		t.Fatalf("Find(table1) = %v, %v", e, err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestExperimentMetadata(t *testing.T) {
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %+v has missing metadata", e.ID)
		}
	}
}

// runExperiment executes one experiment in quick mode and fails the test on
// any error or failed check.
func runExperiment(t *testing.T, id string) (*Outcome, string) {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	o, err := e.Run(quickCfg(), &sb)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	for _, c := range o.Failed() {
		t.Errorf("%s: check %q failed: %s", id, c.Name, c.Detail)
	}
	if sb.Len() == 0 {
		t.Errorf("%s produced no output", id)
	}
	return o, sb.String()
}

func TestTable1(t *testing.T) {
	o, out := runExperiment(t, "table1")
	if o.Metrics["NB"] != 3.125 {
		t.Errorf("NB = %g", o.Metrics["NB"])
	}
	for _, want := range []string{"TLcycle", "Pmiss", "mix_l/s", "3.125"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	skipInShort(t)
	o, out := runExperiment(t, "fig5")
	if o.Metrics["gain_full_lwp"] < 50 {
		t.Errorf("extreme gain = %g", o.Metrics["gain_full_lwp"])
	}
	if !strings.Contains(out, "Figure 5") {
		t.Error("missing figure title")
	}
}

func TestFig6Quick(t *testing.T) {
	skipInShort(t)
	o, _ := runExperiment(t, "fig6")
	if o.Metrics["t_100pct_n1"] <= 0 {
		t.Error("missing response time metric")
	}
}

func TestFig7Quick(t *testing.T) {
	o, _ := runExperiment(t, "fig7")
	if o.Metrics["spread_at_NB"] > 1e-9 {
		t.Errorf("spread at NB = %g", o.Metrics["spread_at_NB"])
	}
}

func TestAccuracyQuick(t *testing.T) {
	skipInShort(t)
	o, _ := runExperiment(t, "accuracy")
	if o.Metrics["err_max"] > 0.18 {
		t.Errorf("accuracy band %g exceeds the paper's", o.Metrics["err_max"])
	}
}

func TestFig11Quick(t *testing.T) {
	skipInShort(t)
	o, out := runExperiment(t, "fig11")
	if o.Metrics["best_ratio"] < 10 {
		t.Errorf("best ratio = %g", o.Metrics["best_ratio"])
	}
	if !strings.Contains(out, "parallelism") {
		t.Error("missing parallelism panels")
	}
}

func TestFig12Quick(t *testing.T) {
	o, _ := runExperiment(t, "fig12")
	if o.Metrics["test_idle_saturated"] > 0.1 {
		t.Errorf("saturated test idle = %g", o.Metrics["test_idle_saturated"])
	}
}

func TestBandwidthQuick(t *testing.T) {
	o, _ := runExperiment(t, "bandwidth")
	if o.Metrics["chip_peak_tbit"] <= 1 {
		t.Errorf("chip bandwidth = %g Tbit/s", o.Metrics["chip_peak_tbit"])
	}
}

func TestAblationsQuick(t *testing.T) {
	skipInShort(t)
	for _, id := range []string{
		"ablation-control", "ablation-overhead", "ablation-topology",
		"ablation-cache", "ablation-overlap", "ablation-dram", "ablation-hotspot",
		"ablation-mtcontrol", "ablation-mtcontrol",
	} {
		id := id
		t.Run(id, func(t *testing.T) { runExperiment(t, id) })
	}
}

func TestExtrasQuick(t *testing.T) {
	for _, id := range []string{"fig4", "fig9", "sensitivity", "replication", "combined"} {
		id := id
		t.Run(id, func(t *testing.T) { runExperiment(t, id) })
	}
}

func TestRunAllQuick(t *testing.T) {
	skipInShort(t)
	outs, err := RunAll(quickCfg(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(Registry()) {
		t.Errorf("RunAll returned %d outcomes for %d experiments", len(outs), len(Registry()))
	}
	for id, o := range outs {
		for _, c := range o.Failed() {
			t.Errorf("%s: %s: %s", id, c.Name, c.Detail)
		}
	}
}

func TestCSVEmission(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	cfg.CSVDir = dir
	e, err := Find("table1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "parameter,description,value") {
		t.Errorf("CSV header wrong: %s", data)
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	skipInShort(t)
	// Same seed, same quick config: identical metric values.
	run := func() map[string]float64 {
		e, _ := Find("fig11")
		o, err := e.Run(quickCfg(), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return o.Metrics
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("metric %s differed: %g vs %g", k, v, b[k])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Seed: 1}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	if err := (Config{Workers: -1}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "Workers") {
		t.Errorf("negative Workers: got %v", err)
	}
	// A CSV target under a regular file is not creatable.
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := (Config{CSVDir: filepath.Join(blocker, "sub")}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "CSVDir") {
		t.Errorf("uncreatable CSVDir: got %v", err)
	}
	// A fresh nested directory is created and accepted.
	dir := filepath.Join(t.TempDir(), "a", "b")
	if err := (Config{CSVDir: dir}).Validate(); err != nil {
		t.Errorf("creatable CSVDir rejected: %v", err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("CSVDir not created: %v", err)
	}
}

func TestRunAllRejectsBadConfig(t *testing.T) {
	if _, err := RunAll(Config{Workers: -3}, io.Discard); err == nil {
		t.Error("RunAll accepted a negative worker count")
	}
}
