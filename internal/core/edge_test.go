package core

// Table-driven edge-case tests for the experiment plumbing itself:
// Outcome check bookkeeping, CSV emission side effects, and Config
// defaults. The experiment *content* is covered by core_test.go.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestOutcomeFailed(t *testing.T) {
	cases := []struct {
		name   string
		checks []Check
		want   []string // names of failed checks, in order
	}{
		{"nil checks", nil, nil},
		{"empty checks", []Check{}, nil},
		{"all passing", []Check{{Name: "a", Pass: true}, {Name: "b", Pass: true}}, nil},
		{"all failing", []Check{{Name: "a"}, {Name: "b"}}, []string{"a", "b"}},
		{
			"mixed preserves order",
			[]Check{{Name: "a"}, {Name: "b", Pass: true}, {Name: "c"}, {Name: "d", Pass: true}, {Name: "e"}},
			[]string{"a", "c", "e"},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := &Outcome{Checks: tc.checks}
			failed := o.Failed()
			if len(failed) != len(tc.want) {
				t.Fatalf("Failed() returned %d checks, want %d", len(failed), len(tc.want))
			}
			for i, c := range failed {
				if c.Name != tc.want[i] {
					t.Errorf("failed[%d] = %q, want %q", i, c.Name, tc.want[i])
				}
			}
		})
	}
}

func TestOutcomeCheckHelper(t *testing.T) {
	var o Outcome
	o.check("first", true, "value=%g", 1.5)
	o.check("second", false, "got %d want %d", 3, 4)
	if len(o.Checks) != 2 {
		t.Fatalf("%d checks recorded", len(o.Checks))
	}
	if o.Checks[0].Detail != "value=1.5" || !o.Checks[0].Pass {
		t.Errorf("first check = %+v", o.Checks[0])
	}
	if o.Checks[1].Detail != "got 3 want 4" || o.Checks[1].Pass {
		t.Errorf("second check = %+v", o.Checks[1])
	}
}

func TestRenderChecksEmptyOutcome(t *testing.T) {
	// No metrics, no checks: nothing rendered at all.
	var sb strings.Builder
	RenderChecks(&Outcome{}, &sb)
	if sb.Len() != 0 {
		t.Errorf("empty outcome rendered %q", sb.String())
	}
}

func TestBanner(t *testing.T) {
	b := Banner("fig5", "Gain curves")
	for _, want := range []string{"fig5", "Gain curves", "================"} {
		if !strings.Contains(b, want) {
			t.Errorf("banner %q missing %q", b, want)
		}
	}
	if !strings.HasPrefix(b, "\n") || !strings.HasSuffix(b, "\n") {
		t.Errorf("banner %q not newline-delimited", b)
	}
}

func TestEmitTableCSVDir(t *testing.T) {
	table := func() *report.Table {
		tab := report.NewTable("t", "x", "y")
		tab.AddRow(1, 2)
		return tab
	}
	cases := []struct {
		name    string
		dir     func(t *testing.T) string // "" = unset
		wantCSV bool
	}{
		{"no CSVDir writes nothing", func(*testing.T) string { return "" }, false},
		{"existing dir", func(t *testing.T) string { return t.TempDir() }, true},
		{
			// emitTable must create missing directories, nested ones
			// included.
			"nested dir created",
			func(t *testing.T) string { return filepath.Join(t.TempDir(), "a", "b") },
			true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := tc.dir(t)
			cfg := Config{CSVDir: dir}
			if err := emitTable(cfg, io.Discard, "edge", table()); err != nil {
				t.Fatal(err)
			}
			if !tc.wantCSV {
				return
			}
			data, err := os.ReadFile(filepath.Join(dir, "edge.csv"))
			if err != nil {
				t.Fatalf("CSV not written: %v", err)
			}
			if !strings.Contains(string(data), "x,y") {
				t.Errorf("CSV content %q missing header", data)
			}
		})
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Seed != 2004 || cfg.Quick || cfg.Workers != 0 || cfg.CSVDir != "" {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestFindErrorListsKnownIDs(t *testing.T) {
	_, err := Find("definitely-not-registered")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), "table1") {
		t.Errorf("error %q does not list known ids", err)
	}
}
