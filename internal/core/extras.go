package core

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/analytic"
	"repro/internal/hostpim"
	"repro/internal/hybrid"
	"repro/internal/parcelsys"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
)

func init() {
	register(&Experiment{
		ID:    "fig4",
		Title: "Figure 4: threads timeline (execution-flow rendering)",
		PaperClaim: "the test system alternates: one HWP phase, then N uniform " +
			"concurrent LWP threads; at any one time either the HWP or the LWP " +
			"array is executing but not both",
		Run: runFig4,
	})
	register(&Experiment{
		ID:    "sensitivity",
		Title: "NB sensitivity analysis (design guidance)",
		PaperClaim: "NB is 'both machine and application dependent'; sweeping " +
			"parameters exposes which knobs move the break-even node count",
		Run: runSensitivity,
	})
	register(&Experiment{
		ID:    "ablation-overlap",
		Title: "A5: serial (Fig. 4) vs overlapped host/PIM execution",
		PaperClaim: "the paper's flow is strictly alternating; overlapping the " +
			"phases is the natural extension and bounds the benefit left on the table",
		Run: runAblationOverlap,
	})
	register(&Experiment{
		ID:    "combined",
		Title: "Hybrid model: study 1 gains under study 2 communication",
		PaperClaim: "the introduction motivates hybrid host+PIM systems; composing the " +
			"two studies shows inter-PIM latency eroding Fig. 5's gains at low " +
			"parallelism and parcels restoring them",
		Run: runCombined,
	})
	register(&Experiment{
		ID:    "replication",
		Title: "Fig. 11 point with independent-replication confidence intervals",
		PaperClaim: "the paper reports single-run statistical results; replicated " +
			"runs quantify their stability",
		Run: runReplication,
	})
}

func runFig4(cfg Config, w io.Writer) (*Outcome, error) {
	// A deliberately small run so the timeline is readable.
	base := table1Base()
	base.Workload.W = 40000
	base.Workload.PctWL = 0.5
	base.Machine.N = 4
	p, err := hostParams(base)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rec.Filter = func(track string) bool {
		return track == "test-system" || strings.HasPrefix(track, "lwp-")
	}
	res, err := hostpim.Simulate(p, hostpim.SimOptions{Seed: cfg.Seed, ChunkOps: 2000, Tracer: rec})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 4 — threads timeline (HWP phase then %d uniform LWP threads)\n\n", p.N)
	if err := rec.Gantt(w, 0, res.Total, 72); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)

	o := &Outcome{Metrics: map[string]float64{
		"hwp_phase": res.TimeHWPPhase,
		"lwp_phase": res.TimeLWPPhase,
	}}
	// Verify phase exclusivity from the *trace*: no lwp run-state before
	// the HWP phase ends.
	earliestLWP := math.Inf(1)
	for _, e := range rec.Events() {
		if strings.HasPrefix(e.Track, "lwp-") && e.State == "start" && e.T < earliestLWP {
			earliestLWP = e.T
		}
	}
	o.check("LWP threads start only after the HWP phase",
		earliestLWP >= res.TimeHWPPhase-1e-9,
		"first LWP start at %.0f, HWP phase ends %.0f", earliestLWP, res.TimeHWPPhase)
	// All N threads appear.
	seen := map[string]bool{}
	for _, e := range rec.Events() {
		if strings.HasPrefix(e.Track, "lwp-") {
			seen[e.Track] = true
		}
	}
	o.check("all N LWP threads present in the timeline",
		len(seen) == p.N, "%d of %d threads traced", len(seen), p.N)
	return o, nil
}

func runSensitivity(cfg Config, w io.Writer) (*Outcome, error) {
	base, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	sens := analytic.NBSensitivities(base)
	t := report.NewTable("NB elasticities at the Table 1 point (d ln NB / d ln θ)",
		"parameter", "elasticity", "direction")
	var maxAbs float64
	var maxName string
	for _, s := range sens {
		dir := "raises NB (hurts PIM)"
		if s.Elasticity < 0 {
			dir = "lowers NB (helps PIM)"
		}
		t.AddRow(s.Param, s.Elasticity, dir)
		if a := math.Abs(s.Elasticity); a > maxAbs {
			maxAbs = a
			maxName = s.Param
		}
	}
	if err := emitTable(cfg, w, "sensitivity", t); err != nil {
		return nil, err
	}
	o := &Outcome{Metrics: map[string]float64{"max_abs_elasticity": maxAbs}}
	o.check("TML dominates the break-even (memory time is PIM's lever)",
		maxName == "TML", "largest |elasticity| is %s (%.3f)", maxName, maxAbs)
	// Elasticities of a log-ratio must pair up: numerator terms sum to 1,
	// denominator terms to -1.
	var num, den float64
	for _, s := range sens {
		if s.Elasticity > 0 {
			num += s.Elasticity
		} else {
			den += s.Elasticity
		}
	}
	o.Metrics["numerator_sum"] = num
	o.check("numerator elasticities sum to 1 (tL is degree-1 homogeneous)",
		math.Abs(num-1) < 1e-3, "sum=%.4f", num)
	return o, nil
}

func runAblationOverlap(cfg Config, w io.Writer) (*Outcome, error) {
	t := report.NewTable("A5 — Serial vs overlapped execution (analytic totals, locality-aware gains)",
		"%WL", "N", "serial cycles", "overlap cycles", "overlap speedup")
	o := &Outcome{Metrics: map[string]float64{}}
	var bestSpeedup float64
	base, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	tH := base.HWPOpCycles(base.Pmiss)
	tL := base.LWPOpCycles()
	for _, n := range []int{1, 4, 16, 64} {
		// Include the balanced split for this N — the phases equalize at
		// %WL* = N·tH / (N·tH + tL), where overlap reaches its 2x bound.
		balanced := float64(n) * tH / (float64(n)*tH + tL)
		for _, pct := range []float64{0.2, 0.5, balanced, 0.8} {
			serial := base
			serial.PctWL = pct
			serial.N = n
			over := serial
			over.Overlap = true
			rs, err := hostpim.Analytic(serial)
			if err != nil {
				return nil, err
			}
			ro, err := hostpim.Analytic(over)
			if err != nil {
				return nil, err
			}
			sp := rs.Total / ro.Total
			if sp > bestSpeedup {
				bestSpeedup = sp
			}
			t.AddRow(pct, n, rs.Total, ro.Total, sp)
		}
	}
	if err := emitTable(cfg, w, "ablation_overlap", t); err != nil {
		return nil, err
	}
	o.Metrics["best_overlap_speedup"] = bestSpeedup
	o.check("overlap speedup is bounded by 2x",
		bestSpeedup <= 2+1e-9, "best=%.3f", bestSpeedup)
	o.check("balanced phases reach the 2x bound",
		bestSpeedup > 2-1e-9, "best=%.6f at the balanced split", bestSpeedup)
	return o, nil
}

func runCombined(cfg Config, w io.Writer) (*Outcome, error) {
	t := report.NewTable("Hybrid host+PIM: gain vs inter-PIM latency and parcels per node (%WL=0.5, N=32)",
		"latency", "parcels/node", "efficiency", "gain", "effective NB")
	o := &Outcome{Metrics: map[string]float64{}}
	base := scenario.MustFind("hybrid-baseline")
	hbase, err := base.HybridParams(scenario.Config{})
	if err != nil {
		return nil, err
	}
	ideal, err := hostpim.Analytic(hbase.Host)
	if err != nil {
		return nil, err
	}
	var gainP1L2000, gainP64L2000 float64
	for _, l := range []float64{0, 200, 2000} {
		for _, threads := range []int{1, 8, 64} {
			s := base
			s.Machine.Latency = l
			s.Workload.Parallelism = threads
			p, err := s.HybridParams(scenario.Config{})
			if err != nil {
				return nil, err
			}
			r, err := hybrid.Analytic(p)
			if err != nil {
				return nil, err
			}
			nb, err := hybrid.EffectiveNB(p)
			if err != nil {
				return nil, err
			}
			t.AddRow(l, threads, r.Efficiency, r.Gain, nb)
			if l == 2000 && threads == 1 {
				gainP1L2000 = r.Gain
			}
			if l == 2000 && threads == 64 {
				gainP64L2000 = r.Gain
			}
		}
	}
	if err := emitTable(cfg, w, "combined", t); err != nil {
		return nil, err
	}
	// Cross-check one point against the parcelsys-calibrated efficiency.
	horizon := 40000.0
	if cfg.Quick {
		horizon = 15000
	}
	spt := base
	spt.Machine.Latency = 2000
	spt.Workload.Parallelism = 64
	pt, err := spt.HybridParams(scenario.Config{})
	if err != nil {
		return nil, err
	}
	cal, err := hybrid.AnalyticCalibrated(pt, horizon, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "calibration cross-check at L=2000, P=64: analytic gain %.2f, "+
		"parcelsys-calibrated gain %.2f\n\n", gainP64L2000, cal.Gain)

	o.Metrics["ideal_gain"] = ideal.Gain
	o.Metrics["gain_P1_L2000"] = gainP1L2000
	o.Metrics["gain_P64_L2000"] = gainP64L2000
	o.Metrics["calibrated_gain"] = cal.Gain
	o.check("latency erodes the study-1 gain at P=1",
		gainP1L2000 < ideal.Gain/2,
		"ideal %.1f -> %.1f at L=2000, P=1", ideal.Gain, gainP1L2000)
	o.check("parcels restore most of the gain",
		gainP64L2000 > 0.85*ideal.Gain,
		"P=64 recovers %.1f of ideal %.1f", gainP64L2000, ideal.Gain)
	o.check("calibrated and analytic agree within 20%",
		math.Abs(cal.Gain-gainP64L2000)/gainP64L2000 < 0.2,
		"analytic %.2f vs calibrated %.2f", gainP64L2000, cal.Gain)
	return o, nil
}

func runReplication(cfg Config, w io.Writer) (*Outcome, error) {
	s := scenario.MustFind("fig11-point")
	s.Machine.Latency = 500
	s.Workload.Parallelism = 16
	s.Workload.RemoteFrac = 0.4
	p, err := s.ParcelParams(scenarioConfig(cfg))
	if err != nil {
		return nil, err
	}
	reps := 10
	if cfg.Quick {
		reps = 4
	}
	r, err := parcelsys.Replicate(p, reps)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(fmt.Sprintf("Fig. 11 point (P=16, r=0.4, L=500) over %d replications", reps),
		"metric", "mean", "95%% CI half-width", "relative")
	add := func(name string, rep parcelsys.Replicated) {
		rel := 0.0
		if rep.Mean != 0 {
			rel = rep.CI95 / rep.Mean
		}
		t.AddRow(name, rep.Mean, rep.CI95, rel)
	}
	add("ops ratio", r.Ratio)
	add("control idle", r.CtrlIdle)
	add("test idle", r.TestIdle)
	if err := emitTable(cfg, w, "replication", t); err != nil {
		return nil, err
	}
	o := &Outcome{Metrics: map[string]float64{
		"ratio_mean": r.Ratio.Mean,
		"ratio_ci":   r.Ratio.CI95,
	}}
	o.check("replicated ratio is stable (CI < 10% of mean)",
		r.Ratio.CI95 < 0.1*r.Ratio.Mean,
		"ratio %.2f ± %.2f", r.Ratio.Mean, r.Ratio.CI95)
	return o, nil
}
