package core

import (
	"fmt"
	"io"

	"repro/internal/parcel"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(&Experiment{
		ID:    "fig9",
		Title: "Figure 9: parcels invoke remote threads (computation migration demo)",
		PaperClaim: "a parcel identifies the remote datum and the action to perform " +
			"there; chasing a distributed pointer structure by migrating the " +
			"computation halves the network crossings of fetch-based access",
		Run: runFig9,
	})
}

// methodChase walks a distributed linked list: each node stores, at the
// parcel's target address, a pair (next node, next addr) packed into one
// word, plus a value word right after it. The method accumulates the value
// and forwards itself, exactly Fig. 9's "perform the action locally,
// generate new outgoing parcels".
const methodChase = 11

func chaseMethod(m *parcel.Memory, p *parcel.Parcel) []*parcel.Parcel {
	link := m.Load(p.DestAddr)
	value := m.Load(p.DestAddr + 1)
	sum := p.Operands[0] + value
	if link == 0 {
		return []*parcel.Parcel{p.Reply(sum)}
	}
	nextNode := uint32(link >> 48)
	nextAddr := link & 0xffffffffffff
	return []*parcel.Parcel{{
		DestNode: nextNode, DestAddr: nextAddr,
		Action: parcel.ActionInvoke, MethodID: methodChase,
		Operands: []uint64{sum},
		SrcNode:  p.SrcNode, ContAddr: p.ContAddr, Seq: p.Seq,
	}}
}

func runFig9(cfg Config, w io.Writer) (*Outcome, error) {
	const nodes = 16
	const hops = 64
	const latency = 500.0

	// Build a random distributed list of `hops` elements.
	st := rng.NewWithStream(cfg.Seed, 9)
	type elem struct {
		node uint32
		addr uint64
	}
	elems := make([]elem, hops)
	for i := range elems {
		elems[i] = elem{node: uint32(st.Intn(nodes)), addr: uint64(0x100 + 2*i)}
	}

	reg := parcel.NewRegistry()
	reg.Register(methodChase, chaseMethod)
	k := sim.NewKernel()
	tm, err := parcel.NewTimedMachine(k, nodes, reg, parcel.HardwareAssisted(), latency)
	if err != nil {
		return nil, err
	}
	wantSum := uint64(0)
	for i, e := range elems {
		var link uint64
		if i+1 < len(elems) {
			nxt := elems[i+1]
			link = uint64(nxt.node)<<48 | nxt.addr
		}
		tm.Node(int(e.node)).Mem.Store(e.addr, link)
		v := uint64(10 + i)
		tm.Node(int(e.node)).Mem.Store(e.addr+1, v)
		wantSum += v
	}
	if err := tm.Inject(&parcel.Parcel{
		DestNode: elems[0].node, DestAddr: elems[0].addr,
		Action: parcel.ActionInvoke, MethodID: methodChase,
		Operands: []uint64{0}, SrcNode: 0, ContAddr: 0x9000,
	}); err != nil {
		return nil, err
	}
	migrated, err := tm.RunToQuiescence(1e8)
	if err != nil {
		return nil, err
	}
	gotSum := tm.Node(0).Mem.Load(0x9000)

	// Count the actual network crossings of the migrating walk.
	crossings := 0
	prev := uint32(0) // requester
	for _, e := range elems {
		if e.node != prev {
			crossings++
		}
		prev = e.node
	}
	if elems[len(elems)-1].node != 0 {
		crossings++ // the final reply
	}

	// The fetch-based equivalent: the requester round-trips for every
	// element whose data is remote (2 crossings each), deterministic
	// closed form — no overlap is possible because each pointer depends
	// on the previous fetch.
	fetchCrossings := 0
	for _, e := range elems {
		if e.node != 0 {
			fetchCrossings += 2
		}
	}
	fetchTime := float64(fetchCrossings) * latency

	t := report.NewTable("Figure 9 — chasing a 64-element distributed list (16 nodes, L=500)",
		"strategy", "network crossings", "latency cycles (lower bound)", "measured makespan")
	t.AddStringRow("fetch (blocking reads)",
		report.FormatFloat(float64(fetchCrossings)), report.FormatFloat(fetchTime), "—")
	t.AddStringRow("parcel migration (Fig. 9)",
		report.FormatFloat(float64(crossings)),
		report.FormatFloat(float64(crossings)*latency),
		report.FormatFloat(migrated))
	if err := emitTable(cfg, w, "fig9_migration", t); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "sum delivered to the continuation: %d (want %d)\n\n", gotSum, wantSum)

	o := &Outcome{Metrics: map[string]float64{
		"migrated_makespan": migrated,
		"fetch_lower_bound": fetchTime,
		"crossings_parcel":  float64(crossings),
		"crossings_fetch":   float64(fetchCrossings),
	}}
	o.check("the walk computes the correct sum through real parcels",
		gotSum == wantSum, "got %d want %d", gotSum, wantSum)
	o.check("migration needs roughly half the network crossings",
		float64(crossings) < 0.75*float64(fetchCrossings),
		"%d vs %d crossings", crossings, fetchCrossings)
	o.check("measured makespan beats the fetch lower bound",
		migrated < fetchTime,
		"migrated %.0f vs fetch >= %.0f cycles", migrated, fetchTime)
	return o, nil
}
