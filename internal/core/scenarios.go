package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/report"
	"repro/internal/scenario"
)

// This file is the experiment-layer face of internal/scenario: a
// registered experiment that cross-validates every named preset on all
// supporting model backends, plus ScenarioExperiment, the parameterized
// wrapper the pimstudy -scenario flag runs through the engine.

func init() {
	register(&Experiment{
		ID:    "scenarios",
		Title: "Scenario presets cross-validated on every supporting backend",
		PaperClaim: "the paper validates each model against another (analytic vs " +
			"Workbench simulation in Sec 3.1.2, Saavedra-Barrera vs parcel results " +
			"in Sec 5.2); the scenario layer makes that cross-validation total",
		Run: runScenarios,
	})
}

// scenarioConfig maps the experiment config onto the scenario layer's.
func scenarioConfig(cfg Config) scenario.Config {
	return scenario.Config{Seed: cfg.Seed, Quick: cfg.Quick, Cancel: cfg.Cancel}
}

// table1Base returns the Table 1 design point as a scenario — the
// paper-baseline preset with the two sweep variables reset to their
// zero-sweep defaults. Studies and ablations start from this value and
// set the fields they vary.
func table1Base() scenario.Scenario {
	s := scenario.MustFind("paper-baseline")
	s.Workload.PctWL = 0
	s.Machine.N = 1
	return s
}

func runScenarios(cfg Config, w io.Writer) (*Outcome, error) {
	o := &Outcome{Metrics: map[string]float64{}}
	for _, s := range scenario.Presets() {
		if err := crossValidateScenario(cfg, w, s, o, s.Name+"/"); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// crossValidateScenario runs one scenario on all supporting backends,
// renders the per-backend metrics and the agreement matrix, and folds
// metrics (prefixed with keyPrefix) and one agreement check into o.
func crossValidateScenario(cfg Config, w io.Writer, s scenario.Scenario, o *Outcome, keyPrefix string) error {
	results, ags, err := scenario.CrossValidate(s, scenarioConfig(cfg))
	if err != nil {
		return err
	}
	if err := renderScenarioResults(cfg, w, s, results, o, keyPrefix); err != nil {
		return err
	}
	at := report.NewTable(fmt.Sprintf("%s — cross-backend agreement", s.Name),
		"metric", "backends", "a", "b", "diff", "mode", "tol", "status")
	for _, a := range ags {
		mode := "rel"
		if a.Abs {
			mode = "abs"
		}
		status := "ok"
		if !a.Pass {
			status = "DISAGREE"
		}
		at.AddRow(a.Metric, a.A+" vs "+a.B, a.ValA, a.ValB, a.Diff, mode, a.Tol, status)
	}
	if err := emitTable(cfg, w, csvName(s.Name)+"_agreement", at); err != nil {
		return err
	}
	bad := scenario.Disagreements(ags)
	detail := fmt.Sprintf("%d backends, %d comparisons", len(results), len(ags))
	if len(bad) > 0 {
		worst := bad[0]
		for _, a := range bad[1:] {
			if a.Diff/a.Tol > worst.Diff/worst.Tol {
				worst = a
			}
		}
		detail = fmt.Sprintf("%d of %d comparisons disagree; worst: %s %s=%.4g vs %s=%.4g (tol %.3g)",
			len(bad), len(ags), worst.Metric, worst.A, worst.ValA, worst.B, worst.ValB, worst.Tol)
	}
	o.check("cross-backend agreement: "+s.Name, len(bad) == 0, "%s", detail)
	return nil
}

// renderScenarioResults renders one scenario's per-backend metrics and
// folds them into the outcome under keyPrefix+backend/metric.
func renderScenarioResults(cfg Config, w io.Writer, s scenario.Scenario, results []scenario.Result, o *Outcome, keyPrefix string) error {
	t := report.NewTable(fmt.Sprintf("%s (%s) — %s", s.Name, s.Kind(), s.About),
		"backend", "metric", "value")
	for _, r := range results {
		for _, m := range r.MetricKeys() {
			t.AddRow(r.Backend, m, r.Metrics[m])
			o.Metrics[keyPrefix+r.Backend+"/"+m] = r.Metrics[m]
		}
	}
	return emitTable(cfg, w, csvName(s.Name)+"_metrics", t)
}

// csvName turns a scenario name into a CSV-safe file stem.
func csvName(name string) string {
	return "scenario_" + strings.ReplaceAll(name, "-", "_")
}

// ScenarioExperiment wraps one named scenario preset as an ad-hoc
// experiment: on backend "all" it cross-validates across every supporting
// backend (agreement checks included); on a single backend it runs and
// reports that backend's metrics. Running these through internal/engine
// gives scenarios replication, aggregation, caching, and JSON output for
// free — exactly like the registered artifacts.
func ScenarioExperiment(name, backend string) (*Experiment, error) {
	s, err := scenario.Find(name)
	if err != nil {
		return nil, err
	}
	if backend != "all" {
		if _, err := scenario.FindBackend(backend); err != nil {
			return nil, err
		}
	}
	return &Experiment{
		// The backend is part of the identity: the engine's result cache
		// keys on (ID, Config), and two backends must never collide.
		ID:         "scenario-" + s.Name + "-" + backend,
		Title:      fmt.Sprintf("scenario %s on backend %s", s.Name, backend),
		PaperClaim: s.About,
		Run: func(cfg Config, w io.Writer) (*Outcome, error) {
			o := &Outcome{Metrics: map[string]float64{}}
			if backend == "all" {
				if err := crossValidateScenario(cfg, w, s, o, ""); err != nil {
					return nil, err
				}
				return o, nil
			}
			r, err := scenario.Run(s, backend, scenarioConfig(cfg))
			if err != nil {
				return nil, err
			}
			if err := renderScenarioResults(cfg, w, s, []scenario.Result{r}, o, ""); err != nil {
				return nil, err
			}
			return o, nil
		},
	}, nil
}
