package core

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestScenariosExperimentQuick(t *testing.T) {
	skipInShort(t)
	o, out := runExperiment(t, "scenarios")
	// One agreement check per preset, all passing (runExperiment already
	// fails on failed checks); spot-check the rendering.
	if len(o.Checks) != len(scenario.Presets()) {
		t.Errorf("%d checks for %d presets", len(o.Checks), len(scenario.Presets()))
	}
	for _, want := range []string{"paper-baseline", "fig11-point", "cross-backend agreement", "analytic", "queueing"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenarios output missing %q", want)
		}
	}
	// Metrics are namespaced scenario/backend/metric.
	if _, ok := o.Metrics["paper-baseline/sim/gain"]; !ok {
		t.Error("missing paper-baseline/sim/gain metric")
	}
}

func TestScenarioExperimentSingleBackend(t *testing.T) {
	e, err := ScenarioExperiment("paper-baseline", "analytic")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	o, err := e.Run(quickCfg(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := o.Metrics["analytic/gain"]; !ok || v <= 1 {
		t.Errorf("analytic/gain = %g, ok=%v", v, ok)
	}
	if len(o.Checks) != 0 {
		t.Errorf("single-backend run produced %d agreement checks", len(o.Checks))
	}
	if !strings.Contains(sb.String(), "paper-baseline") {
		t.Error("output missing scenario name")
	}
}

func TestScenarioExperimentAllBackends(t *testing.T) {
	skipInShort(t)
	e, err := ScenarioExperiment("fig11-point", "all")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	o, err := e.Run(quickCfg(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range o.Failed() {
		t.Errorf("check %q failed: %s", c.Name, c.Detail)
	}
	if _, ok := o.Metrics["queueing/ratio"]; !ok {
		t.Error("missing queueing/ratio metric")
	}
	if _, ok := o.Metrics["sim/ratio"]; !ok {
		t.Error("missing sim/ratio metric")
	}
	if !strings.Contains(sb.String(), "cross-backend agreement") {
		t.Error("output missing agreement table")
	}
}

func TestScenarioExperimentErrors(t *testing.T) {
	if _, err := ScenarioExperiment("no-such-scenario", "all"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ScenarioExperiment("paper-baseline", "no-such-backend"); err == nil {
		t.Error("unknown backend accepted")
	}
	// A backend that does not support the scenario fails at run time with
	// a clear error.
	e, err := ScenarioExperiment("paper-baseline", "queueing")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := e.Run(quickCfg(), &sb); err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Errorf("want does-not-support error, got %v", err)
	}
}
