package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/analytic"
	"repro/internal/hostpim"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// hostParams resolves a study-1 scenario into the model parameter struct;
// scenario construction errors are experiment bugs.
func hostParams(s scenario.Scenario) (hostpim.Params, error) {
	return s.HostParams(scenario.Config{})
}

// study1Pcts returns the %WL sweep (the paper varies 0%…100%).
func study1Pcts(cfg Config) []float64 {
	if cfg.Quick {
		return sweep.Floats(0, 0.25, 0.5, 0.75, 1)
	}
	return sweep.Linspace(0, 1, 11)
}

// study1Nodes returns the node-count sweep; Fig. 6 names 1…64, Fig. 5's
// gains reach 100X in the upper configurations, so we extend to 256.
func study1Nodes(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// study1W returns the workload size: the paper's 10^8 operations at full
// scale (the DES batches chunks, so cost does not scale with W).
func study1W(cfg Config) float64 {
	if cfg.Quick {
		return 1e6
	}
	return 100e6
}

func init() {
	register(&Experiment{
		ID:    "table1",
		Title: "Table 1: parametric assumptions and metrics",
		PaperClaim: "W=100e6 ops; TLcycle=5; TMH=90; TCH=2; TML=30; " +
			"Pmiss=0.1; mix_l/s=0.30; derived NB=3.125",
		Run: runTable1,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "Figure 5: simulation of performance gain",
		PaperClaim: "small LWP fractions may double performance; data-intensive " +
			"workloads gain an order of magnitude; extreme cases reach ~100X",
		Run: runFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Figure 6: single thread/node response time (unnormalized)",
		PaperClaim: "response time falls with node count, hyperbolic in N; the " +
			"0% LWT line is flat; curves ordered by %WL at N=1",
		Run: runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Figure 7: normalized runtime (analytical model)",
		PaperClaim: "all %WL curves coincide at N = NB independent of %WL; for " +
			"N > NB PIM support is always at least as good",
		Run: runFig7,
	})
	register(&Experiment{
		ID:    "accuracy",
		Title: "Sec 3.1.2: analytic model vs queuing simulation",
		PaperClaim: "the analytical model reproduced the simulation to an " +
			"accuracy of between 5% and 18%",
		Run: runAccuracy,
	})
}

func runTable1(cfg Config, w io.Writer) (*Outcome, error) {
	p, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 1 — Parametric Assumptions and Metrics",
		"parameter", "description", "value")
	t.AddStringRow("W", "total work (operations)", report.FormatFloat(p.W))
	t.AddStringRow("%WH", "percent heavyweight work", "varied 0%..100%")
	t.AddStringRow("%WL", "percent lightweight work", "varied 0%..100%")
	t.AddStringRow("THcycle", "heavyweight cycle time", "1 cycle (1 nsec)")
	t.AddStringRow("TLcycle", "lightweight cycle time", report.FormatFloat(p.TLCycle)+" cycles (5 nsec)")
	t.AddStringRow("TMH", "heavyweight memory access time", report.FormatFloat(p.TMH)+" cycles")
	t.AddStringRow("TCH", "heavyweight cache access time", report.FormatFloat(p.TCH)+" cycles")
	t.AddStringRow("TML", "lightweight memory access time", report.FormatFloat(p.TML)+" cycles")
	t.AddStringRow("Pmiss", "heavyweight cache miss rate", report.FormatFloat(p.Pmiss))
	t.AddStringRow("mix_l/s", "load/store instruction mix", report.FormatFloat(p.MixLS))
	t.AddStringRow("tH", "derived: HWP cycles/op", report.FormatFloat(p.HWPOpCycles(p.Pmiss)))
	t.AddStringRow("tL", "derived: LWP cycles/op (HWP cycles)", report.FormatFloat(p.LWPOpCycles()))
	t.AddStringRow("NB", "derived: break-even node count", report.FormatFloat(p.NB()))
	if err := emitTable(cfg, w, "table1", t); err != nil {
		return nil, err
	}
	o := &Outcome{Metrics: map[string]float64{
		"tH": p.HWPOpCycles(p.Pmiss),
		"tL": p.LWPOpCycles(),
		"NB": p.NB(),
	}}
	o.check("tH is 4 cycles/op", math.Abs(p.HWPOpCycles(p.Pmiss)-4) < 1e-12,
		"tH=%g", p.HWPOpCycles(p.Pmiss))
	o.check("tL is 12.5 cycles/op", math.Abs(p.LWPOpCycles()-12.5) < 1e-12,
		"tL=%g", p.LWPOpCycles())
	o.check("NB is 3.125", math.Abs(p.NB()-3.125) < 1e-12, "NB=%g", p.NB())
	return o, nil
}

func runFig5(cfg Config, w io.Writer) (*Outcome, error) {
	pcts := study1Pcts(cfg)
	nodes := study1Nodes(cfg)
	grid, err := sweep.NewGrid(cfg.Seed,
		sweep.Axis{Name: "n", Values: sweep.Ints(nodes...)},
		sweep.Axis{Name: "pct", Values: pcts},
	)
	if err != nil {
		return nil, err
	}
	base := table1Base()
	base.Workload.W = study1W(cfg)
	outs := grid.Run(cfg.Workers, func(pt sweep.Point) (map[string]float64, error) {
		s := base
		s.Machine.N = pt.GetInt("n")
		s.Workload.PctWL = pt.Get("pct")
		r, err := scenario.Run(s, "sim", scenario.Config{Seed: pt.Seed})
		if err != nil {
			return nil, err
		}
		an, err := scenario.Run(s, "analytic", scenario.Config{Seed: pt.Seed})
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"gain":         r.Metrics[scenario.MetricGain],
			"analyticGain": an.Metrics[scenario.MetricGain],
		}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 5 — Performance gain vs %WL (simulated, locality-aware control)",
		"N", "%WL", "gain(sim)", "gain(analytic)")
	for _, o := range outs {
		t.AddRow(o.Point.GetInt("n"), o.Point.Get("pct"),
			o.Metrics["gain"], o.Metrics["analyticGain"])
	}
	if err := emitTable(cfg, w, "fig5_gain", t); err != nil {
		return nil, err
	}

	ch := report.NewChart("Figure 5 — Performance gain (log gain vs %WL, one series per N)",
		"%WL", "gain")
	ch.LogY = true
	keys, xs, ys := sweep.SeriesBy(outs, "n", "pct", "gain")
	for i, k := range keys {
		if err := ch.Add(report.Series{Name: fmt.Sprintf("N=%d", int(k)), X: xs[i], Y: ys[i]}); err != nil {
			return nil, err
		}
	}
	if err := emitChart(w, ch); err != nil {
		return nil, err
	}

	// Headline metrics: gain at small/large %WL for the biggest N.
	o := &Outcome{Metrics: map[string]float64{}}
	maxN := nodes[len(nodes)-1]
	gainAt := func(n int, pct float64) float64 {
		for _, out := range outs {
			if out.Point.GetInt("n") == n && out.Point.Get("pct") == pct {
				return out.Metrics["gain"]
			}
		}
		return math.NaN()
	}
	smallPct := pcts[1] // first nonzero
	gSmall := gainAt(maxN, smallPct)
	gFull := gainAt(maxN, 1.0)
	o.Metrics["gain_small_pct"] = gSmall
	o.Metrics["gain_full_lwp"] = gFull
	o.Metrics["max_n"] = float64(maxN)
	o.check("small LWP fraction roughly doubles performance",
		gSmall > 1.5, "gain(%%WL=%g, N=%d) = %.2f", smallPct, maxN, gSmall)
	o.check("extreme case reaches ~100X for some configuration",
		gFull >= 80 || cfg.Quick && gFull >= 50,
		"gain(%%WL=1, N=%d) = %.1f", maxN, gFull)
	// Order of magnitude for data-intensive (80%) workloads on large N.
	g80 := gainAt(maxN, closestTo(pcts, 0.8))
	o.Metrics["gain_data_intensive"] = g80
	o.check("data-intensive workloads gain an order of magnitude",
		g80 >= 4.5, "gain(%%WL~0.8, N=%d) = %.1f", maxN, g80)
	return o, nil
}

// closestTo returns the value in vs nearest to target.
func closestTo(vs []float64, target float64) float64 {
	best := vs[0]
	for _, v := range vs {
		if math.Abs(v-target) < math.Abs(best-target) {
			best = v
		}
	}
	return best
}

func runFig6(cfg Config, w io.Writer) (*Outcome, error) {
	pcts := study1Pcts(cfg)
	nodes := fig6Nodes(cfg)
	grid, err := sweep.NewGrid(cfg.Seed+6,
		sweep.Axis{Name: "pct", Values: pcts},
		sweep.Axis{Name: "n", Values: sweep.Ints(nodes...)},
	)
	if err != nil {
		return nil, err
	}
	base := table1Base()
	base.Workload.W = study1W(cfg)
	outs := grid.Run(cfg.Workers, func(pt sweep.Point) (map[string]float64, error) {
		s := base
		s.Machine.N = pt.GetInt("n")
		s.Workload.PctWL = pt.Get("pct")
		r, err := scenario.Run(s, "sim", scenario.Config{Seed: pt.Seed})
		if err != nil {
			return nil, err
		}
		return map[string]float64{"time": r.Metrics[scenario.MetricTotal]}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 6 — Response time (HWP cycles) vs number of smart memory nodes",
		"%LWT", "N", "response time")
	for _, o := range outs {
		t.AddRow(o.Point.Get("pct"), o.Point.GetInt("n"), o.Metrics["time"])
	}
	if err := emitTable(cfg, w, "fig6_response", t); err != nil {
		return nil, err
	}
	ch := report.NewChart("Figure 6 — Response time vs nodes (one series per %LWT)", "N (log2)", "cycles")
	ch.LogX = true
	keys, xs, ys := sweep.SeriesBy(outs, "pct", "n", "time")
	for i, k := range keys {
		if err := ch.Add(report.Series{Name: fmt.Sprintf("%.0f%% LWT", k*100), X: xs[i], Y: ys[i]}); err != nil {
			return nil, err
		}
	}
	if err := emitChart(w, ch); err != nil {
		return nil, err
	}

	o := &Outcome{Metrics: map[string]float64{}}
	timeAt := func(pct float64, n int) float64 {
		for _, out := range outs {
			if out.Point.Get("pct") == pct && out.Point.GetInt("n") == n {
				return out.Metrics["time"]
			}
		}
		return math.NaN()
	}
	flat0 := timeAt(0, nodes[0]) / timeAt(0, nodes[len(nodes)-1])
	o.Metrics["flatness_0pct"] = flat0
	o.check("0% LWT curve is flat in N", math.Abs(flat0-1) < 0.02, "ratio=%.4f", flat0)
	t100n1 := timeAt(1, 1)
	o.Metrics["t_100pct_n1"] = t100n1
	wantT := 12.5 * study1W(cfg)
	o.check("100% LWT at N=1 costs tL*W cycles",
		math.Abs(t100n1-wantT)/wantT < 0.02, "t=%.4g want %.4g", t100n1, wantT)
	decay := timeAt(1, 1) / timeAt(1, nodes[len(nodes)-1])
	o.Metrics["scaling_100pct"] = decay
	o.check("100% LWT scales ~1/N",
		math.Abs(decay-float64(nodes[len(nodes)-1]))/float64(nodes[len(nodes)-1]) < 0.05,
		"N=1/N=%d time ratio = %.1f", nodes[len(nodes)-1], decay)
	return o, nil
}

// fig6Nodes follows the paper's Fig. 6 axis: 1..64.
func fig6Nodes(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 4, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

func runFig7(cfg Config, w io.Writer) (*Outcome, error) {
	base, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	pcts := study1Pcts(cfg)
	nodes := fig6Nodes(cfg)
	pts, err := analytic.Surface(base, pcts, nodes)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 7 — Normalized runtime 1 - %WL(1 - NB/N) (analytic)",
		"%WL", "N", "Time_relative")
	for _, p := range pts {
		t.AddRow(p.PctWL, p.N, p.Relative)
	}
	if err := emitTable(cfg, w, "fig7_normalized", t); err != nil {
		return nil, err
	}

	ch := report.NewChart("Figure 7 — Normalized runtime vs nodes (one series per %WL)", "N (log2)", "Time_relative")
	ch.LogX = true
	bySeries := map[float64][]analytic.SurfacePoint{}
	for _, p := range pts {
		bySeries[p.PctWL] = append(bySeries[p.PctWL], p)
	}
	for _, pct := range pcts {
		var xs, ys []float64
		for _, p := range bySeries[pct] {
			xs = append(xs, float64(p.N))
			ys = append(ys, p.Relative)
		}
		if err := ch.Add(report.Series{Name: fmt.Sprintf("%.0f%% WL", pct*100), X: xs, Y: ys}); err != nil {
			return nil, err
		}
	}
	if err := emitChart(w, ch); err != nil {
		return nil, err
	}

	o := &Outcome{Metrics: map[string]float64{"NB": base.NB()}}
	spreadAtNB := analytic.CoincidenceSpread(base, pcts, base.NB())
	spreadFar := analytic.CoincidenceSpread(base, pcts, 64)
	o.Metrics["spread_at_NB"] = spreadAtNB
	o.Metrics["spread_at_64"] = spreadFar
	o.check("all %WL curves coincide at N=NB", spreadAtNB < 1e-9,
		"spread=%.2g at N=%.4g", spreadAtNB, base.NB())
	o.check("curves fan out away from NB", spreadFar > 0.5,
		"spread=%.3f at N=64", spreadFar)
	// For N > NB every relative time <= 1.
	worst := 0.0
	for _, p := range pts {
		if float64(p.N) > base.NB() && p.Relative > worst {
			worst = p.Relative
		}
	}
	o.Metrics["worst_relative_above_NB"] = worst
	o.check("PIM never loses above NB", worst <= 1+1e-12, "max Time_relative=%.4f", worst)
	return o, nil
}

func runAccuracy(cfg Config, w io.Writer) (*Outcome, error) {
	pcts := study1Pcts(cfg)
	nodes := fig6Nodes(cfg)
	simW := study1W(cfg)
	if !cfg.Quick {
		simW = 10e6 // full grid x 1e8 is wasteful; statistics are W-invariant
	}
	base, err := hostParams(table1Base())
	if err != nil {
		return nil, err
	}
	min, mean, max, err := hostpim.AgreementBand(base, pcts, nodes, simW, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Sec 3.1.2 — Analytic vs simulation agreement",
		"statistic", "relative error")
	t.AddRow("min", min)
	t.AddRow("mean", mean)
	t.AddRow("max", max)
	t.AddStringRow("paper band", "5% .. 18%")
	if err := emitTable(cfg, w, "accuracy", t); err != nil {
		return nil, err
	}
	o := &Outcome{Metrics: map[string]float64{
		"err_min": min, "err_mean": mean, "err_max": max,
	}}
	o.check("agreement within the paper's 18% worst case", max <= 0.18,
		"max rel err = %.4f", max)
	fmt.Fprintf(w, "note: the paper's analytic model matched its Workbench simulation to 5%%-18%%;\n"+
		"our simulator implements the same statistical model directly, so the agreement\n"+
		"is tighter (max %.2f%%) — see EXPERIMENTS.md.\n\n", max*100)
	return o, nil
}
