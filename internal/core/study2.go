package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func init() {
	register(&Experiment{
		ID:    "fig11",
		Title: "Figure 11: latency hiding with parcels",
		PaperClaim: "with sufficient parallelism and significant system-wide latency the " +
			"split-transaction system wins, sometimes exceeding an order of magnitude; " +
			"with little parallelism and short latencies the advantage is small or reversed",
		Run: runFig11,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Figure 12: idle time with respect to degree of parallelism",
		PaperClaim: "for sufficient parallelism the test system's idle time drops " +
			"virtually to zero while the control system stays high; experiments span " +
			"1..256 nodes (the authors' 16-node case failed; ours completes)",
		Run: runFig12,
	})
}

// fig11Parallelism mirrors the paper's "six major experiments differing in
// the amount of parallelism".
func fig11Parallelism(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

func fig11RemoteFracs(cfg Config) []float64 {
	if cfg.Quick {
		return sweep.Floats(0.1, 0.5)
	}
	return sweep.Floats(0.1, 0.3, 0.5, 0.7, 0.9)
}

func fig11Latencies(cfg Config) []float64 {
	if cfg.Quick {
		return sweep.Floats(10, 1000)
	}
	return sweep.Floats(10, 50, 200, 1000, 5000)
}

func fig11Horizon(cfg Config) float64 {
	if cfg.Quick {
		return 20000
	}
	return 100000
}

func runFig11(cfg Config, w io.Writer) (*Outcome, error) {
	grid, err := sweep.NewGrid(cfg.Seed+11,
		sweep.Axis{Name: "p", Values: sweep.Ints(fig11Parallelism(cfg)...)},
		sweep.Axis{Name: "r", Values: fig11RemoteFracs(cfg)},
		sweep.Axis{Name: "l", Values: fig11Latencies(cfg)},
	)
	if err != nil {
		return nil, err
	}
	base := scenario.MustFind("fig11-point")
	base.Workload.Horizon = fig11Horizon(cfg)
	outs := grid.Run(cfg.Workers, func(pt sweep.Point) (map[string]float64, error) {
		s := base
		s.Workload.Parallelism = pt.GetInt("p")
		s.Workload.RemoteFrac = pt.Get("r")
		s.Machine.Latency = pt.Get("l")
		r, err := scenario.Run(s, "sim", scenario.Config{Seed: pt.Seed})
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"ratio":    r.Metrics[scenario.MetricRatio],
			"ctrlIdle": r.Metrics[scenario.MetricCtrlIdle],
			"testIdle": r.Metrics[scenario.MetricTestIdle],
		}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 11 — Test/control operation ratio",
		"parallelism", "remote%", "latency", "ratio", "ctrl idle", "test idle")
	for _, o := range outs {
		t.AddRow(o.Point.GetInt("p"), o.Point.Get("r")*100, o.Point.Get("l"),
			o.Metrics["ratio"], o.Metrics["ctrlIdle"], o.Metrics["testIdle"])
	}
	if err := emitTable(cfg, w, "fig11_ratio", t); err != nil {
		return nil, err
	}

	// One chart per parallelism level (the paper's panels): ratio vs
	// latency, a series per remote fraction.
	for _, par := range fig11Parallelism(cfg) {
		var sub []sweep.Outcome
		for _, o := range outs {
			if o.Point.GetInt("p") == par {
				sub = append(sub, o)
			}
		}
		ch := report.NewChart(
			fmt.Sprintf("Figure 11 — parallelism %d (ratio vs latency)", par),
			"latency (log10 cycles)", "test/control ratio")
		ch.LogX = true
		ch.LogY = true
		keys, xs, ys := sweep.SeriesBy(sub, "r", "l", "ratio")
		for i, k := range keys {
			if err := ch.Add(report.Series{Name: fmt.Sprintf("%.0f%% remote", k*100), X: xs[i], Y: ys[i]}); err != nil {
				return nil, err
			}
		}
		if err := emitChart(w, ch); err != nil {
			return nil, err
		}
	}

	o := &Outcome{Metrics: map[string]float64{}}
	ratioAt := func(p int, r, l float64) float64 {
		for _, out := range outs {
			if out.Point.GetInt("p") == p && out.Point.Get("r") == r && out.Point.Get("l") == l {
				return out.Metrics["ratio"]
			}
		}
		return math.NaN()
	}
	pars := fig11Parallelism(cfg)
	rs := fig11RemoteFracs(cfg)
	ls := fig11Latencies(cfg)
	best := ratioAt(pars[len(pars)-1], rs[len(rs)-1], ls[len(ls)-1])
	worst := ratioAt(pars[0], rs[0], ls[0])
	o.Metrics["best_ratio"] = best
	o.Metrics["worst_ratio"] = worst
	o.check("order-of-magnitude win with high parallelism and latency",
		best >= 10, "ratio=%.1f at P=%d r=%.1f L=%g", best, pars[len(pars)-1], rs[len(rs)-1], ls[len(ls)-1])
	o.check("advantage small or reversed at P=1, short latency",
		worst <= 1.1, "ratio=%.3f at P=1 r=%.1f L=%g", worst, rs[0], ls[0])
	return o, nil
}

// fig12Nodes mirrors the paper's eight major experiments from single-node
// systems to 256 nodes. The paper: "We didn't successfully complete the 16
// node case." We include it.
func fig12Nodes(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 16, 64}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

func fig12Parallelism(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

func fig12Horizon(cfg Config) float64 {
	if cfg.Quick {
		return 10000
	}
	return 50000
}

func runFig12(cfg Config, w io.Writer) (*Outcome, error) {
	grid, err := sweep.NewGrid(cfg.Seed+12,
		sweep.Axis{Name: "nodes", Values: sweep.Ints(fig12Nodes(cfg)...)},
		sweep.Axis{Name: "p", Values: sweep.Ints(fig12Parallelism(cfg)...)},
	)
	if err != nil {
		return nil, err
	}
	base := scenario.MustFind("fig11-point")
	base.Machine.Latency = 500
	base.Workload.RemoteFrac = 0.4
	base.Workload.Horizon = fig12Horizon(cfg)
	outs := grid.Run(cfg.Workers, func(pt sweep.Point) (map[string]float64, error) {
		s := base
		s.Machine.N = pt.GetInt("nodes")
		s.Workload.Parallelism = pt.GetInt("p")
		r, err := scenario.Run(s, "sim", scenario.Config{Seed: pt.Seed})
		if err != nil {
			return nil, err
		}
		return map[string]float64{
			"ctrlIdle": r.Metrics[scenario.MetricCtrlIdle],
			"testIdle": r.Metrics[scenario.MetricTestIdle],
		}, nil
	})
	if err := sweep.FirstError(outs); err != nil {
		return nil, err
	}

	t := report.NewTable("Figure 12 — Idle fraction vs degree of parallelism",
		"nodes", "parallelism", "control idle", "test idle")
	for _, o := range outs {
		t.AddRow(o.Point.GetInt("nodes"), o.Point.GetInt("p"),
			o.Metrics["ctrlIdle"], o.Metrics["testIdle"])
	}
	if err := emitTable(cfg, w, "fig12_idle", t); err != nil {
		return nil, err
	}

	ch := report.NewChart("Figure 12 — Test-system idle vs parallelism (one series per node count)",
		"parallelism (log2)", "idle fraction")
	ch.LogX = true
	keys, xs, ys := sweep.SeriesBy(outs, "nodes", "p", "testIdle")
	for i, k := range keys {
		if err := ch.Add(report.Series{Name: fmt.Sprintf("%d nodes", int(k)), X: xs[i], Y: ys[i]}); err != nil {
			return nil, err
		}
	}
	if err := emitChart(w, ch); err != nil {
		return nil, err
	}

	o := &Outcome{Metrics: map[string]float64{}}
	idleAt := func(nodes, p int, metric string) float64 {
		for _, out := range outs {
			if out.Point.GetInt("nodes") == nodes && out.Point.GetInt("p") == p {
				return out.Metrics[metric]
			}
		}
		return math.NaN()
	}
	nodesList := fig12Nodes(cfg)
	parList := fig12Parallelism(cfg)
	bigN := nodesList[len(nodesList)-1]
	bigP := parList[len(parList)-1]
	o.Metrics["test_idle_saturated"] = idleAt(bigN, bigP, "testIdle")
	o.Metrics["ctrl_idle_saturated"] = idleAt(bigN, bigP, "ctrlIdle")
	o.check("test idle drops virtually to zero with sufficient parallelism",
		idleAt(bigN, bigP, "testIdle") < 0.1,
		"test idle = %.3f at %d nodes, P=%d", idleAt(bigN, bigP, "testIdle"), bigN, bigP)
	o.check("control idle stays high regardless of parallelism",
		idleAt(bigN, bigP, "ctrlIdle") > 0.5,
		"control idle = %.3f", idleAt(bigN, bigP, "ctrlIdle"))
	// The 16-node case the paper failed to complete.
	if !cfg.Quick {
		idle16 := idleAt(16, bigP, "testIdle")
		o.Metrics["test_idle_16_nodes"] = idle16
		o.check("the paper's missing 16-node case completes",
			!math.IsNaN(idle16), "test idle = %.3f", idle16)
	}
	return o, nil
}
