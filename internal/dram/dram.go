// Package dram models the on-chip DRAM macro that a PIM node sits next to:
// row-buffer timing, bank organization, page policies, and the bandwidth
// arithmetic behind the paper's background claims (§2.1) that a single
// macro sustains >50 Gbit/s and a multi-node chip exceeds 1 Tbit/s.
//
// The model is a timing calculator plus an event-free functional simulator
// of row-buffer state; it deliberately stays at the abstraction level of
// the paper (row activate + page access, no DDR command-bus pipelining).
package dram

import (
	"fmt"
	"math"
)

// MacroConfig describes one DRAM macro (one array + row buffer).
type MacroConfig struct {
	// RowBits is the row width in bits (the paper: 2048).
	RowBits int
	// WordBits is the width of one page access out of the row buffer
	// (the paper: 256).
	WordBits int
	// Rows is the number of rows in the macro.
	Rows int
	// RowAccessNS is the time to latch a row into the row buffer
	// (the paper's "very conservative" 20 ns).
	RowAccessNS float64
	// PageAccessNS is the time to page one word out of the row buffer
	// (the paper: 2 ns).
	PageAccessNS float64
	// PrechargeNS is the time to close a row before activating another.
	// The paper folds this into row access; default 0 keeps its model.
	PrechargeNS float64
}

// PaperMacro returns the macro configuration used in the paper's §2.1
// bandwidth discussion.
func PaperMacro() MacroConfig {
	return MacroConfig{
		RowBits:      2048,
		WordBits:     256,
		Rows:         4096,
		RowAccessNS:  20,
		PageAccessNS: 2,
	}
}

// Validate checks configuration invariants.
func (m MacroConfig) Validate() error {
	switch {
	case m.RowBits <= 0:
		return fmt.Errorf("dram: RowBits = %d", m.RowBits)
	case m.WordBits <= 0 || m.WordBits > m.RowBits:
		return fmt.Errorf("dram: WordBits = %d with RowBits = %d", m.WordBits, m.RowBits)
	case m.RowBits%m.WordBits != 0:
		return fmt.Errorf("dram: RowBits %d not a multiple of WordBits %d", m.RowBits, m.WordBits)
	case m.Rows <= 0:
		return fmt.Errorf("dram: Rows = %d", m.Rows)
	case m.RowAccessNS <= 0 || m.PageAccessNS <= 0:
		return fmt.Errorf("dram: non-positive access times (%g, %g)", m.RowAccessNS, m.PageAccessNS)
	case m.PrechargeNS < 0:
		return fmt.Errorf("dram: negative precharge %g", m.PrechargeNS)
	}
	return nil
}

// WordsPerRow returns how many page-width words one row holds.
func (m MacroConfig) WordsPerRow() int { return m.RowBits / m.WordBits }

// CapacityBits returns the macro capacity in bits.
func (m MacroConfig) CapacityBits() int64 {
	return int64(m.Rows) * int64(m.RowBits)
}

// StreamBandwidthBitsPerSec returns the sustained bandwidth of streaming
// whole rows: each row costs one row access plus WordsPerRow page accesses
// (plus precharge), and delivers RowBits bits. For the paper's parameters
// this exceeds 50 Gbit/s.
func (m MacroConfig) StreamBandwidthBitsPerSec() float64 {
	perRowNS := m.RowAccessNS + m.PrechargeNS + float64(m.WordsPerRow())*m.PageAccessNS
	return float64(m.RowBits) / (perRowNS * 1e-9)
}

// PeakPageBandwidthBitsPerSec returns the burst bandwidth while paging out
// of an open row buffer (no row activations).
func (m MacroConfig) PeakPageBandwidthBitsPerSec() float64 {
	return float64(m.WordBits) / (m.PageAccessNS * 1e-9)
}

// RandomWordBandwidthBitsPerSec returns the bandwidth when every access
// opens a new row and uses a single word from it — the worst case that
// motivates row-buffer locality.
func (m MacroConfig) RandomWordBandwidthBitsPerSec() float64 {
	perAccessNS := m.RowAccessNS + m.PrechargeNS + m.PageAccessNS
	return float64(m.WordBits) / (perAccessNS * 1e-9)
}

// PagePolicy selects row-buffer management.
type PagePolicy int

// Page policies.
const (
	// OpenPage leaves the last row latched: hits cost a page access,
	// misses cost precharge + activate + page.
	OpenPage PagePolicy = iota
	// ClosedPage precharges after every access: every access costs
	// activate + page (no hit/miss distinction).
	ClosedPage
)

func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosedPage:
		return "closed-page"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// Bank is the functional row-buffer state machine for one macro with an
// access-time calculator. It is not tied to the DES kernel: callers feed it
// addresses and add the returned latencies into whatever clock they keep.
type Bank struct {
	cfg     MacroConfig
	policy  PagePolicy
	openRow int // -1 when no row latched

	accesses int64
	rowHits  int64
	busyNS   float64
}

// NewBank creates a bank with no row latched.
func NewBank(cfg MacroConfig, policy PagePolicy) (*Bank, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bank{cfg: cfg, policy: policy, openRow: -1}, nil
}

// Config returns the bank's macro configuration.
func (b *Bank) Config() MacroConfig { return b.cfg }

// Access performs one word access to the given row and returns its latency
// in nanoseconds. Row indices out of range panic (caller bug).
func (b *Bank) Access(row int) float64 {
	if row < 0 || row >= b.cfg.Rows {
		panic(fmt.Sprintf("dram: access to row %d of %d", row, b.cfg.Rows))
	}
	b.accesses++
	var ns float64
	switch b.policy {
	case OpenPage:
		if b.openRow == row {
			b.rowHits++
			ns = b.cfg.PageAccessNS
		} else {
			ns = b.cfg.PageAccessNS + b.cfg.RowAccessNS
			if b.openRow >= 0 {
				ns += b.cfg.PrechargeNS
			}
			b.openRow = row
		}
	case ClosedPage:
		ns = b.cfg.RowAccessNS + b.cfg.PageAccessNS
	default:
		panic(fmt.Sprintf("dram: unknown policy %v", b.policy))
	}
	b.busyNS += ns
	return ns
}

// AccessRun performs n sequential word accesses within one row (streaming)
// and returns the total latency in nanoseconds.
func (b *Bank) AccessRun(row, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dram: AccessRun with n = %d", n))
	}
	total := b.Access(row)
	for i := 1; i < n; i++ {
		total += b.Access(row)
	}
	return total
}

// Stats returns (accesses, row-buffer hits, total busy nanoseconds).
func (b *Bank) Stats() (accesses, hits int64, busyNS float64) {
	return b.accesses, b.rowHits, b.busyNS
}

// HitRate returns the fraction of accesses that hit the open row.
func (b *Bank) HitRate() float64 {
	if b.accesses == 0 {
		return 0
	}
	return float64(b.rowHits) / float64(b.accesses)
}

// OpenRow returns the currently latched row, or -1.
func (b *Bank) OpenRow() int { return b.openRow }

// ChipConfig describes a PIM memory chip: many banks, each pairable with a
// lightweight processor node.
type ChipConfig struct {
	Macro MacroConfig
	// Banks is the number of independent macro+logic nodes on the chip.
	Banks int
}

// PaperChip returns a chip sized so its aggregate streaming bandwidth
// crosses the paper's ">1 Tbit/s per chip" claim (32 nodes of the paper
// macro: 32 × ~52 Gbit/s ≈ 1.7 Tbit/s; even 20 suffice).
func PaperChip() ChipConfig {
	return ChipConfig{Macro: PaperMacro(), Banks: 32}
}

// Validate checks the chip configuration.
func (c ChipConfig) Validate() error {
	if err := c.Macro.Validate(); err != nil {
		return err
	}
	if c.Banks <= 0 {
		return fmt.Errorf("dram: Banks = %d", c.Banks)
	}
	return nil
}

// PeakBandwidthBitsPerSec returns the chip aggregate streaming bandwidth:
// banks operate independently and concurrently, so bandwidth scales
// linearly in the bank count (the paper's core §2.1 argument).
func (c ChipConfig) PeakBandwidthBitsPerSec() float64 {
	return float64(c.Banks) * c.Macro.StreamBandwidthBitsPerSec()
}

// CapacityBits returns the chip capacity.
func (c ChipConfig) CapacityBits() int64 {
	return int64(c.Banks) * c.Macro.CapacityBits()
}

// Chip is a set of independent banks with an address interleaving scheme.
type Chip struct {
	cfg   ChipConfig
	banks []*Bank
}

// NewChip creates a chip with all banks closed.
func NewChip(cfg ChipConfig, policy PagePolicy) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ch := &Chip{cfg: cfg, banks: make([]*Bank, cfg.Banks)}
	for i := range ch.banks {
		b, err := NewBank(cfg.Macro, policy)
		if err != nil {
			return nil, err
		}
		ch.banks[i] = b
	}
	return ch, nil
}

// Bank returns bank i.
func (c *Chip) Bank(i int) *Bank { return c.banks[i] }

// NumBanks returns the number of banks.
func (c *Chip) NumBanks() int { return len(c.banks) }

// Decode maps a word address to (bank, row, column) with low-order word
// interleaving across banks: consecutive words hit consecutive banks, the
// classic layout for exposing bank parallelism.
func (c *Chip) Decode(wordAddr int64) (bank, row, col int) {
	if wordAddr < 0 {
		panic(fmt.Sprintf("dram: negative address %d", wordAddr))
	}
	nb := int64(len(c.banks))
	wpr := int64(c.cfg.Macro.WordsPerRow())
	bank = int(wordAddr % nb)
	inBank := wordAddr / nb
	row = int((inBank / wpr) % int64(c.cfg.Macro.Rows))
	col = int(inBank % wpr)
	return bank, row, col
}

// Access performs one word access by flat word address and returns
// (bank index, latency ns).
func (c *Chip) Access(wordAddr int64) (int, float64) {
	bank, row, _ := c.Decode(wordAddr)
	return bank, c.banks[bank].Access(row)
}

// AggregateHitRate returns the chip-wide row-buffer hit rate.
func (c *Chip) AggregateHitRate() float64 {
	var acc, hits int64
	for _, b := range c.banks {
		a, h, _ := b.Stats()
		acc += a
		hits += h
	}
	if acc == 0 {
		return 0
	}
	return float64(hits) / float64(acc)
}

// SystemConfig describes a full PIM memory system: multiple chips, each
// with many banks. The paper (§2.1): "A typical memory system comprises
// multiple DRAM components and the peak memory bandwidth made available
// through PIM is proportional to this number of chips."
type SystemConfig struct {
	Chip ChipConfig
	// Chips is the number of PIM memory components in the system.
	Chips int
}

// PaperSystem returns an 8-chip system of paper chips (a plausible DIMM-
// scale configuration).
func PaperSystem() SystemConfig {
	return SystemConfig{Chip: PaperChip(), Chips: 8}
}

// Validate checks the system configuration.
func (s SystemConfig) Validate() error {
	if err := s.Chip.Validate(); err != nil {
		return err
	}
	if s.Chips <= 0 {
		return fmt.Errorf("dram: Chips = %d", s.Chips)
	}
	return nil
}

// Nodes returns the total PIM node count.
func (s SystemConfig) Nodes() int { return s.Chips * s.Chip.Banks }

// PeakBandwidthBitsPerSec returns the system aggregate: linear in chips.
func (s SystemConfig) PeakBandwidthBitsPerSec() float64 {
	return float64(s.Chips) * s.Chip.PeakBandwidthBitsPerSec()
}

// CapacityBits returns total system capacity.
func (s SystemConfig) CapacityBits() int64 {
	return int64(s.Chips) * s.Chip.CapacityBits()
}

// EffectiveBandwidth returns the realized bandwidth in bits/s of an access
// trace that took wallNS nanoseconds of (serialized per-bank) busy time on
// a single bank, given words transferred. Helper for tests and examples.
func EffectiveBandwidth(words int, wordBits int, wallNS float64) float64 {
	if wallNS <= 0 {
		return math.Inf(1)
	}
	return float64(words) * float64(wordBits) / (wallNS * 1e-9)
}
