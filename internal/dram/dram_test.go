package dram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPaperMacroBandwidthClaim(t *testing.T) {
	// §2.1: "a single on-chip DRAM macro could sustain a bandwidth of over
	// 50 Gbit/s" with 2048-bit rows, 20 ns row access, 2 ns page access.
	m := PaperMacro()
	bw := m.StreamBandwidthBitsPerSec()
	if bw <= 50e9 {
		t.Errorf("paper macro streaming bandwidth = %.3g bit/s, paper claims > 50 Gbit/s", bw)
	}
	// Sanity: 2048 bits / (20 + 8*2) ns ≈ 56.9 Gbit/s.
	want := 2048.0 / (36e-9)
	if math.Abs(bw-want)/want > 1e-12 {
		t.Errorf("bandwidth = %g, want %g", bw, want)
	}
}

func TestPaperChipBandwidthClaim(t *testing.T) {
	// §2.1: "an on-chip peak memory bandwidth of greater than 1 Tbit/s is
	// possible per chip".
	c := PaperChip()
	if bw := c.PeakBandwidthBitsPerSec(); bw <= 1e12 {
		t.Errorf("paper chip bandwidth = %.3g bit/s, paper claims > 1 Tbit/s", bw)
	}
}

func TestPeakPageBandwidth(t *testing.T) {
	m := PaperMacro()
	// 256 bits per 2 ns = 128 Gbit/s burst.
	if bw := m.PeakPageBandwidthBitsPerSec(); math.Abs(bw-128e9) > 1 {
		t.Errorf("peak page bandwidth = %g", bw)
	}
}

func TestBandwidthOrdering(t *testing.T) {
	// Burst >= streaming >= random for any valid configuration.
	err := quick.Check(func(rowW, wordW, ra, pa uint8) bool {
		word := 8 * (1 + int(wordW%32))
		row := word * (1 + int(rowW%64))
		cfg := MacroConfig{
			RowBits:      row,
			WordBits:     word,
			Rows:         128,
			RowAccessNS:  1 + float64(ra%100),
			PageAccessNS: 1 + float64(pa%20),
		}
		if cfg.Validate() != nil {
			return true
		}
		burst := cfg.PeakPageBandwidthBitsPerSec()
		stream := cfg.StreamBandwidthBitsPerSec()
		random := cfg.RandomWordBandwidthBitsPerSec()
		return burst >= stream && stream >= random
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []MacroConfig{
		{RowBits: 0, WordBits: 256, Rows: 1, RowAccessNS: 1, PageAccessNS: 1},
		{RowBits: 2048, WordBits: 0, Rows: 1, RowAccessNS: 1, PageAccessNS: 1},
		{RowBits: 2048, WordBits: 4096, Rows: 1, RowAccessNS: 1, PageAccessNS: 1},
		{RowBits: 2048, WordBits: 300, Rows: 1, RowAccessNS: 1, PageAccessNS: 1}, // not divisible
		{RowBits: 2048, WordBits: 256, Rows: 0, RowAccessNS: 1, PageAccessNS: 1},
		{RowBits: 2048, WordBits: 256, Rows: 1, RowAccessNS: 0, PageAccessNS: 1},
		{RowBits: 2048, WordBits: 256, Rows: 1, RowAccessNS: 1, PageAccessNS: 1, PrechargeNS: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if PaperMacro().Validate() != nil {
		t.Error("paper macro rejected")
	}
}

func TestOpenPageHitMissLatency(t *testing.T) {
	b, err := NewBank(PaperMacro(), OpenPage)
	if err != nil {
		t.Fatal(err)
	}
	// First access: miss (activate + page) = 22 ns, no precharge (no open row).
	if ns := b.Access(5); math.Abs(ns-22) > 1e-12 {
		t.Errorf("cold miss latency = %g, want 22", ns)
	}
	// Same row: hit = 2 ns.
	if ns := b.Access(5); math.Abs(ns-2) > 1e-12 {
		t.Errorf("row hit latency = %g, want 2", ns)
	}
	// Different row: conflict = 22 ns (precharge 0 in paper model).
	if ns := b.Access(6); math.Abs(ns-22) > 1e-12 {
		t.Errorf("row conflict latency = %g, want 22", ns)
	}
	if b.OpenRow() != 6 {
		t.Errorf("open row = %d, want 6", b.OpenRow())
	}
	if hr := b.HitRate(); math.Abs(hr-1.0/3.0) > 1e-12 {
		t.Errorf("hit rate = %g, want 1/3", hr)
	}
}

func TestClosedPageConstantLatency(t *testing.T) {
	b, err := NewBank(PaperMacro(), ClosedPage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if ns := b.Access(i % 3); math.Abs(ns-22) > 1e-12 {
			t.Fatalf("closed page latency = %g, want 22", ns)
		}
	}
	if b.HitRate() != 0 {
		t.Errorf("closed page hit rate = %g", b.HitRate())
	}
}

func TestPrechargeAddsToConflicts(t *testing.T) {
	cfg := PaperMacro()
	cfg.PrechargeNS = 15
	b, err := NewBank(cfg, OpenPage)
	if err != nil {
		t.Fatal(err)
	}
	b.Access(0) // cold: 22 (no precharge needed)
	if ns := b.Access(1); math.Abs(ns-37) > 1e-12 {
		t.Errorf("conflict with precharge = %g, want 37", ns)
	}
}

func TestAccessRunStreamsRow(t *testing.T) {
	b, err := NewBank(PaperMacro(), OpenPage)
	if err != nil {
		t.Fatal(err)
	}
	// 8 words: 22 + 7*2 = 36 ns — exactly one full row stream.
	total := b.AccessRun(3, 8)
	if math.Abs(total-36) > 1e-12 {
		t.Errorf("row stream = %g ns, want 36", total)
	}
	// Bandwidth of the streamed row should equal the macro stream number.
	bw := EffectiveBandwidth(8, 256, total)
	if math.Abs(bw-PaperMacro().StreamBandwidthBitsPerSec())/bw > 1e-12 {
		t.Errorf("streamed bandwidth %g != macro stream bandwidth", bw)
	}
}

func TestAccessOutOfRangePanics(t *testing.T) {
	b, _ := NewBank(PaperMacro(), OpenPage)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Access(PaperMacro().Rows)
}

func TestChipDecodeInterleaving(t *testing.T) {
	c, err := NewChip(ChipConfig{Macro: PaperMacro(), Banks: 4}, OpenPage)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive addresses hit consecutive banks.
	for addr := int64(0); addr < 8; addr++ {
		bank, _, _ := c.Decode(addr)
		if bank != int(addr%4) {
			t.Errorf("addr %d -> bank %d, want %d", addr, bank, addr%4)
		}
	}
	// Same bank, consecutive in-bank words share a row until WordsPerRow.
	wpr := PaperMacro().WordsPerRow()
	_, row0, col0 := c.Decode(0)
	_, rowN, colN := c.Decode(int64(4 * (wpr - 1)))
	if row0 != rowN {
		t.Errorf("within-row addresses landed in rows %d and %d", row0, rowN)
	}
	if col0 != 0 || colN != wpr-1 {
		t.Errorf("columns = %d, %d", col0, colN)
	}
	_, rowNext, _ := c.Decode(int64(4 * wpr))
	if rowNext != row0+1 {
		t.Errorf("next row = %d, want %d", rowNext, row0+1)
	}
}

func TestChipDecodeRoundTripUnique(t *testing.T) {
	c, _ := NewChip(ChipConfig{Macro: MacroConfig{
		RowBits: 512, WordBits: 256, Rows: 8, RowAccessNS: 20, PageAccessNS: 2,
	}, Banks: 2}, OpenPage)
	type loc struct{ b, r, cl int }
	seen := make(map[loc]int64)
	capacityWords := int64(2 * 8 * 2) // banks * rows * wordsPerRow
	for addr := int64(0); addr < capacityWords; addr++ {
		b, r, cl := c.Decode(addr)
		l := loc{b, r, cl}
		if prev, dup := seen[l]; dup {
			t.Fatalf("addresses %d and %d decode to same location %+v", prev, addr, l)
		}
		seen[l] = addr
	}
}

func TestChipStreamingUsesAllBanks(t *testing.T) {
	c, err := NewChip(ChipConfig{Macro: PaperMacro(), Banks: 8}, OpenPage)
	if err != nil {
		t.Fatal(err)
	}
	for addr := int64(0); addr < 64; addr++ {
		c.Access(addr)
	}
	for i := 0; i < c.NumBanks(); i++ {
		acc, _, _ := c.Bank(i).Stats()
		if acc != 8 {
			t.Errorf("bank %d accesses = %d, want 8", i, acc)
		}
	}
}

func TestSequentialHitRateBeatsRandom(t *testing.T) {
	seqChip, _ := NewChip(PaperChip(), OpenPage)
	rndChip, _ := NewChip(PaperChip(), OpenPage)
	st := rng.New(77)
	const n = 100000
	capacityWords := PaperChip().CapacityBits() / 256
	for i := int64(0); i < n; i++ {
		seqChip.Access(i % capacityWords)
		rndChip.Access(int64(st.Uint64n(uint64(capacityWords))))
	}
	seqHR := seqChip.AggregateHitRate()
	rndHR := rndChip.AggregateHitRate()
	if seqHR < 0.8 {
		t.Errorf("sequential hit rate = %g, expected high spatial locality", seqHR)
	}
	if rndHR > 0.1 {
		t.Errorf("random hit rate = %g, expected near zero", rndHR)
	}
	if seqHR <= rndHR {
		t.Errorf("sequential (%g) not better than random (%g)", seqHR, rndHR)
	}
}

func TestCapacity(t *testing.T) {
	m := PaperMacro()
	if got := m.CapacityBits(); got != int64(4096)*2048 {
		t.Errorf("macro capacity = %d", got)
	}
	c := ChipConfig{Macro: m, Banks: 16}
	if got := c.CapacityBits(); got != 16*int64(4096)*2048 {
		t.Errorf("chip capacity = %d", got)
	}
}

func TestSystemScalesWithChips(t *testing.T) {
	s := PaperSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 8*32 {
		t.Errorf("nodes = %d", s.Nodes())
	}
	if got, want := s.PeakBandwidthBitsPerSec(), 8*PaperChip().PeakBandwidthBitsPerSec(); got != want {
		t.Errorf("system bandwidth = %g, want %g", got, want)
	}
	if got, want := s.CapacityBits(), 8*PaperChip().CapacityBits(); got != want {
		t.Errorf("system capacity = %d, want %d", got, want)
	}
	bad := s
	bad.Chips = 0
	if bad.Validate() == nil {
		t.Error("zero chips accepted")
	}
}

func TestNegativeAddressPanics(t *testing.T) {
	c, _ := NewChip(PaperChip(), OpenPage)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Access(-1)
}

func BenchmarkBankAccess(b *testing.B) {
	bank, _ := NewBank(PaperMacro(), OpenPage)
	for i := 0; i < b.N; i++ {
		bank.Access(i & 1023)
	}
}

func BenchmarkChipAccess(b *testing.B) {
	c, _ := NewChip(PaperChip(), OpenPage)
	for i := 0; i < b.N; i++ {
		c.Access(int64(i))
	}
}
