package dram_test

import (
	"fmt"

	"repro/internal/dram"
)

// The §2.1 bandwidth arithmetic with the paper's own constants.
func ExampleMacroConfig() {
	m := dram.PaperMacro()
	fmt.Printf("macro streams %.1f Gbit/s; chip of 32 nodes: %.2f Tbit/s\n",
		m.StreamBandwidthBitsPerSec()/1e9,
		dram.PaperChip().PeakBandwidthBitsPerSec()/1e12)
	// Output: macro streams 56.9 Gbit/s; chip of 32 nodes: 1.82 Tbit/s
}

// Row-buffer behaviour: hits cost the page access, conflicts pay the full
// activation.
func ExampleBank_Access() {
	b, err := dram.NewBank(dram.PaperMacro(), dram.OpenPage)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cold: %g ns, hit: %g ns, conflict: %g ns\n",
		b.Access(3), b.Access(3), b.Access(4))
	// Output: cold: 22 ns, hit: 2 ns, conflict: 22 ns
}
