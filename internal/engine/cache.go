package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
)

// DefaultCacheEntries bounds a NewCache-built cache. Results carry full
// rendered artifacts (potentially megabytes for the big figures), so an
// unbounded cache would let a long pimsweep grid grow memory without
// limit; a few hundred entries covers any realistic working set.
const DefaultCacheEntries = 256

// CacheStats is a point-in-time snapshot of a result cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced by the capacity bound (entries
	// never expire by time).
	Evictions int64 `json:"evictions"`
}

// HitRate returns Hits/(Hits+Misses), 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// add folds another snapshot in (used by ShardedCache aggregation).
func (s CacheStats) add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits + o.Hits,
		Misses:    s.Misses + o.Misses,
		Evictions: s.Evictions + o.Evictions,
	}
}

// ResultCache is the contract Options.Cache expects: Cache is the
// single-lock implementation, ShardedCache the contention-spreading one a
// server shares across many concurrent engines. Implementations must be
// safe for concurrent use.
type ResultCache interface {
	// get and put are unexported on purpose: only this package's
	// implementations can satisfy the interface, keeping the key scheme
	// (cacheKey) an engine-internal detail.
	get(key uint64) (Result, bool)
	put(key uint64, r Result)
	// Len returns the number of cached results.
	Len() int
	// Stats snapshots the hit/miss/eviction counters.
	Stats() CacheStats
}

// Cache memoizes experiment Results keyed by a hash of the experiment ID
// and the full run configuration (seed, quick flag, CSV directory,
// replication count, CI level), evicting least-recently-used entries past
// its capacity. It is safe for concurrent use and may be shared across
// engines. Entries never expire by time: every experiment is
// deterministic given its configuration, so a cached result stays valid
// for the life of the process — only capacity evicts.
type Cache struct {
	mu    sync.Mutex
	max   int // <= 0 means unbounded
	m     map[uint64]*list.Element
	ll    *list.List // front = most recently used
	stats CacheStats
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key uint64
	r   Result
}

// NewCache creates an empty result cache bounded to DefaultCacheEntries.
func NewCache() *Cache {
	return NewCacheSize(DefaultCacheEntries)
}

// NewCacheSize creates an empty result cache holding at most max entries
// (max <= 0 means unbounded).
func NewCacheSize(max int) *Cache {
	return &Cache{
		max: max,
		m:   make(map[uint64]*list.Element),
		ll:  list.New(),
	}
}

func (c *Cache) get(key uint64) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.stats.Misses++
		return Result{}, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).r, true
}

func (c *Cache) put(key uint64, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).r = r
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, r: r})
	for c.max > 0 && c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the maximum entry count (0 = unbounded).
func (c *Cache) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return 0
	}
	return c.max
}

// Stats snapshots the lookup hit/miss and eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ShardedCache spreads the result cache over independently locked Cache
// shards, routed by key, so many concurrent engines (pimserve's request
// workers) never serialize on one mutex. Each shard carries its own LRU
// list and capacity bound; the aggregate capacity is shards × per-shard
// entries. Zero-value-unusable: build with NewShardedCache.
type ShardedCache struct {
	shards []*Cache
}

// DefaultCacheShards is NewShardedCache's shard count for n <= 0: enough
// to make same-lock collisions rare at realistic worker counts while
// keeping the fixed footprint trivial.
const DefaultCacheShards = 16

// NewShardedCache creates a cache of `shards` independent LRU shards
// (<= 0 = DefaultCacheShards) of entriesPerShard entries each (<= 0 =
// DefaultCacheEntries / shards, minimum 1 — so the default aggregate
// capacity matches NewCache).
func NewShardedCache(shards, entriesPerShard int) *ShardedCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	if entriesPerShard <= 0 {
		entriesPerShard = DefaultCacheEntries / shards
		if entriesPerShard < 1 {
			entriesPerShard = 1
		}
	}
	c := &ShardedCache{shards: make([]*Cache, shards)}
	for i := range c.shards {
		c.shards[i] = NewCacheSize(entriesPerShard)
	}
	return c
}

// shard routes a key: cacheKey is an FNV-64a hash, so the low bits are
// already well mixed.
func (c *ShardedCache) shard(key uint64) *Cache {
	return c.shards[key%uint64(len(c.shards))]
}

func (c *ShardedCache) get(key uint64) (Result, bool) { return c.shard(key).get(key) }
func (c *ShardedCache) put(key uint64, r Result)      { c.shard(key).put(key, r) }

// Shards returns the shard count.
func (c *ShardedCache) Shards() int { return len(c.shards) }

// Len returns the number of cached results across all shards.
func (c *ShardedCache) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.Len()
	}
	return n
}

// Cap returns the aggregate capacity (0 = unbounded).
func (c *ShardedCache) Cap() int {
	n := 0
	for _, s := range c.shards {
		sc := s.Cap()
		if sc == 0 {
			return 0
		}
		n += sc
	}
	return n
}

// Stats aggregates the shard counters. The snapshot is per-shard atomic
// but not cross-shard atomic; counters only grow, so any aggregate is a
// valid point between the first and last shard lock.
func (c *ShardedCache) Stats() CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		out = out.add(s.Stats())
	}
	return out
}

// cacheKey hashes everything that can influence a Result: the experiment
// identity, the run configuration (Workers excluded — it changes only
// scheduling, never results), the replication count, and the CI level.
func cacheKey(id string, cfg core.Config, reps int, level float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00%t\x00%s\x00%d\x00%g", id, cfg.Seed, cfg.Quick, cfg.CSVDir, reps, level)
	return h.Sum64()
}
