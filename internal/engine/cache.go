package engine

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
)

// Cache memoizes experiment Results keyed by a hash of the experiment ID
// and the full run configuration (seed, quick flag, CSV directory,
// replication count, CI level). It is safe for concurrent use and may be
// shared across engines. Entries never expire: every experiment is
// deterministic given its configuration, so a cached result stays valid
// for the life of the process.
type Cache struct {
	mu     sync.Mutex
	m      map[uint64]Result
	hits   int
	misses int
}

// NewCache creates an empty result cache.
func NewCache() *Cache {
	return &Cache{m: make(map[uint64]Result)}
}

func (c *Cache) get(key uint64) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

func (c *Cache) put(key uint64, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = r
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns the lookup hit and miss counts so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey hashes everything that can influence a Result: the experiment
// identity, the run configuration (Workers excluded — it changes only
// scheduling, never results), the replication count, and the CI level.
func cacheKey(id string, cfg core.Config, reps int, level float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00%t\x00%s\x00%d\x00%g", id, cfg.Seed, cfg.Quick, cfg.CSVDir, reps, level)
	return h.Sum64()
}
