package engine

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
)

// DefaultCacheEntries bounds a NewCache-built cache. Results carry full
// rendered artifacts (potentially megabytes for the big figures), so an
// unbounded cache would let a long pimsweep grid grow memory without
// limit; a few hundred entries covers any realistic working set.
const DefaultCacheEntries = 256

// Cache memoizes experiment Results keyed by a hash of the experiment ID
// and the full run configuration (seed, quick flag, CSV directory,
// replication count, CI level), evicting least-recently-used entries past
// its capacity. It is safe for concurrent use and may be shared across
// engines. Entries never expire by time: every experiment is
// deterministic given its configuration, so a cached result stays valid
// for the life of the process — only capacity evicts.
type Cache struct {
	mu     sync.Mutex
	max    int // <= 0 means unbounded
	m      map[uint64]*list.Element
	ll     *list.List // front = most recently used
	hits   int
	misses int
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key uint64
	r   Result
}

// NewCache creates an empty result cache bounded to DefaultCacheEntries.
func NewCache() *Cache {
	return NewCacheSize(DefaultCacheEntries)
}

// NewCacheSize creates an empty result cache holding at most max entries
// (max <= 0 means unbounded).
func NewCacheSize(max int) *Cache {
	return &Cache{
		max: max,
		m:   make(map[uint64]*list.Element),
		ll:  list.New(),
	}
}

func (c *Cache) get(key uint64) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses++
		return Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).r, true
}

func (c *Cache) put(key uint64, r Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).r = r
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, r: r})
	for c.max > 0 && c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the maximum entry count (0 = unbounded).
func (c *Cache) Cap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return 0
	}
	return c.max
}

// Stats returns the lookup hit and miss counts so far.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey hashes everything that can influence a Result: the experiment
// identity, the run configuration (Workers excluded — it changes only
// scheduling, never results), the replication count, and the CI level.
func cacheKey(id string, cfg core.Config, reps int, level float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%d\x00%t\x00%s\x00%d\x00%g", id, cfg.Seed, cfg.Quick, cfg.CSVDir, reps, level)
	return h.Sum64()
}
