package engine

import (
	"fmt"
	"testing"
)

// fakeResult builds a distinguishable Result for cache tests.
func fakeResult(i int) Result {
	return Result{ID: fmt.Sprintf("exp-%d", i)}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheSize(3)
	for i := 0; i < 5; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// 0 and 1 were evicted; 2..4 remain.
	for i := 0; i < 2; i++ {
		if _, ok := c.get(uint64(i)); ok {
			t.Errorf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if r, ok := c.get(uint64(i)); !ok || r.ID != fmt.Sprintf("exp-%d", i) {
			t.Errorf("key %d missing or wrong: %v %v", i, r.ID, ok)
		}
	}
}

func TestCacheLRURecencyOrder(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.put(2, fakeResult(2))
	// Touch 1 so 2 becomes the eviction victim.
	if _, ok := c.get(1); !ok {
		t.Fatal("key 1 missing")
	}
	c.put(3, fakeResult(3))
	if _, ok := c.get(2); ok {
		t.Error("key 2 should have been evicted (least recently used)")
	}
	if _, ok := c.get(1); !ok {
		t.Error("recently used key 1 was evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Error("key 3 missing")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.put(1, fakeResult(99))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double put, want 1", c.Len())
	}
	if r, _ := c.get(1); r.ID != "exp-99" {
		t.Errorf("updated value not stored: %s", r.ID)
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCacheSize(0)
	for i := 0; i < 1000; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != 1000 {
		t.Errorf("unbounded cache evicted: Len = %d", c.Len())
	}
	if c.Cap() != 0 {
		t.Errorf("Cap = %d, want 0 (unbounded)", c.Cap())
	}
}

func TestCacheDefaultBound(t *testing.T) {
	c := NewCache()
	if c.Cap() != DefaultCacheEntries {
		t.Fatalf("Cap = %d, want %d", c.Cap(), DefaultCacheEntries)
	}
	for i := 0; i < DefaultCacheEntries+50; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != DefaultCacheEntries {
		t.Errorf("Len = %d, want the %d-entry bound", c.Len(), DefaultCacheEntries)
	}
}

func TestCacheStatsCount(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.get(1)
	c.get(2)
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats = (%d, %d), want (1, 1)", hits, misses)
	}
}
