package engine

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
)

// fakeResult builds a distinguishable Result for cache tests.
func fakeResult(i int) Result {
	return Result{ID: fmt.Sprintf("exp-%d", i)}
}

// countingExperiment counts how many times it actually executes.
func countingExperiment(id string, runs *int) *core.Experiment {
	return &core.Experiment{
		ID: id, Title: id, PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			*runs++
			fmt.Fprintln(w, "ran")
			return &core.Outcome{Metrics: map[string]float64{"m": 1}}, nil
		},
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCacheSize(3)
	for i := 0; i < 5; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// 0 and 1 were evicted; 2..4 remain.
	for i := 0; i < 2; i++ {
		if _, ok := c.get(uint64(i)); ok {
			t.Errorf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if r, ok := c.get(uint64(i)); !ok || r.ID != fmt.Sprintf("exp-%d", i) {
			t.Errorf("key %d missing or wrong: %v %v", i, r.ID, ok)
		}
	}
}

func TestCacheLRURecencyOrder(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.put(2, fakeResult(2))
	// Touch 1 so 2 becomes the eviction victim.
	if _, ok := c.get(1); !ok {
		t.Fatal("key 1 missing")
	}
	c.put(3, fakeResult(3))
	if _, ok := c.get(2); ok {
		t.Error("key 2 should have been evicted (least recently used)")
	}
	if _, ok := c.get(1); !ok {
		t.Error("recently used key 1 was evicted")
	}
	if _, ok := c.get(3); !ok {
		t.Error("key 3 missing")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.put(1, fakeResult(99))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double put, want 1", c.Len())
	}
	if r, _ := c.get(1); r.ID != "exp-99" {
		t.Errorf("updated value not stored: %s", r.ID)
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCacheSize(0)
	for i := 0; i < 1000; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != 1000 {
		t.Errorf("unbounded cache evicted: Len = %d", c.Len())
	}
	if c.Cap() != 0 {
		t.Errorf("Cap = %d, want 0 (unbounded)", c.Cap())
	}
}

func TestCacheDefaultBound(t *testing.T) {
	c := NewCache()
	if c.Cap() != DefaultCacheEntries {
		t.Fatalf("Cap = %d, want %d", c.Cap(), DefaultCacheEntries)
	}
	for i := 0; i < DefaultCacheEntries+50; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() != DefaultCacheEntries {
		t.Errorf("Len = %d, want the %d-entry bound", c.Len(), DefaultCacheEntries)
	}
}

func TestCacheStatsCount(t *testing.T) {
	c := NewCacheSize(2)
	c.put(1, fakeResult(1))
	c.get(1)
	c.get(2)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("Stats = %+v, want 1 hit, 1 miss", st)
	}
	c.put(2, fakeResult(2))
	c.put(3, fakeResult(3)) // displaces key 1
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if got := (CacheStats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Errorf("HitRate = %g, want 0.75", got)
	}
	if got := (CacheStats{}).HitRate(); got != 0 {
		t.Errorf("empty HitRate = %g, want 0", got)
	}
}

func TestShardedCacheRoutesAndCounts(t *testing.T) {
	c := NewShardedCache(4, 8)
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", c.Shards())
	}
	if c.Cap() != 32 {
		t.Fatalf("Cap = %d, want 32", c.Cap())
	}
	for i := 0; i < 100; i++ {
		c.put(uint64(i), fakeResult(i))
	}
	if c.Len() > 32 {
		t.Fatalf("Len = %d exceeds aggregate capacity 32", c.Len())
	}
	// Recent keys are retained per shard; key 99 must still be there.
	if r, ok := c.get(99); !ok || r.ID != "exp-99" {
		t.Errorf("key 99 missing after fill: %v %v", r.ID, ok)
	}
	st := c.Stats()
	if st.Evictions != 100-int64(c.Len()) {
		t.Errorf("Evictions = %d, want %d", st.Evictions, 100-c.Len())
	}
	if st.Hits+st.Misses != 1 {
		t.Errorf("lookups = %d, want 1", st.Hits+st.Misses)
	}
}

func TestShardedCacheDefaults(t *testing.T) {
	c := NewShardedCache(0, 0)
	if c.Shards() != DefaultCacheShards {
		t.Fatalf("Shards = %d, want %d", c.Shards(), DefaultCacheShards)
	}
	if c.Cap() != DefaultCacheEntries {
		t.Fatalf("Cap = %d, want %d", c.Cap(), DefaultCacheEntries)
	}
}

func TestShardedCacheAsEngineCache(t *testing.T) {
	// A ShardedCache plugged into Options.Cache must hit exactly like the
	// single-lock cache: second run served without re-executing.
	runs := 0
	exp := countingExperiment("sharded-cache-exp", &runs)
	cache := NewShardedCache(4, 4)
	eng := New(Options{Workers: 2, Cache: cache})
	for i := 0; i < 2; i++ {
		res, err := eng.Run(core.Config{Seed: 7, Quick: true}, []*core.Experiment{exp})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if want := i == 1; res[0].FromCache != want {
			t.Errorf("run %d: FromCache = %v, want %v", i, res[0].FromCache, want)
		}
	}
	if runs != 1 {
		t.Errorf("experiment ran %d times, want 1", runs)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("Stats = %+v, want 1 hit, 1 miss", st)
	}
}
