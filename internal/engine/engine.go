// Package engine is the concurrent experiment-execution subsystem: it
// fans any set of registered core experiments out across a bounded worker
// pool, runs each replicate against a per-run buffered writer (so output
// stays deterministic and un-interleaved regardless of scheduling),
// supports N-replication runs with derived seeds and statistical
// aggregation of the outcome metrics (mean / min / max / Student-t CI),
// streams structured progress events, and caches results keyed by a hash
// of (experiment ID, Config).
//
// Replicate 0 always runs with the caller's seed verbatim, so a
// single-replication engine run reproduces the serial core.RunAll path
// exactly — same Outcome, same rendered bytes. Additional replicates use
// SplitMix64-derived seeds, mirroring how internal/sweep seeds its grid
// points.
//
// The engine parallelizes across experiments; each experiment's own
// sweeps still honor core.Config.Workers. When running many experiments
// concurrently on a loaded machine, set cfg.Workers = 1 to avoid
// oversubscribing the host. When the runs themselves multithread — the
// machine backend's per-run PDES workers (scenario Machine.RunParallel) —
// declare it with Options.RunParallelism and the Workers default divides
// the GOMAXPROCS budget accordingly.
package engine

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// ErrCanceled reports a replicate that was skipped or stopped because the
// caller's core.Config.Cancel hook fired (a serving deadline, a drain).
// Replicates cut down by the RunTimeout watchdog report the watchdog error
// instead.
var ErrCanceled = errors.New("engine: run canceled")

// Options configures an Engine.
type Options struct {
	// Workers bounds how many replicate runs execute concurrently.
	// 0 = GOMAXPROCS divided by RunParallelism: the engine and a backend
	// that parallelizes single runs (the machine backend's RunParallel /
	// isa.Machine.Parallelism) share one core budget, so the product of
	// engine workers and per-run workers never oversubscribes the host.
	Workers int
	// RunParallelism declares how many OS threads each individual run
	// uses internally (1 when unset). It only shapes the Workers default;
	// it does not itself parallelize anything — set the backend's own
	// knob (e.g. scenario Machine.RunParallel) for that.
	RunParallelism int
	// Replications is the number of runs per experiment (0 or 1 = one
	// run). Replicate 0 uses the caller's seed; replicate i > 0 derives
	// its seed from (base seed, i).
	Replications int
	// Level is the confidence level for aggregate CIs (0 = 0.95).
	Level float64
	// Events, when non-nil, receives progress events. The engine
	// serializes callbacks, so the handler needs no locking of its own.
	Events func(Event)
	// Cache, when non-nil, is consulted before running an experiment and
	// updated after a successful run (NewCache or NewShardedCache). A cache
	// may be shared by several engines, including concurrently.
	Cache ResultCache
	// RunTimeout, when positive, is a per-replicate wall-clock watchdog: a
	// replicate that has not returned within the budget is abandoned and
	// recorded as failed, so one hung backend (a livelocked VM, an injected
	// crash loop) cannot wedge a whole study. The watchdog also arms the
	// run's core.Config.Cancel hook, so a backend that polls it (the
	// machine backend's VM loops) actually stops shortly after the timeout
	// instead of running to completion in the background; a backend that
	// never polls still merely leaks a goroutine with a private,
	// never-pooled buffer whose result is discarded.
	RunTimeout time.Duration
}

// EventKind classifies a progress event.
type EventKind int

const (
	// EventStart fires when a replicate begins executing.
	EventStart EventKind = iota
	// EventDone fires when a replicate finishes successfully.
	EventDone
	// EventError fires when a replicate fails.
	EventError
	// EventCacheHit fires when an experiment is served from the cache
	// without running.
	EventCacheHit
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventDone:
		return "done"
	case EventError:
		return "error"
	case EventCacheHit:
		return "cache-hit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one structured progress notification.
type Event struct {
	Kind EventKind
	// ID is the experiment id.
	ID string
	// Replicate is the replicate index (0-based); meaningless for
	// EventCacheHit.
	Replicate int
	// Replications is the total replicate count for the run.
	Replications int
	// Err carries the failure for EventError.
	Err error
}

// Aggregate summarizes one metric across replicates.
type Aggregate struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// CI is the half-width of the two-sided Student-t confidence interval
	// on the mean at Options.Level (+Inf when N < 2).
	CI float64 `json:"ci"`
	N  int     `json:"n"`
}

// Result is the engine's answer for one experiment.
type Result struct {
	// ID and Title identify the experiment.
	ID    string
	Title string
	// Outcome is replicate 0's outcome (the caller's seed), nil when
	// replicate 0 itself failed.
	Outcome *core.Outcome
	// Output is replicate 0's rendered artifact.
	Output []byte
	// Aggregates summarizes each metric across the replicates that
	// succeeded, keyed like Outcome.Metrics. With one replication the
	// aggregate collapses to the single observation (N = 1, infinite CI);
	// when some replicates fail the aggregate covers the surviving subset
	// (N < Replications) alongside Err.
	Aggregates map[string]Aggregate
	// Err is the first replicate failure, if any. A partial result — Err
	// set and Aggregates over the surviving replicates — is still valid.
	Err error
	// FromCache reports whether the result was served from Options.Cache.
	FromCache bool
}

// bufPool recycles the per-run rendering buffers across experiments,
// replications, and engines. Rendered artifacts are a few KB; reusing the
// grown buffers keeps replication sweeps from paying one buffer-growth
// cycle per run.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Engine executes experiments per its Options. It is safe for concurrent
// use.
type Engine struct {
	opts Options
	evmu sync.Mutex
}

// New creates an engine, applying option defaults. The Workers default is
// the shared-budget rule: GOMAXPROCS split between the engine's replicate
// fan-out and each run's internal RunParallelism, never below one worker.
func New(opts Options) *Engine {
	if opts.RunParallelism < 1 {
		opts.RunParallelism = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0) / opts.RunParallelism
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	if opts.Replications <= 0 {
		opts.Replications = 1
	}
	if opts.Level == 0 {
		opts.Level = 0.95
	}
	return &Engine{opts: opts}
}

// Options returns the engine's effective (default-filled) options.
func (e *Engine) Options() Options { return e.opts }

// RunAll executes every registered experiment; see Run.
func (e *Engine) RunAll(cfg core.Config) ([]Result, error) {
	return e.Run(cfg, core.Registry())
}

// Run executes the given experiments concurrently and returns one Result
// per experiment, in input order. Execution order never affects results:
// every replicate's randomness comes only from its derived seed, and each
// replicate writes to a private buffer. The returned error joins all
// per-experiment failures (also recorded on the individual Results); the
// successful Results are valid either way.
func (e *Engine) Run(cfg core.Config, exps []*core.Experiment) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reps := e.opts.Replications
	results := make([]Result, len(exps))

	// One slot per (experiment, replicate); replicate 0 keeps its output.
	type runOut struct {
		outcome *core.Outcome
		output  []byte
		err     error
	}
	runs := make([][]runOut, len(exps))

	type task struct{ exp, rep int }
	var tasks []task
	for i, exp := range exps {
		results[i].ID = exp.ID
		results[i].Title = exp.Title
		if e.opts.Cache != nil {
			if r, ok := e.opts.Cache.get(cacheKey(exp.ID, cfg, reps, e.opts.Level)); ok {
				r.FromCache = true
				results[i] = r
				e.emit(Event{Kind: EventCacheHit, ID: exp.ID, Replications: reps})
				continue
			}
		}
		runs[i] = make([]runOut, reps)
		for r := 0; r < reps; r++ {
			tasks = append(tasks, task{exp: i, rep: r})
		}
	}

	work := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range work {
				exp := exps[t.exp]
				if cfg.Canceled() {
					// The caller gave up (deadline, drain): drain the queue
					// without starting work, so Run returns promptly.
					runs[t.exp][t.rep] = runOut{err: ErrCanceled}
					e.emit(Event{Kind: EventError, ID: exp.ID, Replicate: t.rep, Replications: reps, Err: ErrCanceled})
					continue
				}
				e.emit(Event{Kind: EventStart, ID: exp.ID, Replicate: t.rep, Replications: reps})
				rcfg := cfg
				rcfg.Seed = ReplicateSeed(cfg.Seed, t.rep)
				if t.rep > 0 {
					// Only the base replicate keeps rendered output and
					// CSV artifacts; the others contribute metrics.
					rcfg.CSVDir = ""
				}
				o, output, err := e.runReplicate(exp, rcfg, t.rep == 0)
				runs[t.exp][t.rep] = runOut{outcome: o, output: output, err: err}
				if err != nil {
					e.emit(Event{Kind: EventError, ID: exp.ID, Replicate: t.rep, Replications: reps, Err: err})
				} else {
					e.emit(Event{Kind: EventDone, ID: exp.ID, Replicate: t.rep, Replications: reps})
				}
			}
		}()
	}
	for _, t := range tasks {
		work <- t
	}
	close(work)
	wg.Wait()

	var errs []error
	for i, exp := range exps {
		if runs[i] == nil { // cache hit
			continue
		}
		r := &results[i]
		// Graceful degradation: a failed replicate (injected crash,
		// livelock guard, watchdog) records the error but does not void
		// the replicates that survived — the aggregate covers the
		// successful subset.
		var ok []runOut
		for rep, ro := range runs[i] {
			if ro.err != nil {
				if r.Err == nil {
					r.Err = fmt.Errorf("engine: %s (replicate %d): %w", exp.ID, rep, ro.err)
				}
				continue
			}
			ok = append(ok, ro)
		}
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
		if runs[i][0].err == nil {
			r.Outcome = runs[i][0].outcome
			r.Output = runs[i][0].output
		}
		if len(ok) > 0 {
			r.Aggregates = aggregate(ok, func(ro runOut) map[string]float64 {
				return ro.outcome.Metrics
			}, e.opts.Level)
		}
		// Only fully successful results are cacheable: a partial result
		// served from cache would hide that some replicates failed.
		if r.Err == nil && e.opts.Cache != nil {
			e.opts.Cache.put(cacheKey(exp.ID, cfg, reps, e.opts.Level), *r)
		}
	}
	return results, errors.Join(errs...)
}

// runReplicate executes one replicate, honoring the RunTimeout watchdog.
// keepOutput is true for replicate 0, whose rendered artifact the caller
// keeps.
func (e *Engine) runReplicate(exp *core.Experiment, rcfg core.Config, keepOutput bool) (*core.Outcome, []byte, error) {
	if e.opts.RunTimeout <= 0 {
		if !keepOutput {
			o, err := exp.Run(rcfg, io.Discard)
			return o, nil, err
		}
		// Base replicate: render into a pooled buffer — the buffer (and
		// its grown capacity) is reused across experiments and engine
		// runs instead of reallocated per run.
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		o, err := exp.Run(rcfg, buf)
		output := append([]byte(nil), buf.Bytes()...)
		bufPool.Put(buf)
		return o, output, err
	}
	// Watchdog path: the run gets a private, never-pooled buffer — an
	// abandoned run may still write to it after the timeout fires. The
	// timeout also arms the run's Cancel hook (composed over any hook the
	// caller installed), so a backend that polls Config.Canceled stops
	// cooperatively soon after instead of executing to completion.
	var timedOut atomic.Bool
	callerCancel := rcfg.Cancel
	rcfg.Cancel = func() bool {
		return timedOut.Load() || (callerCancel != nil && callerCancel())
	}
	var buf bytes.Buffer
	var w io.Writer = io.Discard
	if keepOutput {
		w = &buf
	}
	type repResult struct {
		o   *core.Outcome
		err error
	}
	done := make(chan repResult, 1)
	go func() {
		o, err := exp.Run(rcfg, w)
		done <- repResult{o, err}
	}()
	timer := time.NewTimer(e.opts.RunTimeout)
	defer timer.Stop()
	select {
	case res := <-done:
		var output []byte
		if keepOutput {
			output = append([]byte(nil), buf.Bytes()...)
		}
		return res.o, output, res.err
	case <-timer.C:
		timedOut.Store(true)
		return nil, nil, fmt.Errorf("run exceeded the %v RunTimeout watchdog: backend abandoned", e.opts.RunTimeout)
	}
}

// aggregate folds per-replicate metric maps into per-metric Aggregates,
// accumulating in replicate order so the result is bit-identical across
// runs and worker counts.
func aggregate[T any](runs []T, metrics func(T) map[string]float64, level float64) map[string]Aggregate {
	keys := map[string]bool{}
	for _, ro := range runs {
		for k := range metrics(ro) {
			keys[k] = true
		}
	}
	out := make(map[string]Aggregate, len(keys))
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		var s stats.Sample
		for _, ro := range runs {
			if v, ok := metrics(ro)[k]; ok {
				s.Add(v)
			}
		}
		out[k] = Aggregate{
			Mean: s.Mean(), Min: s.Min(), Max: s.Max(),
			CI: s.CI(level), N: int(s.N()),
		}
	}
	return out
}

// emit delivers an event to the Options.Events handler, serialized.
func (e *Engine) emit(ev Event) {
	if e.opts.Events == nil {
		return
	}
	e.evmu.Lock()
	defer e.evmu.Unlock()
	e.opts.Events(ev)
}

// ReplicateSeed derives the seed for replicate rep from the base seed.
// Replicate 0 is the base seed itself; later replicates use the SplitMix64
// finalizer (the same mixing internal/sweep applies to grid points) so
// neighbouring replicates get statistically unrelated streams.
func ReplicateSeed(base uint64, rep int) uint64 {
	if rep == 0 {
		return base
	}
	z := base + 0x9e3779b97f4a7c15*uint64(rep)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
