package engine

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
)

// syntheticExperiment renders a fixed-size artifact and reports one
// metric; it isolates the engine's own per-run overhead (buffers, seeds,
// aggregation) from model cost.
func syntheticExperiment() *core.Experiment {
	return &core.Experiment{
		ID:    "synthetic",
		Title: "synthetic render-only experiment",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			for i := 0; i < 128; i++ {
				if _, err := fmt.Fprintf(w, "row %4d  %12.6f\n", i, float64(i)*1.5); err != nil {
					return nil, err
				}
			}
			return &core.Outcome{Metrics: map[string]float64{"x": float64(cfg.Seed % 97)}}, nil
		},
	}
}

// BenchmarkEngineReplicatedWriters measures a replicated engine run of a
// render-only experiment — the path whose per-run buffered writers are
// served from the shared sync.Pool instead of being reallocated per run.
// Compare B/op with and without the pool to see the delta (the pooled
// version pays one exact-size copy of the base replicate's output; the
// unpooled one paid a fresh buffer plus its growth doublings every run).
func BenchmarkEngineReplicatedWriters(b *testing.B) {
	exp := syntheticExperiment()
	eng := New(Options{Workers: 1, Replications: 4})
	cfg := core.Config{Seed: 1, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := eng.Run(cfg, []*core.Experiment{exp})
		if err != nil {
			b.Fatal(err)
		}
		if len(results[0].Output) == 0 {
			b.Fatal("no output captured")
		}
	}
}

// BenchmarkEngineSingleRun is the single-replication equivalent, the
// shape core-suite regeneration uses.
func BenchmarkEngineSingleRun(b *testing.B) {
	exp := syntheticExperiment()
	eng := New(Options{Workers: 1})
	cfg := core.Config{Seed: 1, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(cfg, []*core.Experiment{exp}); err != nil {
			b.Fatal(err)
		}
	}
}
