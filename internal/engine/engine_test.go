package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// fakeExperiment builds a deterministic experiment whose metric and output
// depend only on the seed, mimicking the contract real experiments keep.
func fakeExperiment(id string) *core.Experiment {
	return &core.Experiment{
		ID:         id,
		Title:      "fake " + id,
		PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			fmt.Fprintf(w, "artifact %s seed=%d quick=%t\n", id, cfg.Seed, cfg.Quick)
			o := &core.Outcome{Metrics: map[string]float64{
				"seedval": float64(cfg.Seed % 1000),
				"fixed":   42,
			}}
			o.Checks = append(o.Checks, core.Check{Name: "always", Pass: true, Detail: "ok"})
			return o, nil
		},
	}
}

func failingExperiment(id string, err error) *core.Experiment {
	return &core.Experiment{
		ID: id, Title: "failing " + id, PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			return nil, err
		},
	}
}

func fakes(n int) []*core.Experiment {
	out := make([]*core.Experiment, n)
	for i := range out {
		out[i] = fakeExperiment(fmt.Sprintf("fake%02d", i))
	}
	return out
}

func TestOptionDefaults(t *testing.T) {
	e := New(Options{})
	o := e.Options()
	if o.Workers < 1 || o.Replications != 1 || o.Level != 0.95 || o.RunParallelism != 1 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestWorkersSharesBudgetWithRunParallelism(t *testing.T) {
	// The Workers default divides the GOMAXPROCS budget by the declared
	// per-run parallelism, clamped to at least one worker.
	procs := runtime.GOMAXPROCS(0)
	for _, c := range []struct{ runPar, want int }{
		{0, procs},
		{1, procs},
		{2, max(1, procs/2)},
		{procs * 4, 1},
	} {
		o := New(Options{RunParallelism: c.runPar}).Options()
		if o.Workers != c.want {
			t.Errorf("RunParallelism=%d: Workers=%d, want %d", c.runPar, o.Workers, c.want)
		}
	}
	// An explicit Workers value always wins over the budget rule.
	if o := New(Options{Workers: 3, RunParallelism: 8}).Options(); o.Workers != 3 {
		t.Errorf("explicit Workers overridden: %+v", o)
	}
}

func TestResultsInInputOrder(t *testing.T) {
	exps := fakes(20)
	results, err := New(Options{Workers: 8}).Run(core.Config{Seed: 7}, exps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(exps) {
		t.Fatalf("got %d results for %d experiments", len(results), len(exps))
	}
	for i, r := range results {
		if r.ID != exps[i].ID {
			t.Errorf("result %d is %s, want %s", i, r.ID, exps[i].ID)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Identical Outcomes and rendered bytes regardless of worker count.
	exps := fakes(12)
	cfg := core.Config{Seed: 2004, Quick: true}
	run := func(workers int) ([]Result, string) {
		results, err := New(Options{Workers: workers}).Run(cfg, exps)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteResults(&buf, results, 0.95); err != nil {
			t.Fatal(err)
		}
		return results, buf.String()
	}
	serialRes, serialOut := run(1)
	parRes, parOut := run(8)
	if serialOut != parOut {
		t.Errorf("parallel output differs from serial")
	}
	for i := range serialRes {
		if !reflect.DeepEqual(serialRes[i].Outcome, parRes[i].Outcome) {
			t.Errorf("%s: outcome differs across worker counts", serialRes[i].ID)
		}
	}
}

func TestSingleReplicationMatchesDirectRun(t *testing.T) {
	// Replicate 0 must see the caller's seed verbatim.
	exp := fakeExperiment("base")
	cfg := core.Config{Seed: 12345}
	var direct bytes.Buffer
	want, err := exp.Run(cfg, &direct)
	if err != nil {
		t.Fatal(err)
	}
	results, err := New(Options{Workers: 4}).Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !reflect.DeepEqual(r.Outcome, want) {
		t.Errorf("engine outcome %+v != direct %+v", r.Outcome, want)
	}
	if !bytes.Equal(r.Output, direct.Bytes()) {
		t.Errorf("engine output %q != direct %q", r.Output, direct.Bytes())
	}
}

func TestReplicateSeed(t *testing.T) {
	if got := ReplicateSeed(99, 0); got != 99 {
		t.Fatalf("replicate 0 seed = %d, want base", got)
	}
	seen := map[uint64]bool{99: true}
	for rep := 1; rep < 100; rep++ {
		s := ReplicateSeed(99, rep)
		if seen[s] {
			t.Fatalf("duplicate replicate seed %d at rep %d", s, rep)
		}
		seen[s] = true
	}
	if ReplicateSeed(99, 1) != ReplicateSeed(99, 1) {
		t.Fatal("replicate seeds not stable")
	}
}

func TestReplicationAggregation(t *testing.T) {
	// The aggregate must equal a stats.Sample fed the per-replicate values
	// in replicate order.
	const reps = 7
	const level = 0.95
	cfg := core.Config{Seed: 500}
	exp := fakeExperiment("agg")
	results, err := New(Options{Workers: 4, Replications: reps, Level: level}).
		Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	var want stats.Sample
	for rep := 0; rep < reps; rep++ {
		want.Add(float64(ReplicateSeed(cfg.Seed, rep) % 1000))
	}
	a, ok := results[0].Aggregates["seedval"]
	if !ok {
		t.Fatal("no aggregate for seedval")
	}
	if a.N != reps || a.Mean != want.Mean() || a.Min != want.Min() || a.Max != want.Max() || a.CI != want.CI(level) {
		t.Errorf("aggregate %+v, want n=%d mean=%g min=%g max=%g ci=%g",
			a, reps, want.Mean(), want.Min(), want.Max(), want.CI(level))
	}
	// A constant metric aggregates to itself with zero CI.
	f := results[0].Aggregates["fixed"]
	if f.Mean != 42 || f.Min != 42 || f.Max != 42 || f.CI != 0 {
		t.Errorf("constant metric aggregate = %+v", f)
	}
	// Replicate 0 remains the reported Outcome.
	if got := results[0].Outcome.Metrics["seedval"]; got != float64(cfg.Seed%1000) {
		t.Errorf("outcome metric %g, want base-seed value %g", got, float64(cfg.Seed%1000))
	}
}

func TestAggregationDeterministicAcrossWorkers(t *testing.T) {
	cfg := core.Config{Seed: 11}
	exps := fakes(6)
	run := func(workers int) []Result {
		results, err := New(Options{Workers: workers, Replications: 5}).Run(cfg, exps)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(1), run(8)
	for i := range a {
		if !reflect.DeepEqual(a[i].Aggregates, b[i].Aggregates) {
			t.Errorf("%s: aggregates differ across worker counts", a[i].ID)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	exps := []*core.Experiment{
		fakeExperiment("ok1"),
		failingExperiment("bad", boom),
		fakeExperiment("ok2"),
	}
	results, err := New(Options{Workers: 4}).Run(core.Config{Seed: 1}, exps)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("combined error = %v, want wrapped boom", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy experiments contaminated by failure")
	}
	if results[0].Outcome == nil || results[2].Outcome == nil {
		t.Error("healthy experiments missing outcomes")
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, boom) {
		t.Errorf("failing experiment error = %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "bad") {
		t.Errorf("error %q does not name the experiment", results[1].Err)
	}
}

func TestCache(t *testing.T) {
	cache := NewCache()
	cfg := core.Config{Seed: 3}
	calls := 0
	exp := &core.Experiment{
		ID: "counted", Title: "counted", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			calls++
			fmt.Fprintln(w, "ran")
			return &core.Outcome{Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	var events []Event
	eng := New(Options{Workers: 2, Cache: cache, Events: func(ev Event) { events = append(events, ev) }})
	first, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("experiment ran %d times, want 1", calls)
	}
	if !second[0].FromCache || first[0].FromCache {
		t.Errorf("FromCache flags wrong: first=%v second=%v", first[0].FromCache, second[0].FromCache)
	}
	if !reflect.DeepEqual(first[0].Outcome, second[0].Outcome) || !bytes.Equal(first[0].Output, second[0].Output) {
		t.Error("cached result differs from original")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || cache.Len() != 1 {
		t.Errorf("cache stats %+v len=%d", st, cache.Len())
	}
	var sawHit bool
	for _, ev := range events {
		if ev.Kind == EventCacheHit && ev.ID == "counted" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no EventCacheHit emitted")
	}
	// A different config misses.
	cfg2 := cfg
	cfg2.Seed++
	if _, err := eng.Run(cfg2, []*core.Experiment{exp}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("different seed should re-run; calls = %d", calls)
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	base := core.Config{Seed: 1, Quick: true}
	key := func(id string, cfg core.Config, reps int, level float64) uint64 {
		return cacheKey(id, cfg, reps, level)
	}
	k0 := key("e", base, 1, 0.95)
	alts := []uint64{
		key("other", base, 1, 0.95),
		key("e", core.Config{Seed: 2, Quick: true}, 1, 0.95),
		key("e", core.Config{Seed: 1, Quick: false}, 1, 0.95),
		key("e", core.Config{Seed: 1, Quick: true, CSVDir: "x"}, 1, 0.95),
		key("e", base, 2, 0.95),
		key("e", base, 1, 0.99),
	}
	for i, k := range alts {
		if k == k0 {
			t.Errorf("alternative %d collides with base key", i)
		}
	}
	// Workers must NOT affect the key: it only changes scheduling.
	withWorkers := base
	withWorkers.Workers = 8
	if key("e", withWorkers, 1, 0.95) != k0 {
		t.Error("Workers changed the cache key")
	}
}

func TestEvents(t *testing.T) {
	const reps = 3
	exps := fakes(4)
	var events []Event
	eng := New(Options{Workers: 4, Replications: reps, Events: func(ev Event) { events = append(events, ev) }})
	if _, err := eng.Run(core.Config{Seed: 1}, exps); err != nil {
		t.Fatal(err)
	}
	starts, dones := map[string]int{}, map[string]int{}
	for _, ev := range events {
		switch ev.Kind {
		case EventStart:
			starts[ev.ID]++
		case EventDone:
			dones[ev.ID]++
		case EventError:
			t.Errorf("unexpected error event: %+v", ev)
		}
		if ev.Replications != reps {
			t.Errorf("event %+v has wrong replication total", ev)
		}
	}
	for _, e := range exps {
		if starts[e.ID] != reps || dones[e.ID] != reps {
			t.Errorf("%s: %d starts, %d dones, want %d each", e.ID, starts[e.ID], dones[e.ID], reps)
		}
	}
	if len(events) != 2*reps*len(exps) {
		t.Errorf("%d events, want %d", len(events), 2*reps*len(exps))
	}
}

func TestErrorEvent(t *testing.T) {
	boom := errors.New("boom")
	var errEvents int
	eng := New(Options{Workers: 1, Events: func(ev Event) {
		if ev.Kind == EventError && errors.Is(ev.Err, boom) {
			errEvents++
		}
	}})
	if _, err := eng.Run(core.Config{}, []*core.Experiment{failingExperiment("bad", boom)}); err == nil {
		t.Fatal("expected error")
	}
	if errEvents != 1 {
		t.Errorf("%d error events, want 1", errEvents)
	}
}

func TestEventKindString(t *testing.T) {
	for kind, want := range map[EventKind]string{
		EventStart: "start", EventDone: "done", EventError: "error",
		EventCacheHit: "cache-hit", EventKind(99): "EventKind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), got, want)
		}
	}
}

func TestWriteResultsMatchesRunAllFormat(t *testing.T) {
	// For a single replication, WriteResults must be byte-identical to a
	// serial core.RunAll-style rendering of the same experiments.
	exps := fakes(3)
	cfg := core.Config{Seed: 9}
	var serial bytes.Buffer
	for _, e := range exps {
		fmt.Fprint(&serial, core.Banner(e.ID, e.Title))
		o, err := e.Run(cfg, &serial)
		if err != nil {
			t.Fatal(err)
		}
		core.RenderChecks(o, &serial)
	}
	results, err := New(Options{Workers: 3}).Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	var engineOut bytes.Buffer
	if err := WriteResults(&engineOut, results, 0.95); err != nil {
		t.Fatal(err)
	}
	if serial.String() != engineOut.String() {
		t.Errorf("engine rendering differs from serial:\n--- serial ---\n%s--- engine ---\n%s",
			serial.String(), engineOut.String())
	}
}

func TestWriteResultsReplicationSummary(t *testing.T) {
	results, err := New(Options{Replications: 5}).Run(core.Config{Seed: 4}, fakes(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, results, 0.95); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replications: 5 (95% CI)") {
		t.Errorf("missing replication header:\n%s", out)
	}
	if !strings.Contains(out, "seedval") || !strings.Contains(out, "mean=") {
		t.Errorf("missing aggregate lines:\n%s", out)
	}
}

func TestWriteResultsRendersErrors(t *testing.T) {
	results, _ := New(Options{}).Run(core.Config{},
		[]*core.Experiment{failingExperiment("bad", errors.New("boom"))})
	var buf bytes.Buffer
	if err := WriteResults(&buf, results, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ERROR:") || !strings.Contains(buf.String(), "boom") {
		t.Errorf("error not rendered:\n%s", buf.String())
	}
}

func TestWriteJSON(t *testing.T) {
	results, err := New(Options{Replications: 3}).Run(core.Config{Seed: 8}, fakes(2))
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, Result{ID: "broken", Title: "broken", Err: errors.New("boom")})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var decoded []JSONResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d results", len(decoded))
	}
	if decoded[0].ID != "fake00" || decoded[0].Metrics["fixed"] != 42 {
		t.Errorf("first result wrong: %+v", decoded[0])
	}
	if a := decoded[0].Aggregates["fixed"]; a.N != 3 || a.Mean != 42 {
		t.Errorf("aggregate wrong: %+v", a)
	}
	if decoded[2].Error != "boom" {
		t.Errorf("error not serialized: %+v", decoded[2])
	}
}

func TestWriteJSONSingleReplicationCIFinite(t *testing.T) {
	// N=1 aggregates carry an infinite CI internally; JSON must stay valid.
	results, err := New(Options{}).Run(core.Config{Seed: 8}, fakes(1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(results[0].Aggregates["fixed"].CI, 1) {
		t.Fatal("precondition: single-rep CI should be +Inf")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var decoded []JSONResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded[0].Aggregates["fixed"].CI != 0 {
		t.Errorf("CI = %g, want 0", decoded[0].Aggregates["fixed"].CI)
	}
}

func TestRunAllUsesRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry pass in -short mode")
	}
	cfg := core.Config{Seed: 2004, Quick: true}
	results, err := New(Options{Workers: 2}).RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(core.Registry()) {
		t.Fatalf("RunAll returned %d results for %d registered experiments",
			len(results), len(core.Registry()))
	}
	for i, e := range core.Registry() {
		if results[i].ID != e.ID {
			t.Errorf("result %d = %s, want %s", i, results[i].ID, e.ID)
		}
		for _, c := range results[i].Outcome.Failed() {
			t.Errorf("%s: check %q failed: %s", e.ID, c.Name, c.Detail)
		}
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	eng := New(Options{})
	if _, err := eng.Run(core.Config{Workers: -1}, core.Registry()[:1]); err == nil {
		t.Error("engine accepted a negative worker count")
	}
}

// seedFailingExperiment fails only for the given replicate seeds,
// succeeding everywhere else — the shape of an injected crash or livelock
// guard tripping on some replicates of a study.
func seedFailingExperiment(id string, err error, badSeeds ...uint64) *core.Experiment {
	bad := map[uint64]bool{}
	for _, s := range badSeeds {
		bad[s] = true
	}
	return &core.Experiment{
		ID: id, Title: "partial " + id, PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			if bad[cfg.Seed] {
				return nil, err
			}
			fmt.Fprintf(w, "artifact %s seed=%d\n", id, cfg.Seed)
			return &core.Outcome{Metrics: map[string]float64{
				"seedval": float64(cfg.Seed % 1000),
			}}, nil
		},
	}
}

func TestPartialReplicateAggregation(t *testing.T) {
	// One replicate dying must not void the others: the result carries
	// both the error and an aggregate over the surviving subset.
	boom := errors.New("injected crash")
	const reps = 5
	cfg := core.Config{Seed: 41}
	badSeed := ReplicateSeed(cfg.Seed, 2)
	exp := seedFailingExperiment("flaky", boom, badSeed)
	results, err := New(Options{Workers: 3, Replications: reps}).
		Run(cfg, []*core.Experiment{exp})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("combined error = %v, want wrapped boom", err)
	}
	r := results[0]
	if r.Err == nil || !errors.Is(r.Err, boom) || !strings.Contains(r.Err.Error(), "replicate 2") {
		t.Errorf("Err = %v, want boom naming replicate 2", r.Err)
	}
	if r.Outcome == nil || r.Outcome.Metrics["seedval"] != float64(cfg.Seed%1000) {
		t.Errorf("replicate 0 outcome lost: %+v", r.Outcome)
	}
	if len(r.Output) == 0 {
		t.Error("replicate 0 output lost")
	}
	a, ok := r.Aggregates["seedval"]
	if !ok || a.N != reps-1 {
		t.Fatalf("aggregate over survivors = %+v (present %v), want N=%d", a, ok, reps-1)
	}
	var want stats.Sample
	for rep := 0; rep < reps; rep++ {
		if rep == 2 {
			continue
		}
		want.Add(float64(ReplicateSeed(cfg.Seed, rep) % 1000))
	}
	if a.Mean != want.Mean() || a.Min != want.Min() || a.Max != want.Max() {
		t.Errorf("survivor aggregate %+v, want mean=%g min=%g max=%g",
			a, want.Mean(), want.Min(), want.Max())
	}
}

func TestPartialReplicateZeroFails(t *testing.T) {
	// When replicate 0 itself dies, Outcome/Output stay nil but the
	// surviving replicates still aggregate.
	boom := errors.New("boom")
	cfg := core.Config{Seed: 9}
	exp := seedFailingExperiment("rep0-dead", boom, ReplicateSeed(cfg.Seed, 0))
	results, _ := New(Options{Workers: 2, Replications: 3}).
		Run(cfg, []*core.Experiment{exp})
	r := results[0]
	if r.Err == nil || !strings.Contains(r.Err.Error(), "replicate 0") {
		t.Errorf("Err = %v, want replicate 0 failure", r.Err)
	}
	if r.Outcome != nil || r.Output != nil {
		t.Errorf("failed replicate 0 left Outcome=%v Output=%q", r.Outcome, r.Output)
	}
	if a := r.Aggregates["seedval"]; a.N != 2 {
		t.Errorf("survivor aggregate N = %d, want 2", a.N)
	}
}

func TestPartialResultNotCached(t *testing.T) {
	// A partial result must not poison the cache: the retry re-runs.
	boom := errors.New("boom")
	cfg := core.Config{Seed: 5}
	calls := 0
	exp := &core.Experiment{
		ID: "heal", Title: "heal", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			calls++
			if calls == 1 {
				return nil, boom
			}
			return &core.Outcome{Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	eng := New(Options{Workers: 1, Cache: NewCache()})
	if _, err := eng.Run(cfg, []*core.Experiment{exp}); err == nil {
		t.Fatal("first run should fail")
	}
	results, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if results[0].FromCache {
		t.Error("failed result was served from cache")
	}
	if calls != 2 {
		t.Errorf("experiment ran %d times, want 2", calls)
	}
}

func TestRunTimeoutWatchdog(t *testing.T) {
	// A hung backend is abandoned after RunTimeout instead of wedging the
	// engine; healthy experiments in the same run still complete.
	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine finish
	hung := &core.Experiment{
		ID: "hung", Title: "hung", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			<-release
			fmt.Fprintln(w, "late output into a private buffer")
			return &core.Outcome{Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	exps := []*core.Experiment{fakeExperiment("ok"), hung}
	results, err := New(Options{Workers: 2, RunTimeout: 20 * time.Millisecond}).
		Run(core.Config{Seed: 1}, exps)
	if err == nil || !strings.Contains(err.Error(), "RunTimeout watchdog") {
		t.Fatalf("combined error = %v, want watchdog timeout", err)
	}
	if results[0].Err != nil || results[0].Outcome == nil {
		t.Errorf("healthy experiment contaminated: %+v", results[0].Err)
	}
	r := results[1]
	if r.Err == nil || !strings.Contains(r.Err.Error(), "watchdog") {
		t.Errorf("hung experiment Err = %v", r.Err)
	}
	if r.Outcome != nil || r.Output != nil || r.Aggregates != nil {
		t.Errorf("abandoned run leaked results: %+v", r)
	}
}

func TestRunTimeoutGenerousBudgetIsNoOp(t *testing.T) {
	// With a budget the runs comfortably meet, the watchdog path must
	// produce the same results as the pooled-buffer path.
	exps := fakes(4)
	cfg := core.Config{Seed: 77, Quick: true}
	plain, err := New(Options{Workers: 2}).Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := New(Options{Workers: 2, RunTimeout: time.Minute}).Run(cfg, exps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Outcome, guarded[i].Outcome) ||
			!bytes.Equal(plain[i].Output, guarded[i].Output) {
			t.Errorf("%s: watchdog path changed the result", plain[i].ID)
		}
	}
}

func TestWatchdogCancelStopsCooperativeRun(t *testing.T) {
	// Satellite of the RunTimeout watchdog: abandoning a replicate must
	// also arm its Cancel hook, so a backend that polls Config.Canceled
	// actually terminates instead of leaking a goroutine forever.
	baseline := runtime.NumGoroutine()
	stopped := make(chan struct{})
	exp := &core.Experiment{
		ID: "coop", Title: "coop", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			defer close(stopped)
			for !cfg.Canceled() {
				time.Sleep(time.Millisecond)
			}
			return nil, errors.New("stopped by cancel")
		},
	}
	_, err := New(Options{Workers: 1, RunTimeout: 20 * time.Millisecond}).
		Run(core.Config{Seed: 1}, []*core.Experiment{exp})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v, want watchdog timeout", err)
	}
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned run never observed the armed Cancel hook")
	}
	// The abandoned goroutine (and the engine's own workers) must drain:
	// the goroutine count returns to the pre-run level.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before the run",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCallerCancelHookPreserved(t *testing.T) {
	// The watchdog composes over — never replaces — a caller-installed
	// Cancel hook: a request deadline fires even under a generous budget.
	var requestDone atomic.Bool
	exp := &core.Experiment{
		ID: "caller-cancel", Title: "caller-cancel", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			for !cfg.Canceled() {
				time.Sleep(time.Millisecond)
			}
			return nil, ErrCanceled
		},
	}
	cfg := core.Config{Seed: 1, Cancel: requestDone.Load}
	done := make(chan error, 1)
	go func() {
		_, err := New(Options{Workers: 1, RunTimeout: time.Minute}).
			Run(cfg, []*core.Experiment{exp})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	requestDone.Store(true)
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("caller cancel hook was lost under the watchdog")
	}
}

func TestCancelSkipsQueuedReplicates(t *testing.T) {
	// A cancel that fires before the queue drains must skip the remaining
	// replicates without executing them.
	var ran atomic.Int64
	exp := &core.Experiment{
		ID: "never", Title: "never", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			ran.Add(1)
			return &core.Outcome{Metrics: map[string]float64{"m": 1}}, nil
		},
	}
	cfg := core.Config{Seed: 1, Cancel: func() bool { return true }}
	results, err := New(Options{Workers: 2, Replications: 4}).
		Run(cfg, []*core.Experiment{exp})
	if err == nil || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("canceled run still executed %d replicates", got)
	}
	if results[0].Aggregates != nil || results[0].Outcome != nil {
		t.Errorf("canceled run produced results: %+v", results[0])
	}
}

func TestAllReplicatesFail(t *testing.T) {
	// Every replicate dying leaves a Result with the error and nothing
	// else: no outcome, no output, no aggregates over an empty subset.
	boom := errors.New("total loss")
	results, err := New(Options{Workers: 2, Replications: 4}).
		Run(core.Config{Seed: 3}, []*core.Experiment{failingExperiment("allbad", boom)})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("combined error = %v, want wrapped boom", err)
	}
	r := results[0]
	if r.Err == nil || !errors.Is(r.Err, boom) {
		t.Errorf("Err = %v, want boom", r.Err)
	}
	if r.Outcome != nil || r.Output != nil {
		t.Errorf("all-fail run left Outcome=%v Output=%q", r.Outcome, r.Output)
	}
	if r.Aggregates != nil {
		t.Errorf("aggregates over zero survivors: %+v", r.Aggregates)
	}
}

func TestTimeoutMidAggregation(t *testing.T) {
	// Some replicates hit the watchdog while others succeed: the result
	// must aggregate exactly the survivors alongside the watchdog error.
	release := make(chan struct{})
	defer close(release)
	const reps = 5
	cfg := core.Config{Seed: 21}
	hang := map[uint64]bool{
		ReplicateSeed(cfg.Seed, 1): true,
		ReplicateSeed(cfg.Seed, 3): true,
	}
	exp := &core.Experiment{
		ID: "half-hung", Title: "half-hung", PaperClaim: "n/a",
		Run: func(cfg core.Config, w io.Writer) (*core.Outcome, error) {
			if hang[cfg.Seed] {
				<-release
				return nil, errors.New("late")
			}
			fmt.Fprintf(w, "seed=%d\n", cfg.Seed)
			return &core.Outcome{Metrics: map[string]float64{
				"seedval": float64(cfg.Seed % 1000),
			}}, nil
		},
	}
	results, err := New(Options{Workers: 2, Replications: reps, RunTimeout: 30 * time.Millisecond}).
		Run(cfg, []*core.Experiment{exp})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("combined error = %v, want watchdog", err)
	}
	r := results[0]
	if r.Err == nil || !strings.Contains(r.Err.Error(), "watchdog") {
		t.Errorf("Err = %v, want watchdog", r.Err)
	}
	if r.Outcome == nil || r.Outcome.Metrics["seedval"] != float64(cfg.Seed%1000) {
		t.Errorf("replicate 0 outcome lost: %+v", r.Outcome)
	}
	a, ok := r.Aggregates["seedval"]
	if !ok || a.N != reps-2 {
		t.Fatalf("survivor aggregate = %+v (present %v), want N=%d", a, ok, reps-2)
	}
	var want stats.Sample
	for rep := 0; rep < reps; rep++ {
		if rep == 1 || rep == 3 {
			continue
		}
		want.Add(float64(ReplicateSeed(cfg.Seed, rep) % 1000))
	}
	if a.Mean != want.Mean() || a.Min != want.Min() || a.Max != want.Max() {
		t.Errorf("survivor aggregate %+v, want mean=%g min=%g max=%g",
			a, want.Mean(), want.Min(), want.Max())
	}
}

func TestFailedReplicatesNeverPoisonCacheReplicated(t *testing.T) {
	// The replicated variant of TestPartialResultNotCached: a run where
	// only SOME replicates fail must also stay out of the cache, and the
	// healed rerun becomes cacheable.
	cfg := core.Config{Seed: 5}
	badSeed := ReplicateSeed(cfg.Seed, 1)
	attempt := 0
	exp := &core.Experiment{
		ID: "heal-reps", Title: "heal-reps", PaperClaim: "n/a",
		Run: func(rcfg core.Config, w io.Writer) (*core.Outcome, error) {
			attempt++
			if rcfg.Seed == badSeed && attempt <= 3 {
				return nil, errors.New("transient")
			}
			return &core.Outcome{Metrics: map[string]float64{
				"seedval": float64(rcfg.Seed % 1000),
			}}, nil
		},
	}
	eng := New(Options{Workers: 1, Replications: 3, Cache: NewCache()})
	if _, err := eng.Run(cfg, []*core.Experiment{exp}); err == nil {
		t.Fatal("first run should report the failed replicate")
	}
	second, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if second[0].FromCache {
		t.Error("partial result was served from cache")
	}
	if attempt != 6 {
		t.Errorf("replicates executed %d times, want 6 (3 + 3 on retry)", attempt)
	}
	third, err := eng.Run(cfg, []*core.Experiment{exp})
	if err != nil {
		t.Fatalf("third run: %v", err)
	}
	if !third[0].FromCache {
		t.Error("fully successful run was not cached")
	}
	if attempt != 6 {
		t.Errorf("cached run re-executed replicates: %d", attempt)
	}
}
