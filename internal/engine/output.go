package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
)

// WriteResults renders results in order in the same format core.RunAll
// streams while running serially: banner, artifact output, checks and
// headline metrics. With more than one replication, a replication summary
// (mean / CI / min / max per metric) follows each artifact. Failed
// experiments render their error in place of an artifact.
func WriteResults(w io.Writer, results []Result, level float64) error {
	if level == 0 {
		level = 0.95
	}
	for _, r := range results {
		if _, err := io.WriteString(w, core.Banner(r.ID, r.Title)); err != nil {
			return err
		}
		if r.Err != nil {
			if _, err := fmt.Fprintf(w, "ERROR: %v\n", r.Err); err != nil {
				return err
			}
			continue
		}
		if _, err := w.Write(r.Output); err != nil {
			return err
		}
		core.RenderChecks(r.Outcome, w)
		if err := writeAggregates(w, r, level); err != nil {
			return err
		}
	}
	return nil
}

// writeAggregates prints the replication summary when there is more than
// one replicate behind the result.
func writeAggregates(w io.Writer, r Result, level float64) error {
	n := 0
	for _, a := range r.Aggregates {
		if a.N > n {
			n = a.N
		}
	}
	if n < 2 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "replications: %d (%.0f%% CI)\n", n, level*100); err != nil {
		return err
	}
	for _, k := range sortedAggKeys(r.Aggregates) {
		a := r.Aggregates[k]
		_, err := fmt.Fprintf(w, "  %-40s mean=%s ci=%s min=%s max=%s\n", k,
			report.FormatFloat(a.Mean), report.FormatFloat(a.CI),
			report.FormatFloat(a.Min), report.FormatFloat(a.Max))
		if err != nil {
			return err
		}
	}
	return nil
}

func sortedAggKeys(m map[string]Aggregate) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSONResult is the wire form of a Result.
type JSONResult struct {
	ID         string               `json:"id"`
	Title      string               `json:"title"`
	Metrics    map[string]float64   `json:"metrics,omitempty"`
	Aggregates map[string]Aggregate `json:"aggregates,omitempty"`
	Checks     []core.Check         `json:"checks,omitempty"`
	Error      string               `json:"error,omitempty"`
	FromCache  bool                 `json:"from_cache,omitempty"`
}

// WriteJSON emits results as an indented JSON array. Infinite CI
// half-widths (single replication) are omitted from aggregates by
// flattening them to N=1 entries with CI set to 0, keeping the document
// valid JSON.
func WriteJSON(w io.Writer, results []Result) error {
	out := make([]JSONResult, 0, len(results))
	for _, r := range results {
		jr := JSONResult{ID: r.ID, Title: r.Title, FromCache: r.FromCache}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		if r.Outcome != nil {
			jr.Metrics = r.Outcome.Metrics
			jr.Checks = r.Outcome.Checks
		}
		if len(r.Aggregates) > 0 {
			jr.Aggregates = make(map[string]Aggregate, len(r.Aggregates))
			for k, a := range r.Aggregates {
				if a.N < 2 {
					a.CI = 0 // JSON has no +Inf
				}
				jr.Aggregates[k] = a
			}
		}
		out = append(out, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
