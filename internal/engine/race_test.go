package engine

// Race-coverage tests: exercised under `go test -race` in CI, these hammer
// the engine's shared structures (worker pool, event serialization, shared
// cache) from many goroutines at once.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestRaceManyWorkersManyExperiments(t *testing.T) {
	// More workers than tasks, more tasks than cores; each replicate
	// writes its own buffer so nothing may be shared.
	exps := fakes(32)
	for _, workers := range []int{0, 1, 64} {
		results, err := New(Options{Workers: workers, Replications: 3}).
			Run(core.Config{Seed: 5}, exps)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.ID != exps[i].ID || r.Outcome == nil {
				t.Fatalf("workers=%d: result %d malformed: %+v", workers, i, r.ID)
			}
		}
	}
}

func TestRaceEventHandlerNeedsNoLocking(t *testing.T) {
	// The engine serializes Events callbacks, so an unsynchronized
	// append-only slice must survive -race.
	var events []Event
	eng := New(Options{Workers: 16, Replications: 4, Events: func(ev Event) {
		events = append(events, ev)
	}})
	if _, err := eng.Run(core.Config{Seed: 5}, fakes(16)); err != nil {
		t.Fatal(err)
	}
	if want := 2 * 4 * 16; len(events) != want {
		t.Errorf("%d events, want %d", len(events), want)
	}
}

func TestRaceSharedCacheAcrossEngines(t *testing.T) {
	// Several engines sharing one cache, running the same experiments
	// concurrently: no races, and every engine sees identical results.
	cache := NewCache()
	exps := fakes(8)
	cfg := core.Config{Seed: 77}
	const engines = 6
	results := make([][]Result, engines)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := New(Options{Workers: 4, Cache: cache}).Run(cfg, exps)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < engines; i++ {
		for j := range results[0] {
			if !reflect.DeepEqual(results[0][j].Outcome, results[i][j].Outcome) {
				t.Errorf("engine %d, experiment %s: outcome differs", i, results[i][j].ID)
			}
		}
	}
	if cache.Len() != len(exps) {
		t.Errorf("cache holds %d entries, want %d", cache.Len(), len(exps))
	}
}

func TestRaceConcurrentRunsOnOneEngine(t *testing.T) {
	eng := New(Options{Workers: 4, Replications: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := eng.Run(core.Config{Seed: seed}, fakes(6)); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
}

func TestRaceErrorsUnderConcurrency(t *testing.T) {
	// A mix of failing and healthy experiments across many workers: the
	// combined error must name every failure exactly once.
	var exps []*core.Experiment
	for i := 0; i < 12; i++ {
		if i%3 == 0 {
			exps = append(exps, failingExperiment(fmt.Sprintf("bad%02d", i), fmt.Errorf("err %d", i)))
		} else {
			exps = append(exps, fakeExperiment(fmt.Sprintf("ok%02d", i)))
		}
	}
	results, err := New(Options{Workers: 8, Replications: 2}).Run(core.Config{Seed: 1}, exps)
	if err == nil {
		t.Fatal("expected combined error")
	}
	for i, r := range results {
		wantErr := i%3 == 0
		if (r.Err != nil) != wantErr {
			t.Errorf("experiment %d: err = %v, want failure=%v", i, r.Err, wantErr)
		}
	}
}
