package fault

// CorruptMode names one way the injector mangles a wire frame. Each mode
// is constructed so that, applied to a *valid* encoded parcel frame, the
// result is guaranteed to be rejected by the internal/parcel codec —
// never silently mis-decoded:
//
//   - BitFlip and ByteSmash change bytes inside the CRC-covered region or
//     the CRC trailer itself, so Decode fails the checksum (or an earlier
//     magic/version/length check);
//   - Truncate produces a strict prefix, so the declared payload length
//     no longer fits the buffer;
//   - MagicGarble inverts the first magic byte, so framing fails outright.
//
// These are the shapes seeded into the FuzzParcelCodec corpus: whatever
// the plan can emit, the codec's fuzz target has already chewed on.
type CorruptMode int

const (
	CorruptBitFlip CorruptMode = iota
	CorruptByteSmash
	CorruptTruncate
	CorruptMagicGarble

	// NumCorruptModes is the count of distinct corruption modes.
	NumCorruptModes
)

func (m CorruptMode) String() string {
	switch m {
	case CorruptBitFlip:
		return "bitflip"
	case CorruptByteSmash:
		return "bytesmash"
	case CorruptTruncate:
		return "truncate"
	case CorruptMagicGarble:
		return "magicgarble"
	default:
		return "unknown"
	}
}

// Mode returns the corruption mode the plan applies to the given attempt.
// Like every decision it is a pure function of (seed, identity, attempt).
func (p *Plan) Mode(id Identity, attempt int) CorruptMode {
	return CorruptMode(p.hash(tagMode, id, attempt) % uint64(NumCorruptModes))
}

// ApplyCorruption mangles a copy of frame according to mode, using h as
// the position/value entropy. The input is never modified; an empty
// frame is returned unchanged (there is nothing to corrupt).
func ApplyCorruption(mode CorruptMode, h uint64, frame []byte) []byte {
	out := append([]byte(nil), frame...)
	if len(out) == 0 {
		return out
	}
	switch mode {
	case CorruptBitFlip:
		bit := h % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
	case CorruptByteSmash:
		// XOR with an always-odd value: the byte is guaranteed to change.
		out[h%uint64(len(out))] ^= byte(h>>8) | 1
	case CorruptTruncate:
		out = out[:h%uint64(len(out))]
	case CorruptMagicGarble:
		out[0] ^= 0xff
	}
	return out
}

// CorruptFrame applies the plan's corruption decision for this attempt
// to a wire frame, returning the mangled copy and the mode used.
func (p *Plan) CorruptFrame(id Identity, attempt int, frame []byte) ([]byte, CorruptMode) {
	mode := p.Mode(id, attempt)
	return ApplyCorruption(mode, p.hash(tagPos, id, attempt), frame), mode
}
