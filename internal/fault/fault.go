// Package fault builds seeded, fully deterministic fault plans for the
// execution-driven machine backend. A Plan answers questions — "is this
// parcel's k-th transmission dropped?", "is this node a straggler?",
// "when does the machine crash?" — as pure functions of the plan's seed
// and a *canonical* identity, never of execution order:
//
//   - network faults (drop, corruption, duplication, delay jitter) are
//     keyed by the parcel identity (sent cycle, source node, per-source
//     sequence number) plus the transmission attempt index;
//   - node faults (straggler slowdown, crash-at-cycle) are keyed by the
//     node index alone.
//
// Because every decision hashes identity rather than arrival order, the
// same program run serially, windowed, or on any PDES worker count and
// partition shape sees the *same* faults at the same points — the VM's
// byte-identical-under-parallelism guarantee extends to every fault
// matrix entry. Delay jitter only ever adds latency, so a declared
// network lookahead remains a valid lower bound and the conservative
// windows stay safe.
//
// The Plan also pre-computes reliable-delivery schedules: PlanDelivery
// resolves a sequence-numbered ack/timeout/retransmit exchange
// analytically at send time (every attempt's fate is already a pure
// function of identity), so the VM can enqueue only the surviving
// arrival and count retries without simulating per-attempt round trips.
//
// CorruptFrame mirrors the injector's corruption decisions onto real
// wire frames from internal/parcel; each CorruptMode is constructed so
// the codec's CRC/shape checks are guaranteed to reject the result,
// which ties the fault layer to the fuzz-hardened codec path.
package fault

import "fmt"

// MaxAttempts caps reliable-mode retransmissions per parcel. A parcel
// whose every attempt faults is declared lost; the machine's cycle-limit
// guard then diagnoses the stalled program. With per-attempt failure
// probability p, loss odds are p^64 — negligible for any rate a sweep
// would use, but a hard bound keeps pathological rates (drop=1.0)
// terminating.
const MaxAttempts = 64

// Config declares the fault mix a Plan injects. The zero value is a
// no-fault plan.
type Config struct {
	// Seed keys every decision. Two plans with equal configs are
	// indistinguishable; changing only the seed reshuffles which
	// parcels/nodes fault while preserving the rates.
	Seed uint64

	// DropRate, CorruptRate, DupRate are per-transmission-attempt
	// probabilities in [0, 1]. A dropped attempt never arrives; a
	// corrupted attempt arrives but fails the receiver's CRC and is
	// discarded; a duplicated attempt delivers a second copy.
	DropRate    float64
	CorruptRate float64
	DupRate     float64

	// JitterMax bounds per-attempt extra delivery delay, uniform in
	// [0, JitterMax] cycles. Jitter only adds latency, so declared
	// lookaheads still hold.
	JitterMax int64

	// StragglerFactor slows a deterministic subset of nodes by scaling
	// their memory and spawn cycle costs. 0 or 1 disables stragglers.
	StragglerFactor int64
	// StragglerFrac is the fraction of nodes that straggle (default
	// 0.25 when StragglerFactor is active).
	StragglerFrac float64

	// CrashCycle, when > 0, halts the whole run at that cycle with a
	// crash error attributed to CrashNode — modeling the loss of a node
	// mid-run. CrashCycle 0 disables the crash.
	CrashCycle int64
	CrashNode  int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"DropRate", c.DropRate}, {"CorruptRate", c.CorruptRate}, {"DupRate", c.DupRate}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v out of range [0, 1]", r.name, r.v)
		}
	}
	if c.JitterMax < 0 {
		return fmt.Errorf("fault: JitterMax %d must be >= 0", c.JitterMax)
	}
	if c.StragglerFactor < 0 {
		return fmt.Errorf("fault: StragglerFactor %d must be >= 0", c.StragglerFactor)
	}
	if c.StragglerFrac < 0 || c.StragglerFrac > 1 {
		return fmt.Errorf("fault: StragglerFrac %v out of range [0, 1]", c.StragglerFrac)
	}
	if c.CrashCycle < 0 {
		return fmt.Errorf("fault: CrashCycle %d must be >= 0", c.CrashCycle)
	}
	if c.CrashCycle > 0 && c.CrashNode < 0 {
		return fmt.Errorf("fault: CrashNode %d must be >= 0 when CrashCycle is set", c.CrashNode)
	}
	return nil
}

// Identity names one parcel canonically: the cycle its spawn issued, the
// sending node, and that node's running parcel sequence number. All
// three are functions of the sending node's own instruction stream, so
// they are identical across serial, windowed, and parallel execution —
// which is what makes identity-keyed faults order-independent.
type Identity struct {
	Sent int64
	Src  int
	Seq  uint64
}

// Plan is an immutable, concurrency-safe fault oracle. All methods are
// pure; a Plan may be shared freely across PDES workers.
type Plan struct {
	cfg  Config
	frac float64 // resolved straggler fraction
}

// New validates cfg and returns its Plan.
func New(cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{cfg: cfg, frac: cfg.StragglerFrac}
	if p.frac == 0 {
		p.frac = 0.25
	}
	return p, nil
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// NetEnabled reports whether any network fault (drop, corrupt, dup,
// jitter) can fire. Node-only plans (straggler/crash) leave the parcel
// path untouched.
func (p *Plan) NetEnabled() bool {
	return p.cfg.DropRate > 0 || p.cfg.CorruptRate > 0 || p.cfg.DupRate > 0 || p.cfg.JitterMax > 0
}

// Decision domains: each class of question mixes in its own tag so the
// drop/corrupt/dup/jitter streams for one attempt are independent.
const (
	tagDrop = iota + 1
	tagCorrupt
	tagDup
	tagJitter
	tagMode
	tagPos
	tagStraggler
)

// mix64 is the SplitMix64 output finalizer — a strong 64-bit mixer used
// here as the hash primitive for all decisions.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash folds (seed, tag, identity, attempt) into one 64-bit value.
func (p *Plan) hash(tag uint64, id Identity, attempt int) uint64 {
	z := mix64(p.cfg.Seed ^ tag)
	z = mix64(z + uint64(id.Sent))
	z = mix64(z + uint64(int64(id.Src)))
	z = mix64(z + id.Seq)
	return mix64(z + uint64(int64(attempt)))
}

// unit maps a hash to [0, 1) with 53 bits of precision.
func unit(z uint64) float64 { return float64(z>>11) / (1 << 53) }

// Dropped reports whether transmission attempt `attempt` of the parcel
// is lost in the network.
func (p *Plan) Dropped(id Identity, attempt int) bool {
	return p.cfg.DropRate > 0 && unit(p.hash(tagDrop, id, attempt)) < p.cfg.DropRate
}

// Corrupted reports whether the attempt arrives corrupted (and is
// therefore discarded by the receiver's CRC check).
func (p *Plan) Corrupted(id Identity, attempt int) bool {
	return p.cfg.CorruptRate > 0 && unit(p.hash(tagCorrupt, id, attempt)) < p.cfg.CorruptRate
}

// Duplicated reports whether the attempt is delivered twice.
func (p *Plan) Duplicated(id Identity, attempt int) bool {
	return p.cfg.DupRate > 0 && unit(p.hash(tagDup, id, attempt)) < p.cfg.DupRate
}

// Jitter returns the attempt's extra delivery delay in [0, JitterMax].
func (p *Plan) Jitter(id Identity, attempt int) int64 {
	if p.cfg.JitterMax <= 0 {
		return 0
	}
	return int64(p.hash(tagJitter, id, attempt) % uint64(p.cfg.JitterMax+1))
}

// Straggler reports whether the node belongs to the slow subset.
func (p *Plan) Straggler(node int) bool {
	if p.cfg.StragglerFactor <= 1 {
		return false
	}
	z := mix64(mix64(p.cfg.Seed^tagStraggler) + uint64(int64(node)))
	return unit(z) < p.frac
}

// CostScale returns the node's cycle-cost multiplier: StragglerFactor
// for stragglers, 1 otherwise. Always >= 1.
func (p *Plan) CostScale(node int) int64 {
	if p.Straggler(node) {
		return p.cfg.StragglerFactor
	}
	return 1
}

// CrashAt reports the planned node crash, if any, for a machine with
// `nodes` nodes. ok is false when no crash is configured or the crashed
// node does not exist in this machine.
func (p *Plan) CrashAt(nodes int) (node int, cycle int64, ok bool) {
	if p.cfg.CrashCycle <= 0 || p.cfg.CrashNode >= nodes {
		return 0, 0, false
	}
	return p.cfg.CrashNode, p.cfg.CrashCycle, true
}

// Delivery is the pre-computed outcome of one reliable-mode transfer:
// the sender retransmits on an RTO timer until an attempt survives both
// drop and corruption, and the receiver suppresses duplicate frames by
// sequence number.
type Delivery struct {
	// Attempts is the number of transmissions made (1 + retries).
	Attempts int
	// Delivered is false when all MaxAttempts transmissions faulted.
	Delivered bool
	// ExtraDelay is the successful attempt's extra latency beyond the
	// base one-way trip: the retransmission timeouts spent plus that
	// attempt's jitter. Always >= 0.
	ExtraDelay int64
	// Drops and Corrupts count the failed attempts by cause.
	Drops, Corrupts int
	// Duplicated marks the successful frame as double-delivered on the
	// wire; the receiver's sequence check suppresses the copy.
	Duplicated bool
}

// PlanDelivery resolves the reliable exchange for one parcel given the
// sender's retransmission timeout (cycles between attempts). Every
// attempt's fate is a pure function of (plan seed, identity, attempt),
// so the whole schedule is known at send time.
func (p *Plan) PlanDelivery(id Identity, rto int64) Delivery {
	var d Delivery
	for a := 0; a < MaxAttempts; a++ {
		d.Attempts = a + 1
		if p.Dropped(id, a) {
			d.Drops++
			continue
		}
		if p.Corrupted(id, a) {
			d.Corrupts++
			continue
		}
		d.Delivered = true
		d.ExtraDelay = int64(a)*rto + p.Jitter(id, a)
		d.Duplicated = p.Duplicated(id, a)
		return d
	}
	return d
}
