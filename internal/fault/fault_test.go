package fault

import (
	"math"
	"testing"
)

func mustPlan(t *testing.T, cfg Config) *Plan {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return p
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{CorruptRate: 2},
		{DupRate: -1},
		{JitterMax: -1},
		{StragglerFactor: -2},
		{StragglerFrac: 1.5},
		{CrashCycle: -5},
		{CrashCycle: 10, CrashNode: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): want error, got nil", cfg)
		}
	}
	good := []Config{
		{},
		{DropRate: 1, CorruptRate: 1, DupRate: 1, JitterMax: 100},
		{StragglerFactor: 4, StragglerFrac: 0.5},
		{CrashCycle: 1, CrashNode: 0},
	}
	for _, cfg := range good {
		if _, err := New(cfg); err != nil {
			t.Errorf("New(%+v): unexpected error %v", cfg, err)
		}
	}
}

// TestFaultDecisionDeterminism: decisions depend only on (seed, identity,
// attempt), so two independently constructed plans agree everywhere, and
// querying in any order changes nothing (the plan holds no state).
func TestFaultDecisionDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, CorruptRate: 0.2, DupRate: 0.25, JitterMax: 17, StragglerFactor: 3}
	a, b := mustPlan(t, cfg), mustPlan(t, cfg)
	ids := []Identity{
		{Sent: 0, Src: 0, Seq: 0},
		{Sent: 1, Src: 0, Seq: 0},
		{Sent: 12345, Src: 7, Seq: 99},
		{Sent: math.MaxInt64, Src: 255, Seq: math.MaxUint64},
	}
	for _, id := range ids {
		for attempt := 0; attempt < 5; attempt++ {
			if a.Dropped(id, attempt) != b.Dropped(id, attempt) ||
				a.Corrupted(id, attempt) != b.Corrupted(id, attempt) ||
				a.Duplicated(id, attempt) != b.Duplicated(id, attempt) ||
				a.Jitter(id, attempt) != b.Jitter(id, attempt) ||
				a.Mode(id, attempt) != b.Mode(id, attempt) {
				t.Fatalf("plans disagree on id=%+v attempt=%d", id, attempt)
			}
		}
	}
	for n := 0; n < 64; n++ {
		if a.CostScale(n) != b.CostScale(n) {
			t.Fatalf("plans disagree on CostScale(%d)", n)
		}
	}
}

// TestFaultRates: over many identities the empirical fault frequencies
// track the configured rates (loose bounds — this guards against a
// broken hash, not statistical purity).
func TestFaultRates(t *testing.T) {
	cfg := Config{Seed: 7, DropRate: 0.3, CorruptRate: 0.1, DupRate: 0.5, JitterMax: 9}
	p := mustPlan(t, cfg)
	const trials = 20000
	var drops, corrupts, dups int
	for i := 0; i < trials; i++ {
		id := Identity{Sent: int64(i), Src: i % 16, Seq: uint64(i)}
		if p.Dropped(id, 0) {
			drops++
		}
		if p.Corrupted(id, 0) {
			corrupts++
		}
		if p.Duplicated(id, 0) {
			dups++
		}
		if j := p.Jitter(id, 0); j < 0 || j > cfg.JitterMax {
			t.Fatalf("Jitter out of bounds: %d (max %d)", j, cfg.JitterMax)
		}
	}
	check := func(name string, got int, want float64) {
		t.Helper()
		f := float64(got) / trials
		if math.Abs(f-want) > 0.02 {
			t.Errorf("%s rate %.3f, want ~%.2f", name, f, want)
		}
	}
	check("drop", drops, cfg.DropRate)
	check("corrupt", corrupts, cfg.CorruptRate)
	check("dup", dups, cfg.DupRate)
}

func TestZeroConfigNeverFaults(t *testing.T) {
	p := mustPlan(t, Config{Seed: 99})
	if p.NetEnabled() {
		t.Fatal("zero config reports NetEnabled")
	}
	for i := 0; i < 1000; i++ {
		id := Identity{Sent: int64(i), Src: i % 8, Seq: uint64(i)}
		if p.Dropped(id, 0) || p.Corrupted(id, 0) || p.Duplicated(id, 0) || p.Jitter(id, 0) != 0 {
			t.Fatalf("zero config faulted at id %+v", id)
		}
	}
	for n := 0; n < 32; n++ {
		if p.CostScale(n) != 1 {
			t.Fatalf("zero config CostScale(%d) = %d", n, p.CostScale(n))
		}
	}
	if _, _, ok := p.CrashAt(32); ok {
		t.Fatal("zero config plans a crash")
	}
}

func TestStragglerSubset(t *testing.T) {
	p := mustPlan(t, Config{Seed: 3, StragglerFactor: 4})
	const nodes = 1024
	slow := 0
	for n := 0; n < nodes; n++ {
		switch p.CostScale(n) {
		case 4:
			slow++
		case 1:
		default:
			t.Fatalf("CostScale(%d) = %d, want 1 or 4", n, p.CostScale(n))
		}
	}
	// Default fraction is 0.25; allow a wide statistical band.
	if frac := float64(slow) / nodes; frac < 0.15 || frac > 0.35 {
		t.Errorf("straggler fraction %.3f, want ~0.25", frac)
	}
	// Factor 1 disables stragglers entirely.
	off := mustPlan(t, Config{Seed: 3, StragglerFactor: 1})
	for n := 0; n < nodes; n++ {
		if off.CostScale(n) != 1 {
			t.Fatalf("factor-1 plan scales node %d", n)
		}
	}
}

func TestCrashAt(t *testing.T) {
	p := mustPlan(t, Config{CrashCycle: 500, CrashNode: 3})
	if node, cycle, ok := p.CrashAt(8); !ok || node != 3 || cycle != 500 {
		t.Fatalf("CrashAt(8) = (%d, %d, %v), want (3, 500, true)", node, cycle, ok)
	}
	// The crashed node must exist in the machine.
	if _, _, ok := p.CrashAt(3); ok {
		t.Fatal("CrashAt(3) reported a crash for node 3 of a 3-node machine")
	}
}

func TestPlanDelivery(t *testing.T) {
	// No faults: one attempt, no extra delay.
	clean := mustPlan(t, Config{Seed: 1})
	d := clean.PlanDelivery(Identity{Sent: 10, Src: 2, Seq: 0}, 100)
	if !d.Delivered || d.Attempts != 1 || d.ExtraDelay != 0 || d.Drops+d.Corrupts != 0 {
		t.Fatalf("clean delivery = %+v", d)
	}

	// Heavy loss: retries happen, accounting balances, delay grows with
	// the attempt index, and ExtraDelay stays non-negative (lookahead
	// safety).
	lossy := mustPlan(t, Config{Seed: 5, DropRate: 0.4, CorruptRate: 0.2, DupRate: 0.3, JitterMax: 11})
	const rto = int64(64)
	delivered, retried := 0, 0
	for i := 0; i < 5000; i++ {
		id := Identity{Sent: int64(i), Src: i % 4, Seq: uint64(i)}
		d := lossy.PlanDelivery(id, rto)
		if d.Attempts < 1 || d.Attempts > MaxAttempts {
			t.Fatalf("attempts %d out of range", d.Attempts)
		}
		if d.Drops+d.Corrupts != d.Attempts-boolInt(d.Delivered) {
			t.Fatalf("accounting mismatch: %+v", d)
		}
		if d.ExtraDelay < 0 {
			t.Fatalf("negative ExtraDelay: %+v", d)
		}
		if d.Delivered {
			delivered++
			if d.Attempts > 1 {
				retried++
				if d.ExtraDelay < int64(d.Attempts-1)*rto {
					t.Fatalf("ExtraDelay %d below RTO floor for %d attempts", d.ExtraDelay, d.Attempts)
				}
			}
		}
	}
	if delivered < 4990 {
		t.Errorf("only %d/5000 delivered under 60%% per-attempt failure; retransmit cap too low?", delivered)
	}
	if retried == 0 {
		t.Error("no parcel ever needed a retry at 60% failure rate")
	}

	// Certain loss: all attempts burn, nothing delivered.
	dead := mustPlan(t, Config{Seed: 2, DropRate: 1})
	d = dead.PlanDelivery(Identity{Sent: 1, Src: 1, Seq: 1}, rto)
	if d.Delivered || d.Attempts != MaxAttempts || d.Drops != MaxAttempts {
		t.Fatalf("drop=1 delivery = %+v", d)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestApplyCorruptionChangesFrame(t *testing.T) {
	frame := make([]byte, 64)
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	for mode := CorruptMode(0); mode < NumCorruptModes; mode++ {
		for h := uint64(0); h < 200; h++ {
			got := ApplyCorruption(mode, h, frame)
			if string(got) == string(frame) {
				t.Fatalf("mode %v h=%d left the frame unchanged", mode, h)
			}
			// Purity: the input frame must never be modified.
			for i := range frame {
				if frame[i] != byte(i*7) {
					t.Fatalf("mode %v h=%d mutated the input frame", mode, h)
				}
			}
		}
	}
	if got := ApplyCorruption(CorruptBitFlip, 0, nil); len(got) != 0 {
		t.Fatalf("empty frame corruption returned %d bytes", len(got))
	}
}
