package hostpim

import (
	"fmt"

	"repro/internal/dram"
)

// DRAMCalibration derives the model's memory-time parameters (TML, TMH)
// from the DRAM macro timing model instead of taking Table 1's constants
// on faith. The paper's TML/TMH fold together row-buffer behaviour and
// controller/bus overheads; this calibration separates them:
//
//	T = overheadNS + rowHit·pageNS + (1−rowHit)·(rowNS + pageNS [+ prechargeNS])
//
// expressed in HWP cycles (1 ns per cycle per Table 1).
type DRAMCalibration struct {
	// Macro is the DRAM timing model.
	Macro dram.MacroConfig
	// LWPRowHitRate is the fraction of LWP accesses that hit the open row
	// (PIM sits next to the row buffer, but low-locality work still
	// conflicts).
	LWPRowHitRate float64
	// HWPRowHitRate is the row hit rate seen by host cache-miss traffic.
	HWPRowHitRate float64
	// LWPOverheadNS is the PIM-side access overhead beyond the array
	// itself (decode, bank arbitration).
	LWPOverheadNS float64
	// HWPOverheadNS is the host-side overhead (off-chip bus, controller
	// queueing) added to every cache miss.
	HWPOverheadNS float64
}

// DefaultDRAMCalibration reproduces Table 1's constants from the paper's
// own macro: TML = 10 + 0.3·2 + 0.7·22 ≈ 26 cycles (vs Table 1's 30) and
// TMH = 68 + mean access ≈ 90 for host traffic that always opens a row.
func DefaultDRAMCalibration() DRAMCalibration {
	return DRAMCalibration{
		Macro:         dram.PaperMacro(),
		LWPRowHitRate: 0.3,
		HWPRowHitRate: 0.0,
		LWPOverheadNS: 10,
		HWPOverheadNS: 68,
	}
}

// Validate checks calibration sanity.
func (c DRAMCalibration) Validate() error {
	if err := c.Macro.Validate(); err != nil {
		return err
	}
	if c.LWPRowHitRate < 0 || c.LWPRowHitRate > 1 || c.HWPRowHitRate < 0 || c.HWPRowHitRate > 1 {
		return fmt.Errorf("hostpim: row hit rate out of [0,1] in %+v", c)
	}
	if c.LWPOverheadNS < 0 || c.HWPOverheadNS < 0 {
		return fmt.Errorf("hostpim: negative overhead in %+v", c)
	}
	return nil
}

// meanAccessNS returns the expected single-word access time at the given
// row hit rate under an open-page policy.
func (c DRAMCalibration) meanAccessNS(rowHit float64) float64 {
	hit := c.Macro.PageAccessNS
	miss := c.Macro.RowAccessNS + c.Macro.PageAccessNS + c.Macro.PrechargeNS
	return rowHit*hit + (1-rowHit)*miss
}

// TMLCycles returns the calibrated LWP memory access time in HWP cycles.
func (c DRAMCalibration) TMLCycles() float64 {
	return c.LWPOverheadNS + c.meanAccessNS(c.LWPRowHitRate)
}

// TMHCycles returns the calibrated HWP memory access time in HWP cycles.
func (c DRAMCalibration) TMHCycles() float64 {
	return c.HWPOverheadNS + c.meanAccessNS(c.HWPRowHitRate)
}

// Apply returns base with TML and TMH replaced by the calibrated values.
func (c DRAMCalibration) Apply(base Params) (Params, error) {
	if err := c.Validate(); err != nil {
		return Params{}, err
	}
	p := base
	p.TML = c.TMLCycles()
	p.TMH = c.TMHCycles()
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
