package hostpim

import (
	"math"
	"testing"

	"repro/internal/dram"
)

func TestDefaultCalibrationNearTable1(t *testing.T) {
	c := DefaultDRAMCalibration()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// TML: 10 + 0.3*2 + 0.7*22 = 26 (Table 1 says 30 — same ballpark).
	if got := c.TMLCycles(); math.Abs(got-26) > 1e-9 {
		t.Errorf("TML = %g, want 26", got)
	}
	// TMH: 68 + 22 = 90 (Table 1 exactly).
	if got := c.TMHCycles(); math.Abs(got-90) > 1e-9 {
		t.Errorf("TMH = %g, want 90", got)
	}
	p, err := c.Apply(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// NB with the calibrated TML shifts modestly from 3.125.
	if p.NB() <= 0 || math.Abs(p.NB()-DefaultParams().NB()) > 1 {
		t.Errorf("calibrated NB = %g, default %g", p.NB(), DefaultParams().NB())
	}
}

func TestCalibrationMonotoneInRowHitRate(t *testing.T) {
	// Better row-buffer locality at the PIM node can only lower TML and
	// hence NB.
	prevTML := math.Inf(1)
	prevNB := math.Inf(1)
	for _, h := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := DefaultDRAMCalibration()
		c.LWPRowHitRate = h
		p, err := c.Apply(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if p.TML > prevTML {
			t.Errorf("TML rose with hit rate %g", h)
		}
		if p.NB() > prevNB {
			t.Errorf("NB rose with hit rate %g", h)
		}
		prevTML, prevNB = p.TML, p.NB()
	}
}

func TestCalibrationRejectsInvalid(t *testing.T) {
	c := DefaultDRAMCalibration()
	c.LWPRowHitRate = 1.5
	if _, err := c.Apply(DefaultParams()); err == nil {
		t.Error("bad row hit rate accepted")
	}
	c = DefaultDRAMCalibration()
	c.HWPOverheadNS = -1
	if _, err := c.Apply(DefaultParams()); err == nil {
		t.Error("negative overhead accepted")
	}
	c = DefaultDRAMCalibration()
	c.Macro = dram.MacroConfig{}
	if _, err := c.Apply(DefaultParams()); err == nil {
		t.Error("invalid macro accepted")
	}
}

func TestCalibrationPropagatesToGain(t *testing.T) {
	// End to end: slower PIM memory (no row locality + big overhead)
	// must reduce the predicted gain.
	fast := DefaultDRAMCalibration()
	fast.LWPRowHitRate = 0.9
	slow := DefaultDRAMCalibration()
	slow.LWPRowHitRate = 0
	slow.LWPOverheadNS = 40

	base := DefaultParams()
	base.PctWL = 0.8
	base.N = 32
	pf, err := fast.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := slow.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Analytic(pf)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Analytic(ps)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Gain <= rs.Gain {
		t.Errorf("fast-memory gain %g not above slow-memory gain %g", rf.Gain, rs.Gain)
	}
}
