package hostpim_test

import (
	"fmt"

	"repro/internal/hostpim"
)

// Evaluate the paper's closed-form model at Table 1 with 60% low-locality
// work on 32 PIM nodes.
func ExampleAnalytic() {
	p := hostpim.DefaultParams()
	p.PctWL = 0.6
	p.N = 32
	r, err := hostpim.Analytic(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gain %.2fx, relative time %.3f\n", r.Gain, r.Relative)
	// Output: gain 10.13x, relative time 0.459
}

// NB is the paper's third orthogonal parameter: the break-even PIM node
// count, independent of the workload split.
func ExampleParams_NB() {
	p := hostpim.DefaultParams()
	fmt.Printf("NB = %.3f (PIM wins for any %%WL once N > NB)\n", p.NB())
	// Output: NB = 3.125 (PIM wins for any %WL once N > NB)
}

// TimeRelative is the published equation 1 - %WL(1 - NB/N).
func ExampleTimeRelative() {
	p := hostpim.DefaultParams()
	p.PctWL = 1.0
	p.N = 64
	fmt.Printf("%.4f\n", hostpim.TimeRelative(p))
	// Output: 0.0488
}
