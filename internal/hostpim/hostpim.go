// Package hostpim implements the paper's first study (§3): the queuing
// model of a heavyweight host processor (HWP) augmented with an array of N
// lightweight PIM processors (LWP) bonded to memory banks.
//
// The workload of W operations is split by temporal locality (Fig. 4):
// the high-locality fraction (1−%WL) runs on the HWP with a statistical
// cache, then the low-locality fraction %WL runs as N uniform concurrent
// threads, one per LWP. At any instant either the HWP or the LWP array is
// executing, never both — exactly the paper's execution flow.
//
// Two evaluation paths exist: Simulate (the discrete-event queuing model,
// the counterpart of the paper's SES/Workbench runs behind Figs. 5 and 6)
// and the closed forms in internal/analytic (the paper's §3.1.2 model
// behind Fig. 7). The ACC experiment compares them.
package hostpim

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ControlPolicy selects how the control run — the HWP executing *all* the
// work by itself — treats the low-locality fraction's cache behaviour.
type ControlPolicy int

const (
	// ControlFixedMiss gives the whole control workload the Table 1 miss
	// rate Pmiss. This is the normalization the paper's analytical model
	// (§3.1.2) uses: time relative to "the HWP alone performing only high
	// temporal locality work".
	ControlFixedMiss ControlPolicy = iota
	// ControlLocalityAware degrades the miss rate to PmissLow (default 1.0)
	// on the low-locality fraction: data with no reuse cannot hit a cache.
	// This is the control run behind the paper's Fig. 5 gains ("100X" in
	// the extreme requires it; see DESIGN.md §2).
	ControlLocalityAware
)

func (c ControlPolicy) String() string {
	switch c {
	case ControlFixedMiss:
		return "fixed-miss"
	case ControlLocalityAware:
		return "locality-aware"
	default:
		return fmt.Sprintf("ControlPolicy(%d)", int(c))
	}
}

// Params are the Table 1 parametric assumptions plus the two independent
// sweep variables (%WL and N). All times are in HWP cycles, following the
// paper's normalization ("the units of cycles refers to HWP cycles").
type Params struct {
	// W is the total work in operations (Table 1: 100,000,000).
	W float64
	// PctWL is the fraction of work with low temporal locality, assigned
	// to the LWP array in the test system (%WL, swept 0…1).
	PctWL float64
	// N is the number of LWP (PIM) nodes.
	N int
	// TLCycle is the LWP cycle time in HWP cycles (Table 1: 5ns / 1ns = 5).
	TLCycle float64
	// TMH is the HWP main-memory access time on a cache miss (90).
	TMH float64
	// TCH is the HWP cache access time (2).
	TCH float64
	// TML is the LWP local memory access time (30).
	TML float64
	// Pmiss is the HWP cache miss rate on high-locality work (0.1).
	Pmiss float64
	// PmissLow is the HWP miss rate on low-locality work under the
	// locality-aware control policy (no reuse ⇒ 1.0).
	PmissLow float64
	// MixLS is the load/store fraction of the instruction mix (0.30).
	MixLS float64
	// Control selects the control-run cache policy.
	Control ControlPolicy
	// Overlap enables the extension mode in which the HWP and the LWP
	// array execute their fractions concurrently instead of the paper's
	// strictly alternating Fig. 4 flow ("at any one time, either the HWP
	// or LWP array is executing but not both"). Total time becomes the
	// max of the two phases rather than their sum.
	Overlap bool
}

// DefaultParams returns Table 1 exactly, with PctWL and N left for the
// caller (zero values: 0% LWP work, 1 node).
func DefaultParams() Params {
	return Params{
		W:        100e6,
		PctWL:    0,
		N:        1,
		TLCycle:  5,
		TMH:      90,
		TCH:      2,
		TML:      30,
		Pmiss:    0.1,
		PmissLow: 1.0,
		MixLS:    0.30,
		Control:  ControlLocalityAware,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.W <= 0:
		return fmt.Errorf("hostpim: W = %g", p.W)
	case p.PctWL < 0 || p.PctWL > 1:
		return fmt.Errorf("hostpim: PctWL = %g", p.PctWL)
	case p.N <= 0:
		return fmt.Errorf("hostpim: N = %d", p.N)
	case p.TLCycle <= 0 || p.TMH <= 0 || p.TCH <= 0 || p.TML <= 0:
		return fmt.Errorf("hostpim: non-positive timing parameter")
	case p.Pmiss < 0 || p.Pmiss > 1 || p.PmissLow < 0 || p.PmissLow > 1:
		return fmt.Errorf("hostpim: miss rate out of [0,1]")
	case p.MixLS < 0 || p.MixLS > 1:
		return fmt.Errorf("hostpim: MixLS = %g", p.MixLS)
	}
	return nil
}

// HWPOpCycles returns the expected HWP cycles per operation at the given
// miss rate: 1 issue cycle, plus for the load/store fraction the cache
// access (TCH−1 extra) and the miss penalty.
func (p Params) HWPOpCycles(pmiss float64) float64 {
	return 1 + p.MixLS*(p.TCH-1+pmiss*p.TMH)
}

// LWPOpCycles returns the expected LWP cycles-per-operation in HWP cycles:
// TLCycle per issue, with the load/store fraction costing TML instead.
func (p Params) LWPOpCycles() float64 {
	return p.TLCycle + p.MixLS*(p.TML-p.TLCycle)
}

// NB returns the paper's third orthogonal parameter — the LWP/HWP per-op
// cost ratio. For N > NB, PIM support always wins regardless of %WL.
func (p Params) NB() float64 {
	return p.LWPOpCycles() / p.HWPOpCycles(p.Pmiss)
}

// Result reports one run of the model.
type Result struct {
	// TimeHWPPhase and TimeLWPPhase are the cycle counts of the two phases
	// of the test system (Fig. 4's timeline); Total is their sum.
	TimeHWPPhase float64
	TimeLWPPhase float64
	Total        float64
	// ControlTime is the control run (HWP does everything).
	ControlTime float64
	// Gain is ControlTime / Total (Fig. 5's dependent variable).
	Gain float64
	// Relative is Total normalized by the fixed-miss HWP-only time
	// (Fig. 7's dependent variable).
	Relative float64
	// NodeTimes, when produced by the simulator, holds each LWP thread's
	// completion time of its share of the low-locality work.
	NodeTimes []float64
	// HWPUtil and LWPUtil are simulator-measured busy fractions over the
	// test run.
	HWPUtil float64
	LWPUtil float64
}

// Analytic evaluates the model in closed form (the §3.1.2 equations).
func Analytic(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	tH := p.HWPOpCycles(p.Pmiss)
	tL := p.LWPOpCycles()
	wh := (1 - p.PctWL) * p.W
	wl := p.PctWL * p.W
	r := Result{
		TimeHWPPhase: wh * tH,
		TimeLWPPhase: wl * tL / float64(p.N),
	}
	if p.Overlap {
		r.Total = math.Max(r.TimeHWPPhase, r.TimeLWPPhase)
	} else {
		r.Total = r.TimeHWPPhase + r.TimeLWPPhase
	}
	r.ControlTime = p.controlTime()
	r.Gain = r.ControlTime / r.Total
	r.Relative = r.Total / (p.W * tH)
	return r, nil
}

// controlTime returns the control run's cycle count under the selected
// policy.
func (p Params) controlTime() float64 {
	switch p.Control {
	case ControlFixedMiss:
		return p.W * p.HWPOpCycles(p.Pmiss)
	case ControlLocalityAware:
		wh := (1 - p.PctWL) * p.W
		wl := p.PctWL * p.W
		return wh*p.HWPOpCycles(p.Pmiss) + wl*p.HWPOpCycles(p.PmissLow)
	default:
		panic(fmt.Sprintf("hostpim: unknown control policy %v", p.Control))
	}
}

// TimeRelative is the paper's closed form: 1 − %WL·(1 − NB/N). Exposed
// separately so tests can verify Analytic against the exact published
// equation.
func TimeRelative(p Params) float64 {
	return 1 - p.PctWL*(1-p.NB()/float64(p.N))
}

// SimOptions tunes the discrete-event simulation.
type SimOptions struct {
	// Seed drives all stochastic draws.
	Seed uint64
	// ChunkOps batches operations per simulation event; the op *counts*
	// inside a chunk are sampled exactly (binomial), so batching changes
	// only event granularity, not the statistics. 0 means a default chosen
	// for ~10k events per run.
	ChunkOps int
	// Tracer, when non-nil, observes the test system's process timeline —
	// attach a trace.Recorder to regenerate the paper's Fig. 4 thread
	// timeline. Tracing requires a serial run (RunParallel <= 1).
	Tracer sim.Tracer
	// RunParallel runs the test system partitioned over min(RunParallel,
	// N) shard kernels driven by that many workers (sim.ParKernel): the
	// LWP nodes are sharded contiguously and never communicate, so the
	// partitions declare an infinite lookahead and the whole run is one
	// window. 0 or 1 keeps the serial single-kernel path. The Result is
	// identical — every field, bit for bit — for every value, which the
	// invariance test pins: the nodes' streams, resources, and event
	// timelines are per-node and therefore shard-independent.
	RunParallel int
}

// Simulate runs the queuing model on the DES kernel: the HWP station of
// Fig. 2 followed by the N-node LWP array of Fig. 3, with the control run
// executed in the same stochastic style. Returns the measured Result.
//
// The model executes in the kernel's activity mode: every work loop is a
// run-to-completion state machine stepped inline by the dispatch loop, so
// the N-way interleaved LWP phase costs a heap pop per switch instead of a
// goroutine handoff. The event trajectory (and therefore every statistic)
// is identical to the original Proc-based formulation.
func Simulate(p Params, opt SimOptions) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	chunk := opt.ChunkOps
	if chunk <= 0 {
		chunk = int(math.Max(1, p.W/10000))
	}
	var res Result
	var err error
	if opt.RunParallel >= 2 && p.N >= 2 {
		if opt.Tracer != nil {
			return Result{}, fmt.Errorf("hostpim: Tracer requires a serial run (RunParallel <= 1)")
		}
		res, err = simulateTestPar(p, opt, chunk)
	} else {
		res, err = simulateTestSerial(p, opt, chunk)
	}
	if err != nil {
		return Result{}, err
	}
	if err := simulateControl(p, opt, chunk, &res); err != nil {
		return Result{}, err
	}
	if res.Total > 0 {
		res.Gain = res.ControlTime / res.Total
	}
	res.Relative = res.Total / (p.W * p.HWPOpCycles(p.Pmiss))
	return res, nil
}

// simulateTestSerial runs the test system on one kernel: the original
// orchestrated Fig. 4 flow.
func simulateTestSerial(p Params, opt SimOptions, chunk int) (Result, error) {
	// --- Test system: HWP phase then LWP array phase (or concurrent in
	// Overlap mode). ---
	k := sim.NewKernel()
	k.Tracer = opt.Tracer
	hwpStream := rng.NewWithStream(opt.Seed, 1)
	res := Result{}

	hwpCPU := sim.NewResource(k, "hwp-cpu", 1, sim.FIFO)
	hwpMem := sim.NewResource(k, "hwp-mem", 1, sim.FIFO)
	lwpCPU := make([]*sim.Resource, p.N)
	lwpMem := make([]*sim.Resource, p.N)
	// One reseedable value slab for the per-node streams instead of one
	// heap allocation per node per run.
	lwpStreams := make([]rng.Stream, p.N)
	lwpNames := make([]string, p.N)
	for i := range lwpCPU {
		num := strconv.Itoa(i)
		lwpNames[i] = "lwp-" + num
		lwpCPU[i] = sim.NewResource(k, "lwp-cpu-"+num, 1, sim.FIFO)
		lwpMem[i] = sim.NewResource(k, "lwp-mem-"+num, 1, sim.FIFO)
		lwpStreams[i].Reseed(opt.Seed, 100+uint64(i))
	}

	wh := (1 - p.PctWL) * p.W
	res.NodeTimes = make([]float64, p.N)

	ts := &testSystem{
		k: k, p: p, res: &res, chunk: chunk,
		lwpCPU: lwpCPU, lwpMem: lwpMem, lwpStreams: lwpStreams, lwpNames: lwpNames,
		nodes: make([]lwpNode, p.N),
	}
	ts.hwp.init(p, hwpStream, p.Pmiss, wh, chunk, hwpCPU, hwpMem)
	k.SpawnActivity("test-system", ts)
	if _, err := k.RunUntilIdle(); err != nil {
		return Result{}, err
	}
	res.Total = k.Now()
	res.HWPUtil = hwpCPU.Util.Area(res.Total) + hwpMem.Util.Area(res.Total)
	if res.Total > 0 {
		res.HWPUtil /= res.Total
	}
	var lwpBusy float64
	for i := range lwpCPU {
		lwpBusy += lwpCPU[i].Util.Area(res.Total) + lwpMem[i].Util.Area(res.Total)
	}
	if res.Total > 0 && p.N > 0 {
		res.LWPUtil = lwpBusy / (res.Total * float64(p.N))
	}
	return res, nil
}

// simulateControl runs the control system — the HWP alone — and fills
// res.ControlTime. The control is a single station and always serial.
func simulateControl(p Params, opt SimOptions, chunk int, res *Result) error {
	wh := (1 - p.PctWL) * p.W
	wl := p.PctWL * p.W
	kc := sim.NewKernel()
	ctrlStream := rng.NewWithStream(opt.Seed, 2)
	cCPU := sim.NewResource(kc, "hwp-cpu", 1, sim.FIFO)
	cMem := sim.NewResource(kc, "hwp-mem", 1, sim.FIFO)
	cs := &controlSystem{}
	switch p.Control {
	case ControlFixedMiss:
		cs.seg[0].init(p, ctrlStream, p.Pmiss, p.W, chunk, cCPU, cMem)
		cs.segs = 1
	case ControlLocalityAware:
		cs.seg[0].init(p, ctrlStream, p.Pmiss, wh, chunk, cCPU, cMem)
		cs.seg[1].init(p, ctrlStream, p.PmissLow, wl, chunk, cCPU, cMem)
		cs.segs = 2
	}
	kc.SpawnActivity("control-system", cs)
	if _, err := kc.RunUntilIdle(); err != nil {
		return err
	}
	res.ControlTime = kc.Now()
	return nil
}

// stationWork drives a batch of operations through one two-resource
// station (CPU then memory) as a run-to-completion state machine — the
// activity-mode form of the old blocking work loop. Operations are
// processed in chunks whose internal composition is sampled exactly, so
// batching changes only event granularity, not the statistics. The same
// machine serves the HWP station of Fig. 2 (hwp true: issue + cache-hit
// cycles on the CPU, miss cycles on memory) and an LWP node of Fig. 3
// (hwp false: TLCycle per issue on the node CPU, TML per load/store on
// its bank).
type stationWork struct {
	p         Params
	st        *rng.Stream
	pmiss     float64 // HWP miss rate (hwp mode only)
	hwp       bool
	remaining int64
	chunk     int64
	cpu, mem  *sim.Resource

	state     int
	cpuCycles float64
	memCycles float64
}

// stationWork states: which step of the current chunk runs next.
const (
	swNextChunk = iota // draw the next chunk, acquire the CPU
	swHoldCPU          // CPU granted: spend the compute cycles
	swCPUDone          // compute done: release, acquire memory if needed
	swHoldMem          // memory granted: spend the access cycles
	swMemDone          // access done: release, next chunk
)

// init prepares the machine for ops operations at the given miss rate
// (ignored for LWP stations, where initLWP applies).
func (w *stationWork) init(p Params, st *rng.Stream, pmiss, ops float64, chunk int, cpu, mem *sim.Resource) {
	*w = stationWork{p: p, st: st, pmiss: pmiss, hwp: true,
		remaining: int64(math.Round(ops)), chunk: int64(chunk), cpu: cpu, mem: mem}
}

// initLWP prepares the machine as an LWP node.
func (w *stationWork) initLWP(p Params, st *rng.Stream, ops float64, chunk int, cpu, mem *sim.Resource) {
	*w = stationWork{p: p, st: st,
		remaining: int64(math.Round(ops)), chunk: int64(chunk), cpu: cpu, mem: mem}
}

// run advances the machine until it must wait (returns false; call again
// on the next resumption) or all operations are done (returns true).
func (w *stationWork) run(a *sim.ActCtx) bool {
	for {
		switch w.state {
		case swNextChunk:
			if w.remaining <= 0 {
				return true
			}
			n := w.chunk
			if n > w.remaining {
				n = w.remaining
			}
			w.remaining -= n
			nLS := w.st.Binomial(int(n), w.p.MixLS)
			if w.hwp {
				nMiss := w.st.Binomial(nLS, w.pmiss)
				// Issue + cache-hit portion on the CPU; memory portion on
				// the memory device, mirroring the two service centres of
				// Fig. 2.
				w.cpuCycles = float64(n) + float64(nLS)*(w.p.TCH-1)
				w.memCycles = float64(nMiss) * w.p.TMH
			} else {
				w.cpuCycles = float64(n-int64(nLS)) * w.p.TLCycle
				w.memCycles = float64(nLS) * w.p.TML
			}
			w.state = swHoldCPU
			if !w.cpu.Acquire1Act(a) {
				return false
			}
		case swHoldCPU:
			w.state = swCPUDone
			a.Wait(w.cpuCycles)
			return false
		case swCPUDone:
			w.cpu.Release(1)
			if w.memCycles > 0 {
				w.state = swHoldMem
				if !w.mem.Acquire1Act(a) {
					return false
				}
			} else {
				w.state = swNextChunk
			}
		case swHoldMem:
			w.state = swMemDone
			a.Wait(w.memCycles)
			return false
		case swMemDone:
			w.mem.Release(1)
			w.state = swNextChunk
		}
	}
}

// testSystem orchestrates the Fig. 4 execution flow as an activity: the
// HWP phase, then (or concurrently with, in Overlap mode) the N uniform
// LWP threads, then the join.
type testSystem struct {
	k     *sim.Kernel
	p     Params
	res   *Result
	chunk int

	hwp        stationWork
	lwpCPU     []*sim.Resource
	lwpMem     []*sim.Resource
	lwpStreams []rng.Stream
	lwpNames   []string
	nodes      []lwpNode

	phase    int // 0: HWP work; 1: joined
	started  bool
	wg       *sim.WaitGroup
	lwpStart sim.Time
}

// lwpNode is one LWP thread of the array: its station machine plus the
// bookkeeping done at completion.
type lwpNode struct {
	w     stationWork
	ts    *testSystem
	idx   int
	start sim.Time
}

// Step advances one LWP thread; at completion it records the node time
// and joins.
func (n *lwpNode) Step(a *sim.ActCtx) {
	if !n.w.run(a) {
		return
	}
	n.ts.res.NodeTimes[n.idx] = a.Now() - n.start
	n.ts.wg.Done()
	a.Exit()
}

// startLWPArray launches the N uniform concurrent LWP threads (Fig. 4) at
// the current time.
func (ts *testSystem) startLWPArray(now sim.Time) {
	ts.wg = sim.NewWaitGroup(ts.k, "lwp-join", ts.p.N)
	ts.lwpStart = now
	perNode := ts.p.PctWL * ts.p.W / float64(ts.p.N)
	for i := 0; i < ts.p.N; i++ {
		n := &ts.nodes[i]
		n.ts, n.idx, n.start = ts, i, now
		n.w.initLWP(ts.p, &ts.lwpStreams[i], perNode, ts.chunk, ts.lwpCPU[i], ts.lwpMem[i])
		ts.k.SpawnActivity(ts.lwpNames[i], n)
	}
}

// Step drives the test system's phases.
func (ts *testSystem) Step(a *sim.ActCtx) {
	if ts.p.Overlap && !ts.started {
		// Extension mode: HWP and LWP array execute concurrently.
		ts.started = true
		ts.startLWPArray(a.Now())
	}
	switch ts.phase {
	case 0:
		if !ts.hwp.run(a) {
			return
		}
		ts.res.TimeHWPPhase = a.Now()
		ts.phase = 1
		if !ts.p.Overlap {
			// Phase 2: the LWP array executes the low-locality work.
			ts.startLWPArray(a.Now())
		}
		if !ts.wg.WaitAct(a) {
			return
		}
		fallthrough
	case 1:
		if ts.p.Overlap {
			ts.res.TimeLWPPhase = 0
			for _, nt := range ts.res.NodeTimes {
				if nt > ts.res.TimeLWPPhase {
					ts.res.TimeLWPPhase = nt
				}
			}
		} else {
			ts.res.TimeLWPPhase = a.Now() - ts.lwpStart
		}
		a.Exit()
	}
}

// controlSystem runs the control workload — the HWP alone — as one or two
// sequential station segments (two under the locality-aware policy).
type controlSystem struct {
	seg  [2]stationWork
	segs int
	cur  int
}

// Step drives the control segments in order.
func (cs *controlSystem) Step(a *sim.ActCtx) {
	for cs.cur < cs.segs {
		if !cs.seg[cs.cur].run(a) {
			return
		}
		cs.cur++
	}
	a.Exit()
}

// GainCurve sweeps %WL for a fixed node count using the analytic path,
// returning (pcts, gains) — one Fig. 5 series.
func GainCurve(base Params, n int, pcts []float64) ([]float64, error) {
	gains := make([]float64, len(pcts))
	for i, pct := range pcts {
		p := base
		p.N = n
		p.PctWL = pct
		r, err := Analytic(p)
		if err != nil {
			return nil, err
		}
		gains[i] = r.Gain
	}
	return gains, nil
}

// ResponseCurve sweeps node counts for a fixed %WL, returning total times
// — one Fig. 6 series.
func ResponseCurve(base Params, pct float64, nodes []int) ([]float64, error) {
	times := make([]float64, len(nodes))
	for i, n := range nodes {
		p := base
		p.N = n
		p.PctWL = pct
		r, err := Analytic(p)
		if err != nil {
			return nil, err
		}
		times[i] = r.Total
	}
	return times, nil
}

// CrossoverN returns the node count above which the PIM-augmented system
// beats the fixed-miss control for every %WL — the paper's N = NB
// coincidence point (Fig. 7).
func CrossoverN(p Params) float64 { return p.NB() }

// AgreementBand runs both evaluation paths over a (pct × nodes) grid and
// returns the min, mean, and max relative error between simulation and
// analytic totals — the reproduction of the paper's "5% to 18%" agreement
// claim (§3.1.2).
func AgreementBand(base Params, pcts []float64, nodes []int, simW float64, seed uint64) (min, mean, max float64, err error) {
	var agg stats.Sample
	min = math.Inf(1)
	for _, pct := range pcts {
		for _, n := range nodes {
			p := base
			p.PctWL = pct
			p.N = n
			if simW > 0 {
				p.W = simW
			}
			an, aerr := Analytic(p)
			if aerr != nil {
				return 0, 0, 0, aerr
			}
			sr, serr := Simulate(p, SimOptions{Seed: seed})
			if serr != nil {
				return 0, 0, 0, serr
			}
			e := stats.RelErr(sr.Total, an.Total)
			agg.Add(e)
			if e < min {
				min = e
			}
			if e > max {
				max = e
			}
		}
	}
	return min, agg.Mean(), max, nil
}
