package hostpim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func defaults(pct float64, n int) Params {
	p := DefaultParams()
	p.PctWL = pct
	p.N = n
	return p
}

func TestTable1PerOpCosts(t *testing.T) {
	p := DefaultParams()
	// tH = 1 + 0.3*(2-1 + 0.1*90) = 4.0 HWP cycles per op.
	if got := p.HWPOpCycles(p.Pmiss); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("HWP op cycles = %g, want 4", got)
	}
	// tL = 5 + 0.3*(30-5) = 12.5 HWP cycles per op.
	if got := p.LWPOpCycles(); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("LWP op cycles = %g, want 12.5", got)
	}
	// NB = 12.5/4 = 3.125.
	if got := p.NB(); math.Abs(got-3.125) > 1e-12 {
		t.Errorf("NB = %g, want 3.125", got)
	}
}

func TestTimeRelativeMatchesPaperEquation(t *testing.T) {
	// Verify Analytic's Relative equals the published closed form
	// 1 − %WL (1 − NB/N) across the sweep grid.
	for _, pct := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
			p := defaults(pct, n)
			p.Control = ControlFixedMiss
			r, err := Analytic(p)
			if err != nil {
				t.Fatal(err)
			}
			want := TimeRelative(p)
			if math.Abs(r.Relative-want) > 1e-12 {
				t.Errorf("pct=%g N=%d: Relative=%g, equation=%g", pct, n, r.Relative, want)
			}
		}
	}
}

func TestCrossoverIndependentOfPctWL(t *testing.T) {
	// At N = NB the relative time is exactly 1 for every %WL — the paper's
	// "point of coincidence... independent of %WL".
	p := DefaultParams()
	nb := p.NB()
	for _, pct := range []float64{0.1, 0.5, 0.9, 1} {
		q := p
		q.PctWL = pct
		// Evaluate the closed form at the (fractional) coincidence point.
		rel := 1 - pct*(1-nb/nb)
		if math.Abs(rel-1) > 1e-12 {
			t.Errorf("pct=%g: relative at N=NB is %g, want 1", pct, rel)
		}
		_ = q
	}
}

func TestRelativeMonotoneInN(t *testing.T) {
	// For %WL > 0, adding nodes can only help.
	err := quick.Check(func(pctRaw, nRaw uint8) bool {
		pct := float64(pctRaw%100)/100.0 + 0.01
		n := 1 + int(nRaw%128)
		p1 := defaults(pct, n)
		p2 := defaults(pct, n+1)
		r1, err1 := Analytic(p1)
		r2, err2 := Analytic(p2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Total <= r1.Total+1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestGainAboveOneIffNAboveNB(t *testing.T) {
	// Under the fixed-miss control, gain > 1 exactly when N > NB (for
	// %WL > 0) — the paper's superiority condition.
	p := DefaultParams()
	p.Control = ControlFixedMiss
	for _, n := range []int{1, 2, 3, 4, 8, 64} {
		q := defaults(0.5, n)
		q.Control = ControlFixedMiss
		r, err := Analytic(q)
		if err != nil {
			t.Fatal(err)
		}
		if float64(n) > p.NB() && r.Gain <= 1 {
			t.Errorf("N=%d > NB but gain %g <= 1", n, r.Gain)
		}
		if float64(n) < p.NB() && r.Gain >= 1 {
			t.Errorf("N=%d < NB but gain %g >= 1", n, r.Gain)
		}
	}
}

func TestPaperHeadlineGains(t *testing.T) {
	// §3.1.1: "even for a small amount of LWP work including PIMs in the
	// system may double the performance" — locality-aware control, 10-20%
	// LWP work, many nodes.
	r, err := Analytic(defaults(0.2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain < 2 {
		t.Errorf("gain at 20%% LWP work, 64 nodes = %g, paper promises ~2x", r.Gain)
	}
	// "an order of magnitude performance gain" for data-intensive work.
	r, err = Analytic(defaults(0.8, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain < 10 {
		t.Errorf("gain at 80%% LWP work = %g, paper promises >= 10x", r.Gain)
	}
	// "in the extreme case where essentially all work resides on the LWP
	// array... a factor of 100X gain is observed" for some configurations.
	r, err = Analytic(defaults(1.0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain < 100 {
		t.Errorf("extreme gain = %g, paper reports ~100X", r.Gain)
	}
}

func TestFixedMissControlCapsGain(t *testing.T) {
	// Under fixed-miss control the maximum gain is N/NB.
	p := defaults(1.0, 64)
	p.Control = ControlFixedMiss
	r, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	want := 64 / p.NB()
	if math.Abs(r.Gain-want)/want > 1e-9 {
		t.Errorf("fixed-miss extreme gain = %g, want N/NB = %g", r.Gain, want)
	}
}

func TestZeroLWPWorkIsNeutral(t *testing.T) {
	// %WL = 0: test system == control system (no LWP phase at all).
	for _, n := range []int{1, 16, 256} {
		r, err := Analytic(defaults(0, n))
		if err != nil {
			t.Fatal(err)
		}
		if r.TimeLWPPhase != 0 {
			t.Errorf("N=%d: LWP phase = %g with no LWP work", n, r.TimeLWPPhase)
		}
		if math.Abs(r.Gain-1) > 1e-12 {
			t.Errorf("N=%d: gain = %g, want 1", n, r.Gain)
		}
	}
}

func TestFigure6Endpoints(t *testing.T) {
	// Fig. 6's axes: with Table 1 parameters, 0% LWT is flat at 4e8 cycles;
	// 100% LWT at N=1 is 1.25e9 cycles.
	r, err := Analytic(defaults(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Total-4e8)/4e8 > 1e-12 {
		t.Errorf("0%% LWT total = %g, want 4e8", r.Total)
	}
	r, err = Analytic(defaults(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Total-1.25e9)/1.25e9 > 1e-12 {
		t.Errorf("100%% LWT total = %g, want 1.25e9", r.Total)
	}
}

func TestSimulationMatchesAnalytic(t *testing.T) {
	// The DES queuing model and the closed form agree tightly (the paper
	// saw 5–18%; our simulator is the same statistical model, so the
	// agreement must be well inside that band).
	for _, tc := range []struct {
		pct float64
		n   int
	}{
		{0, 1}, {0.3, 4}, {0.5, 8}, {0.9, 32}, {1, 64},
	} {
		p := defaults(tc.pct, tc.n)
		p.W = 2e6 // keep the test fast; statistics scale-invariant
		an, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Simulate(p, SimOptions{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if e := stats.RelErr(sr.Total, an.Total); e > 0.05 {
			t.Errorf("pct=%g N=%d: sim %g vs analytic %g (err %.3f)",
				tc.pct, tc.n, sr.Total, an.Total, e)
		}
		if e := stats.RelErr(sr.ControlTime, an.ControlTime); e > 0.05 {
			t.Errorf("pct=%g N=%d: control sim %g vs analytic %g",
				tc.pct, tc.n, sr.ControlTime, an.ControlTime)
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	p := defaults(0.5, 4)
	p.W = 1e6
	a, err := Simulate(p, SimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, SimOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.ControlTime != b.ControlTime {
		t.Errorf("same seed differed: %g/%g vs %g/%g", a.Total, a.ControlTime, b.Total, b.ControlTime)
	}
	c, err := Simulate(p, SimOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total == c.Total {
		t.Error("different seeds produced identical totals (suspicious)")
	}
}

func TestSimulationNodeTimesUniform(t *testing.T) {
	// Threads are uniform in length; node completion times should be
	// tightly clustered (CLT spread only).
	p := defaults(1, 8)
	p.W = 4e6
	r, err := Simulate(p, SimOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var s stats.Sample
	for _, nt := range r.NodeTimes {
		s.Add(nt)
	}
	if s.N() != 8 {
		t.Fatalf("node times = %d, want 8", s.N())
	}
	if spread := (s.Max() - s.Min()) / s.Mean(); spread > 0.05 {
		t.Errorf("node completion spread = %g, threads should be uniform", spread)
	}
}

func TestSimulationPhaseExclusivity(t *testing.T) {
	// "At any one time, either the HWP or LWP array is executing but not
	// both": phases are sequential, so Total == HWP phase + LWP phase.
	p := defaults(0.4, 4)
	p.W = 1e6
	r, err := Simulate(p, SimOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Total-(r.TimeHWPPhase+r.TimeLWPPhase)) > 1e-6 {
		t.Errorf("total %g != HWP %g + LWP %g", r.Total, r.TimeHWPPhase, r.TimeLWPPhase)
	}
}

func TestAgreementBandWithinPaper(t *testing.T) {
	// The paper reproduced simulation with the analytic model "to an
	// accuracy of between 5% and 18%". Our band must stay at or below the
	// paper's worst case.
	pcts := []float64{0, 0.2, 0.5, 0.8, 1}
	nodes := []int{1, 4, 16, 64}
	_, mean, max, err := AgreementBand(DefaultParams(), pcts, nodes, 1e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if max > 0.18 {
		t.Errorf("max sim/analytic disagreement %.3f exceeds the paper's 18%% bound", max)
	}
	if mean > 0.05 {
		t.Errorf("mean disagreement %.3f is suspiciously large for a matched model", mean)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.W = 0 },
		func(p *Params) { p.PctWL = -0.1 },
		func(p *Params) { p.PctWL = 1.1 },
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.TLCycle = 0 },
		func(p *Params) { p.Pmiss = 2 },
		func(p *Params) { p.MixLS = -1 },
	}
	for i, mod := range cases {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestAnalyticIdentitiesProperty(t *testing.T) {
	// Model identities that must hold at every valid parameter point:
	// Gain·Total == ControlTime, Total == phases' sum, Relative matches
	// the published closed form under the fixed-miss normalization.
	err := quick.Check(func(pctRaw, nRaw, missRaw, mixRaw uint16) bool {
		p := DefaultParams()
		p.PctWL = float64(pctRaw%101) / 100
		p.N = 1 + int(nRaw%256)
		p.Pmiss = float64(missRaw%100) / 100
		p.MixLS = float64(mixRaw%90)/100 + 0.05
		p.Control = ControlFixedMiss
		r, err := Analytic(p)
		if err != nil {
			return false
		}
		if math.Abs(r.Gain*r.Total-r.ControlTime) > 1e-6*r.ControlTime {
			return false
		}
		if math.Abs(r.Total-(r.TimeHWPPhase+r.TimeLWPPhase)) > 1e-6*r.Total {
			return false
		}
		return math.Abs(r.Relative-TimeRelative(p)) < 1e-9
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestControlPoliciesAgreeAtZeroLowLocality(t *testing.T) {
	// With %WL = 0 the two control policies are the same system.
	err := quick.Check(func(nRaw uint8) bool {
		p := defaults(0, 1+int(nRaw%64))
		p.Control = ControlFixedMiss
		a, err1 := Analytic(p)
		p.Control = ControlLocalityAware
		b, err2 := Analytic(p)
		return err1 == nil && err2 == nil &&
			math.Abs(a.ControlTime-b.ControlTime) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestGainCurveShape(t *testing.T) {
	pcts := []float64{0, 0.25, 0.5, 0.75, 1}
	gains, err := GainCurve(DefaultParams(), 16, pcts)
	if err != nil {
		t.Fatal(err)
	}
	// Gain grows monotonically in %WL for N >> NB.
	for i := 1; i < len(gains); i++ {
		if gains[i] <= gains[i-1] {
			t.Errorf("gain not increasing at pct=%g: %v", pcts[i], gains)
		}
	}
	if math.Abs(gains[0]-1) > 1e-12 {
		t.Errorf("gain at 0%% = %g, want 1", gains[0])
	}
}

func TestResponseCurveShape(t *testing.T) {
	nodes := []int{1, 2, 4, 8, 16, 32, 64}
	t100, err := ResponseCurve(DefaultParams(), 1.0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	t0, err := ResponseCurve(DefaultParams(), 0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// 0% LWT: flat. 100% LWT: ~1/N decay.
	for i := range nodes {
		if math.Abs(t0[i]-t0[0]) > 1e-6 {
			t.Errorf("0%% LWT curve not flat: %v", t0)
		}
	}
	if ratio := t100[0] / t100[len(t100)-1]; math.Abs(ratio-64) > 1e-6 {
		t.Errorf("100%% LWT N=1/N=64 ratio = %g, want 64", ratio)
	}
}

func TestOverlapAnalytic(t *testing.T) {
	// Overlap total = max(phases); serial total = sum. Overlap never
	// loses, and the two agree when either phase is empty.
	for _, pct := range []float64{0, 0.3, 0.7, 1} {
		for _, n := range []int{1, 8, 64} {
			serial := defaults(pct, n)
			over := serial
			over.Overlap = true
			rs, err := Analytic(serial)
			if err != nil {
				t.Fatal(err)
			}
			ro, err := Analytic(over)
			if err != nil {
				t.Fatal(err)
			}
			if ro.Total > rs.Total+1e-9 {
				t.Errorf("pct=%g N=%d: overlap %g worse than serial %g", pct, n, ro.Total, rs.Total)
			}
			if want := math.Max(rs.TimeHWPPhase, rs.TimeLWPPhase); math.Abs(ro.Total-want) > 1e-6 {
				t.Errorf("pct=%g N=%d: overlap total %g, want max(phases) %g", pct, n, ro.Total, want)
			}
			if pct == 0 || pct == 1 {
				if math.Abs(ro.Total-rs.Total) > 1e-9 {
					t.Errorf("pct=%g: overlap %g != serial %g with one empty phase",
						pct, ro.Total, rs.Total)
				}
			}
		}
	}
}

func TestOverlapSimulationMatchesAnalytic(t *testing.T) {
	p := defaults(0.5, 8)
	p.W = 2e6
	p.Overlap = true
	an, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Simulate(p, SimOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(sr.Total, an.Total); e > 0.05 {
		t.Errorf("overlap sim %g vs analytic %g (err %.3f)", sr.Total, an.Total, e)
	}
	// Overlapped run must finish no later than the serial run.
	ps := p
	ps.Overlap = false
	srs, err := Simulate(ps, SimOptions{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Total > srs.Total {
		t.Errorf("overlap sim %g slower than serial sim %g", sr.Total, srs.Total)
	}
}

func TestSimulationUtilizations(t *testing.T) {
	// In the 100% LWP case the HWP never works; in the 0% case the LWPs
	// never work.
	p := defaults(1, 4)
	p.W = 1e6
	r, err := Simulate(p, SimOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if r.HWPUtil > 1e-9 {
		t.Errorf("HWP utilization = %g with 100%% LWP work", r.HWPUtil)
	}
	if r.LWPUtil < 0.9 {
		t.Errorf("LWP utilization = %g, expected ~1", r.LWPUtil)
	}
	p = defaults(0, 4)
	p.W = 1e6
	r, err = Simulate(p, SimOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if r.LWPUtil > 1e-9 {
		t.Errorf("LWP utilization = %g with no LWP work", r.LWPUtil)
	}
}
