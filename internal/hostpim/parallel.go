package hostpim

// Partitioned execution of the test system (SimOptions.RunParallel >= 2):
// the LWP nodes are sharded contiguously over a sim.ParKernel and the HWP
// station lives on shard 0. The nodes never interact — each owns its
// processor, memory bank, and RNG stream — so the partitions declare an
// infinite lookahead and each phase drains in a single window. The Fig. 4
// flow that the serial path expresses as an orchestrator activity is
// driven here from plain Go between AdvanceUntilIdle barriers: run the
// HWP phase to completion, spawn the LWP array at the common barrier
// time, run it to completion (Overlap mode spawns both at t = 0 instead).
//
// Every per-node quantity — stream draws, event timeline, completion
// time, utilization area — is independent of the shard assignment and of
// the orchestration style, so the Result is bit-for-bit identical to the
// serial path's for every RunParallel value; the invariance test pins it.

import (
	"strconv"

	"repro/internal/rng"
	"repro/internal/sim"
)

// phaseWork drives one stationWork to completion as a free-standing
// activity, invoking the hook at completion before exiting.
type phaseWork struct {
	w    stationWork
	done func(a *sim.ActCtx)
}

// Step advances the station until it parks or finishes.
func (pw *phaseWork) Step(a *sim.ActCtx) {
	if !pw.w.run(a) {
		return
	}
	if pw.done != nil {
		pw.done(a)
	}
	a.Exit()
}

// parLWPNode is one LWP thread of the partitioned array: the station
// machine plus the completion-time record. No join object — the phase
// barrier (AdvanceUntilIdle) is the join.
type parLWPNode struct {
	w     stationWork
	res   *Result
	idx   int
	start sim.Time
}

// Step advances one LWP thread; at completion it records the node time.
func (n *parLWPNode) Step(a *sim.ActCtx) {
	if !n.w.run(a) {
		return
	}
	// Distinct NodeTimes elements: shards never write the same index.
	n.res.NodeTimes[n.idx] = a.Now() - n.start
	a.Exit()
}

// simulateTestPar runs the test system partitioned. Callers guarantee
// RunParallel >= 2 and N >= 2.
func simulateTestPar(p Params, opt SimOptions, chunk int) (Result, error) {
	parts := opt.RunParallel
	if parts > p.N {
		parts = p.N
	}
	pk := sim.NewParKernel(parts, opt.RunParallel, sim.InfLookahead())
	defer pk.Close()
	partOf := func(i int) int { return i * parts / p.N }

	hwpStream := rng.NewWithStream(opt.Seed, 1)
	res := Result{}

	k0 := pk.Part(0)
	hwpCPU := sim.NewResource(k0, "hwp-cpu", 1, sim.FIFO)
	hwpMem := sim.NewResource(k0, "hwp-mem", 1, sim.FIFO)
	lwpCPU := make([]*sim.Resource, p.N)
	lwpMem := make([]*sim.Resource, p.N)
	lwpStreams := make([]rng.Stream, p.N)
	lwpNames := make([]string, p.N)
	for i := range lwpCPU {
		num := strconv.Itoa(i)
		ki := pk.Part(partOf(i))
		lwpNames[i] = "lwp-" + num
		lwpCPU[i] = sim.NewResource(ki, "lwp-cpu-"+num, 1, sim.FIFO)
		lwpMem[i] = sim.NewResource(ki, "lwp-mem-"+num, 1, sim.FIFO)
		lwpStreams[i].Reseed(opt.Seed, 100+uint64(i))
	}

	wh := (1 - p.PctWL) * p.W
	wl := p.PctWL * p.W
	res.NodeTimes = make([]float64, p.N)
	nodes := make([]parLWPNode, p.N)

	startLWPArray := func(now sim.Time) {
		perNode := wl / float64(p.N)
		for i := 0; i < p.N; i++ {
			n := &nodes[i]
			n.res, n.idx, n.start = &res, i, now
			n.w.initLWP(p, &lwpStreams[i], perNode, chunk, lwpCPU[i], lwpMem[i])
			pk.Part(partOf(i)).SpawnActivity(lwpNames[i], n)
		}
	}

	hwp := &phaseWork{done: func(a *sim.ActCtx) { res.TimeHWPPhase = a.Now() }}
	hwp.w.init(p, hwpStream, p.Pmiss, wh, chunk, hwpCPU, hwpMem)
	k0.SpawnActivity("hwp-phase", hwp)
	if p.Overlap {
		// Extension mode: HWP and LWP array execute concurrently.
		startLWPArray(0)
		if _, err := pk.AdvanceUntilIdle(); err != nil {
			return Result{}, err
		}
		for _, nt := range res.NodeTimes {
			if nt > res.TimeLWPPhase {
				res.TimeLWPPhase = nt
			}
		}
	} else {
		// Phase 1: the HWP runs alone (shard 0 is the only busy shard).
		hwpEnd, err := pk.AdvanceUntilIdle()
		if err != nil {
			return Result{}, err
		}
		// Phase 2: the LWP array, from the barrier's common clock.
		startLWPArray(hwpEnd)
		end, err := pk.AdvanceUntilIdle()
		if err != nil {
			return Result{}, err
		}
		res.TimeLWPPhase = end - hwpEnd
	}

	res.Total = pk.Now()
	res.HWPUtil = hwpCPU.Util.Area(res.Total) + hwpMem.Util.Area(res.Total)
	if res.Total > 0 {
		res.HWPUtil /= res.Total
	}
	var lwpBusy float64
	for i := range lwpCPU {
		lwpBusy += lwpCPU[i].Util.Area(res.Total) + lwpMem[i].Util.Area(res.Total)
	}
	if res.Total > 0 && p.N > 0 {
		res.LWPUtil = lwpBusy / (res.Total * float64(p.N))
	}
	return res, nil
}
