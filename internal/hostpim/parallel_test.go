package hostpim

// The partitioned test system's contract: Simulate's Result is identical
// — every field, bit for bit — for every RunParallel value, serial path
// included. The LWP nodes share nothing, so neither the shard assignment
// nor the window machinery can perturb a single draw or timestamp.

import (
	"reflect"
	"strings"
	"testing"
)

func TestSimulateRunParallelInvariance(t *testing.T) {
	p := DefaultParams()
	p.W = 200000
	p.PctWL = 0.4
	p.N = 7
	for _, overlap := range []bool{false, true} {
		p.Overlap = overlap
		want, err := Simulate(p, SimOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if want.Total <= 0 || want.TimeHWPPhase <= 0 || len(want.NodeTimes) != p.N {
			t.Fatalf("overlap=%v: degenerate serial result %+v", overlap, want)
		}
		// 16 > N exercises the shard clamp (7 shards, one node each).
		for _, rp := range []int{1, 2, 4, 7, 16} {
			got, err := Simulate(p, SimOptions{Seed: 3, RunParallel: rp})
			if err != nil {
				t.Fatalf("overlap=%v RunParallel=%d: %v", overlap, rp, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("overlap=%v RunParallel=%d diverged:\n got  %+v\n want %+v",
					overlap, rp, got, want)
			}
		}
	}
}

func TestSimulateRunParallelRejectsTracer(t *testing.T) {
	p := DefaultParams()
	p.W = 1000
	p.N = 2
	p.PctWL = 0.5
	_, err := Simulate(p, SimOptions{Seed: 1, RunParallel: 2, Tracer: nopTracer{}})
	if err == nil || !strings.Contains(err.Error(), "Tracer") {
		t.Fatalf("err = %v, want Tracer rejection", err)
	}
	// Serial runs still trace.
	if _, err := Simulate(p, SimOptions{Seed: 1, RunParallel: 1, Tracer: nopTracer{}}); err != nil {
		t.Fatal(err)
	}
}

type nopTracer struct{}

func (nopTracer) ProcState(t float64, name, state string) {}
