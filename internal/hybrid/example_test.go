package hybrid_test

import (
	"fmt"

	"repro/internal/hybrid"
)

// Composing the paper's two studies: inter-PIM latency erodes the study-1
// gain at P=1; parcels per node buy it back.
func ExampleAnalytic() {
	p := hybrid.DefaultParams() // %WL=0.5, N=32, remote 30%
	p.Latency = 2000
	for _, threads := range []int{1, 64} {
		p.ThreadsPerNode = threads
		r, err := hybrid.Analytic(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("P=%-2d efficiency %.2f gain %.2fx\n", threads, r.Efficiency, r.Gain)
	}
	// Output:
	// P=1  efficiency 0.06 gain 3.22x
	// P=64 efficiency 0.97 gain 7.34x
}
