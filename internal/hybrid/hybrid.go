// Package hybrid combines the paper's two studies into the system its
// introduction actually motivates: "hybrid systems comprising a
// combination of conventional microprocessors and advanced PIM based
// intelligent main memory."
//
// Study 1 assumes the LWP phase scales perfectly as N uniform threads —
// no inter-PIM communication. Study 2 shows what inter-node latency does
// to PIM nodes and how parcels recover it. This package closes the loop:
// during the LWP phase each PIM node's work includes a remote-access
// fraction over the PIM interconnect, so the phase runs at the node
// efficiency predicted by the Saavedra-Barrera multithreading model (or
// measured from a parcelsys simulation), and the study-1 gain becomes a
// function of (N, %WL, remote fraction, latency, parcels per node).
package hybrid

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/hostpim"
	"repro/internal/parcel"
	"repro/internal/parcelsys"
)

// Params couples a study-1 host/PIM split with a study-2 PIM interconnect.
type Params struct {
	// Host is the study-1 parameter set (Table 1 + %WL + N).
	Host hostpim.Params
	// RemoteFrac is the fraction of LWP memory accesses that reference
	// another PIM node during the low-locality phase.
	RemoteFrac float64
	// Latency is the flat one-way inter-PIM latency in HWP cycles.
	Latency float64
	// ThreadsPerNode is the number of parcels resident per PIM node (the
	// study-2 parallelism knob applied inside the LWP phase).
	ThreadsPerNode int
	// Overhead prices parcel creation/assimilation.
	Overhead parcel.CostModel
}

// DefaultParams returns Table 1 with a 30% remote fraction, 200-cycle
// interconnect, and 4 parcels per node.
func DefaultParams() Params {
	h := hostpim.DefaultParams()
	h.PctWL = 0.5
	h.N = 32
	return Params{
		Host:           h,
		RemoteFrac:     0.3,
		Latency:        200,
		ThreadsPerNode: 4,
		Overhead:       parcel.HardwareAssisted(),
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Host.Validate(); err != nil {
		return err
	}
	if p.RemoteFrac < 0 || p.RemoteFrac > 1 {
		return fmt.Errorf("hybrid: RemoteFrac = %g", p.RemoteFrac)
	}
	if p.Latency < 0 {
		return fmt.Errorf("hybrid: Latency = %g", p.Latency)
	}
	if p.ThreadsPerNode <= 0 {
		return fmt.Errorf("hybrid: ThreadsPerNode = %d", p.ThreadsPerNode)
	}
	return p.Overhead.Validate()
}

// Result extends the study-1 result with the PIM-phase efficiency.
type Result struct {
	hostpim.Result
	// Efficiency is the PIM-node busy fraction during the LWP phase
	// (1.0 recovers study 1 exactly).
	Efficiency float64
	// SaturationThreads is the parcels-per-node count at which the phase
	// saturates.
	SaturationThreads float64
}

// nodeEfficiency returns the Saavedra-Barrera efficiency of one PIM node
// under this workload, and the saturation point.
func (p Params) nodeEfficiency() (float64, float64, error) {
	if p.RemoteFrac == 0 || p.Host.N == 1 {
		return 1, 1, nil
	}
	// Run length between remote events in LWP terms: the paper's
	// instruction mix with TML-cycle local accesses, expressed in HWP
	// cycles like everything else in the study-1 model.
	eOps := (1 - p.Host.MixLS) / p.Host.MixLS // useful ops per access
	opCycles := p.Host.TLCycle
	accesses := 1 / p.RemoteFrac
	busy := accesses*eOps*opCycles + (accesses-1)*p.Host.TML + p.Host.TML
	mm := analytic.MultithreadModel{
		R: busy,
		L: p.Latency,
		C: p.Overhead.CreateCycles + p.Overhead.AssimilateCycles,
	}
	if err := mm.Validate(); err != nil {
		return 0, 0, err
	}
	// The saturated ceiling R/(R+C) stays below 1: parcel overhead is real
	// work lost, so it remains in the efficiency rather than being
	// normalized away.
	return mm.Efficiency(float64(p.ThreadsPerNode)), mm.SaturationPoint(), nil
}

// Compose stretches a study-1 closed-form result by a given LWP-phase
// efficiency and recomputes the totals under the scenario's execution
// flow. It is the shared composition step beneath Analytic (efficiency
// from the Saavedra-Barrera curve) and AnalyticCalibrated (efficiency
// measured from a parcelsys simulation); the scenario layer's simulation
// backend uses it directly with its own measured efficiency.
func Compose(base hostpim.Result, p Params, eff float64) Result {
	r := Result{Result: base, Efficiency: eff}
	if eff > 0 && eff < 1 {
		r.TimeLWPPhase = base.TimeLWPPhase / eff
	}
	if p.Host.Overlap {
		r.Total = r.TimeHWPPhase
		if r.TimeLWPPhase > r.Total {
			r.Total = r.TimeLWPPhase
		}
	} else {
		r.Total = r.TimeHWPPhase + r.TimeLWPPhase
	}
	if r.Total > 0 {
		r.Gain = r.ControlTime / r.Total
	}
	r.Relative = r.Total / (p.Host.W * p.Host.HWPOpCycles(p.Host.Pmiss))
	return r
}

// Analytic evaluates the hybrid model in closed form: the LWP phase of
// study 1 is stretched by the node efficiency.
func Analytic(p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	base, err := hostpim.Analytic(p.Host)
	if err != nil {
		return Result{}, err
	}
	eff, sat, err := p.nodeEfficiency()
	if err != nil {
		return Result{}, err
	}
	r := Compose(base, p, eff)
	r.SaturationThreads = sat
	return r, nil
}

// CalibratedEfficiency measures the PIM-node busy fraction from an actual
// parcelsys simulation of the LWP phase's communication pattern, instead
// of the closed-form Saavedra-Barrera curve. Horizon is in cycles; the
// measurement uses the study-2 test system with this workload's mix.
func CalibratedEfficiency(p Params, horizon float64, seed uint64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.RemoteFrac == 0 || p.Host.N == 1 {
		return 1, nil
	}
	q := parcelsys.Params{
		Nodes:       p.Host.N,
		Parallelism: p.ThreadsPerNode,
		RemoteFrac:  p.RemoteFrac,
		Latency:     p.Latency,
		MixMem:      p.Host.MixLS,
		MemCycles:   p.Host.TML,
		Overhead:    p.Overhead,
		Horizon:     horizon,
		Seed:        seed,
	}
	r, err := parcelsys.Run(q)
	if err != nil {
		return 0, err
	}
	return 1 - r.Test.IdleFrac, nil
}

// AnalyticCalibrated is Analytic with the efficiency replaced by the
// simulated measurement.
func AnalyticCalibrated(p Params, horizon float64, seed uint64) (Result, error) {
	eff, err := CalibratedEfficiency(p, horizon, seed)
	if err != nil {
		return Result{}, err
	}
	base, err := hostpim.Analytic(p.Host)
	if err != nil {
		return Result{}, err
	}
	return Compose(base, p, eff), nil
}

// EffectiveNB returns the hybrid break-even node count: study 1's NB
// divided by the phase efficiency (a slower effective LWP raises the bar).
func EffectiveNB(p Params) (float64, error) {
	eff, _, err := p.nodeEfficiency()
	if err != nil {
		return 0, err
	}
	if eff <= 0 {
		return 0, fmt.Errorf("hybrid: zero efficiency")
	}
	return p.Host.NB() / eff, nil
}
