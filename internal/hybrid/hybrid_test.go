package hybrid

import (
	"math"
	"testing"

	"repro/internal/hostpim"
	"repro/internal/stats"
)

func TestZeroRemoteRecoversStudy1(t *testing.T) {
	p := DefaultParams()
	p.RemoteFrac = 0
	r, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := hostpim.Analytic(p.Host)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency != 1 {
		t.Errorf("efficiency = %g with no remote traffic", r.Efficiency)
	}
	if math.Abs(r.Total-base.Total) > 1e-9 || math.Abs(r.Gain-base.Gain) > 1e-9 {
		t.Errorf("hybrid (%g, %g) != study 1 (%g, %g)", r.Total, r.Gain, base.Total, base.Gain)
	}
}

func TestSingleNodeRecoversStudy1(t *testing.T) {
	p := DefaultParams()
	p.Host.N = 1
	r, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Efficiency != 1 {
		t.Errorf("efficiency = %g with one node", r.Efficiency)
	}
}

func TestLatencyErodesGain(t *testing.T) {
	prev := math.Inf(1)
	for _, l := range []float64{0, 100, 1000, 10000} {
		p := DefaultParams()
		p.ThreadsPerNode = 1
		p.Latency = l
		r, err := Analytic(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Gain > prev+1e-9 {
			t.Errorf("gain rose with latency at L=%g: %g > %g", l, r.Gain, prev)
		}
		prev = r.Gain
	}
	// At P=1 and large latency, the hybrid gain collapses well below the
	// ideal study-1 value.
	p := DefaultParams()
	p.ThreadsPerNode = 1
	p.Latency = 10000
	r, _ := Analytic(p)
	ideal, _ := hostpim.Analytic(p.Host)
	if r.Gain > ideal.Gain/3 {
		t.Errorf("latency did not bite: hybrid %g vs ideal %g", r.Gain, ideal.Gain)
	}
}

func TestParcelsRestoreGain(t *testing.T) {
	// With enough parcels per node the hybrid gain approaches the ideal
	// (minus the overhead share).
	p := DefaultParams()
	p.Latency = 1000
	p.ThreadsPerNode = 1
	low, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	p.ThreadsPerNode = 64
	high, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	ideal, _ := hostpim.Analytic(p.Host)
	if high.Gain <= low.Gain {
		t.Errorf("parallelism did not help: %g vs %g", high.Gain, low.Gain)
	}
	if high.Gain < 0.9*ideal.Gain {
		t.Errorf("saturated hybrid gain %g far below ideal %g", high.Gain, ideal.Gain)
	}
	if high.Efficiency <= low.Efficiency {
		t.Errorf("efficiency not monotone: %g vs %g", high.Efficiency, low.Efficiency)
	}
}

func TestEffectiveNBRises(t *testing.T) {
	p := DefaultParams()
	p.ThreadsPerNode = 1
	p.Latency = 2000
	nb, err := EffectiveNB(p)
	if err != nil {
		t.Fatal(err)
	}
	if nb <= p.Host.NB() {
		t.Errorf("effective NB %g not above base %g under communication", nb, p.Host.NB())
	}
	p.RemoteFrac = 0
	nb0, err := EffectiveNB(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nb0-p.Host.NB()) > 1e-12 {
		t.Errorf("effective NB %g != base %g with no communication", nb0, p.Host.NB())
	}
}

func TestCalibratedEfficiencyTracksAnalytic(t *testing.T) {
	p := DefaultParams()
	p.Host.N = 8
	p.Latency = 400
	for _, threads := range []int{1, 8, 64} {
		p.ThreadsPerNode = threads
		an, _, err := p.nodeEfficiency()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := CalibratedEfficiency(p, 30000, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(an-sim) > 0.15 {
			t.Errorf("P=%d: analytic efficiency %g vs simulated %g", threads, an, sim)
		}
	}
}

func TestAnalyticCalibratedGain(t *testing.T) {
	p := DefaultParams()
	p.Host.N = 8
	p.Latency = 400
	p.ThreadsPerNode = 8
	an, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := AnalyticCalibrated(p, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(an.Gain, cal.Gain) > 0.2 {
		t.Errorf("analytic gain %g vs calibrated %g", an.Gain, cal.Gain)
	}
}

func TestOverlapComposesWithHybrid(t *testing.T) {
	p := DefaultParams()
	p.Host.Overlap = true
	p.ThreadsPerNode = 1
	p.Latency = 2000
	r, err := Analytic(p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(r.TimeHWPPhase, r.TimeLWPPhase)
	if math.Abs(r.Total-want) > 1e-6 {
		t.Errorf("overlap total %g != max(phases) %g", r.Total, want)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.RemoteFrac = -1 },
		func(p *Params) { p.RemoteFrac = 2 },
		func(p *Params) { p.Latency = -5 },
		func(p *Params) { p.ThreadsPerNode = 0 },
		func(p *Params) { p.Host.N = 0 },
		func(p *Params) { p.Overhead.CreateCycles = -1 },
	}
	for i, mod := range cases {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}
