package isa

import "testing"

// Allocation guards for the machine's hot paths, in the PR 3/4 discipline:
// steady-state stepping, parcel sends, and thread spawn/halt churn must
// run out of the value slabs with zero per-cycle heap allocations.

// mustMachine builds a machine running src with one thread at "main".
func mustMachine(t *testing.T, src string, nodes int) *Machine {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(nodes, 2048, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, err := p.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	m.Nodes[0].StartThread(entry, 0, 0)
	return m
}

// stepN advances the machine n cycles, failing on any execution fault.
func stepN(t *testing.T, m *Machine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStepSteadyStateZeroAllocs(t *testing.T) {
	// A compute/memory loop that never terminates: Step must not allocate.
	m := mustMachine(t, `
main:
    addi r2, r0, 900
loop:
    ld   r3, r2, 0
    addi r3, r3, 1
    st   r3, r2, 0
    jmp  loop
`, 1)
	stepN(t, m, 1000) // warm the slabs
	if avg := testing.AllocsPerRun(200, func() { stepN(t, m, 50) }); avg != 0 {
		t.Errorf("Step steady state allocates %g times per 50 cycles", avg)
	}
}

func TestSpawnHaltChurnZeroAllocs(t *testing.T) {
	// Every thread spawns a successor on the next node and halts: constant
	// spawn/parcel/thread churn. After warmup the thread slabs, free
	// lists, and the in-flight queue are all recycled — zero allocations.
	m := mustMachine(t, `
main:
    nodeid r3
    addi r4, r0, 1
    add  r3, r3, r4      ; next node
    addi r5, r0, nmask
    ld   r6, r5, 0
    and  r3, r3, r6      ; wrap
    addi r5, r0, main
    spawn r0, r3, r5
    halt
nmask: .word 3
`, 4)
	m.Timing.NetLatency = 5
	stepN(t, m, 2000) // warm every slab through several spawn generations
	if avg := testing.AllocsPerRun(200, func() { stepN(t, m, 50) }); avg != 0 {
		t.Errorf("spawn/halt churn allocates %g times per 50 cycles", avg)
	}
}

func TestManyThreadChurnZeroAllocs(t *testing.T) {
	// Parallel spawn fan-out per round: each generation starts several
	// threads per node through parcel delivery while earlier ones halt.
	m := mustMachine(t, `
main:
    nodeid r3
    addi r4, r0, 1
    add  r3, r3, r4
    addi r5, r0, nmask
    ld   r6, r5, 0
    and  r3, r3, r6
    addi r5, r0, work
    spawn r0, r3, r5
    spawn r0, r3, r5
    halt
work:
    addi r7, r0, 900
    ld   r8, r7, 0
    addi r9, r0, main
    nodeid r3
    spawn r0, r3, r9     ; local respawn keeps load constant
    halt
nmask: .word 1
`, 2)
	m.Timing.NetLatency = 3
	m.MaxCycles = 0
	stepN(t, m, 4000)
	if avg := testing.AllocsPerRun(100, func() { stepN(t, m, 100) }); avg != 0 {
		t.Errorf("thread churn allocates %g times per 100 cycles", avg)
	}
}

func TestBurstThenQuiesceCompactsSlab(t *testing.T) {
	// A one-off fan-out of many short-lived threads followed by a long
	// single-thread phase: the slab must compact so the tail phase does
	// not scan hundreds of dead contexts every cycle.
	p, err := Assemble(`
worker:
    halt
main:
    addi r1, r0, 400
loop:
    ld   r2, r1, 0
    jmp  loop
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(1, 2048, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	worker, _ := p.Entry("worker")
	main, _ := p.Entry("main")
	const burst = 500
	for i := 0; i < burst; i++ {
		m.Nodes[0].StartThread(worker, 0, 0)
	}
	m.Nodes[0].StartThread(main, 0, 0)
	stepN(t, m, burst+200) // burst drains, spinner keeps running
	if n := m.Nodes[0]; n.live != 1 {
		t.Fatalf("live = %d after burst drain", n.live)
	}
	if got := len(m.Nodes[0].threads); got >= 64 {
		t.Errorf("slab holds %d contexts after the burst drained; compaction did not run", got)
	}
}

func TestResetReusesSlabs(t *testing.T) {
	// After one full run, Reset + reload + rerun of the same workload must
	// not allocate: the machine is reusable across replications.
	layout := DefaultGUPSLayout()
	layout.Updates = 32
	prog, err := GUPSProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(2, 16384, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			t.Fatal(err)
		}
		entry, _ := prog.Entry("main")
		for i := range m.Nodes {
			m.Nodes[i].StartThread(entry, uint64(i), 0)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm
	first := m.Cycle()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Errorf("Reset+rerun allocates %g times per run", avg)
	}
	if m.Cycle() != first {
		t.Errorf("rerun cycle count drifted: %d vs %d", m.Cycle(), first)
	}
}

func TestPingClosedFormExact(t *testing.T) {
	// PingTotalCycles is the machine's cross-backend anchor: it must match
	// the interpreter cycle for cycle across latencies and round counts.
	for _, lat := range []int64{0, 1, 10, 200, 2000} {
		for _, rounds := range []int{1, 2, 5, 64} {
			p, err := PingProgram(PingLayout{CountAddr: 900, Peer: 1}, rounds)
			if err != nil {
				t.Fatal(err)
			}
			tm := DefaultTiming()
			tm.NetLatency = lat
			m, err := NewMachine(2, 1024, tm)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(p); err != nil {
				t.Fatal(err)
			}
			entry, _ := p.Entry("ping")
			m.Nodes[0].StartThread(entry, uint64(rounds), 0)
			m.MaxCycles = 100_000_000
			cycles, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if want := PingTotalCycles(rounds, lat, tm.MemCycles); cycles != want {
				t.Errorf("lat=%d rounds=%d: machine %d cycles, closed form %d", lat, rounds, cycles, want)
			}
			if got := m.Nodes[0].Mem[900]; got != uint64(rounds) {
				t.Errorf("lat=%d rounds=%d: counted %d round trips", lat, rounds, got)
			}
		}
	}
}

func TestNetAndMemDelayHooks(t *testing.T) {
	// The pluggable delay hooks must displace the flat timing exactly.
	src := `
main:
    addi r1, r0, 1
    addi r2, r0, remote
    spawn r0, r1, r2
    halt
remote:
    addi r3, r0, 900
    ld   r4, r3, 0
    halt
`
	run := func(net func(int, int) int64, mem func(int, uint64, bool) int64) int64 {
		m := mustMachine(t, src, 2)
		m.NetDelay = net
		m.MemDelay = mem
		m.MaxCycles = 100000
		cycles, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	flat := run(nil, nil)
	slowNet := run(func(src, dst int) int64 { return DefaultTiming().NetLatency + 500 }, nil)
	if slowNet-flat != 500 {
		t.Errorf("NetDelay hook shifted cycles by %d, want 500", slowNet-flat)
	}
	slowMem := run(nil, func(node int, addr uint64, wide bool) int64 { return DefaultTiming().MemCycles + 40 })
	if slowMem-flat != 40 {
		t.Errorf("MemDelay hook shifted cycles by %d, want 40", slowMem-flat)
	}
	// Sub-cycle costs clamp to one cycle, never zero or negative stalls.
	fastMem := run(nil, func(node int, addr uint64, wide bool) int64 { return 0 })
	if fastMem >= flat {
		t.Errorf("1-cycle memory (%d) not faster than flat (%d)", fastMem, flat)
	}
}
