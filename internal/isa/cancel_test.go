package isa

import (
	"errors"
	"sync/atomic"
	"testing"
)

// spinSrc is an unconditional infinite loop: without cancellation (or a
// cycle limit) Run would never return.
const spinSrc = "main:\nloop:\n    beq r0, r0, loop\n"

// cancelAfter returns a Cancel hook that fires on the nth poll.
func cancelAfter(n int64) func() bool {
	var polls atomic.Int64
	return func() bool { return polls.Add(1) >= n }
}

// TestCancelStopsRun proves the Cancel hook actually terminates all three
// run paths — per-cycle interpretive, windowed, and parallel PDES — on a
// program that would otherwise spin to the cycle limit.
func TestCancelStopsRun(t *testing.T) {
	const backstop = 5_000_000 // guards the test if cancellation breaks
	cases := []struct {
		name  string
		build func(t *testing.T) *Machine
	}{
		{"interpretive", func(t *testing.T) *Machine {
			m := mustMachine(t, spinSrc, 1)
			m.ForceInterpret = true
			return m
		}},
		{"windowed", func(t *testing.T) *Machine {
			return mustMachine(t, spinSrc, 2)
		}},
		{"parallel", func(t *testing.T) *Machine {
			m := mustMachine(t, spinSrc, 4)
			m.Parallelism = 2
			return m
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := c.build(t)
			m.MaxCycles = backstop
			m.Cancel = cancelAfter(10)
			cycles, err := m.Run()
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v at cycle %d, want ErrCanceled", err, cycles)
			}
			if cycles >= backstop {
				t.Fatalf("run only stopped at the %d-cycle backstop", backstop)
			}
		})
	}
}

// TestNilCancelUnchanged pins that an unset hook changes nothing: the spin
// program still runs out the cycle limit with the usual livelock error.
func TestNilCancelUnchanged(t *testing.T) {
	m := mustMachine(t, spinSrc, 1)
	m.MaxCycles = 1000
	if _, err := m.Run(); err == nil || errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want the cycle-limit error", err)
	}
}
