package isa

import "fmt"

// This file is the pre-decoded dispatch layer. Load/LoadAll translate the
// program image into a dense slab of decoded-op structs (one decop per
// image word, operands unpacked, immediates pre-converted) so the
// per-cycle hot path switches on a dense opcode instead of re-running
// DecodeInstr on the instruction word every issued cycle. Execution
// semantics stay bit-identical to the interpretive path (executeInterp in
// machine.go, reachable via Machine.ForceInterpret or a PC outside the
// decoded span): same cycle counts, same counters, same faults, same
// Trace stream — the decoded-vs-interpretive property tests are the
// oracle.
//
// Two exact accelerations sit on top of the slab:
//
//   - Superinstructions: at pre-decode time every non-stalling ALU op
//     (add..shr, addi, lui, nodeid) with an in-span successor is marked
//     as a fusible head. When the dispatching thread is the only thread
//     that can issue this cycle *and* the next (sole ready thread, every
//     other live thread stalled for >= 2 more cycles, no parcel in
//     flight, no Trace hook), the head and its successor execute in one
//     dispatch and the thread is charged a 1-cycle stall for the hidden
//     issue slot — the schedule any cycle-by-cycle run would produce.
//     This fuses the dominant pairs of the gups/treesum/triad inner
//     loops (addi+ld, add+ld, xor+st, addi+bne back-edges) without a
//     pattern table.
//
//   - Self-modification guard: every ST/AMO/VADD that lands inside the
//     node's program span re-decodes the patched word (NodeState.patch),
//     so stores into code are visible to the very next fetch, exactly as
//     in the interpretive path. Writes to NodeState.Mem made directly by
//     host code (staging input data) must stay outside the program span
//     or be followed by a re-Load.

// decop is one pre-decoded instruction, packed to 16 bytes so a typical
// inner loop's slab spans two cache lines. imm is the op-specific
// pre-converted immediate: the sign-extended addend for addi/ld/st, the
// pre-shifted result for lui, the absolute target for branches/jmp. The
// architectural immediate is not kept — the cold paths that need it
// (Trace, fault re-derivation) re-run DecodeInstr on the memory word.
type decop struct {
	op         Op
	rd, ra, rb uint8
	// fuse marks a fusible superinstruction head: a non-stalling ALU op
	// with a successor inside the decoded span.
	fuse bool
	imm  uint64
}

// decodeOp pre-decodes one memory word. Undecodable words become
// OpInvalid entries; executing one re-derives the interpretive fault.
func decodeOp(w uint64) decop {
	op := Op(w >> 56)
	if op == OpInvalid || op >= numOps {
		return decop{op: OpInvalid}
	}
	raw := int32(uint32(w&0xffffff)<<8) >> 8 // sign-extend 24 bits
	d := decop{
		op: op,
		rd: uint8(w>>52) & 0xf,
		ra: uint8(w>>48) & 0xf,
		rb: uint8(w>>44) & 0xf,
	}
	switch op {
	case OpAddi, OpLd, OpSt:
		d.imm = uint64(int64(raw))
	case OpLui:
		// Mask to the architectural 24 bits before shifting: a negative
		// immediate's sign-extension must not leak into bits 48-55.
		d.imm = uint64(uint32(raw)&0xffffff) << 24
	case OpBeq, OpBne, OpBlt, OpJmp:
		d.imm = uint64(raw) // sign-extends, matching the interpretive path
	}
	return d
}

// fusibleHead reports whether op can head a superinstruction pair: it
// must be non-stalling, non-branching, non-faulting, and touch nothing
// but one destination register, so executing its successor in the same
// dispatch cannot change any observable schedule.
func fusibleHead(op Op) bool {
	switch op {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpAddi, OpLui, OpNodeID:
		return true
	}
	return false
}

// predecode (re)builds the decoded slab for the span [base, base+span)
// of node memory, reusing the slab's backing array so Reset+Load re-runs
// allocate nothing once warm.
func (n *NodeState) predecode(base, span uint64) {
	n.progBase = base
	if uint64(cap(n.decoded)) < span {
		n.decoded = make([]decop, span)
	} else {
		n.decoded = n.decoded[:span]
	}
	for i := uint64(0); i < span; i++ {
		d := decodeOp(n.Mem[base+i])
		d.fuse = fusibleHead(d.op) && i+1 < span
		n.decoded[i] = d
	}
}

// patch re-decodes one word after a VM store into the program span — the
// self-modification guard. Addresses outside the span are a single
// compare (the unsigned subtraction wraps below progBase).
func (n *NodeState) patch(addr uint64) {
	off := addr - n.progBase
	if off >= uint64(len(n.decoded)) {
		return
	}
	d := decodeOp(n.Mem[addr])
	d.fuse = fusibleHead(d.op) && off+1 < uint64(len(n.decoded))
	n.decoded[off] = d
}

// patchWide applies the self-modification guard to a wide store over
// [base, base+WideWords).
func (n *NodeState) patchWide(base uint64) {
	if base >= n.progBase+uint64(len(n.decoded)) || base+WideWords <= n.progBase {
		return
	}
	for i := uint64(0); i < WideWords; i++ {
		n.patch(base + i)
	}
}

// wideCheck bounds-checks a wide access [base, base+WideWords) without
// the base+WideWords-1 overflow wrap a near-max base would hit.
func (n *NodeState) wideCheck(pc, base uint64) error {
	if base >= uint64(len(n.Mem)) || WideWords > uint64(len(n.Mem))-base {
		return fmt.Errorf("isa: node %d pc %d: wide access [%d, +%d) out of %d",
			n.ID, pc, base, WideWords, len(n.Mem))
	}
	return nil
}

// execDecoded executes the pre-decoded op *d at t.PC. The caller
// guarantees d = &n.decoded[t.PC-n.progBase] and t = &n.threads[ti] —
// both already in hand on the hot paths, so the prologue re-indexes
// nothing. fusible is stepNode's proof that this thread also owns the
// next issue slot, enabling superinstruction pairs.
func (m *Machine) execDecoded(n *NodeState, t *Thread, d *decop, ti int, fusible bool) error {
	if d.op == OpInvalid {
		// Re-derive the interpretive fault (before Trace or counters,
		// exactly like a failing DecodeInstr).
		_, err := DecodeInstr(n.Mem[t.PC])
		return fmt.Errorf("isa: node %d pc %d: %w", n.ID, t.PC, err)
	}
	if m.Trace != nil {
		// Re-decode the memory word so the hook sees the exact Instr the
		// interpretive decoder produces (decop drops the raw immediate).
		in, _ := DecodeInstr(n.Mem[t.PC])
		m.Trace(m.cycle, n.ID, t.PC, in)
		fusible = false // the hook must see both halves at their own cycles
	}
	n.Instructions++
	pcNext := t.PC + 1
	regs := &t.Regs

	switch d.op {
	case OpHalt:
		t.done = true
		n.live--
		n.Completed++
		n.free = append(n.free, int32(ti))
		return nil
	case OpAdd:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] + regs[d.rb]
		}
	case OpSub:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] - regs[d.rb]
		}
	case OpMul:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] * regs[d.rb]
		}
	case OpAnd:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] & regs[d.rb]
		}
	case OpOr:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] | regs[d.rb]
		}
	case OpXor:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] ^ regs[d.rb]
		}
	case OpShl:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] << (regs[d.rb] & 63)
		}
	case OpShr:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] >> (regs[d.rb] & 63)
		}
	case OpAddi:
		if d.rd != 0 {
			regs[d.rd] = regs[d.ra] + d.imm
		}
	case OpLui:
		if d.rd != 0 {
			regs[d.rd] = d.imm
		}
	case OpLd:
		addr := regs[d.ra] + d.imm
		if addr >= uint64(len(n.Mem)) {
			return memFault(n, t.PC, addr)
		}
		if d.rd != 0 {
			regs[d.rd] = n.Mem[addr]
		}
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpSt:
		addr := regs[d.ra] + d.imm
		if addr >= uint64(len(n.Mem)) {
			return memFault(n, t.PC, addr)
		}
		n.Mem[addr] = regs[d.rd]
		n.patch(addr)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpBeq:
		if regs[d.ra] == regs[d.rb] {
			pcNext = d.imm
		}
	case OpBne:
		if regs[d.ra] != regs[d.rb] {
			pcNext = d.imm
		}
	case OpBlt:
		if regs[d.ra] < regs[d.rb] {
			pcNext = d.imm
		}
	case OpJmp:
		pcNext = d.imm
	case OpJr:
		pcNext = regs[d.ra]
	case OpAmoAdd:
		addr := regs[d.ra]
		if addr >= uint64(len(n.Mem)) {
			return memFault(n, t.PC, addr)
		}
		v := n.Mem[addr]
		n.Mem[addr] = v + regs[d.rb]
		n.patch(addr)
		if d.rd != 0 {
			regs[d.rd] = v
		}
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpVAdd:
		dst, a, b := regs[d.rd], regs[d.ra], regs[d.rb]
		if err := n.wideCheck(t.PC, dst); err != nil {
			return err
		}
		if err := n.wideCheck(t.PC, a); err != nil {
			return err
		}
		if err := n.wideCheck(t.PC, b); err != nil {
			return err
		}
		for i := uint64(0); i < WideWords; i++ {
			n.Mem[dst+i] = n.Mem[a+i] + n.Mem[b+i]
		}
		n.patchWide(dst)
		t.stall = m.memCost(n, dst, true) - 1
		n.WideOps++
	case OpVSum:
		a := regs[d.ra]
		if err := n.wideCheck(t.PC, a); err != nil {
			return err
		}
		var s uint64
		for i := uint64(0); i < WideWords; i++ {
			s += n.Mem[a+i]
		}
		if d.rd != 0 {
			regs[d.rd] = s
		}
		t.stall = m.memCost(n, a, true) - 1
		n.WideOps++
	case OpSpawn:
		dst := int(regs[d.ra])
		if dst < 0 || dst >= len(m.Nodes) {
			return fmt.Errorf("isa: node %d pc %d: spawn to node %d of %d",
				n.ID, t.PC, dst, len(m.Nodes))
		}
		m.sendParcel(n, dst, regs[d.rb], regs[d.rd])
		t.stall = m.spawnStall(n)
		n.Spawns++
	case OpNodeID:
		if d.rd != 0 {
			regs[d.rd] = uint64(n.ID)
		}
	case OpPrint:
		if m.Output != nil {
			m.Output(n.ID, regs[d.ra])
		}
	default:
		return fmt.Errorf("isa: node %d pc %d: unimplemented op %v", n.ID, t.PC, d.op)
	}
	t.PC = pcNext

	// Superinstruction head: this thread owns the next issue slot too
	// (sole ready thread, every other live thread stalled past the next
	// cycle), so queue the successor to run in the same dispatch. The
	// tail executes at the end of the machine cycle, once every node has
	// stepped — only then is it known that no same-cycle spawn can
	// deliver a competing thread on the next cycle.
	if fusible && d.fuse {
		m.fusePending = append(m.fusePending, fuseRef{n: n, ti: int32(ti)})
	}
	return nil
}

// execFusedTail runs the queued successor of a fused pair, charging the
// thread a 1-cycle stall for the hidden issue slot. Halt would end the
// run a cycle early, spawn would stamp the wrong launch cycle, and print
// would reorder the output stream across nodes, so those stay unfused; a
// faulting successor is un-issued again and replays, interpretively
// identical, at its own cycle.
func (m *Machine) execFusedTail(n *NodeState, ti int32) {
	t := &n.threads[ti]
	off := t.PC - n.progBase
	if off >= uint64(len(n.decoded)) {
		return
	}
	d := &n.decoded[off]
	switch d.op {
	case OpHalt, OpSpawn, OpPrint, OpInvalid:
		return
	}
	before := n.Instructions
	if err := m.execDecoded(n, t, d, int(ti), false); err != nil {
		n.Instructions = before
		return
	}
	t.stall++
}

// memFault is the out-of-range memory access fault, shared by both
// execution paths.
func memFault(n *NodeState, pc, addr uint64) error {
	return fmt.Errorf("isa: node %d pc %d: memory access %d out of %d",
		n.ID, pc, addr, len(n.Mem))
}
