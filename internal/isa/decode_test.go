package isa

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"
)

// Differential and regression tests for the pre-decoded dispatch layer
// (decode.go): the decoded slab must be observationally identical to the
// per-cycle interpretive path, stay coherent under self-modifying code,
// and must not fossilize either of the two interpreter bugs fixed
// alongside it (the wide-op bounds-check overflow wrap and the LUI
// immediate sign-extension leak).

// runBoth runs the same freshly-built machine twice — decoded dispatch
// and ForceInterpret — and hands each run's machine to check.
func runBoth(t *testing.T, build func(t *testing.T) *Machine, check func(t *testing.T, m *Machine, err error)) {
	t.Helper()
	for _, fi := range []bool{false, true} {
		name := "decoded"
		if fi {
			name = "interpretive"
		}
		t.Run(name, func(t *testing.T) {
			m := build(t)
			m.ForceInterpret = fi
			_, err := m.Run()
			check(t, m, err)
		})
	}
}

// TestWideBoundsOverflowWrapFaults pins the crash fix: a wide op whose
// base is near uint64 max made the old bounds check (base+WideWords-1)
// wrap below the memory size, bypassing the fault path and panicking on
// the slab index. Both dispatch paths must return a clean fault.
func TestWideBoundsOverflowWrapFaults(t *testing.T) {
	for _, src := range []string{
		"main:\n    addi r1, r0, -1\n    vsum r2, r1\n    halt\n",
		"main:\n    addi r1, r0, -1\n    vadd r1, r1, r1\n    halt\n",
		"main:\n    addi r1, r0, -7\n    vsum r2, r1\n    halt\n",
	} {
		runBoth(t,
			func(t *testing.T) *Machine {
				m := mustMachine(t, src, 1)
				m.MaxCycles = 1000
				return m
			},
			func(t *testing.T, m *Machine, err error) {
				if err == nil {
					t.Errorf("wrapping wide access did not fault:\n%s", src)
				}
			})
	}
}

// TestLuiNegativeImmediate pins the encoding fix: LUI of a negative
// 24-bit immediate used to let the sign-extension bits leak into result
// bits 48-55. The architectural result is the 24 raw immediate bits
// shifted into bits 24-47, identically on both dispatch paths.
func TestLuiNegativeImmediate(t *testing.T) {
	src := "main:\n    lui r1, -1\n    lui r2, 4096\n    lui r3, -4096\n    halt\n"
	runBoth(t,
		func(t *testing.T) *Machine {
			m := mustMachine(t, src, 1)
			m.MaxCycles = 100
			return m
		},
		func(t *testing.T, m *Machine, err error) {
			if err != nil {
				t.Fatal(err)
			}
			regs := &m.Nodes[0].threads[0].Regs
			if want := uint64(0xffffff) << 24; regs[1] != want {
				t.Errorf("lui -1: r1 = %#x, want %#x", regs[1], want)
			}
			if want := uint64(4096) << 24; regs[2] != want {
				t.Errorf("lui 4096: r2 = %#x, want %#x", regs[2], want)
			}
			if want := uint64(0xffffff&-4096) << 24; regs[3] != want {
				t.Errorf("lui -4096: r3 = %#x, want %#x", regs[3], want)
			}
		})
}

// TestSelfModifyingStoreRepatches stores a replacement instruction word
// over a later slot of the program span and then executes it: the
// self-modification guard must re-decode the slab entry, so the decoded
// path sees the new instruction exactly like the interpretive one.
func TestSelfModifyingStoreRepatches(t *testing.T) {
	patch := Instr{Op: OpAddi, Rd: 3, Ra: 0, Imm: 7}.Encode()
	src := fmt.Sprintf(`
main:
    addi r1, r0, patch
    ld r2, r1, 0
    addi r4, r0, target
    st r2, r4, 0
target:
    addi r3, r0, 1
    halt
patch:
    .word %d
`, patch)
	runBoth(t,
		func(t *testing.T) *Machine {
			m := mustMachine(t, src, 1)
			m.MaxCycles = 1000
			return m
		},
		func(t *testing.T, m *Machine, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Nodes[0].threads[0].Regs[3]; got != 7 {
				t.Errorf("patched instruction not executed: r3 = %d, want 7", got)
			}
		})
}

// TestSelfModifyingAmoRepatches is the read-modify-write variant: AMOADD
// bumps an in-span instruction word's immediate field in place.
func TestSelfModifyingAmoRepatches(t *testing.T) {
	src := `
main:
    addi r1, r0, target
    addi r2, r0, 6
    amoadd r0, r1, r2
target:
    addi r3, r0, 1
    halt
`
	runBoth(t,
		func(t *testing.T) *Machine {
			m := mustMachine(t, src, 1)
			m.MaxCycles = 1000
			return m
		},
		func(t *testing.T, m *Machine, err error) {
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Nodes[0].threads[0].Regs[3]; got != 7 {
				t.Errorf("amo-patched immediate not executed: r3 = %d, want 7", got)
			}
		})
}

// TestSelfModifyingWideClobberFaults overwrites a block of in-span words
// with a VADD whose operands produce undecodable opcodes, then jumps into
// the block: patchWide must invalidate the decoded entries so both paths
// fault identically instead of executing stale decodes.
func TestSelfModifyingWideClobberFaults(t *testing.T) {
	var data string
	for i := 0; i < WideWords; i++ {
		data += "    .word 0x7f00000000000000\n"
	}
	var hole string
	for i := 0; i < WideWords; i++ {
		hole += "    .word 0\n"
	}
	src := "main:\n    addi r1, r0, dst\n    addi r2, r0, srca\n" +
		"    vadd r1, r2, r2\n    jmp dst\ndst:\n" + hole + "srca:\n" + data
	var errs []string
	runBoth(t,
		func(t *testing.T) *Machine {
			m := mustMachine(t, src, 1)
			m.MaxCycles = 1000
			return m
		},
		func(t *testing.T, m *Machine, err error) {
			if err == nil {
				t.Fatal("jump into clobbered code did not fault")
			}
			errs = append(errs, err.Error())
		})
	if len(errs) == 2 && errs[0] != errs[1] {
		t.Errorf("fault diverged between paths:\ndecoded:      %s\ninterpretive: %s", errs[0], errs[1])
	}
}

// kernelBuilders constructs each builtin kernel (plus the parcel ping) as
// a fresh loaded machine at the given network latency — the corpus for
// the dispatch-equivalence property tests below.
func kernelBuilders(lat int64) map[string]func(t *testing.T) *Machine {
	timing := DefaultTiming()
	timing.NetLatency = lat
	return map[string]func(t *testing.T) *Machine{
		"treesum": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultTreeSumLayout()
			prog, err := TreeSumProgram(8, layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(8, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			for i, n := range m.Nodes {
				for k := 0; k < layout.DataWords; k++ {
					n.Mem[layout.DataBase+uint64(k)] = uint64(i*layout.DataWords + k + 1)
				}
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[0].StartThread(entry, 0, 0)
			m.MaxCycles = 10_000_000
			return m
		},
		"triad": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultTriadLayout()
			prog, err := StreamTriadProgram(layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(1, 32768, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < layout.Words; i++ {
				m.Nodes[0].Mem[layout.A+uint64(i)] = uint64(i)
				m.Nodes[0].Mem[layout.B+uint64(i)] = uint64(3 * i)
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[0].StartThread(entry, 0, 0)
			m.MaxCycles = 10_000_000
			return m
		},
		"chase": func(t *testing.T) *Machine {
			t.Helper()
			const nodes, elems = 8, 24
			layout := DefaultChaseLayout()
			prog, err := DistributedChaseProgram(layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(nodes, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			type loc struct {
				node int
				addr uint64
			}
			chain := make([]loc, elems)
			for i := range chain {
				chain[i] = loc{node: (i * 5) % nodes, addr: uint64(0x400 + 2*i)}
			}
			for i, e := range chain {
				link := uint64(0)
				if i+1 < len(chain) {
					nxt := chain[i+1]
					link = ChaseLink(uint64(nxt.node), nxt.addr)
				}
				m.Nodes[e.node].Mem[e.addr] = link
				m.Nodes[e.node].Mem[e.addr+1] = uint64(i + 1)
			}
			entry, err := prog.Entry("chase")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[chain[0].node].StartThread(entry, ChasePack(0, chain[0].addr), 0)
			m.MaxCycles = 10_000_000
			return m
		},
		"gups": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultGUPSLayout()
			layout.Updates = 64
			prog, err := GUPSProgram(layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(2, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range m.Nodes {
				n.StartThread(entry, uint64(n.ID)*3+1, 0)
				n.StartThread(entry, uint64(n.ID)*3+2, 0)
			}
			m.MaxCycles = 10_000_000
			return m
		},
		"ping": func(t *testing.T) *Machine {
			t.Helper()
			prog, err := PingProgram(DefaultPingLayout(), 3)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(2, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			entry, err := prog.Entry("ping")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[0].StartThread(entry, 3, 0)
			m.MaxCycles = 10_000_000
			return m
		},
	}
}

// TestDecodedTraceEquivalence is the property test from the tentpole's
// acceptance: with a Trace hook attached, the decoded dispatch and the
// per-cycle interpretive path must emit byte-identical trace streams —
// every (cycle, node, pc, instruction) tuple, in order — across all the
// builtin kernels.
func TestDecodedTraceEquivalence(t *testing.T) {
	trace := func(t *testing.T, build func(t *testing.T) *Machine, fi bool) []byte {
		t.Helper()
		m := build(t)
		m.ForceInterpret = fi
		var buf bytes.Buffer
		m.Trace = func(cycle int64, node int, pc uint64, in Instr) {
			fmt.Fprintf(&buf, "%d %d %d %v\n", cycle, node, pc, in)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, build := range kernelBuilders(DefaultTiming().NetLatency) {
		t.Run(name, func(t *testing.T) {
			decoded := trace(t, build, false)
			interp := trace(t, build, true)
			if len(decoded) == 0 {
				t.Fatal("empty trace")
			}
			if !bytes.Equal(decoded, interp) {
				t.Errorf("trace streams diverge (%d vs %d bytes)", len(decoded), len(interp))
			}
		})
	}
}

// TestDecodedRunEquivalence is the no-hook variant: with tracing off the
// decoded dispatch takes the windowed fast path, and its observable
// outcome — cycle count, every per-node counter, and all of memory —
// must match a ForceInterpret run exactly, across kernels and network
// latencies.
func TestDecodedRunEquivalence(t *testing.T) {
	fingerprint := func(t *testing.T, build func(t *testing.T) *Machine, fi bool) string {
		t.Helper()
		m := build(t)
		m.ForceInterpret = fi
		cycles, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		var b bytes.Buffer
		fmt.Fprintf(&b, "cycles=%d\n", cycles)
		for _, n := range m.Nodes {
			for _, w := range n.Mem {
				var raw [8]byte
				for i := range raw {
					raw[i] = byte(w >> (8 * i))
				}
				h.Write(raw[:])
			}
			fmt.Fprintf(&b, "node %d: instr=%d mem=%d wide=%d spawn=%d busy=%d idle=%d done=%d\n",
				n.ID, n.Instructions, n.MemOps, n.WideOps, n.Spawns,
				n.BusyCycles, n.IdleCycles, n.Completed)
		}
		fmt.Fprintf(&b, "memhash=%#x\n", h.Sum64())
		return b.String()
	}
	for _, lat := range []int64{0, 1, 200} {
		builders := kernelBuilders(lat)
		for name, build := range builders {
			t.Run(fmt.Sprintf("%s/lat%d", name, lat), func(t *testing.T) {
				decoded := fingerprint(t, build, false)
				interp := fingerprint(t, build, true)
				if decoded != interp {
					t.Errorf("run outcomes diverge:\n--- decoded ---\n%s--- interpretive ---\n%s", decoded, interp)
				}
			})
		}
	}
}

// TestDecodedStepZeroAllocs pins the decoded dispatch's allocation
// discipline: steady-state stepping through the slab allocates nothing.
func TestDecodedStepZeroAllocs(t *testing.T) {
	m := mustMachine(t, `
main:
    addi r1, r0, 64
loop:
    addi r2, r2, 3
    xor r3, r2, r1
    st r3, r0, 600
    ld r4, r0, 600
    addi r1, r1, -1
    bne r1, r0, loop
    jmp main
`, 1)
	stepN(t, m, 200) // warm every path
	if avg := testing.AllocsPerRun(100, func() { stepN(t, m, 50) }); avg != 0 {
		t.Errorf("decoded stepping allocates %v per run, want 0", avg)
	}
}

// TestPredecodeRebuildZeroAllocs pins the slab rebuild: Reset followed by
// a re-Load must reuse the decoded slab's backing array (and every other
// machine slab) without allocating once warm.
func TestPredecodeRebuildZeroAllocs(t *testing.T) {
	prog, err := Assemble("main:\n    addi r1, r0, 5\nloop:\n    addi r1, r1, -1\n    bne r1, r0, loop\n    halt\n")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(2, 2048, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	entry, err := prog.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			t.Fatal(err)
		}
		m.Nodes[0].StartThread(entry, 0, 0)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the slabs
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Errorf("Reset+Load rebuild allocates %v per run, want 0", avg)
	}
}
