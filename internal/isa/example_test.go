package isa_test

import (
	"fmt"

	"repro/internal/isa"
)

// Assemble and run a small program on a single PIM node.
func ExampleAssemble() {
	prog, err := isa.Assemble(`
main:
    addi r1, r0, 6
    addi r2, r0, 7
    mul  r3, r1, r2
    print r3
    halt
`)
	if err != nil {
		panic(err)
	}
	m, err := isa.NewMachine(1, 1024, isa.DefaultTiming())
	if err != nil {
		panic(err)
	}
	if err := m.LoadAll(prog); err != nil {
		panic(err)
	}
	m.Output = func(node int, v uint64) { fmt.Println("result:", v) }
	entry, _ := prog.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1000
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	// Output: result: 42
}

// The reference tree-sum program fans out parcel-spawned workers and
// reduces with wide-word vsum instructions.
func ExampleTreeSumProgram() {
	const nodes = 4
	layout := isa.DefaultTreeSumLayout()
	prog, err := isa.TreeSumProgram(nodes, layout)
	if err != nil {
		panic(err)
	}
	m, err := isa.NewMachine(nodes, 16384, isa.DefaultTiming())
	if err != nil {
		panic(err)
	}
	if err := m.LoadAll(prog); err != nil {
		panic(err)
	}
	for _, n := range m.Nodes {
		for k := 0; k < layout.DataWords; k++ {
			n.Mem[layout.DataBase+uint64(k)] = 1 // all ones: total = nodes*words
		}
	}
	m.Output = func(node int, v uint64) { fmt.Println("tree sum:", v) }
	entry, _ := prog.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1_000_000
	if _, err := m.Run(); err != nil {
		panic(err)
	}
	// Output: tree sum: 1024
}
