package isa

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

// This file extends the PDES determinism suite to faulted runs: every
// fault matrix entry (drop/corrupt/dup/jitter/straggler, alone and
// mixed) must keep the byte-identical-under-parallelism guarantee, the
// reliable retransmit protocol must complete every builtin under loss
// with verified results, and degraded runs must die with a diagnosable
// error that is itself identical across execution modes.

func mustFaultPlan(t *testing.T, cfg fault.Config) *fault.Plan {
	t.Helper()
	p, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// faultMatrix is the injector configuration axis of the determinism
// matrix: each fault class alone, then all of them together.
func faultMatrix() map[string]fault.Config {
	return map[string]fault.Config{
		"drop":      {Seed: 11, DropRate: 0.25},
		"corrupt":   {Seed: 11, CorruptRate: 0.2},
		"dup":       {Seed: 11, DupRate: 0.3},
		"jitter":    {Seed: 11, JitterMax: 9},
		"straggler": {Seed: 11, StragglerFactor: 3},
		"mixed":     {Seed: 11, DropRate: 0.12, CorruptRate: 0.08, DupRate: 0.15, JitterMax: 6, StragglerFactor: 2},
	}
}

// faultModes trims the execution-mode matrix to the acceptance set:
// per-cycle oracle, serial windowed, and P ∈ {1, 2, 4} with both
// contiguous and strided partitions.
func faultModes() []struct {
	name  string
	apply func(m *Machine)
} {
	keep := map[string]bool{
		"interp": true, "serial": true,
		"p1-contig": true, "p2-contig": true, "p4-contig": true, "p4-strided": true,
	}
	var out []struct {
		name  string
		apply func(m *Machine)
	}
	for _, mode := range parallelModes() {
		if keep[mode.name] {
			out = append(out, mode)
		}
	}
	return out
}

// TestParallelFaultMatrix is the tentpole's acceptance property: under
// every nonzero fault mix, reliable-delivery runs of all four builtins
// complete, and the full fingerprint — cycles, every counter including
// the delivery counters, and all memory — is byte-identical across the
// per-cycle, windowed, and parallel schedules. (The Test name keeps the
// CI "TestParallel" race-step prefix riding.)
func TestParallelFaultMatrix(t *testing.T) {
	for _, topo := range []string{"flat", "torus"} {
		for cfgName, cfg := range faultMatrix() {
			for progName, build := range parallelPrograms(t) {
				t.Run(topo+"/"+cfgName+"/"+progName, func(t *testing.T) {
					var want, wantMode string
					for _, mode := range faultModes() {
						m := build(t)
						applyTopology(t, m, topo)
						m.Fault = mustFaultPlan(t, cfg)
						m.Reliable = true
						mode.apply(m)
						got := runFingerprint(t, m)
						if want == "" {
							want, wantMode = got, mode.name
							continue
						}
						if got != want {
							t.Fatalf("%s diverges from %s:\n--- %s ---\n%s--- %s ---\n%s",
								mode.name, wantMode, mode.name, got, wantMode, want)
						}
					}
				})
			}
		}
	}
}

// TestParallelFaultUnreliableDeterminism covers the datagram mode, where
// faults change program behavior (duplicates start real threads): with a
// loss-free mix (dup + jitter) every builtin still terminates, and the
// altered schedule is still byte-identical across execution modes.
func TestParallelFaultUnreliableDeterminism(t *testing.T) {
	cfg := fault.Config{Seed: 23, DupRate: 0.35, JitterMax: 7}
	for progName, build := range parallelPrograms(t) {
		t.Run(progName, func(t *testing.T) {
			var want, wantMode string
			for _, mode := range faultModes() {
				m := build(t)
				applyTopology(t, m, "torus")
				m.Fault = mustFaultPlan(t, cfg)
				m.Reliable = false
				mode.apply(m)
				got := runFingerprint(t, m)
				if want == "" {
					want, wantMode = got, mode.name
					continue
				}
				if got != want {
					t.Fatalf("%s diverges from %s:\n--- %s ---\n%s--- %s ---\n%s",
						mode.name, wantMode, mode.name, got, wantMode, want)
				}
			}
		})
	}
}

// TestFaultZeroRateNoOp: an armed plan whose every rate is zero must be
// indistinguishable from no plan at all — same fingerprint, byte for
// byte, serially and in parallel.
func TestFaultZeroRateNoOp(t *testing.T) {
	for progName, build := range parallelPrograms(t) {
		t.Run(progName, func(t *testing.T) {
			baseline := func(parallelism int) string {
				m := build(t)
				applyTopology(t, m, "torus")
				m.Parallelism = parallelism
				return runFingerprint(t, m)
			}
			zeroed := func(parallelism int) string {
				m := build(t)
				applyTopology(t, m, "torus")
				m.Fault = mustFaultPlan(t, fault.Config{Seed: 99})
				m.Reliable = true
				m.Parallelism = parallelism
				return runFingerprint(t, m)
			}
			for _, p := range []int{1, 4} {
				if got, want := zeroed(p), baseline(p); got != want {
					t.Fatalf("zero-rate plan changed the run at P=%d:\n--- zeroed ---\n%s--- baseline ---\n%s", p, got, want)
				}
			}
		})
	}
}

// TestFaultReliableTreeSumVerified drives the spawn tree under heavy
// loss and checks the *answer*, not just determinism: the fan-in sum is
// exactly right, every parcel was eventually delivered, and the retry
// accounting balances (each retransmission pays for one drop or
// corruption).
func TestFaultReliableTreeSumVerified(t *testing.T) {
	const nodes = 16
	layout := DefaultTreeSumLayout()
	prog, err := TreeSumProgram(nodes, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(nodes, 16384, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for i, n := range m.Nodes {
		for k := 0; k < layout.DataWords; k++ {
			v := uint64(i*layout.DataWords + k + 1)
			n.Mem[layout.DataBase+uint64(k)] = v
			want += v
		}
	}
	entry, err := prog.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 10_000_000
	m.Fault = mustFaultPlan(t, fault.Config{Seed: 5, DropRate: 0.3, CorruptRate: 0.15, DupRate: 0.2, JitterMax: 10})
	m.Reliable = true
	if _, err := m.Run(); err != nil {
		t.Fatalf("reliable run under 45%% attempt loss failed: %v", err)
	}
	if got := m.Nodes[0].Mem[layout.AccAddr]; got != want {
		t.Fatalf("tree sum = %d, want %d", got, want)
	}
	s := m.DeliveryStats()
	if s.Sent == 0 {
		t.Fatal("no parcels routed through the fault plan")
	}
	if s.Lost != 0 || s.Delivered != s.Sent {
		t.Fatalf("delivery incomplete: %+v", s)
	}
	if s.Retries == 0 {
		t.Fatalf("no retries under 45%% per-attempt loss: %+v", s)
	}
	if s.Retries != s.Drops+s.Corrupts {
		t.Fatalf("retry accounting off: retries=%d, drops+corrupts=%d", s.Retries, s.Drops+s.Corrupts)
	}
}

// TestFaultUnreliableTotalLossLivelock: with drop=1 in datagram mode no
// remote parcel ever lands, so the treesum root spins on a fan-in that
// can never complete until the cycle limit — and the enriched livelock
// error (cycle count, live threads, in-flight parcels) is the same
// string on every execution path, which is what makes degraded runs
// diagnosable from per-point error capture. (Ping would not do here: its
// sender halts right after the spawn, so losing the parcel ends the run
// quietly instead of hanging it.)
func TestFaultUnreliableTotalLossLivelock(t *testing.T) {
	build := parallelPrograms(t)["treesum"]
	errString := func(mode func(m *Machine)) string {
		m := build(t)
		applyTopology(t, m, "torus")
		m.Fault = mustFaultPlan(t, fault.Config{Seed: 1, DropRate: 1})
		m.Reliable = false
		m.MaxCycles = 5000
		mode(m)
		_, err := m.Run()
		if err == nil {
			t.Fatal("total-loss run completed")
		}
		return err.Error()
	}
	want := errString(func(m *Machine) { m.ForceInterpret = true })
	for _, sub := range []string{"exceeded 5000 cycles", "at cycle 5000", "live threads", "parcels in flight"} {
		if !strings.Contains(want, sub) {
			t.Fatalf("livelock error %q missing %q", want, sub)
		}
	}
	if got := errString(func(m *Machine) {}); got != want {
		t.Fatalf("windowed livelock error diverges:\n got %q\nwant %q", got, want)
	}
	if got := errString(func(m *Machine) { m.Parallelism = 4 }); got != want {
		t.Fatalf("parallel livelock error diverges:\n got %q\nwant %q", got, want)
	}
}

// TestFaultLivelockErrorDetail pins the satellite on a fault-free run: a
// too-small MaxCycles reports the cycle count and per-node live threads
// identically on the serial and parallel paths.
func TestFaultLivelockErrorDetail(t *testing.T) {
	build := parallelPrograms(t)["treesum"]
	errString := func(mode func(m *Machine)) string {
		m := build(t)
		applyTopology(t, m, "torus")
		m.MaxCycles = 200
		mode(m)
		_, err := m.Run()
		if err == nil {
			t.Fatal("treesum finished in 200 cycles?")
		}
		return err.Error()
	}
	want := errString(func(m *Machine) { m.ForceInterpret = true })
	if !strings.Contains(want, "exceeded 200 cycles") || !strings.Contains(want, "node") {
		t.Fatalf("livelock error %q lacks cycle/per-node detail", want)
	}
	for _, p := range []int{1, 4} {
		p := p
		if got := errString(func(m *Machine) { m.Parallelism = p }); got != want {
			t.Fatalf("P=%d livelock error diverges:\n got %q\nwant %q", p, got, want)
		}
	}
}

// TestFaultCrashDeterminism: a planned node crash stops the run with the
// same crash error — node, cycle, machine state — on every path.
func TestFaultCrashDeterminism(t *testing.T) {
	build := parallelPrograms(t)["treesum"]
	errString := func(mode func(m *Machine)) string {
		m := build(t)
		applyTopology(t, m, "torus")
		m.Fault = mustFaultPlan(t, fault.Config{Seed: 2, CrashNode: 3, CrashCycle: 40})
		mode(m)
		_, err := m.Run()
		if err == nil {
			t.Fatal("crashed run reported success")
		}
		return err.Error()
	}
	want := errString(func(m *Machine) { m.ForceInterpret = true })
	if !strings.Contains(want, "node 3 crashed at cycle 40") {
		t.Fatalf("crash error %q lacks node/cycle attribution", want)
	}
	if got := errString(func(m *Machine) {}); got != want {
		t.Fatalf("windowed crash error diverges:\n got %q\nwant %q", got, want)
	}
	if got := errString(func(m *Machine) { m.Parallelism = 4 }); got != want {
		t.Fatalf("parallel crash error diverges:\n got %q\nwant %q", got, want)
	}
}

// TestFaultStragglerSlowsRun: straggler scaling must actually cost
// cycles — the same workload with a slow subset takes strictly longer —
// while a factor-1 plan is a no-op.
func TestFaultStragglerSlowsRun(t *testing.T) {
	run := func(factor int64) int64 {
		m := parallelPrograms(t)["gups"](t)
		if factor > 0 {
			plan := mustFaultPlan(t, fault.Config{Seed: 4, StragglerFactor: factor, StragglerFrac: 0.5})
			slow := 0
			for i := range m.Nodes {
				if plan.Straggler(i) {
					slow++
				}
			}
			if factor > 1 && (slow == 0 || slow == len(m.Nodes)) {
				t.Fatalf("straggler subset degenerate: %d of %d nodes", slow, len(m.Nodes))
			}
			m.Fault = plan
		}
		cycles, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	base := run(0)
	if same := run(1); same != base {
		t.Fatalf("factor-1 straggler plan changed cycles: %d vs %d", same, base)
	}
	if slow := run(6); slow <= base {
		t.Fatalf("factor-6 stragglers did not slow the run: %d vs %d cycles", slow, base)
	}
}
