package isa

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzAsmRoundTrip feeds arbitrary text to the assembler. Anything that
// assembles must disassemble and re-assemble to the identical image:
// assemble(src) -> listing -> assemble(listing) == canonical image. The
// canonical form re-encodes decodable words so that junk in the unused
// instruction bits (possible via .word) doesn't count as a difference.
func FuzzAsmRoundTrip(f *testing.F) {
	seeds := []string{
		"main:\n    addi r1, r0, 42\n    halt\n",
		"main:\n    addi r1, r0, 3\nloop:\n    addi r1, r1, -1\n    bne r1, r0, loop\n    halt\n",
		"    jmp main\n    .org 10\ndata:\n    .word 7\n    .word data\n    .org 20\nmain:\n    halt\n",
		"main:\n    lui r2, 255\n    ld r3, r2, -8\n    st r3, r2, 0\n    vadd r1, r2, r3\n    vsum r4, r1\n    halt\n",
		"main:\n    nodeid r3\n    addi r5, r0, main\n    spawn r0, r3, r5\n    print r3\n    halt\n",
		"a: b: c: halt ; many labels\n.word 0x5851f42d4c957f2d\n",
		".org 100\nx:\n    amoadd r5, r3, r4\n    jr r5\n    beq r1, r2, x\n    blt r1, r2, x\n",
		// Negative LUI immediate: the sign-extension-leak reproducer. The
		// listing fixed point is what pins the encoding (Imm renders as
		// -1, re-assembles to the same masked word).
		"main:\n    lui r1, -1\n    halt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble(src)
		if err != nil {
			return // rejected inputs just must not panic / OOM
		}
		// Disassemble must render every program without panicking.
		if Disassemble(p1) == "" && len(p1.Words) > 0 {
			t.Fatal("empty disassembly of a non-empty program")
		}
		listing := reassemblableListing(p1)
		p2, err := Assemble(listing)
		if err != nil {
			t.Fatalf("listing does not re-assemble: %v\n--- source ---\n%s\n--- listing ---\n%s", err, src, listing)
		}
		if p2.Origin != p1.Origin {
			t.Fatalf("origin changed: %d -> %d", p1.Origin, p2.Origin)
		}
		if len(p2.Words) != len(p1.Words) {
			t.Fatalf("image length changed: %d -> %d", len(p1.Words), len(p2.Words))
		}
		for i := range p1.Words {
			if p2.Words[i] != canonicalWord(p1.Words[i]) {
				t.Fatalf("word %d changed: %#x -> %#x (canonical %#x)\n--- listing ---\n%s",
					i, p1.Words[i], p2.Words[i], canonicalWord(p1.Words[i]), listing)
			}
		}
	})
}

// reassemblableListing renders a program as assembler input: one
// instruction or .word directive per line, prefixed by the origin. (The
// human-facing Disassemble listing carries address prefixes, so it is not
// itself valid input.)
func reassemblableListing(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".org %d\n", p.Origin)
	for _, w := range p.Words {
		if in, err := DecodeInstr(w); err == nil {
			fmt.Fprintf(&b, "%s\n", in)
		} else {
			fmt.Fprintf(&b, ".word %d\n", w)
		}
	}
	return b.String()
}

// canonicalWord re-encodes decodable words, zeroing the unused bits the
// textual rendering cannot carry.
func canonicalWord(w uint64) uint64 {
	if in, err := DecodeInstr(w); err == nil {
		return in.Canonical().Encode()
	}
	return w
}

// FuzzMachineExecute runs arbitrary words as a program image: whatever the
// bytes, the interpreter must fault cleanly (error) or halt, never panic
// or run away past MaxCycles.
func FuzzMachineExecute(f *testing.F) {
	good, _ := Assemble("main:\n addi r1, r0, 9\n st r1, r0, 100\n halt\n")
	if good != nil {
		var bs []byte
		for _, w := range good.Words {
			for i := 0; i < 8; i++ {
				bs = append(bs, byte(w>>(8*i)))
			}
		}
		f.Add(bs)
	}
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	// The wide-op bounds-wrap reproducer: a near-max base used to slip
	// past the base+WideWords-1 overflow and panic the VM.
	wrap, _ := Assemble("main:\n addi r1, r0, -1\n vsum r2, r1\n halt\n")
	if wrap != nil {
		var bs []byte
		for _, w := range wrap.Words {
			for i := 0; i < 8; i++ {
				bs = append(bs, byte(w>>(8*i)))
			}
		}
		f.Add(bs)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 8*512 {
			return
		}
		words := make([]uint64, (len(raw)+7)/8)
		for i, b := range raw {
			words[i/8] |= uint64(b) << (8 * (i % 8))
		}
		m, err := NewMachine(2, 1024, DefaultTiming())
		if err != nil {
			t.Fatal(err)
		}
		prog := &Program{Words: words, Origin: 0}
		if err := m.LoadAll(prog); err != nil {
			t.Fatal(err)
		}
		m.Nodes[0].StartThread(0, 0, 0)
		m.MaxCycles = 5000
		if _, err := m.Run(); err == nil {
			// Fine: the random program halted cleanly.
			return
		}
	})
}
