// Package isa implements a lightweight-processor instruction set in the
// style of the PIM Lite / EXECUBE lineage the paper builds on (§2.2):
// a small RISC core bonded to a memory bank, fine-grain multithreading in
// the Tera/HEP tradition (Burton Smith, refs [29][30]), row-buffer-wide
// SIMD memory operations, and SPAWN — a parcel-send instruction that
// starts a thread at a code block on a remote node (message-driven
// computation, §4.1).
//
// The package provides the instruction encoding, a two-pass assembler for
// a textual assembly language, a disassembler, and (in machine.go) a
// deterministic cycle-driven multi-node interpreter with the Table 1
// timing parameters. Loaded program images are pre-decoded into per-node
// slabs (decode.go) for direct dispatch — with superinstruction fusion of
// fusible pairs and a self-modification guard that re-decodes entries
// clobbered by in-span stores — while Machine.ForceInterpret keeps the
// per-cycle decode path alive as a differential-testing oracle.
//
// The parcel network can run under deterministic fault injection
// (Machine.Fault, an internal/fault plan): per-attempt drop, corruption,
// duplication, and delay jitter, per-node straggler slowdown, and a
// planned crash cycle. With Machine.Reliable the send path runs a
// seq/ack retransmit protocol whose every attempt's fate is resolved
// analytically at send time from the parcel's identity (sent cycle,
// source, sequence number) — never from execution order — so faulted
// runs stay byte-identical across the interpreted, windowed, and
// parallel (PDES) execution paths; per-node counters and
// Machine.DeliveryStats expose the degradation.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is an opcode.
type Op uint8

// Opcodes. Values are part of the instruction encoding. Opcode 0 is
// deliberately invalid so that executing zeroed memory faults instead of
// silently halting.
const (
	// OpInvalid is the all-zeroes encoding; executing it is a fault.
	OpInvalid Op = iota
	// OpHalt ends the executing thread.
	OpHalt
	// OpAdd rd = ra + rb. OpSub, OpMul, OpAnd, OpOr, OpXor likewise.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	// OpShl rd = ra << (rb & 63); OpShr logical right shift.
	OpShl
	OpShr
	// OpAddi rd = ra + imm (sign-extended 24-bit immediate).
	OpAddi
	// OpLui rd = imm << 24 (load upper immediate).
	OpLui
	// OpLd rd = mem[ra + imm].
	OpLd
	// OpSt mem[ra + imm] = rd.
	OpSt
	// OpBeq if ra == rb jump to imm (absolute instruction address).
	OpBeq
	// OpBne if ra != rb jump to imm.
	OpBne
	// OpBlt if ra < rb (unsigned) jump to imm.
	OpBlt
	// OpJmp jump to imm.
	OpJmp
	// OpJr jump to address in ra.
	OpJr
	// OpAmoAdd rd = mem[ra]; mem[ra] += rb (atomic at the node).
	OpAmoAdd
	// OpVAdd wide add: mem[rd..rd+W) = mem[ra..ra+W) + mem[rb..rb+W).
	OpVAdd
	// OpVSum rd = sum of mem[ra..ra+W) (row-buffer-wide reduction).
	OpVSum
	// OpSpawn sends a parcel: start a thread at code address rb on node
	// ra, with argument rd delivered in the new thread's r1 (r2 = source
	// node id).
	OpSpawn
	// OpNodeID rd = this node's id.
	OpNodeID
	// OpPrint is a debug/output instruction: emits the value of ra to the
	// machine's output hook.
	OpPrint

	numOps
)

// WideWords is the width W of the wide (row-buffer) operations, in words.
// The paper's 2048-bit row with 256-bit page words gives 8.
const WideWords = 8

// MaxImageWords bounds the assembled image span (max address − min
// address). A stray .org far from the rest of the program would otherwise
// make pass 2 allocate the whole gap.
const MaxImageWords = 1 << 22

// opInfo describes an opcode's assembly syntax.
type opInfo struct {
	name string
	// operand kinds: 'd' dest reg, 'a' reg, 'b' reg, 'i' immediate/label
	operands string
}

var opTable = [numOps]opInfo{
	OpInvalid: {"", ""},
	OpHalt:    {"halt", ""},
	OpAdd:     {"add", "dab"},
	OpSub:     {"sub", "dab"},
	OpMul:     {"mul", "dab"},
	OpAnd:     {"and", "dab"},
	OpOr:      {"or", "dab"},
	OpXor:     {"xor", "dab"},
	OpShl:     {"shl", "dab"},
	OpShr:     {"shr", "dab"},
	OpAddi:    {"addi", "dai"},
	OpLui:     {"lui", "di"},
	OpLd:      {"ld", "dai"},
	OpSt:      {"st", "dai"},
	OpBeq:     {"beq", "abi"},
	OpBne:     {"bne", "abi"},
	OpBlt:     {"blt", "abi"},
	OpJmp:     {"jmp", "i"},
	OpJr:      {"jr", "a"},
	OpAmoAdd:  {"amoadd", "dab"},
	OpVAdd:    {"vadd", "dab"},
	OpVSum:    {"vsum", "da"},
	OpSpawn:   {"spawn", "dab"},
	OpNodeID:  {"nodeid", "d"},
	OpPrint:   {"print", "a"},
}

func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op  Op
	Rd  uint8
	Ra  uint8
	Rb  uint8
	Imm int32 // 24-bit signed immediate (sign-extended)
}

// NumRegs is the architectural register count; r0 reads as zero.
const NumRegs = 16

// Encode packs the instruction into a memory word:
// op(8) | rd(4) | ra(4) | rb(4) | unused(12) | imm(24, two's complement)
func (in Instr) Encode() uint64 {
	imm := uint64(uint32(in.Imm)) & 0xffffff
	return uint64(in.Op)<<56 |
		uint64(in.Rd&0xf)<<52 |
		uint64(in.Ra&0xf)<<48 |
		uint64(in.Rb&0xf)<<44 |
		imm
}

// DecodeInstr unpacks an instruction word with fixed shift/mask
// extraction (it sits on the interpreter's per-cycle hot path). Fields
// outside the opcode's operand syntax are don't-cares on the wire and
// come back as raw bits; Canonical zeroes them when fidelity matters
// (disassembly round trips).
func DecodeInstr(w uint64) (Instr, error) {
	op := Op(w >> 56)
	if op == OpInvalid || op >= numOps {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d", uint8(op))
	}
	imm := int32(uint32(w&0xffffff)<<8) >> 8 // sign-extend 24 bits
	return Instr{
		Op:  op,
		Rd:  uint8(w>>52) & 0xf,
		Ra:  uint8(w>>48) & 0xf,
		Rb:  uint8(w>>44) & 0xf,
		Imm: imm,
	}, nil
}

// Canonical returns the instruction with every field outside its
// opcode's operand syntax zeroed — the form the textual rendering
// preserves, so canonical(w).Encode() round-trips through the
// disassembler exactly.
func (in Instr) Canonical() Instr {
	out := Instr{Op: in.Op}
	for _, k := range opTable[in.Op].operands {
		switch k {
		case 'd':
			out.Rd = in.Rd
		case 'a':
			out.Ra = in.Ra
		case 'b':
			out.Rb = in.Rb
		case 'i':
			out.Imm = in.Imm
		}
	}
	return out
}

// String disassembles the instruction.
func (in Instr) String() string {
	info := opTable[in.Op]
	parts := []string{}
	for _, k := range info.operands {
		switch k {
		case 'd':
			parts = append(parts, fmt.Sprintf("r%d", in.Rd))
		case 'a':
			parts = append(parts, fmt.Sprintf("r%d", in.Ra))
		case 'b':
			parts = append(parts, fmt.Sprintf("r%d", in.Rb))
		case 'i':
			parts = append(parts, strconv.Itoa(int(in.Imm)))
		}
	}
	if len(parts) == 0 {
		return info.name
	}
	return info.name + " " + strings.Join(parts, ", ")
}

// Program is an assembled code image plus its symbol table.
type Program struct {
	// Words are instruction/data words, loaded at address Origin.
	Words []uint64
	// Origin is the load address.
	Origin uint64
	// Labels maps label names to absolute addresses.
	Labels map[string]uint64
}

// Entry returns the address of the given label.
func (p *Program) Entry(label string) (uint64, error) {
	a, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: no label %q", label)
	}
	return a, nil
}

// Assemble translates assembly text into a Program. Syntax:
//
//	; comment            (also "#")
//	label:               (alone or before an instruction)
//	    addi r1, r0, 42
//	    ld   r2, r1, 8   ; rd, base, offset
//	    beq  r1, r2, done
//	    .org 100         ; set location counter
//	    .word 7          ; literal data word
//
// Immediates may be decimal, hex (0x...), or label references.
func Assemble(src string) (*Program, error) {
	type pending struct {
		lineNo int
		instr  Instr
		label  string // unresolved immediate label, if any
		isWord bool
		word   uint64
		addr   uint64
	}
	labels := map[string]uint64{}
	var items []pending
	lc := uint64(0)

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefix the statement.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !validLabel(name) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = lc
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mnemonic := strings.ToLower(fields[0])
		args := fields[1:]
		switch mnemonic {
		case ".org":
			if len(args) != 1 {
				return nil, fmt.Errorf("isa: line %d: .org takes one value", lineNo+1)
			}
			v, err := parseImm(args[0])
			if err != nil {
				return nil, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
			}
			if v < 0 || v > MaxImageWords {
				return nil, fmt.Errorf("isa: line %d: .org %d out of [0, %d]", lineNo+1, v, MaxImageWords)
			}
			lc = uint64(v)
			continue
		case ".word":
			if len(args) != 1 {
				return nil, fmt.Errorf("isa: line %d: .word takes one value", lineNo+1)
			}
			v, err := parseWord(args[0])
			if err != nil {
				// Might be a label reference; resolve in pass 2.
				items = append(items, pending{lineNo: lineNo + 1, isWord: true, label: args[0], addr: lc})
				lc++
				continue
			}
			items = append(items, pending{lineNo: lineNo + 1, isWord: true, word: v, addr: lc})
			lc++
			continue
		}
		op, err := lookupOp(mnemonic)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
		}
		info := opTable[op]
		if len(args) != len(info.operands) {
			return nil, fmt.Errorf("isa: line %d: %s takes %d operands, got %d",
				lineNo+1, info.name, len(info.operands), len(args))
		}
		in := Instr{Op: op}
		labelRef := ""
		for i, kind := range info.operands {
			arg := args[i]
			switch kind {
			case 'd', 'a', 'b':
				r, err := parseReg(arg)
				if err != nil {
					return nil, fmt.Errorf("isa: line %d: %v", lineNo+1, err)
				}
				switch kind {
				case 'd':
					in.Rd = r
				case 'a':
					in.Ra = r
				case 'b':
					in.Rb = r
				}
			case 'i':
				if v, err := parseImm(arg); err == nil {
					in.Imm = int32(v)
				} else if validLabel(arg) {
					labelRef = arg
				} else {
					return nil, fmt.Errorf("isa: line %d: bad immediate %q", lineNo+1, arg)
				}
			}
		}
		items = append(items, pending{lineNo: lineNo + 1, instr: in, label: labelRef, addr: lc})
		lc++
	}

	// Pass 2: resolve labels, lay out words. The image spans the minimum
	// to maximum emitted address.
	if len(items) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	origin := items[0].addr
	end := origin
	for _, it := range items {
		if it.addr < origin {
			origin = it.addr
		}
		if it.addr+1 > end {
			end = it.addr + 1
		}
	}
	if end-origin > MaxImageWords {
		return nil, fmt.Errorf("isa: image spans %d words (max %d)", end-origin, MaxImageWords)
	}
	words := make([]uint64, end-origin)
	for _, it := range items {
		if it.label != "" {
			target, ok := labels[it.label]
			if !ok {
				return nil, fmt.Errorf("isa: line %d: undefined label %q", it.lineNo, it.label)
			}
			if it.isWord {
				it.word = target
			} else {
				it.instr.Imm = int32(target)
			}
		}
		w := it.word
		if !it.isWord {
			w = it.instr.Encode()
		}
		words[it.addr-origin] = w
	}
	return &Program{Words: words, Origin: origin, Labels: labels}, nil
}

// Disassemble renders the program listing.
func Disassemble(p *Program) string {
	byAddr := map[uint64][]string{}
	for name, a := range p.Labels {
		byAddr[a] = append(byAddr[a], name)
	}
	var b strings.Builder
	for i, w := range p.Words {
		addr := p.Origin + uint64(i)
		for _, l := range byAddr[addr] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		if in, err := DecodeInstr(w); err == nil {
			fmt.Fprintf(&b, "  %4d: %s\n", addr, in)
		} else {
			fmt.Fprintf(&b, "  %4d: .word %d\n", addr, w)
		}
	}
	return b.String()
}

func stripComment(line string) string {
	for _, sep := range []string{";", "#"} {
		if i := strings.Index(line, sep); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	// Register names are not labels.
	if _, err := parseReg(s); err == nil {
		return false
	}
	return true
}

// splitOperands splits "op a, b, c" into ["op", "a", "b", "c"].
func splitOperands(line string) []string {
	first := strings.Fields(line)
	if len(first) == 0 {
		return nil
	}
	mnemonic := first[0]
	rest := strings.TrimSpace(line[len(mnemonic):])
	if rest == "" {
		return []string{mnemonic}
	}
	parts := strings.Split(rest, ",")
	out := []string{mnemonic}
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func lookupOp(name string) (Op, error) {
	for op := OpHalt; op < numOps; op++ {
		if opTable[op].name == name {
			return op, nil
		}
	}
	return 0, fmt.Errorf("isa: unknown mnemonic %q", name)
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("isa: bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 32)
}

// parseWord parses a full 64-bit data word (.word accepts both signed
// decimals and wide hex constants).
func parseWord(s string) (uint64, error) {
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		return u, nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	return uint64(v), nil
}
