package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	err := quick.Check(func(opRaw, rd, ra, rb uint8, immRaw int32) bool {
		in := Instr{
			Op:  Op(opRaw%uint8(numOps-1)) + 1, // skip OpInvalid
			Rd:  rd % NumRegs,
			Ra:  ra % NumRegs,
			Rb:  rb % NumRegs,
			Imm: (immRaw << 8) >> 8, // 24-bit signed
		}
		out, err := DecodeInstr(in.Encode())
		if err != nil || out != in {
			return false
		}
		// Canonical zeroes exactly the fields outside the operand
		// syntax and is idempotent.
		c := out.Canonical()
		return c.Canonical() == c && c.Encode() == c.Canonical().Encode()
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsUnknownOpcode(t *testing.T) {
	if _, err := DecodeInstr(uint64(numOps) << 56); err == nil {
		t.Error("unknown opcode accepted")
	}
}

func TestImmSignExtension(t *testing.T) {
	in := Instr{Op: OpAddi, Rd: 1, Imm: -5}
	out, err := DecodeInstr(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Imm != -5 {
		t.Errorf("imm = %d, want -5", out.Imm)
	}
}

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssembleBasics(t *testing.T) {
	p := assemble(t, `
start:
    addi r1, r0, 42      ; the answer
    addi r2, r0, 0x10    # hex immediate
    add  r3, r1, r2
    halt
`)
	if len(p.Words) != 4 {
		t.Fatalf("words = %d", len(p.Words))
	}
	if a, _ := p.Entry("start"); a != 0 {
		t.Errorf("start = %d", a)
	}
	in, err := DecodeInstr(p.Words[0])
	if err != nil || in.Op != OpAddi || in.Rd != 1 || in.Imm != 42 {
		t.Errorf("first instr = %+v, %v", in, err)
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	p := assemble(t, `
    addi r1, r0, 3
loop:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`)
	in, err := DecodeInstr(p.Words[2])
	if err != nil || in.Op != OpBne {
		t.Fatalf("bne decode: %+v %v", in, err)
	}
	if in.Imm != 1 {
		t.Errorf("branch target = %d, want 1", in.Imm)
	}
}

func TestAssembleDirectives(t *testing.T) {
	p := assemble(t, `
    jmp main
    .org 10
data:
    .word 7
    .word data
    .org 20
main:
    halt
`)
	if p.Origin != 0 {
		t.Errorf("origin = %d", p.Origin)
	}
	if p.Words[10] != 7 {
		t.Errorf("data word = %d", p.Words[10])
	}
	if p.Words[11] != 10 {
		t.Errorf("label word = %d, want 10", p.Words[11])
	}
	if a, _ := p.Entry("main"); a != 20 {
		t.Errorf("main = %d", a)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",                   // unknown mnemonic
		"add r1, r2",                     // wrong arity
		"add r99, r0, r0",                // bad register
		"jmp nowhere",                    // undefined label
		"dup: addi r1, r0, 1\ndup: halt", // duplicate label
		"",                               // empty program
		"addi r1, r0, zz",                // bad immediate
	}
	for i, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d assembled: %q", i, src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
entry:
    addi r1, r0, 5
    ld   r2, r1, 3
    vadd r1, r2, r3
    halt
`
	p := assemble(t, src)
	dis := Disassemble(p)
	for _, want := range []string{"entry:", "addi r1, r0, 5", "ld r2, r1, 3", "vadd r1, r2, r3", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// runProgram assembles src, loads it on a machine of n nodes, starts one
// thread at "main" on node 0, and runs to completion.
func runProgram(t *testing.T, src string, n int) *Machine {
	t.Helper()
	p := assemble(t, src)
	timing := DefaultTiming()
	timing.NetLatency = 10
	m, err := NewMachine(n, 4096, timing)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, err := p.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticProgram(t *testing.T) {
	m := runProgram(t, `
main:
    addi r1, r0, 6
    addi r2, r0, 7
    mul  r3, r1, r2
    addi r4, r0, 100
    st   r3, r4, 0
    halt
`, 1)
	if got := m.Nodes[0].Mem[100]; got != 42 {
		t.Errorf("mem[100] = %d, want 42", got)
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 into mem[200].
	m := runProgram(t, `
main:
    addi r1, r0, 10    ; i
    addi r2, r0, 0     ; acc
loop:
    add  r2, r2, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    addi r3, r0, 200
    st   r2, r3, 0
    halt
`, 1)
	if got := m.Nodes[0].Mem[200]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemoryStallTiming(t *testing.T) {
	// A single ld on an otherwise empty machine: cycles ≈ instr + stall.
	m := runProgram(t, `
main:
    addi r1, r0, 50
    ld   r2, r1, 0
    halt
`, 1)
	// 3 instructions; the ld adds MemCycles-1 stall cycles.
	want := int64(3) + DefaultTiming().MemCycles - 1
	if m.Nodes[0].BusyCycles != want {
		t.Errorf("busy cycles = %d, want %d", m.Nodes[0].BusyCycles, want)
	}
}

func TestWideOps(t *testing.T) {
	src := `
main:
    addi r1, r0, 512    ; A
    addi r2, r0, 520    ; B
    addi r3, r0, 528    ; C = A + B
    vadd r3, r1, r2
    vsum r4, r3
    addi r5, r0, 600
    st   r4, r5, 0
    halt
`
	p := assemble(t, src)
	m, err := NewMachine(1, 4096, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < WideWords; i++ {
		m.Nodes[0].Mem[512+i] = uint64(i + 1)  // 1..8
		m.Nodes[0].Mem[520+i] = uint64(10 * i) // 0,10..70
	}
	entry, _ := p.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 10000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// sum(1..8) + sum(0,10..70) = 36 + 280 = 316.
	if got := m.Nodes[0].Mem[600]; got != 316 {
		t.Errorf("vsum = %d, want 316", got)
	}
	if m.Nodes[0].WideOps != 2 {
		t.Errorf("wide ops = %d", m.Nodes[0].WideOps)
	}
}

func TestAmoAddAtomicity(t *testing.T) {
	// Many threads on one node AMO-adding into the same cell: exact total.
	src := `
main:
    addi r3, r0, 300   ; counter address
    addi r4, r0, 1
    amoadd r5, r3, r4
    halt
`
	p := assemble(t, src)
	m, err := NewMachine(1, 4096, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, _ := p.Entry("main")
	const threads = 40
	for i := 0; i < threads; i++ {
		m.Nodes[0].StartThread(entry, 0, 0)
	}
	m.MaxCycles = 100000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[0].Mem[300]; got != threads {
		t.Errorf("counter = %d, want %d", got, threads)
	}
}

func TestSpawnRemoteThread(t *testing.T) {
	// Node 0 spawns a thread on node 1 that stores its argument.
	src := `
main:
    addi r1, r0, 1      ; destination node
    lui  r2, 0
    addi r2, r2, remote ; entry address
    addi r3, r0, 77     ; argument
    spawn r3, r1, r2
    halt
remote:
    addi r4, r0, 400
    st   r1, r4, 0      ; r1 carries the argument
    halt
`
	p := assemble(t, src)
	m, err := NewMachine(2, 4096, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, _ := p.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 100000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[1].Mem[400]; got != 77 {
		t.Errorf("remote store = %d, want 77", got)
	}
	if m.Nodes[0].Spawns != 1 {
		t.Errorf("spawns = %d", m.Nodes[0].Spawns)
	}
}

func TestNetworkLatencyVisible(t *testing.T) {
	src := `
main:
    addi r1, r0, 1
    addi r2, r0, remote
    spawn r0, r1, r2
    halt
remote:
    halt
`
	run := func(lat int64) int64 {
		p := assemble(t, src)
		tm := DefaultTiming()
		tm.NetLatency = lat
		m, err := NewMachine(2, 1024, tm)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(p); err != nil {
			t.Fatal(err)
		}
		entry, _ := p.Entry("main")
		m.Nodes[0].StartThread(entry, 0, 0)
		m.MaxCycles = 100000
		cycles, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	if fast, slow := run(10), run(1000); slow-fast < 900 {
		t.Errorf("latency not visible: fast=%d slow=%d", fast, slow)
	}
}

func TestMultithreadingHidesMemoryStalls(t *testing.T) {
	// One thread doing dependent loads leaves the pipeline stalled; many
	// threads interleave and finish the same total work in fewer cycles
	// per load: utilization rises with thread count.
	src := `
main:
    addi r3, r0, 64    ; loop count
    addi r4, r0, 900
loop:
    ld   r5, r4, 0
    addi r3, r3, -1
    bne  r3, r0, loop
    halt
`
	run := func(threads int) float64 {
		p := assemble(t, src)
		m, err := NewMachine(1, 2048, DefaultTiming())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(p); err != nil {
			t.Fatal(err)
		}
		entry, _ := p.Entry("main")
		for i := 0; i < threads; i++ {
			m.Nodes[0].StartThread(entry, 0, 0)
		}
		m.MaxCycles = 1_000_000
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		// Issue rate: instructions per cycle.
		return float64(m.Nodes[0].Instructions) / float64(m.Cycle())
	}
	ipc1 := run(1)
	ipc8 := run(8)
	if ipc8 < ipc1*1.5 {
		t.Errorf("multithreading did not lift issue rate: %g -> %g", ipc1, ipc8)
	}
	if ipc8 > 1.0001 {
		t.Errorf("issue rate %g exceeds single-issue bound", ipc8)
	}
}

func TestExecutionFaults(t *testing.T) {
	cases := []string{
		// PC runs off memory (no halt).
		"main:\n addi r1, r0, 1",
		// Bad memory access.
		"main:\n lui r1, 255\n ld r2, r1, 0\n halt",
		// Spawn to nonexistent node.
		"main:\n addi r1, r0, 9\n addi r2, r0, main\n spawn r0, r1, r2\n halt",
	}
	for i, src := range cases {
		p := assemble(t, src)
		m, err := NewMachine(2, 1024, DefaultTiming())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.LoadAll(p); err != nil {
			t.Fatal(err)
		}
		entry, _ := p.Entry("main")
		m.Nodes[0].StartThread(entry, 0, 0)
		m.MaxCycles = 100000
		if _, err := m.Run(); err == nil {
			t.Errorf("case %d: faulty program ran to completion", i)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	m := runProgram(t, `
main:
    addi r0, r0, 99    ; writes to r0 are dropped
    addi r1, r0, 1
    addi r2, r0, 100
    st   r1, r2, 0
    halt
`, 1)
	if got := m.Nodes[0].Mem[100]; got != 1 {
		t.Errorf("r0 not hardwired: mem[100] = %d", got)
	}
}

func TestPrintOutput(t *testing.T) {
	p := assemble(t, `
main:
    addi r1, r0, 123
    print r1
    halt
`)
	m, _ := NewMachine(1, 1024, DefaultTiming())
	var got []uint64
	m.Output = func(node int, v uint64) { got = append(got, v) }
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, _ := p.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 123 {
		t.Errorf("print output = %v", got)
	}
}

func TestTraceHookSeesEveryInstruction(t *testing.T) {
	p := assemble(t, `
main:
    addi r1, r0, 3
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
`)
	m, _ := NewMachine(1, 256, DefaultTiming())
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	var traced int64
	var lastCycle int64
	m.Trace = func(cycle int64, node int, pc uint64, in Instr) {
		traced++
		if cycle < lastCycle {
			t.Error("trace cycles went backwards")
		}
		lastCycle = cycle
		if node != 0 {
			t.Errorf("trace node = %d", node)
		}
	}
	entry, _ := p.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if traced != m.Nodes[0].Instructions {
		t.Errorf("traced %d, executed %d", traced, m.Nodes[0].Instructions)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	p := assemble(t, "main:\n jmp main")
	m, _ := NewMachine(1, 64, DefaultTiming())
	if err := m.LoadAll(p); err != nil {
		t.Fatal(err)
	}
	entry, _ := p.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 1000
	if _, err := m.Run(); err == nil {
		t.Error("infinite loop ran to completion")
	}
}

func TestDeterministicMachine(t *testing.T) {
	run := func() int64 {
		m := runProgram(t, `
main:
    addi r1, r0, 1
    addi r2, r0, fan
    spawn r0, r1, r2
    spawn r0, r1, r2
    halt
fan:
    addi r3, r0, 300
    addi r4, r0, 1
    amoadd r5, r3, r4
    halt
`, 2)
		return m.Cycle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic cycle counts: %d vs %d", a, b)
	}
}

func BenchmarkMachineIssue(b *testing.B) {
	src := `
main:
    addi r1, r0, 1000
loop:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
`
	p, err := Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := NewMachine(1, 1024, DefaultTiming())
		if err := m.LoadAll(p); err != nil {
			b.Fatal(err)
		}
		entry, _ := p.Entry("main")
		m.Nodes[0].StartThread(entry, 0, 0)
		m.MaxCycles = 100000
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
