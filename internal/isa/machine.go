package isa

import (
	"fmt"
)

// Timing parameterizes the cycle costs of the interpreter, in LWP cycles.
// Defaults follow Table 1's LWP figures (memory = TML/TLcycle = 6 LWP
// cycles) and the hardware-assisted parcel costs.
type Timing struct {
	// MemCycles is the cost of LD/ST/AMO (one word through the row
	// buffer).
	MemCycles int64
	// WideMemCycles is the cost of a wide (W-word) memory operation; with
	// a 2048-bit row one activation covers all W words, so the default
	// equals MemCycles.
	WideMemCycles int64
	// SpawnCycles is the local cost of creating and launching a parcel.
	SpawnCycles int64
	// NetLatency is the parcel flight time between distinct nodes.
	NetLatency int64
}

// DefaultTiming returns the Table-1-derived costs.
func DefaultTiming() Timing {
	return Timing{MemCycles: 6, WideMemCycles: 6, SpawnCycles: 2, NetLatency: 200}
}

// Validate checks the timing.
func (t Timing) Validate() error {
	if t.MemCycles <= 0 || t.WideMemCycles <= 0 || t.SpawnCycles < 0 || t.NetLatency < 0 {
		return fmt.Errorf("isa: invalid timing %+v", t)
	}
	return nil
}

// Thread is one hardware thread context. Threads live in a per-node value
// slab (no per-thread heap allocation); finished contexts are recycled
// through a free list, so steady-state spawn/halt churn allocates nothing.
type Thread struct {
	PC   uint64
	Regs [NumRegs]uint64
	// stall > 0 means the thread is paying a multi-cycle cost.
	stall int64
	done  bool
}

// flight is a parcel in transit.
type flight struct {
	arrive int64 // cycle of delivery
	node   int
	entry  uint64
	arg    uint64
	src    uint64
}

// NodeState is one PIM node of the machine.
type NodeState struct {
	ID  int
	Mem []uint64
	// threads is the thread-context slab; issue is round-robin over it.
	// free holds recycled (halted) slots, live counts unfinished threads.
	threads []Thread
	free    []int32
	live    int
	next    int

	// Counters.
	Instructions int64
	MemOps       int64
	WideOps      int64
	Spawns       int64
	BusyCycles   int64
	IdleCycles   int64
	Completed    int64
}

// Load copies a program image into node memory.
func (n *NodeState) Load(p *Program) error {
	if p.Origin+uint64(len(p.Words)) > uint64(len(n.Mem)) {
		return fmt.Errorf("isa: program [%d, %d) exceeds node memory %d",
			p.Origin, p.Origin+uint64(len(p.Words)), len(n.Mem))
	}
	copy(n.Mem[p.Origin:], p.Words)
	return nil
}

// StartThread creates a thread at entry with r1 = arg, r2 = src, reusing a
// recycled context slot when one is free.
func (n *NodeState) StartThread(entry, arg, src uint64) {
	var t *Thread
	if k := len(n.free); k > 0 {
		idx := n.free[k-1]
		n.free = n.free[:k-1]
		t = &n.threads[idx]
		*t = Thread{}
	} else {
		n.threads = append(n.threads, Thread{})
		t = &n.threads[len(n.threads)-1]
	}
	t.PC = entry
	t.Regs[1] = arg
	t.Regs[2] = src
	n.live++
}

// LiveThreads returns the number of unfinished threads.
func (n *NodeState) LiveThreads() int { return n.live }

// Machine is a deterministic cycle-driven multi-node PIM interpreter: one
// instruction issue per node per cycle from the round-robin ready thread
// (fine-grain multithreading), memory/wide/parcel costs modeled as thread
// stalls, parcels delivered after a network latency.
type Machine struct {
	Nodes  []*NodeState
	Timing Timing
	// Output receives values from the print instruction (nil = dropped).
	Output func(node int, value uint64)
	// Trace, when non-nil, observes every issued instruction before it
	// executes — the debugger/profiler hook.
	Trace func(cycle int64, node int, pc uint64, in Instr)
	// NetDelay, when non-nil, supplies the parcel flight time between
	// distinct nodes instead of the flat Timing.NetLatency — the hook a
	// topology-aware interconnect (internal/network) plugs into.
	// Node-local spawns never consult it and stay free.
	NetDelay func(src, dst int) int64
	// MemDelay, when non-nil, supplies the cost of one memory operation
	// instead of the flat Timing.MemCycles/WideMemCycles — the hook a
	// row-buffer timing model (internal/dram) plugs into. Costs below one
	// cycle are clamped to one.
	MemDelay func(node int, addr uint64, wide bool) int64
	// MaxCycles bounds Run (0 = no bound).
	MaxCycles int64

	cycle    int64
	inFlight []flight
}

// NewMachine creates n nodes with memWords words of memory each.
func NewMachine(n int, memWords int, timing Timing) (*Machine, error) {
	if n <= 0 || memWords <= 0 {
		return nil, fmt.Errorf("isa: NewMachine(%d, %d)", n, memWords)
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Timing: timing}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, &NodeState{ID: i, Mem: make([]uint64, memWords)})
	}
	return m, nil
}

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.cycle }

// LoadAll loads the same program into every node (SPMD style).
func (m *Machine) LoadAll(p *Program) error {
	for _, n := range m.Nodes {
		if err := n.Load(p); err != nil {
			return err
		}
	}
	return nil
}

// Reset returns the machine to cycle zero — no threads, no parcels in
// flight, zeroed memory and counters — while keeping every allocated slab
// (thread contexts, flight queue, node memory), so a caller can re-load
// and re-run without reallocating.
func (m *Machine) Reset() {
	m.cycle = 0
	m.inFlight = m.inFlight[:0]
	for _, n := range m.Nodes {
		clear(n.Mem)
		n.threads = n.threads[:0]
		n.free = n.free[:0]
		n.live = 0
		n.next = 0
		n.Instructions, n.MemOps, n.WideOps, n.Spawns = 0, 0, 0, 0
		n.BusyCycles, n.IdleCycles, n.Completed = 0, 0, 0
	}
}

// Run executes until no threads are live and no parcels are in flight, or
// until MaxCycles. It returns the cycle count and an error for execution
// faults (bad opcode, out-of-range memory) or cycle exhaustion.
func (m *Machine) Run() (int64, error) {
	for {
		live := false
		for _, n := range m.Nodes {
			if n.live > 0 {
				live = true
				break
			}
		}
		if !live && len(m.inFlight) == 0 {
			return m.cycle, nil
		}
		if m.MaxCycles > 0 && m.cycle >= m.MaxCycles {
			return m.cycle, fmt.Errorf("isa: exceeded %d cycles (livelock or unfinished work)", m.MaxCycles)
		}
		if err := m.Step(); err != nil {
			return m.cycle, err
		}
	}
}

// Step advances the machine one cycle.
func (m *Machine) Step() error {
	m.cycle++
	// Deliver parcels due this cycle (in send order: deterministic).
	kept := m.inFlight[:0]
	for _, f := range m.inFlight {
		if f.arrive <= m.cycle {
			m.Nodes[f.node].StartThread(f.entry, f.arg, f.src)
		} else {
			kept = append(kept, f)
		}
	}
	m.inFlight = kept
	for _, n := range m.Nodes {
		if err := m.stepNode(n); err != nil {
			return err
		}
	}
	return nil
}

// compact drops finished thread contexts once they dominate the slab, so
// a node that fanned out a burst of threads doesn't scan their dead slots
// forever after the burst drains. (The free list bounds slab growth under
// steady churn; this bounds the scan after a one-off spike.) The kept
// contexts stay in issue order and the backing array is reused, so both
// determinism and the zero-alloc discipline survive.
func (n *NodeState) compact() {
	if len(n.threads) < 64 || n.live*2 > len(n.threads) {
		return
	}
	kept := n.threads[:0]
	for i := range n.threads {
		if !n.threads[i].done {
			kept = append(kept, n.threads[i])
		}
	}
	n.threads = kept
	n.free = n.free[:0]
	n.next = 0
}

// stepNode issues at most one instruction on node n.
func (m *Machine) stepNode(n *NodeState) error {
	if n.live == 0 {
		n.IdleCycles++
		return nil
	}
	n.compact()
	// Find the next ready thread round-robin; stalled threads tick down.
	nThreads := len(n.threads)
	chosen := -1
	for i := 0; i < nThreads; i++ {
		idx := n.next + i
		if idx >= nThreads {
			idx -= nThreads
		}
		t := &n.threads[idx]
		if t.done {
			continue
		}
		if t.stall > 0 {
			t.stall--
			continue
		}
		if chosen < 0 {
			chosen = idx
			n.next = idx + 1
			if n.next >= nThreads {
				n.next = 0
			}
		}
	}
	// All live threads stalled counts busy (the bank is working).
	n.BusyCycles++
	if chosen < 0 {
		return nil
	}
	return m.execute(n, chosen)
}

// memCost returns the cycle cost of one memory operation.
func (m *Machine) memCost(n *NodeState, addr uint64, wide bool) int64 {
	var c int64
	switch {
	case m.MemDelay != nil:
		c = m.MemDelay(n.ID, addr, wide)
	case wide:
		c = m.Timing.WideMemCycles
	default:
		c = m.Timing.MemCycles
	}
	if c < 1 {
		c = 1
	}
	return c
}

// execute runs one instruction on thread slot ti of node n.
func (m *Machine) execute(n *NodeState, ti int) error {
	t := &n.threads[ti]
	if t.PC >= uint64(len(n.Mem)) {
		return fmt.Errorf("isa: node %d: PC %d out of memory", n.ID, t.PC)
	}
	in, err := DecodeInstr(n.Mem[t.PC])
	if err != nil {
		return fmt.Errorf("isa: node %d pc %d: %w", n.ID, t.PC, err)
	}
	if m.Trace != nil {
		m.Trace(m.cycle, n.ID, t.PC, in)
	}
	n.Instructions++
	pcNext := t.PC + 1
	rd := func() uint64 { return t.Regs[in.Rd] }
	ra := func() uint64 { return t.Regs[in.Ra] }
	rb := func() uint64 { return t.Regs[in.Rb] }
	set := func(r uint8, v uint64) {
		if r != 0 {
			t.Regs[r] = v
		}
	}
	mem := func(addr uint64) (uint64, error) {
		if addr >= uint64(len(n.Mem)) {
			return 0, fmt.Errorf("isa: node %d pc %d: memory access %d out of %d",
				n.ID, t.PC, addr, len(n.Mem))
		}
		return n.Mem[addr], nil
	}

	switch in.Op {
	case OpHalt:
		t.done = true
		n.live--
		n.Completed++
		n.free = append(n.free, int32(ti))
		return nil
	case OpAdd:
		set(in.Rd, ra()+rb())
	case OpSub:
		set(in.Rd, ra()-rb())
	case OpMul:
		set(in.Rd, ra()*rb())
	case OpAnd:
		set(in.Rd, ra()&rb())
	case OpOr:
		set(in.Rd, ra()|rb())
	case OpXor:
		set(in.Rd, ra()^rb())
	case OpShl:
		set(in.Rd, ra()<<(rb()&63))
	case OpShr:
		set(in.Rd, ra()>>(rb()&63))
	case OpAddi:
		set(in.Rd, ra()+uint64(int64(in.Imm)))
	case OpLui:
		set(in.Rd, uint64(uint32(in.Imm))<<24)
	case OpLd:
		addr := ra() + uint64(int64(in.Imm))
		v, err := mem(addr)
		if err != nil {
			return err
		}
		set(in.Rd, v)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpSt:
		addr := ra() + uint64(int64(in.Imm))
		if _, err := mem(addr); err != nil {
			return err
		}
		n.Mem[addr] = rd()
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpBeq:
		if ra() == rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBne:
		if ra() != rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBlt:
		if ra() < rb() {
			pcNext = uint64(in.Imm)
		}
	case OpJmp:
		pcNext = uint64(in.Imm)
	case OpJr:
		pcNext = ra()
	case OpAmoAdd:
		addr := ra()
		v, err := mem(addr)
		if err != nil {
			return err
		}
		n.Mem[addr] = v + rb()
		set(in.Rd, v)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpVAdd:
		d, a, b := rd(), ra(), rb()
		if _, err := mem(d + WideWords - 1); err != nil {
			return err
		}
		if _, err := mem(a + WideWords - 1); err != nil {
			return err
		}
		if _, err := mem(b + WideWords - 1); err != nil {
			return err
		}
		for i := uint64(0); i < WideWords; i++ {
			n.Mem[d+i] = n.Mem[a+i] + n.Mem[b+i]
		}
		t.stall = m.memCost(n, d, true) - 1
		n.WideOps++
	case OpVSum:
		a := ra()
		if _, err := mem(a + WideWords - 1); err != nil {
			return err
		}
		var s uint64
		for i := uint64(0); i < WideWords; i++ {
			s += n.Mem[a+i]
		}
		set(in.Rd, s)
		t.stall = m.memCost(n, a, true) - 1
		n.WideOps++
	case OpSpawn:
		dst := int(ra())
		if dst < 0 || dst >= len(m.Nodes) {
			return fmt.Errorf("isa: node %d pc %d: spawn to node %d of %d",
				n.ID, t.PC, dst, len(m.Nodes))
		}
		lat := int64(0)
		if dst != n.ID {
			if m.NetDelay != nil {
				lat = m.NetDelay(n.ID, dst)
			} else {
				lat = m.Timing.NetLatency
			}
		}
		m.inFlight = append(m.inFlight, flight{
			arrive: m.cycle + lat + 1,
			node:   dst,
			entry:  rb(),
			arg:    rd(),
			src:    uint64(n.ID),
		})
		t.stall = m.Timing.SpawnCycles - 1
		if t.stall < 0 {
			t.stall = 0
		}
		n.Spawns++
	case OpNodeID:
		set(in.Rd, uint64(n.ID))
	case OpPrint:
		if m.Output != nil {
			m.Output(n.ID, ra())
		}
	default:
		return fmt.Errorf("isa: node %d pc %d: unimplemented op %v", n.ID, t.PC, in.Op)
	}
	t.PC = pcNext
	return nil
}

// TotalInstructions sums instruction counts over nodes.
func (m *Machine) TotalInstructions() int64 {
	var s int64
	for _, n := range m.Nodes {
		s += n.Instructions
	}
	return s
}

// Utilization returns the busy fraction of node i over the run.
func (m *Machine) Utilization(i int) float64 {
	n := m.Nodes[i]
	total := n.BusyCycles + n.IdleCycles
	if total == 0 {
		return 0
	}
	return float64(n.BusyCycles) / float64(total)
}

// MeanUtilization returns the busy fraction averaged over all nodes.
func (m *Machine) MeanUtilization() float64 {
	if len(m.Nodes) == 0 {
		return 0
	}
	var s float64
	for i := range m.Nodes {
		s += m.Utilization(i)
	}
	return s / float64(len(m.Nodes))
}
