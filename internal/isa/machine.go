package isa

import (
	"fmt"
)

// Timing parameterizes the cycle costs of the interpreter, in LWP cycles.
// Defaults follow Table 1's LWP figures (memory = TML/TLcycle = 6 LWP
// cycles) and the hardware-assisted parcel costs.
type Timing struct {
	// MemCycles is the cost of LD/ST/AMO (one word through the row
	// buffer).
	MemCycles int64
	// WideMemCycles is the cost of a wide (W-word) memory operation; with
	// a 2048-bit row one activation covers all W words, so the default
	// equals MemCycles.
	WideMemCycles int64
	// SpawnCycles is the local cost of creating and launching a parcel.
	SpawnCycles int64
	// NetLatency is the parcel flight time between distinct nodes.
	NetLatency int64
}

// DefaultTiming returns the Table-1-derived costs.
func DefaultTiming() Timing {
	return Timing{MemCycles: 6, WideMemCycles: 6, SpawnCycles: 2, NetLatency: 200}
}

// Validate checks the timing.
func (t Timing) Validate() error {
	if t.MemCycles <= 0 || t.WideMemCycles <= 0 || t.SpawnCycles < 0 || t.NetLatency < 0 {
		return fmt.Errorf("isa: invalid timing %+v", t)
	}
	return nil
}

// Thread is one hardware thread context.
type Thread struct {
	PC   uint64
	Regs [NumRegs]uint64
	// stall > 0 means the thread is paying a multi-cycle cost.
	stall int64
	done  bool
}

// flight is a parcel in transit.
type flight struct {
	arrive int64 // cycle of delivery
	node   int
	entry  uint64
	arg    uint64
	src    uint64
}

// NodeState is one PIM node of the machine.
type NodeState struct {
	ID  int
	Mem []uint64
	// threads holds live thread contexts; issue is round-robin.
	threads []*Thread
	next    int

	// Counters.
	Instructions int64
	MemOps       int64
	WideOps      int64
	Spawns       int64
	BusyCycles   int64
	IdleCycles   int64
	Completed    int64
}

// Load copies a program image into node memory.
func (n *NodeState) Load(p *Program) error {
	if p.Origin+uint64(len(p.Words)) > uint64(len(n.Mem)) {
		return fmt.Errorf("isa: program [%d, %d) exceeds node memory %d",
			p.Origin, p.Origin+uint64(len(p.Words)), len(n.Mem))
	}
	copy(n.Mem[p.Origin:], p.Words)
	return nil
}

// StartThread creates a thread at entry with r1 = arg, r2 = src.
func (n *NodeState) StartThread(entry, arg, src uint64) *Thread {
	t := &Thread{PC: entry}
	t.Regs[1] = arg
	t.Regs[2] = src
	n.threads = append(n.threads, t)
	return t
}

// LiveThreads returns the number of unfinished threads.
func (n *NodeState) LiveThreads() int {
	c := 0
	for _, t := range n.threads {
		if !t.done {
			c++
		}
	}
	return c
}

// Machine is a deterministic cycle-driven multi-node PIM interpreter: one
// instruction issue per node per cycle from the round-robin ready thread
// (fine-grain multithreading), memory/wide/parcel costs modeled as thread
// stalls, parcels delivered after a flat network latency.
type Machine struct {
	Nodes  []*NodeState
	Timing Timing
	// Output receives values from the print instruction (nil = dropped).
	Output func(node int, value uint64)
	// Trace, when non-nil, observes every issued instruction before it
	// executes — the debugger/profiler hook.
	Trace func(cycle int64, node int, pc uint64, in Instr)
	// MaxCycles bounds Run (0 = no bound).
	MaxCycles int64

	cycle    int64
	inFlight []flight
}

// NewMachine creates n nodes with memWords words of memory each.
func NewMachine(n int, memWords int, timing Timing) (*Machine, error) {
	if n <= 0 || memWords <= 0 {
		return nil, fmt.Errorf("isa: NewMachine(%d, %d)", n, memWords)
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Timing: timing}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, &NodeState{ID: i, Mem: make([]uint64, memWords)})
	}
	return m, nil
}

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.cycle }

// LoadAll loads the same program into every node (SPMD style).
func (m *Machine) LoadAll(p *Program) error {
	for _, n := range m.Nodes {
		if err := n.Load(p); err != nil {
			return err
		}
	}
	return nil
}

// Run executes until no threads are live and no parcels are in flight, or
// until MaxCycles. It returns the cycle count and an error for execution
// faults (bad opcode, out-of-range memory) or cycle exhaustion.
func (m *Machine) Run() (int64, error) {
	for {
		live := false
		for _, n := range m.Nodes {
			if n.LiveThreads() > 0 {
				live = true
				break
			}
		}
		if !live && len(m.inFlight) == 0 {
			return m.cycle, nil
		}
		if m.MaxCycles > 0 && m.cycle >= m.MaxCycles {
			return m.cycle, fmt.Errorf("isa: exceeded %d cycles (livelock or unfinished work)", m.MaxCycles)
		}
		if err := m.Step(); err != nil {
			return m.cycle, err
		}
	}
}

// Step advances the machine one cycle.
func (m *Machine) Step() error {
	m.cycle++
	// Deliver parcels due this cycle (in send order: deterministic).
	kept := m.inFlight[:0]
	for _, f := range m.inFlight {
		if f.arrive <= m.cycle {
			m.Nodes[f.node].StartThread(f.entry, f.arg, f.src)
		} else {
			kept = append(kept, f)
		}
	}
	m.inFlight = kept
	for _, n := range m.Nodes {
		if err := m.stepNode(n); err != nil {
			return err
		}
	}
	return nil
}

// compact drops finished thread contexts once they dominate the list, so
// long-running nodes don't scan dead threads forever.
func (n *NodeState) compact() {
	if len(n.threads) < 64 {
		return
	}
	live := 0
	for _, t := range n.threads {
		if !t.done {
			live++
		}
	}
	if live*2 > len(n.threads) {
		return
	}
	kept := n.threads[:0]
	for _, t := range n.threads {
		if !t.done {
			kept = append(kept, t)
		}
	}
	n.threads = kept
	n.next = 0
}

// stepNode issues at most one instruction on node n.
func (m *Machine) stepNode(n *NodeState) error {
	n.compact()
	// Find the next ready thread round-robin; stalled threads tick down.
	nThreads := len(n.threads)
	if nThreads == 0 {
		n.IdleCycles++
		return nil
	}
	var chosen *Thread
	for i := 0; i < nThreads; i++ {
		t := n.threads[(n.next+i)%nThreads]
		if t.done {
			continue
		}
		if t.stall > 0 {
			t.stall--
			continue
		}
		if chosen == nil {
			chosen = t
			n.next = (n.next + i + 1) % nThreads
		}
	}
	if chosen == nil {
		// All threads done or stalled; stalled memory cycles count busy
		// (the bank is working), pure-done means idle.
		if n.LiveThreads() > 0 {
			n.BusyCycles++
		} else {
			n.IdleCycles++
		}
		return nil
	}
	n.BusyCycles++
	return m.execute(n, chosen)
}

// execute runs one instruction on thread t of node n.
func (m *Machine) execute(n *NodeState, t *Thread) error {
	if t.PC >= uint64(len(n.Mem)) {
		return fmt.Errorf("isa: node %d: PC %d out of memory", n.ID, t.PC)
	}
	in, err := DecodeInstr(n.Mem[t.PC])
	if err != nil {
		return fmt.Errorf("isa: node %d pc %d: %w", n.ID, t.PC, err)
	}
	if m.Trace != nil {
		m.Trace(m.cycle, n.ID, t.PC, in)
	}
	n.Instructions++
	pcNext := t.PC + 1
	rd := func() uint64 { return t.Regs[in.Rd] }
	ra := func() uint64 { return t.Regs[in.Ra] }
	rb := func() uint64 { return t.Regs[in.Rb] }
	set := func(r uint8, v uint64) {
		if r != 0 {
			t.Regs[r] = v
		}
	}
	mem := func(addr uint64) (uint64, error) {
		if addr >= uint64(len(n.Mem)) {
			return 0, fmt.Errorf("isa: node %d pc %d: memory access %d out of %d",
				n.ID, t.PC, addr, len(n.Mem))
		}
		return n.Mem[addr], nil
	}

	switch in.Op {
	case OpHalt:
		t.done = true
		n.Completed++
		return nil
	case OpAdd:
		set(in.Rd, ra()+rb())
	case OpSub:
		set(in.Rd, ra()-rb())
	case OpMul:
		set(in.Rd, ra()*rb())
	case OpAnd:
		set(in.Rd, ra()&rb())
	case OpOr:
		set(in.Rd, ra()|rb())
	case OpXor:
		set(in.Rd, ra()^rb())
	case OpShl:
		set(in.Rd, ra()<<(rb()&63))
	case OpShr:
		set(in.Rd, ra()>>(rb()&63))
	case OpAddi:
		set(in.Rd, ra()+uint64(int64(in.Imm)))
	case OpLui:
		set(in.Rd, uint64(uint32(in.Imm))<<24)
	case OpLd:
		addr := ra() + uint64(int64(in.Imm))
		v, err := mem(addr)
		if err != nil {
			return err
		}
		set(in.Rd, v)
		t.stall = m.Timing.MemCycles - 1
		n.MemOps++
	case OpSt:
		addr := ra() + uint64(int64(in.Imm))
		if _, err := mem(addr); err != nil {
			return err
		}
		n.Mem[addr] = rd()
		t.stall = m.Timing.MemCycles - 1
		n.MemOps++
	case OpBeq:
		if ra() == rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBne:
		if ra() != rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBlt:
		if ra() < rb() {
			pcNext = uint64(in.Imm)
		}
	case OpJmp:
		pcNext = uint64(in.Imm)
	case OpJr:
		pcNext = ra()
	case OpAmoAdd:
		addr := ra()
		v, err := mem(addr)
		if err != nil {
			return err
		}
		n.Mem[addr] = v + rb()
		set(in.Rd, v)
		t.stall = m.Timing.MemCycles - 1
		n.MemOps++
	case OpVAdd:
		d, a, b := rd(), ra(), rb()
		if _, err := mem(d + WideWords - 1); err != nil {
			return err
		}
		if _, err := mem(a + WideWords - 1); err != nil {
			return err
		}
		if _, err := mem(b + WideWords - 1); err != nil {
			return err
		}
		for i := uint64(0); i < WideWords; i++ {
			n.Mem[d+i] = n.Mem[a+i] + n.Mem[b+i]
		}
		t.stall = m.Timing.WideMemCycles - 1
		n.WideOps++
	case OpVSum:
		a := ra()
		if _, err := mem(a + WideWords - 1); err != nil {
			return err
		}
		var s uint64
		for i := uint64(0); i < WideWords; i++ {
			s += n.Mem[a+i]
		}
		set(in.Rd, s)
		t.stall = m.Timing.WideMemCycles - 1
		n.WideOps++
	case OpSpawn:
		dst := int(ra())
		if dst < 0 || dst >= len(m.Nodes) {
			return fmt.Errorf("isa: node %d pc %d: spawn to node %d of %d",
				n.ID, t.PC, dst, len(m.Nodes))
		}
		lat := int64(0)
		if dst != n.ID {
			lat = m.Timing.NetLatency
		}
		m.inFlight = append(m.inFlight, flight{
			arrive: m.cycle + lat + 1,
			node:   dst,
			entry:  rb(),
			arg:    rd(),
			src:    uint64(n.ID),
		})
		t.stall = m.Timing.SpawnCycles - 1
		if t.stall < 0 {
			t.stall = 0
		}
		n.Spawns++
	case OpNodeID:
		set(in.Rd, uint64(n.ID))
	case OpPrint:
		if m.Output != nil {
			m.Output(n.ID, ra())
		}
	default:
		return fmt.Errorf("isa: node %d pc %d: unimplemented op %v", n.ID, t.PC, in.Op)
	}
	t.PC = pcNext
	return nil
}

// TotalInstructions sums instruction counts over nodes.
func (m *Machine) TotalInstructions() int64 {
	var s int64
	for _, n := range m.Nodes {
		s += n.Instructions
	}
	return s
}

// Utilization returns the busy fraction of node i over the run.
func (m *Machine) Utilization(i int) float64 {
	n := m.Nodes[i]
	total := n.BusyCycles + n.IdleCycles
	if total == 0 {
		return 0
	}
	return float64(n.BusyCycles) / float64(total)
}
