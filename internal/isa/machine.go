package isa

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/fault"
)

// ErrCanceled reports a run stopped early because Machine.Cancel returned
// true. Callers distinguish it from execution faults with errors.Is.
var ErrCanceled = errors.New("isa: run canceled")

// Timing parameterizes the cycle costs of the interpreter, in LWP cycles.
// Defaults follow Table 1's LWP figures (memory = TML/TLcycle = 6 LWP
// cycles) and the hardware-assisted parcel costs.
type Timing struct {
	// MemCycles is the cost of LD/ST/AMO (one word through the row
	// buffer).
	MemCycles int64
	// WideMemCycles is the cost of a wide (W-word) memory operation; with
	// a 2048-bit row one activation covers all W words, so the default
	// equals MemCycles.
	WideMemCycles int64
	// SpawnCycles is the local cost of creating and launching a parcel.
	SpawnCycles int64
	// NetLatency is the parcel flight time between distinct nodes.
	NetLatency int64
}

// DefaultTiming returns the Table-1-derived costs.
func DefaultTiming() Timing {
	return Timing{MemCycles: 6, WideMemCycles: 6, SpawnCycles: 2, NetLatency: 200}
}

// Validate checks the timing.
func (t Timing) Validate() error {
	if t.MemCycles <= 0 || t.WideMemCycles <= 0 || t.SpawnCycles < 0 || t.NetLatency < 0 {
		return fmt.Errorf("isa: invalid timing %+v", t)
	}
	return nil
}

// Thread is one hardware thread context. Threads live in a per-node value
// slab (no per-thread heap allocation); finished contexts are recycled
// through a free list, so steady-state spawn/halt churn allocates nothing.
type Thread struct {
	PC   uint64
	Regs [NumRegs]uint64
	// stall > 0 means the thread is paying a multi-cycle cost.
	stall int64
	done  bool
}

// flight is a parcel in transit. (sent, src) is a strict total order over
// flights — a node issues at most one instruction per cycle and fused
// tails never spawn — and it is exactly the order the per-cycle loop
// appends (and therefore delivers) them in. Windowed and parallel
// execution restore that order at every window barrier, so same-cycle
// deliveries at one node always replay the serial schedule.
type flight struct {
	arrive int64 // cycle of delivery
	sent   int64 // cycle the spawn issued
	node   int
	entry  uint64
	arg    uint64
	src    uint64
}

// NodeState is one PIM node of the machine.
type NodeState struct {
	ID  int
	Mem []uint64
	// threads is the thread-context slab; issue is round-robin over it.
	// free holds recycled (halted) slots, live counts unfinished threads.
	threads []Thread
	free    []int32
	live    int
	next    int

	// decoded is the pre-decoded program slab covering node memory
	// [progBase, progBase+len(decoded)): built by Load, kept coherent
	// with VM stores by patch/patchWide, dropped by Reset. PCs outside
	// the span fall back to per-cycle DecodeInstr.
	progBase uint64
	decoded  []decop

	// Counters.
	Instructions int64
	MemOps       int64
	WideOps      int64
	Spawns       int64
	BusyCycles   int64
	IdleCycles   int64
	Completed    int64

	// Parcel-delivery counters, live only on faulted runs (all zero when
	// Machine.Fault is nil). Every counter is attributed to the *sending*
	// node at send time — a pure function of that node's own instruction
	// stream — so parallel partitions never write another partition's
	// counters and the counts are identical across execution modes.
	ParcelsSent      int64 // remote spawns routed through the fault plan
	ParcelDrops      int64 // transmission attempts lost in the network
	ParcelCorrupts   int64 // attempts rejected by the receiver's CRC
	ParcelDups       int64 // duplicate frames (suppressed in reliable mode)
	ParcelRetries    int64 // reliable-mode retransmissions
	ParcelsDelivered int64 // parcels whose payload reached the destination
	ParcelsLost      int64 // parcels that never arrived (all attempts faulted)

	// seq numbers this node's outbound parcels, forming the canonical
	// fault identity (sent cycle, src, seq) together with the send cycle.
	seq uint64
}

// Load copies a program image into node memory and pre-decodes it into
// the node's decoded-op slab (see decode.go). Host code that pokes
// NodeState.Mem directly inside the program span afterwards must re-Load
// for the patch to be visible to the decoded dispatch.
func (n *NodeState) Load(p *Program) error {
	if p.Origin+uint64(len(p.Words)) > uint64(len(n.Mem)) {
		return fmt.Errorf("isa: program [%d, %d) exceeds node memory %d",
			p.Origin, p.Origin+uint64(len(p.Words)), len(n.Mem))
	}
	copy(n.Mem[p.Origin:], p.Words)
	n.predecode(p.Origin, uint64(len(p.Words)))
	return nil
}

// StartThread creates a thread at entry with r1 = arg, r2 = src, reusing a
// recycled context slot when one is free.
func (n *NodeState) StartThread(entry, arg, src uint64) {
	n.startThread(entry, arg, src)
}

// startThread is StartThread returning the slot index the thread landed
// in, for callers tracking readiness by slot (runNodeWindowFast).
func (n *NodeState) startThread(entry, arg, src uint64) int {
	var idx int
	if k := len(n.free); k > 0 {
		idx = int(n.free[k-1])
		n.free = n.free[:k-1]
		n.threads[idx] = Thread{}
	} else {
		idx = len(n.threads)
		n.threads = append(n.threads, Thread{})
	}
	t := &n.threads[idx]
	t.PC = entry
	t.Regs[1] = arg
	t.Regs[2] = src
	n.live++
	return idx
}

// LiveThreads returns the number of unfinished threads.
func (n *NodeState) LiveThreads() int { return n.live }

// Machine is a deterministic cycle-driven multi-node PIM interpreter: one
// instruction issue per node per cycle from the round-robin ready thread
// (fine-grain multithreading), memory/wide/parcel costs modeled as thread
// stalls, parcels delivered after a network latency.
type Machine struct {
	Nodes  []*NodeState
	Timing Timing
	// Output receives values from the print instruction (nil = dropped).
	Output func(node int, value uint64)
	// Trace, when non-nil, observes every issued instruction before it
	// executes — the debugger/profiler hook.
	Trace func(cycle int64, node int, pc uint64, in Instr)
	// NetDelay, when non-nil, supplies the parcel flight time between
	// distinct nodes instead of the flat Timing.NetLatency — the hook a
	// topology-aware interconnect (internal/network) plugs into.
	// Node-local spawns never consult it and stay free.
	NetDelay func(src, dst int) int64
	// MemDelay, when non-nil, supplies the cost of one memory operation
	// instead of the flat Timing.MemCycles/WideMemCycles — the hook a
	// row-buffer timing model (internal/dram) plugs into. Costs below one
	// cycle are clamped to one.
	MemDelay func(node int, addr uint64, wide bool) int64
	// MaxCycles bounds Run (0 = no bound).
	MaxCycles int64
	// ForceInterpret disables the pre-decoded dispatch: every issued
	// cycle re-decodes the instruction word, as the VM did before the
	// decoded slab existed. The two paths are semantically identical —
	// this switch is the differential-testing oracle and the debugging
	// escape hatch.
	ForceInterpret bool
	// Parallelism, when > 1, runs the windowed node-major schedule on
	// that many workers under a conservative time-windowed protocol (see
	// runParallel): node partitions advance in lockstep windows bounded
	// by the network lookahead and exchange parcels only at window
	// barriers, in canonical (sent, src) order. Every counter, memory
	// word, fault, and cycle count is byte-identical to serial execution
	// regardless of the worker count or partition assignment. Runs that
	// install Trace/Output/MemDelay hooks, set ForceInterpret, or have no
	// usable lookahead (see NetLookahead) ignore Parallelism and execute
	// serially.
	Parallelism int
	// Partition optionally assigns node i to worker Partition[i] in
	// [0, Parallelism); nil means contiguous balanced blocks. The
	// assignment only shapes load balance, never results.
	Partition []int
	// NetLookahead is the caller's promise that NetDelay(src, dst) >=
	// NetLookahead for every src != dst pair — the conservative lookahead
	// that bounds the execution window when a topology hook is installed.
	// 0 means unknown: the machine falls back to serial per-cycle
	// execution rather than guess (a NetDelay below the promise is caught
	// at the first window barrier and reported as an error). Ignored when
	// NetDelay is nil (the flat Timing.NetLatency is its own lookahead).
	// The function must be pure: parallel workers call it concurrently.
	NetLookahead int64
	// MaxWindow caps the synchronization window width in cycles so a
	// huge lookahead cannot starve parcel-free runs of termination
	// checks (0 = the 65536 default).
	MaxWindow int64
	// Fault, when non-nil, injects the plan's deterministic faults into
	// the run: parcel drop/corruption/duplication/jitter on the remote
	// spawn path, straggler cost scaling on memory and spawn stalls, and
	// a crash-at-cycle stop. Every decision is keyed by canonical parcel
	// identity (sent cycle, src, seq) or node index — never execution
	// order — so faulted runs keep the byte-identical-under-parallelism
	// guarantee. Jitter only adds latency, so declared lookaheads hold.
	Fault *fault.Plan
	// Cancel, when non-nil, is polled at cycle/window boundaries; once it
	// returns true the run stops with ErrCanceled (machine state is
	// best-effort, as on any mid-run fault). It must be safe to call from
	// the Run goroutine at any time — an atomic load or closed-channel
	// check, typically — and lets a watchdog or serving deadline actually
	// stop an abandoned run instead of leaking it.
	Cancel func() bool
	// Reliable selects the delivery protocol under an active fault plan.
	// True models a sequence-numbered ack/timeout/retransmit exchange:
	// the sender retries on an RTO timer until an attempt survives, the
	// receiver suppresses duplicates by sequence number, and programs
	// complete under loss (at degraded goodput, visible in the Parcel*
	// counters). False models fire-and-forget datagrams: a dropped or
	// corrupted parcel is simply lost and a duplicated one starts a
	// second payload thread. Ignored when Fault is nil.
	Reliable bool

	cycle    int64
	inFlight []flight
	// fusePending holds the superinstruction tails queued this cycle;
	// they run once every node has stepped, and only if no parcel is in
	// flight (see decode.go). The slab is reused cycle to cycle.
	fusePending []fuseRef
}

// fuseRef names a thread whose fused successor is pending this cycle.
type fuseRef struct {
	n  *NodeState
	ti int32
}

// NewMachine creates n nodes with memWords words of memory each.
func NewMachine(n int, memWords int, timing Timing) (*Machine, error) {
	if n <= 0 || memWords <= 0 {
		return nil, fmt.Errorf("isa: NewMachine(%d, %d)", n, memWords)
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Timing: timing}
	for i := 0; i < n; i++ {
		m.Nodes = append(m.Nodes, &NodeState{ID: i, Mem: make([]uint64, memWords)})
	}
	return m, nil
}

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.cycle }

// LoadAll loads the same program into every node (SPMD style).
func (m *Machine) LoadAll(p *Program) error {
	for _, n := range m.Nodes {
		if err := n.Load(p); err != nil {
			return err
		}
	}
	return nil
}

// Reset returns the machine to cycle zero — no threads, no parcels in
// flight, zeroed memory and counters — while keeping every allocated slab
// (thread contexts, flight queue, node memory), so a caller can re-load
// and re-run without reallocating.
func (m *Machine) Reset() {
	m.cycle = 0
	m.inFlight = m.inFlight[:0]
	m.fusePending = m.fusePending[:0]
	for _, n := range m.Nodes {
		clear(n.Mem)
		n.threads = n.threads[:0]
		n.free = n.free[:0]
		n.decoded = n.decoded[:0]
		n.progBase = 0
		n.live = 0
		n.next = 0
		n.Instructions, n.MemOps, n.WideOps, n.Spawns = 0, 0, 0, 0
		n.BusyCycles, n.IdleCycles, n.Completed = 0, 0, 0
		n.ParcelsSent, n.ParcelDrops, n.ParcelCorrupts, n.ParcelDups = 0, 0, 0, 0
		n.ParcelRetries, n.ParcelsDelivered, n.ParcelsLost = 0, 0, 0
		n.seq = 0
	}
}

// Run executes until no threads are live and no parcels are in flight, or
// until MaxCycles. It returns the cycle count and an error for execution
// faults (bad opcode, out-of-range memory) or cycle exhaustion.
//
// Run fast-forwards through cycles in which nothing can issue: when a
// cycle goes by without a single issued instruction, every live thread
// is stalled and the next possible issue is the minimum of the stall
// expiries and the next parcel arrival, so the intervening cycles are
// pure bookkeeping and are applied in bulk. Cycle counts, counters, and
// faults are identical to per-cycle stepping (the Step API still
// advances one exact cycle at a time).
func (m *Machine) Run() (int64, error) {
	// Node-major windowed execution (see runWindowed) needs every
	// cross-node interaction bounded and unobserved: a network with a
	// known minimum cross-node latency (the flat Timing.NetLatency, or a
	// NetDelay hook with a declared NetLookahead), flat memory timing
	// (MemDelay hooks may carry cross-call state), and no per-cycle
	// observers (Trace, Output). ForceInterpret keeps the full
	// pre-decode-era loop as the differential-testing oracle. With
	// Parallelism > 1 and a positive lookahead the windows themselves run
	// on multiple workers (runParallel), byte-identical to serial.
	if m.Trace == nil && m.Output == nil && m.MemDelay == nil && !m.ForceInterpret {
		if la, ok := m.lookahead(); ok {
			window := la + 1
			if maxW := m.maxWindow(); window > maxW || window < 1 {
				window = maxW
			}
			if m.Parallelism > 1 && la > 0 && len(m.Nodes) > 1 {
				return m.runParallel(window)
			}
			return m.runWindowed(window)
		}
	}
	for {
		live := false
		for _, n := range m.Nodes {
			if n.live > 0 {
				live = true
				break
			}
		}
		if !live && len(m.inFlight) == 0 {
			return m.cycle, nil
		}
		if m.canceled() {
			return m.cycle, ErrCanceled
		}
		if lim := m.limit(); lim > 0 && m.cycle >= lim {
			return m.cycle, m.limitErr(lim)
		}
		issued, err := m.step()
		if err != nil {
			return m.cycle, err
		}
		if !issued {
			m.fastForward()
		}
	}
}

// canceled polls the Cancel hook.
func (m *Machine) canceled() bool { return m.Cancel != nil && m.Cancel() }

// Step advances the machine one cycle.
func (m *Machine) Step() error {
	_, err := m.step()
	return err
}

// step advances one cycle and reports whether any node issued an
// instruction (false means every live thread is stalled — the
// fast-forward trigger).
func (m *Machine) step() (bool, error) {
	m.cycle++
	// Deliver parcels due this cycle (in send order: deterministic).
	kept := m.inFlight[:0]
	for _, f := range m.inFlight {
		if f.arrive <= m.cycle {
			m.Nodes[f.node].StartThread(f.entry, f.arg, f.src)
		} else {
			kept = append(kept, f)
		}
	}
	m.inFlight = kept
	issued := false
	for _, n := range m.Nodes {
		ok, err := m.stepNode(n, true)
		if err != nil {
			return issued, err
		}
		issued = issued || ok
	}
	// Fused superinstruction tails run once the whole cycle has stepped:
	// only now is it known that no spawn issued this cycle, so no parcel
	// can deliver a competing thread on the (pre-claimed) next cycle.
	if len(m.fusePending) > 0 {
		if len(m.inFlight) == 0 {
			for _, p := range m.fusePending {
				m.execFusedTail(p.n, p.ti)
			}
		}
		m.fusePending = m.fusePending[:0]
	}
	return issued, nil
}

// fastForward bulk-applies the cycles up to (but not including) the next
// cycle on which anything can issue: stall expiries tick down, busy/idle
// counters advance, the clock jumps. Callers guarantee the current cycle
// issued nothing, so every skipped cycle would have been an exact no-op
// scan. The jump is capped at the run limit (MaxCycles, or an earlier
// planned crash) so exhaustion faults at the same cycle a per-cycle run
// would report.
func (m *Machine) fastForward() {
	const never = int64(^uint64(0) >> 1)
	next := never
	for _, f := range m.inFlight {
		if f.arrive < next {
			next = f.arrive
		}
	}
	for _, n := range m.Nodes {
		if n.live == 0 {
			continue
		}
		for i := range n.threads {
			t := &n.threads[i]
			if t.done {
				continue
			}
			if c := m.cycle + t.stall + 1; c < next {
				next = c
			}
		}
	}
	if next == never {
		return
	}
	delta := next - m.cycle - 1
	if lim := m.limit(); lim > 0 && m.cycle+delta > lim {
		delta = lim - m.cycle
	}
	if delta <= 0 {
		return
	}
	m.cycle += delta
	for _, n := range m.Nodes {
		if n.live == 0 {
			n.IdleCycles += delta
			continue
		}
		n.BusyCycles += delta
		for i := range n.threads {
			t := &n.threads[i]
			if !t.done && t.stall > 0 {
				t.stall -= delta
			}
		}
	}
}

// limit returns the run's effective cycle bound: MaxCycles, tightened to
// the fault plan's crash cycle when one is scheduled earlier (a planned
// crash is just a run limit that reports differently). 0 means unbounded.
func (m *Machine) limit() int64 {
	lim := m.MaxCycles
	if m.Fault != nil {
		if _, at, ok := m.Fault.CrashAt(len(m.Nodes)); ok && (lim <= 0 || at < lim) {
			lim = at
		}
	}
	return lim
}

// limitErr builds the error for a run stopped at cycle bound lim: a node
// crash when the fault plan scheduled one there, otherwise the livelock/
// exhaustion diagnosis. Both include the live-thread and in-flight state
// so a degraded run is diagnosable from the engine's per-point error
// capture alone.
func (m *Machine) limitErr(lim int64) error {
	if m.Fault != nil {
		if node, at, ok := m.Fault.CrashAt(len(m.Nodes)); ok && at == lim {
			return fmt.Errorf("isa: node %d crashed at cycle %d (fault plan): run stopped with %s", node, at, m.liveSummary())
		}
	}
	return fmt.Errorf("isa: exceeded %d cycles (livelock or unfinished work) at cycle %d with %s", lim, m.cycle, m.liveSummary())
}

// liveSummary renders the machine's blocked state: the total live-thread
// count, the per-node counts for the first few stuck nodes, and the
// number of parcels still in flight.
func (m *Machine) liveSummary() string {
	var b strings.Builder
	total, listed, stuck := 0, 0, 0
	for _, n := range m.Nodes {
		if n.live == 0 {
			continue
		}
		total += n.live
		stuck++
		if listed < 8 {
			if listed > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "node%d=%d", n.ID, n.live)
			listed++
		}
	}
	if total == 0 {
		return fmt.Sprintf("0 live threads, %d parcels in flight", len(m.inFlight))
	}
	tail := ""
	if stuck > listed {
		tail = fmt.Sprintf(" +%d more nodes", stuck-listed)
	}
	return fmt.Sprintf("%d live threads [%s%s], %d parcels in flight", total, b.String(), tail, len(m.inFlight))
}

// lookahead returns the machine's conservative network lookahead — a
// lower bound L on the flight latency of every cross-node parcel, so a
// parcel sent at cycle c cannot arrive before c+L+1 — and whether one is
// known. With the flat network the latency itself is the bound; with a
// NetDelay hook the caller must declare one via NetLookahead (ok=false
// otherwise, routing Run to the per-cycle loop).
func (m *Machine) lookahead() (la int64, ok bool) {
	if m.NetDelay == nil {
		return m.Timing.NetLatency, true
	}
	if m.NetLookahead > 0 {
		return m.NetLookahead, true
	}
	return 0, false
}

// defaultMaxWindow caps the synchronization window when MaxWindow is
// unset: wide enough that every in-repo latency regime (<= 5000 cycles)
// runs one barrier per lookahead, small enough that termination checks
// and clock arithmetic stay sane for extreme NetLatency values.
const defaultMaxWindow = 1 << 16

func (m *Machine) maxWindow() int64 {
	if m.MaxWindow > 0 {
		return m.MaxWindow
	}
	return defaultMaxWindow
}

// sortNewFlights restores canonical (sent, src) send order over the
// flights launched in the window that just ended. Node-major execution
// appends them grouped by sending node rather than in issue order; the
// flights already in the queue at window start (sent < wstart) are in
// canonical order and precede every new one, so sorting the new tail —
// insertion sort, alloc-free, tails are at most a handful of parcels —
// re-establishes the global order the per-cycle loop would have produced.
func sortNewFlights(fl []flight, wstart int64) {
	b := len(fl)
	for i := range fl {
		if fl[i].sent >= wstart {
			b = i
			break
		}
	}
	insertionSortFlights(fl[b:])
}

// insertionSortFlights sorts flights by (sent, src) — a strict total
// order (one issue slot per node per cycle).
func insertionSortFlights(fl []flight) {
	for i := 1; i < len(fl); i++ {
		f := fl[i]
		j := i - 1
		for j >= 0 && (fl[j].sent > f.sent || (fl[j].sent == f.sent && fl[j].src > f.src)) {
			fl[j+1] = fl[j]
			j--
		}
		fl[j+1] = f
	}
}

// runWindowed executes the machine node-major in windows of at most
// lookahead+1 cycles: each node runs a whole window over its own
// threads and memory before the next node starts. Within one window the
// nodes cannot interact — a cross-node parcel launched at cycle c
// arrives no earlier than c+lookahead+1, past the window's last cycle —
// so per-node execution over the same cycle range is exactly the serial
// interleaving, while the round-robin scan and the node's memory stay
// cache-hot across the whole window instead of being evicted by seven
// other nodes every cycle. Node-local parcels (latency zero) are
// delivered inside the window by scanning the flights the node itself
// appended. Cycle counts, counters, memory, and faults are identical to
// the per-cycle loop; Run gates entry on the conditions that make the
// proof hold (no Trace/Output observers ordering events across nodes
// within a cycle, no MemDelay hook, and either a flat network or a
// NetDelay hook with a declared NetLookahead).
func (m *Machine) runWindowed(window int64) (int64, error) {
	for {
		live := false
		for _, n := range m.Nodes {
			if n.live > 0 {
				live = true
				break
			}
		}
		if !live && len(m.inFlight) == 0 {
			return m.cycle, nil
		}
		if m.canceled() {
			return m.cycle, ErrCanceled
		}
		if lim := m.limit(); lim > 0 && m.cycle >= lim {
			return m.cycle, m.limitErr(lim)
		}
		wstart := m.cycle + 1
		wend := wstart + window - 1
		if lim := m.limit(); lim > 0 && wend > lim {
			wend = lim
		}
		// The first fault in (cycle, node) order wins, as in the serial
		// loop. Later-ordered nodes may have run past the fault cycle
		// when it is reported; post-fault machine state is best-effort
		// either way.
		var (
			firstErr      error
			firstErrCycle int64
			lastIssue     int64
		)
		for _, n := range m.Nodes {
			last, errCycle, err := m.runNodeWindow(n, wstart, wend)
			if err != nil && (firstErr == nil || errCycle < firstErrCycle) {
				firstErr, firstErrCycle = err, errCycle
			}
			if last > lastIssue {
				lastIssue = last
			}
		}
		if firstErr != nil {
			m.cycle = firstErrCycle
			return m.cycle, firstErr
		}
		// Drop delivered flights (tombstoned by runNodeWindow) and restore
		// canonical (sent, src) send order over the window's new parcels,
		// so same-cycle deliveries at one node replay the serial schedule
		// even when flight times differ per pair (NetDelay). Any surviving
		// flight due inside the window means a cross-node latency undercut
		// the declared lookahead — the window proof is void, so fault
		// rather than silently diverge from per-cycle execution.
		kept := m.inFlight[:0]
		for _, f := range m.inFlight {
			if f.node >= 0 {
				if f.arrive <= wend {
					m.cycle = wend
					return m.cycle, fmt.Errorf(
						"isa: parcel %d->%d due at cycle %d survived the window ending %d: NetDelay below NetLookahead %d",
						f.src, f.node, f.arrive, wend, m.NetLookahead)
				}
				kept = append(kept, f)
			}
		}
		m.inFlight = kept
		sortNewFlights(m.inFlight, wstart)
		m.cycle = wend
		// If the machine finished inside the window, the run ended at
		// the final halt: the serial loop stops there, so roll back the
		// idle cycles each node charged past it.
		if len(m.inFlight) == 0 {
			done := true
			for _, n := range m.Nodes {
				if n.live > 0 {
					done = false
					break
				}
			}
			if done {
				for _, n := range m.Nodes {
					n.IdleCycles -= wend - lastIssue
				}
				m.cycle = lastIssue
				return m.cycle, nil
			}
		}
	}
}

// runNodeWindow runs node n alone over cycles [wstart, wend], returning
// the last cycle at which it issued an instruction and, on an execution
// fault, the cycle it faulted. Delivered flights are tombstoned
// (node = -1) in place so the shared slice stays index-stable for the
// nodes that have not run their window yet.
func (m *Machine) runNodeWindow(n *NodeState, wstart, wend int64) (lastIssue, errCycle int64, err error) {
	c := wstart
	if len(n.threads) < 64 {
		var resume int64
		lastIssue, resume, errCycle, err = m.runNodeWindowFast(n, wstart, wend)
		if err != nil || resume == 0 {
			return lastIssue, errCycle, err
		}
		// The thread slab outgrew the 64-slot readiness mask mid-window
		// (a delivery burst); finish the window generically.
		c = resume
	}
	for c <= wend {
		m.cycle = c
		if len(m.inFlight) > 0 {
			for i := range m.inFlight {
				f := &m.inFlight[i]
				if f.node == n.ID && f.arrive <= c {
					n.StartThread(f.entry, f.arg, f.src)
					f.node = -1
				}
			}
		}
		if n.live == 0 {
			// Idle until the node's next parcel arrival, or out the
			// window if none is due.
			next := wend + 1
			for i := range m.inFlight {
				f := &m.inFlight[i]
				if f.node == n.ID && f.arrive < next {
					next = f.arrive
				}
			}
			n.IdleCycles += next - c
			c = next
			continue
		}
		issued, serr := m.stepNode(n, c < wend)
		if serr != nil {
			return lastIssue, c, serr
		}
		// Drain the fused tail this node may have queued: within its
		// window the node owns the next cycle's slot outright (stepNode
		// only marks fusion fusible away from the window edge, and an
		// empty flight queue at issue time rules out a competing
		// delivery), so the tail runs here instead of at the end of a
		// global cycle.
		if len(m.fusePending) > 0 {
			if len(m.inFlight) == 0 {
				for _, p := range m.fusePending {
					m.execFusedTail(p.n, p.ti)
				}
			}
			m.fusePending = m.fusePending[:0]
		}
		if issued {
			lastIssue = c
			c++
			continue
		}
		// Every live thread is stalled: jump to the next stall expiry
		// or parcel arrival, mirroring fastForward node-locally.
		next := wend + 1
		for i := range n.threads {
			t := &n.threads[i]
			if !t.done {
				if w := c + t.stall + 1; w < next {
					next = w
				}
			}
		}
		for i := range m.inFlight {
			f := &m.inFlight[i]
			if f.node == n.ID && f.arrive > c && f.arrive < next {
				next = f.arrive
			}
		}
		if delta := next - c - 1; delta > 0 {
			n.BusyCycles += delta
			for i := range n.threads {
				t := &n.threads[i]
				if !t.done && t.stall > 0 {
					t.stall -= delta
				}
			}
		}
		c = next
	}
	return lastIssue, 0, nil
}

// runNodeWindowFast is runNodeWindow's event-driven inner loop for nodes
// whose thread slab fits a 64-bit readiness mask. The per-cycle
// round-robin scan — O(threads) loads and stall decrements every cycle —
// collapses to O(1): ready threads live in a bitmask (first-set-bit from
// the rotating issue pointer is exactly the serial scan's choice),
// stalled threads carry absolute wake cycles instead of countdowns (so
// nothing ticks), and the next wake/arrival is a single compare per
// cycle. State is local to the window — masks are rebuilt from the slab
// on entry and flushed back (wake minus resume cycle = countdown) on
// every exit — so the slab representation, and with it the generic and
// per-cycle paths, stay untouched. Returns resume == 0 when the window
// completed, or the cycle the generic loop must take over from when a
// delivery pushed the slab past the mask width.
func (m *Machine) runNodeWindowFast(n *NodeState, wstart, wend int64) (lastIssue, resume, errCycle int64, err error) {
	const never = int64(^uint64(0) >> 1)
	var readyM, stalledM uint64
	var wake [64]int64
	minWake := never
	for i := range n.threads {
		t := &n.threads[i]
		if t.done {
			continue
		}
		if t.stall > 0 {
			stalledM |= 1 << uint(i)
			w := wstart + t.stall
			wake[i] = w
			if w < minWake {
				minWake = w
			}
		} else {
			readyM |= 1 << uint(i)
		}
	}
	// MemDelay is nil on this path (the runWindowed gate checked), so
	// every scalar memory op stalls the same fixed cost — hoist it,
	// including the node's straggler scale (constant per node).
	memC := m.Timing.MemCycles
	if m.Fault != nil {
		memC *= m.Fault.CostScale(n.ID)
	}
	if memC < 1 {
		memC = 1
	}
	// Hot node state hoisted to locals: the stores below (node memory,
	// fuse queue, counters) would otherwise force a reload of every
	// n-field on each iteration. The slab headers are stable inside a
	// window except threads, which parcel delivery can grow — refreshed
	// there. Instruction/memop counts accumulate locally and flush once;
	// execDecoded still bumps the n-fields directly, and the sums commute.
	mem := n.Mem
	prog := n.decoded
	progBase := n.progBase
	threads := n.threads
	var instr, memOps int64
	nextArr := never
	for i := range m.inFlight {
		f := &m.inFlight[i]
		if f.node == n.ID && f.arrive < nextArr {
			nextArr = f.arrive
		}
	}
	next := n.next
	if next >= len(n.threads) {
		next = 0
	}
	var busy, idle int64
	c := wstart
	for c <= wend {
		if nextArr <= c {
			// Deliver this node's due parcels in flight order.
			for i := range m.inFlight {
				f := &m.inFlight[i]
				if f.node == n.ID && f.arrive <= c {
					idx := n.startThread(f.entry, f.arg, f.src)
					f.node = -1
					if idx >= 64 {
						// Mask exhausted: hand the rest of the window
						// (and any still-undelivered parcels) to the
						// generic loop.
						resume = c
						goto flush
					}
					readyM |= 1 << uint(idx)
				}
			}
			// startThread may have grown the slab.
			threads = n.threads
			nextArr = never
			for i := range m.inFlight {
				f := &m.inFlight[i]
				if f.node == n.ID && f.arrive < nextArr {
					nextArr = f.arrive
				}
			}
		}
		if minWake <= c {
			// Move expired stalls to the ready mask, tracking the next
			// wake among the remainder.
			mw := never
			for sm := stalledM; sm != 0; sm &= sm - 1 {
				i := bits.TrailingZeros64(sm)
				if wake[i] <= c {
					stalledM &^= 1 << uint(i)
					readyM |= 1 << uint(i)
					// Clear the slab countdown too: the post-execute
					// check below reads t.stall to detect a fresh stall,
					// so a stale positive value would re-stall the
					// thread for a ghost cycle.
					threads[i].stall = 0
				} else if wake[i] < mw {
					mw = wake[i]
				}
			}
			minWake = mw
		}
		if readyM == 0 {
			if n.live == 0 {
				to := nextArr
				if to > wend {
					to = wend + 1
				}
				idle += to - c
				c = to
				continue
			}
			// Every live thread is stalled: jump to the next wake or
			// arrival (all-stalled cycles count busy, as in stepNode).
			to := minWake
			if nextArr < to {
				to = nextArr
			}
			if to > wend {
				to = wend + 1
			}
			busy += to - c
			c = to
			continue
		}
		// Choose: first ready slot at or after the issue pointer,
		// wrapping — the serial round-robin scan's pick.
		r := readyM &^ (1<<uint(next) - 1)
		var idx int
		if r != 0 {
			idx = bits.TrailingZeros64(r)
		} else {
			idx = bits.TrailingZeros64(readyM)
		}
		nT := len(threads)
		i0 := idx - next
		if i0 < 0 {
			i0 += nT
		}
		next = idx + 1
		if next >= nT {
			next = 0
		}
		// stepNode's scan recomputes its index from n.next, which moves
		// when a thread is chosen mid-scan: with q = min(i0, nT-2-i0) and
		// i0 the chosen slot's distance from the scan start, the q+1 slots
		// after the chosen one are not visited this cycle (their stalls do
		// not tick) and the q slots before it are visited twice (their
		// stalls tick twice, not below zero). Reproduce that schedule
		// exactly on the wake array.
		if q := min(i0, nT-2-i0); q >= 0 && stalledM != 0 {
			// A pushed-out wake only invalidates minWake if it held it.
			recompute := false
			for k := 1; k <= q+1; k++ {
				s := idx + k
				if s >= nT {
					s -= nT
				}
				if stalledM&(1<<uint(s)) != 0 {
					if wake[s] == minWake {
						recompute = true
					}
					wake[s]++
				}
			}
			for k := 1; k <= q; k++ {
				s := idx - k
				if s < 0 {
					s += nT
				}
				if stalledM&(1<<uint(s)) != 0 {
					if w := wake[s] - 1; w > c {
						wake[s] = w
						if w < minWake {
							minWake = w
						}
					}
				}
			}
			if recompute {
				mw := never
				for sm := stalledM; sm != 0; sm &= sm - 1 {
					if i := bits.TrailingZeros64(sm); wake[i] < mw {
						mw = wake[i]
					}
				}
				minWake = mw
			}
		}
		busy++
		// Dispatch inline (ForceInterpret is false on this path — the
		// runWindowed gate checked — so only the span check remains). The
		// common op classes — ALU (OpAdd..OpLui), control (OpBeq..OpJr),
		// and scalar LD/ST — execute right here, mirroring execDecoded
		// without the call: none can halt, spawn, or trace on this path,
		// none reads m.cycle, and the fixed memory cost is hoisted above.
		// Everything else (wide, amo, spawn, halt, print, invalid) goes
		// through execDecoded behind an m.cycle store and spawn tracking.
		//
		// The superinstruction precondition, evaluated only where a fuse
		// head can act on it and sharpened to what the node can see: sole
		// ready thread, chosen at the scan's last slot (i0 == nT-1, the
		// only case stepNode's double-visit of the chosen slot cannot
		// inflate its ready count past one), no stall expiring into cycle
		// c+1, and no parcel arriving here by c+1 (cross-node parcels from
		// this window land past wend, and c < wend keeps the tail's slot
		// inside the window, so nextArr covers every candidate).
		t := &threads[idx]
		var serr error
		if off := t.PC - progBase; off < uint64(len(prog)) {
			d := &prog[off]
			if d.op >= OpAdd && d.op <= OpLui {
				// ALU ops cannot fault, halt, or stall, so they skip the
				// shared epilogue entirely; only a drained fused tail can
				// change the thread's scheduling state, handled inline.
				instr++
				regs := &t.Regs
				var v uint64
				switch d.op {
				case OpAdd:
					v = regs[d.ra] + regs[d.rb]
				case OpSub:
					v = regs[d.ra] - regs[d.rb]
				case OpMul:
					v = regs[d.ra] * regs[d.rb]
				case OpAnd:
					v = regs[d.ra] & regs[d.rb]
				case OpOr:
					v = regs[d.ra] | regs[d.rb]
				case OpXor:
					v = regs[d.ra] ^ regs[d.rb]
				case OpShl:
					v = regs[d.ra] << (regs[d.rb] & 63)
				case OpShr:
					v = regs[d.ra] >> (regs[d.rb] & 63)
				case OpAddi:
					v = regs[d.ra] + d.imm
				case OpLui:
					v = d.imm
				}
				if d.rd != 0 {
					regs[d.rd] = v
				}
				t.PC++
				lastIssue = c
				if d.fuse && c < wend && readyM == 1<<uint(idx) && i0 == nT-1 &&
					minWake != c+1 && nextArr > c+1 {
					// Conditions proven, so the tail runs right here (no
					// queue round-trip). It cannot halt — execFusedTail
					// skips terminal ops — so only a fresh stall (the
					// tail's own cost, or a memory tail's) can result.
					m.execFusedTail(n, int32(idx))
					if st := t.stall; st > 0 {
						readyM &^= 1 << uint(idx)
						stalledM |= 1 << uint(idx)
						w := c + st + 1
						wake[idx] = w
						if w < minWake {
							minWake = w
						}
					}
				}
				c++
				continue
			}
			if d.op >= OpBeq && d.op <= OpJr {
				// Control ops only move the PC: no fault, no stall, no
				// fusion (branches are never fuse heads) — skip the
				// epilogue.
				instr++
				regs := &t.Regs
				pc := t.PC + 1
				switch d.op {
				case OpBeq:
					if regs[d.ra] == regs[d.rb] {
						pc = d.imm
					}
				case OpBne:
					if regs[d.ra] != regs[d.rb] {
						pc = d.imm
					}
				case OpBlt:
					if regs[d.ra] < regs[d.rb] {
						pc = d.imm
					}
				case OpJmp:
					pc = d.imm
				case OpJr:
					pc = regs[d.ra]
				}
				t.PC = pc
				lastIssue = c
				c++
				continue
			}
			if d.op == OpLd {
				instr++
				regs := &t.Regs
				addr := regs[d.ra] + d.imm
				if addr >= uint64(len(mem)) {
					errCycle, err = c, memFault(n, t.PC, addr)
					goto flush
				}
				if d.rd != 0 {
					regs[d.rd] = mem[addr]
				}
				memOps++
				t.PC++
				lastIssue = c
				// The stall cost is known statically, so move the thread
				// straight to the stalled mask (the slab countdown stays
				// untouched — flush rewrites it from wake). memC == 1
				// means no stall: the thread stays ready.
				if memC > 1 {
					readyM &^= 1 << uint(idx)
					stalledM |= 1 << uint(idx)
					w := c + memC
					wake[idx] = w
					if w < minWake {
						minWake = w
					}
				}
				c++
				continue
			}
			if d.op == OpSt {
				instr++
				regs := &t.Regs
				addr := regs[d.ra] + d.imm
				if addr >= uint64(len(mem)) {
					errCycle, err = c, memFault(n, t.PC, addr)
					goto flush
				}
				mem[addr] = regs[d.rd]
				if addr-progBase < uint64(len(prog)) {
					n.patch(addr)
				}
				memOps++
				t.PC++
				lastIssue = c
				if memC > 1 {
					readyM &^= 1 << uint(idx)
					stalledM |= 1 << uint(idx)
					w := c + memC
					wake[idx] = w
					if w < minWake {
						minWake = w
					}
				}
				c++
				continue
			}
			{
				m.cycle = c
				flightsBefore := len(m.inFlight)
				fusible := c < wend && readyM == 1<<uint(idx) && i0 == nT-1 &&
					minWake != c+1 && nextArr > c+1
				serr = m.execDecoded(n, t, d, idx, fusible)
				if len(m.inFlight) > flightsBefore {
					// A spawn launched: only a node-local parcel can land
					// inside the window, but track it either way.
					for i := flightsBefore; i < len(m.inFlight); i++ {
						f := &m.inFlight[i]
						if f.node == n.ID && f.arrive < nextArr {
							nextArr = f.arrive
						}
					}
				}
			}
		} else {
			m.cycle = c
			flightsBefore := len(m.inFlight)
			serr = m.executeInterp(n, idx)
			if len(m.inFlight) > flightsBefore {
				for i := flightsBefore; i < len(m.inFlight); i++ {
					f := &m.inFlight[i]
					if f.node == n.ID && f.arrive < nextArr {
						nextArr = f.arrive
					}
				}
			}
		}
		if serr != nil {
			errCycle, err = c, serr
			goto flush
		}
		lastIssue = c
		if len(m.fusePending) > 0 {
			// Conditions were proven at queue time and nothing else has
			// run since, so the tail executes unconditionally here.
			for _, p := range m.fusePending {
				m.execFusedTail(p.n, p.ti)
			}
			m.fusePending = m.fusePending[:0]
		}
		if t.done {
			readyM &^= 1 << uint(idx)
		} else if t.stall > 0 {
			readyM &^= 1 << uint(idx)
			stalledM |= 1 << uint(idx)
			w := c + t.stall + 1
			wake[idx] = w
			if w < minWake {
				minWake = w
			}
		}
		c++
	}
flush:
	// Convert wake cycles back to countdowns relative to the first cycle
	// this loop did not execute, restoring the slab representation the
	// generic/per-cycle paths (and the next window) expect.
	for sm := stalledM; sm != 0; sm &= sm - 1 {
		i := bits.TrailingZeros64(sm)
		s := wake[i] - c
		if s < 0 {
			s = 0
		}
		n.threads[i].stall = s
	}
	for rm := readyM; rm != 0; rm &= rm - 1 {
		n.threads[bits.TrailingZeros64(rm)].stall = 0
	}
	n.next = next
	n.Instructions += instr
	n.MemOps += memOps
	n.BusyCycles += busy
	n.IdleCycles += idle
	return lastIssue, resume, errCycle, err
}

// compact drops finished thread contexts once they dominate the slab, so
// a node that fanned out a burst of threads doesn't scan their dead slots
// forever after the burst drains. (The free list bounds slab growth under
// steady churn; this bounds the scan after a one-off spike.) The kept
// contexts stay in issue order and the backing array is reused, so both
// determinism and the zero-alloc discipline survive.
func (n *NodeState) compact() {
	if len(n.threads) < 64 || n.live*2 > len(n.threads) {
		return
	}
	kept := n.threads[:0]
	for i := range n.threads {
		if !n.threads[i].done {
			kept = append(kept, n.threads[i])
		}
	}
	n.threads = kept
	n.free = n.free[:0]
	n.next = 0
}

// stepNode issues at most one instruction on node n, reporting whether
// one issued. The single round-robin scan batch-services every thread of
// the node: stalled threads tick down, the issue slot goes to the next
// ready thread, and the scan proves (or disproves) that the chosen
// thread also owns the *next* cycle's slot — the superinstruction
// precondition (sole ready thread, every other live thread stalled
// beyond the next cycle, no parcel arrival pending). fuseOK lets the
// caller veto fusion when it cannot vouch for the next cycle's slot
// (a windowed run at its window's last cycle).
func (m *Machine) stepNode(n *NodeState, fuseOK bool) (bool, error) {
	if n.live == 0 {
		n.IdleCycles++
		return false, nil
	}
	n.compact()
	// Find the next ready thread round-robin; stalled threads tick down.
	nThreads := len(n.threads)
	chosen := -1
	ready := 0
	nextReady := false
	for i := 0; i < nThreads; i++ {
		idx := n.next + i
		if idx >= nThreads {
			idx -= nThreads
		}
		t := &n.threads[idx]
		if t.done {
			continue
		}
		if t.stall > 0 {
			t.stall--
			if t.stall == 0 {
				nextReady = true
			}
			continue
		}
		ready++
		if chosen < 0 {
			chosen = idx
			n.next = idx + 1
			if n.next >= nThreads {
				n.next = 0
			}
		}
	}
	// All live threads stalled counts busy (the bank is working).
	n.BusyCycles++
	if chosen < 0 {
		return false, nil
	}
	fusible := fuseOK && ready == 1 && !nextReady && len(m.inFlight) == 0
	return true, m.execute(n, chosen, fusible)
}

// memCost returns the cycle cost of one memory operation, scaled by the
// fault plan's straggler factor for slow nodes.
func (m *Machine) memCost(n *NodeState, addr uint64, wide bool) int64 {
	var c int64
	switch {
	case m.MemDelay != nil:
		c = m.MemDelay(n.ID, addr, wide)
	case wide:
		c = m.Timing.WideMemCycles
	default:
		c = m.Timing.MemCycles
	}
	if m.Fault != nil {
		c *= m.Fault.CostScale(n.ID)
	}
	if c < 1 {
		c = 1
	}
	return c
}

// spawnStall returns the issue stall of one spawn instruction (the local
// parcel-launch cost), scaled for straggler nodes.
func (m *Machine) spawnStall(n *NodeState) int64 {
	c := m.Timing.SpawnCycles
	if m.Fault != nil {
		c *= m.Fault.CostScale(n.ID)
	}
	if c < 1 {
		c = 1
	}
	return c - 1
}

// parcelLatency returns the base one-way flight time from n to dst.
func (m *Machine) parcelLatency(n *NodeState, dst int) int64 {
	if dst == n.ID {
		return 0
	}
	if m.NetDelay != nil {
		return m.NetDelay(n.ID, dst)
	}
	return m.Timing.NetLatency
}

// rto is the reliable mode's retransmission timeout toward a destination
// with base latency lat: a full round trip, the worst jitter an attempt
// can pick up, and a small ack-processing slack.
func (m *Machine) rto(lat int64) int64 {
	return 2*lat + m.Fault.Config().JitterMax + 4
}

// sendParcel launches one spawn parcel from n to dst, routing it through
// the fault plan when one is armed. Both execution paths (interpretive
// and pre-decoded) call this, so fault semantics cannot fork between
// them.
//
// The faulted path resolves the entire delivery analytically at send
// time: every attempt's fate is a pure function of (plan seed, identity,
// attempt), so the surviving arrival — if any — is known immediately and
// is the only flight that enters the queue. Crucially the flight keeps
// the *original* send cycle in flight.sent even when retransmissions
// delayed it: (sent, src) is the canonical merge order the windowed and
// parallel barriers restore, and it must name the issuing instruction
// slot, not the retry clock. Extra delay (RTO waits, jitter) only ever
// increases the arrival cycle, so the declared network lookahead remains
// a valid lower bound and conservative windows stay safe.
func (m *Machine) sendParcel(n *NodeState, dst int, entry, arg uint64) {
	lat := m.parcelLatency(n, dst)
	f := flight{arrive: m.cycle + lat + 1, sent: m.cycle, node: dst, entry: entry, arg: arg, src: uint64(n.ID)}
	if dst == n.ID || m.Fault == nil || !m.Fault.NetEnabled() {
		// Node-local spawns never cross the network; without an armed
		// plan the perfect interconnect delivers exactly one flight.
		m.inFlight = append(m.inFlight, f)
		return
	}
	id := fault.Identity{Sent: m.cycle, Src: n.ID, Seq: n.seq}
	n.seq++
	n.ParcelsSent++
	if m.Reliable {
		d := m.Fault.PlanDelivery(id, m.rto(lat))
		n.ParcelDrops += int64(d.Drops)
		n.ParcelCorrupts += int64(d.Corrupts)
		n.ParcelRetries += int64(d.Attempts - 1)
		if d.Duplicated {
			// Delivered twice on the wire; the receiver's sequence number
			// suppresses the copy, so no second thread starts.
			n.ParcelDups++
		}
		if !d.Delivered {
			// Every attempt faulted: the payload never runs. The cycle
			// limit guard diagnoses the stalled program.
			n.ParcelsLost++
			return
		}
		n.ParcelsDelivered++
		f.arrive += d.ExtraDelay
		m.inFlight = append(m.inFlight, f)
		return
	}
	// Unreliable datagram mode: one attempt, no acks, faults are final.
	switch {
	case m.Fault.Dropped(id, 0):
		n.ParcelDrops++
		n.ParcelsLost++
	case m.Fault.Corrupted(id, 0):
		n.ParcelCorrupts++
		n.ParcelsLost++
	default:
		f.arrive += m.Fault.Jitter(id, 0)
		n.ParcelsDelivered++
		m.inFlight = append(m.inFlight, f)
		if m.Fault.Duplicated(id, 0) {
			// No sequence numbers to suppress it: the duplicate starts a
			// second payload thread one cycle (plus jitter) later.
			dup := f
			dup.arrive += 1 + m.Fault.Jitter(id, 1)
			n.ParcelDups++
			m.inFlight = append(m.inFlight, dup)
		}
	}
}

// execute runs one instruction on thread slot ti of node n, dispatching
// through the pre-decoded slab when the PC is inside the program span
// (the hot path) and falling back to per-cycle decode otherwise.
func (m *Machine) execute(n *NodeState, ti int, fusible bool) error {
	if off := n.threads[ti].PC - n.progBase; off < uint64(len(n.decoded)) && !m.ForceInterpret {
		return m.execDecoded(n, &n.threads[ti], &n.decoded[off], ti, fusible)
	}
	return m.executeInterp(n, ti)
}

// executeInterp is the interpretive path: decode the instruction word at
// t.PC and execute it. Semantically identical to execDecoded — it serves
// PCs outside the decoded span, the ForceInterpret differential-testing
// mode, and documents the reference semantics the decoded path must
// preserve.
func (m *Machine) executeInterp(n *NodeState, ti int) error {
	t := &n.threads[ti]
	if t.PC >= uint64(len(n.Mem)) {
		return fmt.Errorf("isa: node %d: PC %d out of memory", n.ID, t.PC)
	}
	in, err := DecodeInstr(n.Mem[t.PC])
	if err != nil {
		return fmt.Errorf("isa: node %d pc %d: %w", n.ID, t.PC, err)
	}
	if m.Trace != nil {
		m.Trace(m.cycle, n.ID, t.PC, in)
	}
	n.Instructions++
	pcNext := t.PC + 1
	rd := func() uint64 { return t.Regs[in.Rd] }
	ra := func() uint64 { return t.Regs[in.Ra] }
	rb := func() uint64 { return t.Regs[in.Rb] }
	set := func(r uint8, v uint64) {
		if r != 0 {
			t.Regs[r] = v
		}
	}
	mem := func(addr uint64) (uint64, error) {
		if addr >= uint64(len(n.Mem)) {
			return 0, fmt.Errorf("isa: node %d pc %d: memory access %d out of %d",
				n.ID, t.PC, addr, len(n.Mem))
		}
		return n.Mem[addr], nil
	}

	switch in.Op {
	case OpHalt:
		t.done = true
		n.live--
		n.Completed++
		n.free = append(n.free, int32(ti))
		return nil
	case OpAdd:
		set(in.Rd, ra()+rb())
	case OpSub:
		set(in.Rd, ra()-rb())
	case OpMul:
		set(in.Rd, ra()*rb())
	case OpAnd:
		set(in.Rd, ra()&rb())
	case OpOr:
		set(in.Rd, ra()|rb())
	case OpXor:
		set(in.Rd, ra()^rb())
	case OpShl:
		set(in.Rd, ra()<<(rb()&63))
	case OpShr:
		set(in.Rd, ra()>>(rb()&63))
	case OpAddi:
		set(in.Rd, ra()+uint64(int64(in.Imm)))
	case OpLui:
		// Mask the immediate to its architectural 24 bits before
		// shifting: Imm is sign-extended at decode, and the extension
		// bits must not leak into result bits 48-55.
		set(in.Rd, uint64(uint32(in.Imm)&0xffffff)<<24)
	case OpLd:
		addr := ra() + uint64(int64(in.Imm))
		v, err := mem(addr)
		if err != nil {
			return err
		}
		set(in.Rd, v)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpSt:
		addr := ra() + uint64(int64(in.Imm))
		if _, err := mem(addr); err != nil {
			return err
		}
		n.Mem[addr] = rd()
		n.patch(addr)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpBeq:
		if ra() == rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBne:
		if ra() != rb() {
			pcNext = uint64(in.Imm)
		}
	case OpBlt:
		if ra() < rb() {
			pcNext = uint64(in.Imm)
		}
	case OpJmp:
		pcNext = uint64(in.Imm)
	case OpJr:
		pcNext = ra()
	case OpAmoAdd:
		addr := ra()
		v, err := mem(addr)
		if err != nil {
			return err
		}
		n.Mem[addr] = v + rb()
		n.patch(addr)
		set(in.Rd, v)
		t.stall = m.memCost(n, addr, false) - 1
		n.MemOps++
	case OpVAdd:
		d, a, b := rd(), ra(), rb()
		// wideCheck rather than mem(x+WideWords-1): the latter wraps
		// for near-uint64-max bases and would let the element loop
		// index out of range.
		if err := n.wideCheck(t.PC, d); err != nil {
			return err
		}
		if err := n.wideCheck(t.PC, a); err != nil {
			return err
		}
		if err := n.wideCheck(t.PC, b); err != nil {
			return err
		}
		for i := uint64(0); i < WideWords; i++ {
			n.Mem[d+i] = n.Mem[a+i] + n.Mem[b+i]
		}
		n.patchWide(d)
		t.stall = m.memCost(n, d, true) - 1
		n.WideOps++
	case OpVSum:
		a := ra()
		if err := n.wideCheck(t.PC, a); err != nil {
			return err
		}
		var s uint64
		for i := uint64(0); i < WideWords; i++ {
			s += n.Mem[a+i]
		}
		set(in.Rd, s)
		t.stall = m.memCost(n, a, true) - 1
		n.WideOps++
	case OpSpawn:
		dst := int(ra())
		if dst < 0 || dst >= len(m.Nodes) {
			return fmt.Errorf("isa: node %d pc %d: spawn to node %d of %d",
				n.ID, t.PC, dst, len(m.Nodes))
		}
		m.sendParcel(n, dst, rb(), rd())
		t.stall = m.spawnStall(n)
		n.Spawns++
	case OpNodeID:
		set(in.Rd, uint64(n.ID))
	case OpPrint:
		if m.Output != nil {
			m.Output(n.ID, ra())
		}
	default:
		return fmt.Errorf("isa: node %d pc %d: unimplemented op %v", n.ID, t.PC, in.Op)
	}
	t.PC = pcNext
	return nil
}

// TotalInstructions sums instruction counts over nodes.
func (m *Machine) TotalInstructions() int64 {
	var s int64
	for _, n := range m.Nodes {
		s += n.Instructions
	}
	return s
}

// DeliveryStats aggregates the per-node parcel-delivery counters of a
// faulted run (all zero when no fault plan was armed).
type DeliveryStats struct {
	Sent, Drops, Corrupts, Dups, Retries, Delivered, Lost int64
}

// DeliveryStats sums the parcel-delivery counters over all nodes.
func (m *Machine) DeliveryStats() DeliveryStats {
	var s DeliveryStats
	for _, n := range m.Nodes {
		s.Sent += n.ParcelsSent
		s.Drops += n.ParcelDrops
		s.Corrupts += n.ParcelCorrupts
		s.Dups += n.ParcelDups
		s.Retries += n.ParcelRetries
		s.Delivered += n.ParcelsDelivered
		s.Lost += n.ParcelsLost
	}
	return s
}

// Utilization returns the busy fraction of node i over the run.
func (m *Machine) Utilization(i int) float64 {
	n := m.Nodes[i]
	total := n.BusyCycles + n.IdleCycles
	if total == 0 {
		return 0
	}
	return float64(n.BusyCycles) / float64(total)
}

// MeanUtilization returns the busy fraction averaged over all nodes.
func (m *Machine) MeanUtilization() float64 {
	if len(m.Nodes) == 0 {
		return 0
	}
	var s float64
	for i := range m.Nodes {
		s += m.Utilization(i)
	}
	return s / float64(len(m.Nodes))
}
