package isa

import (
	"fmt"
	"sync"
)

// This file is the conservative time-windowed parallel executor — the
// PDES mode of the machine. runWindowed already proved that inside a
// window of lookahead+1 cycles the nodes cannot interact: a cross-node
// parcel launched at cycle c arrives no earlier than c+lookahead+1, past
// the window's last cycle. runParallel exploits exactly that proof for
// concurrency: partition the nodes across P workers, run every
// partition's window concurrently, and exchange the window's parcels
// only at the barrier, merged into the destination partitions' arrival
// queues in canonical (sent, src) order. Because no worker can observe
// another inside a window and the barrier merge is a deterministic
// function of the flights alone, every counter, memory word, fault, and
// cycle count is byte-identical to serial execution — for any worker
// count and any partition assignment.
//
// Each worker owns a shallow Machine view: the shared (read-only) Nodes
// slice plus private cycle/inFlight/fusePending state, so the whole
// single-threaded window machinery — runNodeWindow, the bitmask fast
// path, pre-decoded dispatch, superinstruction fusion — runs unchanged
// on a partition-local arrival queue. Fusion decisions may differ from
// serial (a partition queue can be empty while another partition has
// parcels in flight), but fused execution is timing-transparent by
// construction (execFusedTail charges the hidden issue slot), so the
// difference is unobservable.

// parWorker is one partition of a parallel run.
type parWorker struct {
	// vm is the worker's shallow Machine view: shared Nodes/Timing/
	// NetDelay, private clock and queues. Hooks are nil by the Run gate.
	vm Machine
	// nodes is this partition's node set, in ascending node order (the
	// serial iteration order, which error reduction depends on).
	nodes []*NodeState
	// queue is the partition-local arrival queue, always in canonical
	// (sent, src) order; sends the partition launches during a window are
	// appended behind it and pulled out at the barrier.
	queue []flight
	// start receives [wstart, wend] for the next window.
	start chan [2]int64

	// Per-window results, read by the coordinator after the barrier.
	lastIssue int64
	errCycle  int64
	errNode   int
	err       error
}

// runWindow executes one window over the partition's nodes, keeping the
// first fault in (cycle, node) order — the same tie-break the serial
// node-major loop applies.
func (w *parWorker) runWindow(ws, we int64) {
	w.lastIssue, w.err = 0, nil
	w.vm.inFlight = w.queue
	for _, n := range w.nodes {
		last, errCycle, err := w.vm.runNodeWindow(n, ws, we)
		if err != nil && (w.err == nil || errCycle < w.errCycle) {
			w.err, w.errCycle, w.errNode = err, errCycle, n.ID
		}
		if last > w.lastIssue {
			w.lastIssue = last
		}
	}
	w.queue = w.vm.inFlight
}

// partitions resolves the node->worker assignment: Partition when set,
// else contiguous balanced blocks. owner maps node index -> worker.
func (m *Machine) partitions() (parts [][]*NodeState, owner []int, err error) {
	p := m.Parallelism
	owner = make([]int, len(m.Nodes))
	if m.Partition != nil {
		if len(m.Partition) != len(m.Nodes) {
			return nil, nil, fmt.Errorf("isa: Partition has %d entries for %d nodes",
				len(m.Partition), len(m.Nodes))
		}
		parts = make([][]*NodeState, p)
		for i, w := range m.Partition {
			if w < 0 || w >= p {
				return nil, nil, fmt.Errorf("isa: Partition[%d] = %d outside [0, %d)", i, w, p)
			}
			parts[w] = append(parts[w], m.Nodes[i])
			owner[i] = w
		}
		return parts, owner, nil
	}
	if p > len(m.Nodes) {
		p = len(m.Nodes)
	}
	parts = make([][]*NodeState, p)
	for i, n := range m.Nodes {
		w := i * p / len(m.Nodes)
		parts[w] = append(parts[w], n)
		owner[i] = w
	}
	return parts, owner, nil
}

// runParallel is Run's multi-worker windowed loop. The caller (the Run
// gate) guarantees Parallelism > 1, more than one node, a positive
// lookahead behind the window bound, and no Trace/Output/MemDelay hooks.
func (m *Machine) runParallel(window int64) (int64, error) {
	parts, owner, err := m.partitions()
	if err != nil {
		return m.cycle, err
	}
	workers := make([]*parWorker, len(parts))
	for i, nodes := range parts {
		workers[i] = &parWorker{
			vm: Machine{
				Nodes:        m.Nodes,
				Timing:       m.Timing,
				NetDelay:     m.NetDelay,
				NetLookahead: m.NetLookahead,
				Fault:        m.Fault,
				Reliable:     m.Reliable,
			},
			nodes: nodes,
			start: make(chan [2]int64, 1),
		}
	}
	// Route the pre-existing flight queue (per-cycle append order, so
	// already canonical) to the destination partitions.
	for _, f := range m.inFlight {
		w := workers[owner[f.node]]
		w.queue = append(w.queue, f)
	}
	m.inFlight = m.inFlight[:0]
	// gather restores m.inFlight from the partition queues on the error
	// paths, best-effort (post-fault state is best-effort serially too).
	gather := func() {
		for _, w := range workers {
			for _, f := range w.queue {
				if f.node >= 0 {
					m.inFlight = append(m.inFlight, f)
				}
			}
		}
		insertionSortFlights(m.inFlight)
	}

	// One persistent goroutine per worker for the whole run: a window is
	// two channel operations, not a spawn — runs with hundreds of
	// barriers stay cheap.
	var wg sync.WaitGroup
	for _, w := range workers {
		go func(w *parWorker) {
			for win := range w.start {
				w.runWindow(win[0], win[1])
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, w := range workers {
			close(w.start)
		}
	}()

	var scratch []flight
	for {
		live := false
		for _, n := range m.Nodes {
			if n.live > 0 {
				live = true
				break
			}
		}
		if !live {
			pending := false
			for _, w := range workers {
				if len(w.queue) > 0 {
					pending = true
					break
				}
			}
			if !pending {
				return m.cycle, nil
			}
		}
		if m.canceled() {
			gather()
			return m.cycle, ErrCanceled
		}
		if lim := m.limit(); lim > 0 && m.cycle >= lim {
			// gather first so the error's in-flight count matches what the
			// serial paths report at the same cycle.
			gather()
			return m.cycle, m.limitErr(lim)
		}
		wstart := m.cycle + 1
		wend := wstart + window - 1
		if lim := m.limit(); lim > 0 && wend > lim {
			wend = lim
		}
		wg.Add(len(workers))
		for _, w := range workers {
			w.start <- [2]int64{wstart, wend}
		}
		wg.Wait()

		// Reduce per-worker faults to the serial winner: first in
		// (cycle, node) order, as the ascending node-major loop reports.
		var (
			firstErr      error
			firstErrCycle int64
			firstErrNode  int
			lastIssue     int64
		)
		for _, w := range workers {
			if w.err != nil && (firstErr == nil || w.errCycle < firstErrCycle ||
				(w.errCycle == firstErrCycle && w.errNode < firstErrNode)) {
				firstErr, firstErrCycle, firstErrNode = w.err, w.errCycle, w.errNode
			}
			if w.lastIssue > lastIssue {
				lastIssue = w.lastIssue
			}
		}
		if firstErr != nil {
			m.cycle = firstErrCycle
			gather()
			return m.cycle, firstErr
		}

		// Barrier merge: compact each partition queue (dropping delivered
		// tombstones), pull out the window's new sends, order them
		// canonically, and route them to the destination partitions. Old
		// queue entries all precede new sends in (sent, src) order, so
		// appending the sorted batch keeps every queue canonical.
		scratch = scratch[:0]
		for _, w := range workers {
			kept := w.queue[:0]
			for _, f := range w.queue {
				if f.node < 0 {
					continue
				}
				if f.sent >= wstart {
					scratch = append(scratch, f)
					continue
				}
				kept = append(kept, f)
			}
			w.queue = kept
		}
		insertionSortFlights(scratch)
		for _, f := range scratch {
			if f.arrive <= wend {
				m.cycle = wend
				gather()
				return m.cycle, fmt.Errorf(
					"isa: parcel %d->%d due at cycle %d survived the window ending %d: NetDelay below NetLookahead %d",
					f.src, f.node, f.arrive, wend, m.NetLookahead)
			}
			w := workers[owner[f.node]]
			w.queue = append(w.queue, f)
		}
		m.cycle = wend

		// If the machine finished inside the window, the run ended at the
		// final halt: roll back the idle cycles each node charged past it
		// (identical to runWindowed's completion rollback).
		done := true
		for _, n := range m.Nodes {
			if n.live > 0 {
				done = false
				break
			}
		}
		if done {
			for _, w := range workers {
				if len(w.queue) > 0 {
					done = false
					break
				}
			}
		}
		if done {
			for _, n := range m.Nodes {
				n.IdleCycles -= wend - lastIssue
			}
			m.cycle = lastIssue
			return m.cycle, nil
		}
	}
}
