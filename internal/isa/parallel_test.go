package isa

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/network"
)

// This file is the determinism suite for the conservative time-windowed
// parallel executor (parallel.go): for every builtin program on every
// topology, a parallel run — at any worker count, under any partition
// shape — must be byte-identical to the serial per-cycle interpreter in
// every observable: cycle count, all per-node counters, and all of
// memory. The per-cycle ForceInterpret path is the oracle; the serial
// windowed path rides along as a third independent schedule of the same
// machine.

// parallelPrograms stages each builtin kernel on a 16-node machine
// (square and a power of two, so every topology accepts it): the random
// update kernel (no parcels, pure partition concurrency), the spawn tree
// (parcel fan-out and fan-in), the parcel ping-pong (a single migrating
// thread — maximal cross-partition traffic), and the node-local triad
// (per-node memory streams, zero interaction).
func parallelPrograms(t *testing.T) map[string]func(t *testing.T) *Machine {
	t.Helper()
	const nodes = 16
	timing := DefaultTiming()
	return map[string]func(t *testing.T) *Machine{
		"gups": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultGUPSLayout()
			layout.Updates = 48
			prog, err := GUPSProgram(layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(nodes, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range m.Nodes {
				n.StartThread(entry, uint64(n.ID)*5+1, 0)
				n.StartThread(entry, uint64(n.ID)*5+2, 0)
			}
			m.MaxCycles = 10_000_000
			return m
		},
		"treesum": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultTreeSumLayout()
			prog, err := TreeSumProgram(nodes, layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(nodes, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			for i, n := range m.Nodes {
				for k := 0; k < layout.DataWords; k++ {
					n.Mem[layout.DataBase+uint64(k)] = uint64(i*layout.DataWords + k + 1)
				}
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[0].StartThread(entry, 0, 0)
			m.MaxCycles = 10_000_000
			return m
		},
		"ping": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultPingLayout()
			layout.Peer = nodes / 2
			prog, err := PingProgram(layout, 4)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(nodes, 16384, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			entry, err := prog.Entry("ping")
			if err != nil {
				t.Fatal(err)
			}
			m.Nodes[0].StartThread(entry, 4, 0)
			m.MaxCycles = 10_000_000
			return m
		},
		"triad": func(t *testing.T) *Machine {
			t.Helper()
			layout := DefaultTriadLayout()
			prog, err := StreamTriadProgram(layout)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMachine(nodes, 32768, timing)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadAll(prog); err != nil {
				t.Fatal(err)
			}
			for _, n := range m.Nodes {
				for i := 0; i < layout.Words; i++ {
					n.Mem[layout.A+uint64(i)] = uint64(i + n.ID)
					n.Mem[layout.B+uint64(i)] = uint64(3*i + n.ID)
				}
			}
			entry, err := prog.Entry("main")
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range m.Nodes {
				n.StartThread(entry, 0, 0)
			}
			m.MaxCycles = 10_000_000
			return m
		},
	}
}

// applyTopology installs hop routing at 3 cycles per hop (small, so runs
// cross many window barriers) — or leaves the flat network for "flat".
func applyTopology(t *testing.T, m *Machine, topoName string) {
	t.Helper()
	const perHop = 3
	topo, err := network.ByName(topoName, len(m.Nodes))
	if err != nil {
		t.Fatal(err)
	}
	if topo == nil {
		return
	}
	m.NetDelay = network.HopDelay(topo, perHop)
	m.NetLookahead = network.HopLookahead(topo, perHop)
}

// runFingerprint runs the machine and renders every observable: cycle
// count, per-node counters, and an FNV-64a hash over all node memory.
func runFingerprint(t *testing.T, m *Machine) string {
	t.Helper()
	cycles, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var b bytes.Buffer
	fmt.Fprintf(&b, "cycles=%d\n", cycles)
	for _, n := range m.Nodes {
		for _, w := range n.Mem {
			var raw [8]byte
			for i := range raw {
				raw[i] = byte(w >> (8 * i))
			}
			h.Write(raw[:])
		}
		fmt.Fprintf(&b, "node %d: instr=%d mem=%d wide=%d spawn=%d busy=%d idle=%d done=%d\n",
			n.ID, n.Instructions, n.MemOps, n.WideOps, n.Spawns,
			n.BusyCycles, n.IdleCycles, n.Completed)
		// Parcel-delivery counters: all zero on fault-free runs, so this
		// line is inert for the classic matrix and pins the delivery
		// schedule for the fault matrix.
		fmt.Fprintf(&b, "node %d parcels: sent=%d drop=%d corrupt=%d dup=%d retry=%d deliver=%d lost=%d\n",
			n.ID, n.ParcelsSent, n.ParcelDrops, n.ParcelCorrupts, n.ParcelDups,
			n.ParcelRetries, n.ParcelsDelivered, n.ParcelsLost)
	}
	fmt.Fprintf(&b, "memhash=%#x\n", h.Sum64())
	return b.String()
}

// parallelModes is the execution-mode matrix: the per-cycle oracle, the
// serial windowed path, and P ∈ {1, 2, 4, 7} under contiguous (nil
// Partition) and strided (node i -> worker i mod P) assignments. P=7
// does not divide 16 and P exceeding no divisor exercises ragged
// partitions; strided assignments split adjacent nodes across workers.
func parallelModes() []struct {
	name  string
	apply func(m *Machine)
} {
	modes := []struct {
		name  string
		apply func(m *Machine)
	}{
		{"interp", func(m *Machine) { m.ForceInterpret = true }},
		{"serial", func(m *Machine) {}},
	}
	for _, p := range []int{1, 2, 4, 7} {
		p := p
		modes = append(modes, struct {
			name  string
			apply func(m *Machine)
		}{fmt.Sprintf("p%d-contig", p), func(m *Machine) { m.Parallelism = p }})
		modes = append(modes, struct {
			name  string
			apply func(m *Machine)
		}{fmt.Sprintf("p%d-strided", p), func(m *Machine) {
			m.Parallelism = p
			m.Partition = make([]int, len(m.Nodes))
			for i := range m.Partition {
				m.Partition[i] = i % p
			}
		}})
	}
	return modes
}

// TestParallelDeterminism is the tentpole's acceptance property: for
// every builtin program × topology, every parallel configuration
// produces the identical run fingerprint as the per-cycle serial
// interpreter.
func TestParallelDeterminism(t *testing.T) {
	for _, topo := range []string{"flat", "ring", "mesh", "torus", "hypercube"} {
		for name, build := range parallelPrograms(t) {
			t.Run(topo+"/"+name, func(t *testing.T) {
				var want string
				for _, mode := range parallelModes() {
					m := build(t)
					applyTopology(t, m, topo)
					mode.apply(m)
					got := runFingerprint(t, m)
					if want == "" {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("%s diverges from interp oracle:\n--- %s ---\n%s--- interp ---\n%s",
							mode.name, mode.name, got, want)
					}
				}
			})
		}
	}
}

// TestParallelTraceFallsBackToSerial documents the hook guarantee: a
// Trace observer forces serial per-cycle execution even with Parallelism
// set, so trace streams are byte-identical by construction.
func TestParallelTraceFallsBackToSerial(t *testing.T) {
	build := parallelPrograms(t)["treesum"]
	trace := func(parallel int) []byte {
		m := build(t)
		applyTopology(t, m, "torus")
		m.Parallelism = parallel
		var buf bytes.Buffer
		m.Trace = func(cycle int64, node int, pc uint64, in Instr) {
			fmt.Fprintf(&buf, "%d %d %d %v\n", cycle, node, pc, in)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := trace(1)
	par := trace(4)
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(serial, par) {
		t.Fatalf("trace streams diverge under Parallelism (%d vs %d bytes)", len(serial), len(par))
	}
}

// TestParallelZeroLookaheadFallsBackToSerial is the adversarial case: a
// zero-latency NetDelay (FlatNetwork with L=0) admits no conservative
// window, so a parallel run must fall back to per-cycle serial execution
// — same result, no deadlock, no divergence — rather than guess a
// lookahead.
func TestParallelZeroLookaheadFallsBackToSerial(t *testing.T) {
	build := parallelPrograms(t)["treesum"]
	run := func(configure func(m *Machine)) string {
		m := build(t)
		configure(m)
		return runFingerprint(t, m)
	}
	// Oracle: the same zero-latency network expressed as the flat timing.
	want := run(func(m *Machine) {
		m.Timing.NetLatency = 0
		m.ForceInterpret = true
	})
	for _, p := range []int{1, 4, 7} {
		got := run(func(m *Machine) {
			zero := network.NewFlat(len(m.Nodes), 0)
			m.NetDelay = func(src, dst int) int64 { return int64(zero.Latency(src, dst)) }
			m.NetLookahead = 0 // unknown: L=0 admits none
			m.Parallelism = p
		})
		if got != want {
			t.Fatalf("zero-lookahead run at P=%d diverges:\n--- got ---\n%s--- want ---\n%s", p, got, want)
		}
	}
}

// TestParallelMaxWindowEquivalence pins that shrinking the window bound
// changes only barrier granularity, never results.
func TestParallelMaxWindowEquivalence(t *testing.T) {
	build := parallelPrograms(t)["ping"]
	var want string
	for _, maxW := range []int64{0, 3, 1} {
		m := build(t)
		applyTopology(t, m, "ring")
		m.Parallelism = 4
		m.MaxWindow = maxW
		got := runFingerprint(t, m)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("MaxWindow=%d diverges:\n--- got ---\n%s--- want ---\n%s", maxW, got, want)
		}
	}
}

// TestParallelLookaheadViolation pins the safety net: a NetDelay that
// undercuts the declared NetLookahead must surface as an error at a
// window barrier, not silently diverge.
func TestParallelLookaheadViolation(t *testing.T) {
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial-windowed", 0}, {"parallel", 4}} {
		t.Run(mode.name, func(t *testing.T) {
			build := parallelPrograms(t)["ping"]
			m := build(t)
			m.NetDelay = func(src, dst int) int64 { return 1 } // lies below the promise
			m.NetLookahead = 50
			m.Parallelism = mode.par
			_, err := m.Run()
			if err == nil || !strings.Contains(err.Error(), "NetLookahead") {
				t.Fatalf("want a NetLookahead violation error, got %v", err)
			}
		})
	}
}

// TestParallelPartitionValidation pins the Partition error paths.
func TestParallelPartitionValidation(t *testing.T) {
	build := parallelPrograms(t)["gups"]
	m := build(t)
	applyTopology(t, m, "ring")
	m.Parallelism = 2
	m.Partition = []int{0, 1} // wrong length for 16 nodes
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "Partition") {
		t.Fatalf("want a Partition length error, got %v", err)
	}
	m2 := build(t)
	applyTopology(t, m2, "ring")
	m2.Parallelism = 2
	m2.Partition = make([]int, len(m2.Nodes))
	m2.Partition[3] = 7 // outside [0, Parallelism)
	if _, err := m2.Run(); err == nil || !strings.Contains(err.Error(), "Partition") {
		t.Fatalf("want a Partition range error, got %v", err)
	}
}

// TestParallelResetReuse pins that a parallel machine Resets and re-runs
// to the identical fingerprint — the bench harness's reuse pattern.
func TestParallelResetReuse(t *testing.T) {
	layout := DefaultGUPSLayout()
	layout.Updates = 32
	prog, err := GUPSProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(16, 16384, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := network.ByName("torus", 16)
	if err != nil {
		t.Fatal(err)
	}
	m.NetDelay = network.HopDelay(topo, 3)
	m.NetLookahead = network.HopLookahead(topo, 3)
	m.Parallelism = 4
	entry, err := prog.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for round := 0; round < 3; round++ {
		m.Reset()
		if err := m.LoadAll(prog); err != nil {
			t.Fatal(err)
		}
		for _, n := range m.Nodes {
			n.StartThread(entry, uint64(n.ID)+1, 0)
		}
		got := runFingerprint(t, m)
		if round == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("round %d diverges after Reset:\n--- got ---\n%s--- want ---\n%s", round, got, want)
		}
	}
}
