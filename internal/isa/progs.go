package isa

import (
	"fmt"
)

// This file ships reference PIM assembly programs — the kernels a PIM
// release would demo: a parcel-fanout tree sum, a STREAM-style wide-word
// triad, and a GUPS random-update loop with an in-assembly LCG. Each
// builder returns an assembled Program plus the memory-map constants the
// caller needs to stage inputs and read results.

// TreeSumLayout names the memory locations used by TreeSumProgram.
type TreeSumLayout struct {
	// DataBase is the per-node input vector base address.
	DataBase uint64
	// DataWords is the per-node vector length (multiple of WideWords).
	DataWords int
	// AccAddr (node 0) receives the grand total.
	AccAddr uint64
	// DoneAddr (node 0) counts completed workers.
	DoneAddr uint64
}

// DefaultTreeSumLayout places data at 8192 and results at 9000/9001.
func DefaultTreeSumLayout() TreeSumLayout {
	return TreeSumLayout{DataBase: 8192, DataWords: 256, AccAddr: 9000, DoneAddr: 9001}
}

// TreeSumProgram builds the parcel-fanout tree sum: node 0 spawns one
// worker per node, each worker reduces its local vector with vsum and
// AMO-adds the partial into node 0's accumulator; node 0 spins on the
// completion counter, then writes the total to AccAddr and prints it.
func TreeSumProgram(nodes int, layout TreeSumLayout) (*Program, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("isa: TreeSumProgram with %d nodes", nodes)
	}
	if layout.DataWords <= 0 || layout.DataWords%WideWords != 0 {
		return nil, fmt.Errorf("isa: TreeSumProgram DataWords %d not a positive multiple of %d",
			layout.DataWords, WideWords)
	}
	chunks := layout.DataWords / WideWords
	src := fmt.Sprintf(`
main:
    addi r3, r0, 0
    addi r4, r0, %d        ; node count
    addi r5, r0, worker
fan:
    spawn r0, r3, r5
    addi r3, r3, 1
    bne  r3, r4, fan
    addi r6, r0, %d        ; done counter
wait:
    ld   r7, r6, 0
    bne  r7, r4, wait
    addi r8, r0, %d        ; accumulator
    ld   r9, r8, 0
    print r9
    halt

worker:
    addi r3, r0, %d        ; vector base
    addi r4, r0, 0         ; partial
    addi r5, r0, %d        ; chunk count
chunk:
    vsum r6, r3
    add  r4, r4, r6
    addi r3, r3, %d
    addi r5, r5, -1
    bne  r5, r0, chunk
    addi r7, r0, 0
    addi r8, r0, accum
    spawn r4, r7, r8
    halt

accum:
    addi r3, r0, %d
    amoadd r5, r3, r1
    addi r3, r0, %d
    addi r4, r0, 1
    amoadd r5, r3, r4
    halt
`, nodes, layout.DoneAddr, layout.AccAddr,
		layout.DataBase, chunks, WideWords,
		layout.AccAddr, layout.DoneAddr)
	return Assemble(src)
}

// TriadLayout names the locations used by StreamTriadProgram.
type TriadLayout struct {
	// A, B, C are the three vector base addresses; C = A + B.
	A, B, C uint64
	// Words is the vector length (multiple of WideWords).
	Words int
}

// DefaultTriadLayout uses 1 KiW vectors at 8192/12288/16384.
func DefaultTriadLayout() TriadLayout {
	return TriadLayout{A: 8192, B: 12288, C: 16384, Words: 1024}
}

// StreamTriadProgram builds the wide-word streaming add C = A + B using
// the row-buffer-wide vadd: one instruction moves WideWords words, the
// §2.1 "reclaim the hidden bandwidth" argument in instruction form.
func StreamTriadProgram(layout TriadLayout) (*Program, error) {
	if layout.Words <= 0 || layout.Words%WideWords != 0 {
		return nil, fmt.Errorf("isa: StreamTriadProgram Words %d not a positive multiple of %d",
			layout.Words, WideWords)
	}
	src := fmt.Sprintf(`
main:
    addi r1, r0, %d        ; A
    addi r2, r0, %d        ; B
    addi r3, r0, %d        ; C
    addi r4, r0, %d        ; chunks
loop:
    vadd r3, r1, r2
    addi r1, r1, %d
    addi r2, r2, %d
    addi r3, r3, %d
    addi r4, r4, -1
    bne  r4, r0, loop
    halt
`, layout.A, layout.B, layout.C, layout.Words/WideWords,
		WideWords, WideWords, WideWords)
	return Assemble(src)
}

// ChaseLayout names the locations used by DistributedChaseProgram.
type ChaseLayout struct {
	// ResultAddr (node 0) receives the accumulated sum.
	ResultAddr uint64
	// DoneAddr (node 0) is set to 1 when the walk completes.
	DoneAddr uint64
}

// DefaultChaseLayout places results at 9000/9001.
func DefaultChaseLayout() ChaseLayout {
	return ChaseLayout{ResultAddr: 9000, DoneAddr: 9001}
}

// ChasePack packs a chase continuation argument: the running sum in the
// high bits and the current element address in the low 24.
func ChasePack(sum, addr uint64) uint64 { return sum<<24 | addr&0xffffff }

// ChaseLink packs an element's link word: next node in the high bits,
// next element address in the low 24; zero terminates the list.
func ChaseLink(node, addr uint64) uint64 { return node<<24 | addr&0xffffff }

// DistributedChaseProgram is Fig. 9 in assembly: a thread walks a linked
// list distributed across nodes by *migrating itself* with SPAWN instead
// of fetching remote words. Each element is two words: [link, value] with
// link = ChaseLink(nextNode, nextAddr) or 0 at the tail. Start a thread at
// label "chase" on the first element's node with r1 = ChasePack(0, addr).
// The final sum is AMO-added into node 0's ResultAddr and DoneAddr is
// bumped.
func DistributedChaseProgram(layout ChaseLayout) (*Program, error) {
	if layout.ResultAddr == 0 || layout.DoneAddr == 0 {
		return nil, fmt.Errorf("isa: DistributedChaseProgram needs nonzero result addresses")
	}
	src := fmt.Sprintf(`
chase:
    addi r3, r0, maskw
    ld   r4, r3, 0          ; 0xffffff
    and  r5, r1, r4         ; current element address
    addi r6, r0, 24
    shr  r7, r1, r6         ; running sum
    ld   r8, r5, 1          ; element value
    add  r7, r7, r8
    ld   r9, r5, 0          ; link word
    beq  r9, r0, finish
    and  r10, r9, r4        ; next address
    shr  r11, r9, r6        ; next node
    shl  r12, r7, r6        ; repack continuation
    or   r12, r12, r10
    addi r13, r0, chase
    spawn r12, r11, r13     ; migrate the computation to the data
    halt
finish:
    addi r11, r0, 0         ; home node
    addi r13, r0, deliver
    spawn r7, r11, r13      ; send the sum home
    halt
deliver:
    addi r3, r0, %d
    amoadd r5, r3, r1
    addi r3, r0, %d
    addi r4, r0, 1
    amoadd r5, r3, r4
    halt

maskw: .word 0xffffff
`, layout.ResultAddr, layout.DoneAddr)
	return Assemble(src)
}

// PingLayout names the locations used by PingProgram.
type PingLayout struct {
	// CountAddr (node 0) counts completed round trips.
	CountAddr uint64
	// Peer is the node the parcel bounces off.
	Peer int
}

// DefaultPingLayout counts round trips at 9000 against node 1.
func DefaultPingLayout() PingLayout {
	return PingLayout{CountAddr: 9000, Peer: 1}
}

// PingProgram builds a parcel ping-pong: a single logical thread migrates
// from node 0 to Peer and back `rounds` times by SPAWNing itself across
// the interconnect (the paper's §4.1 message-driven round trip), bumping
// CountAddr on node 0 once per completed round trip. Start one thread at
// label "ping" on node 0 with r1 = rounds. The run's critical path is two
// one-way flights per round plus a fixed instruction overhead, so the
// total cycle count has the exact closed form in PingTotalCycles — the
// machine's cross-backend validation anchor.
func PingProgram(layout PingLayout, rounds int) (*Program, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("isa: PingProgram with %d rounds", rounds)
	}
	if layout.Peer <= 0 {
		return nil, fmt.Errorf("isa: PingProgram peer %d (must be a non-zero node)", layout.Peer)
	}
	src := fmt.Sprintf(`
ping:                      ; on node 0: send the count out (r1 = remaining)
    addi r4, r0, %d        ; peer node
    addi r5, r0, pong
    spawn r1, r4, r5
    halt
pong:                      ; on the peer: bounce back to the source (r2)
    addi r5, r0, back
    spawn r1, r2, r5
    halt
back:                      ; on node 0: count the round trip, go again
    addi r3, r0, %d        ; round-trip counter
    addi r4, r0, 1
    amoadd r5, r3, r4
    addi r6, r1, -1
    beq  r6, r0, done
    addi r4, r0, %d        ; peer node
    addi r5, r0, pong
    spawn r6, r4, r5
    halt
done:
    halt
`, layout.Peer, layout.CountAddr, layout.Peer)
	return Assemble(src)
}

// PingTotalCycles is the exact cycle count of a PingProgram run on an
// otherwise idle machine with one-way latency latency between node 0 and
// the peer and mem-op cost memCycles: each round trip costs two flights
// (latency+1 delivery each) plus the block's fixed instruction overhead,
// and the final round ends at the `done` halt instead of a re-spawn. The
// form assumes the spawner's SpawnCycles-long tail is hidden under the
// flight it launched (true whenever SpawnCycles <= 2*latency+memCycles+8,
// which holds for every sane timing).
func PingTotalCycles(rounds int, latency, memCycles int64) int64 {
	perRound := 2*latency + memCycles + 9
	return int64(rounds-1)*perRound + 2*latency + memCycles + 10
}

// GUPSLayout names the locations used by GUPSProgram.
type GUPSLayout struct {
	// TableBase is the update table base; TableWords its length (power of
	// two).
	TableBase  uint64
	TableWords int
	// Updates is the number of random read-modify-writes per thread.
	Updates int
}

// DefaultGUPSLayout uses a 4096-word table at 8192 with 512 updates.
func DefaultGUPSLayout() GUPSLayout {
	return GUPSLayout{TableBase: 8192, TableWords: 4096, Updates: 512}
}

// GUPSProgram builds the random-update kernel entirely in assembly: a
// 64-bit LCG generates indices, each update XORs the LCG state into the
// table slot (the HPCC RandomAccess recipe). The thread's r1 argument
// seeds the LCG, so concurrent threads walk different sequences.
func GUPSProgram(layout GUPSLayout) (*Program, error) {
	if layout.TableWords <= 0 || layout.TableWords&(layout.TableWords-1) != 0 {
		return nil, fmt.Errorf("isa: GUPSProgram table %d not a power of two", layout.TableWords)
	}
	if layout.Updates <= 0 {
		return nil, fmt.Errorf("isa: GUPSProgram with %d updates", layout.Updates)
	}
	// LCG multiplier loaded from a data word (too wide for an immediate).
	src := fmt.Sprintf(`
main:
    addi r3, r0, lcgmul
    ld   r4, r3, 0         ; multiplier
    addi r3, r0, lcginc
    ld   r5, r3, 0         ; increment
    addi r6, r1, 1         ; LCG state: seed from thread argument + 1
    addi r7, r0, %d        ; updates remaining
    addi r8, r0, %d        ; table mask
    addi r9, r0, %d        ; table base
loop:
    mul  r6, r6, r4        ; state = state*mul + inc
    add  r6, r6, r5
    addi r10, r0, 40
    shr  r11, r6, r10      ; high bits make better indices
    and  r11, r11, r8
    add  r11, r11, r9      ; slot address
    ld   r12, r11, 0       ; read
    xor  r12, r12, r6      ; modify
    st   r12, r11, 0       ; write
    addi r7, r7, -1
    bne  r7, r0, loop
    halt

lcgmul: .word 0x5851f42d4c957f2d
lcginc: .word 0x14057b7ef767814f
`, layout.Updates, layout.TableWords-1, layout.TableBase)
	return Assemble(src)
}
