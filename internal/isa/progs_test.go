package isa

import (
	"testing"
)

func TestTreeSumProgramCorrect(t *testing.T) {
	const nodes = 8
	layout := DefaultTreeSumLayout()
	prog, err := TreeSumProgram(nodes, layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(nodes, 16384, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for i, n := range m.Nodes {
		for k := 0; k < layout.DataWords; k++ {
			v := uint64(i*layout.DataWords + k + 1)
			n.Mem[layout.DataBase+uint64(k)] = v
			want += v
		}
	}
	var got uint64
	m.Output = func(node int, v uint64) { got = v }
	entry, err := prog.Entry("main")
	if err != nil {
		t.Fatal(err)
	}
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 10_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("tree sum = %d, want %d", got, want)
	}
}

func TestTreeSumProgramValidation(t *testing.T) {
	if _, err := TreeSumProgram(0, DefaultTreeSumLayout()); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := DefaultTreeSumLayout()
	bad.DataWords = WideWords + 1
	if _, err := TreeSumProgram(4, bad); err == nil {
		t.Error("non-multiple DataWords accepted")
	}
}

func TestStreamTriadProgramCorrect(t *testing.T) {
	layout := DefaultTriadLayout()
	prog, err := StreamTriadProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(1, 32768, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	node := m.Nodes[0]
	for i := 0; i < layout.Words; i++ {
		node.Mem[layout.A+uint64(i)] = uint64(i)
		node.Mem[layout.B+uint64(i)] = uint64(3 * i)
	}
	entry, _ := prog.Entry("main")
	node.StartThread(entry, 0, 0)
	m.MaxCycles = 10_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < layout.Words; i++ {
		if got := node.Mem[layout.C+uint64(i)]; got != uint64(4*i) {
			t.Fatalf("C[%d] = %d, want %d", i, got, 4*i)
		}
	}
	// Wide ops move WideWords per instruction.
	if node.WideOps != int64(layout.Words/WideWords) {
		t.Errorf("wide ops = %d, want %d", node.WideOps, layout.Words/WideWords)
	}
}

func TestStreamTriadWideSpeedAdvantage(t *testing.T) {
	// The triad via vadd must finish in far fewer cycles than a scalar
	// equivalent would need: at most ~4 cycles+1 mem per chunk of 8 words.
	layout := DefaultTriadLayout()
	prog, err := StreamTriadProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewMachine(1, 32768, DefaultTiming())
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	entry, _ := prog.Entry("main")
	m.Nodes[0].StartThread(entry, 0, 0)
	m.MaxCycles = 10_000_000
	cycles, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Scalar lower bound: 3 memory ops per word at MemCycles each.
	scalarBound := int64(layout.Words) * 3 * DefaultTiming().MemCycles
	if cycles*2 > scalarBound {
		t.Errorf("wide triad took %d cycles; scalar bound is %d — wide ops not paying off",
			cycles, scalarBound)
	}
}

func TestDistributedChaseProgram(t *testing.T) {
	const nodes = 8
	const elems = 40
	layout := DefaultChaseLayout()
	prog, err := DistributedChaseProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	tm := DefaultTiming()
	tm.NetLatency = 100
	m, err := NewMachine(nodes, 16384, tm)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	// Scatter a chain over the nodes (deterministic layout).
	type loc struct {
		node int
		addr uint64
	}
	chain := make([]loc, elems)
	for i := range chain {
		chain[i] = loc{node: (i * 5) % nodes, addr: uint64(0x400 + 2*i)}
	}
	wantSum := uint64(0)
	for i, e := range chain {
		link := uint64(0)
		if i+1 < len(chain) {
			nxt := chain[i+1]
			link = ChaseLink(uint64(nxt.node), nxt.addr)
		}
		v := uint64(i + 1)
		wantSum += v
		m.Nodes[e.node].Mem[e.addr] = link
		m.Nodes[e.node].Mem[e.addr+1] = v
	}
	entry, err := prog.Entry("chase")
	if err != nil {
		t.Fatal(err)
	}
	m.Nodes[chain[0].node].StartThread(entry, ChasePack(0, chain[0].addr), 0)
	m.MaxCycles = 10_000_000
	cycles, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[0].Mem[layout.ResultAddr]; got != wantSum {
		t.Errorf("chase sum = %d, want %d", got, wantSum)
	}
	if m.Nodes[0].Mem[layout.DoneAddr] != 1 {
		t.Errorf("done flag = %d", m.Nodes[0].Mem[layout.DoneAddr])
	}
	// The walk is fully serial: makespan must include one network hop per
	// inter-node migration.
	hops := int64(0)
	for i := 1; i < len(chain); i++ {
		if chain[i].node != chain[i-1].node {
			hops++
		}
	}
	if chain[len(chain)-1].node != 0 {
		hops++ // delivery home
	}
	if cycles < hops*tm.NetLatency {
		t.Errorf("makespan %d below %d hops x %d latency", cycles, hops, tm.NetLatency)
	}
}

func TestChasePackRoundTrip(t *testing.T) {
	arg := ChasePack(123456, 0x1234)
	if arg&0xffffff != 0x1234 || arg>>24 != 123456 {
		t.Errorf("pack wrong: %#x", arg)
	}
	link := ChaseLink(7, 0x400)
	if link&0xffffff != 0x400 || link>>24 != 7 {
		t.Errorf("link wrong: %#x", link)
	}
}

func TestGUPSProgramTouchesTable(t *testing.T) {
	layout := DefaultGUPSLayout()
	prog, err := GUPSProgram(layout)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(1, 16384, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	entry, _ := prog.Entry("main")
	// Two threads with different seeds interleave updates.
	m.Nodes[0].StartThread(entry, 1, 0)
	m.Nodes[0].StartThread(entry, 2, 0)
	m.MaxCycles = 10_000_000
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	touched := 0
	for i := 0; i < layout.TableWords; i++ {
		if m.Nodes[0].Mem[layout.TableBase+uint64(i)] != 0 {
			touched++
		}
	}
	// 1024 updates over 4096 slots: expect a few hundred distinct dirty
	// slots (collisions and self-inverse XOR pairs reduce the count).
	if touched < layout.TableWords/20 {
		t.Errorf("only %d table slots touched by %d updates", touched, 2*layout.Updates)
	}
	// Each update is ld+st: 2 memory ops, plus the two constant loads.
	wantMem := int64(2*2*layout.Updates) + 4
	if m.Nodes[0].MemOps != wantMem {
		t.Errorf("mem ops = %d, want %d", m.Nodes[0].MemOps, wantMem)
	}
}

func TestGUPSProgramValidation(t *testing.T) {
	bad := DefaultGUPSLayout()
	bad.TableWords = 1000 // not a power of two
	if _, err := GUPSProgram(bad); err == nil {
		t.Error("non-power-of-two table accepted")
	}
	bad = DefaultGUPSLayout()
	bad.Updates = 0
	if _, err := GUPSProgram(bad); err == nil {
		t.Error("zero updates accepted")
	}
}

func TestWideWordDotWord(t *testing.T) {
	// 64-bit .word constants survive assembly exactly.
	p, err := Assemble(`
main:
    halt
big: .word 0x5851f42d4c957f2d
neg: .word -2
`)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Entry("big")
	if p.Words[a-p.Origin] != 0x5851f42d4c957f2d {
		t.Errorf("wide word = %#x", p.Words[a-p.Origin])
	}
	n, _ := p.Entry("neg")
	if p.Words[n-p.Origin] != ^uint64(1) {
		t.Errorf("negative word = %#x", p.Words[n-p.Origin])
	}
}
