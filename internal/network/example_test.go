package network_test

import (
	"fmt"

	"repro/internal/network"
)

// The paper's flat model vs topologies calibrated to the same mean.
func ExampleMeanHops() {
	for _, topo := range []network.Topology{
		network.Ring{N: 16},
		network.Torus2D{W: 4, H: 4},
		network.Hypercube{Dim: 4},
	} {
		fmt.Printf("%-12s mean hops %.2f, diameter %d\n",
			topo.Name(), network.MeanHops(topo), topo.Diameter())
	}
	// Output:
	// ring(16)     mean hops 4.27, diameter 8
	// torus(4x4)   mean hops 2.13, diameter 4
	// hypercube(4) mean hops 2.13, diameter 4
}
