// Package network models the interconnect between PIM chips.
//
// The paper's parcel study treats system-wide latency as flat — a fixed
// delay independent of source and destination ("system wide latency which
// is considered to be flat (fixed delay) for this study"). FlatNetwork
// reproduces that. For the A3 ablation we also provide hop-count
// topologies (ring, 2-D mesh/torus, hypercube) and a bandwidth-limited
// link model so the flat-latency assumption can be stress-tested.
package network

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Network maps a (source, destination) node pair to a one-way message
// latency in cycles.
type Network interface {
	// Latency returns the one-way latency from src to dst in cycles.
	Latency(src, dst int) float64
	// Nodes returns the number of attached nodes.
	Nodes() int
}

// FlatNetwork is the paper's model: every remote message takes exactly L
// cycles, and node-local messages take zero.
type FlatNetwork struct {
	n int
	// L is the flat one-way latency in cycles.
	L float64
}

// NewFlat creates a flat network of n nodes with one-way latency l.
func NewFlat(n int, l float64) *FlatNetwork {
	if n <= 0 || l < 0 {
		panic(fmt.Sprintf("network: NewFlat(%d, %g)", n, l))
	}
	return &FlatNetwork{n: n, L: l}
}

// Latency returns L for remote pairs and 0 for src == dst.
func (f *FlatNetwork) Latency(src, dst int) float64 {
	f.check(src, dst)
	if src == dst {
		return 0
	}
	return f.L
}

// Nodes returns the node count.
func (f *FlatNetwork) Nodes() int { return f.n }

func (f *FlatNetwork) check(src, dst int) {
	if src < 0 || src >= f.n || dst < 0 || dst >= f.n {
		panic(fmt.Sprintf("network: node pair (%d, %d) out of %d", src, dst, f.n))
	}
}

// HopNetwork computes latency as perHop × hops(src, dst) + fixed overhead,
// with hops given by a topology.
type HopNetwork struct {
	topo     Topology
	perHop   float64
	overhead float64
}

// NewHop creates a hop-count network.
func NewHop(topo Topology, perHop, overhead float64) *HopNetwork {
	if perHop < 0 || overhead < 0 {
		panic(fmt.Sprintf("network: NewHop(%g, %g)", perHop, overhead))
	}
	return &HopNetwork{topo: topo, perHop: perHop, overhead: overhead}
}

// Latency implements Network.
func (h *HopNetwork) Latency(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return h.overhead + h.perHop*float64(h.topo.Hops(src, dst))
}

// Nodes implements Network.
func (h *HopNetwork) Nodes() int { return h.topo.Nodes() }

// Topology provides minimal-route hop counts between node pairs.
type Topology interface {
	Hops(src, dst int) int
	Nodes() int
	// Diameter returns the maximum hop count over all pairs.
	Diameter() int
	Name() string
}

// Ring is a bidirectional ring of n nodes.
type Ring struct{ N int }

// Hops returns min(|i-j|, n-|i-j|).
func (r Ring) Hops(src, dst int) int {
	checkPair(src, dst, r.N)
	d := src - dst
	if d < 0 {
		d = -d
	}
	if alt := r.N - d; alt < d {
		return alt
	}
	return d
}

// Nodes returns the node count.
func (r Ring) Nodes() int { return r.N }

// Diameter returns floor(n/2).
func (r Ring) Diameter() int { return r.N / 2 }

// Name identifies the topology.
func (r Ring) Name() string { return fmt.Sprintf("ring(%d)", r.N) }

// Mesh2D is a W×H 2-D mesh with dimension-order (Manhattan) routing.
type Mesh2D struct{ W, H int }

// Hops returns the Manhattan distance.
func (m Mesh2D) Hops(src, dst int) int {
	n := m.W * m.H
	checkPair(src, dst, n)
	sx, sy := src%m.W, src/m.W
	dx, dy := dst%m.W, dst/m.W
	return abs(sx-dx) + abs(sy-dy)
}

// Nodes returns W*H.
func (m Mesh2D) Nodes() int { return m.W * m.H }

// Diameter returns (W-1)+(H-1).
func (m Mesh2D) Diameter() int { return m.W - 1 + m.H - 1 }

// Name identifies the topology.
func (m Mesh2D) Name() string { return fmt.Sprintf("mesh(%dx%d)", m.W, m.H) }

// Torus2D is a W×H 2-D torus (wraparound mesh).
type Torus2D struct{ W, H int }

// Hops returns the wrapped Manhattan distance.
func (t Torus2D) Hops(src, dst int) int {
	n := t.W * t.H
	checkPair(src, dst, n)
	sx, sy := src%t.W, src/t.W
	dx, dy := dst%t.W, dst/t.W
	hx := abs(sx - dx)
	if alt := t.W - hx; alt < hx {
		hx = alt
	}
	hy := abs(sy - dy)
	if alt := t.H - hy; alt < hy {
		hy = alt
	}
	return hx + hy
}

// Nodes returns W*H.
func (t Torus2D) Nodes() int { return t.W * t.H }

// Diameter returns floor(W/2)+floor(H/2).
func (t Torus2D) Diameter() int { return t.W/2 + t.H/2 }

// Name identifies the topology.
func (t Torus2D) Name() string { return fmt.Sprintf("torus(%dx%d)", t.W, t.H) }

// Hypercube is a 2^Dim-node binary hypercube (the EXECUBE interconnect the
// paper cites).
type Hypercube struct{ Dim int }

// Hops returns the Hamming distance between node labels.
func (h Hypercube) Hops(src, dst int) int {
	n := h.Nodes()
	checkPair(src, dst, n)
	x := src ^ dst
	hops := 0
	for x > 0 {
		hops += x & 1
		x >>= 1
	}
	return hops
}

// Nodes returns 2^Dim.
func (h Hypercube) Nodes() int { return 1 << h.Dim }

// Diameter returns Dim.
func (h Hypercube) Diameter() int { return h.Dim }

// Name identifies the topology.
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.Dim) }

// ByName builds the named topology over n nodes: "ring", "mesh",
// "torus" (square node counts), or "hypercube" (power-of-two node
// counts). "" and "flat" return nil — the caller's cue to use a flat
// latency instead of hop routing.
func ByName(name string, n int) (Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("network: ByName(%q, %d)", name, n)
	}
	switch name {
	case "", "flat":
		return nil, nil
	case "ring":
		return Ring{N: n}, nil
	case "mesh", "torus":
		w := intSqrt(n)
		if w*w != n {
			return nil, fmt.Errorf("network: %s needs a square node count, got %d", name, n)
		}
		if name == "mesh" {
			return Mesh2D{W: w, H: w}, nil
		}
		return Torus2D{W: w, H: w}, nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("network: hypercube needs a power-of-two node count, got %d", n)
		}
		return Hypercube{Dim: d}, nil
	default:
		return nil, fmt.Errorf("network: unknown topology %q (known: %v)", name, TopologyNames())
	}
}

// TopologyNames returns the names ByName accepts (besides ""), in
// flat-first presentation order.
func TopologyNames() []string {
	return []string{"flat", "ring", "mesh", "torus", "hypercube"}
}

// HopDelay returns an integer-cycle delay function over the topology at
// perHop cycles per hop — the adapter a cycle-driven machine (e.g.
// isa.Machine.NetDelay) plugs its parcel routing into.
func HopDelay(t Topology, perHop float64) func(src, dst int) int64 {
	h := NewHop(t, perHop, 0)
	return func(src, dst int) int64 {
		return int64(math.Round(h.Latency(src, dst)))
	}
}

// HopLookahead returns a lower bound on the HopDelay latency over all
// remote pairs — the conservative lookahead a time-windowed executor
// (isa.Machine.NetLookahead) can synchronize on. Topology hop counts are
// graph distances, so whenever the topology has at least two nodes some
// remote pair is adjacent and the minimum is one perHop, rounded exactly
// as HopDelay rounds (math.Round is monotone, so rounding preserves the
// bound for every longer route).
func HopLookahead(t Topology, perHop float64) int64 {
	if t == nil || t.Nodes() < 2 {
		return 0
	}
	return int64(math.Round(perHop))
}

// intSqrt returns floor(sqrt(n)) exactly (float sqrt can land one off at
// perfect squares near precision limits).
func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// MeanHops returns the average hop count over all ordered pairs with
// src != dst; used to compare topologies against a flat latency.
func MeanHops(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				total += t.Hops(i, j)
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// Link is a bandwidth-limited, latency-bearing channel built on the DES
// kernel: each message holds the link for size/bandwidth cycles
// (serialization) and arrives latency cycles after transmission completes.
// It models the contention the flat model abstracts away.
type Link struct {
	res *sim.Resource
	// Latency is the propagation delay in cycles.
	Latency float64
	// CyclesPerByte is the serialization cost.
	CyclesPerByte float64
}

// NewLink creates a link attached to kernel k.
func NewLink(k *sim.Kernel, name string, latency, cyclesPerByte float64) *Link {
	if latency < 0 || cyclesPerByte < 0 {
		panic(fmt.Sprintf("network: NewLink(%g, %g)", latency, cyclesPerByte))
	}
	return &Link{
		res:           sim.NewResource(k, name, 1, sim.FIFO),
		Latency:       latency,
		CyclesPerByte: cyclesPerByte,
	}
}

// Send transmits a message of the given size, blocking the caller for
// serialization plus propagation (cut-through: the caller may continue once
// delivery completes). deliver runs at arrival time.
func (l *Link) Send(c *sim.Context, sizeBytes int, deliver func()) {
	if sizeBytes < 0 {
		panic(fmt.Sprintf("network: Send with negative size %d", sizeBytes))
	}
	l.res.Acquire(c)
	c.Wait(l.CyclesPerByte * float64(sizeBytes))
	l.res.Release(1)
	if deliver == nil {
		c.Wait(l.Latency)
		return
	}
	c.Kernel().Schedule(l.Latency, deliver)
}

// Utilization returns the link's mean utilization.
func (l *Link) Utilization(now sim.Time) float64 { return l.res.Utilization(now) }

// abs is integer absolute value.
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func checkPair(src, dst, n int) {
	if src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("network: node pair (%d, %d) out of %d", src, dst, n))
	}
}

// EquivalentFlatLatency returns the flat latency that matches the mean
// latency of a hop network under uniform traffic — the bridge between the
// paper's flat model and a topology-aware one.
func EquivalentFlatLatency(h *HopNetwork) float64 {
	return h.overhead + h.perHop*MeanHops(h.topo)
}

// Validate sanity-checks a topology exhaustively (symmetry, identity,
// triangle inequality) for small n. Intended for tests; cost is O(n^3).
func Validate(t Topology) error {
	n := t.Nodes()
	for i := 0; i < n; i++ {
		if t.Hops(i, i) != 0 {
			return fmt.Errorf("network: %s: Hops(%d,%d) != 0", t.Name(), i, i)
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			hij := t.Hops(i, j)
			if hij <= 0 {
				return fmt.Errorf("network: %s: Hops(%d,%d) = %d", t.Name(), i, j, hij)
			}
			if hij != t.Hops(j, i) {
				return fmt.Errorf("network: %s: asymmetric (%d,%d)", t.Name(), i, j)
			}
			if hij > t.Diameter() {
				return fmt.Errorf("network: %s: Hops(%d,%d)=%d exceeds diameter %d",
					t.Name(), i, j, hij, t.Diameter())
			}
			for k := 0; k < n; k++ {
				if t.Hops(i, k) > hij+t.Hops(j, k) {
					return fmt.Errorf("network: %s: triangle inequality violated (%d,%d,%d)",
						t.Name(), i, j, k)
				}
			}
		}
	}
	// Diameter must be achieved.
	best := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if h := t.Hops(i, j); h > best {
				best = h
			}
		}
	}
	if n > 1 && best != t.Diameter() {
		return fmt.Errorf("network: %s: declared diameter %d, actual %d", t.Name(), t.Diameter(), best)
	}
	return nil
}
