package network

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFlatNetwork(t *testing.T) {
	f := NewFlat(8, 100)
	if f.Latency(0, 0) != 0 {
		t.Error("local latency != 0")
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && f.Latency(i, j) != 100 {
				t.Fatalf("Latency(%d,%d) = %g", i, j, f.Latency(i, j))
			}
		}
	}
	if f.Nodes() != 8 {
		t.Errorf("Nodes = %d", f.Nodes())
	}
}

func TestFlatNetworkBoundsPanic(t *testing.T) {
	f := NewFlat(4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Latency(0, 4)
}

func TestRingHops(t *testing.T) {
	r := Ring{N: 8}
	cases := []struct{ a, b, want int }{
		{0, 1, 1}, {0, 4, 4}, {0, 7, 1}, {2, 6, 4}, {1, 5, 4}, {0, 5, 3},
	}
	for _, c := range cases {
		if got := r.Hops(c.a, c.b); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if r.Diameter() != 4 {
		t.Errorf("diameter = %d", r.Diameter())
	}
}

func TestMeshHops(t *testing.T) {
	m := Mesh2D{W: 4, H: 4}
	if got := m.Hops(0, 15); got != 6 {
		t.Errorf("mesh corner-to-corner = %d, want 6", got)
	}
	if got := m.Hops(5, 6); got != 1 {
		t.Errorf("mesh neighbor = %d, want 1", got)
	}
	if m.Diameter() != 6 {
		t.Errorf("diameter = %d", m.Diameter())
	}
}

func TestTorusHops(t *testing.T) {
	tr := Torus2D{W: 4, H: 4}
	// Corner to corner wraps: 1 hop in each dimension.
	if got := tr.Hops(0, 15); got != 2 {
		t.Errorf("torus corner wrap = %d, want 2", got)
	}
	if tr.Diameter() != 4 {
		t.Errorf("diameter = %d", tr.Diameter())
	}
	// Torus never exceeds mesh distance.
	m := Mesh2D{W: 4, H: 4}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if tr.Hops(i, j) > m.Hops(i, j) {
				t.Fatalf("torus (%d,%d) worse than mesh", i, j)
			}
		}
	}
}

func TestHypercubeHops(t *testing.T) {
	h := Hypercube{Dim: 4}
	if h.Nodes() != 16 {
		t.Errorf("nodes = %d", h.Nodes())
	}
	if got := h.Hops(0b0000, 0b1111); got != 4 {
		t.Errorf("antipodal hops = %d, want 4", got)
	}
	if got := h.Hops(0b0101, 0b0100); got != 1 {
		t.Errorf("neighbor hops = %d, want 1", got)
	}
}

func TestValidateAllTopologies(t *testing.T) {
	topos := []Topology{
		Ring{N: 2}, Ring{N: 7}, Ring{N: 8},
		Mesh2D{W: 3, H: 5}, Mesh2D{W: 4, H: 4},
		Torus2D{W: 4, H: 4}, Torus2D{W: 5, H: 3},
		Hypercube{Dim: 1}, Hypercube{Dim: 4},
	}
	for _, topo := range topos {
		if err := Validate(topo); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestHopNetworkLatency(t *testing.T) {
	h := NewHop(Ring{N: 8}, 10, 5)
	if got := h.Latency(0, 4); got != 45 {
		t.Errorf("latency = %g, want 45", got)
	}
	if h.Latency(3, 3) != 0 {
		t.Error("local latency != 0")
	}
}

func TestMeanHopsRing(t *testing.T) {
	// Ring of 4: distances from any node are 1, 2, 1 -> mean 4/3.
	got := MeanHops(Ring{N: 4})
	if math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("mean hops = %g, want 4/3", got)
	}
}

func TestEquivalentFlatLatency(t *testing.T) {
	h := NewHop(Ring{N: 4}, 30, 12)
	want := 12 + 30*4.0/3.0
	if got := EquivalentFlatLatency(h); math.Abs(got-want) > 1e-12 {
		t.Errorf("equivalent flat = %g, want %g", got, want)
	}
}

func TestHypercubeBeatsRingAtScale(t *testing.T) {
	// The log-diameter topology must have lower mean hops for n = 64.
	ring := MeanHops(Ring{N: 64})
	cube := MeanHops(Hypercube{Dim: 6})
	if cube >= ring {
		t.Errorf("hypercube mean hops %g not below ring %g", cube, ring)
	}
}

func TestTopologySymmetryProperty(t *testing.T) {
	topos := []Topology{Ring{N: 13}, Mesh2D{W: 5, H: 7}, Torus2D{W: 6, H: 4}, Hypercube{Dim: 5}}
	for _, topo := range topos {
		n := topo.Nodes()
		err := quick.Check(func(a, b uint16) bool {
			i, j := int(a)%n, int(b)%n
			return topo.Hops(i, j) == topo.Hops(j, i)
		}, &quick.Config{MaxCount: 300})
		if err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestLinkSerialization(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "wire", 50, 0.5)
	var sendDone, arrive sim.Time
	k.Spawn("sender", func(c *sim.Context) {
		l.Send(c, 100, func() { arrive = k.Now() })
		sendDone = c.Now()
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 50 { // 100 bytes * 0.5 cycles
		t.Errorf("serialization completed at %g, want 50", sendDone)
	}
	if arrive != 100 { // + 50 propagation
		t.Errorf("arrival at %g, want 100", arrive)
	}
}

func TestLinkContention(t *testing.T) {
	// Two messages of 100 bytes on a 1-cycle/byte link: second waits for
	// the first to serialize.
	k := sim.NewKernel()
	l := NewLink(k, "wire", 0, 1)
	var done []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("s", func(c *sim.Context) {
			l.Send(c, 100, nil)
			done = append(done, c.Now())
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if done[0] != 100 || done[1] != 200 {
		t.Errorf("completion times = %v, want [100 200]", done)
	}
}

func TestLinkUtilization(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "wire", 0, 1)
	k.Spawn("s", func(c *sim.Context) { l.Send(c, 25, nil) })
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if u := l.Utilization(k.Now()); math.Abs(u-0.25) > 1e-9 {
		t.Errorf("utilization = %g, want 0.25", u)
	}
}

func TestByName(t *testing.T) {
	for _, c := range []struct {
		name  string
		n     int
		wants string // expected Topology.Name(), "" = nil (flat)
		ok    bool
	}{
		{"", 4, "", true},
		{"flat", 4, "", true},
		{"ring", 5, "ring(5)", true},
		{"mesh", 16, "mesh(4x4)", true},
		{"torus", 9, "torus(3x3)", true},
		{"hypercube", 8, "hypercube(3)", true},
		{"mesh", 10, "", false},
		{"torus", 12, "", false},
		{"hypercube", 12, "", false},
		{"pretzel", 4, "", false},
		{"ring", 0, "", false},
	} {
		topo, err := ByName(c.name, c.n)
		if c.ok != (err == nil) {
			t.Errorf("ByName(%q, %d): err = %v, want ok=%v", c.name, c.n, err, c.ok)
			continue
		}
		got := ""
		if topo != nil {
			got = topo.Name()
		}
		if got != c.wants {
			t.Errorf("ByName(%q, %d) = %q, want %q", c.name, c.n, got, c.wants)
		}
	}
	if len(TopologyNames()) != 5 {
		t.Errorf("TopologyNames = %v", TopologyNames())
	}
}
