package parcel_test

import (
	"fmt"

	"repro/internal/parcel"
)

// A parcel round-trips through the Fig. 8 wire format.
func ExampleParcel_Encode() {
	p := &parcel.Parcel{
		DestNode: 3,
		DestAddr: 0x1000,
		Action:   parcel.ActionAMOAdd,
		Operands: []uint64{5},
		SrcNode:  0,
		ContAddr: 0x2000,
	}
	buf, err := p.Encode()
	if err != nil {
		panic(err)
	}
	q, err := parcel.Decode(buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d bytes on the wire; action %v to node %d\n",
		len(buf), q.Action, q.DestNode)
	// Output: 59 bytes on the wire; action amo-add to node 3
}

// Message-driven computation: an AMO parcel mutates remote memory and the
// reply lands at the continuation address.
func ExampleMachine_Run() {
	m := parcel.NewMachine(4, parcel.NewRegistry())
	m.Nodes[2].Mem.Store(0x10, 40)
	handled, err := m.Run(&parcel.Parcel{
		DestNode: 2, DestAddr: 0x10, Action: parcel.ActionAMOAdd,
		Operands: []uint64{2}, SrcNode: 0, ContAddr: 0x99,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("handled %d parcels; counter now %d; old value delivered: %d\n",
		handled, m.Nodes[2].Mem.Load(0x10), m.Nodes[0].Mem.Load(0x99))
	// Output: handled 2 parcels; counter now 42; old value delivered: 40
}
