package parcel

import (
	"bytes"
	"testing"

	"repro/internal/fault"
)

// TestFaultCorruptionRejected ties the fault injector to the wire codec:
// every frame the injector can emit — any mode, any entropy, any parcel
// identity — must be rejected by Decode, never silently mis-decoded. This
// is the deterministic face of the guarantee the machine backend leans on
// when it counts a corrupted parcel as lost and retransmits.
func TestFaultCorruptionRejected(t *testing.T) {
	plan, err := fault.New(fault.Config{Seed: 0x9142, CorruptRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fuzzSeedParcels() {
		frame, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// The plan's own mode/position draws across many identities.
		for src := 0; src < 4; src++ {
			for seq := uint64(0); seq < 8; seq++ {
				id := fault.Identity{Sent: int64(7 * seq), Src: src, Seq: seq}
				for attempt := 0; attempt < 4; attempt++ {
					mangled, mode := plan.CorruptFrame(id, attempt, frame)
					if bytes.Equal(mangled, frame) {
						t.Fatalf("action %v mode %v id %+v attempt %d: corruption left the frame intact",
							p.Action, mode, id, attempt)
					}
					if _, err := Decode(mangled); err == nil {
						t.Fatalf("action %v mode %v id %+v attempt %d: corrupted frame decoded\nframe:   %x\nmangled: %x",
							p.Action, mode, id, attempt, frame, mangled)
					}
				}
			}
		}
		// And each mode explicitly, sweeping the entropy input.
		for mode := fault.CorruptMode(0); mode < fault.NumCorruptModes; mode++ {
			for i := uint64(0); i < 512; i++ {
				h := i * 0x9e3779b97f4a7c15
				if _, err := Decode(fault.ApplyCorruption(mode, h, frame)); err == nil {
					t.Fatalf("action %v mode %v h=%#x: corrupted frame decoded", p.Action, mode, h)
				}
			}
		}
	}
}

// FuzzFaultedFrames hunts for an (identity, seed, frame) combination where
// an injector-corrupted frame still decodes. The corruption modes are
// constructed to make that impossible (see fault.CorruptMode); the fuzzer
// is the adversary checking the construction.
func FuzzFaultedFrames(f *testing.F) {
	for i, p := range fuzzSeedParcels() {
		buf, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint64(0x9142), int64(i), i, uint64(i), buf)
	}
	f.Fuzz(func(t *testing.T, seed uint64, sent int64, src int, seq uint64, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // only valid frames feed the injector in the machine
		}
		// Corrupt the exact frame: trailing garbage past EncodedSize is
		// not part of the wire frame and would mask the rejection.
		frame := data[:p.EncodedSize()]
		plan, err := fault.New(fault.Config{Seed: seed, CorruptRate: 1})
		if err != nil {
			t.Fatal(err)
		}
		id := fault.Identity{Sent: sent, Src: src, Seq: seq}
		for attempt := 0; attempt < fault.MaxAttempts; attempt += 7 {
			mangled, mode := plan.CorruptFrame(id, attempt, frame)
			if _, err := Decode(mangled); err == nil {
				t.Fatalf("mode %v id %+v attempt %d: corrupted frame decoded\nframe:   %x\nmangled: %x",
					mode, id, attempt, frame, mangled)
			}
		}
	})
}
