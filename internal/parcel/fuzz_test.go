package parcel

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedParcels is the seed corpus: representative parcels spanning the
// action set, operand counts, and field extremes.
func fuzzSeedParcels() []*Parcel {
	return []*Parcel{
		{DestNode: 1, DestAddr: 0x1000, Action: ActionRead, SrcNode: 0, ContAddr: 0x2000, Seq: 1},
		{DestNode: 3, DestAddr: 42, Action: ActionWrite, Operands: []uint64{7}, SrcNode: 2, Seq: 9},
		{DestNode: 0, DestAddr: 8, Action: ActionAMOAdd, Operands: []uint64{1}, SrcNode: 5, ContAddr: 16, Seq: 77},
		{DestNode: 9, DestAddr: 64, Action: ActionAMOCas, Operands: []uint64{0, ^uint64(0)}, SrcNode: 1, Seq: 2},
		{DestNode: 2, DestAddr: 128, Action: ActionInvoke, MethodID: 31, Operands: []uint64{1, 2, 3, 4, 5}, SrcNode: 3, ContAddr: 256, Seq: 3},
		{DestNode: 7, DestAddr: ^uint64(0), Action: ActionReply, Operands: []uint64{0xdeadbeef}, SrcNode: ^uint32(0), ContAddr: ^uint64(0), Seq: ^uint64(0)},
	}
}

// FuzzParcelCodec drives the wire codec with raw bytes: any input that
// decodes must re-encode to a byte-identical buffer and survive a second
// decode, every single-byte corruption of a valid frame must be rejected
// (the CRC32 covers the whole header+payload, the trailer is the CRC
// itself), and every truncation must be rejected.
func FuzzParcelCodec(f *testing.F) {
	for _, p := range fuzzSeedParcels() {
		buf, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0x91, 0x42, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected inputs just must not panic
		}
		// Round trip: decode -> encode -> decode must be a fixed point.
		buf, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded parcel does not re-encode: %v (%+v)", err, p)
		}
		if !bytes.Equal(buf, data[:p.EncodedSize()]) {
			t.Fatalf("re-encode differs from wire bytes:\n  in:  %x\n  out: %x", data[:p.EncodedSize()], buf)
		}
		p2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded parcel does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the parcel:\n%+v\nvs\n%+v", p, p2)
		}
		// Corruption: flipping any single byte of the frame must be caught
		// (sample large frames to bound the quadratic CRC work).
		total := len(buf)
		stride := 1
		if total > 256 {
			stride = total / 256
		}
		for i := 0; i < total; i += stride {
			corrupt := append([]byte(nil), buf...)
			corrupt[i] ^= 0x40
			if _, err := Decode(corrupt); err == nil {
				t.Fatalf("byte %d corruption accepted", i)
			}
		}
		// Truncation: every strict prefix must be rejected.
		for _, cut := range []int{0, 1, headerLen - 1, headerLen, total - trailerLen, total - 1} {
			if cut < 0 || cut >= total {
				continue
			}
			if _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", cut, total)
			}
		}
	})
}

// TestCodecRejectsCorruption is the deterministic (non-fuzz) face of the
// corruption property, so `go test` exercises it even without -fuzz.
func TestCodecRejectsCorruption(t *testing.T) {
	for _, p := range fuzzSeedParcels() {
		buf, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			corrupt := append([]byte(nil), buf...)
			corrupt[i] ^= 0x01
			if _, err := Decode(corrupt); err == nil {
				t.Errorf("action %v: single-bit corruption at byte %d accepted", p.Action, i)
			}
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Errorf("action %v: truncation to %d bytes accepted", p.Action, cut)
			}
		}
	}
}
