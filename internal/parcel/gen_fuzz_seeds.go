//go:build ignore

// gen_fuzz_seeds regenerates the committed FuzzParcelCodec corpus entries
// under testdata/fuzz/FuzzParcelCodec: one corrupted frame per injector
// corruption mode (internal/fault), so the codec fuzz target chews on the
// exact shapes the fault plan can emit on every plain `go test` run.
//
//	cd internal/parcel && go run gen_fuzz_seeds.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/parcel"
)

func main() {
	p := &parcel.Parcel{
		DestNode: 2, DestAddr: 128, Action: parcel.ActionInvoke, MethodID: 31,
		Operands: []uint64{1, 2, 3, 4, 5}, SrcNode: 3, ContAddr: 256, Seq: 3,
	}
	frame, err := p.Encode()
	if err != nil {
		log.Fatal(err)
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzParcelCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for mode := fault.CorruptMode(0); mode < fault.NumCorruptModes; mode++ {
		out := fault.ApplyCorruption(mode, 0x91429142, frame)
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", out)
		name := filepath.Join(dir, "injector-"+mode.String())
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", name)
	}
}
