package parcel

import (
	"fmt"
)

// Method is user code invoked by ActionInvoke. It runs at the destination
// node against the node's local memory, may commit local side effects, and
// returns any new parcels to emit (the split-transaction continuation
// style of §4.1: servicing one parcel may generate outgoing parcels).
type Method func(m *Memory, p *Parcel) []*Parcel

// Registry maps method ids to code blocks ("a pointer to a method code
// block" in the paper's description of the action specifier).
type Registry struct {
	methods map[uint32]Method
}

// NewRegistry creates an empty method registry.
func NewRegistry() *Registry {
	return &Registry{methods: make(map[uint32]Method)}
}

// Register binds id to fn, replacing any previous binding.
func (r *Registry) Register(id uint32, fn Method) {
	if fn == nil {
		panic("parcel: Register with nil method")
	}
	r.methods[id] = fn
}

// Lookup returns the method bound to id.
func (r *Registry) Lookup(id uint32) (Method, bool) {
	fn, ok := r.methods[id]
	return fn, ok
}

// Memory is one PIM node's word-addressed local memory. Sparse, so tests
// and examples can use large virtual addresses cheaply.
type Memory struct {
	words         map[uint64]uint64
	reads, writes int64
}

// NewMemory creates an empty (all-zero) memory.
func NewMemory() *Memory {
	return &Memory{words: make(map[uint64]uint64)}
}

// Load returns the word at addr (zero if never written).
func (m *Memory) Load(addr uint64) uint64 {
	m.reads++
	return m.words[addr]
}

// Store writes the word at addr.
func (m *Memory) Store(addr, value uint64) {
	m.writes++
	if value == 0 {
		delete(m.words, addr)
		return
	}
	m.words[addr] = value
}

// Ops returns (loads, stores) performed.
func (m *Memory) Ops() (int64, int64) { return m.reads, m.writes }

// Footprint returns the number of nonzero words.
func (m *Memory) Footprint() int { return len(m.words) }

// Node is one PIM node's parcel engine: local memory plus the action
// interpreter. Handle executes one incident parcel to completion locally
// and returns the outgoing parcels it generates (reply and/or new work).
type Node struct {
	ID       uint32
	Mem      *Memory
	Registry *Registry

	handled [numBuiltinActions]int64
}

// NewNode creates a node with empty memory sharing the given registry.
func NewNode(id uint32, reg *Registry) *Node {
	return &Node{ID: id, Mem: NewMemory(), Registry: reg}
}

// Handle performs p's action against local memory. It returns outgoing
// parcels (possibly none). Handling a parcel addressed to another node is
// a routing bug and errors.
func (n *Node) Handle(p *Parcel) ([]*Parcel, error) {
	if p.DestNode != n.ID {
		return nil, fmt.Errorf("parcel: node %d received parcel for node %d", n.ID, p.DestNode)
	}
	if p.Action < numBuiltinActions {
		n.handled[p.Action]++
	}
	switch p.Action {
	case ActionRead:
		return []*Parcel{p.Reply(n.Mem.Load(p.DestAddr))}, nil
	case ActionWrite:
		if len(p.Operands) != 1 {
			return nil, fmt.Errorf("parcel: write with %d operands", len(p.Operands))
		}
		n.Mem.Store(p.DestAddr, p.Operands[0])
		return nil, nil
	case ActionAMOAdd:
		if len(p.Operands) != 1 {
			return nil, fmt.Errorf("parcel: amo-add with %d operands", len(p.Operands))
		}
		old := n.Mem.Load(p.DestAddr)
		n.Mem.Store(p.DestAddr, old+p.Operands[0])
		return []*Parcel{p.Reply(old)}, nil
	case ActionAMOCas:
		if len(p.Operands) != 2 {
			return nil, fmt.Errorf("parcel: amo-cas with %d operands", len(p.Operands))
		}
		old := n.Mem.Load(p.DestAddr)
		if old == p.Operands[0] {
			n.Mem.Store(p.DestAddr, p.Operands[1])
		}
		return []*Parcel{p.Reply(old)}, nil
	case ActionInvoke:
		fn, ok := n.Registry.Lookup(p.MethodID)
		if !ok {
			return nil, fmt.Errorf("parcel: unknown method %d", p.MethodID)
		}
		return fn(n.Mem, p), nil
	case ActionReply:
		// Deliver the result into the continuation address.
		if len(p.Operands) != 1 {
			return nil, fmt.Errorf("parcel: reply with %d operands", len(p.Operands))
		}
		n.Mem.Store(p.DestAddr, p.Operands[0])
		return nil, nil
	default:
		return nil, fmt.Errorf("parcel: unknown action %v", p.Action)
	}
}

// Handled returns how many parcels of the given built-in action this node
// has processed.
func (n *Node) Handled(a Action) int64 {
	if a >= numBuiltinActions {
		return 0
	}
	return n.handled[a]
}

// Machine is a functional multi-node parcel machine: it routes parcels
// between nodes until quiescence. It is untimed — the timed, statistical
// version is internal/parcelsys — and exists to validate parcel semantics
// (message-driven computation, split transactions, chained parcels) and to
// power the parcels example.
type Machine struct {
	Nodes []*Node
	// Delivered counts parcels routed, by action.
	Delivered int64
	// CheckWire, when set, round-trips every routed parcel through the
	// wire codec, exercising Encode/Decode on real traffic.
	CheckWire bool
}

// NewMachine builds an n-node machine sharing one method registry.
func NewMachine(n int, reg *Registry) *Machine {
	if n <= 0 {
		panic(fmt.Sprintf("parcel: NewMachine(%d)", n))
	}
	m := &Machine{Nodes: make([]*Node, n)}
	for i := range m.Nodes {
		m.Nodes[i] = NewNode(uint32(i), reg)
	}
	return m
}

// Run injects the given parcels and processes until no parcels remain in
// flight (BFS order, deterministic). It returns the number of parcels
// handled or an error from any handler.
func (m *Machine) Run(initial ...*Parcel) (int64, error) {
	queue := append([]*Parcel(nil), initial...)
	var handled int64
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if int(p.DestNode) >= len(m.Nodes) {
			return handled, fmt.Errorf("parcel: destination node %d out of %d", p.DestNode, len(m.Nodes))
		}
		if m.CheckWire {
			buf, err := p.Encode()
			if err != nil {
				return handled, fmt.Errorf("parcel: encode: %w", err)
			}
			q, err := Decode(buf)
			if err != nil {
				return handled, fmt.Errorf("parcel: decode: %w", err)
			}
			p = q
		}
		m.Delivered++
		out, err := m.Nodes[p.DestNode].Handle(p)
		if err != nil {
			return handled, err
		}
		handled++
		queue = append(queue, out...)
	}
	return handled, nil
}

// CostModel captures the cycle costs of the parcel mechanism used by the
// statistical study (§4.2): creation and send overhead at the source,
// assimilation overhead at the destination, plus per-action service.
// "Hardware support for parcels minimizes overhead of parcel creation,
// transport, and assimilation" — these knobs quantify the claim.
type CostModel struct {
	// CreateCycles is spent by the sender to form and launch a parcel.
	CreateCycles float64
	// AssimilateCycles is spent by the receiver to accept a parcel and
	// instantiate its action (context setup).
	AssimilateCycles float64
	// ReplyCycles is spent to form a reply parcel.
	ReplyCycles float64
}

// HardwareAssisted returns the paper's optimistic hardware-supported cost
// point: near-zero software overhead.
func HardwareAssisted() CostModel {
	return CostModel{CreateCycles: 2, AssimilateCycles: 2, ReplyCycles: 2}
}

// SoftwareOnly returns an active-messages-style software cost point, an
// order of magnitude heavier (used by the A2 ablation).
func SoftwareOnly() CostModel {
	return CostModel{CreateCycles: 50, AssimilateCycles: 50, ReplyCycles: 30}
}

// Validate checks the cost model.
func (cm CostModel) Validate() error {
	if cm.CreateCycles < 0 || cm.AssimilateCycles < 0 || cm.ReplyCycles < 0 {
		return fmt.Errorf("parcel: negative cost in %+v", cm)
	}
	return nil
}

// RoundTripOverhead returns the total mechanism cycles consumed by one
// request/reply pair, excluding wire latency and action service.
func (cm CostModel) RoundTripOverhead() float64 {
	return cm.CreateCycles + cm.AssimilateCycles + cm.ReplyCycles + cm.AssimilateCycles
}
