// Package parcel implements the paper's parcel (PARallel Control ELement)
// abstraction (§4.1, Fig. 8): a memory-borne message that names a
// destination datum in virtual memory, an action to perform on it — from a
// simple read through atomic arithmetic to remote method invocation — plus
// operand values and a continuation telling the remote node where any
// result should go.
//
// The package provides the parcel structure, a binary wire codec with the
// transport-layer wrapper of Fig. 8 (destination routing header + checksum),
// an action registry, and a functional executor used by the examples and
// by the parcel-machine integration tests.
package parcel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Action identifies what a parcel asks the destination node to do.
type Action uint8

// Built-in actions. Values are part of the wire format.
const (
	// ActionRead returns the word at DestAddr to the continuation.
	ActionRead Action = iota
	// ActionWrite stores Operands[0] at DestAddr; no reply.
	ActionWrite
	// ActionAMOAdd atomically adds Operands[0] to the word at DestAddr and
	// returns the previous value.
	ActionAMOAdd
	// ActionAMOCas compares the word at DestAddr with Operands[0] and, if
	// equal, stores Operands[1]; returns the previous value.
	ActionAMOCas
	// ActionInvoke runs the registered method MethodID on the destination
	// object; the method decides whether to reply and may emit new parcels.
	ActionInvoke
	// ActionReply carries a result value back to a continuation address.
	ActionReply

	numBuiltinActions
)

func (a Action) String() string {
	switch a {
	case ActionRead:
		return "read"
	case ActionWrite:
		return "write"
	case ActionAMOAdd:
		return "amo-add"
	case ActionAMOCas:
		return "amo-cas"
	case ActionInvoke:
		return "invoke"
	case ActionReply:
		return "reply"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Parcel is the inner message of Fig. 8: destination data virtual address,
// action specifier, operands, and the continuation identifying where any
// result should be delivered.
type Parcel struct {
	// DestNode and DestAddr name the target datum in the global address
	// space (node id + virtual address within the node).
	DestNode uint32
	DestAddr uint64
	// Action selects the operation; MethodID selects the code block for
	// ActionInvoke.
	Action   Action
	MethodID uint32
	// Operands are the argument values.
	Operands []uint64
	// SrcNode and ContAddr form the continuation: the reply parcel (if
	// any) is sent to ContAddr on SrcNode.
	SrcNode  uint32
	ContAddr uint64
	// Seq tags the parcel for matching replies to requests.
	Seq uint64
}

// Reply constructs the reply parcel delivering value to p's continuation.
func (p *Parcel) Reply(value uint64) *Parcel {
	return &Parcel{
		DestNode: p.SrcNode,
		DestAddr: p.ContAddr,
		Action:   ActionReply,
		Operands: []uint64{value},
		SrcNode:  p.DestNode,
		Seq:      p.Seq,
	}
}

// --- Wire format ---
//
// Outer wrapper (transport layer, Fig. 8's "outer wrapper"):
//   magic(2) | version(1) | reserved(1) | dstNode(4) | srcNode(4) |
//   payloadLen(4) | payload(...) | crc32(4)
// Inner payload:
//   destAddr(8) | action(1) | methodID(4) | seq(8) | contAddr(8) |
//   nOperands(2) | operands(8 each)

const (
	wireMagic   uint16 = 0x9142
	wireVersion byte   = 1
	headerLen          = 2 + 1 + 1 + 4 + 4 + 4
	innerFixed         = 8 + 1 + 4 + 8 + 8 + 2
	trailerLen         = 4
	// MaxOperands bounds a parcel's operand list (wire field is uint16,
	// but parcels are lightweight by design).
	MaxOperands = 1024
)

// Codec errors.
var (
	ErrShortBuffer     = errors.New("parcel: buffer too short")
	ErrBadMagic        = errors.New("parcel: bad magic")
	ErrBadVersion      = errors.New("parcel: unsupported version")
	ErrBadChecksum     = errors.New("parcel: checksum mismatch")
	ErrTooManyOperands = errors.New("parcel: too many operands")
	ErrTruncated       = errors.New("parcel: truncated payload")
)

// EncodedSize returns the exact wire size of p in bytes.
func (p *Parcel) EncodedSize() int {
	return headerLen + innerFixed + 8*len(p.Operands) + trailerLen
}

// Encode serializes p into the Fig. 8 wire format.
func (p *Parcel) Encode() ([]byte, error) {
	if len(p.Operands) > MaxOperands {
		return nil, fmt.Errorf("%w: %d", ErrTooManyOperands, len(p.Operands))
	}
	buf := make([]byte, p.EncodedSize())
	binary.BigEndian.PutUint16(buf[0:], wireMagic)
	buf[2] = wireVersion
	buf[3] = 0
	binary.BigEndian.PutUint32(buf[4:], p.DestNode)
	binary.BigEndian.PutUint32(buf[8:], p.SrcNode)
	payloadLen := innerFixed + 8*len(p.Operands)
	binary.BigEndian.PutUint32(buf[12:], uint32(payloadLen))
	off := headerLen
	binary.BigEndian.PutUint64(buf[off:], p.DestAddr)
	off += 8
	buf[off] = byte(p.Action)
	off++
	binary.BigEndian.PutUint32(buf[off:], p.MethodID)
	off += 4
	binary.BigEndian.PutUint64(buf[off:], p.Seq)
	off += 8
	binary.BigEndian.PutUint64(buf[off:], p.ContAddr)
	off += 8
	binary.BigEndian.PutUint16(buf[off:], uint16(len(p.Operands)))
	off += 2
	for _, v := range p.Operands {
		binary.BigEndian.PutUint64(buf[off:], v)
		off += 8
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.BigEndian.PutUint32(buf[off:], crc)
	return buf, nil
}

// Decode parses one parcel from buf, verifying the wrapper and checksum.
func Decode(buf []byte) (*Parcel, error) {
	if len(buf) < headerLen+innerFixed+trailerLen {
		return nil, ErrShortBuffer
	}
	if binary.BigEndian.Uint16(buf[0:]) != wireMagic {
		return nil, ErrBadMagic
	}
	if buf[2] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[2])
	}
	p := &Parcel{
		DestNode: binary.BigEndian.Uint32(buf[4:]),
		SrcNode:  binary.BigEndian.Uint32(buf[8:]),
	}
	payloadLen := int(binary.BigEndian.Uint32(buf[12:]))
	total := headerLen + payloadLen + trailerLen
	if payloadLen < innerFixed || len(buf) < total {
		return nil, ErrTruncated
	}
	wantCRC := binary.BigEndian.Uint32(buf[headerLen+payloadLen:])
	if crc32.ChecksumIEEE(buf[:headerLen+payloadLen]) != wantCRC {
		return nil, ErrBadChecksum
	}
	off := headerLen
	p.DestAddr = binary.BigEndian.Uint64(buf[off:])
	off += 8
	p.Action = Action(buf[off])
	off++
	p.MethodID = binary.BigEndian.Uint32(buf[off:])
	off += 4
	p.Seq = binary.BigEndian.Uint64(buf[off:])
	off += 8
	p.ContAddr = binary.BigEndian.Uint64(buf[off:])
	off += 8
	n := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if n > MaxOperands {
		return nil, fmt.Errorf("%w: %d", ErrTooManyOperands, n)
	}
	if payloadLen != innerFixed+8*n {
		return nil, ErrTruncated
	}
	if n > 0 {
		p.Operands = make([]uint64, n)
		for i := 0; i < n; i++ {
			p.Operands[i] = binary.BigEndian.Uint64(buf[off:])
			off += 8
		}
	}
	return p, nil
}
