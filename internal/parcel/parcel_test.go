package parcel

import (
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Parcel{
		DestNode: 7,
		DestAddr: 0xdeadbeef00,
		Action:   ActionAMOAdd,
		MethodID: 42,
		Operands: []uint64{1, 2, 3},
		SrcNode:  3,
		ContAddr: 0x1000,
		Seq:      99,
	}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.EncodedSize() {
		t.Errorf("encoded %d bytes, EncodedSize says %d", len(buf), p.EncodedSize())
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("round trip mismatch:\n  in  %+v\n  out %+v", p, q)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	st := rng.New(314)
	err := quick.Check(func(dn, sn uint32, da, ca, seq uint64, act uint8, nOps uint8) bool {
		p := &Parcel{
			DestNode: dn, SrcNode: sn, DestAddr: da, ContAddr: ca, Seq: seq,
			Action:   Action(act % uint8(numBuiltinActions)),
			MethodID: uint32(seq),
		}
		if n := int(nOps % 16); n > 0 {
			p.Operands = make([]uint64, n)
			for i := range p.Operands {
				p.Operands[i] = st.Uint64()
			}
		}
		buf, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	p := &Parcel{DestNode: 1, DestAddr: 8, Action: ActionWrite, Operands: []uint64{5}}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte one at a time: decode must never silently succeed
	// with different content.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		q, err := Decode(mut)
		if err != nil {
			continue // rejected: good
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("byte %d corruption decoded silently to %+v", i, q)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDecodeBadMagicAndVersion(t *testing.T) {
	p := &Parcel{DestNode: 0, Action: ActionRead}
	buf, _ := p.Encode()
	bad := append([]byte(nil), buf...)
	binary.BigEndian.PutUint16(bad[0:], 0x1234)
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Errorf("bad magic -> %v", err)
	}
	bad2 := append([]byte(nil), buf...)
	bad2[2] = 99
	// Version byte is covered by CRC but checked first.
	if _, err := Decode(bad2); err == nil {
		t.Error("bad version accepted")
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	p := &Parcel{DestNode: 0, Action: ActionRead, Operands: []uint64{1, 2}}
	buf, _ := p.Encode()
	if _, err := Decode(buf[:len(buf)-5]); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestTooManyOperands(t *testing.T) {
	p := &Parcel{Operands: make([]uint64, MaxOperands+1)}
	if _, err := p.Encode(); err == nil {
		t.Error("oversized parcel accepted")
	}
}

func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	// Decode must reject or accept arbitrary byte soup without panicking.
	st := rng.New(1234)
	for trial := 0; trial < 5000; trial++ {
		n := st.Intn(128)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(st.Uint64())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %d bytes: %v", n, r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
	// Also: valid header with adversarial payload lengths.
	p := &Parcel{DestNode: 1, Action: ActionRead}
	good, _ := p.Encode()
	for trial := 0; trial < 2000; trial++ {
		buf := append([]byte(nil), good...)
		// Corrupt the length field with random values.
		for i := 12; i < 16; i++ {
			buf[i] = byte(st.Uint64())
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on corrupted length: %v", r)
				}
			}()
			_, _ = Decode(buf)
		}()
	}
}

func TestReplyTargetsContinuation(t *testing.T) {
	p := &Parcel{
		DestNode: 5, DestAddr: 100, Action: ActionRead,
		SrcNode: 2, ContAddr: 777, Seq: 13,
	}
	r := p.Reply(0xabc)
	if r.DestNode != 2 || r.DestAddr != 777 {
		t.Errorf("reply went to node %d addr %d", r.DestNode, r.DestAddr)
	}
	if r.Action != ActionReply || r.Operands[0] != 0xabc || r.Seq != 13 {
		t.Errorf("reply = %+v", r)
	}
}

func TestNodeReadWrite(t *testing.T) {
	reg := NewRegistry()
	n := NewNode(0, reg)
	out, err := n.Handle(&Parcel{DestNode: 0, DestAddr: 16, Action: ActionWrite, Operands: []uint64{42}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("write produced %d parcels", len(out))
	}
	out, err = n.Handle(&Parcel{DestNode: 0, DestAddr: 16, Action: ActionRead, SrcNode: 0, ContAddr: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Operands[0] != 42 {
		t.Errorf("read reply = %+v", out)
	}
}

func TestNodeAMOAdd(t *testing.T) {
	n := NewNode(0, NewRegistry())
	n.Mem.Store(4, 10)
	out, err := n.Handle(&Parcel{DestNode: 0, DestAddr: 4, Action: ActionAMOAdd, Operands: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Operands[0] != 10 {
		t.Errorf("amo-add returned %d, want old value 10", out[0].Operands[0])
	}
	if n.Mem.Load(4) != 15 {
		t.Errorf("memory = %d, want 15", n.Mem.Load(4))
	}
}

func TestNodeAMOCas(t *testing.T) {
	n := NewNode(0, NewRegistry())
	n.Mem.Store(4, 7)
	// Failed CAS: expected 9, actual 7.
	out, _ := n.Handle(&Parcel{DestNode: 0, DestAddr: 4, Action: ActionAMOCas, Operands: []uint64{9, 100}})
	if out[0].Operands[0] != 7 || n.Mem.Load(4) != 7 {
		t.Error("failed CAS mutated memory")
	}
	// Successful CAS.
	out, _ = n.Handle(&Parcel{DestNode: 0, DestAddr: 4, Action: ActionAMOCas, Operands: []uint64{7, 100}})
	if out[0].Operands[0] != 7 || n.Mem.Load(4) != 100 {
		t.Error("successful CAS did not take effect")
	}
}

func TestNodeRejectsMisrouted(t *testing.T) {
	n := NewNode(3, NewRegistry())
	if _, err := n.Handle(&Parcel{DestNode: 5}); err == nil {
		t.Error("misrouted parcel accepted")
	}
}

func TestNodeOperandArity(t *testing.T) {
	n := NewNode(0, NewRegistry())
	cases := []*Parcel{
		{DestNode: 0, Action: ActionWrite},                            // 0 operands
		{DestNode: 0, Action: ActionAMOAdd, Operands: []uint64{1, 2}}, // 2
		{DestNode: 0, Action: ActionAMOCas, Operands: []uint64{1}},    // 1
		{DestNode: 0, Action: ActionReply},                            // 0
		{DestNode: 0, Action: ActionInvoke, MethodID: 999},            // unregistered
	}
	for i, p := range cases {
		if _, err := n.Handle(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestInvokeMethodChaining(t *testing.T) {
	// A method that walks a linked list one hop per parcel: node i holds
	// next pointer at addr 0 and a value at addr 1; the method accumulates
	// the sum in Operands[0] and forwards itself until next == 0.
	const methodWalk = 1
	reg := NewRegistry()
	reg.Register(methodWalk, func(m *Memory, p *Parcel) []*Parcel {
		sum := p.Operands[0] + m.Load(1)
		next := m.Load(0)
		if next == 0 {
			return []*Parcel{p.Reply(sum)}
		}
		return []*Parcel{{
			DestNode: uint32(next), Action: ActionInvoke, MethodID: methodWalk,
			Operands: []uint64{sum}, SrcNode: p.SrcNode, ContAddr: p.ContAddr, Seq: p.Seq,
		}}
	})
	m := NewMachine(4, reg)
	// Chain 1 -> 2 -> 3, values 10, 20, 30.
	for i, v := range map[int]uint64{1: 10, 2: 20, 3: 30} {
		m.Nodes[i].Mem.Store(1, v)
	}
	m.Nodes[1].Mem.Store(0, 2)
	m.Nodes[2].Mem.Store(0, 3)
	_, err := m.Run(&Parcel{
		DestNode: 1, Action: ActionInvoke, MethodID: methodWalk,
		Operands: []uint64{0}, SrcNode: 0, ContAddr: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[0].Mem.Load(500); got != 60 {
		t.Errorf("walked sum = %d, want 60", got)
	}
}

func TestMachineWireCheckMode(t *testing.T) {
	reg := NewRegistry()
	m := NewMachine(2, reg)
	m.CheckWire = true
	handled, err := m.Run(
		&Parcel{DestNode: 1, DestAddr: 4, Action: ActionWrite, Operands: []uint64{9}},
		&Parcel{DestNode: 1, DestAddr: 4, Action: ActionRead, SrcNode: 0, ContAddr: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if handled != 3 { // write + read + reply
		t.Errorf("handled = %d, want 3", handled)
	}
	if m.Nodes[0].Mem.Load(2) != 9 {
		t.Errorf("reply value = %d", m.Nodes[0].Mem.Load(2))
	}
}

func TestMachineDistributedCounter(t *testing.T) {
	// Many AMO-add parcels from different "sources" to one counter: final
	// value must be the exact sum (atomicity at the memory).
	m := NewMachine(8, NewRegistry())
	var ps []*Parcel
	want := uint64(0)
	for i := 0; i < 100; i++ {
		v := uint64(i + 1)
		want += v
		ps = append(ps, &Parcel{
			DestNode: 3, DestAddr: 0x40, Action: ActionAMOAdd,
			Operands: []uint64{v}, SrcNode: uint32(i % 8), ContAddr: uint64(0x1000 + i),
		})
	}
	if _, err := m.Run(ps...); err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes[3].Mem.Load(0x40); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if m.Nodes[3].Handled(ActionAMOAdd) != 100 {
		t.Errorf("amo count = %d", m.Nodes[3].Handled(ActionAMOAdd))
	}
}

func TestMachineOutOfRangeDest(t *testing.T) {
	m := NewMachine(2, NewRegistry())
	if _, err := m.Run(&Parcel{DestNode: 9}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	mem := NewMemory()
	if mem.Load(12345) != 0 {
		t.Error("unwritten word != 0")
	}
	mem.Store(1, 5)
	mem.Store(1, 0) // storing zero reclaims
	if mem.Footprint() != 0 {
		t.Errorf("footprint = %d after zero store", mem.Footprint())
	}
}

func TestCostModels(t *testing.T) {
	hw, sw := HardwareAssisted(), SoftwareOnly()
	if err := hw.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	if hw.RoundTripOverhead() >= sw.RoundTripOverhead() {
		t.Error("hardware-assisted overhead not below software")
	}
	bad := CostModel{CreateCycles: -1}
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
}

func BenchmarkEncode(b *testing.B) {
	p := &Parcel{DestNode: 1, DestAddr: 0x100, Action: ActionAMOAdd, Operands: []uint64{1, 2, 3, 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	p := &Parcel{DestNode: 1, DestAddr: 0x100, Action: ActionAMOAdd, Operands: []uint64{1, 2, 3, 4}}
	buf, _ := p.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
