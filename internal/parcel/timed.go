package parcel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// TimedMachine executes real parcels on the DES kernel: each node is a
// simulated processor that assimilates parcels from its queue, performs
// the action against its functional memory, and emits continuations with
// creation overhead and network latency. It is the parcel-level
// counterpart of the statistical parcelsys model — same mechanism, actual
// parcels — and exists to cross-validate the two and to time real
// parcel programs (graph walks, reductions) rather than synthetic ones.
type TimedMachine struct {
	k      *sim.Kernel
	nodes  []*Node
	queues []*sim.Store[*Parcel]
	cost   CostModel
	// Latency is the flat one-way inter-node latency in cycles.
	Latency float64
	// ActionCycles prices the service time of each action; nil uses
	// DefaultActionCycles.
	ActionCycles func(a Action) float64

	// Busy tracks each node's time-weighted busy indicator.
	Busy []stats.TimeWeighted
	// Handled counts parcels serviced per node.
	Handled []int64

	outstanding int64
	idleSig     *sim.Signal
	err         error
}

// DefaultActionCycles prices memory-touching actions at memCycles and
// invocations at invokeCycles.
func DefaultActionCycles(memCycles, invokeCycles float64) func(Action) float64 {
	return func(a Action) float64 {
		switch a {
		case ActionInvoke:
			return invokeCycles
		default:
			return memCycles
		}
	}
}

// NewTimedMachine creates an n-node timed parcel machine on kernel k.
func NewTimedMachine(k *sim.Kernel, n int, reg *Registry, cost CostModel, latency float64) (*TimedMachine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("parcel: NewTimedMachine(%d)", n)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	if latency < 0 {
		return nil, fmt.Errorf("parcel: negative latency %g", latency)
	}
	tm := &TimedMachine{
		k:       k,
		cost:    cost,
		Latency: latency,
		Busy:    make([]stats.TimeWeighted, n),
		Handled: make([]int64, n),
		idleSig: sim.NewSignal(k, "parcel-quiescent"),
	}
	for i := 0; i < n; i++ {
		tm.nodes = append(tm.nodes, NewNode(uint32(i), reg))
		tm.queues = append(tm.queues, sim.NewStore[*Parcel](k, fmt.Sprintf("pq%d", i)))
		tm.Busy[i].Set(k.Now(), 0)
	}
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("pnode-%d", i), func(c *sim.Context) { tm.serve(c, i) })
	}
	return tm, nil
}

// Node returns the functional node i (for staging memory and reading
// results).
func (tm *TimedMachine) Node(i int) *Node { return tm.nodes[i] }

// Inject enqueues a parcel from outside the machine at the current
// simulated time.
func (tm *TimedMachine) Inject(p *Parcel) error {
	if int(p.DestNode) >= len(tm.nodes) {
		return fmt.Errorf("parcel: inject to node %d of %d", p.DestNode, len(tm.nodes))
	}
	tm.outstanding++
	tm.queues[p.DestNode].TryPut(p)
	return nil
}

// serve is one node's processor loop.
func (tm *TimedMachine) serve(c *sim.Context, i int) {
	actionCost := tm.ActionCycles
	if actionCost == nil {
		actionCost = DefaultActionCycles(6, 20)
	}
	for {
		p := tm.queues[i].Get(c)
		tm.Busy[i].Set(c.Now(), 1)
		if tm.cost.AssimilateCycles > 0 {
			c.Wait(tm.cost.AssimilateCycles)
		}
		c.Wait(actionCost(p.Action))
		out, err := tm.nodes[i].Handle(p)
		if err != nil {
			tm.err = err
			tm.outstanding--
			tm.Busy[i].Set(c.Now(), 0)
			tm.maybeQuiesce()
			return
		}
		tm.Handled[i]++
		for _, q := range out {
			if int(q.DestNode) >= len(tm.nodes) {
				tm.err = fmt.Errorf("parcel: emitted parcel for node %d of %d", q.DestNode, len(tm.nodes))
				continue
			}
			if tm.cost.CreateCycles > 0 {
				c.Wait(tm.cost.CreateCycles)
			}
			lat := 0.0
			if q.DestNode != uint32(i) {
				lat = tm.Latency
			}
			q := q
			tm.outstanding++
			c.Kernel().Schedule(lat, func() { tm.queues[q.DestNode].TryPut(q) })
		}
		tm.outstanding--
		tm.Busy[i].Set(c.Now(), 0)
		tm.maybeQuiesce()
	}
}

// maybeQuiesce fires the quiescence signal when no parcels remain.
func (tm *TimedMachine) maybeQuiesce() {
	if tm.outstanding == 0 {
		tm.idleSig.Trigger()
		tm.idleSig = sim.NewSignal(tm.k, "parcel-quiescent")
	}
}

// RunToQuiescence advances the kernel until all injected parcels (and
// their transitive continuations) have been handled, or until maxCycles.
// It returns the completion time.
func (tm *TimedMachine) RunToQuiescence(maxCycles sim.Time) (sim.Time, error) {
	if tm.outstanding == 0 {
		return tm.k.Now(), nil
	}
	var done sim.Time = -1
	watcher := tm.k.Spawn("quiesce-watch", func(c *sim.Context) {
		for tm.outstanding > 0 {
			sig := tm.idleSig
			sig.Wait(c)
		}
		done = c.Now()
		c.Kernel().Stop()
	})
	_ = watcher
	if err := tm.k.Run(maxCycles); err != nil {
		return tm.k.Now(), err
	}
	if tm.err != nil {
		return tm.k.Now(), tm.err
	}
	if done < 0 {
		return tm.k.Now(), fmt.Errorf("parcel: %d parcels still outstanding at cycle %g",
			tm.outstanding, maxCycles)
	}
	return done, nil
}

// TotalHandled sums handled parcels across nodes.
func (tm *TimedMachine) TotalHandled() int64 {
	var s int64
	for _, h := range tm.Handled {
		s += h
	}
	return s
}

// BusyFrac returns node i's busy fraction over [0, now].
func (tm *TimedMachine) BusyFrac(i int, now sim.Time) float64 {
	return tm.Busy[i].Mean(now)
}
