package parcel

import (
	"testing"

	"repro/internal/sim"
)

// timedCounter builds a timed machine, injects AMO-add parcels from every
// node into a counter on node 0, and runs to quiescence.
func timedCounter(t *testing.T, nodes, perNode int, latency float64) (*TimedMachine, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	tm, err := NewTimedMachine(k, nodes, NewRegistry(), HardwareAssisted(), latency)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			err := tm.Inject(&Parcel{
				DestNode: 0, DestAddr: 0x10, Action: ActionAMOAdd,
				Operands: []uint64{1}, SrcNode: uint32(n), ContAddr: 0x20,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	done, err := tm.RunToQuiescence(1e7)
	if err != nil {
		t.Fatal(err)
	}
	return tm, done
}

func TestTimedMachineMatchesFunctionalSemantics(t *testing.T) {
	const nodes, perNode = 4, 10
	tm, _ := timedCounter(t, nodes, perNode, 100)
	// Compare against the untimed functional machine.
	fm := NewMachine(nodes, NewRegistry())
	var ps []*Parcel
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			ps = append(ps, &Parcel{
				DestNode: 0, DestAddr: 0x10, Action: ActionAMOAdd,
				Operands: []uint64{1}, SrcNode: uint32(n), ContAddr: 0x20,
			})
		}
	}
	if _, err := fm.Run(ps...); err != nil {
		t.Fatal(err)
	}
	if got, want := tm.Node(0).Mem.Load(0x10), fm.Nodes[0].Mem.Load(0x10); got != want {
		t.Errorf("timed counter = %d, functional = %d", got, want)
	}
	// Every AMO generates a reply to its source: handled = 2x injected.
	if tm.TotalHandled() != 2*nodes*perNode {
		t.Errorf("handled = %d, want %d", tm.TotalHandled(), 2*nodes*perNode)
	}
}

func TestTimedMachineLatencyStretchesMakespan(t *testing.T) {
	_, fast := timedCounter(t, 4, 10, 10)
	_, slow := timedCounter(t, 4, 10, 2000)
	if slow <= fast {
		t.Errorf("makespan did not grow with latency: %g vs %g", fast, slow)
	}
	// Replies make one network hop, partially overlapped with service:
	// the makespan must absorb most of the one-way latency increase.
	if slow-fast < 1500 {
		t.Errorf("latency barely visible: fast=%g slow=%g", fast, slow)
	}
}

func TestTimedMachineSerializationAtDestination(t *testing.T) {
	// All work lands on node 0: its busy fraction dominates the others.
	tm, done := timedCounter(t, 4, 20, 50)
	b0 := tm.BusyFrac(0, done)
	for i := 1; i < 4; i++ {
		if bi := tm.BusyFrac(i, done); bi > b0 {
			t.Errorf("node %d busier (%g) than the AMO target (%g)", i, bi, b0)
		}
	}
	if b0 < 0.5 {
		t.Errorf("target node busy fraction = %g, expected high", b0)
	}
}

func TestTimedMachineChainedInvocation(t *testing.T) {
	// The linked-list walk from the functional tests, now timed: parcels
	// hop 1 -> 2 -> 3, then reply to node 0.
	const methodWalk = 1
	reg := NewRegistry()
	reg.Register(methodWalk, func(m *Memory, p *Parcel) []*Parcel {
		sum := p.Operands[0] + m.Load(1)
		next := m.Load(0)
		if next == 0 {
			return []*Parcel{p.Reply(sum)}
		}
		return []*Parcel{{
			DestNode: uint32(next), Action: ActionInvoke, MethodID: methodWalk,
			Operands: []uint64{sum}, SrcNode: p.SrcNode, ContAddr: p.ContAddr, Seq: p.Seq,
		}}
	})
	k := sim.NewKernel()
	const latency = 500.0
	tm, err := NewTimedMachine(k, 4, reg, HardwareAssisted(), latency)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range map[int]uint64{1: 10, 2: 20, 3: 30} {
		tm.Node(i).Mem.Store(1, v)
	}
	tm.Node(1).Mem.Store(0, 2)
	tm.Node(2).Mem.Store(0, 3)
	if err := tm.Inject(&Parcel{
		DestNode: 1, Action: ActionInvoke, MethodID: methodWalk,
		Operands: []uint64{0}, SrcNode: 0, ContAddr: 0x99,
	}); err != nil {
		t.Fatal(err)
	}
	done, err := tm.RunToQuiescence(1e7)
	if err != nil {
		t.Fatal(err)
	}
	if got := tm.Node(0).Mem.Load(0x99); got != 60 {
		t.Errorf("walk sum = %d, want 60", got)
	}
	// The walk makes 3 network hops (1->2, 2->3, 3->0): makespan must
	// exceed 3 one-way latencies.
	if done < 3*latency {
		t.Errorf("makespan %g below 3 hops x %g", done, latency)
	}
}

func TestTimedMachineHandlerErrorSurfaces(t *testing.T) {
	k := sim.NewKernel()
	tm, err := NewTimedMachine(k, 2, NewRegistry(), HardwareAssisted(), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Unregistered method: handler errors.
	if err := tm.Inject(&Parcel{DestNode: 1, Action: ActionInvoke, MethodID: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := tm.RunToQuiescence(1e6); err == nil {
		t.Error("handler error not surfaced")
	}
}

func TestTimedMachineValidation(t *testing.T) {
	k := sim.NewKernel()
	if _, err := NewTimedMachine(k, 0, NewRegistry(), HardwareAssisted(), 10); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewTimedMachine(k, 2, NewRegistry(), HardwareAssisted(), -1); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewTimedMachine(k, 2, NewRegistry(), CostModel{CreateCycles: -1}, 10); err == nil {
		t.Error("bad cost model accepted")
	}
	tm, err := NewTimedMachine(sim.NewKernel(), 2, NewRegistry(), HardwareAssisted(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Inject(&Parcel{DestNode: 9}); err == nil {
		t.Error("out-of-range injection accepted")
	}
}

func TestTimedMachineEmptyRun(t *testing.T) {
	k := sim.NewKernel()
	tm, err := NewTimedMachine(k, 2, NewRegistry(), HardwareAssisted(), 10)
	if err != nil {
		t.Fatal(err)
	}
	done, err := tm.RunToQuiescence(1000)
	if err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Errorf("empty machine quiesced at %g", done)
	}
}
