package parcelsys

// Partitioned formulation of both systems (Params.RunParallel >= 1):
// the nodes are sharded contiguously over a sim.ParKernel and all
// cross-node interaction goes through Kernel.Send with delay >= the
// conservative lookahead — the minimum one-way latency. Two things had to
// change from the serial formulation to make the model partitionable, and
// both are partition-independent, so the results are identical for every
// RunParallel >= 1 (the invariance tests pin this):
//
//   - Test system: the run-wide routing stream would be consumed from
//     several shards at once, so each parcel carries its own routing
//     stream instead (workParcel.rt). Parcel delivery becomes a Send to
//     the destination node's shard; its delay is the one-way latency,
//     which is >= the lookahead by construction.
//
//   - Control system: a thread cannot Acquire a memory-bank Resource on
//     another shard, so each node's bank becomes a request/reply server —
//     an activity draining a FIFO request Store, serving each request for
//     MemCycles, then replying. A remote access Sends the request (one-way
//     latency), parks on the thread's reply signal, and is woken by the
//     reply Send (one-way latency back): the same round trip, the same
//     idle processor, the same FIFO bank, expressed as messages. A local
//     access enqueues directly and parks holding the processor, exactly as
//     the serial thread blocks on its local bank.

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
)

// partition returns the shard count and conservative lookahead for a
// partitioned run: min(RunParallel, Nodes) shards, lookahead = the minimum
// one-way latency between distinct nodes (the flat Latency, or the
// topology minimum when Net is set — an O(Nodes²) scan done once per run).
func (p Params) partition() (parts int, lookahead float64, err error) {
	parts = p.RunParallel
	if parts > p.Nodes {
		parts = p.Nodes
	}
	if parts <= 1 {
		return 1, 0, nil // single shard: the lookahead is never consulted
	}
	lookahead = p.Latency
	if p.Net != nil {
		lookahead = math.Inf(1)
		for i := 0; i < p.Nodes; i++ {
			for j := 0; j < p.Nodes; j++ {
				if i != j && p.Net.Latency(i, j) < lookahead {
					lookahead = p.Net.Latency(i, j)
				}
			}
		}
	}
	if !(lookahead > 0) {
		return 0, 0, fmt.Errorf("parcelsys: RunParallel = %d needs a positive minimum one-way latency (the lookahead), got %g", p.RunParallel, lookahead)
	}
	return parts, lookahead, nil
}

// partitionTable assigns nodes to shards contiguously.
func partitionTable(nodes, parts int) []int {
	tab := make([]int, nodes)
	for i := range tab {
		tab[i] = i * parts / nodes
	}
	return tab
}

// runTestPar simulates the split-transaction parcel system partitioned.
// The nodes run the exact serial testNode machine — only shipping differs
// (see testNode.send).
func runTestPar(p Params, rs *runState) (SystemResult, error) {
	parts, look, err := p.partition()
	if err != nil {
		return SystemResult{}, err
	}
	pk := sim.NewParKernel(parts, p.RunParallel, look)
	tab := partitionTable(p.Nodes, parts)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	queues := make([]*sim.Store[*workParcel], p.Nodes)
	for i := range queues {
		queues[i] = sim.NewStore[*workParcel](pk.Part(tab[i]), rs.names.queue[i])
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	rs.parcels = slab(rs.parcels, p.Nodes*p.Parallelism)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < p.Parallelism; j++ {
			wp := &rs.parcels[i*p.Parallelism+j]
			wp.pendingAccess = false
			wp.st.Reseed(p.Seed, 2000+uint64(i)*64+uint64(j))
			wp.rt.Reseed(p.Seed, 7000+uint64(i)*64+uint64(j))
			queues[i].TryPut(wp)
		}
	}
	// deliver runs on the destination shard's kernel (the Store's own).
	deliver := func(x any) {
		wp := x.(*workParcel)
		queues[wp.dst].TryPut(wp)
	}
	rs.testNodes = slab(rs.testNodes, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		n := &rs.testNodes[i]
		*n = testNode{p: &p, i: i, ns: &nodes[i], queue: queues[i], deliver: deliver}
		src, ki := i, pk.Part(tab[i])
		n.send = func(wp *workParcel) {
			ki.Send(tab[wp.dst], p.latency(src, wp.dst), deliver, wp)
		}
		ki.SpawnActivity(rs.names.test[i], n)
	}
	if err := pk.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, queues, p.Horizon), nil
}

// memReq is one memory access in flight in the partitioned control
// system. Each thread owns one, reused across accesses: the requester
// parks on sig, the destination node's server serves and wakes it.
type memReq struct {
	origin int
	part   int // origin's shard, the reply Send's destination
	local  bool
	ns     *nodeStats // origin's stats; the server marks local service busy
	sig    *sim.Signal
	wake   func(any) // reply callback: sig.Trigger, run on origin's shard
}

// memServer is one node's memory bank as a request/reply activity: FIFO
// through the request store, MemCycles per access — the same serialization
// the serial formulation's capacity-1 Resource provides.
type memServer struct {
	p    *Params
	i    int
	reqs *sim.Store[*memReq]

	state int
	cur   *memReq
}

// memServer states.
const (
	msFetch  = iota // take (or wait for) the next request
	msServed        // service time elapsed: reply
)

// Step serves requests forever (the horizon kill ends it).
func (s *memServer) Step(a *sim.ActCtx) {
	for {
		switch s.state {
		case msFetch:
			r, ok := s.reqs.GetAct(a)
			if !ok {
				return
			}
			s.cur = r
			if r.local {
				// A local access busies its own processor for the service
				// (the serial formulation's ctHoldLMem accounting); remote
				// service busies only the bank, never the processor stat.
				r.ns.busy.Add(a.Now(), 1)
			}
			s.state = msServed
			a.Wait(s.p.MemCycles)
			return
		case msServed:
			r := s.cur
			s.cur = nil
			s.state = msFetch
			if r.local {
				r.ns.busy.Add(a.Now(), -1)
				r.sig.Trigger() // same shard: the reply is immediate
			} else {
				a.Kernel().Send(r.part, s.p.latency(s.i, r.origin), r.wake, nil)
			}
		}
	}
}

// parCtrlThread is the blocking control thread of the partitioned
// formulation: the serial ctrlThread with its memory-bank Acquires
// replaced by request/reply against the node servers. The per-thread
// workload stream and its draw order are identical to the serial thread's.
type parCtrlThread struct {
	p      *Params
	st     rng.Stream
	ns     *nodeStats
	i      int
	cpu    *sim.Resource
	accept []func(any) // per-node request enqueuers, indexed by node
	tab    []int       // node -> shard
	req    memReq

	state  int
	nops   int
	remote bool
}

// parCtrlThread states.
const (
	pcSegment   = iota // draw the next segment, acquire the processor
	pcHoldCPU          // processor granted: run the useful ops
	pcUseful           // useful-ops wait finished: perform the access
	pcReplied          // remote reply arrived: transaction complete
	pcLocalDone        // local reply arrived: access complete
)

// Step runs the thread until it must wait; it loops forever (the horizon
// kill ends it).
func (t *parCtrlThread) Step(a *sim.ActCtx) {
	p, ns := t.p, t.ns
	for {
		switch t.state {
		case pcSegment:
			t.nops, t.remote = segment(&t.st, *p)
			t.state = pcHoldCPU
			if !t.cpu.Acquire1Act(a) {
				return
			}
		case pcHoldCPU:
			if t.nops > 0 {
				ns.busy.Add(a.Now(), 1)
				t.state = pcUseful
				a.Wait(float64(t.nops))
				return
			}
			t.state = pcUseful
		case pcUseful:
			if t.nops > 0 {
				ns.busy.Add(a.Now(), -1)
				ns.ops += int64(t.nops)
			}
			if t.remote {
				// Release the processor and idle for the whole round trip:
				// request out, FIFO service at the destination bank, reply
				// back — the paper's third processor state, as messages.
				t.cpu.Release(1)
				dst := p.pickDest(&t.st, t.i)
				t.req.local = false
				t.req.sig.Reset()
				t.state = pcReplied
				a.Kernel().Send(t.tab[dst], p.latency(t.i, dst), t.accept[dst], &t.req)
			} else {
				// Local access: hold the processor, queue at the own bank.
				t.req.local = true
				t.req.sig.Reset()
				t.state = pcLocalDone
				t.accept[t.i](&t.req)
			}
			if !t.req.sig.WaitAct(a) {
				return
			}
		case pcReplied:
			ns.rem++
			ns.ops++ // the access itself is a completed operation
			t.state = pcSegment
		case pcLocalDone:
			t.cpu.Release(1)
			ns.ops++
			t.state = pcSegment
		}
	}
}

// runControlPar simulates the blocking message-passing system partitioned:
// per-node memory servers plus the request/reply threads above.
func runControlPar(p Params, rs *runState) (SystemResult, error) {
	parts, look, err := p.partition()
	if err != nil {
		return SystemResult{}, err
	}
	pk := sim.NewParKernel(parts, p.RunParallel, look)
	tab := partitionTable(p.Nodes, parts)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	cpus := make([]*sim.Resource, p.Nodes)
	accept := make([]func(any), p.Nodes)
	servers := make([]memServer, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		ki := pk.Part(tab[i])
		cpus[i] = sim.NewResource(ki, rs.names.cpu[i], 1, sim.FIFO)
		reqs := sim.NewStore[*memReq](ki, rs.names.mem[i])
		accept[i] = func(x any) { reqs.TryPut(x.(*memReq)) }
		servers[i] = memServer{p: &p, i: i, reqs: reqs}
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	for i := range servers {
		pk.Part(tab[i]).SpawnActivity(rs.names.mem[i]+"-srv", &servers[i])
	}
	threads := p.ControlThreads
	if threads <= 0 {
		threads = 1
	}
	ths := make([]parCtrlThread, p.Nodes*threads)
	ctrlNames := rs.ctrlNames(p.Nodes, threads)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < threads; j++ {
			name := ctrlNames[j*p.Nodes+i]
			th := &ths[j*p.Nodes+i]
			ki := pk.Part(tab[i])
			*th = parCtrlThread{p: &p, i: i, ns: &nodes[i], cpu: cpus[i], accept: accept, tab: tab}
			th.st.Reseed(p.Seed, 1000+uint64(i)+uint64(j)*uint64(p.Nodes))
			sig := sim.NewSignal(ki, name+".reply")
			th.req = memReq{origin: i, part: tab[i], ns: &nodes[i], sig: sig}
			th.req.wake = func(any) { sig.Trigger() }
			ki.SpawnActivity(name, th)
		}
	}
	if err := pk.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, nil, p.Horizon), nil
}
