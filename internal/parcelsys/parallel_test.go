package parcelsys

// The partitioned formulation's contract: Params.RunParallel >= 1 gives
// results that are exactly identical — every op count, idle fraction, and
// queue mean, bit for bit — for every worker count, because the
// formulation's serial reference trajectory does not depend on the
// partition assignment and sim.ParKernel reproduces that reference
// byte-identically for every shard count. RunParallel = 1 is the
// single-shard oracle the others are compared against.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// parParams is a small but non-trivial point: multiple threads per
// control node, hotspot traffic, enough horizon for thousands of
// transactions.
func parParams() Params {
	p := DefaultParams()
	p.Nodes = 9
	p.Parallelism = 3
	p.Latency = 50
	p.Horizon = 20000
	p.Seed = 5
	p.ControlThreads = 2
	p.Hotspot = 0.2
	return p
}

func TestRunParallelInvariance(t *testing.T) {
	p := parParams()
	p.RunParallel = 1
	want, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if want.Control.Ops == 0 || want.Test.Ops == 0 || want.Ratio == 0 {
		t.Fatalf("degenerate oracle run: %+v", want)
	}
	// 16 > Nodes exercises the worker clamp: still 9 shards.
	for _, rp := range []int{2, 4, 9, 16} {
		q := p
		q.RunParallel = rp
		got, err := Run(q)
		if err != nil {
			t.Fatalf("RunParallel=%d: %v", rp, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("RunParallel=%d diverged:\n got  %+v\n want %+v", rp, got, want)
		}
	}
}

// TestRunParallelAgreesWithSerial: the partitioned formulation is a
// different formulation (per-parcel routing streams, message-based memory
// banks), so it cannot be bit-identical to RunParallel = 0 — but it
// simulates the same system, so the headline statistics must agree
// closely.
func TestRunParallelAgreesWithSerial(t *testing.T) {
	p := parParams()
	serial, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.RunParallel = 1
	par, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name     string
		got, ref float64
		tol      float64
	}{
		{"ratio", par.Ratio, serial.Ratio, 0.10},
		{"control ops", float64(par.Control.Ops), float64(serial.Control.Ops), 0.10},
		{"test ops", float64(par.Test.Ops), float64(serial.Test.Ops), 0.10},
		{"control idle", par.Control.IdleFrac, serial.Control.IdleFrac, 0.15},
		{"test idle", par.Test.IdleFrac, serial.Test.IdleFrac, 0.25},
	}
	for _, c := range checks {
		if e := stats.RelErr(c.got, c.ref); e > c.tol {
			t.Errorf("%s: partitioned %g vs serial %g (rel err %.3f > %.2f)",
				c.name, c.got, c.ref, e, c.tol)
		}
	}
}

// TestRunParallelNeedsPositiveLatency: partitioning is conservative PDES,
// so a zero minimum latency (zero lookahead) must be rejected — except
// when only one shard results and no lookahead is needed.
func TestRunParallelNeedsPositiveLatency(t *testing.T) {
	p := parParams()
	p.Latency = 0
	p.RunParallel = 2
	if _, err := Run(p); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("zero latency with 2 shards: err = %v, want lookahead error", err)
	}
	p.RunParallel = 1
	if _, err := Run(p); err != nil {
		t.Fatalf("zero latency on a single shard should run: %v", err)
	}
}

// TestRunParallelReplicate: the replication driver reuses its slabs
// across partitioned runs too.
func TestRunParallelReplicate(t *testing.T) {
	p := parParams()
	p.Horizon = 5000
	p.RunParallel = 3
	rr, err := Replicate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Ratio.N != 3 || rr.Ratio.Mean <= 0 {
		t.Fatalf("replicated ratio %+v", rr.Ratio)
	}
}
