// Package parcelsys implements the paper's second study (§4): the
// statistical queuing comparison of a conventional blocking message-passing
// system (the control) against a parcel-driven split-transaction system
// (the test) under a flat system-wide latency.
//
// Both systems run the same workload for the same simulated time and the
// total work completed is compared (Fig. 11); per-node idle time is the
// second dependent variable (Fig. 12).
//
// Workload model. Computation is carried by logical threads. A thread
// executes runs of useful 1-cycle operations punctuated by memory accesses
// (fraction MixMem of operations); each access is remote with probability
// RemoteFrac.
//
//   - Control system: one thread lives permanently on each processor. A
//     local access busies the node's memory for MemCycles. A remote access
//     sends a request (latency L), is serviced by the destination node's
//     memory, and returns (latency L); the processor *waits idle* the whole
//     round trip — the paper's third processor state.
//
//   - Test system: Parallelism threads per processor circulate as parcels.
//     A remote access moves the computation to the data: the node pays the
//     parcel-creation overhead, ships the continuation (one-way latency L),
//     and immediately services its next pending parcel; it idles only when
//     no parcels are queued ("split transaction execution").
package parcelsys

import (
	"fmt"
	"strconv"

	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Params configures one paired (control, test) experiment.
type Params struct {
	// Nodes is the number of processors in each system (Fig. 12 sweeps
	// 1…256).
	Nodes int
	// Parallelism is the number of parcels per processor in the test
	// system — the paper's "degree of parallelism exposed by the
	// split-transaction model" (Fig. 11's six major experiments).
	Parallelism int
	// RemoteFrac is the fraction of memory accesses that are remote.
	RemoteFrac float64
	// Latency is the flat one-way system latency in cycles.
	Latency float64
	// MixMem is the fraction of operations that access memory (the
	// instruction-mix parameter shared by both systems; Table 1's 0.30).
	MixMem float64
	// MemCycles is the local memory access time in cycles.
	MemCycles float64
	// Overhead prices the parcel mechanism (creation/assimilation); the
	// control system pays none of it.
	Overhead parcel.CostModel
	// Horizon is the simulated time both systems run for.
	Horizon float64
	// Seed drives all stochastic draws.
	Seed uint64
	// Net, when non-nil, supplies per-pair one-way latencies (a hop-count
	// topology from internal/network) instead of the paper's flat Latency.
	// Net.Nodes() must equal Nodes.
	Net network.Network
	// Hotspot skews remote destinations: with probability Hotspot a remote
	// access targets node 0 regardless of source; the remainder are
	// uniform. 0 (the paper's assumption) means uniform traffic.
	Hotspot float64
	// ControlThreads gives the control system multiple blocking threads
	// per processor (conventional multithreaded message passing). The
	// paper's control is single-threaded; raising this isolates the
	// parcels' remaining advantage (one-way migration vs round trips and
	// hardware-assisted handling). 0 means 1.
	ControlThreads int
}

// DefaultParams returns the parameter point used by the Fig. 11/12
// reproductions: PIM-like nodes (MixMem 0.3, 10-cycle local memory),
// hardware-assisted parcel overheads.
func DefaultParams() Params {
	return Params{
		Nodes:       16,
		Parallelism: 4,
		RemoteFrac:  0.3,
		Latency:     200,
		MixMem:      0.3,
		MemCycles:   10,
		Overhead:    parcel.HardwareAssisted(),
		Horizon:     200000,
		Seed:        1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("parcelsys: Nodes = %d", p.Nodes)
	case p.Parallelism <= 0:
		return fmt.Errorf("parcelsys: Parallelism = %d", p.Parallelism)
	case p.RemoteFrac < 0 || p.RemoteFrac > 1:
		return fmt.Errorf("parcelsys: RemoteFrac = %g", p.RemoteFrac)
	case p.Latency < 0:
		return fmt.Errorf("parcelsys: Latency = %g", p.Latency)
	case p.MixMem <= 0 || p.MixMem > 1:
		return fmt.Errorf("parcelsys: MixMem = %g (the workload needs memory accesses)", p.MixMem)
	case p.MemCycles <= 0:
		return fmt.Errorf("parcelsys: MemCycles = %g", p.MemCycles)
	case p.Horizon <= 0:
		return fmt.Errorf("parcelsys: Horizon = %g", p.Horizon)
	}
	if p.Net != nil && p.Net.Nodes() != p.Nodes {
		return fmt.Errorf("parcelsys: network has %d nodes, system has %d", p.Net.Nodes(), p.Nodes)
	}
	if p.Hotspot < 0 || p.Hotspot > 1 {
		return fmt.Errorf("parcelsys: Hotspot = %g", p.Hotspot)
	}
	if p.ControlThreads < 0 {
		return fmt.Errorf("parcelsys: ControlThreads = %d", p.ControlThreads)
	}
	return p.Overhead.Validate()
}

// pickDest selects the destination of a remote access from src.
func (p Params) pickDest(st *rng.Stream, src int) int {
	if p.Hotspot > 0 && st.Bernoulli(p.Hotspot) {
		if src != 0 {
			return 0
		}
		// The hotspot node's own remote traffic falls back to uniform.
	}
	return otherNode(st, src, p.Nodes)
}

// latency returns the one-way latency from src to dst: the flat Latency by
// default, or the topology's value when Net is set.
func (p Params) latency(src, dst int) float64 {
	if p.Net != nil {
		return p.Net.Latency(src, dst)
	}
	return p.Latency
}

// SystemResult reports one system's run.
type SystemResult struct {
	// Ops is the total work completed: useful operations plus memory
	// accesses, summed over nodes.
	Ops int64
	// RemoteAccesses counts completed remote transactions.
	RemoteAccesses int64
	// IdleFrac is the mean fraction of processor time spent idle
	// (waiting for replies in the control, empty parcel queue in the
	// test).
	IdleFrac float64
	// PerNodeIdle is the idle fraction of each node.
	PerNodeIdle []float64
	// QueueMean is the time-averaged parcel-queue length per node (test
	// system only; zero for the control).
	QueueMean float64
}

// Result pairs the two systems.
type Result struct {
	Control SystemResult
	Test    SystemResult
	// Ratio is Test.Ops / Control.Ops — Fig. 11's vertical axis.
	Ratio float64
}

// Run executes the paired experiment.
func Run(p Params) (Result, error) {
	return runWith(p, &runState{})
}

// runState holds the per-run slabs — parcel structs with their embedded
// RNG streams, per-node statistics, control-thread streams, and node
// names — that Replicate reuses across replications instead of
// reallocating per run. All state is fully re-initialized by each run.
type runState struct {
	parcels []workParcel
	nodes   []nodeStats
	threads []rng.Stream
	names   nodeNames
	// ctrl caches the control-thread process names, indexed j*nodes+i;
	// rebuilt only when the (nodes, threads) geometry changes.
	ctrl      []string
	ctrlNodes int
}

// nodeNames caches the per-node resource/process names, which depend only
// on the node count.
type nodeNames struct {
	mem, cpu, proc, queue, test []string
}

// grow ensures the name tables cover n nodes.
func (nn *nodeNames) grow(n int) {
	for i := len(nn.mem); i < n; i++ {
		num := strconv.Itoa(i)
		nn.mem = append(nn.mem, "mem"+num)
		nn.cpu = append(nn.cpu, "cpu"+num)
		nn.proc = append(nn.proc, "ctrl-"+num)
		nn.queue = append(nn.queue, "pq"+num)
		nn.test = append(nn.test, "test-"+num)
	}
}

// ctrlNames returns the control-thread name table for the given geometry.
func (rs *runState) ctrlNames(nodes, threads int) []string {
	if len(rs.ctrl) == nodes*threads && rs.ctrlNodes == nodes {
		return rs.ctrl
	}
	rs.names.grow(nodes)
	rs.ctrl = make([]string, nodes*threads)
	for i := 0; i < nodes; i++ {
		rs.ctrl[i] = rs.names.proc[i]
		for j := 1; j < threads; j++ {
			rs.ctrl[j*nodes+i] = rs.names.proc[i] + "." + strconv.Itoa(j)
		}
	}
	rs.ctrlNodes = nodes
	return rs.ctrl
}

// slab returns s resized to n elements, reusing capacity; the caller
// re-initializes every element.
func slab[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// runWith executes the paired experiment against reusable slabs.
func runWith(p Params, st *runState) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	ctrl, err := runControl(p, st)
	if err != nil {
		return Result{}, err
	}
	test, err := runTest(p, st)
	if err != nil {
		return Result{}, err
	}
	r := Result{Control: ctrl, Test: test}
	if ctrl.Ops > 0 {
		r.Ratio = float64(test.Ops) / float64(ctrl.Ops)
	}
	return r, nil
}

// nodeStats accumulates per-node busy time and op counts.
type nodeStats struct {
	busy stats.TimeWeighted
	ops  int64
	rem  int64
}

// segment draws one execution segment: the number of useful ops before the
// next memory access (geometric in MixMem). Returns (usefulOps, isRemote).
func segment(st *rng.Stream, p Params) (int, bool) {
	n := st.Geometric(p.MixMem)
	remote := p.Nodes > 1 && st.Bernoulli(p.RemoteFrac)
	return n, remote
}

// busyWait marks the node busy for d cycles.
func busyWait(c *sim.Context, ns *nodeStats, d float64) {
	ns.busy.Add(c.Now(), 1)
	c.Wait(d)
	ns.busy.Add(c.Now(), -1)
}

// runControl simulates the blocking message-passing system.
func runControl(p Params, rs *runState) (SystemResult, error) {
	k := sim.NewKernel()
	mems := make([]*sim.Resource, p.Nodes)
	cpus := make([]*sim.Resource, p.Nodes)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	for i := range mems {
		mems[i] = sim.NewResource(k, rs.names.mem[i], 1, sim.FIFO)
		cpus[i] = sim.NewResource(k, rs.names.cpu[i], 1, sim.FIFO)
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	threads := p.ControlThreads
	if threads <= 0 {
		threads = 1
	}
	rs.threads = slab(rs.threads, p.Nodes*threads)
	ctrlNames := rs.ctrlNames(p.Nodes, threads)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < threads; j++ {
			i := i
			st := &rs.threads[j*p.Nodes+i]
			st.Reseed(p.Seed, 1000+uint64(i)+uint64(j)*uint64(p.Nodes))
			k.Spawn(ctrlNames[j*p.Nodes+i], func(c *sim.Context) {
				ns := &nodes[i]
				for {
					nops, remote := segment(st, p)
					cpus[i].Acquire(c)
					if nops > 0 {
						busyWait(c, ns, float64(nops))
						ns.ops += int64(nops)
					}
					if remote {
						// Blocking remote transaction: request out, service
						// at the destination memory, reply back. The thread
						// releases the processor and waits idle the whole
						// round trip; with ControlThreads > 1 a sibling
						// thread may run meanwhile.
						cpus[i].Release(1)
						dst := p.pickDest(st, i)
						c.Wait(p.latency(i, dst))
						mems[dst].Acquire(c)
						c.Wait(p.MemCycles)
						mems[dst].Release(1)
						c.Wait(p.latency(dst, i))
						ns.rem++
					} else {
						// Local access busies processor and its memory bank.
						mems[i].Acquire(c)
						busyWait(c, ns, p.MemCycles)
						mems[i].Release(1)
						cpus[i].Release(1)
					}
					ns.ops++ // the access itself is a completed operation
				}
			})
		}
	}
	if err := k.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, nil, p.Horizon), nil
}

// workParcel is a migrating computation continuation in the test system.
// The RNG stream is embedded by value so a run's parcels live in one
// reusable slab instead of two allocations per parcel.
type workParcel struct {
	st rng.Stream
	// pendingAccess marks that the parcel migrated because of a remote
	// memory access: the destination performs that access (now local)
	// right after assimilation.
	pendingAccess bool
}

// runTest simulates the split-transaction parcel system.
func runTest(p Params, rs *runState) (SystemResult, error) {
	k := sim.NewKernel()
	queues := make([]*sim.Store[*workParcel], p.Nodes)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	for i := range queues {
		queues[i] = sim.NewStore[*workParcel](k, rs.names.queue[i])
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	var route rng.Stream
	route.Reseed(p.Seed, 500)

	// Seed Parallelism parcels at every node: the paper's "average number
	// of parcels per processor".
	rs.parcels = slab(rs.parcels, p.Nodes*p.Parallelism)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < p.Parallelism; j++ {
			wp := &rs.parcels[i*p.Parallelism+j]
			wp.pendingAccess = false
			wp.st.Reseed(p.Seed, 2000+uint64(i)*64+uint64(j))
			queues[i].TryPut(wp)
		}
	}

	for i := 0; i < p.Nodes; i++ {
		i := i
		k.Spawn(rs.names.test[i], func(c *sim.Context) {
			ns := &nodes[i]
			for {
				// Idle while the queue is empty (the Get blocks).
				wp := queues[i].Get(c)
				// Assimilation overhead to instantiate the parcel's action.
				if p.Overhead.AssimilateCycles > 0 {
					busyWait(c, ns, p.Overhead.AssimilateCycles)
				}
				// The access that caused the migration executes here, where
				// the data lives (computation moved to the data).
				if wp.pendingAccess {
					wp.pendingAccess = false
					busyWait(c, ns, p.MemCycles)
					ns.ops++
				}
				// Execute the thread locally until it needs remote data.
				for {
					nops, remote := segment(&wp.st, p)
					if nops > 0 {
						busyWait(c, ns, float64(nops))
						ns.ops += int64(nops)
					}
					if !remote {
						busyWait(c, ns, p.MemCycles)
						ns.ops++
						continue
					}
					// Remote access: move the computation to the data.
					if p.Overhead.CreateCycles > 0 {
						busyWait(c, ns, p.Overhead.CreateCycles)
					}
					ns.rem++
					wp.pendingAccess = true
					dst := p.pickDest(&route, i)
					c.Kernel().Schedule(p.latency(i, dst), func() {
						queues[dst].TryPut(wp)
					})
					break // service the next pending parcel
				}
			}
		})
	}
	if err := k.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, queues, p.Horizon), nil
}

// otherNode picks a uniform destination distinct from self when possible.
func otherNode(st *rng.Stream, self, n int) int {
	if n == 1 {
		return 0
	}
	d := st.Intn(n - 1)
	if d >= self {
		d++
	}
	return d
}

// gather folds per-node statistics into a SystemResult. It copies
// everything it reports, so the caller may reuse the nodes slab
// immediately.
func gather(nodes []nodeStats, queues []*sim.Store[*workParcel], horizon float64) SystemResult {
	var r SystemResult
	r.PerNodeIdle = make([]float64, len(nodes))
	var idleSum, queueSum float64
	for i := range nodes {
		ns := &nodes[i]
		r.Ops += ns.ops
		r.RemoteAccesses += ns.rem
		busyFrac := ns.busy.Mean(horizon)
		idle := 1 - busyFrac
		if idle < 0 {
			idle = 0
		}
		r.PerNodeIdle[i] = idle
		idleSum += idle
	}
	r.IdleFrac = idleSum / float64(len(nodes))
	if queues != nil {
		for _, q := range queues {
			queueSum += q.Len.Mean(horizon)
		}
		r.QueueMean = queueSum / float64(len(queues))
	}
	return r
}

// Replicated reports a metric's mean and 95% confidence half-width over
// independent replications.
type Replicated struct {
	Mean float64
	CI95 float64
	N    int
}

// ReplicatedResult aggregates independent replications of Run.
type ReplicatedResult struct {
	Ratio    Replicated
	CtrlIdle Replicated
	TestIdle Replicated
}

// Replicate runs the paired experiment `reps` times with independent
// seeds derived from p.Seed and returns confidence intervals — the
// standard independent-replications method for steady-state DES output.
func Replicate(p Params, reps int) (ReplicatedResult, error) {
	if reps < 2 {
		return ReplicatedResult{}, fmt.Errorf("parcelsys: Replicate needs at least 2 replications")
	}
	var ratio, ctrl, test stats.Sample
	seeds := rng.New(p.Seed)
	// One slab of parcels, node stats, and RNG streams serves every
	// replication: each run reseeds the streams in place.
	var rs runState
	for i := 0; i < reps; i++ {
		q := p
		q.Seed = seeds.Uint64()
		r, err := runWith(q, &rs)
		if err != nil {
			return ReplicatedResult{}, err
		}
		ratio.Add(r.Ratio)
		ctrl.Add(r.Control.IdleFrac)
		test.Add(r.Test.IdleFrac)
	}
	mk := func(s *stats.Sample) Replicated {
		return Replicated{Mean: s.Mean(), CI95: s.CI(0.95), N: int(s.N())}
	}
	return ReplicatedResult{Ratio: mk(&ratio), CtrlIdle: mk(&ctrl), TestIdle: mk(&test)}, nil
}

// ControlIdleFracAnalytic returns the closed-form idle fraction of one
// control processor ignoring destination-memory queueing: per remote
// transaction the processor idles 2L while a cycle of work costs
// E[segment busy] = E[ops] + MemCycles.
func ControlIdleFracAnalytic(p Params) float64 {
	if p.Nodes == 1 || p.RemoteFrac == 0 {
		return 0
	}
	eOps := (1 - p.MixMem) / p.MixMem // mean useful ops per access
	busyPerAccess := eOps + p.MemCycles
	idlePerAccess := p.RemoteFrac * 2 * p.Latency
	return idlePerAccess / (busyPerAccess + idlePerAccess)
}

// TestSaturationRatioAnalytic returns the first-order prediction of
// Fig. 11's ratio: the test system saturates at full utilization once
// enough parallelism covers the in-flight time, so the ratio approaches
// 1/(1 − controlIdle), degraded by the parcel overhead share.
func TestSaturationRatioAnalytic(p Params) float64 {
	eOps := (1 - p.MixMem) / p.MixMem
	busyPerAccess := eOps + p.MemCycles
	ctrlCycle := busyPerAccess + p.RemoteFrac*2*p.Latency
	// Test busy per access includes overhead on the remote fraction; a
	// remote access costs create+assimilate but saves the memory visit at
	// the source (it happens at the destination, which is also counted as
	// busy there — system-wide the work moves, not disappears).
	testBusy := busyPerAccess + p.RemoteFrac*(p.Overhead.CreateCycles+p.Overhead.AssimilateCycles)
	// In-flight (not runnable) time per access in the test system.
	flight := p.RemoteFrac * p.Latency
	util := float64(p.Parallelism) * testBusy / (testBusy + flight)
	if util > 1 {
		util = 1
	}
	// Ops per cycle per node: control completes one access-cycle per
	// ctrlCycle; test completes util/testBusy access-cycles per cycle.
	ratio := (util / testBusy) * ctrlCycle
	return ratio
}
