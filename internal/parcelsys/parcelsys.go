// Package parcelsys implements the paper's second study (§4): the
// statistical queuing comparison of a conventional blocking message-passing
// system (the control) against a parcel-driven split-transaction system
// (the test) under a flat system-wide latency.
//
// Both systems run the same workload for the same simulated time and the
// total work completed is compared (Fig. 11); per-node idle time is the
// second dependent variable (Fig. 12).
//
// Workload model. Computation is carried by logical threads. A thread
// executes runs of useful 1-cycle operations punctuated by memory accesses
// (fraction MixMem of operations); each access is remote with probability
// RemoteFrac.
//
//   - Control system: one thread lives permanently on each processor. A
//     local access busies the node's memory for MemCycles. A remote access
//     sends a request (latency L), is serviced by the destination node's
//     memory, and returns (latency L); the processor *waits idle* the whole
//     round trip — the paper's third processor state.
//
//   - Test system: Parallelism threads per processor circulate as parcels.
//     A remote access moves the computation to the data: the node pays the
//     parcel-creation overhead, ships the continuation (one-way latency L),
//     and immediately services its next pending parcel; it idles only when
//     no parcels are queued ("split transaction execution").
package parcelsys

import (
	"fmt"
	"strconv"

	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Params configures one paired (control, test) experiment.
type Params struct {
	// Nodes is the number of processors in each system (Fig. 12 sweeps
	// 1…256).
	Nodes int
	// Parallelism is the number of parcels per processor in the test
	// system — the paper's "degree of parallelism exposed by the
	// split-transaction model" (Fig. 11's six major experiments).
	Parallelism int
	// RemoteFrac is the fraction of memory accesses that are remote.
	RemoteFrac float64
	// Latency is the flat one-way system latency in cycles.
	Latency float64
	// MixMem is the fraction of operations that access memory (the
	// instruction-mix parameter shared by both systems; Table 1's 0.30).
	MixMem float64
	// MemCycles is the local memory access time in cycles.
	MemCycles float64
	// Overhead prices the parcel mechanism (creation/assimilation); the
	// control system pays none of it.
	Overhead parcel.CostModel
	// Horizon is the simulated time both systems run for.
	Horizon float64
	// Seed drives all stochastic draws.
	Seed uint64
	// Net, when non-nil, supplies per-pair one-way latencies (a hop-count
	// topology from internal/network) instead of the paper's flat Latency.
	// Net.Nodes() must equal Nodes.
	Net network.Network
	// Hotspot skews remote destinations: with probability Hotspot a remote
	// access targets node 0 regardless of source; the remainder are
	// uniform. 0 (the paper's assumption) means uniform traffic.
	Hotspot float64
	// ControlThreads gives the control system multiple blocking threads
	// per processor (conventional multithreaded message passing). The
	// paper's control is single-threaded; raising this isolates the
	// parcels' remaining advantage (one-way migration vs round trips and
	// hardware-assisted handling). 0 means 1.
	ControlThreads int
	// RunParallel selects the partitioned formulation and its worker
	// count: 0 runs the original serial formulation (byte-identical to
	// previous releases), k >= 1 runs both systems partitioned over
	// min(k, Nodes) shard kernels driven by k workers (sim.ParKernel).
	// Results are identical for every k >= 1 — the formulation routes
	// parcels with per-parcel streams and serves memory accesses through
	// request/reply node servers, so its trajectory does not depend on
	// the partition assignment — but differ in their exact draws (not in
	// expectation) from the serial formulation's. Partitioning requires a
	// positive minimum one-way latency (it is the conservative lookahead).
	RunParallel int
}

// DefaultParams returns the parameter point used by the Fig. 11/12
// reproductions: PIM-like nodes (MixMem 0.3, 10-cycle local memory),
// hardware-assisted parcel overheads.
func DefaultParams() Params {
	return Params{
		Nodes:       16,
		Parallelism: 4,
		RemoteFrac:  0.3,
		Latency:     200,
		MixMem:      0.3,
		MemCycles:   10,
		Overhead:    parcel.HardwareAssisted(),
		Horizon:     200000,
		Seed:        1,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.Nodes <= 0:
		return fmt.Errorf("parcelsys: Nodes = %d", p.Nodes)
	case p.Parallelism <= 0:
		return fmt.Errorf("parcelsys: Parallelism = %d", p.Parallelism)
	case p.RemoteFrac < 0 || p.RemoteFrac > 1:
		return fmt.Errorf("parcelsys: RemoteFrac = %g", p.RemoteFrac)
	case p.Latency < 0:
		return fmt.Errorf("parcelsys: Latency = %g", p.Latency)
	case p.MixMem <= 0 || p.MixMem > 1:
		return fmt.Errorf("parcelsys: MixMem = %g (the workload needs memory accesses)", p.MixMem)
	case p.MemCycles <= 0:
		return fmt.Errorf("parcelsys: MemCycles = %g", p.MemCycles)
	case p.Horizon <= 0:
		return fmt.Errorf("parcelsys: Horizon = %g", p.Horizon)
	}
	if p.Net != nil && p.Net.Nodes() != p.Nodes {
		return fmt.Errorf("parcelsys: network has %d nodes, system has %d", p.Net.Nodes(), p.Nodes)
	}
	if p.Hotspot < 0 || p.Hotspot > 1 {
		return fmt.Errorf("parcelsys: Hotspot = %g", p.Hotspot)
	}
	if p.ControlThreads < 0 {
		return fmt.Errorf("parcelsys: ControlThreads = %d", p.ControlThreads)
	}
	if p.RunParallel < 0 {
		return fmt.Errorf("parcelsys: RunParallel = %d", p.RunParallel)
	}
	return p.Overhead.Validate()
}

// pickDest selects the destination of a remote access from src.
func (p Params) pickDest(st *rng.Stream, src int) int {
	if p.Hotspot > 0 && st.Bernoulli(p.Hotspot) {
		if src != 0 {
			return 0
		}
		// The hotspot node's own remote traffic falls back to uniform.
	}
	return otherNode(st, src, p.Nodes)
}

// latency returns the one-way latency from src to dst: the flat Latency by
// default, or the topology's value when Net is set.
func (p Params) latency(src, dst int) float64 {
	if p.Net != nil {
		return p.Net.Latency(src, dst)
	}
	return p.Latency
}

// SystemResult reports one system's run.
type SystemResult struct {
	// Ops is the total work completed: useful operations plus memory
	// accesses, summed over nodes.
	Ops int64
	// RemoteAccesses counts completed remote transactions.
	RemoteAccesses int64
	// IdleFrac is the mean fraction of processor time spent idle
	// (waiting for replies in the control, empty parcel queue in the
	// test).
	IdleFrac float64
	// PerNodeIdle is the idle fraction of each node.
	PerNodeIdle []float64
	// QueueMean is the time-averaged parcel-queue length per node (test
	// system only; zero for the control).
	QueueMean float64
}

// Result pairs the two systems.
type Result struct {
	Control SystemResult
	Test    SystemResult
	// Ratio is Test.Ops / Control.Ops — Fig. 11's vertical axis.
	Ratio float64
}

// Run executes the paired experiment.
func Run(p Params) (Result, error) {
	return runWith(p, &runState{})
}

// runState holds the per-run slabs — parcel structs with their embedded
// RNG streams, per-node statistics, control-thread machines, test-node
// machines, and node names — that Replicate reuses across replications
// instead of reallocating per run. All state is fully re-initialized by
// each run.
type runState struct {
	parcels   []workParcel
	nodes     []nodeStats
	threads   []ctrlThread
	testNodes []testNode
	names     nodeNames
	// ctrl caches the control-thread process names, indexed j*nodes+i;
	// rebuilt only when the (nodes, threads) geometry changes.
	ctrl      []string
	ctrlNodes int
}

// nodeNames caches the per-node resource/process names, which depend only
// on the node count.
type nodeNames struct {
	mem, cpu, proc, queue, test []string
}

// grow ensures the name tables cover n nodes.
func (nn *nodeNames) grow(n int) {
	for i := len(nn.mem); i < n; i++ {
		num := strconv.Itoa(i)
		nn.mem = append(nn.mem, "mem"+num)
		nn.cpu = append(nn.cpu, "cpu"+num)
		nn.proc = append(nn.proc, "ctrl-"+num)
		nn.queue = append(nn.queue, "pq"+num)
		nn.test = append(nn.test, "test-"+num)
	}
}

// ctrlNames returns the control-thread name table for the given geometry.
func (rs *runState) ctrlNames(nodes, threads int) []string {
	if len(rs.ctrl) == nodes*threads && rs.ctrlNodes == nodes {
		return rs.ctrl
	}
	rs.names.grow(nodes)
	rs.ctrl = make([]string, nodes*threads)
	for i := 0; i < nodes; i++ {
		rs.ctrl[i] = rs.names.proc[i]
		for j := 1; j < threads; j++ {
			rs.ctrl[j*nodes+i] = rs.names.proc[i] + "." + strconv.Itoa(j)
		}
	}
	rs.ctrlNodes = nodes
	return rs.ctrl
}

// slab returns s resized to n elements, reusing capacity; the caller
// re-initializes every element.
func slab[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// runWith executes the paired experiment against reusable slabs.
func runWith(p Params, st *runState) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	runC, runT := runControl, runTest
	if p.RunParallel >= 1 {
		runC, runT = runControlPar, runTestPar
	}
	ctrl, err := runC(p, st)
	if err != nil {
		return Result{}, err
	}
	test, err := runT(p, st)
	if err != nil {
		return Result{}, err
	}
	r := Result{Control: ctrl, Test: test}
	if ctrl.Ops > 0 {
		r.Ratio = float64(test.Ops) / float64(ctrl.Ops)
	}
	return r, nil
}

// nodeStats accumulates per-node busy time and op counts.
type nodeStats struct {
	busy stats.TimeWeighted
	ops  int64
	rem  int64
}

// segment draws one execution segment: the number of useful ops before the
// next memory access (geometric in MixMem). Returns (usefulOps, isRemote).
func segment(st *rng.Stream, p Params) (int, bool) {
	n := st.Geometric(p.MixMem)
	remote := p.Nodes > 1 && st.Bernoulli(p.RemoteFrac)
	return n, remote
}

// runControl simulates the blocking message-passing system. Each thread
// is a run-to-completion activity (see ctrlThread): the per-switch cost of
// the N-way interleaving is a heap pop, not a goroutine handoff, and the
// event trajectory is identical to the original Proc-based formulation.
func runControl(p Params, rs *runState) (SystemResult, error) {
	k := sim.NewKernel()
	mems := make([]*sim.Resource, p.Nodes)
	cpus := make([]*sim.Resource, p.Nodes)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	for i := range mems {
		mems[i] = sim.NewResource(k, rs.names.mem[i], 1, sim.FIFO)
		cpus[i] = sim.NewResource(k, rs.names.cpu[i], 1, sim.FIFO)
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	threads := p.ControlThreads
	if threads <= 0 {
		threads = 1
	}
	rs.threads = slab(rs.threads, p.Nodes*threads)
	ctrlNames := rs.ctrlNames(p.Nodes, threads)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < threads; j++ {
			th := &rs.threads[j*p.Nodes+i]
			*th = ctrlThread{p: &p, i: i, ns: &nodes[i], cpus: cpus, mems: mems}
			th.st.Reseed(p.Seed, 1000+uint64(i)+uint64(j)*uint64(p.Nodes))
			k.SpawnActivity(ctrlNames[j*p.Nodes+i], th)
		}
	}
	if err := k.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, nil, p.Horizon), nil
}

// ctrlThread is one blocking control thread as an activity state machine.
// One cycle: draw a segment, hold the processor for the useful ops, then
// perform the access — a blocking remote round trip (request out, service
// at the destination memory, reply back; the thread releases the
// processor and waits idle the whole time, the paper's third processor
// state) or a local access busying processor and memory bank.
type ctrlThread struct {
	p    *Params
	st   rng.Stream
	ns   *nodeStats
	i    int
	cpus []*sim.Resource
	mems []*sim.Resource

	state  int
	nops   int
	remote bool
	dst    int
}

// ctrlThread states.
const (
	ctSegment   = iota // draw the next segment, acquire the processor
	ctHoldCPU          // processor granted: run the useful ops
	ctUseful           // useful-ops wait finished
	ctSent             // request latency elapsed: acquire remote memory
	ctHoldRMem         // remote memory granted: service the access
	ctServed           // remote service done: reply latency
	ctReplied          // reply arrived: transaction complete
	ctHoldLMem         // local memory granted: perform the access
	ctLocalDone        // local access finished
)

// Step runs the control thread until it must wait; it loops forever (the
// horizon kill ends it).
func (t *ctrlThread) Step(a *sim.ActCtx) {
	p, ns := t.p, t.ns
	for {
		switch t.state {
		case ctSegment:
			t.nops, t.remote = segment(&t.st, *p)
			t.state = ctHoldCPU
			if !t.cpus[t.i].Acquire1Act(a) {
				return
			}
		case ctHoldCPU:
			if t.nops > 0 {
				ns.busy.Add(a.Now(), 1)
				t.state = ctUseful
				a.Wait(float64(t.nops))
				return
			}
			t.state = ctUseful
		case ctUseful:
			if t.nops > 0 {
				ns.busy.Add(a.Now(), -1)
				ns.ops += int64(t.nops)
			}
			if t.remote {
				t.cpus[t.i].Release(1)
				t.dst = p.pickDest(&t.st, t.i)
				t.state = ctSent
				a.Wait(p.latency(t.i, t.dst))
				return
			}
			t.state = ctHoldLMem
			if !t.mems[t.i].Acquire1Act(a) {
				return
			}
		case ctSent:
			t.state = ctHoldRMem
			if !t.mems[t.dst].Acquire1Act(a) {
				return
			}
		case ctHoldRMem:
			t.state = ctServed
			a.Wait(p.MemCycles)
			return
		case ctServed:
			t.mems[t.dst].Release(1)
			t.state = ctReplied
			a.Wait(p.latency(t.dst, t.i))
			return
		case ctReplied:
			ns.rem++
			ns.ops++ // the access itself is a completed operation
			t.state = ctSegment
		case ctHoldLMem:
			ns.busy.Add(a.Now(), 1)
			t.state = ctLocalDone
			a.Wait(p.MemCycles)
			return
		case ctLocalDone:
			ns.busy.Add(a.Now(), -1)
			t.mems[t.i].Release(1)
			t.cpus[t.i].Release(1)
			ns.ops++
			t.state = ctSegment
		}
	}
}

// workParcel is a migrating computation continuation in the test system.
// The RNG stream is embedded by value so a run's parcels live in one
// reusable slab instead of two allocations per parcel.
type workParcel struct {
	st rng.Stream
	// rt draws the parcel's routing decisions in the partitioned
	// formulation, where a run-wide shared stream would race across
	// shards; the serial formulation leaves it untouched. Keeping it
	// separate from st keeps the per-parcel workload draws identical
	// between the two formulations.
	rt rng.Stream
	// dst is the destination node while the parcel is in flight (the
	// shipping event carries the parcel, not a closure).
	dst int
	// pendingAccess marks that the parcel migrated because of a remote
	// memory access: the destination performs that access (now local)
	// right after assimilation.
	pendingAccess bool
}

// runTest simulates the split-transaction parcel system. Each node is a
// run-to-completion activity (see testNode); an in-flight parcel is one
// ScheduleArg event carrying the parcel itself, so the steady-state run
// schedules no closures at all.
func runTest(p Params, rs *runState) (SystemResult, error) {
	k := sim.NewKernel()
	queues := make([]*sim.Store[*workParcel], p.Nodes)
	rs.names.grow(p.Nodes)
	rs.nodes = slab(rs.nodes, p.Nodes)
	nodes := rs.nodes
	for i := range queues {
		queues[i] = sim.NewStore[*workParcel](k, rs.names.queue[i])
		nodes[i] = nodeStats{}
		nodes[i].busy.Set(0, 0)
	}
	var route rng.Stream
	route.Reseed(p.Seed, 500)

	// Seed Parallelism parcels at every node: the paper's "average number
	// of parcels per processor".
	rs.parcels = slab(rs.parcels, p.Nodes*p.Parallelism)
	for i := 0; i < p.Nodes; i++ {
		for j := 0; j < p.Parallelism; j++ {
			wp := &rs.parcels[i*p.Parallelism+j]
			wp.pendingAccess = false
			wp.st.Reseed(p.Seed, 2000+uint64(i)*64+uint64(j))
			queues[i].TryPut(wp)
		}
	}

	// deliver lands an in-flight parcel at its destination queue.
	deliver := func(x any) {
		wp := x.(*workParcel)
		queues[wp.dst].TryPut(wp)
	}
	rs.testNodes = slab(rs.testNodes, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		n := &rs.testNodes[i]
		*n = testNode{p: &p, i: i, ns: &nodes[i], queue: queues[i], route: &route, deliver: deliver}
		k.SpawnActivity(rs.names.test[i], n)
	}
	if err := k.Run(p.Horizon); err != nil {
		return SystemResult{}, err
	}
	return gather(nodes, queues, p.Horizon), nil
}

// testNode is one split-transaction processor as an activity state
// machine. One parcel service: idle until a parcel is queued, pay the
// assimilation overhead, perform the access that caused the migration
// (the computation moved to the data), then execute the thread locally —
// useful ops and local accesses — until it needs remote data again, at
// which point the continuation ships one-way and the node services its
// next pending parcel.
type testNode struct {
	p       *Params
	i       int
	ns      *nodeStats
	queue   *sim.Store[*workParcel]
	route   *rng.Stream
	deliver func(any)
	// send, when set, ships parcels the partitioned way: destination
	// drawn from the parcel's own routing stream, delivery via a
	// cross-partition Send (see runTestPar). nil = serial formulation.
	send func(*workParcel)

	state int
	wp    *workParcel
	nops  int
	rem   bool
}

// testNode states.
const (
	tnFetch      = iota // take (or wait for) the next pending parcel
	tnAssimDone         // assimilation overhead paid
	tnAccessDone        // migrated access performed
	tnSegment           // draw the next execution segment
	tnUsefulDone        // useful-ops run finished
	tnLocalDone         // local memory access finished
	tnCreateDone        // parcel-creation overhead paid: ship
)

// busyFor marks the node busy for d cycles and parks until they elapse,
// resuming in state next (which starts by marking the node idle again).
func (n *testNode) busyFor(a *sim.ActCtx, d float64, next int) {
	n.ns.busy.Add(a.Now(), 1)
	n.state = next
	a.Wait(d)
}

// Step runs the node until it must wait; it loops forever (the horizon
// kill ends it).
func (n *testNode) Step(a *sim.ActCtx) {
	p, ns := n.p, n.ns
	for {
		switch n.state {
		case tnFetch:
			// Idle while the queue is empty (the registration blocks).
			wp, ok := n.queue.GetAct(a)
			if !ok {
				return
			}
			n.wp = wp
			// Assimilation overhead to instantiate the parcel's action.
			if p.Overhead.AssimilateCycles > 0 {
				n.busyFor(a, p.Overhead.AssimilateCycles, tnAssimDone)
				return
			}
			if n.postAssim(a) {
				return
			}
		case tnAssimDone:
			ns.busy.Add(a.Now(), -1)
			if n.postAssim(a) {
				return
			}
		case tnAccessDone:
			ns.busy.Add(a.Now(), -1)
			ns.ops++
			n.state = tnSegment
		case tnSegment:
			n.nops, n.rem = segment(&n.wp.st, *p)
			if n.nops > 0 {
				n.busyFor(a, float64(n.nops), tnUsefulDone)
				return
			}
			if n.afterUseful(a) {
				return
			}
		case tnUsefulDone:
			ns.busy.Add(a.Now(), -1)
			ns.ops += int64(n.nops)
			if n.afterUseful(a) {
				return
			}
		case tnLocalDone:
			ns.busy.Add(a.Now(), -1)
			ns.ops++
			n.state = tnSegment
		case tnCreateDone:
			ns.busy.Add(a.Now(), -1)
			n.ship(a)
		}
	}
}

// postAssim performs the access that caused the migration, if any — it
// executes here, where the data lives. Reports whether the node parked.
func (n *testNode) postAssim(a *sim.ActCtx) bool {
	if n.wp.pendingAccess {
		n.wp.pendingAccess = false
		n.busyFor(a, n.p.MemCycles, tnAccessDone)
		return true
	}
	n.state = tnSegment
	return false
}

// afterUseful branches on the drawn access: local (busy the memory bank)
// or remote (pay the creation overhead, then ship). Reports whether the
// node parked; a free ship turns straight to the next fetch.
func (n *testNode) afterUseful(a *sim.ActCtx) bool {
	if !n.rem {
		n.busyFor(a, n.p.MemCycles, tnLocalDone)
		return true
	}
	// Remote access: move the computation to the data.
	if n.p.Overhead.CreateCycles > 0 {
		n.busyFor(a, n.p.Overhead.CreateCycles, tnCreateDone)
		return true
	}
	n.ship(a)
	return false
}

// ship sends the current parcel one-way to its destination and turns to
// the next pending parcel.
func (n *testNode) ship(a *sim.ActCtx) {
	n.ns.rem++
	wp := n.wp
	wp.pendingAccess = true
	if n.send != nil {
		wp.dst = n.p.pickDest(&wp.rt, n.i)
		n.send(wp)
	} else {
		wp.dst = n.p.pickDest(n.route, n.i)
		a.Kernel().ScheduleArg(n.p.latency(n.i, wp.dst), n.deliver, wp)
	}
	n.wp = nil
	n.state = tnFetch
}

// otherNode picks a uniform destination distinct from self when possible.
func otherNode(st *rng.Stream, self, n int) int {
	if n == 1 {
		return 0
	}
	d := st.Intn(n - 1)
	if d >= self {
		d++
	}
	return d
}

// gather folds per-node statistics into a SystemResult. It copies
// everything it reports, so the caller may reuse the nodes slab
// immediately.
func gather(nodes []nodeStats, queues []*sim.Store[*workParcel], horizon float64) SystemResult {
	var r SystemResult
	r.PerNodeIdle = make([]float64, len(nodes))
	var idleSum, queueSum float64
	for i := range nodes {
		ns := &nodes[i]
		r.Ops += ns.ops
		r.RemoteAccesses += ns.rem
		busyFrac := ns.busy.Mean(horizon)
		idle := 1 - busyFrac
		if idle < 0 {
			idle = 0
		}
		r.PerNodeIdle[i] = idle
		idleSum += idle
	}
	r.IdleFrac = idleSum / float64(len(nodes))
	if queues != nil {
		for _, q := range queues {
			queueSum += q.Len.Mean(horizon)
		}
		r.QueueMean = queueSum / float64(len(queues))
	}
	return r
}

// Replicated reports a metric's mean and 95% confidence half-width over
// independent replications.
type Replicated struct {
	Mean float64
	CI95 float64
	N    int
}

// ReplicatedResult aggregates independent replications of Run.
type ReplicatedResult struct {
	Ratio    Replicated
	CtrlIdle Replicated
	TestIdle Replicated
}

// Replicate runs the paired experiment `reps` times with independent
// seeds derived from p.Seed and returns confidence intervals — the
// standard independent-replications method for steady-state DES output.
func Replicate(p Params, reps int) (ReplicatedResult, error) {
	if reps < 2 {
		return ReplicatedResult{}, fmt.Errorf("parcelsys: Replicate needs at least 2 replications")
	}
	var ratio, ctrl, test stats.Sample
	seeds := rng.New(p.Seed)
	// One slab of parcels, node stats, and RNG streams serves every
	// replication: each run reseeds the streams in place.
	var rs runState
	for i := 0; i < reps; i++ {
		q := p
		q.Seed = seeds.Uint64()
		r, err := runWith(q, &rs)
		if err != nil {
			return ReplicatedResult{}, err
		}
		ratio.Add(r.Ratio)
		ctrl.Add(r.Control.IdleFrac)
		test.Add(r.Test.IdleFrac)
	}
	mk := func(s *stats.Sample) Replicated {
		return Replicated{Mean: s.Mean(), CI95: s.CI(0.95), N: int(s.N())}
	}
	return ReplicatedResult{Ratio: mk(&ratio), CtrlIdle: mk(&ctrl), TestIdle: mk(&test)}, nil
}

// ControlIdleFracAnalytic returns the closed-form idle fraction of one
// control processor ignoring destination-memory queueing: per remote
// transaction the processor idles 2L while a cycle of work costs
// E[segment busy] = E[ops] + MemCycles.
func ControlIdleFracAnalytic(p Params) float64 {
	if p.Nodes == 1 || p.RemoteFrac == 0 {
		return 0
	}
	eOps := (1 - p.MixMem) / p.MixMem // mean useful ops per access
	busyPerAccess := eOps + p.MemCycles
	idlePerAccess := p.RemoteFrac * 2 * p.Latency
	return idlePerAccess / (busyPerAccess + idlePerAccess)
}

// TestSaturationRatioAnalytic returns the first-order prediction of
// Fig. 11's ratio: the test system saturates at full utilization once
// enough parallelism covers the in-flight time, so the ratio approaches
// 1/(1 − controlIdle), degraded by the parcel overhead share.
func TestSaturationRatioAnalytic(p Params) float64 {
	eOps := (1 - p.MixMem) / p.MixMem
	busyPerAccess := eOps + p.MemCycles
	ctrlCycle := busyPerAccess + p.RemoteFrac*2*p.Latency
	// Test busy per access includes overhead on the remote fraction; a
	// remote access costs create+assimilate but saves the memory visit at
	// the source (it happens at the destination, which is also counted as
	// busy there — system-wide the work moves, not disappears).
	testBusy := busyPerAccess + p.RemoteFrac*(p.Overhead.CreateCycles+p.Overhead.AssimilateCycles)
	// In-flight (not runnable) time per access in the test system.
	flight := p.RemoteFrac * p.Latency
	util := float64(p.Parallelism) * testBusy / (testBusy + flight)
	if util > 1 {
		util = 1
	}
	// Ops per cycle per node: control completes one access-cycle per
	// ctrlCycle; test completes util/testBusy access-cycles per cycle.
	ratio := (util / testBusy) * ctrlCycle
	return ratio
}
