package parcelsys

import (
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/parcel"
	"repro/internal/stats"
)

// fast returns a parameter point small enough for unit tests.
func fast() Params {
	p := DefaultParams()
	p.Nodes = 8
	p.Horizon = 30000
	return p
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.Parallelism = 0 },
		func(p *Params) { p.RemoteFrac = -0.1 },
		func(p *Params) { p.RemoteFrac = 1.5 },
		func(p *Params) { p.Latency = -1 },
		func(p *Params) { p.MixMem = 0 },
		func(p *Params) { p.MemCycles = 0 },
		func(p *Params) { p.Horizon = 0 },
		func(p *Params) { p.Overhead.CreateCycles = -1 },
	}
	for i, mod := range cases {
		p := DefaultParams()
		mod(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := fast()
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Control.Ops != b.Control.Ops || a.Test.Ops != b.Test.Ops {
		t.Errorf("same seed differed: %+v vs %+v", a, b)
	}
	p.Seed = 999
	c, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Test.Ops == c.Test.Ops && a.Control.Ops == c.Control.Ops {
		t.Error("different seeds produced identical op counts (suspicious)")
	}
}

func TestParcelsHideLatencyAtHighLatency(t *testing.T) {
	// The headline Fig. 11 effect: with significant latency and enough
	// parallelism, the split-transaction system does much more work.
	// At L=500, r=0.5 a thread is runnable ~13.5 of every ~263 cycles, so
	// P=32 saturates the processors (32 × 13.5 > 263).
	p := fast()
	p.Latency = 500
	p.Parallelism = 32
	p.RemoteFrac = 0.5
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 5 {
		t.Errorf("ratio = %g, expected large latency-hiding win", r.Ratio)
	}
	if r.Test.IdleFrac > 0.2 {
		t.Errorf("test idle = %g, expected near zero with P=32", r.Test.IdleFrac)
	}
	if r.Control.IdleFrac < 0.8 {
		t.Errorf("control idle = %g, expected mostly waiting at L=500", r.Control.IdleFrac)
	}
}

func TestReversedRegionAtLowLatencyLowParallelism(t *testing.T) {
	// "performance advantage is small or in fact reversed... when there is
	// little parallelism and short system latencies": with P=1, L=0 and
	// software parcel overheads, the test system must lose.
	p := fast()
	p.Latency = 0
	p.Parallelism = 1
	p.Overhead = parcel.SoftwareOnly()
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio >= 1 {
		t.Errorf("ratio = %g, expected < 1 (overhead without latency to hide)", r.Ratio)
	}
}

func TestRatioMonotoneInParallelism(t *testing.T) {
	// More parcels per processor never hurts throughput (until saturation).
	p := fast()
	p.Latency = 1000
	p.RemoteFrac = 0.4
	prev := -1.0
	for _, par := range []int{1, 2, 4, 8, 16} {
		p.Parallelism = par
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ratio < prev*0.95 { // allow small stochastic wobble
			t.Errorf("ratio dropped at P=%d: %g after %g", par, r.Ratio, prev)
		}
		prev = r.Ratio
	}
}

func TestIdleDropsWithParallelism(t *testing.T) {
	// Fig. 12: test-system idle time falls toward zero as parallelism
	// grows, while control idle stays put.
	p := fast()
	p.Latency = 500
	var ctrlIdle []float64
	var testIdle []float64
	for _, par := range []int{1, 4, 16, 64} {
		p.Parallelism = par
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		ctrlIdle = append(ctrlIdle, r.Control.IdleFrac)
		testIdle = append(testIdle, r.Test.IdleFrac)
	}
	if testIdle[len(testIdle)-1] > 0.1 {
		t.Errorf("test idle at P=64 = %g, want ~0", testIdle[len(testIdle)-1])
	}
	if testIdle[0] < testIdle[len(testIdle)-1] {
		t.Errorf("test idle not decreasing: %v", testIdle)
	}
	// Control idle is independent of the test system's parallelism.
	for i := 1; i < len(ctrlIdle); i++ {
		if math.Abs(ctrlIdle[i]-ctrlIdle[0]) > 0.02 {
			t.Errorf("control idle varied with test parallelism: %v", ctrlIdle)
		}
	}
}

func TestControlIdleMatchesAnalytic(t *testing.T) {
	// With mild load (little destination-memory contention) the simulated
	// control idle fraction should track the closed form.
	p := fast()
	p.Latency = 300
	p.RemoteFrac = 0.3
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := ControlIdleFracAnalytic(p)
	if stats.RelErr(r.Control.IdleFrac, want) > 0.1 {
		t.Errorf("control idle = %g, analytic %g", r.Control.IdleFrac, want)
	}
}

func TestZeroRemoteFractionEquivalence(t *testing.T) {
	// With no remote accesses both systems do pure local work; the ratio
	// must be ~1 and both idle fractions ~0.
	p := fast()
	p.RemoteFrac = 0
	p.Parallelism = 1
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio-1) > 0.05 {
		t.Errorf("ratio = %g with no remote traffic", r.Ratio)
	}
	if r.Control.IdleFrac > 0.01 || r.Test.IdleFrac > 0.01 {
		t.Errorf("idle fractions = %g / %g, want ~0",
			r.Control.IdleFrac, r.Test.IdleFrac)
	}
	if r.Control.RemoteAccesses != 0 || r.Test.RemoteAccesses != 0 {
		t.Error("remote accesses recorded with RemoteFrac=0")
	}
}

func TestSingleNodeSystem(t *testing.T) {
	// Fig. 12's 1-node case (which the authors note they ran): no remote
	// traffic is possible, so the two systems are equivalent.
	p := fast()
	p.Nodes = 1
	p.RemoteFrac = 0.5 // ignored: no other node exists
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio-1) > 0.05 {
		t.Errorf("1-node ratio = %g, want ~1", r.Ratio)
	}
}

func TestRatioGrowsWithLatency(t *testing.T) {
	// The latency-hiding advantage grows with the latency being hidden.
	p := fast()
	p.Parallelism = 16
	p.RemoteFrac = 0.4
	prev := 0.0
	for _, l := range []float64{10, 100, 1000} {
		p.Latency = l
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Ratio < prev*0.98 {
			t.Errorf("ratio fell as latency grew: L=%g ratio=%g prev=%g", l, r.Ratio, prev)
		}
		prev = r.Ratio
	}
}

func TestWorkConservedAcrossNodes(t *testing.T) {
	// Per-node idle in the test system should be balanced (uniform random
	// destinations): no node starves while others saturate.
	p := fast()
	p.Latency = 500
	p.Parallelism = 8
	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var s stats.Sample
	for _, idle := range r.Test.PerNodeIdle {
		s.Add(idle)
	}
	if s.Max()-s.Min() > 0.3 {
		t.Errorf("test idle imbalance: min=%g max=%g", s.Min(), s.Max())
	}
}

func TestQueueMeanGrowsWithParallelism(t *testing.T) {
	p := fast()
	p.Latency = 100
	p.Parallelism = 1
	r1, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 32
	r32, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r32.Test.QueueMean <= r1.Test.QueueMean {
		t.Errorf("queue mean did not grow with parallelism: %g vs %g",
			r1.Test.QueueMean, r32.Test.QueueMean)
	}
	if r1.Control.QueueMean != 0 {
		t.Errorf("control reported a parcel queue: %g", r1.Control.QueueMean)
	}
}

func TestTopologyNetwork(t *testing.T) {
	// A hop network calibrated to the flat mean should land near the flat
	// result; an uncalibrated long-haul ring should do worse for the
	// control (more latency) and correspondingly raise the ratio.
	p := fast()
	p.Nodes = 16
	p.Parallelism = 16
	p.RemoteFrac = 0.5
	p.Latency = 500
	flat, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	ring := network.Ring{N: 16}
	perHop := 500 / network.MeanHops(ring)
	p.Net = network.NewHop(ring, perHop, 0)
	topo, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(topo.Ratio, flat.Ratio) > 0.3 {
		t.Errorf("calibrated ring ratio %g far from flat %g", topo.Ratio, flat.Ratio)
	}
}

func TestNetworkNodeCountMismatch(t *testing.T) {
	p := fast()
	p.Net = network.NewFlat(p.Nodes+1, 10)
	if p.Validate() == nil {
		t.Error("mismatched network size accepted")
	}
}

func TestMultithreadedControlNarrowsTheGap(t *testing.T) {
	// Giving the blocking control system the same thread count as the
	// parcel system removes most — but not all — of the parcel advantage:
	// parcels still win on one-way migration vs round trips.
	p := fast()
	p.Nodes = 8
	p.Parallelism = 16
	p.RemoteFrac = 0.5
	p.Latency = 500
	single, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.ControlThreads = 16
	multi, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Ratio >= single.Ratio {
		t.Errorf("multithreaded control did not narrow the gap: %g vs %g",
			multi.Ratio, single.Ratio)
	}
	if multi.Ratio < 0.5 {
		t.Errorf("parcels lost badly to multithreaded blocking: ratio %g", multi.Ratio)
	}
	// The multithreaded control is itself far less idle.
	if multi.Control.IdleFrac >= single.Control.IdleFrac {
		t.Errorf("control idle did not fall with threads: %g vs %g",
			multi.Control.IdleFrac, single.Control.IdleFrac)
	}
	p.ControlThreads = -1
	if p.Validate() == nil {
		t.Error("negative ControlThreads accepted")
	}
}

func TestControlThreadsDefaultUnchanged(t *testing.T) {
	// ControlThreads 0 and 1 are the same system with identical seeds.
	p := fast()
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.ControlThreads = 1
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Control.Ops != b.Control.Ops {
		t.Errorf("default vs explicit single thread differ: %d vs %d",
			a.Control.Ops, b.Control.Ops)
	}
}

func TestHotspotDegradesBalanceAndRatio(t *testing.T) {
	p := fast()
	p.Nodes = 16
	p.Parallelism = 16
	p.RemoteFrac = 0.5
	p.Latency = 500
	uniform, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Hotspot = 0.75
	hot, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Ratio >= uniform.Ratio {
		t.Errorf("hotspot ratio %g not below uniform %g", hot.Ratio, uniform.Ratio)
	}
	// The hotspot node is the busiest (lowest idle).
	minIdle := 1.0
	minAt := -1
	for i, idle := range hot.Test.PerNodeIdle {
		if idle < minIdle {
			minIdle = idle
			minAt = i
		}
	}
	if minAt != 0 {
		t.Errorf("busiest node = %d, want the hotspot node 0", minAt)
	}
	p.Hotspot = 1.5
	if p.Validate() == nil {
		t.Error("invalid hotspot accepted")
	}
}

func TestReplicate(t *testing.T) {
	p := fast()
	p.Horizon = 10000
	r, err := Replicate(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio.N != 5 {
		t.Errorf("replications = %d", r.Ratio.N)
	}
	if r.Ratio.Mean <= 0 || r.Ratio.CI95 <= 0 {
		t.Errorf("ratio stats = %+v", r.Ratio)
	}
	// CI must be small relative to the mean for a stable configuration.
	if r.Ratio.CI95 > r.Ratio.Mean {
		t.Errorf("CI %g wider than mean %g", r.Ratio.CI95, r.Ratio.Mean)
	}
	if _, err := Replicate(p, 1); err == nil {
		t.Error("single replication accepted")
	}
}

func TestSaturationAnalyticOrdering(t *testing.T) {
	// The analytic ratio prediction should be within a factor ~2 of the
	// simulation in the saturated regime and preserve ordering across
	// latencies.
	p := fast()
	p.Parallelism = 32
	p.RemoteFrac = 0.5
	for _, l := range []float64{200, 1000, 4000} {
		p.Latency = l
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		pred := TestSaturationRatioAnalytic(p)
		if r.Ratio < pred/2 || r.Ratio > pred*2 {
			t.Errorf("L=%g: sim ratio %g vs analytic %g beyond 2x band", l, r.Ratio, pred)
		}
	}
}
