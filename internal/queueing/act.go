package queueing

// Activity-mode (event-oriented) stations. The Proc-based components in
// this package give every job its own process, which reads naturally but
// pays a goroutine handoff per station visit. The Act* components below
// run entirely inside the kernel's dispatch loop: jobs are plain values,
// a station visit is an inline call plus one scheduled completion event,
// and a whole M/M/1 run executes with zero goroutines. Use them for hot
// measurement loops; keep the Proc components for interactive examples
// and models whose control flow does not fit run-to-completion handlers.

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ActNode consumes jobs in activity mode. AcceptAct must not block: it
// runs to completion inside the caller's dispatch step.
type ActNode interface {
	AcceptAct(k *sim.Kernel, j *Job)
}

// ActNodeFunc adapts a function to the ActNode interface.
type ActNodeFunc func(k *sim.Kernel, j *Job)

// AcceptAct calls the function.
func (f ActNodeFunc) AcceptAct(k *sim.Kernel, j *Job) { f(k, j) }

// AcceptAct lets a Sink terminate an activity-mode chain. When Recycle is
// set, the absorbed job is handed to it (an ActSource's Dispose closes the
// allocation loop).
func (s *Sink) AcceptAct(k *sim.Kernel, j *Job) {
	s.count++
	s.Sojourn.Add(k.Now() - j.Created)
	if s.Recycle != nil {
		s.Recycle(j)
	}
}

// ActSource generates jobs in activity mode: one activity re-arms itself
// per interarrival instead of spawning a process per job. Jobs disposed
// back to the source are reused, so a steady-state run allocates nothing
// per job.
type ActSource struct {
	Name string
	// Limit stops generation after this many jobs (0 = unlimited); the
	// generator activity exits when it is reached.
	Limit int64

	k      *sim.Kernel
	inter  func() float64
	class  int
	out    ActNode
	next   int64
	primed bool
	free   []*Job
}

// NewActSource creates an activity-mode source of class-0 jobs with the
// given interarrival sampler, feeding out. Call Start to launch it.
func NewActSource(k *sim.Kernel, name string, interarrival func() float64, out ActNode) *ActSource {
	return &ActSource{Name: name, k: k, inter: interarrival, out: out}
}

// SetClass sets the class of generated jobs.
func (s *ActSource) SetClass(class int) { s.class = class }

// Start launches the generator activity.
func (s *ActSource) Start() { s.k.SpawnActivity(s.Name, s) }

// Generated returns the number of jobs generated so far.
func (s *ActSource) Generated() int64 { return s.next }

// Dispose returns an absorbed job to the source's free list (wire it to
// the terminal Sink's Recycle field).
func (s *ActSource) Dispose(j *Job) { s.free = append(s.free, j) }

// Step emits one job per resumption: like the Proc source, the first
// arrival happens one interarrival after the start time.
func (s *ActSource) Step(a *sim.ActCtx) {
	if !s.primed {
		s.primed = true
		a.Wait(s.inter())
		return
	}
	var j *Job
	if n := len(s.free); n > 0 {
		j = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*j = Job{}
	} else {
		j = &Job{}
	}
	j.ID = s.next
	j.Class = s.class
	j.Created = a.Now()
	s.next++
	s.out.AcceptAct(s.k, j)
	if s.Limit > 0 && s.next >= s.Limit {
		a.Exit()
		return
	}
	a.Wait(s.inter())
}

// ActServer is the activity-mode k-server FIFO station: arriving jobs
// enter service immediately when a server is free and queue otherwise;
// each service is one scheduled completion event carrying the job (no
// closure per job). Statistics mirror the Proc Server's.
type ActServer struct {
	Name string
	// Service samples the service times actually drawn.
	Service stats.Sample
	// Sojourn samples wait + service per visit.
	Sojourn stats.Sample
	// Util is the time-weighted number of busy servers; Util.Mean(now) /
	// servers is the utilization ρ.
	Util stats.TimeWeighted
	// QueueLen is the time-weighted number of waiting jobs.
	QueueLen stats.TimeWeighted

	k        *sim.Kernel
	servers  int
	busy     int
	queue    []*Job
	svc      func(*Job) float64
	out      ActNode
	complete func(any) // bound once; every completion event reuses it
}

// NewActServer creates an activity-mode station with `servers` identical
// servers, service sampler svc, and downstream node out.
func NewActServer(k *sim.Kernel, name string, servers int, svc func(*Job) float64, out ActNode) *ActServer {
	if servers <= 0 {
		panic(fmt.Sprintf("queueing: NewActServer %q with %d servers", name, servers))
	}
	s := &ActServer{Name: name, k: k, servers: servers, svc: svc, out: out}
	s.Util.Set(k.Now(), 0)
	s.QueueLen.Set(k.Now(), 0)
	s.complete = s.finish
	return s
}

// Servers returns the number of servers.
func (s *ActServer) Servers() int { return s.servers }

// Busy returns the number of servers currently serving.
func (s *ActServer) Busy() int { return s.busy }

// QueueLength returns the number of jobs currently waiting.
func (s *ActServer) QueueLength() int { return len(s.queue) }

// Utilization returns the mean fraction of servers busy over the run.
func (s *ActServer) Utilization(now sim.Time) float64 {
	return s.Util.Mean(now) / float64(s.servers)
}

// AcceptAct admits the job: straight into service when a server is free,
// else into the FIFO queue.
func (s *ActServer) AcceptAct(k *sim.Kernel, j *Job) {
	j.Start = k.Now()
	if s.busy < s.servers {
		s.begin(j)
		return
	}
	s.queue = append(s.queue, j)
	s.QueueLen.Set(k.Now(), float64(len(s.queue)))
}

// begin starts one service and schedules its completion.
func (s *ActServer) begin(j *Job) {
	now := s.k.Now()
	s.busy++
	s.Util.Set(now, float64(s.busy))
	t := s.svc(j)
	if t < 0 {
		panic(fmt.Sprintf("queueing: server %q sampled negative service time %g", s.Name, t))
	}
	s.Service.Add(t)
	s.k.ScheduleArg(t, s.complete, j)
}

// finish completes one service: frees the server, admits the queue head,
// and forwards the job downstream.
func (s *ActServer) finish(x any) {
	j := x.(*Job)
	now := s.k.Now()
	s.busy--
	s.Util.Set(now, float64(s.busy))
	s.Sojourn.Add(now - j.Start)
	if len(s.queue) > 0 {
		var head *Job
		s.queue, head = sim.PopFront(s.queue)
		s.QueueLen.Set(now, float64(len(s.queue)))
		s.begin(head)
	}
	if s.out != nil {
		s.out.AcceptAct(s.k, j)
	}
}

// ActDelay holds each job for a sampled time without queueing (the
// infinite-server station in activity mode).
type ActDelay struct {
	Name string

	k       *sim.Kernel
	d       func(*Job) float64
	out     ActNode
	forward func(any)
}

// NewActDelay creates an activity-mode pure-delay node.
func NewActDelay(k *sim.Kernel, name string, d func(*Job) float64, out ActNode) *ActDelay {
	ad := &ActDelay{Name: name, k: k, d: d, out: out}
	ad.forward = func(x any) {
		if ad.out != nil {
			ad.out.AcceptAct(ad.k, x.(*Job))
		}
	}
	return ad
}

// AcceptAct delays the job and forwards it.
func (d *ActDelay) AcceptAct(k *sim.Kernel, j *Job) {
	t := d.d(j)
	if t < 0 {
		panic(fmt.Sprintf("queueing: delay %q sampled negative time %g", d.Name, t))
	}
	k.ScheduleArg(t, d.forward, j)
}

// ActLink carries jobs to a station on another partition of a
// partitioned run (sim.ParKernel): each traversal is one cross-partition
// Send after the link's latency, which must be at least the run's
// declared lookahead. Ownership of the job crosses with it — the sending
// partition must not touch the job again (the usual station-chain
// discipline already guarantees this). On a serial kernel the Send
// degenerates to ScheduleArg, so the same network description runs
// unchanged both ways; the link then behaves exactly like an ActDelay of
// its latency.
type ActLink struct {
	Name string

	part    int
	latency float64
	deliver func(any)
}

// NewActLink creates a link from a station on kernel k to the node out,
// which lives on partition part's kernel dst, after the given latency.
func NewActLink(k *sim.Kernel, name string, dst *sim.Kernel, part int, latency float64, out ActNode) *ActLink {
	if latency < 0 {
		panic(fmt.Sprintf("queueing: NewActLink %q with negative latency %g", name, latency))
	}
	l := &ActLink{Name: name, part: part, latency: latency}
	l.deliver = func(x any) { out.AcceptAct(dst, x.(*Job)) }
	return l
}

// AcceptAct ships the job across the link.
func (l *ActLink) AcceptAct(k *sim.Kernel, j *Job) {
	k.Send(l.part, l.latency, l.deliver, j)
}

// ActRouter sends each job to one of several outputs according to a
// choice function (probabilistic, class-based, round-robin...).
type ActRouter struct {
	Name   string
	choose func(*Job) int
	outs   []ActNode
}

// NewActRouter creates an activity-mode router. choose must return an
// index into outs.
func NewActRouter(name string, choose func(*Job) int, outs ...ActNode) *ActRouter {
	return &ActRouter{Name: name, choose: choose, outs: outs}
}

// AcceptAct forwards the job to the chosen output.
func (r *ActRouter) AcceptAct(k *sim.Kernel, j *Job) {
	idx := r.choose(j)
	if idx < 0 || idx >= len(r.outs) {
		panic(fmt.Sprintf("queueing: router %q chose invalid output %d of %d", r.Name, idx, len(r.outs)))
	}
	r.outs[idx].AcceptAct(k, j)
}
