package queueing

// ActLink: a ring of activity-mode stations spread across the partitions
// of a sim.ParKernel must reproduce the serial kernel's trajectory
// exactly — same absorption count, same sojourn statistics, same final
// time — for every worker count tried. The same network description runs
// both ways: on a serial kernel the link's Send degenerates to
// ScheduleArg.

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// ringSpec describes a 3-station tandem ring: source and sink on
// partition 0, one ActServer per partition, links of the given latency
// between them.
const ringLatency = 2.0

// buildRing lays the ring onto the given kernels (all the same kernel
// for a serial run). kfor(p) is partition p's kernel.
func buildRing(kfor func(p int) *sim.Kernel, jobs int64, seed uint64) (*Sink, []*ActServer) {
	k0, k1, k2 := kfor(0), kfor(1), kfor(2)
	sink := NewSink("out")
	// Wired back to front: each link needs its downstream node first.
	svc := func(k *sim.Kernel, stream uint64, mean float64) func(*Job) float64 {
		st := rng.NewWithStream(seed, stream)
		return func(*Job) float64 { return st.Exp(1 / mean) }
	}
	s2 := NewActServer(k2, "s2", 1, svc(k2, 4, 0.5), NewActLink(k2, "l20", k0, 0, ringLatency, sink))
	s1 := NewActServer(k1, "s1", 2, svc(k1, 3, 0.8), NewActLink(k1, "l12", k2, 2, ringLatency, s2))
	s0 := NewActServer(k0, "s0", 1, svc(k0, 2, 0.6), NewActLink(k0, "l01", k1, 1, ringLatency, s1))
	arr := rng.NewWithStream(seed, 1)
	src := NewActSource(k0, "src", func() float64 { return arr.Exp(1 / 1.5) }, s0)
	src.Limit = jobs
	sink.Recycle = src.Dispose
	src.Start()
	return sink, []*ActServer{s0, s1, s2}
}

// ringFingerprint is the byte-identity witness: exact float sums survive
// any trajectory difference.
type ringFingerprint struct {
	count   int64
	sojourn float64
	svcSum  [3]float64
	now     sim.Time
}

func runRingSerial(t *testing.T, jobs int64, seed uint64) ringFingerprint {
	t.Helper()
	k := sim.NewKernel()
	sink, servers := buildRing(func(int) *sim.Kernel { return k }, jobs, seed)
	now, err := k.RunUntilIdle()
	if err != nil {
		t.Fatal(err)
	}
	return fingerprintRing(sink, servers, now)
}

func fingerprintRing(sink *Sink, servers []*ActServer, now sim.Time) ringFingerprint {
	fp := ringFingerprint{count: sink.Count(), sojourn: sink.Sojourn.Sum(), now: now}
	for i, s := range servers {
		fp.svcSum[i] = s.Service.Sum()
	}
	return fp
}

func TestActLinkPartitionedRingMatchesSerial(t *testing.T) {
	const jobs, seed = 400, 17
	want := runRingSerial(t, jobs, seed)
	if want.count != jobs {
		t.Fatalf("serial ring absorbed %d of %d jobs", want.count, jobs)
	}
	for _, workers := range []int{1, 2, 3} {
		pk := sim.NewParKernel(3, workers, ringLatency)
		sink, servers := buildRing(pk.Part, jobs, seed)
		now, err := pk.RunUntilIdle()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := fingerprintRing(sink, servers, now)
		if got != want {
			t.Fatalf("workers=%d: fingerprint %+v, serial %+v", workers, got, want)
		}
	}
}

// TestActLinkSerialIsDelay: on a plain kernel an ActLink is an ActDelay
// of its latency — jobs arrive downstream exactly latency later.
func TestActLinkSerialIsDelay(t *testing.T) {
	k := sim.NewKernel()
	var at sim.Time = -1
	probe := ActNodeFunc(func(k *sim.Kernel, j *Job) { at = k.Now() })
	link := NewActLink(k, "l", k, 0, 5, probe)
	k.Schedule(3, func() { link.AcceptAct(k, &Job{}) })
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at != 8 {
		t.Fatalf("delivery at %g, want 8", at)
	}
}
