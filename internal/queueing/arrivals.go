package queueing

import (
	"fmt"

	"repro/internal/rng"
)

// Open-arrival processes for load generation. pimload paces requests at a
// pimserve daemon with these; the sim-kernel Source components above model
// closed or rate-driven arrivals *inside* a simulation, whereas these
// generate wall-clock schedules for driving a real system under test. Both
// are deterministic given a seed, so a load run is exactly replayable.

// ArrivalProcess yields successive inter-arrival gaps, in seconds of
// abstract time (the caller chooses the wall-clock scale).
type ArrivalProcess interface {
	// Next returns the gap between the previous arrival and the next one.
	// Gaps are strictly non-negative.
	Next() float64
	// MeanRate returns the long-run arrival rate (arrivals per unit time).
	MeanRate() float64
}

// PoissonArrivals is the classical memoryless open-arrival process:
// independent exponential inter-arrival gaps at a fixed rate.
type PoissonArrivals struct {
	rate float64
	rng  *rng.Stream
}

// NewPoissonArrivals returns a Poisson process with the given mean rate
// (arrivals per unit time), drawing from src.
func NewPoissonArrivals(rate float64, src *rng.Stream) (*PoissonArrivals, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("queueing: arrival rate = %g (want > 0)", rate)
	}
	if src == nil {
		return nil, fmt.Errorf("queueing: nil rng stream")
	}
	return &PoissonArrivals{rate: rate, rng: src}, nil
}

// Next implements ArrivalProcess.
func (p *PoissonArrivals) Next() float64 { return p.rng.ExpRate(p.rate) }

// MeanRate implements ArrivalProcess.
func (p *PoissonArrivals) MeanRate() float64 { return p.rate }

// MMPPArrivals is a two-state Markov-modulated Poisson process: a baseline
// state emitting at BaseRate and a burst state emitting at BurstRate, with
// exponentially distributed dwell times in each. It is the standard minimal
// model of bursty open traffic — the long-run rate is the dwell-weighted
// mix of the two state rates, but arrivals clump while the burst state
// holds, which is exactly the overload pattern a shedding admission queue
// has to survive.
type MMPPArrivals struct {
	rate  [2]float64 // per-state arrival rate
	leave [2]float64 // per-state transition-out rate (1/mean dwell)
	state int
	rng   *rng.Stream
}

// NewMMPPArrivals returns a two-state MMPP drawing from src. baseRate and
// burstRate are the per-state arrival rates; baseDwell and burstDwell are
// the mean times spent in each state before switching. The process starts
// in the baseline state.
func NewMMPPArrivals(baseRate, burstRate, baseDwell, burstDwell float64, src *rng.Stream) (*MMPPArrivals, error) {
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"base rate", baseRate}, {"burst rate", burstRate},
		{"base dwell", baseDwell}, {"burst dwell", burstDwell},
	} {
		if !(v.v > 0) {
			return nil, fmt.Errorf("queueing: MMPP %s = %g (want > 0)", v.name, v.v)
		}
	}
	if src == nil {
		return nil, fmt.Errorf("queueing: nil rng stream")
	}
	return &MMPPArrivals{
		rate:  [2]float64{baseRate, burstRate},
		leave: [2]float64{1 / baseDwell, 1 / burstDwell},
		rng:   src,
	}, nil
}

// Next implements ArrivalProcess by racing competing exponentials: in the
// current state, the time to the next arrival and the time to the next
// state switch are both exponential; whichever fires first wins, and a
// switch restarts the race from the new state (memorylessness makes that
// exact, not an approximation).
func (m *MMPPArrivals) Next() float64 {
	var elapsed float64
	for {
		toArrival := m.rng.ExpRate(m.rate[m.state])
		toSwitch := m.rng.ExpRate(m.leave[m.state])
		if toArrival <= toSwitch {
			return elapsed + toArrival
		}
		elapsed += toSwitch
		m.state = 1 - m.state
	}
}

// MeanRate implements ArrivalProcess: the stationary state occupancies are
// proportional to the mean dwells, so the long-run rate is the dwell-
// weighted average of the two state rates.
func (m *MMPPArrivals) MeanRate() float64 {
	d0, d1 := 1/m.leave[0], 1/m.leave[1]
	return (d0*m.rate[0] + d1*m.rate[1]) / (d0 + d1)
}
