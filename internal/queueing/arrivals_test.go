package queueing

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// observedRate draws n gaps and returns arrivals per unit time.
func observedRate(p ArrivalProcess, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			panic("negative gap")
		}
		total += g
	}
	return float64(n) / total
}

func TestPoissonArrivalsRate(t *testing.T) {
	p, err := NewPoissonArrivals(50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanRate() != 50 {
		t.Errorf("MeanRate = %g, want 50", p.MeanRate())
	}
	got := observedRate(p, 200000)
	if math.Abs(got-50)/50 > 0.02 {
		t.Errorf("observed rate %g, want ~50", got)
	}
}

func TestMMPPArrivalsRate(t *testing.T) {
	// Base 20/s for a mean 1s, burst 200/s for a mean 0.1s:
	// stationary rate = (1*20 + 0.1*200) / 1.1 = 40/1.1.
	m, err := NewMMPPArrivals(20, 200, 1, 0.1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := 40.0 / 1.1
	if math.Abs(m.MeanRate()-want) > 1e-12 {
		t.Errorf("MeanRate = %g, want %g", m.MeanRate(), want)
	}
	got := observedRate(m, 400000)
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("observed rate %g, want ~%g", got, want)
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// An MMPP with well-separated state rates must be over-dispersed
	// relative to Poisson: the coefficient of variation of its gaps
	// exceeds 1 (a Poisson process has CV exactly 1).
	m, err := NewMMPPArrivals(5, 500, 1, 0.2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		g := m.Next()
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if cv < 1.2 {
		t.Errorf("gap CV = %g, want clearly > 1 (bursty)", cv)
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	build := func() []ArrivalProcess {
		p, _ := NewPoissonArrivals(10, rng.NewWithStream(7, 1))
		m, _ := NewMMPPArrivals(10, 100, 0.5, 0.05, rng.NewWithStream(7, 2))
		return []ArrivalProcess{p, m}
	}
	a, b := build(), build()
	for i := range a {
		for k := 0; k < 1000; k++ {
			if ga, gb := a[i].Next(), b[i].Next(); ga != gb {
				t.Fatalf("process %d diverged at draw %d: %g vs %g", i, k, ga, gb)
			}
		}
	}
}

func TestArrivalsRejectBadParams(t *testing.T) {
	src := rng.New(1)
	if _, err := NewPoissonArrivals(0, src); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoissonArrivals(math.NaN(), src); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := NewPoissonArrivals(10, nil); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := NewMMPPArrivals(10, 100, 0, 1, src); err == nil {
		t.Error("zero dwell accepted")
	}
	if _, err := NewMMPPArrivals(-1, 100, 1, 1, src); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewMMPPArrivals(10, 100, 1, 1, nil); err == nil {
		t.Error("nil stream accepted")
	}
}
