package queueing_test

import (
	"fmt"

	"repro/internal/queueing"
)

// The M/M/1 closed forms used to validate the DES kernel.
func ExampleMM1() {
	r, err := queueing.MM1(0.8, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho=%.1f L=%.1f W=%.1f\n", r.Rho, r.L, r.W)
	// Output: rho=0.8 L=4.0 W=5.0
}

// Exact MVA of a closed interactive system: 10 customers, 1-second CPU
// demand, 9-second think time.
func ExampleMVA() {
	stations := []queueing.Station{
		{Name: "cpu", Kind: queueing.QueueingStation, Demand: 1},
		{Name: "think", Kind: queueing.DelayStation, Demand: 9},
	}
	r, err := queueing.MVA(stations, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("X=%.3f jobs/s, CPU util=%.3f\n", r.Throughput, r.Utilizations[0])
	// Output: X=0.832 jobs/s, CPU util=0.832
}

// The saturation point of a closed network — identical to the
// Saavedra-Barrera multithreading bound the paper's §5.2 cites.
func ExampleBottleneckAnalysis() {
	stations := []queueing.Station{
		{Name: "cpu", Kind: queueing.QueueingStation, Demand: 10},
		{Name: "latency", Kind: queueing.DelayStation, Demand: 90},
	}
	nStar, xMax, bottleneck, err := queueing.BottleneckAnalysis(stations)
	if err != nil {
		panic(err)
	}
	fmt.Printf("saturates at N*=%.0f threads, Xmax=%.1f, bottleneck=%s\n", nStar, xMax, bottleneck)
	// Output: saturates at N*=10 threads, Xmax=0.1, bottleneck=cpu
}
