package queueing

import (
	"fmt"
)

// This file implements exact Mean Value Analysis (MVA) for closed,
// single-class product-form queueing networks. The paper's control system
// (study 2) is such a network: each processor's thread cycles between CPU
// service, memory service, and a pure network delay, so MVA provides an
// independent analytic cross-check on the parcelsys simulation, and the
// multithreaded test system corresponds to raising the customer
// population.

// StationKind distinguishes queueing from delay (infinite-server) centres.
type StationKind int

// Station kinds.
const (
	// QueueingStation is a single-server FCFS centre.
	QueueingStation StationKind = iota
	// DelayStation is an infinite-server (pure latency) centre.
	DelayStation
)

// Station describes one service centre of a closed network.
type Station struct {
	Name string
	Kind StationKind
	// Demand is the service demand per visit-cycle: visit ratio × mean
	// service time.
	Demand float64
}

// MVAResult holds the exact MVA solution for population n.
type MVAResult struct {
	N int
	// Throughput is the system throughput X(n) in cycles per time unit.
	Throughput float64
	// ResidenceTimes per station (waiting + service, per cycle).
	ResidenceTimes []float64
	// QueueLengths per station (mean customers present).
	QueueLengths []float64
	// CycleTime is the mean time for one full cycle.
	CycleTime float64
	// Utilizations per station (demand × throughput; for delay stations
	// this is the mean number in service).
	Utilizations []float64
}

// MVA solves the closed network exactly for population n by the standard
// recursion over populations 1..n.
func MVA(stations []Station, n int) (MVAResult, error) {
	if len(stations) == 0 {
		return MVAResult{}, fmt.Errorf("queueing: MVA with no stations")
	}
	if n <= 0 {
		return MVAResult{}, fmt.Errorf("queueing: MVA with population %d", n)
	}
	for _, s := range stations {
		if s.Demand < 0 {
			return MVAResult{}, fmt.Errorf("queueing: station %q has negative demand", s.Name)
		}
	}
	k := len(stations)
	q := make([]float64, k) // queue lengths at population m-1
	var res MVAResult
	for m := 1; m <= n; m++ {
		r := make([]float64, k)
		var cycle float64
		for i, s := range stations {
			switch s.Kind {
			case QueueingStation:
				r[i] = s.Demand * (1 + q[i])
			case DelayStation:
				r[i] = s.Demand
			default:
				return MVAResult{}, fmt.Errorf("queueing: unknown station kind %d", s.Kind)
			}
			cycle += r[i]
		}
		x := float64(m) / cycle
		for i := range stations {
			q[i] = x * r[i]
		}
		if m == n {
			res = MVAResult{
				N:              n,
				Throughput:     x,
				ResidenceTimes: r,
				QueueLengths:   q,
				CycleTime:      cycle,
			}
		}
	}
	res.Utilizations = make([]float64, k)
	for i, s := range stations {
		res.Utilizations[i] = res.Throughput * s.Demand
	}
	return res, nil
}

// MVASweep solves the network for every population 1..nMax and returns the
// per-population throughputs — the saturation curve that underlies the
// paper's Fig. 11 parallelism series.
func MVASweep(stations []Station, nMax int) ([]float64, error) {
	if nMax <= 0 {
		return nil, fmt.Errorf("queueing: MVASweep with nMax %d", nMax)
	}
	out := make([]float64, nMax)
	for n := 1; n <= nMax; n++ {
		r, err := MVA(stations, n)
		if err != nil {
			return nil, err
		}
		out[n-1] = r.Throughput
	}
	return out, nil
}

// BottleneckAnalysis returns the asymptotic bounds of the closed network:
// the saturation population N* = (sum of demands + max demand delay)/Dmax
// and the asymptotic throughput 1/Dmax, where Dmax is the largest
// queueing-station demand (operational-analysis bounds).
func BottleneckAnalysis(stations []Station) (nStar, xMax float64, bottleneck string, err error) {
	if len(stations) == 0 {
		return 0, 0, "", fmt.Errorf("queueing: BottleneckAnalysis with no stations")
	}
	var totalD, z, dMax float64
	for _, s := range stations {
		switch s.Kind {
		case QueueingStation:
			totalD += s.Demand
			if s.Demand > dMax {
				dMax = s.Demand
				bottleneck = s.Name
			}
		case DelayStation:
			z += s.Demand
		}
	}
	if dMax == 0 {
		return 0, 0, "", fmt.Errorf("queueing: no queueing demand")
	}
	return (totalD + z) / dMax, 1 / dMax, bottleneck, nil
}
