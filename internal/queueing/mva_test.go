package queueing

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestMVASingleCustomer(t *testing.T) {
	// With one customer there is no queueing: cycle time = sum of demands.
	st := []Station{
		{Name: "cpu", Kind: QueueingStation, Demand: 2},
		{Name: "disk", Kind: QueueingStation, Demand: 3},
		{Name: "think", Kind: DelayStation, Demand: 5},
	}
	r, err := MVA(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.CycleTime-10) > 1e-12 {
		t.Errorf("cycle = %g, want 10", r.CycleTime)
	}
	if math.Abs(r.Throughput-0.1) > 1e-12 {
		t.Errorf("X = %g, want 0.1", r.Throughput)
	}
}

func TestMVAKnownTwoStation(t *testing.T) {
	// Classic textbook example: two queueing stations, D1=1, D2=2, N=2.
	// n=1: r=(1,2), X=1/3, q=(1/3,2/3).
	// n=2: r=(1*(1+1/3), 2*(1+2/3)) = (4/3, 10/3); X=2/(14/3)=3/7.
	st := []Station{
		{Name: "a", Kind: QueueingStation, Demand: 1},
		{Name: "b", Kind: QueueingStation, Demand: 2},
	}
	r, err := MVA(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-3.0/7.0) > 1e-12 {
		t.Errorf("X = %g, want 3/7", r.Throughput)
	}
	if math.Abs(r.ResidenceTimes[0]-4.0/3.0) > 1e-12 ||
		math.Abs(r.ResidenceTimes[1]-10.0/3.0) > 1e-12 {
		t.Errorf("residence = %v", r.ResidenceTimes)
	}
}

func TestMVAQueueLengthsSumToN(t *testing.T) {
	st := []Station{
		{Name: "a", Kind: QueueingStation, Demand: 1.5},
		{Name: "b", Kind: QueueingStation, Demand: 0.5},
		{Name: "z", Kind: DelayStation, Demand: 4},
	}
	for _, n := range []int{1, 2, 5, 20, 100} {
		r, err := MVA(st, n)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, q := range r.QueueLengths {
			sum += q
		}
		if math.Abs(sum-float64(n)) > 1e-9 {
			t.Errorf("N=%d: queue lengths sum to %g", n, sum)
		}
	}
}

func TestMVAThroughputMonotoneAndBounded(t *testing.T) {
	st := []Station{
		{Name: "cpu", Kind: QueueingStation, Demand: 1},
		{Name: "net", Kind: DelayStation, Demand: 20},
	}
	xs, err := MVASweep(st, 60)
	if err != nil {
		t.Fatal(err)
	}
	_, xMax, bn, err := BottleneckAnalysis(st)
	if err != nil {
		t.Fatal(err)
	}
	if bn != "cpu" {
		t.Errorf("bottleneck = %q", bn)
	}
	prev := 0.0
	for i, x := range xs {
		if x < prev-1e-12 {
			t.Fatalf("throughput fell at N=%d", i+1)
		}
		if x > xMax+1e-12 {
			t.Fatalf("throughput %g exceeds bound %g", x, xMax)
		}
		prev = x
	}
	// With 60 customers and N* = 21, the network saturates.
	if xs[59] < 0.99*xMax {
		t.Errorf("saturated throughput = %g, bound %g", xs[59], xMax)
	}
}

func TestBottleneckSaturationPoint(t *testing.T) {
	st := []Station{
		{Name: "cpu", Kind: QueueingStation, Demand: 10},
		{Name: "think", Kind: DelayStation, Demand: 90},
	}
	nStar, xMax, _, err := BottleneckAnalysis(st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nStar-10) > 1e-12 {
		t.Errorf("N* = %g, want 10", nStar)
	}
	if math.Abs(xMax-0.1) > 1e-12 {
		t.Errorf("Xmax = %g, want 0.1", xMax)
	}
	// This is exactly the Saavedra-Barrera saturation point for R=10,
	// L=90, C=0 (see internal/analytic): the two models agree.
}

func TestMVAMatchesClosedNetworkSimulation(t *testing.T) {
	// Simulate the closed machine-repairman-style network via the
	// ClosedLoop component: N customers cycling through an exponential
	// CPU (queueing) and an exponential think delay. Compare throughput
	// and cycle time with exact MVA.
	const cpuDemand, thinkDemand = 1.0, 8.0
	const n = 6
	st := []Station{
		{Name: "cpu", Kind: QueueingStation, Demand: cpuDemand},
		{Name: "think", Kind: DelayStation, Demand: thinkDemand},
	}
	want, err := MVA(st, n)
	if err != nil {
		t.Fatal(err)
	}

	k := sim.NewKernel()
	svc := rng.NewWithStream(77, 1)
	think := rng.NewWithStream(77, 2)
	cpu := NewServer(k, "cpu", 1, sim.FIFO, func(*Job) float64 { return svc.Exp(cpuDemand) }, nil)
	wait := NewDelay("think", func(*Job) float64 { return think.Exp(thinkDemand) }, nil)
	loop := NewClosedLoop(k, "repair", n, wait, cpu)
	const horizon = 200000
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(loop.Throughput(horizon), want.Throughput) > 0.03 {
		t.Errorf("sim X = %g, MVA X = %g", loop.Throughput(horizon), want.Throughput)
	}
	if stats.RelErr(cpu.Resource().Utilization(k.Now()), want.Utilizations[0]) > 0.03 {
		t.Errorf("sim U = %g, MVA U = %g", cpu.Resource().Utilization(k.Now()), want.Utilizations[0])
	}
	if stats.RelErr(loop.CycleTimes.Mean(), want.CycleTime) > 0.03 {
		t.Errorf("sim cycle = %g, MVA cycle = %g", loop.CycleTimes.Mean(), want.CycleTime)
	}
}

func TestClosedLoopPopulationConserved(t *testing.T) {
	// The loop keeps exactly its population circulating: mean resident
	// jobs at the server plus in think equals N (Little on the circuit).
	const n = 5
	k := sim.NewKernel()
	svc := rng.NewWithStream(3, 1)
	cpu := NewServer(k, "cpu", 1, sim.FIFO, func(*Job) float64 { return svc.Exp(2) }, nil)
	wait := NewDelay("z", func(*Job) float64 { return 8 }, nil)
	loop := NewClosedLoop(k, "loop", n, cpu, wait)
	const horizon = 100000
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if loop.Population() != n {
		t.Errorf("population = %d", loop.Population())
	}
	// X * cycleTime = N (Little's law on the closed circuit).
	if got := loop.Throughput(horizon) * loop.CycleTimes.Mean(); stats.RelErr(got, n) > 0.02 {
		t.Errorf("X*cycle = %g, want %d", got, n)
	}
}

func TestClosedLoopPanicsOnBadArgs(t *testing.T) {
	k := sim.NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewClosedLoop(k, "bad", 0, NewSink("s"))
}

func TestMVAModelsParcelControlSystem(t *testing.T) {
	// The study-2 control system as a closed network: one customer (the
	// blocking thread) cycling through CPU work, local memory, and a
	// network round-trip delay. MVA cycle time must match the parcelsys
	// analytic control idle fraction.
	const eOps = 7.0 / 3.0 // mean useful ops per access at mix 0.3
	const mem = 10.0
	const remoteFrac = 0.3
	const lat = 300.0
	st := []Station{
		{Name: "cpu", Kind: QueueingStation, Demand: eOps},
		{Name: "mem", Kind: QueueingStation, Demand: mem},
		{Name: "net", Kind: DelayStation, Demand: remoteFrac * 2 * lat},
	}
	r, err := MVA(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	idle := r.ResidenceTimes[2] / r.CycleTime
	want := (remoteFrac * 2 * lat) / (eOps + mem + remoteFrac*2*lat)
	if math.Abs(idle-want) > 1e-12 {
		t.Errorf("MVA idle = %g, closed form %g", idle, want)
	}
}

func TestMVAErrors(t *testing.T) {
	if _, err := MVA(nil, 1); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := MVA([]Station{{Demand: 1}}, 0); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := MVA([]Station{{Demand: -1}}, 1); err == nil {
		t.Error("negative demand accepted")
	}
	if _, _, _, err := BottleneckAnalysis([]Station{{Kind: DelayStation, Demand: 1}}); err == nil {
		t.Error("delay-only network accepted")
	}
}
