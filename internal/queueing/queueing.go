// Package queueing provides composable queueing-network components on top of
// the sim kernel — sources, servers, delays, routers, sinks — plus the
// classical closed-form results (M/M/1, M/M/c, M/D/1, M/G/1, processor
// sharing) used to validate the kernel against theory.
//
// This is the layer at which the paper's SES/Workbench models are expressed:
// a Workbench model is a directed graph of service and delay nodes through
// which transactions flow, which maps one-to-one onto these components.
package queueing

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Job is the unit of flow through a queueing network (a Workbench
// "transaction").
type Job struct {
	ID      int64
	Class   int // workload class, available for routing decisions
	Created sim.Time
	// Start is per-station scratch used by the activity-mode stations:
	// the arrival time at the station currently holding the job.
	Start sim.Time
	// Attrs carries model-specific baggage.
	Attrs map[string]float64
}

// Node consumes jobs. Components forward jobs to their downstream Node.
type Node interface {
	// Accept takes ownership of the job at the current simulated time.
	// Accept must not block the caller's process; components that need
	// queueing do it internally.
	Accept(c *sim.Context, j *Job)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(c *sim.Context, j *Job)

// Accept calls the function.
func (f NodeFunc) Accept(c *sim.Context, j *Job) { f(c, j) }

// Sink absorbs jobs and records their end-to-end sojourn times.
type Sink struct {
	Name string
	// Sojourn samples job lifetime (now - Created).
	Sojourn stats.Sample
	// Recycle, when non-nil, receives each job absorbed through AcceptAct
	// (activity mode) so its allocation can be reused. The Proc-mode
	// Accept never calls it: a process may still hold its job after the
	// sink returns.
	Recycle func(*Job)
	count   int64
}

// NewSink creates a sink.
func NewSink(name string) *Sink { return &Sink{Name: name} }

// Accept absorbs the job.
func (s *Sink) Accept(c *sim.Context, j *Job) {
	s.count++
	s.Sojourn.Add(c.Now() - j.Created)
}

// Count returns the number of jobs absorbed.
func (s *Sink) Count() int64 { return s.count }

// Source generates jobs with a given interarrival distribution and feeds
// them to a downstream node. Each job runs as its own process, which lets
// downstream components block it freely.
type Source struct {
	Name  string
	k     *sim.Kernel
	inter func() float64 // interarrival sampler
	class int
	out   Node
	next  int64
	// Limit stops generation after this many jobs (0 = unlimited).
	Limit int64
}

// NewSource creates a source of class-0 jobs with the given interarrival
// sampler, feeding out.
func NewSource(k *sim.Kernel, name string, interarrival func() float64, out Node) *Source {
	return &Source{Name: name, k: k, inter: interarrival, out: out}
}

// SetClass sets the class of generated jobs.
func (s *Source) SetClass(class int) { s.class = class }

// Start launches the generator process.
func (s *Source) Start() {
	s.k.Spawn(s.Name, func(c *sim.Context) {
		for s.Limit == 0 || s.next < s.Limit {
			c.Wait(s.inter())
			id := s.next
			s.next++
			j := &Job{ID: id, Class: s.class, Created: c.Now()}
			c.Spawn(fmt.Sprintf("%s-job%d", s.Name, id), func(jc *sim.Context) {
				s.out.Accept(jc, j)
			})
		}
	})
}

// Generated returns the number of jobs generated so far.
func (s *Source) Generated() int64 { return s.next }

// Server is a k-server FIFO (or priority) queueing station: jobs queue for
// one of capacity identical servers, hold it for a sampled service time,
// then continue downstream. It blocks the job's own process, so it must be
// reached from a per-job process (Source arranges this).
type Server struct {
	Name string
	res  *sim.Resource
	svc  func(*Job) float64 // service time sampler
	out  Node
	// Service samples the service times actually drawn.
	Service stats.Sample
	// Sojourn samples wait + service per visit.
	Sojourn stats.Sample
}

// NewServer creates a station with `servers` identical servers, service
// sampler svc, and downstream node out.
func NewServer(k *sim.Kernel, name string, servers int, d sim.Discipline, svc func(*Job) float64, out Node) *Server {
	return &Server{
		Name: name,
		res:  sim.NewResource(k, name, servers, d),
		svc:  svc,
		out:  out,
	}
}

// Accept queues the job, serves it, and forwards it.
func (s *Server) Accept(c *sim.Context, j *Job) {
	start := c.Now()
	s.res.Acquire(c)
	t := s.svc(j)
	if t < 0 {
		panic(fmt.Sprintf("queueing: server %q sampled negative service time %g", s.Name, t))
	}
	s.Service.Add(t)
	c.Wait(t)
	s.res.Release(1)
	s.Sojourn.Add(c.Now() - start)
	if s.out != nil {
		s.out.Accept(c, j)
	}
}

// Resource exposes the underlying sim resource for statistics access.
func (s *Server) Resource() *sim.Resource { return s.res }

// Delay holds each job for a sampled time without any queueing (an
// infinite-server station; models pure latency such as the paper's flat
// interconnect delay).
type Delay struct {
	Name string
	d    func(*Job) float64
	out  Node
}

// NewDelay creates a pure-delay node.
func NewDelay(name string, d func(*Job) float64, out Node) *Delay {
	return &Delay{Name: name, d: d, out: out}
}

// Accept delays the job and forwards it.
func (d *Delay) Accept(c *sim.Context, j *Job) {
	t := d.d(j)
	if t < 0 {
		panic(fmt.Sprintf("queueing: delay %q sampled negative time %g", d.Name, t))
	}
	c.Wait(t)
	if d.out != nil {
		d.out.Accept(c, j)
	}
}

// Router sends each job to one of several outputs according to a choice
// function (probabilistic routing, class-based routing, round-robin...).
type Router struct {
	Name   string
	choose func(*Job) int
	outs   []Node
}

// NewRouter creates a router. choose must return an index into outs.
func NewRouter(name string, choose func(*Job) int, outs ...Node) *Router {
	return &Router{Name: name, choose: choose, outs: outs}
}

// Accept forwards the job to the chosen output.
func (r *Router) Accept(c *sim.Context, j *Job) {
	idx := r.choose(j)
	if idx < 0 || idx >= len(r.outs) {
		panic(fmt.Sprintf("queueing: router %q chose invalid output %d of %d", r.Name, idx, len(r.outs)))
	}
	r.outs[idx].Accept(c, j)
}

// ProbRouter returns a choice function routing to output i with probability
// probs[i] (probabilities must sum to ~1).
func ProbRouter(st *rng.Stream, probs []float64) func(*Job) int {
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("queueing: ProbRouter probabilities sum to %g", sum))
	}
	return func(*Job) int { return st.Discrete(probs) }
}

// ClosedLoop keeps a fixed population of jobs circulating through a chain
// of nodes forever — the closed-network counterpart of Source. Each
// completed circuit is counted, so Throughput gives the metric MVA
// predicts. Jobs never leave; the loop ends with the simulation horizon.
type ClosedLoop struct {
	Name string
	k    *sim.Kernel
	// CycleTimes samples the duration of each completed circuit.
	CycleTimes stats.Sample
	cycles     int64
	population int
}

// NewClosedLoop creates a loop of `population` jobs, each repeatedly
// traversing the given stages (each stage blocks the job's process, e.g. a
// Server visit or Delay). Stages run in order; after the last, the circuit
// counts and the job starts over.
func NewClosedLoop(k *sim.Kernel, name string, population int, stages ...Node) *ClosedLoop {
	if population <= 0 || len(stages) == 0 {
		panic(fmt.Sprintf("queueing: NewClosedLoop(%d jobs, %d stages)", population, len(stages)))
	}
	cl := &ClosedLoop{Name: name, k: k, population: population}
	for i := 0; i < population; i++ {
		id := int64(i)
		k.Spawn(fmt.Sprintf("%s-cust%d", name, i), func(c *sim.Context) {
			j := &Job{ID: id, Created: c.Now()}
			for {
				start := c.Now()
				for _, stage := range stages {
					stage.Accept(c, j)
				}
				cl.cycles++
				cl.CycleTimes.Add(c.Now() - start)
			}
		})
	}
	return cl
}

// Population returns the circulating job count.
func (cl *ClosedLoop) Population() int { return cl.population }

// Cycles returns the number of completed circuits.
func (cl *ClosedLoop) Cycles() int64 { return cl.cycles }

// Throughput returns completed circuits per unit time over [0, now].
func (cl *ClosedLoop) Throughput(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(cl.cycles) / now
}

// PSServer is an egalitarian processor-sharing station: all resident jobs
// progress simultaneously, each at rate 1/n of the server. Mean sojourn in
// M/M/1-PS equals M/M/1-FCFS, which the tests exploit; unlike FCFS the
// sojourn of a job depends only on its own size and the load.
type PSServer struct {
	Name string
	k    *sim.Kernel
	svc  func(*Job) float64
	out  Node

	jobs    map[*psJob]struct{}
	lastT   sim.Time
	Sojourn stats.Sample
	// Load is the time-weighted number of resident jobs.
	Load stats.TimeWeighted

	timer sim.Timer
}

type psJob struct {
	j         *Job
	remaining float64 // remaining service requirement
	entered   sim.Time
	done      *sim.Signal
}

// NewPSServer creates a processor-sharing station.
func NewPSServer(k *sim.Kernel, name string, svc func(*Job) float64, out Node) *PSServer {
	ps := &PSServer{Name: name, k: k, svc: svc, out: out, jobs: make(map[*psJob]struct{})}
	ps.Load.Set(k.Now(), 0)
	return ps
}

// Accept admits the job; the calling process blocks until its service
// requirement completes under processor sharing.
func (ps *PSServer) Accept(c *sim.Context, j *Job) {
	req := ps.svc(j)
	if req < 0 {
		panic(fmt.Sprintf("queueing: PS server %q sampled negative service %g", ps.Name, req))
	}
	ps.advance()
	pj := &psJob{j: j, remaining: req, entered: c.Now(), done: sim.NewSignal(ps.k, ps.Name+"-done")}
	ps.jobs[pj] = struct{}{}
	ps.Load.Set(c.Now(), float64(len(ps.jobs)))
	ps.reschedule()
	pj.done.Wait(c)
	ps.Sojourn.Add(c.Now() - pj.entered)
	if ps.out != nil {
		ps.out.Accept(c, j)
	}
}

// advance applies elapsed processing to all resident jobs.
func (ps *PSServer) advance() {
	now := ps.k.Now()
	if len(ps.jobs) > 0 {
		dt := now - ps.lastT
		if dt > 0 {
			rate := 1 / float64(len(ps.jobs))
			for pj := range ps.jobs {
				pj.remaining -= dt * rate
			}
		}
	}
	ps.lastT = now
}

// reschedule cancels any pending completion event and schedules the next.
func (ps *PSServer) reschedule() {
	ps.timer.Cancel()
	ps.timer = sim.Timer{}
	if len(ps.jobs) == 0 {
		return
	}
	var next *psJob
	for pj := range ps.jobs {
		if next == nil || pj.remaining < next.remaining ||
			(pj.remaining == next.remaining && pj.entered < next.entered) {
			next = pj
		}
	}
	dt := next.remaining * float64(len(ps.jobs))
	if dt < 0 {
		dt = 0
	}
	ps.timer = ps.k.Schedule(dt, func() {
		ps.advance()
		// Numerical guard: the chosen job should be (close to) finished.
		delete(ps.jobs, next)
		ps.Load.Set(ps.k.Now(), float64(len(ps.jobs)))
		next.done.Trigger()
		ps.reschedule()
	})
}

// Resident returns the current number of jobs in service.
func (ps *PSServer) Resident() int { return len(ps.jobs) }
