package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// simulateMM1 runs an M/M/1 queue for `horizon` time units and returns the
// measured mean sojourn time and resource utilization.
func simulateMM1(t *testing.T, lambda, mu, horizon float64, seed uint64) (w, util float64, sink *Sink) {
	t.Helper()
	k := sim.NewKernel()
	arr := rng.NewWithStream(seed, 1)
	svc := rng.NewWithStream(seed, 2)
	sink = NewSink("out")
	srv := NewServer(k, "srv", 1, sim.FIFO, func(*Job) float64 { return svc.Exp(1 / mu) }, sink)
	src := NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, srv)
	src.Start()
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return sink.Sojourn.Mean(), srv.Resource().Utilization(k.Now()), sink
}

func TestMM1TheoryKnownValues(t *testing.T) {
	r, err := MM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Rho-0.5) > 1e-12 || math.Abs(r.W-2) > 1e-12 || math.Abs(r.L-1) > 1e-12 {
		t.Errorf("MM1(0.5,1) = %+v", r)
	}
	if _, err := MM1(1, 1); err == nil {
		t.Error("unstable MM1 accepted")
	}
	if _, err := MM1(-1, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestMM1SimulationMatchesTheory(t *testing.T) {
	const lambda, mu = 0.7, 1.0
	theory, err := MM1(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	w, util, sink := simulateMM1(t, lambda, mu, 300000, 99)
	if sink.Count() < 100000 {
		t.Fatalf("too few completions: %d", sink.Count())
	}
	if stats.RelErr(w, theory.W) > 0.05 {
		t.Errorf("sim W = %g, theory %g", w, theory.W)
	}
	if stats.RelErr(util, theory.Rho) > 0.03 {
		t.Errorf("sim ρ = %g, theory %g", util, theory.Rho)
	}
}

func TestMM1LittlesLaw(t *testing.T) {
	// L = λW must hold for the simulated system too.
	const lambda, mu = 0.6, 1.0
	k := sim.NewKernel()
	arr := rng.NewWithStream(7, 1)
	svc := rng.NewWithStream(7, 2)
	sink := NewSink("out")
	srv := NewServer(k, "srv", 1, sim.FIFO, func(*Job) float64 { return svc.Exp(1 / mu) }, sink)
	src := NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, srv)
	src.Start()
	const horizon = 200000
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	// L measured as time-average of (queue + in service).
	l := srv.Resource().QueueLen.Mean(k.Now()) + srv.Resource().Util.Mean(k.Now())
	effLambda := float64(sink.Count()) / horizon
	w := sink.Sojourn.Mean()
	if stats.RelErr(l, effLambda*w) > 0.05 {
		t.Errorf("Little's law violated: L=%g λW=%g", l, effLambda*w)
	}
}

func TestMMCTheoryKnownValues(t *testing.T) {
	// Classic reference: λ=2, μ=1, c=3 ⇒ ErlangC ≈ 0.4444, Wq ≈ 0.4444.
	r, err := MMC(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ErlangC-4.0/9.0) > 1e-9 {
		t.Errorf("ErlangC = %g, want 4/9", r.ErlangC)
	}
	if math.Abs(r.Wq-4.0/9.0) > 1e-9 {
		t.Errorf("Wq = %g, want 4/9", r.Wq)
	}
	// c=1 must reduce to M/M/1.
	r1, err := MMC(0.5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := MM1(0.5, 1)
	if math.Abs(r1.W-m1.W) > 1e-9 {
		t.Errorf("MMC(c=1).W = %g, MM1.W = %g", r1.W, m1.W)
	}
}

func TestMMCSimulationMatchesTheory(t *testing.T) {
	const lambda, mu = 2.4, 1.0
	const c = 3
	theory, err := MMC(lambda, mu, c)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	arr := rng.NewWithStream(13, 1)
	svc := rng.NewWithStream(13, 2)
	sink := NewSink("out")
	srv := NewServer(k, "srv", c, sim.FIFO, func(*Job) float64 { return svc.Exp(1 / mu) }, sink)
	NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, srv).Start()
	if err := k.Run(200000); err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(sink.Sojourn.Mean(), theory.W) > 0.05 {
		t.Errorf("sim W = %g, theory %g", sink.Sojourn.Mean(), theory.W)
	}
}

func TestMD1SimulationMatchesTheory(t *testing.T) {
	const lambda = 0.8
	const svcTime = 1.0
	theory, err := MD1(lambda, svcTime)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	arr := rng.NewWithStream(17, 1)
	sink := NewSink("out")
	srv := NewServer(k, "srv", 1, sim.FIFO, func(*Job) float64 { return svcTime }, sink)
	NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, srv).Start()
	if err := k.Run(200000); err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(sink.Sojourn.Mean(), theory.W) > 0.05 {
		t.Errorf("sim W = %g, theory %g", sink.Sojourn.Mean(), theory.W)
	}
	// M/D/1 must beat M/M/1 at the same load (half the queueing delay).
	mm1, _ := MM1(lambda, 1/svcTime)
	if theory.Wq >= mm1.Wq {
		t.Errorf("M/D/1 Wq %g not below M/M/1 Wq %g", theory.Wq, mm1.Wq)
	}
	if math.Abs(theory.Wq-mm1.Wq/2) > 1e-9 {
		t.Errorf("M/D/1 Wq %g != half of M/M/1 Wq %g", theory.Wq, mm1.Wq)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	err := quick.Check(func(lr, mr uint8) bool {
		lambda := 0.05 + float64(lr%80)/100.0 // 0.05..0.84
		mu := 1.0
		if lambda >= mu {
			return true
		}
		mm1, err1 := MM1(lambda, mu)
		// Exponential service: variance = mean^2.
		mg1, err2 := MG1(lambda, 1/mu, 1/(mu*mu))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(mm1.W-mg1.W) < 1e-9 && math.Abs(mm1.Lq-mg1.Lq) < 1e-9
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestPSServerMeanSojournMatchesTheory(t *testing.T) {
	// M/M/1-PS has the same mean sojourn as M/M/1-FCFS.
	const lambda, mu = 0.7, 1.0
	want, err := MM1PSMeanSojourn(lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	arr := rng.NewWithStream(23, 1)
	svc := rng.NewWithStream(23, 2)
	sink := NewSink("out")
	ps := NewPSServer(k, "ps", func(*Job) float64 { return svc.Exp(1 / mu) }, sink)
	NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, ps).Start()
	if err := k.Run(200000); err != nil {
		t.Fatal(err)
	}
	if sink.Count() < 50000 {
		t.Fatalf("too few completions: %d", sink.Count())
	}
	if stats.RelErr(ps.Sojourn.Mean(), want) > 0.06 {
		t.Errorf("PS mean sojourn = %g, theory %g", ps.Sojourn.Mean(), want)
	}
}

func TestPSServerShortJobsFinishFaster(t *testing.T) {
	// Under PS, conditional sojourn grows with job size: E[T|x] = x/(1-ρ).
	const lambda, mu = 0.5, 1.0
	k := sim.NewKernel()
	arr := rng.NewWithStream(29, 1)
	svc := rng.NewWithStream(29, 2)
	var shortS, longS stats.Sample
	sink := NodeFunc(func(c *sim.Context, j *Job) {
		soj := c.Now() - j.Created
		if j.Attrs["size"] < 0.5 {
			shortS.Add(soj)
		} else if j.Attrs["size"] > 2 {
			longS.Add(soj)
		}
	})
	ps := NewPSServer(k, "ps", func(j *Job) float64 {
		x := svc.Exp(1 / mu)
		j.Attrs = map[string]float64{"size": x}
		return x
	}, sink)
	NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, ps).Start()
	if err := k.Run(50000); err != nil {
		t.Fatal(err)
	}
	if shortS.N() < 100 || longS.N() < 100 {
		t.Fatalf("not enough stratified observations: %d/%d", shortS.N(), longS.N())
	}
	if shortS.Mean() >= longS.Mean() {
		t.Errorf("short jobs (%g) not faster than long jobs (%g) under PS",
			shortS.Mean(), longS.Mean())
	}
}

func TestDelayIsPureLatency(t *testing.T) {
	k := sim.NewKernel()
	sink := NewSink("out")
	d := NewDelay("wire", func(*Job) float64 { return 25 }, sink)
	for i := 0; i < 10; i++ {
		k.Spawn("j", func(c *sim.Context) {
			d.Accept(c, &Job{Created: c.Now()})
		})
	}
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	// All 10 jobs traverse simultaneously (no queueing): each sojourn = 25.
	if sink.Sojourn.Min() != 25 || sink.Sojourn.Max() != 25 {
		t.Errorf("delay sojourns = [%g, %g], want exactly 25",
			sink.Sojourn.Min(), sink.Sojourn.Max())
	}
}

func TestRouterClassBased(t *testing.T) {
	k := sim.NewKernel()
	s0, s1 := NewSink("c0"), NewSink("c1")
	r := NewRouter("byclass", func(j *Job) int { return j.Class }, s0, s1)
	k.Spawn("p", func(c *sim.Context) {
		r.Accept(c, &Job{Class: 0, Created: c.Now()})
		r.Accept(c, &Job{Class: 1, Created: c.Now()})
		r.Accept(c, &Job{Class: 1, Created: c.Now()})
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if s0.Count() != 1 || s1.Count() != 2 {
		t.Errorf("counts = %d/%d, want 1/2", s0.Count(), s1.Count())
	}
}

func TestProbRouterFrequencies(t *testing.T) {
	k := sim.NewKernel()
	st := rng.New(31)
	s0, s1 := NewSink("a"), NewSink("b")
	r := NewRouter("prob", ProbRouter(st, []float64{0.25, 0.75}), s0, s1)
	k.Spawn("p", func(c *sim.Context) {
		for i := 0; i < 40000; i++ {
			r.Accept(c, &Job{Created: c.Now()})
		}
	})
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	frac := float64(s0.Count()) / 40000
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("P(route 0) = %g, want 0.25", frac)
	}
}

func TestSourceLimit(t *testing.T) {
	k := sim.NewKernel()
	sink := NewSink("out")
	src := NewSource(k, "in", func() float64 { return 1 }, sink)
	src.Limit = 7
	src.Start()
	if _, err := k.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 7 {
		t.Errorf("generated %d, want 7", sink.Count())
	}
}

func TestJacksonTandem(t *testing.T) {
	// Tandem of two M/M/1 queues: λ=0.5 into node 0, all flow to node 1.
	gamma := []float64{0.5, 0}
	P := [][]float64{{0, 1}, {0, 0}}
	nodes := []JacksonNode{{Mu: 1, Servers: 1}, {Mu: 2, Servers: 1}}
	res, err := Jackson(gamma, P, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda[1]-0.5) > 1e-9 {
		t.Errorf("node 1 rate = %g, want 0.5", res.Lambda[1])
	}
	w0, _ := MM1(0.5, 1)
	w1, _ := MM1(0.5, 2)
	if math.Abs(res.W[0]-w0.W) > 1e-9 || math.Abs(res.W[1]-w1.W) > 1e-9 {
		t.Errorf("Jackson W = %v", res.W)
	}
}

func TestJacksonFeedback(t *testing.T) {
	// Single node with feedback probability 0.5: effective λ = γ/(1-0.5).
	gamma := []float64{0.3}
	P := [][]float64{{0.5}}
	nodes := []JacksonNode{{Mu: 1, Servers: 1}}
	res, err := Jackson(gamma, P, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda[0]-0.6) > 1e-9 {
		t.Errorf("effective λ = %g, want 0.6", res.Lambda[0])
	}
}

func TestKingmanExactForMM1(t *testing.T) {
	// With ca²=cs²=1 (Poisson arrivals, exponential service) Kingman is
	// exact: Wq = ρ/(1−ρ)·E[S].
	const lambda, mu = 0.7, 1.0
	want, _ := MM1(lambda, mu)
	got, err := Kingman(lambda, 1/mu, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want.Wq) > 1e-12 {
		t.Errorf("Kingman = %g, M/M/1 Wq = %g", got, want.Wq)
	}
}

func TestKingmanMatchesMD1(t *testing.T) {
	// Deterministic service: cs²=0 halves the M/M/1 wait — exactly M/D/1.
	const lambda = 0.8
	md1, _ := MD1(lambda, 1)
	got, err := Kingman(lambda, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-md1.Wq) > 1e-12 {
		t.Errorf("Kingman(cs2=0) = %g, M/D/1 Wq = %g", got, md1.Wq)
	}
}

func TestKingmanPredictsErlangArrivalSim(t *testing.T) {
	// E2/M/1: Erlang-2 interarrivals (ca² = 0.5). Kingman approximates;
	// the simulation should land within ~15% at moderate load.
	const mu = 1.0
	const meanIA = 1.0 / 0.7
	k := sim.NewKernel()
	arr := rng.NewWithStream(51, 1)
	svc := rng.NewWithStream(51, 2)
	sink := NewSink("out")
	srv := NewServer(k, "srv", 1, sim.FIFO, func(*Job) float64 { return svc.Exp(1 / mu) }, sink)
	NewSource(k, "in", func() float64 { return arr.Erlang(2, meanIA/2) }, srv).Start()
	if err := k.Run(200000); err != nil {
		t.Fatal(err)
	}
	simWq := sink.Sojourn.Mean() - 1/mu
	pred, err := Kingman(0.7, 1/mu, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(simWq, pred) > 0.15 {
		t.Errorf("sim Wq = %g, Kingman = %g", simWq, pred)
	}
	// Lower arrival variability must reduce waiting vs M/M/1.
	mm1, _ := MM1(0.7, mu)
	if simWq >= mm1.Wq {
		t.Errorf("E2/M/1 wait %g not below M/M/1 %g", simWq, mm1.Wq)
	}
}

func TestAllenCunneenReducesToMMC(t *testing.T) {
	ac, err := AllenCunneen(2, 1, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mmc, _ := MMC(2, 1, 3)
	if math.Abs(ac-mmc.Wq) > 1e-12 {
		t.Errorf("AllenCunneen(1,1) = %g, M/M/c Wq = %g", ac, mmc.Wq)
	}
	if _, err := AllenCunneen(2, 1, 3, -1, 1); err == nil {
		t.Error("negative variability accepted")
	}
}

func TestServerNegativeServicePanics(t *testing.T) {
	k := sim.NewKernel()
	srv := NewServer(k, "bad", 1, sim.FIFO, func(*Job) float64 { return -1 }, nil)
	k.Spawn("j", func(c *sim.Context) {
		srv.Accept(c, &Job{Created: c.Now()})
	})
	if err := k.Run(10); err == nil {
		t.Fatal("expected error from negative service time")
	}
}

func TestTandemNetworkSimulation(t *testing.T) {
	// End-to-end: source -> server -> delay -> server -> sink. Mean sojourn
	// should approximate the Jackson tandem plus the fixed delay.
	const lambda = 0.4
	k := sim.NewKernel()
	arr := rng.NewWithStream(41, 1)
	s1 := rng.NewWithStream(41, 2)
	s2 := rng.NewWithStream(41, 3)
	sink := NewSink("out")
	srv2 := NewServer(k, "srv2", 1, sim.FIFO, func(*Job) float64 { return s2.Exp(1) }, sink)
	wire := NewDelay("wire", func(*Job) float64 { return 10 }, srv2)
	srv1 := NewServer(k, "srv1", 1, sim.FIFO, func(*Job) float64 { return s1.Exp(0.5) }, wire)
	NewSource(k, "in", func() float64 { return arr.Exp(1 / lambda) }, srv1).Start()
	if err := k.Run(100000); err != nil {
		t.Fatal(err)
	}
	w1, _ := MM1(lambda, 2)
	w2, _ := MM1(lambda, 1)
	want := w1.W + 10 + w2.W
	if stats.RelErr(sink.Sojourn.Mean(), want) > 0.06 {
		t.Errorf("tandem sojourn = %g, want ~%g", sink.Sojourn.Mean(), want)
	}
}
