package queueing

import (
	"fmt"
	"math"
)

// This file holds the exact steady-state results for the classical queues.
// They serve two purposes: validating the DES kernel (simulate M/M/1 and
// compare with theory — the strongest correctness check a queueing
// simulator can get) and providing fast analytic estimates in the model
// sanity checks.

// MM1 returns steady-state metrics for an M/M/1 queue with arrival rate
// lambda and service rate mu. It returns an error when the queue is
// unstable (lambda >= mu).
type MM1Result struct {
	Rho float64 // utilization λ/μ
	L   float64 // mean number in system
	Lq  float64 // mean number in queue
	W   float64 // mean time in system (sojourn)
	Wq  float64 // mean waiting time
	P0  float64 // probability of empty system
}

// MM1 evaluates the M/M/1 formulas.
func MM1(lambda, mu float64) (MM1Result, error) {
	if lambda <= 0 || mu <= 0 {
		return MM1Result{}, fmt.Errorf("queueing: MM1 with non-positive rates λ=%g μ=%g", lambda, mu)
	}
	rho := lambda / mu
	if rho >= 1 {
		return MM1Result{}, fmt.Errorf("queueing: MM1 unstable (ρ=%g)", rho)
	}
	return MM1Result{
		Rho: rho,
		L:   rho / (1 - rho),
		Lq:  rho * rho / (1 - rho),
		W:   1 / (mu - lambda),
		Wq:  rho / (mu - lambda),
		P0:  1 - rho,
	}, nil
}

// MMCResult holds M/M/c steady-state metrics.
type MMCResult struct {
	Rho     float64 // per-server utilization λ/(cμ)
	L       float64
	Lq      float64
	W       float64
	Wq      float64
	ErlangC float64 // probability an arrival must wait
}

// MMC evaluates the M/M/c formulas with c servers.
func MMC(lambda, mu float64, c int) (MMCResult, error) {
	if lambda <= 0 || mu <= 0 || c <= 0 {
		return MMCResult{}, fmt.Errorf("queueing: MMC with invalid parameters λ=%g μ=%g c=%d", lambda, mu, c)
	}
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(c)
	if rho >= 1 {
		return MMCResult{}, fmt.Errorf("queueing: MMC unstable (ρ=%g)", rho)
	}
	// Erlang C via the numerically stable iterative form.
	// B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1))  (Erlang B recursion)
	bk := 1.0
	for k := 1; k <= c; k++ {
		bk = a * bk / (float64(k) + a*bk)
	}
	erlC := bk / (1 - rho*(1-bk))
	lq := erlC * rho / (1 - rho)
	wq := lq / lambda
	w := wq + 1/mu
	return MMCResult{
		Rho:     rho,
		L:       lq + a,
		Lq:      lq,
		W:       w,
		Wq:      wq,
		ErlangC: erlC,
	}, nil
}

// MG1 evaluates the Pollaczek–Khinchine formulas for an M/G/1 queue with
// arrival rate lambda and a general service distribution with the given
// mean and variance.
type MG1Result struct {
	Rho float64
	L   float64
	Lq  float64
	W   float64
	Wq  float64
}

// MG1 evaluates the Pollaczek–Khinchine mean-value formulas.
func MG1(lambda, svcMean, svcVar float64) (MG1Result, error) {
	if lambda <= 0 || svcMean <= 0 || svcVar < 0 {
		return MG1Result{}, fmt.Errorf("queueing: MG1 with invalid parameters")
	}
	rho := lambda * svcMean
	if rho >= 1 {
		return MG1Result{}, fmt.Errorf("queueing: MG1 unstable (ρ=%g)", rho)
	}
	es2 := svcVar + svcMean*svcMean // E[S^2]
	wq := lambda * es2 / (2 * (1 - rho))
	w := wq + svcMean
	return MG1Result{
		Rho: rho,
		L:   lambda * w,
		Lq:  lambda * wq,
		W:   w,
		Wq:  wq,
	}, nil
}

// MD1 evaluates the M/D/1 queue (deterministic service) via MG1 with zero
// service variance.
func MD1(lambda, svcTime float64) (MG1Result, error) {
	return MG1(lambda, svcTime, 0)
}

// MM1PSMeanSojourn returns the mean sojourn time of M/M/1 under egalitarian
// processor sharing, which equals the FCFS value 1/(μ−λ); the conditional
// sojourn of a job of size x is x/(1−ρ).
func MM1PSMeanSojourn(lambda, mu float64) (float64, error) {
	r, err := MM1(lambda, mu)
	if err != nil {
		return 0, err
	}
	return r.W, nil
}

// LittlesLawL returns L = λW — used as an invariant check in tests.
func LittlesLawL(lambda, w float64) float64 { return lambda * w }

// Kingman returns the classical G/G/1 heavy-traffic approximation for mean
// waiting time: Wq ≈ (ρ/(1−ρ)) · ((ca² + cs²)/2) · E[S], where ca and cs
// are the coefficients of variation of interarrival and service times.
func Kingman(lambda, svcMean, ca2, cs2 float64) (float64, error) {
	if lambda <= 0 || svcMean <= 0 || ca2 < 0 || cs2 < 0 {
		return 0, fmt.Errorf("queueing: Kingman with invalid parameters")
	}
	rho := lambda * svcMean
	if rho >= 1 {
		return 0, fmt.Errorf("queueing: Kingman unstable (ρ=%g)", rho)
	}
	return rho / (1 - rho) * (ca2 + cs2) / 2 * svcMean, nil
}

// AllenCunneen extends the Kingman form to c servers using the M/M/c
// waiting time scaled by the variability factor.
func AllenCunneen(lambda, mu float64, c int, ca2, cs2 float64) (float64, error) {
	if ca2 < 0 || cs2 < 0 {
		return 0, fmt.Errorf("queueing: AllenCunneen with negative variability")
	}
	r, err := MMC(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	return r.Wq * (ca2 + cs2) / 2, nil
}

// JacksonNode describes one station of an open Jackson network.
type JacksonNode struct {
	Mu      float64 // service rate
	Servers int
}

// JacksonResult holds per-node results of an open Jackson network analysis.
type JacksonResult struct {
	Lambda []float64 // effective arrival rate per node
	W      []float64 // mean sojourn per node visit
	L      []float64 // mean number at node
}

// Jackson solves an open Jackson network: external arrival rates gamma,
// routing matrix P (P[i][j] = probability a job leaving i goes to j; row
// sums <= 1, remainder exits), and per-node service. Effective rates solve
// λ = γ + λP by fixed-point iteration.
func Jackson(gamma []float64, P [][]float64, nodes []JacksonNode) (JacksonResult, error) {
	n := len(nodes)
	if len(gamma) != n || len(P) != n {
		return JacksonResult{}, fmt.Errorf("queueing: Jackson dimension mismatch")
	}
	lambda := append([]float64(nil), gamma...)
	for iter := 0; iter < 10000; iter++ {
		next := append([]float64(nil), gamma...)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += lambda[i] * P[i][j]
			}
		}
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - lambda[i])
		}
		lambda = next
		if diff < 1e-12 {
			break
		}
	}
	res := JacksonResult{Lambda: lambda, W: make([]float64, n), L: make([]float64, n)}
	for i, node := range nodes {
		if node.Servers <= 1 {
			r, err := MM1(lambda[i], node.Mu)
			if err != nil {
				return JacksonResult{}, fmt.Errorf("node %d: %w", i, err)
			}
			res.W[i], res.L[i] = r.W, r.L
		} else {
			r, err := MMC(lambda[i], node.Mu, node.Servers)
			if err != nil {
				return JacksonResult{}, fmt.Errorf("node %d: %w", i, err)
			}
			res.W[i], res.L[i] = r.W, r.L
		}
	}
	return res, nil
}
