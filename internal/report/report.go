// Package report renders experiment output: aligned ASCII tables, CSV
// files, Markdown tables, and ASCII line charts that stand in for the
// paper's figures on a terminal.
package report

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

// AddStringRow appends a pre-formatted row.
func (t *Table) AddStringRow(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return FormatFloat(v)
	case float32:
		return FormatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", c)
	}
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with 4 significant digits, large magnitudes in scientific
// notation.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return strconv.FormatFloat(v, 'f', 0, 64)
	case math.Abs(v) >= 1e7 || (v != 0 && math.Abs(v) < 1e-3):
		return strconv.FormatFloat(v, 'e', 3, 64)
	default:
		return strconv.FormatFloat(v, 'g', 5, 64)
	}
}

// pad64 backs writePad: padding is written by slicing a constant instead
// of materializing a fresh strings.Repeat string per cell.
const pad64 = "                                                                "

// writePad writes n spaces.
func writePad(b *strings.Builder, n int) {
	for n > len(pad64) {
		b.WriteString(pad64)
		n -= len(pad64)
	}
	if n > 0 {
		b.WriteString(pad64[:n])
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	lineWidth := 0
	for _, w := range widths {
		lineWidth += w + 2
	}
	var b strings.Builder
	b.Grow(len(t.Title) + 1 + (len(t.rows)+2)*(lineWidth+1))
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			writePad(&b, widths[i]-len(cell))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	b.WriteString(strings.Repeat("-", lineWidth-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	size := 0
	for _, h := range t.headers {
		size += len(h) + 1
	}
	var b strings.Builder
	b.Grow(size * (len(t.rows) + 1) * 2)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.headers)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderHistogram draws a stats.Histogram-compatible set of bucket counts
// as horizontal ASCII bars. labels[i] names bucket i (typically its
// range); counts[i] is its height. maxWidth bounds the longest bar.
func RenderHistogram(w io.Writer, title string, labels []string, counts []int64, maxWidth int) error {
	if len(labels) != len(counts) {
		return fmt.Errorf("report: %d labels for %d counts", len(labels), len(counts))
	}
	if len(counts) == 0 {
		return fmt.Errorf("report: empty histogram")
	}
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var peak int64
	labelW := 0
	for i, c := range counts {
		if c > peak {
			peak = c
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, c := range counts {
		bar := 0
		if peak > 0 {
			bar = int(float64(c) / float64(peak) * float64(maxWidth))
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%*s |%s %d\n", labelW, labels[i], strings.Repeat("#", bar), c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// HistogramLabels builds range labels for a fixed-width histogram over
// [lo, hi) with n buckets.
func HistogramLabels(lo, hi float64, n int) []string {
	out := make([]string, n)
	width := (hi - lo) / float64(n)
	for i := range out {
		out[i] = fmt.Sprintf("[%s, %s)", FormatFloat(lo+float64(i)*width), FormatFloat(lo+float64(i+1)*width))
	}
	return out
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders multiple series as an ASCII scatter/line chart — the
// terminal stand-in for the paper's figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); LogX plots log10(x).
	LogY, LogX    bool
	Width, Height int
	series        []Series
}

// NewChart creates a chart with default 72x20 geometry.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(s Series) error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x and %d y", s.Name, len(s.X), len(s.Y))
	}
	c.series = append(c.series, s)
	return nil
}

// seriesMarks assigns plotting glyphs round-robin.
var seriesMarks = []byte("*o+x#@%&=~")

// Render draws the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: chart %q has no series", c.Title)
	}
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return fmt.Errorf("report: chart %q has no finite points", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// One backing array for the whole grid instead of a string conversion
	// per row.
	backing := make([]byte, c.Height*c.Width)
	for i := range backing {
		backing[i] = ' '
	}
	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = backing[i*c.Width : (i+1)*c.Width]
	}
	for si, s := range c.series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(c.Width-1)))
			row := c.Height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(c.Height-1)))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	b.Grow(c.Height*(c.Width+2) + len(c.Title) + 64*(len(c.series)+3))
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yloTxt, yhiTxt := FormatFloat(ymin), FormatFloat(ymax)
	if c.LogY {
		yloTxt = "10^" + yloTxt
		yhiTxt = "10^" + yhiTxt
	}
	fmt.Fprintf(&b, "%s (top=%s, bottom=%s)\n", c.YLabel, yhiTxt, yloTxt)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", c.Width) + "\n")
	xloTxt, xhiTxt := FormatFloat(xmin), FormatFloat(xmax)
	if c.LogX {
		xloTxt = "10^" + xloTxt
		xhiTxt = "10^" + xhiTxt
	}
	fmt.Fprintf(&b, " %s: %s .. %s\n", c.XLabel, xloTxt, xhiTxt)
	for si, s := range c.series {
		fmt.Fprintf(&b, "   %c = %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
