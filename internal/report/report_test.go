package report

import (
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 400000000.0)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "1.5", "4.000e+08"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col")
	tb.AddRow("short")
	tb.AddRow("a-much-longer-cell")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	width := len(lines[2])
	for _, ln := range lines[2:] {
		if len(ln) != width {
			t.Errorf("misaligned row %q (want width %d)", ln, width)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddStringRow("1", `has "quote", and comma`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"has ""quote"", and comma"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "h1", "h2")
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| h1 | h2 |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{1.5, "1.5"},
		{400000000, "4.000e+08"},
		{0.0001, "1.000e-04"},
		{3.14159265, "3.1416"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderHistogram(t *testing.T) {
	var sb strings.Builder
	labels := []string{"a", "bb", "ccc"}
	counts := []int64{10, 0, 5}
	if err := RenderHistogram(&sb, "title", labels, counts, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Peak bar is 20 wide; zero count draws no bar; nonzero small counts
	// draw at least one glyph.
	if strings.Count(lines[1], "#") != 20 {
		t.Errorf("peak bar wrong: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 0 {
		t.Errorf("zero bar wrong: %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 10 {
		t.Errorf("half bar wrong: %q", lines[3])
	}
}

func TestRenderHistogramErrors(t *testing.T) {
	var sb strings.Builder
	if err := RenderHistogram(&sb, "", []string{"a"}, []int64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := RenderHistogram(&sb, "", nil, nil, 10); err == nil {
		t.Error("empty histogram accepted")
	}
}

func TestHistogramLabels(t *testing.T) {
	labels := HistogramLabels(0, 10, 2)
	if labels[0] != "[0, 5)" || labels[1] != "[5, 10)" {
		t.Errorf("labels = %v", labels)
	}
}

func TestChartRender(t *testing.T) {
	ch := NewChart("Gain", "N", "gain")
	err := ch.Add(Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Gain", "gain", "N: 1 .. 3", "* = a"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs plotted")
	}
}

func TestChartLogScales(t *testing.T) {
	ch := NewChart("L", "x", "y")
	ch.LogX, ch.LogY = true, true
	if err := ch.Add(Series{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 100, 10000}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10^") {
		t.Errorf("log chart missing 10^ annotation:\n%s", sb.String())
	}
}

func TestChartMismatchedSeries(t *testing.T) {
	ch := NewChart("bad", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestChartEmpty(t *testing.T) {
	ch := NewChart("empty", "x", "y")
	var sb strings.Builder
	if err := ch.Render(&sb); err == nil {
		t.Error("empty chart rendered without error")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	ch := NewChart("const", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1, 2}, Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestChartMultiSeriesDistinctMarks(t *testing.T) {
	ch := NewChart("multi", "x", "y")
	_ = ch.Add(Series{Name: "one", X: []float64{1, 2}, Y: []float64{1, 2}})
	_ = ch.Add(Series{Name: "two", X: []float64{1, 2}, Y: []float64{2, 1}})
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "* = one") || !strings.Contains(out, "o = two") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

// errWriter fails every write with a fixed error.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestRenderWriterErrorsPropagate(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(1, 2)
	if err := tb.Render(errWriter{}); err == nil {
		t.Error("Table.Render swallowed writer error")
	}
	if err := tb.RenderCSV(errWriter{}); err == nil {
		t.Error("Table.RenderCSV swallowed writer error")
	}
	if err := tb.RenderMarkdown(errWriter{}); err == nil {
		t.Error("Table.RenderMarkdown swallowed writer error")
	}
	ch := NewChart("c", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1}, Y: []float64{2}}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Render(errWriter{}); err == nil {
		t.Error("Chart.Render swallowed writer error")
	}
	if err := RenderHistogram(errWriter{}, "h", []string{"a"}, []int64{1}, 10); err == nil {
		t.Error("RenderHistogram swallowed writer error")
	}
}

func TestCSVQuotingEdges(t *testing.T) {
	tb := NewTable("", "col")
	tb.AddStringRow(`say "hi", ok?`)
	tb.AddStringRow("two\nlines")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"say ""hi"", ok?"`) {
		t.Errorf("quote/comma cell not escaped: %q", out)
	}
	if !strings.Contains(out, "\"two\nlines\"") {
		t.Errorf("newline cell not quoted: %q", out)
	}
}

func TestFormatFloatEdges(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "Inf",
		math.Inf(-1): "Inf",
		0:            "0",
		-42:          "-42",
		12345678:     "1.235e+07",
		0.0005:       "5.000e-04",
		-0.25:        "-0.25",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestChartSkipsNonFinitePoints(t *testing.T) {
	ch := NewChart("c", "x", "y")
	if err := ch.Add(Series{Name: "s",
		X: []float64{1, 2, 3, 4},
		Y: []float64{1, math.NaN(), math.Inf(1), 4}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("finite points not plotted")
	}
}

func TestChartAllNonFinite(t *testing.T) {
	ch := NewChart("c", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1}, Y: []float64{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Render(io.Discard); err == nil {
		t.Error("chart with no finite points rendered")
	}
}

func TestChartLogScaleFiltersNonPositive(t *testing.T) {
	// log10 of a non-positive value is non-finite and must be skipped,
	// not plotted or folded into the axis range.
	ch := NewChart("c", "x", "y")
	ch.LogY = true
	if err := ch.Add(Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{0, 10, 100}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "top=10^2, bottom=10^1") {
		t.Errorf("log axis range should ignore the zero point:\n%s", sb.String())
	}
}

func TestRenderHistogramDefaultsAndMinBar(t *testing.T) {
	var sb strings.Builder
	// maxWidth <= 0 falls back to the default; a tiny nonzero count still
	// draws a one-character bar.
	if err := RenderHistogram(&sb, "h", []string{"big", "tiny", "zero"},
		[]int64{1000000, 1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("unexpected layout:\n%s", sb.String())
	}
	if !strings.Contains(lines[2], "|# 1") {
		t.Errorf("tiny count lost its bar: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero count drew a bar: %q", lines[3])
	}
}
