package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 400000000.0)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "1.5", "4.000e+08"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col")
	tb.AddRow("short")
	tb.AddRow("a-much-longer-cell")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	width := len(lines[2])
	for _, ln := range lines[2:] {
		if len(ln) != width {
			t.Errorf("misaligned row %q (want width %d)", ln, width)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddStringRow("1", `has "quote", and comma`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"has ""quote"", and comma"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "h1", "h2")
	tb.AddRow(1, 2)
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| h1 | h2 |") || !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown wrong:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{1.5, "1.5"},
		{400000000, "4.000e+08"},
		{0.0001, "1.000e-04"},
		{3.14159265, "3.1416"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.in); got != c.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderHistogram(t *testing.T) {
	var sb strings.Builder
	labels := []string{"a", "bb", "ccc"}
	counts := []int64{10, 0, 5}
	if err := RenderHistogram(&sb, "title", labels, counts, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Peak bar is 20 wide; zero count draws no bar; nonzero small counts
	// draw at least one glyph.
	if strings.Count(lines[1], "#") != 20 {
		t.Errorf("peak bar wrong: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 0 {
		t.Errorf("zero bar wrong: %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 10 {
		t.Errorf("half bar wrong: %q", lines[3])
	}
}

func TestRenderHistogramErrors(t *testing.T) {
	var sb strings.Builder
	if err := RenderHistogram(&sb, "", []string{"a"}, []int64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := RenderHistogram(&sb, "", nil, nil, 10); err == nil {
		t.Error("empty histogram accepted")
	}
}

func TestHistogramLabels(t *testing.T) {
	labels := HistogramLabels(0, 10, 2)
	if labels[0] != "[0, 5)" || labels[1] != "[5, 10)" {
		t.Errorf("labels = %v", labels)
	}
}

func TestChartRender(t *testing.T) {
	ch := NewChart("Gain", "N", "gain")
	err := ch.Add(Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Gain", "gain", "N: 1 .. 3", "* = a"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs plotted")
	}
}

func TestChartLogScales(t *testing.T) {
	ch := NewChart("L", "x", "y")
	ch.LogX, ch.LogY = true, true
	if err := ch.Add(Series{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 100, 10000}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "10^") {
		t.Errorf("log chart missing 10^ annotation:\n%s", sb.String())
	}
}

func TestChartMismatchedSeries(t *testing.T) {
	ch := NewChart("bad", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestChartEmpty(t *testing.T) {
	ch := NewChart("empty", "x", "y")
	var sb strings.Builder
	if err := ch.Render(&sb); err == nil {
		t.Error("empty chart rendered without error")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	ch := NewChart("const", "x", "y")
	if err := ch.Add(Series{Name: "s", X: []float64{1, 2}, Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestChartMultiSeriesDistinctMarks(t *testing.T) {
	ch := NewChart("multi", "x", "y")
	_ = ch.Add(Series{Name: "one", X: []float64{1, 2}, Y: []float64{1, 2}})
	_ = ch.Add(Series{Name: "two", X: []float64{1, 2}, Y: []float64{2, 1}})
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "* = one") || !strings.Contains(out, "o = two") {
		t.Errorf("legend wrong:\n%s", out)
	}
}
