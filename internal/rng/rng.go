// Package rng provides reproducible pseudo-random number generation and
// random-variate generation for the discrete-event simulation models in this
// repository.
//
// The paper's substrate (SES/Workbench) drove its statistical parametric
// models from independent, seedable random streams. We reproduce that with a
// PCG-XSL-RR 128/64 generator (O'Neill, 2014) implemented from scratch on two
// uint64 halves, plus SplitMix64 for seeding and cheap auxiliary streams.
// Every model in this repository takes an explicit *rng.Stream so experiments
// are deterministic given a seed.
package rng

import "math"

// multiplier for the 128-bit PCG LCG step (PCG_DEFAULT_MULTIPLIER_128).
const (
	pcgMulHi = 2549297995355413924
	pcgMulLo = 4865540595714422341
)

// Stream is a deterministic pseudo-random stream. It implements the
// PCG-XSL-RR 128/64 generator: a 128-bit linear congruential state advanced
// per output, with an xor-shift-low + random-rotate output function yielding
// 64 bits per step. Distinct stream increments give statistically
// independent sequences from the same seed.
//
// The zero value is not ready for use; construct streams with New or
// NewWithStream.
type Stream struct {
	hi, lo   uint64 // 128-bit LCG state
	incHi    uint64 // stream increment (must be odd in the low half)
	incLo    uint64
	haveNorm bool    // cached second normal variate (polar method)
	norm     float64 // the cached variate
}

// New returns a Stream seeded with seed on the default stream (stream 0).
func New(seed uint64) *Stream { return NewWithStream(seed, 0) }

// NewWithStream returns a Stream seeded with seed on the given stream
// number. Streams with different ids are independent even for equal seeds.
func NewWithStream(seed, stream uint64) *Stream {
	s := &Stream{}
	s.Reseed(seed, stream)
	return s
}

// Reseed re-initializes s in place, exactly as NewWithStream(seed, stream)
// would, but without allocating. It is the tool for keeping per-entity
// streams in a value slab that model loops reuse across runs and
// replications instead of allocating one Stream per entity per run.
func (s *Stream) Reseed(seed, stream uint64) {
	sm := SplitMix64{State: seed}
	// Derive the 128-bit increment from the stream id; force it odd.
	sm2 := SplitMix64{State: stream ^ 0x9e3779b97f4a7c15}
	s.incHi = sm2.Next()
	s.incLo = sm2.Next() | 1
	s.haveNorm, s.norm = false, 0
	// Standard PCG seeding: state = 0, advance, add seed material, advance.
	s.hi, s.lo = 0, 0
	s.step()
	s.lo, s.hi = add128(s.lo, s.hi, sm.Next(), sm.Next())
	s.step()
}

// Split returns a new Stream derived deterministically from s; the returned
// stream is independent of the future output of s. It is the idiomatic way
// to hand sub-models their own streams.
func (s *Stream) Split() *Stream {
	return NewWithStream(s.Uint64(), s.Uint64()|1)
}

// step advances the 128-bit LCG state.
func (s *Stream) step() {
	// state = state*mul + inc (mod 2^128)
	lo, hi := mul128(s.lo, s.hi, pcgMulLo, pcgMulHi)
	s.lo, s.hi = add128(lo, hi, s.incLo, s.incHi)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	s.step()
	// XSL-RR output: xor the halves, rotate by the top 6 bits of state.
	x := s.hi ^ s.lo
	rot := uint(s.hi >> 58)
	return x>>rot | x<<((64-rot)&63)
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the 128-bit product.
	for {
		v := s.Uint64()
		hi, lo := mulWide(v, n)
		if lo >= n || lo >= -n%n { // lo >= (2^64 - n) mod n  ⇒ unbiased
			return hi
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform float64 in (0, 1); never exactly 0.
// Useful for -log(u) transforms.
func (s *Stream) Float64Open() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return u
		}
	}
}

// Bool returns true with probability 0.5.
func (s *Stream) Bool() bool { return s.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed variate with the given mean
// (mean = 1/rate). It panics if mean <= 0.
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with mean <= 0")
	}
	return -mean * math.Log(s.Float64Open())
}

// ExpRate returns an exponential variate with the given rate λ.
func (s *Stream) ExpRate(rate float64) float64 { return s.Exp(1 / rate) }

// Normal returns a normally distributed variate with mean mu and standard
// deviation sigma, using the Marsaglia polar method with caching.
func (s *Stream) Normal(mu, sigma float64) float64 {
	if s.haveNorm {
		s.haveNorm = false
		return mu + sigma*s.norm
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.norm = v * f
		s.haveNorm = true
		return mu + sigma*u*f
	}
}

// LogNormal returns a lognormally distributed variate where the underlying
// normal has mean mu and standard deviation sigma.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Erlang returns an Erlang-k variate with the given per-stage mean
// (total mean = k * stageMean). It panics if k <= 0.
func (s *Stream) Erlang(k int, stageMean float64) float64 {
	if k <= 0 {
		panic("rng: Erlang with k <= 0")
	}
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= s.Float64Open()
	}
	return -stageMean * math.Log(prod)
}

// Gamma returns a gamma-distributed variate with shape alpha and scale
// theta, using the Marsaglia–Tsang method. It panics if alpha <= 0 or
// theta <= 0.
func (s *Stream) Gamma(alpha, theta float64) float64 {
	if alpha <= 0 || theta <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if alpha < 1 {
		// Boost: gamma(a) = gamma(a+1) * U^(1/a)
		u := s.Float64Open()
		return s.Gamma(alpha+1, theta) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0, 1, 2, ...}). It panics unless 0 < p <= 1. For the
// moderate-p regime the simulation hot loops live in, the variate is
// inverted by recursive probability multiplication — one uniform draw and
// ~1/p multiplications, no logarithms; tiny p falls back to logarithmic
// inversion, whose cost does not grow as the mean does.
func (s *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p out of (0, 1]")
	}
	if p == 1 {
		return 0
	}
	if p >= 0.1 {
		// Inversion by multiplication: walk the CDF with the ratio
		// P(k+1)/P(k) = q. The iteration count is bounded: once the tail
		// mass q^k drops below the uniform's resolution the loop has
		// already exited (u < 1 strictly).
		q := 1 - p
		r := p
		u := s.Float64Open()
		k := 0
		for u > r {
			u -= r
			r *= q
			k++
			if r == 0 {
				// Accumulated rounding exhausted the mass; clamp.
				return k
			}
		}
		return k
	}
	u := s.Float64Open()
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Poisson returns a Poisson-distributed variate with the given mean, using
// inversion for small means and the PTRS transformed-rejection method
// fallback via normal approximation refinement for large means.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth/inversion by multiplication.
		limit := math.Exp(-mean)
		prod := s.Float64Open()
		n := 0
		for prod > limit {
			prod *= s.Float64Open()
			n++
		}
		return n
	}
	// Split: Poisson(m) = Poisson(m/2) + Poisson(m/2) keeps the inversion
	// path numerically safe for large means while remaining exact.
	half := mean / 2
	return s.Poisson(half) + s.Poisson(mean-half)
}

// Binomial returns the number of successes in n Bernoulli(p) trials. Exact
// (BTPE-free) sampling: CDF inversion by recursive probability ratios (the
// classic BINV algorithm — one uniform draw and O(n·p) multiplications, no
// logarithms) for small n·p, and a normal approximation with continuity
// correction only above n·p·(1−p) > 1000, where its error is far below the
// simulation noise floor.
func (s *Stream) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic("rng: Binomial with n < 0")
	case p <= 0 || n == 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	np := float64(n) * p
	switch {
	case np <= 30 || n <= 64:
		return s.binv(n, p)
	default:
		v := float64(n) * p * (1 - p)
		if v <= 1000 {
			// Split to keep each half in an exactly-sampled regime.
			h := n / 2
			return s.Binomial(h, p) + s.Binomial(n-h, p)
		}
		x := math.Round(s.Normal(np, math.Sqrt(v)))
		if x < 0 {
			x = 0
		}
		if x > float64(n) {
			x = float64(n)
		}
		return int(x)
	}
}

// binv inverts the Binomial(n, p) CDF by walking it with the recursive
// ratio P(k+1)/P(k) = (n−k)/(k+1) · p/q. Requires 0 < p <= 0.5 and small
// n·p (so that P(0) = qⁿ ≳ e⁻⁶⁰ stays comfortably normal and the expected
// walk length ≈ n·p stays short).
func (s *Stream) binv(n int, p float64) int {
	q := 1 - p
	ratio := p / q
	r := powN(q, n)
	u := s.Float64Open()
	k := 0
	for u > r {
		u -= r
		k++
		if k > n {
			// Accumulated rounding left a residue beyond the support.
			return n
		}
		r *= ratio * float64(n-k+1) / float64(k)
	}
	return k
}

// powN computes qⁿ by binary exponentiation — plain multiplications, so
// the result (and therefore every stream's draw sequence) is identical on
// every platform, unlike math.Pow's libm-dependent rounding.
func powN(q float64, n int) float64 {
	r := 1.0
	for n > 0 {
		if n&1 == 1 {
			r *= q
		}
		q *= q
		n >>= 1
	}
	return r
}

// Triangular returns a triangularly distributed variate on [lo, hi] with
// mode m. It panics unless lo <= m <= hi and lo < hi.
func (s *Stream) Triangular(lo, m, hi float64) float64 {
	if !(lo <= m && m <= hi) || lo >= hi {
		panic("rng: Triangular with invalid parameters")
	}
	u := s.Float64()
	fc := (m - lo) / (hi - lo)
	if u < fc {
		return lo + math.Sqrt(u*(hi-lo)*(m-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-m))
}

// Zipf returns an integer in [1, n] drawn from a Zipf distribution with
// exponent theta > 0, via inversion on the precomputed harmonic table held
// by z. Use NewZipf to build the table once per (n, theta).
type Zipf struct {
	n   int
	cdf []float64 // cdf[i] = P(X <= i+1)
}

// NewZipf precomputes a Zipf(n, theta) sampler table.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	z := &Zipf{n: n, cdf: make([]float64, n)}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Sample draws from the Zipf distribution using stream s.
func (z *Zipf) Sample(s *Stream) int {
	u := s.Float64()
	// Binary search the cdf.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Discrete samples an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if the weights are empty, negative,
// or all zero.
func (s *Stream) Discrete(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Discrete with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Discrete with no positive weight")
	}
	u := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function (same contract as math/rand.Shuffle).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// SplitMix64 is a tiny, fast 64-bit generator used for seeding and for
// auxiliary mixing. Its zero value is a valid (seed-0) generator.
type SplitMix64 struct{ State uint64 }

// Next returns the next 64-bit output.
func (s *SplitMix64) Next() uint64 {
	s.State += 0x9e3779b97f4a7c15
	z := s.State
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// --- 128-bit helper arithmetic (no math/bits dependency kept minimal; we
// use the obvious schoolbook forms for clarity and portability). ---

// mulWide returns the 128-bit product of a and b as (hi, lo).
func mulWide(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	w0 := t & mask
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = (t << 32) | w0
	return hi, lo
}

// mul128 returns (a * b) mod 2^128 where a = aHi:aLo and b = bHi:bLo.
func mul128(aLo, aHi, bLo, bHi uint64) (lo, hi uint64) {
	hi1, lo1 := mulWide(aLo, bLo)
	hi = hi1 + aLo*bHi + aHi*bLo
	return lo1, hi
}

// add128 returns (a + b) mod 2^128.
func add128(aLo, aHi, bLo, bHi uint64) (lo, hi uint64) {
	lo = aLo + bLo
	carry := uint64(0)
	if lo < aLo {
		carry = 1
	}
	hi = aHi + bHi + carry
	return lo, hi
}
