package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewWithStream(42, 0)
	b := NewWithStream(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different streams matched %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(7)
	child := s.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split stream matched parent %d/100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestUint64nUnbiasedSmall(t *testing.T) {
	s := New(5)
	const n, buckets = 600000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.02 {
			t.Errorf("bucket %d count %d deviates from %g by > 2%%", i, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Uint64n(8)
		if v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestExpMeanAndVariance(t *testing.T) {
	s := New(21)
	const n = 200000
	const mean = 4.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(mean)
		if x < 0 {
			t.Fatalf("negative exponential variate %g", x)
		}
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-mean)/mean > 0.02 {
		t.Errorf("exp mean = %g, want %g", m, mean)
	}
	if math.Abs(v-mean*mean)/(mean*mean) > 0.05 {
		t.Errorf("exp variance = %g, want %g", v, mean*mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(31)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal(10, 3)
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-10) > 0.05 {
		t.Errorf("normal mean = %g, want 10", m)
	}
	if math.Abs(v-9) > 0.2 {
		t.Errorf("normal variance = %g, want 9", v)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(33)
	for i := 0; i < 10000; i++ {
		if x := s.LogNormal(0, 1); x <= 0 {
			t.Fatalf("lognormal variate %g <= 0", x)
		}
	}
}

func TestErlangMean(t *testing.T) {
	s := New(41)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Erlang(3, 2)
	}
	m := sum / n
	if math.Abs(m-6)/6 > 0.02 {
		t.Errorf("Erlang(3, 2) mean = %g, want 6", m)
	}
}

func TestGammaMean(t *testing.T) {
	s := New(43)
	for _, tc := range []struct{ alpha, theta float64 }{{0.5, 2}, {1, 1}, {4.5, 3}} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Gamma(tc.alpha, tc.theta)
		}
		m := sum / n
		want := tc.alpha * tc.theta
		if math.Abs(m-want)/want > 0.03 {
			t.Errorf("Gamma(%g,%g) mean = %g, want %g", tc.alpha, tc.theta, m, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(51)
	const n = 200000
	const p = 0.25
	sum := 0.0
	for i := 0; i < n; i++ {
		g := s.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric variate %d", g)
		}
		sum += float64(g)
	}
	m := sum / n
	want := (1 - p) / p // 3
	if math.Abs(m-want)/want > 0.03 {
		t.Errorf("geometric mean = %g, want %g", m, want)
	}
	if s.Geometric(1) != 0 {
		t.Error("Geometric(1) != 0")
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(61)
	for _, mean := range []float64{0.5, 4, 25, 80} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		m := sum / n
		if math.Abs(m-mean)/mean > 0.05 {
			t.Errorf("Poisson(%g) mean = %g", mean, m)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(63)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.3}, {100, 0.1}, {1000, 0.02}, {5000, 0.3}, {100000, 0.3}, {50, 0.9},
	}
	for _, c := range cases {
		const reps = 20000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < reps; i++ {
			k := s.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d, %g) = %d out of range", c.n, c.p, k)
			}
			sum += float64(k)
			sumsq += float64(k) * float64(k)
		}
		mean := sum / reps
		wantMean := float64(c.n) * c.p
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("Binomial(%d, %g) mean = %g, want %g", c.n, c.p, mean, wantMean)
		}
		v := sumsq/reps - mean*mean
		wantVar := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(v-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d, %g) variance = %g, want %g", c.n, c.p, v, wantVar)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	s := New(64)
	if s.Binomial(10, 0) != 0 {
		t.Error("p=0 gave successes")
	}
	if s.Binomial(10, 1) != 10 {
		t.Error("p=1 missed successes")
	}
	if s.Binomial(0, 0.5) != 0 {
		t.Error("n=0 gave successes")
	}
}

func TestTriangularBoundsAndMean(t *testing.T) {
	s := New(71)
	const lo, mode, hi = 2.0, 3.0, 7.0
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := s.Triangular(lo, mode, hi)
		if x < lo || x > hi {
			t.Fatalf("triangular variate %g out of [%g, %g]", x, lo, hi)
		}
		sum += x
	}
	m := sum / n
	want := (lo + mode + hi) / 3
	if math.Abs(m-want)/want > 0.02 {
		t.Errorf("triangular mean = %g, want %g", m, want)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(81)
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %g", frac)
	}
}

func TestZipfDistribution(t *testing.T) {
	s := New(91)
	z := NewZipf(100, 1.0)
	const n = 200000
	counts := make([]int, 101)
	for i := 0; i < n; i++ {
		v := z.Sample(s)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf sample %d out of [1,100]", v)
		}
		counts[v]++
	}
	// P(1)/P(2) should be ~2 for theta=1.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-2) > 0.25 {
		t.Errorf("Zipf P(1)/P(2) = %g, want ~2", ratio)
	}
	if counts[1] <= counts[50] {
		t.Error("Zipf head not heavier than tail")
	}
}

func TestDiscreteWeights(t *testing.T) {
	s := New(101)
	w := []float64{1, 0, 3}
	const n = 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[s.Discrete(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Errorf("Discrete ratio = %g, want ~3", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(111)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(121)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Errorf("shuffle changed elements: %v", xs)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 1234567 from the public-domain SplitMix64.
	sm := SplitMix64{State: 1234567}
	first := sm.Next()
	second := sm.Next()
	if first == second {
		t.Fatal("SplitMix64 repeated output")
	}
	sm2 := SplitMix64{State: 1234567}
	if sm2.Next() != first {
		t.Fatal("SplitMix64 not deterministic")
	}
}

func TestUint64nNeverExceedsBound(t *testing.T) {
	s := New(131)
	err := quick.Check(func(bound uint64) bool {
		if bound == 0 {
			bound = 1
		}
		return s.Uint64n(bound) < bound
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	s := New(141)
	for i := 0; i < 100000; i++ {
		if s.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(1)
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}

func TestReseedMatchesNewWithStream(t *testing.T) {
	fresh := NewWithStream(42, 7)
	var reused Stream
	// Dirty the stream thoroughly (including the cached normal) before
	// reseeding: Reseed must erase all of it.
	reused.Reseed(999, 3)
	reused.Normal(0, 1)
	reused.Uint64()
	reused.Reseed(42, 7)
	for i := 0; i < 1000; i++ {
		if a, b := fresh.Uint64(), reused.Uint64(); a != b {
			t.Fatalf("draw %d: Reseed stream diverged: %d vs %d", i, a, b)
		}
	}
	// Normal caching must also be reset identically.
	f2, r2 := NewWithStream(5, 5), &reused
	r2.Reseed(5, 5)
	for i := 0; i < 100; i++ {
		if a, b := f2.Normal(1, 2), r2.Normal(1, 2); a != b {
			t.Fatalf("normal draw %d diverged: %g vs %g", i, a, b)
		}
	}
}

func TestReseedDoesNotAllocate(t *testing.T) {
	slab := make([]Stream, 16)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range slab {
			slab[i].Reseed(1, uint64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("Reseed allocates %.1f objects per 16-stream slab, want 0", allocs)
	}
}
