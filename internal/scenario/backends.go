package scenario

import (
	"fmt"

	"repro/internal/hostpim"
	"repro/internal/hybrid"
	"repro/internal/parcelsys"
	"repro/internal/queueing"
)

// Backend runs scenarios on one model. Implementations are stateless and
// safe for concurrent use; every Run is deterministic given (Scenario,
// Config).
type Backend interface {
	// Name identifies the backend ("analytic", "queueing", "sim",
	// "hybrid", "machine").
	Name() string
	// Supports reports whether the backend's model covers the scenario.
	Supports(Scenario) bool
	// Run evaluates the scenario and returns the metrics the model
	// defines.
	Run(Scenario, Config) (Result, error)
}

// backends holds the registry in fixed presentation order.
var backends = []Backend{
	analyticBackend{},
	queueingBackend{},
	simBackend{},
	hybridBackend{},
	machineBackend{},
}

// Backends returns all backends in presentation order.
func Backends() []Backend { return backends }

// BackendNames returns the backend names in presentation order.
func BackendNames() []string {
	out := make([]string, len(backends))
	for i, b := range backends {
		out[i] = b.Name()
	}
	return out
}

// FindBackend returns the named backend.
func FindBackend(name string) (Backend, error) {
	for _, b := range backends {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown backend %q (known: %v)", name, BackendNames())
}

// Run is the one-call convenience: evaluate scenario s on the named
// backend.
func Run(s Scenario, backend string, cfg Config) (Result, error) {
	b, err := FindBackend(backend)
	if err != nil {
		return Result{}, err
	}
	if !b.Supports(s) {
		return Result{}, fmt.Errorf("scenario: backend %s does not support scenario %s (%s)",
			b.Name(), s.Name, s.Kind())
	}
	return b.Run(s, cfg)
}

// SupportingBackends returns the backends that claim the scenario, in
// presentation order.
func SupportingBackends(s Scenario) []Backend {
	var out []Backend
	for _, b := range backends {
		if b.Supports(s) {
			out = append(out, b)
		}
	}
	return out
}

// --- analytic: the closed-form study-1 model (§3.1.2 equations). ---

type analyticBackend struct{}

func (analyticBackend) Name() string { return "analytic" }

// Supports: the closed form assumes perfectly partitioned LWP threads, so
// any scenario without inter-PIM communication qualifies. Of the
// execution-driven scenarios it claims exactly the ping program, whose
// round-trip chain has an exact closed form under the paper's
// flat-network, flat-memory assumption (machinePingAnalytic) — the claim
// deliberately ignores Topology/PagePolicy, so the cross-backend
// validator catches a VM whose real timing has drifted from the model.
func (analyticBackend) Supports(s Scenario) bool {
	if s.Validate() != nil {
		return false
	}
	if s.Kind() == KindMachine {
		return s.Workload.Program == "ping"
	}
	return s.Workload.RemoteFrac == 0
}

// analyticMemo caches the closed forms per parameter point: replicated
// engine runs and sweep grids re-evaluate identical points (the closed
// form is seed-independent), so each point is computed once.
var analyticMemo = newMemoCache[hostpim.Params, [3]float64](4096)

func (analyticBackend) Run(s Scenario, cfg Config) (Result, error) {
	if s.Kind() == KindMachine {
		return machinePingAnalytic(s, cfg)
	}
	p, err := s.HostParams(cfg)
	if err != nil {
		return Result{}, err
	}
	v, err := memoize(analyticMemo, p, func() ([3]float64, error) {
		r, err := hostpim.Analytic(p)
		if err != nil {
			return [3]float64{}, err
		}
		return [3]float64{r.Gain, r.Total, r.Relative}, nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Backend: "analytic", Metrics: map[string]float64{
		MetricGain:     v[0],
		MetricTotal:    v[1],
		MetricRelative: v[2],
	}}, nil
}

// --- queueing: exact MVA on the closed per-node network (§4's control
// and test systems as product-form networks). ---

type queueingBackend struct{}

func (queueingBackend) Name() string { return "queueing" }

// Supports: the MVA model covers communication scenarios — a closed
// network per node needs remote traffic and at least two nodes.
func (queueingBackend) Supports(s Scenario) bool {
	return s.Validate() == nil && s.Workload.RemoteFrac > 0 && s.Machine.N > 1
}

// mvaKey is the parameter point of one queueing-backend evaluation. The
// exact MVA recursion is O(stations × population) — worth remembering
// across the replicated sweeps that revisit identical grid points (the
// solve is seed-independent).
type mvaKey struct {
	nodes, parallelism        int
	remote, latency           float64
	mixMem, memCycles         float64
	createCycles, assimCycles float64
}

var mvaMemo = newMemoCache[mvaKey, [4]float64](4096)

// Run models both systems as closed single-class product-form networks
// over one memory-access cycle.
//
// Control: one customer per processor cycling through its node (useful
// ops plus the local memory visit), with the remote fraction adding a
// round-trip delay and a destination-memory visit the processor waits out
// idle — the paper's third processor state.
//
// Test: all N·Parallelism parcels circulate over the N node stations (a
// parcel runs wherever its data lives, so each access-cycle visits a
// uniformly chosen node) plus a one-way-latency delay on the remote
// fraction. Solving the whole N-station network — rather than one node
// with a pinned population — captures the migration imbalance that idles
// nodes whose parcel queue happens to run dry; exact MVA gives the
// throughput, hence per-node utilization, idle, and the Fig. 11 ratio.
func (queueingBackend) Run(s Scenario, cfg Config) (Result, error) {
	p, err := s.ParcelParams(cfg)
	if err != nil {
		return Result{}, err
	}
	key := mvaKey{
		nodes: p.Nodes, parallelism: p.Parallelism,
		remote: p.RemoteFrac, latency: p.Latency,
		mixMem: p.MixMem, memCycles: p.MemCycles,
		createCycles: p.Overhead.CreateCycles, assimCycles: p.Overhead.AssimilateCycles,
	}
	v, err := memoize(mvaMemo, key, func() ([4]float64, error) {
		eOps := (1 - p.MixMem) / p.MixMem // mean useful ops per memory access
		r := p.RemoteFrac
		busy := eOps + p.MemCycles
		ctrlCycle := busy + r*2*p.Latency
		ctrlIdle := r * (2*p.Latency + p.MemCycles) / ctrlCycle

		overhead := p.Overhead.CreateCycles + p.Overhead.AssimilateCycles
		demand := busy + r*overhead
		stations := make([]queueing.Station, p.Nodes+1)
		for i := 0; i < p.Nodes; i++ {
			stations[i] = queueing.Station{
				Name: "node", Kind: queueing.QueueingStation,
				Demand: demand / float64(p.Nodes),
			}
		}
		stations[p.Nodes] = queueing.Station{
			Name: "net", Kind: queueing.DelayStation, Demand: r * p.Latency,
		}
		mva, err := queueing.MVA(stations, p.Nodes*p.Parallelism)
		if err != nil {
			return [4]float64{}, err
		}
		util := mva.Utilizations[0] // per-node busy fraction (stations identical)
		if util > 1 {
			util = 1
		}
		perNode := mva.Throughput / float64(p.Nodes) // access-cycles per cycle per node
		return [4]float64{perNode * ctrlCycle, ctrlIdle, 1 - util, util}, nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Backend: "queueing", Metrics: map[string]float64{
		MetricRatio:      v[0],
		MetricCtrlIdle:   v[1],
		MetricTestIdle:   v[2],
		MetricEfficiency: v[3],
	}}, nil
}

// --- sim: the discrete-event path (hostpim's queuing simulation for
// study-1 scenarios, the parcelsys paired simulation for communication
// scenarios, and the parcelsys-calibrated composition for hybrids). ---

type simBackend struct{}

func (simBackend) Name() string { return "sim" }

// Supports: simulation is the reference model for every statistical
// scenario; execution-driven scenarios belong to the machine backend.
func (simBackend) Supports(s Scenario) bool {
	return s.Validate() == nil && s.Kind() != KindMachine
}

func (b simBackend) Run(s Scenario, cfg Config) (Result, error) {
	if s.Kind() == KindStudy1 {
		p, err := s.HostParams(cfg)
		if err != nil {
			return Result{}, err
		}
		r, err := hostpim.Simulate(p, hostpim.SimOptions{Seed: cfg.Seed, RunParallel: s.Machine.RunParallel})
		if err != nil {
			return Result{}, err
		}
		return Result{Backend: "sim", Metrics: map[string]float64{
			MetricGain:     r.Gain,
			MetricTotal:    r.Total,
			MetricRelative: r.Relative,
		}}, nil
	}

	p, err := s.ParcelParams(cfg)
	if err != nil {
		return Result{}, err
	}
	pr, err := parcelsys.Run(p)
	if err != nil {
		return Result{}, err
	}
	eff := 1 - pr.Test.IdleFrac
	metrics := map[string]float64{
		MetricRatio:      pr.Ratio,
		MetricCtrlIdle:   pr.Control.IdleFrac,
		MetricTestIdle:   pr.Test.IdleFrac,
		MetricEfficiency: eff,
	}
	if s.Kind() == KindHybrid {
		// Compose the study-1 closed form with the measured efficiency —
		// the simulation-calibrated counterpart of the hybrid backend.
		hp, err := s.HybridParams(cfg)
		if err != nil {
			return Result{}, err
		}
		base, err := hostpim.Analytic(hp.Host)
		if err != nil {
			return Result{}, err
		}
		hr := hybrid.Compose(base, hp, eff)
		metrics[MetricGain] = hr.Gain
		metrics[MetricTotal] = hr.Total
		metrics[MetricRelative] = hr.Relative
	}
	return Result{Backend: "sim", Metrics: metrics}, nil
}

// --- hybrid: the Saavedra-Barrera composition of the two studies. ---

type hybridBackend struct{}

func (hybridBackend) Name() string { return "hybrid" }

// Supports: the composition needs a host/PIM split and inter-PIM
// communication.
func (hybridBackend) Supports(s Scenario) bool {
	return s.Validate() == nil && s.Kind() == KindHybrid && s.Machine.N > 1
}

func (hybridBackend) Run(s Scenario, cfg Config) (Result, error) {
	p, err := s.HybridParams(cfg)
	if err != nil {
		return Result{}, err
	}
	r, err := hybrid.Analytic(p)
	if err != nil {
		return Result{}, err
	}
	return Result{Backend: "hybrid", Metrics: map[string]float64{
		MetricGain:       r.Gain,
		MetricTotal:      r.Total,
		MetricRelative:   r.Relative,
		MetricEfficiency: r.Efficiency,
	}}, nil
}
