package scenario

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Field is one numerically sweepable scenario knob, addressable by name —
// the hook pimsweep's scenario mode uses to sweep design-space axes
// without per-field code.
type Field struct {
	// Name is the sweep-axis name (lower-case, no spaces).
	Name string
	// About describes the knob for CLI listings.
	About string
	// Set writes the value into the scenario; boolean fields treat any
	// non-zero value as true.
	Set func(*Scenario, float64)
	// Get reads the current value.
	Get func(Scenario) float64
}

// fields is the registry, in presentation order.
var fields = []Field{
	{"pctwl", "low-locality work fraction %WL (0..1)",
		func(s *Scenario, v float64) { s.Workload.PctWL = v },
		func(s Scenario) float64 { return s.Workload.PctWL }},
	{"nodes", "PIM node count N",
		func(s *Scenario, v float64) { s.Machine.N = int(v) },
		func(s Scenario) float64 { return float64(s.Machine.N) }},
	{"w", "total work in operations",
		func(s *Scenario, v float64) { s.Workload.W = v },
		func(s Scenario) float64 { return s.Workload.W }},
	{"mixls", "load/store instruction-mix fraction",
		func(s *Scenario, v float64) { s.Workload.MixLS = v },
		func(s Scenario) float64 { return s.Workload.MixLS }},
	{"remote", "remote fraction of PIM memory accesses",
		func(s *Scenario, v float64) { s.Workload.RemoteFrac = v },
		func(s Scenario) float64 { return s.Workload.RemoteFrac }},
	{"latency", "one-way inter-PIM latency (cycles)",
		func(s *Scenario, v float64) { s.Machine.Latency = v },
		func(s Scenario) float64 { return s.Machine.Latency }},
	{"parallelism", "parcels/threads per PIM node",
		func(s *Scenario, v float64) { s.Workload.Parallelism = int(v) },
		func(s Scenario) float64 { return float64(s.Workload.Parallelism) }},
	{"horizon", "parcel-study simulated cycles",
		func(s *Scenario, v float64) { s.Workload.Horizon = v },
		func(s Scenario) float64 { return s.Workload.Horizon }},
	{"memcycles", "parcel-node local memory access time (cycles)",
		func(s *Scenario, v float64) { s.Machine.MemCycles = v },
		func(s Scenario) float64 { return s.Machine.MemCycles }},
	{"pmiss", "HWP cache miss rate on high-locality work",
		func(s *Scenario, v float64) { s.Machine.Pmiss = v },
		func(s Scenario) float64 { return s.Machine.Pmiss }},
	{"pmisslow", "HWP miss rate on low-locality work (locality-aware control)",
		func(s *Scenario, v float64) { s.Machine.PmissLow = v },
		func(s Scenario) float64 { return s.Machine.PmissLow }},
	{"tlcycle", "LWP cycle time (HWP cycles)",
		func(s *Scenario, v float64) { s.Machine.TLCycle = v },
		func(s Scenario) float64 { return s.Machine.TLCycle }},
	{"tmh", "HWP memory access time (cycles)",
		func(s *Scenario, v float64) { s.Machine.TMH = v },
		func(s Scenario) float64 { return s.Machine.TMH }},
	{"tch", "HWP cache access time (cycles)",
		func(s *Scenario, v float64) { s.Machine.TCH = v },
		func(s Scenario) float64 { return s.Machine.TCH }},
	{"tml", "LWP local memory access time (cycles)",
		func(s *Scenario, v float64) { s.Machine.TML = v },
		func(s Scenario) float64 { return s.Machine.TML }},
	{"kernelweight", "op-weight of the named kernel in the application mix",
		func(s *Scenario, v float64) { s.Workload.KernelWeight = v },
		func(s Scenario) float64 { return s.Workload.KernelWeight }},
	{"updates", "machine-program work per thread (updates/round trips/words)",
		func(s *Scenario, v float64) { s.Workload.Updates = int(v) },
		func(s Scenario) float64 { return float64(s.Workload.Updates) }},
	{"memwords", "per-node VM memory size in words (machine backend)",
		func(s *Scenario, v float64) { s.Machine.MemWords = int(v) },
		func(s Scenario) float64 { return float64(s.Machine.MemWords) }},
	{"spawncycles", "VM parcel-launch cost in cycles (machine backend)",
		func(s *Scenario, v float64) { s.Machine.SpawnCycles = v },
		func(s Scenario) float64 { return s.Machine.SpawnCycles }},
	{"runparallel", "workers for one run, 0/1 = serial (machine/sim backends; machine and study-1 results identical, parcel invariant for >= 1)",
		func(s *Scenario, v float64) { s.Machine.RunParallel = int(v) },
		func(s Scenario) float64 { return float64(s.Machine.RunParallel) }},
	{"pagepolicy", "VM DRAM timing: 0 = flat MemCycles, 1 = open page, 2 = closed page",
		func(s *Scenario, v float64) { s.Machine.PagePolicy = pagePolicyName(int(v)) },
		func(s Scenario) float64 { return float64(pagePolicyIndex(s.Machine.PagePolicy)) }},
	{"topology", "VM interconnect: 0 flat, 1 ring, 2 mesh, 3 torus, 4 hypercube",
		func(s *Scenario, v float64) { s.Machine.Topology = topologyName(int(v)) },
		func(s Scenario) float64 { return float64(topologyIndex(s.Machine.Topology)) }},
	{"faultdrop", "parcel drop probability per attempt, [0, 1) (machine backend)",
		func(s *Scenario, v float64) { s.Machine.FaultDrop = v },
		func(s Scenario) float64 { return s.Machine.FaultDrop }},
	{"faultcorrupt", "parcel corruption probability per attempt, [0, 1) (machine backend)",
		func(s *Scenario, v float64) { s.Machine.FaultCorrupt = v },
		func(s Scenario) float64 { return s.Machine.FaultCorrupt }},
	{"faultdup", "parcel duplication probability per attempt, [0, 1) (machine backend)",
		func(s *Scenario, v float64) { s.Machine.FaultDup = v },
		func(s Scenario) float64 { return s.Machine.FaultDup }},
	{"faultjitter", "max extra parcel delivery delay in cycles (machine backend)",
		func(s *Scenario, v float64) { s.Machine.FaultJitter = v },
		func(s Scenario) float64 { return s.Machine.FaultJitter }},
	{"straggler", "slow-node cost factor, 0/1 = off (machine backend)",
		func(s *Scenario, v float64) { s.Machine.Straggler = v },
		func(s Scenario) float64 { return s.Machine.Straggler }},
	{"faultseed", "fault-plan seed, 0 = derive from run seed (machine backend)",
		func(s *Scenario, v float64) { s.Machine.FaultSeed = uint64(v) },
		func(s Scenario) float64 { return float64(s.Machine.FaultSeed) }},
	{"overlap", "overlap HWP and LWP phases (non-zero = on)",
		func(s *Scenario, v float64) { s.Overlap = v != 0 },
		func(s Scenario) float64 { return b2f(s.Overlap) }},
	{"software", "software-only parcel overheads (non-zero = on)",
		func(s *Scenario, v float64) { s.Software = v != 0 },
		func(s Scenario) float64 { return b2f(s.Software) }},
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// pagePolicyName/Index map the numeric sweep axis onto the PagePolicy
// string (out-of-range values map to an invalid name so Validate rejects
// the point instead of silently running flat).
var pagePolicyNames = []string{"", "open", "closed"}

func pagePolicyName(i int) string {
	if i < 0 || i >= len(pagePolicyNames) {
		return fmt.Sprintf("pagepolicy(%d)", i)
	}
	return pagePolicyNames[i]
}

func pagePolicyIndex(name string) int {
	for i, n := range pagePolicyNames {
		if n == name {
			return i
		}
	}
	return -1
}

// topologyName/Index map the numeric sweep axis onto the Topology string
// (the flat-first order of network.TopologyNames).
var topologyNames = network.TopologyNames()

func topologyName(i int) string {
	if i < 0 || i >= len(topologyNames) {
		return fmt.Sprintf("topology(%d)", i)
	}
	return topologyNames[i]
}

func topologyIndex(name string) int {
	if name == "" {
		return 0
	}
	for i, n := range topologyNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Fields returns the sweepable-field registry in presentation order.
func Fields() []Field { return fields }

// FieldNames returns all sweepable field names, sorted.
func FieldNames() []string {
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}

// SetField sets the named field; the resulting scenario is NOT validated
// (sweeps validate once per point at Run time).
func SetField(s *Scenario, name string, v float64) error {
	for _, f := range fields {
		if f.Name == name {
			f.Set(s, v)
			return nil
		}
	}
	return fmt.Errorf("scenario: unknown field %q (known: %v)", name, FieldNames())
}

// GetField reads the named field.
func GetField(s Scenario, name string) (float64, error) {
	for _, f := range fields {
		if f.Name == name {
			return f.Get(s), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown field %q (known: %v)", name, FieldNames())
}
