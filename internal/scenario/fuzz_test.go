package scenario

import (
	"testing"
)

// FuzzScenarioSpec holds the line the network-facing spec decoder must
// never cross: arbitrary request bodies either decode+resolve into a
// scenario that passes Validate, or are rejected with an error — no
// panics, no accepted-but-invalid points, and deterministic run keys.
func FuzzScenarioSpec(f *testing.F) {
	seeds := []string{
		`{"preset":"paper-baseline"}`,
		`{"preset":"machine-gups","backend":"machine","fields":{"nodes":16,"updates":32},"seed":7,"quick":true}`,
		`{"preset":"fig11-point","backend":"sim","replications":3,"timeout_ms":1000}`,
		`{"preset":"machine-gups-256","fields":{"runparallel":2,"topology":3}}`,
		`{"preset":"machine-treesum-faults","fields":{"faultdrop":0.5,"straggler":4}}`,
		`{"preset":"paper-baseline","fields":{"pctwl":2}}`,
		`{"preset":"paper-baseline","fields":{"nodes":1e30}}`,
		`{"preset":"machine-gups","fields":{"memwords":-1}}`,
		`{"preset":"nope"}`,
		`{"preset":"paper-baseline","bogus":1}`,
		`{"preset":"paper-baseline"} trailing`,
		`{"preset":7}`,
		`[]`,
		`{}`,
		``,
		`{"preset":"paper-baseline","fields":{"":0}}`,
		`{"preset":"paper-baseline","seed":18446744073709551615}`,
		`{"preset":"paper-baseline","replications":-1,"timeout_ms":-1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	lim := DefaultSpecLimits()
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeSpec(data)
		if err != nil {
			return
		}
		r, err := sp.Resolve(lim)
		if err != nil {
			return
		}
		// An accepted spec must be internally consistent...
		if err := r.Scenario.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v\nbody: %q", err, data)
		}
		if r.Replications < 1 || (lim.MaxReplications > 0 && r.Replications > lim.MaxReplications) {
			t.Fatalf("accepted replications out of range: %d", r.Replications)
		}
		if r.Timeout < 0 {
			t.Fatalf("accepted negative timeout: %v", r.Timeout)
		}
		// ...and resolve deterministically: same bytes, same key.
		r2, err := sp.Resolve(lim)
		if err != nil {
			t.Fatalf("second Resolve failed: %v", err)
		}
		if r.Key() != r2.Key() {
			t.Fatalf("non-deterministic key:\n%s\n%s", r.Key(), r2.Key())
		}
	})
}
