package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/network"
	"repro/internal/rng"
)

// This file is the execution-driven backend: instead of evaluating a
// statistical model, it assembles a named ISA program (internal/isa),
// wires the VM's memory operations through internal/dram row-buffer
// timing and its parcels through an internal/network topology, and runs
// the multi-node interpreter to completion. The metrics come out of the
// machine's own counters — the paper's §2.2/§4.1 design point measured by
// executing it.

// Machine-backend metric names, alongside the canonical Metric* set
// (machine results reuse MetricTotal for cycles and MetricEfficiency for
// the mean node-busy fraction).
const (
	// MetricInstructions is the total executed instruction count.
	MetricInstructions = "instructions"
	// MetricIPC is instructions per node-cycle (issue-slot utilization).
	MetricIPC = "ipc"
	// MetricMemOps is the total LD/ST/AMO count.
	MetricMemOps = "mem_ops"
	// MetricSpawns is the total parcel-send count.
	MetricSpawns = "spawns"
	// MetricCyclesPerUpdate is cycles per unit of program work (GUPS
	// update, ping round trip, or wide-vector chunk).
	MetricCyclesPerUpdate = "cycles_per_update"
	// MetricRowHit is the DRAM row-buffer hit rate (PagePolicy scenarios
	// only).
	MetricRowHit = "row_hit"

	// Degraded-delivery metrics, present only when a fault plan is armed
	// (some Fault*/Straggler field nonzero), so fault-free metric maps
	// stay byte-identical to pre-fault baselines.

	// MetricDrops is the number of parcel transmission attempts lost or
	// CRC-rejected in the network.
	MetricDrops = "drops"
	// MetricRetries is the number of reliable-mode retransmissions.
	MetricRetries = "retries"
	// MetricDelivered is the number of parcels whose payload arrived.
	MetricDelivered = "delivered"
	// MetricGoodput is delivered parcels per transmission attempt,
	// delivered/(sent+retries): 1.0 on a clean network, degrading toward
	// 0 as loss forces retransmissions.
	MetricGoodput = "goodput"
)

// lwpCycleNS converts internal/dram nanosecond latencies into VM (LWP)
// cycles: Table 1 puts the LWP cycle at 5 HWP cycles with the HWP at
// ~1 GHz, so one LWP cycle is 5 ns. PaperMacro's 2 ns page access rounds
// up to 1 cycle (a row hit), a 22 ns activate+page to 5.
const lwpCycleNS = 5.0

// machineMaxCycles bounds every machine-backend run; a program that
// exceeds it (livelock, runaway sweep point) errors instead of hanging.
const machineMaxCycles = 100_000_000

// machineForceInterpret routes every machine-backend run through the VM's
// interpretive (per-cycle re-decode) path instead of the pre-decoded
// dispatch. The two are semantically identical; tests flip this to prove
// the backend's metrics do not depend on the dispatch strategy.
var machineForceInterpret = false

// machineProgramInfo describes one runnable ISA program.
type machineProgramInfo struct {
	about          string
	defaultUpdates int
}

// machinePrograms names the programs the machine backend can run.
var machinePrograms = map[string]machineProgramInfo{
	"gups":    {"HPCC RandomAccess: LCG-indexed read-modify-writes, every node, every thread", 512},
	"treesum": {"parcel-fanout tree sum: SPAWN workers, vsum reduce, AMO-add partials home", 256},
	"ping":    {"one thread migrating node 0 <-> peer via SPAWN; exact closed-form total", 64},
	"triad":   {"row-buffer-wide streaming add C = A + B on every node", 1024},
}

// MachineProgramNames returns the known machine programs, sorted.
func MachineProgramNames() []string {
	out := make([]string, 0, len(machinePrograms))
	for k := range machinePrograms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MachineTopologyNames returns the topology names a machine scenario
// accepts (network.ByName's registry).
func MachineTopologyNames() []string { return network.TopologyNames() }

// validateMachine checks the machine-kind-specific fields (called from
// Scenario.Validate once the shared machine-timing checks have passed).
func (s Scenario) validateMachine() error {
	m, w := s.Machine, s.Workload
	if _, ok := machinePrograms[w.Program]; !ok {
		return fmt.Errorf("scenario %s: unknown program %q (known: %v)",
			s.Name, w.Program, MachineProgramNames())
	}
	switch {
	case w.RemoteFrac != 0 || w.Kernel != "":
		return fmt.Errorf("scenario %s: machine scenarios take no RemoteFrac/Kernel", s.Name)
	case w.Parallelism <= 0:
		return fmt.Errorf("scenario %s: Parallelism = %d in a machine scenario", s.Name, w.Parallelism)
	case w.Updates < 0:
		return fmt.Errorf("scenario %s: Updates = %d", s.Name, w.Updates)
	case math.Round(m.MemCycles) < 1:
		// The VM takes whole cycles; a value that rounds to zero would
		// fail deep in NewMachine with an opaque timing error.
		return fmt.Errorf("scenario %s: MemCycles = %g rounds below one VM cycle", s.Name, m.MemCycles)
	case m.MemWords < 0:
		return fmt.Errorf("scenario %s: MemWords = %d", s.Name, m.MemWords)
	case m.SpawnCycles < 0:
		return fmt.Errorf("scenario %s: SpawnCycles = %g", s.Name, m.SpawnCycles)
	case m.SpawnCycles > 0 && math.Round(m.SpawnCycles) < 1:
		// Zero means "the hardware-assisted default"; a positive value
		// that rounds to zero would silently make spawns free instead.
		return fmt.Errorf("scenario %s: SpawnCycles = %g rounds below one VM cycle", s.Name, m.SpawnCycles)
	case m.RunParallel < 0:
		return fmt.Errorf("scenario %s: RunParallel = %d", s.Name, m.RunParallel)
	case m.FaultDrop < 0 || m.FaultDrop >= 1:
		// 1.0 is rejected: with every attempt dropped, even the
		// retransmit protocol can never deliver, so the run is a
		// guaranteed livelock rather than a degraded experiment.
		return fmt.Errorf("scenario %s: FaultDrop = %g out of [0, 1)", s.Name, m.FaultDrop)
	case m.FaultCorrupt < 0 || m.FaultCorrupt >= 1:
		return fmt.Errorf("scenario %s: FaultCorrupt = %g out of [0, 1)", s.Name, m.FaultCorrupt)
	case m.FaultDup < 0 || m.FaultDup >= 1:
		return fmt.Errorf("scenario %s: FaultDup = %g out of [0, 1)", s.Name, m.FaultDup)
	case m.FaultJitter < 0:
		return fmt.Errorf("scenario %s: FaultJitter = %g", s.Name, m.FaultJitter)
	case m.Straggler < 0:
		return fmt.Errorf("scenario %s: Straggler = %g", s.Name, m.Straggler)
	case m.Straggler > 0 && math.Round(m.Straggler) < 1:
		// Zero disables stragglers; a positive factor that rounds below
		// one would silently speed nodes up instead of slowing them.
		return fmt.Errorf("scenario %s: Straggler = %g rounds below one", s.Name, m.Straggler)
	}
	if _, err := network.ByName(m.Topology, m.N); err != nil {
		return fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	switch m.PagePolicy {
	case "", "open", "closed":
	default:
		return fmt.Errorf("scenario %s: unknown page policy %q (want open or closed)", s.Name, m.PagePolicy)
	}
	if w.Program == "ping" && m.N < 2 {
		return fmt.Errorf("scenario %s: ping needs at least 2 nodes", s.Name)
	}
	return nil
}

// machineMemWords resolves the per-node VM memory size.
func (s Scenario) machineMemWords() int {
	if s.Machine.MemWords > 0 {
		return s.Machine.MemWords
	}
	return 16384
}

// machineTiming maps the scenario onto the VM's timing parameters. All
// fractional cycle counts round to nearest, the same policy the sweep
// axes see everywhere else.
func (s Scenario) machineTiming() isa.Timing {
	spawn := int64(math.Round(s.Machine.SpawnCycles))
	if s.Machine.SpawnCycles == 0 {
		spawn = 2
	}
	mem := int64(math.Round(s.Machine.MemCycles))
	return isa.Timing{
		MemCycles:     mem,
		WideMemCycles: mem,
		SpawnCycles:   spawn,
		NetLatency:    int64(math.Round(s.Machine.Latency)),
	}
}

// pingPeer is the node the ping program bounces off: the "farthest"
// label, so hop topologies genuinely stretch the flight.
func pingPeer(n int) int { return n / 2 }

// roundUpWide rounds u up to a positive multiple of the wide-op width.
func roundUpWide(u int) int {
	if u < isa.WideWords {
		return isa.WideWords
	}
	if r := u % isa.WideWords; r != 0 {
		u += isa.WideWords - r
	}
	return u
}

// --- machine: the execution-driven backend. ---

type machineBackend struct{}

func (machineBackend) Name() string { return "machine" }

// Supports: any valid execution-driven scenario.
func (machineBackend) Supports(s Scenario) bool {
	return s.Validate() == nil && s.Kind() == KindMachine
}

func (machineBackend) Run(s Scenario, cfg Config) (Result, error) {
	metrics, err := runMachineScenario(s, cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{Backend: "machine", Metrics: metrics}, nil
}

// runMachineScenario builds the VM, loads and seeds the program, runs to
// completion, and extracts metrics. Everything is deterministic given
// (Scenario, Config): thread seeds derive from cfg.Seed through SplitMix64
// in a fixed order, and the interpreter itself is cycle-driven.
func runMachineScenario(s Scenario, cfg Config) (map[string]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Kind() != KindMachine {
		return nil, fmt.Errorf("scenario %s: not a machine scenario", s.Name)
	}
	memWords := s.machineMemWords()
	m, err := isa.NewMachine(s.Machine.N, memWords, s.machineTiming())
	if err != nil {
		return nil, err
	}
	m.MaxCycles = machineMaxCycles
	m.ForceInterpret = machineForceInterpret
	m.Parallelism = s.Machine.RunParallel
	m.Cancel = cfg.Cancel

	// Fault injection: an armed plan switches the VM to its reliable
	// retransmit protocol so programs still complete (and verify) under
	// loss; the degradation shows up in the delivery metrics below.
	plan, err := s.machineFaultPlan(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if plan != nil {
		m.Fault = plan
		m.Reliable = plan.NetEnabled()
	}

	// Interconnect: hop topologies route each parcel over the network
	// model at Latency cycles per hop; flat keeps Timing.NetLatency.
	topo, err := network.ByName(s.Machine.Topology, s.Machine.N)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
	}
	if topo != nil {
		m.NetDelay = network.HopDelay(topo, s.Machine.Latency)
		m.NetLookahead = network.HopLookahead(topo, s.Machine.Latency)
	}

	// Memory timing: a per-node DRAM bank with row-buffer state replaces
	// the flat MemCycles when a page policy is selected. Word addresses
	// map onto rows by row-width blocks (64-bit VM words, 2048-bit rows:
	// 32 words per row), wrapping over the macro's row count.
	var banks []*dram.Bank
	if s.Machine.PagePolicy != "" {
		policy := dram.OpenPage
		if s.Machine.PagePolicy == "closed" {
			policy = dram.ClosedPage
		}
		macro := dram.PaperMacro()
		rowWords := uint64(macro.RowBits / 64)
		rows := uint64(macro.Rows)
		banks = make([]*dram.Bank, s.Machine.N)
		for i := range banks {
			if banks[i], err = dram.NewBank(macro, policy); err != nil {
				return nil, err
			}
		}
		m.MemDelay = func(node int, addr uint64, wide bool) int64 {
			row := int(addr / rowWords % rows)
			return int64(math.Ceil(banks[node].Access(row) / lwpCycleNS))
		}
	}

	updates := s.effectiveUpdates(cfg)
	work, err := stageMachineProgram(m, s, cfg, updates)
	if err != nil {
		return nil, err
	}
	cycles, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := work.verify(m); err != nil {
		return nil, fmt.Errorf("scenario %s: %v", s.Name, err)
	}

	instr := m.TotalInstructions()
	var memOps, spawns int64
	for _, n := range m.Nodes {
		memOps += n.MemOps
		spawns += n.Spawns
	}
	metrics := map[string]float64{
		MetricTotal:        float64(cycles),
		MetricEfficiency:   m.MeanUtilization(),
		MetricInstructions: float64(instr),
		MetricIPC:          float64(instr) / (float64(cycles) * float64(s.Machine.N)),
		MetricMemOps:       float64(memOps),
		MetricSpawns:       float64(spawns),
	}
	if work.units > 0 {
		metrics[MetricCyclesPerUpdate] = float64(cycles) / float64(work.units)
	}
	if banks != nil {
		var acc, hits int64
		for _, b := range banks {
			a, h, _ := b.Stats()
			acc += a
			hits += h
		}
		if acc > 0 {
			metrics[MetricRowHit] = float64(hits) / float64(acc)
		}
	}
	if m.Fault != nil {
		st := m.DeliveryStats()
		metrics[MetricDrops] = float64(st.Drops + st.Corrupts)
		metrics[MetricRetries] = float64(st.Retries)
		metrics[MetricDelivered] = float64(st.Delivered)
		goodput := 1.0
		if attempts := st.Sent + st.Retries; attempts > 0 {
			goodput = float64(st.Delivered) / float64(attempts)
		}
		metrics[MetricGoodput] = goodput
	}
	return metrics, nil
}

// machineFaultPlan builds the run's fault plan, or nil when every fault
// knob is zero — structurally fault-free: the VM never consults a plan,
// so metrics and fingerprints match a pre-fault baseline byte for byte.
// A zero FaultSeed derives the plan seed from the run's Config.Seed, so
// replications draw different faults at the same rates.
func (s Scenario) machineFaultPlan(cfg Config) (*fault.Plan, error) {
	mc := s.Machine
	straggler := int64(math.Round(mc.Straggler))
	if mc.FaultDrop == 0 && mc.FaultCorrupt == 0 && mc.FaultDup == 0 &&
		mc.FaultJitter == 0 && straggler <= 1 {
		return nil, nil
	}
	seed := mc.FaultSeed
	if seed == 0 {
		seed = cfg.Seed ^ 0x6661756c74 // "fault"
	}
	return fault.New(fault.Config{
		Seed:            seed,
		DropRate:        mc.FaultDrop,
		CorruptRate:     mc.FaultCorrupt,
		DupRate:         mc.FaultDup,
		JitterMax:       int64(math.Round(mc.FaultJitter)),
		StragglerFactor: straggler,
	})
}

// machineWork is what stageMachineProgram set up: the work-unit count for
// the cycles_per_update metric and a post-run correctness check.
type machineWork struct {
	units  int64
	verify func(*isa.Machine) error
}

// stageMachineProgram assembles the scenario's program, loads it on every
// node, stages input data, and starts the initial threads.
func stageMachineProgram(m *isa.Machine, s Scenario, cfg Config, updates int) (machineWork, error) {
	none := machineWork{verify: func(*isa.Machine) error { return nil }}
	nodes := s.Machine.N
	par := s.Workload.Parallelism
	memWords := s.machineMemWords()
	sm := rng.SplitMix64{State: cfg.Seed ^ 0x6d616368696e65} // "machine"

	switch s.Workload.Program {
	case "gups":
		layout := isa.DefaultGUPSLayout()
		layout.Updates = updates
		if uint64(memWords) < layout.TableBase+uint64(layout.TableWords) {
			return none, fmt.Errorf("gups needs %d mem words, have %d",
				layout.TableBase+uint64(layout.TableWords), memWords)
		}
		prog, err := isa.GUPSProgram(layout)
		if err != nil {
			return none, err
		}
		if err := m.LoadAll(prog); err != nil {
			return none, err
		}
		entry, err := prog.Entry("main")
		if err != nil {
			return none, err
		}
		for i := 0; i < nodes; i++ {
			for t := 0; t < par; t++ {
				m.Nodes[i].StartThread(entry, sm.Next(), 0)
			}
		}
		total := int64(nodes) * int64(par) * int64(updates)
		return machineWork{units: total, verify: func(m *isa.Machine) error {
			var done int64
			for _, n := range m.Nodes {
				done += n.Completed
			}
			if done != int64(nodes)*int64(par) {
				return fmt.Errorf("gups: %d of %d threads completed", done, nodes*par)
			}
			return nil
		}}, nil

	case "treesum":
		layout := isa.DefaultTreeSumLayout()
		layout.DataWords = roundUpWide(updates)
		if uint64(memWords) < layout.DataBase+uint64(layout.DataWords) {
			return none, fmt.Errorf("treesum needs %d mem words, have %d",
				layout.DataBase+uint64(layout.DataWords), memWords)
		}
		prog, err := isa.TreeSumProgram(nodes, layout)
		if err != nil {
			return none, err
		}
		if err := m.LoadAll(prog); err != nil {
			return none, err
		}
		var want uint64
		for _, n := range m.Nodes {
			for k := 0; k < layout.DataWords; k++ {
				v := sm.Next() >> 40 // small values: the sum stays exact
				n.Mem[layout.DataBase+uint64(k)] = v
				want += v
			}
		}
		entry, err := prog.Entry("main")
		if err != nil {
			return none, err
		}
		m.Nodes[0].StartThread(entry, 0, 0)
		return machineWork{units: int64(nodes) * int64(layout.DataWords) / isa.WideWords,
			verify: func(m *isa.Machine) error {
				if got := m.Nodes[0].Mem[layout.AccAddr]; got != want {
					return fmt.Errorf("treesum: got %d, want %d", got, want)
				}
				return nil
			}}, nil

	case "ping":
		layout := isa.DefaultPingLayout()
		layout.Peer = pingPeer(nodes)
		prog, err := isa.PingProgram(layout, updates)
		if err != nil {
			return none, err
		}
		if err := m.LoadAll(prog); err != nil {
			return none, err
		}
		entry, err := prog.Entry("ping")
		if err != nil {
			return none, err
		}
		m.Nodes[0].StartThread(entry, uint64(updates), 0)
		return machineWork{units: int64(updates), verify: func(m *isa.Machine) error {
			if got := m.Nodes[0].Mem[layout.CountAddr]; got != uint64(updates) {
				return fmt.Errorf("ping: counted %d round trips, want %d", got, updates)
			}
			return nil
		}}, nil

	case "triad":
		words := roundUpWide(updates)
		layout := isa.TriadLayout{
			A: 8192, B: 8192 + uint64(words), C: 8192 + 2*uint64(words), Words: words,
		}
		if uint64(memWords) < layout.C+uint64(words) {
			return none, fmt.Errorf("triad needs %d mem words, have %d",
				layout.C+uint64(words), memWords)
		}
		prog, err := isa.StreamTriadProgram(layout)
		if err != nil {
			return none, err
		}
		if err := m.LoadAll(prog); err != nil {
			return none, err
		}
		for _, n := range m.Nodes {
			for k := 0; k < words; k++ {
				n.Mem[layout.A+uint64(k)] = sm.Next() >> 32
				n.Mem[layout.B+uint64(k)] = sm.Next() >> 32
			}
		}
		entry, err := prog.Entry("main")
		if err != nil {
			return none, err
		}
		for i := 0; i < nodes; i++ {
			m.Nodes[i].StartThread(entry, 0, 0)
		}
		return machineWork{units: int64(nodes) * int64(words) / isa.WideWords,
			verify: func(m *isa.Machine) error {
				for _, n := range m.Nodes {
					for k := 0; k < words; k++ {
						a, b := n.Mem[layout.A+uint64(k)], n.Mem[layout.B+uint64(k)]
						if n.Mem[layout.C+uint64(k)] != a+b {
							return fmt.Errorf("triad: node %d word %d wrong", n.ID, k)
						}
					}
				}
				return nil
			}}, nil
	}
	return none, fmt.Errorf("unknown machine program %q", s.Workload.Program)
}

// machinePingAnalytic is the closed-form counterpart the analytic backend
// serves for ping scenarios: the exact cycle count of the round-trip
// chain under the paper's flat-network assumption. A hop topology that
// stretches the node-0-to-peer flight (or a DRAM page policy that changes
// the AMO cost) falls outside the form — which is precisely the timing
// skew the cross-backend validator exists to catch.
func machinePingAnalytic(s Scenario, cfg Config) (Result, error) {
	rounds := s.effectiveUpdates(cfg)
	total := isa.PingTotalCycles(rounds, int64(math.Round(s.Machine.Latency)),
		int64(math.Round(s.Machine.MemCycles)))
	return Result{Backend: "analytic", Metrics: map[string]float64{
		MetricTotal: float64(total),
	}}, nil
}
