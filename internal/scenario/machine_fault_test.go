package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// faultPresetNames are the presets that arm a fault plan.
var faultPresetNames = []string{"machine-treesum-faults", "machine-gups-straggler"}

// zeroFaults clears every fault-injection knob.
func zeroFaults(s *Scenario) {
	s.Machine.FaultDrop = 0
	s.Machine.FaultCorrupt = 0
	s.Machine.FaultDup = 0
	s.Machine.FaultJitter = 0
	s.Machine.Straggler = 0
	s.Machine.FaultSeed = 0
}

// TestMachineFaultZeroRateNoOp is the zero-rate no-op guarantee: with
// every fault rate at zero — even with a FaultSeed set — each machine
// preset's metric map is byte-identical to the fault-free baseline,
// serially and under RunParallel 1 and 4. No plan may be built, so not
// even the metric *keys* change.
func TestMachineFaultZeroRateNoOp(t *testing.T) {
	cfg := Config{Seed: 2004, Quick: true}
	for _, name := range machinePresetNames(t) {
		base := MustFind(name)
		zeroFaults(&base)
		for _, p := range []int{0, 1, 4} {
			baseline := base
			baseline.Machine.RunParallel = p
			want, err := Run(baseline, "machine", cfg)
			if err != nil {
				t.Fatalf("%s p=%d baseline: %v", name, p, err)
			}
			for m := range want.Metrics {
				if m == MetricGoodput || m == MetricDrops || m == MetricRetries || m == MetricDelivered {
					t.Fatalf("%s p=%d: fault-free baseline emits degraded metric %q", name, p, m)
				}
			}
			zeroed := baseline
			// Explicit zeros plus a live seed: rates gate the plan, the
			// seed alone must not arm it.
			zeroFaults(&zeroed)
			zeroed.Machine.FaultSeed = 12345
			got, err := Run(zeroed, "machine", cfg)
			if err != nil {
				t.Fatalf("%s p=%d zero-rate: %v", name, p, err)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s p=%d: zero-rate fault fields leak into metrics:\nbaseline: %v\nzeroed:   %v",
					name, p, want.Metrics, got.Metrics)
			}
		}
	}
}

// TestMachineRunParallelInvariantFault extends the PDES invariant to the
// fault presets and a heavier ad-hoc mix: identical metric maps for any
// worker count, twice over (the fault plan is deterministic, so even the
// degraded metrics replay exactly). The name rides the CI race step's
// TestMachineRunParallelInvariant prefix.
func TestMachineRunParallelInvariantFault(t *testing.T) {
	heavy := MustFind("machine-treesum-faults")
	heavy.Name = "heavy-mix"
	heavy.Machine.FaultDrop = 0.25
	heavy.Machine.FaultCorrupt = 0.10
	heavy.Machine.FaultDup = 0.20
	heavy.Machine.FaultJitter = 15
	heavy.Machine.Straggler = 2
	heavy.Machine.Topology = "torus"
	scenarios := []Scenario{heavy}
	for _, name := range faultPresetNames {
		scenarios = append(scenarios, MustFind(name))
	}
	cfg := Config{Seed: 7, Quick: true}
	for _, s := range scenarios {
		serial := s
		serial.Machine.RunParallel = 0
		want, err := Run(serial, "machine", cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", s.Name, err)
		}
		if g, ok := want.Metrics[MetricGoodput]; !ok || g <= 0 || g > 1 {
			t.Errorf("%s: goodput = %v (present %v), want (0, 1]", s.Name, g, ok)
		}
		if s.Machine.FaultDrop > 0 {
			if want.Metrics[MetricRetries] <= 0 || want.Metrics[MetricDrops] <= 0 {
				t.Errorf("%s: lossy preset reports no degradation: %v", s.Name, want.Metrics)
			}
			if want.Metrics[MetricGoodput] >= 1 {
				t.Errorf("%s: goodput = 1 despite retries", s.Name)
			}
			if want.Metrics[MetricDelivered] <= 0 {
				t.Errorf("%s: nothing delivered: %v", s.Name, want.Metrics)
			}
		}
		for _, p := range []int{1, 4} {
			sc := s
			sc.Machine.RunParallel = p
			for rep := 0; rep < 2; rep++ {
				got, err := Run(sc, "machine", cfg)
				if err != nil {
					t.Fatalf("%s p=%d rep=%d: %v", s.Name, p, rep, err)
				}
				if !reflect.DeepEqual(want.Metrics, got.Metrics) {
					t.Errorf("%s: RunParallel=%d rep=%d leaks into faulted metrics:\nserial:   %v\nparallel: %v",
						s.Name, p, rep, want.Metrics, got.Metrics)
				}
			}
		}
	}
}

// TestMachineFaultSeedDerivation: with FaultSeed 0 the plan derives from
// the run seed, so different Config.Seeds draw different faults (the
// replication story), while equal seeds replay exactly.
func TestMachineFaultSeedDerivation(t *testing.T) {
	s := MustFind("machine-treesum-faults")
	s.Machine.FaultSeed = 0
	run := func(seed uint64) map[string]float64 {
		r, err := Run(s, "machine", Config{Seed: seed, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics
	}
	a1, a2, b := run(1), run(1), run(99)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same seed, different metrics:\n%v\n%v", a1, a2)
	}
	if reflect.DeepEqual(a1, b) {
		t.Fatalf("seeds 1 and 99 drew identical faults (metrics %v)", a1)
	}
}

func TestMachineFaultValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Scenario)
		want   string
	}{
		{func(s *Scenario) { s.Machine.FaultDrop = 1 }, "FaultDrop"},
		{func(s *Scenario) { s.Machine.FaultDrop = -0.1 }, "FaultDrop"},
		{func(s *Scenario) { s.Machine.FaultCorrupt = 1.2 }, "FaultCorrupt"},
		{func(s *Scenario) { s.Machine.FaultDup = 1 }, "FaultDup"},
		{func(s *Scenario) { s.Machine.FaultJitter = -4 }, "FaultJitter"},
		{func(s *Scenario) { s.Machine.Straggler = -1 }, "Straggler"},
		{func(s *Scenario) { s.Machine.Straggler = 0.3 }, "rounds below one"},
	}
	for _, c := range cases {
		s := MustFind("machine-gups")
		c.mutate(&s)
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("mutation expecting %q validated: %v", c.want, err)
		}
	}
	// Fault knobs are machine-only: an analytic study-1 scenario must
	// reject them instead of silently ignoring them.
	s := MustFind("paper-baseline")
	s.Machine.FaultDrop = 0.1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "machine scenarios") {
		t.Errorf("study-1 scenario accepted fault fields: %v", err)
	}
}

func TestMachineFaultSweepFields(t *testing.T) {
	s := MustFind("machine-gups")
	set := map[string]float64{
		"faultdrop":    0.2,
		"faultcorrupt": 0.05,
		"faultdup":     0.1,
		"faultjitter":  12,
		"straggler":    3,
		"faultseed":    77,
	}
	for name, v := range set {
		if err := SetField(&s, name, v); err != nil {
			t.Fatalf("SetField(%s): %v", name, err)
		}
		got, err := GetField(s, name)
		if err != nil {
			t.Fatalf("GetField(%s): %v", name, err)
		}
		if got != v {
			t.Errorf("%s round-trips %v -> %v", name, v, got)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("swept fault scenario invalid: %v", err)
	}
	// And the swept point actually runs degraded.
	r, err := Run(s, "machine", Config{Seed: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Metrics[MetricGoodput]; !ok {
		t.Errorf("swept fault point emits no goodput metric: %v", r.Metrics)
	}
}
