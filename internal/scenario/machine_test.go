package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// machinePresetNames lists the execution-driven presets.
func machinePresetNames(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, s := range Presets() {
		if s.Kind() == KindMachine {
			out = append(out, s.Name)
		}
	}
	if len(out) < 4 {
		t.Fatalf("want >= 4 machine presets, have %v", out)
	}
	return out
}

func TestMachinePresetsDeterministic(t *testing.T) {
	// Every machine preset is a pure function of (Scenario, Config):
	// identical metric maps across reruns, in quick and full mode.
	for _, name := range machinePresetNames(t) {
		s := MustFind(name)
		for _, quick := range []bool{true, false} {
			if !quick && testing.Short() {
				continue
			}
			cfg := Config{Seed: 2004, Quick: quick}
			r1, err := Run(s, "machine", cfg)
			if err != nil {
				t.Fatalf("%s quick=%v: %v", name, quick, err)
			}
			r2, err := Run(s, "machine", cfg)
			if err != nil {
				t.Fatalf("%s quick=%v: %v", name, quick, err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Errorf("%s quick=%v: metrics differ between identical runs:\n%v\nvs\n%v",
					name, quick, r1.Metrics, r2.Metrics)
			}
			if r1.Metrics[MetricTotal] <= 0 {
				t.Errorf("%s quick=%v: total = %g", name, quick, r1.Metrics[MetricTotal])
			}
			if eff := r1.Metrics[MetricEfficiency]; eff <= 0 || eff > 1 {
				t.Errorf("%s quick=%v: efficiency = %g", name, quick, eff)
			}
		}
	}
}

func TestMachinePingMatchesClosedFormExactly(t *testing.T) {
	// On the flat network the analytic counterpart is cycle-exact; the
	// preset pins the tolerance at 0.1%, so the diff must be ~zero.
	cfg := Config{Seed: 7}
	_, ags, err := CrossValidate(MustFind("machine-ping"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ags) == 0 {
		t.Fatal("no agreements between analytic and machine")
	}
	for _, a := range ags {
		if a.Diff != 0 {
			t.Errorf("%s: %s=%g vs %s=%g (diff %g, want exact)",
				a.Metric, a.A, a.ValA, a.B, a.ValB, a.Diff)
		}
		if !a.Pass {
			t.Errorf("%s disagrees: %+v", a.Metric, a)
		}
	}
}

func TestMachineValidatorCatchesTimingSkew(t *testing.T) {
	// Inject a timing skew the closed form deliberately ignores: route
	// the ping over a 16-node ring, so the 0<->8 flight pays 8 hops where
	// the flat model charges one latency. CrossValidate must fail.
	s := MustFind("machine-ping")
	s.Machine.Topology = "ring"
	results, ags, err := CrossValidate(s, Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want analytic+machine, got %d results", len(results))
	}
	bad := Disagreements(ags)
	if len(bad) == 0 {
		t.Fatal("validator passed a ring-routed ping against the flat-network closed form")
	}
	// The machine total must exceed the flat prediction (8 hops > 1).
	var analytic, machine float64
	for _, r := range results {
		if r.Backend == "analytic" {
			analytic = r.Metrics[MetricTotal]
		}
		if r.Backend == "machine" {
			machine = r.Metrics[MetricTotal]
		}
	}
	if machine <= analytic {
		t.Errorf("ring ping total %g not above flat closed form %g", machine, analytic)
	}
}

func TestMachineTopologyOrdering(t *testing.T) {
	// For the 0 -> N/2 ping on 16 nodes: hypercube (1 hop on bit 3... 1
	// hop: 0^8 = one bit) beats mesh beats ring; all hop totals at the
	// same per-hop cost order by hop count.
	s := MustFind("machine-ping")
	cfg := Config{Seed: 1, Quick: true}
	total := func(topo string) float64 {
		sc := s
		sc.Machine.Topology = topo
		r, err := Run(sc, "machine", cfg)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		return r.Metrics[MetricTotal]
	}
	ring, mesh, cube := total("ring"), total("mesh"), total("hypercube")
	if !(cube < mesh && mesh < ring) {
		t.Errorf("hop totals out of order: hypercube %g, mesh %g, ring %g", cube, mesh, ring)
	}
}

func TestMachineDramPagePolicy(t *testing.T) {
	// The streaming triad lives in the row buffer: open-page must see a
	// high hit rate and finish faster than closed-page, which pays an
	// activate on every access.
	s := MustFind("machine-dram")
	cfg := Config{Seed: 1, Quick: true}
	open, err := Run(s, "machine", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Machine.PagePolicy = "closed"
	closed, err := Run(s, "machine", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 2048-bit row holds four 8-word wide accesses: streaming hits 3 of
	// every 4 (the first access in each row activates it).
	if open.Metrics[MetricRowHit] != 0.75 {
		t.Errorf("streaming open-page hit rate = %g, want 0.75", open.Metrics[MetricRowHit])
	}
	if closed.Metrics[MetricRowHit] != 0 {
		t.Errorf("closed-page hit rate = %g, want 0", closed.Metrics[MetricRowHit])
	}
	if open.Metrics[MetricTotal] >= closed.Metrics[MetricTotal] {
		t.Errorf("open page (%g cycles) not faster than closed (%g)",
			open.Metrics[MetricTotal], closed.Metrics[MetricTotal])
	}
}

func TestMachineQuickClampsUpdates(t *testing.T) {
	s := MustFind("machine-gups")
	if got := s.effectiveUpdates(Config{Quick: true}); got != quickMaxUpdates {
		t.Errorf("quick updates = %d, want %d", got, quickMaxUpdates)
	}
	s.Workload.Updates = 8 // already below the clamp
	if got := s.effectiveUpdates(Config{Quick: true}); got != 8 {
		t.Errorf("quick updates = %d, want 8 (clamp must never raise)", got)
	}
	s.Workload.Updates = 0
	if got := s.effectiveUpdates(Config{}); got != 512 {
		t.Errorf("default gups updates = %d, want 512", got)
	}
}

func TestMachineMoreThreadsHideLatency(t *testing.T) {
	// GUPS cycles shrink (per update) as parallelism rises: the VM's
	// fine-grain multithreading covers the memory stalls.
	s := MustFind("machine-gups")
	cfg := Config{Seed: 3, Quick: true}
	perUpdate := func(par int) float64 {
		sc := s
		sc.Workload.Parallelism = par
		r, err := Run(sc, "machine", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics[MetricCyclesPerUpdate]
	}
	if one, eight := perUpdate(1), perUpdate(8); eight >= one {
		t.Errorf("cycles/update did not drop with parallelism: 1 thread %g, 8 threads %g", one, eight)
	}
}

func TestMachineValidateRejects(t *testing.T) {
	base := MustFind("machine-gups")
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"unknown program", func(s *Scenario) { s.Workload.Program = "doom" }},
		{"zero parallelism", func(s *Scenario) { s.Workload.Parallelism = 0 }},
		{"negative updates", func(s *Scenario) { s.Workload.Updates = -1 }},
		{"remote frac set", func(s *Scenario) { s.Workload.RemoteFrac = 0.5 }},
		{"kernel set", func(s *Scenario) { s.Workload.Kernel = "gups" }},
		{"zero mem cycles", func(s *Scenario) { s.Machine.MemCycles = 0 }},
		{"negative mem words", func(s *Scenario) { s.Machine.MemWords = -1 }},
		{"negative spawn", func(s *Scenario) { s.Machine.SpawnCycles = -1 }},
		{"spawn rounds to zero", func(s *Scenario) { s.Machine.SpawnCycles = 0.2 }},
		{"unknown topology", func(s *Scenario) { s.Machine.Topology = "tokamak" }},
		{"mesh non-square", func(s *Scenario) { s.Machine.Topology = "mesh"; s.Machine.N = 10 }},
		{"hypercube non-pow2", func(s *Scenario) { s.Machine.Topology = "hypercube"; s.Machine.N = 12 }},
		{"unknown page policy", func(s *Scenario) { s.Machine.PagePolicy = "ajar" }},
		{"ping one node", func(s *Scenario) { s.Workload.Program = "ping"; s.Machine.N = 1 }},
		{"negative run parallel", func(s *Scenario) { s.Machine.RunParallel = -2 }},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid machine scenario", c.name)
		}
	}
}

func TestMachineFieldsSweepPrograms(t *testing.T) {
	// The sweepable fields must reach the machine knobs: drive a preset
	// through SetField exactly as pimsweep scenario -sweep does.
	s := MustFind("machine-dram")
	for _, c := range []struct {
		field string
		v     float64
	}{
		{"updates", 64}, {"pagepolicy", 2}, {"spawncycles", 10}, {"memwords", 40000},
		{"runparallel", 3},
	} {
		if err := SetField(&s, c.field, c.v); err != nil {
			t.Fatalf("%s: %v", c.field, err)
		}
	}
	if s.Machine.PagePolicy != "closed" || s.Workload.Updates != 64 ||
		s.Machine.SpawnCycles != 10 || s.Machine.MemWords != 40000 ||
		s.Machine.RunParallel != 3 {
		t.Errorf("fields not applied: %+v %+v", s.Machine, s.Workload)
	}
	if _, err := Run(s, "machine", Config{Seed: 1, Quick: true}); err != nil {
		t.Fatal(err)
	}
	// Out-of-range enum values must be rejected at Validate, not run flat.
	bad := MustFind("machine-gups")
	if err := SetField(&bad, "pagepolicy", 9); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "page policy") {
		t.Errorf("pagepolicy=9 validated: %v", err)
	}
	bad = MustFind("machine-gups")
	if err := SetField(&bad, "topology", -3); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Errorf("topology=-3 validated: %v", err)
	}
}

func TestMachineTreesumVerifiesSum(t *testing.T) {
	// The treesum run self-checks the reduced total against the staged
	// data; a passing run proves parcels, vsum, and AMO-adds all landed.
	r, err := Run(MustFind("machine-treesum"), "machine", Config{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics[MetricSpawns] < 8 {
		t.Errorf("spawns = %g, want >= one worker per node", r.Metrics[MetricSpawns])
	}
}

func TestMachineSubCycleMemRejectedEarly(t *testing.T) {
	s := MustFind("machine-gups")
	s.Machine.MemCycles = 0.4
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "rounds below one") {
		t.Errorf("MemCycles=0.4 not rejected at Validate: %v", err)
	}
	s.Machine.MemCycles = 0.6 // rounds to 1: fine
	if err := s.Validate(); err != nil {
		t.Errorf("MemCycles=0.6 rejected: %v", err)
	}
}

func TestMachineRunParallelInvariant(t *testing.T) {
	// Per-run parallelism is a pure execution strategy: every machine
	// preset produces the identical metric map for any worker count,
	// serial included — the scenario-level face of the VM's conservative
	// time-windowed PDES guarantee.
	for _, name := range machinePresetNames(t) {
		s := MustFind(name)
		cfg := Config{Seed: 2004, Quick: true}
		baseline := s
		baseline.Machine.RunParallel = 0
		want, err := Run(baseline, "machine", cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, p := range []int{1, 4, 7} {
			sc := s
			sc.Machine.RunParallel = p
			got, err := Run(sc, "machine", cfg)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s: RunParallel=%d leaks into metrics:\nserial:   %v\nparallel: %v",
					name, p, want.Metrics, got.Metrics)
			}
		}
	}
}

func TestMachineMetricsDispatchInvariant(t *testing.T) {
	// The VM's pre-decoded dispatch (with superinstruction fusion and
	// windowed execution) must be invisible in every metric: each machine
	// preset, swept across interconnect topologies and DRAM page policies,
	// produces the identical metric map with ForceInterpret flipped on.
	run := func(s Scenario, force bool) map[string]float64 {
		t.Helper()
		machineForceInterpret = force
		defer func() { machineForceInterpret = false }()
		r, err := Run(s, "machine", Config{Seed: 2004, Quick: true})
		if err != nil {
			t.Fatalf("%s force=%v: %v", s.Name, force, err)
		}
		return r.Metrics
	}
	for _, name := range machinePresetNames(t) {
		for _, topo := range []string{"", "ring"} {
			for _, policy := range []string{"", "closed"} {
				s := MustFind(name)
				s.Machine.Topology = topo
				s.Machine.PagePolicy = policy
				decoded := run(s, false)
				interp := run(s, true)
				if !reflect.DeepEqual(decoded, interp) {
					t.Errorf("%s topo=%q policy=%q: dispatch strategy leaks into metrics:\ndecoded:     %v\ninterpreted: %v",
						name, topo, policy, decoded, interp)
				}
			}
		}
	}
}
