package scenario

import "sync"

// memoCache is a tiny concurrency-safe memo table for deterministic
// evaluations: the closed-form analytic model, the exact MVA solve, and
// the workload-kernel cache measurement all map a comparable parameter
// point to the same answer every time, so replicated sweeps and
// cross-backend validations need only pay for each point once. The table
// is bounded by wholesale reset — entries are tiny and recomputable, so a
// rare full clear beats per-entry eviction bookkeeping on the hot path.
type memoCache[K comparable, V any] struct {
	mu    sync.Mutex
	m     map[K]V
	limit int
}

// newMemoCache returns a cache holding at most limit entries.
func newMemoCache[K comparable, V any](limit int) *memoCache[K, V] {
	return &memoCache[K, V]{limit: limit}
}

// get looks k up.
func (c *memoCache[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

// put stores k → v, clearing the table first when it is full.
func (c *memoCache[K, V]) put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= c.limit {
		c.m = make(map[K]V, c.limit/4+1)
	}
	c.m[k] = v
}

// memoize returns the cached value for k or computes, stores, and returns
// it. Concurrent callers may compute the same point redundantly (the
// result is identical); errors are never cached.
func memoize[K comparable, V any](c *memoCache[K, V], k K, compute func() (V, error)) (V, error) {
	if v, ok := c.get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return v, err
	}
	c.put(k, v)
	return v, nil
}
