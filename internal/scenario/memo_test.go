package scenario

import (
	"sync"
	"testing"
)

func TestMemoCacheBasics(t *testing.T) {
	c := newMemoCache[int, string](4)
	if _, ok := c.get(1); ok {
		t.Fatal("empty cache reported a hit")
	}
	v, err := memoize(c, 1, func() (string, error) { return "one", nil })
	if err != nil || v != "one" {
		t.Fatalf("memoize = (%q, %v)", v, err)
	}
	calls := 0
	v, err = memoize(c, 1, func() (string, error) { calls++; return "recomputed", nil })
	if err != nil || v != "one" || calls != 0 {
		t.Fatalf("second memoize = (%q, %v), calls = %d; want cached \"one\", 0 calls", v, err, calls)
	}
}

func TestMemoCacheBoundedReset(t *testing.T) {
	c := newMemoCache[int, int](4)
	for i := 0; i < 10; i++ {
		c.put(i, i)
	}
	if n := len(c.m); n > 4 {
		t.Fatalf("cache grew to %d entries, limit 4", n)
	}
	// The most recent entry always survives its own put.
	if v, ok := c.get(9); !ok || v != 9 {
		t.Fatalf("latest entry missing: (%d, %v)", v, ok)
	}
}

// TestMemoizedBackendsStable: the memoized analytic and queueing backends
// return the same metrics on repeated and concurrent evaluations, and
// agree with a fresh (cold-cache) evaluation.
func TestMemoizedBackendsStable(t *testing.T) {
	s, err := Find("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 7, Quick: true}
	first, err := Run(s, "analytic", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]Result, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := Run(s, "analytic", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		for k, v := range first.Metrics {
			if r.Metrics[k] != v {
				t.Fatalf("concurrent run %d: metric %s = %g, want %g", i, k, r.Metrics[k], v)
			}
		}
	}

	// A parcel scenario exercises the MVA memo the same way.
	ps, err := Find("fig11-point")
	if err != nil {
		t.Fatal(err)
	}
	q1, err := Run(ps, "queueing", cfg)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Run(ps, "queueing", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range q1.Metrics {
		if q2.Metrics[k] != v {
			t.Fatalf("queueing metric %s changed across memoized runs: %g vs %g", k, q2.Metrics[k], v)
		}
	}
}

// TestMeasureKernelMemoized: the second fitted-workload HostParams call
// with identical (kernel, seed, quick) serves the measurement from cache
// and produces identical parameters.
func TestMeasureKernelMemoized(t *testing.T) {
	s, err := Find("kernel-stream")
	if err != nil {
		t.Skip("no fitted preset named kernel-stream")
	}
	cfg := Config{Seed: 11, Quick: true}
	p1, err := s.HostParams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.HostParams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("fitted HostParams diverged across memoized calls:\n%+v\n%+v", p1, p2)
	}
}
