package scenario

import (
	"fmt"
	"sort"

	"repro/internal/hostpim"
)

// table1Machine is the paper's Table 1 machine with the study-2 PIM-node
// memory time and no interconnect (scenarios that communicate set Latency).
func table1Machine() Machine {
	return Machine{
		N:         1,
		TLCycle:   5,
		TMH:       90,
		TCH:       2,
		TML:       30,
		Pmiss:     0.1,
		PmissLow:  1.0,
		MemCycles: 10,
	}
}

// table1Workload is the study-1 workload at the paper's full scale.
func table1Workload() Workload {
	return Workload{W: 100e6, MixLS: 0.30}
}

// study1Scenario builds a study-1 preset with the paper's locality-aware
// control (the Fig. 5 normalization).
func study1Scenario(name, about string, pctWL float64, n int) Scenario {
	s := Scenario{
		Name: name, About: about,
		Machine: table1Machine(), Workload: table1Workload(),
		Control: hostpim.ControlLocalityAware,
	}
	s.Workload.PctWL = pctWL
	s.Machine.N = n
	return s
}

// parcelScenario builds a study-2 preset.
func parcelScenario(name, about string, nodes, par int, remote, latency, horizon float64) Scenario {
	s := Scenario{Name: name, About: about, Machine: table1Machine(), Workload: table1Workload()}
	s.Workload.W = 0 // pure communication study: no host phase
	s.Machine.N = nodes
	s.Workload.Parallelism = par
	s.Workload.RemoteFrac = remote
	s.Machine.Latency = latency
	s.Workload.Horizon = horizon
	return s
}

// hybridScenario builds a composition preset with widened tolerances: the
// closed forms and the calibrated simulation legitimately diverge on the
// composed totals (the repo's combined experiment brackets them at 20%),
// and below saturation the Saavedra-Barrera efficiency is an idealization
// that ignores parcel-queue imbalance across nodes — the paper invokes it
// qualitatively (§5.2) — sitting up to ~0.2 above the DES and MVA models,
// which agree with each other to a few points.
func hybridScenario(name, about string, pctWL float64, n, par int, remote, latency, horizon float64) Scenario {
	s := study1Scenario(name, about, pctWL, n)
	s.Workload.Parallelism = par
	s.Workload.RemoteFrac = remote
	s.Machine.Latency = latency
	s.Workload.Horizon = horizon
	s.Tol = map[string]float64{
		MetricGain:       0.20,
		MetricTotal:      0.20,
		MetricRelative:   0.20,
		MetricEfficiency: 0.30,
		MetricTestIdle:   0.30,
	}
	return s
}

// machineScenario builds an execution-driven preset: the named ISA
// program on an n-node VM with the Table-1-derived LWP timing (memory 6
// cycles, hardware-assisted spawn) and a flat interconnect.
func machineScenario(name, about, program string, n, par, updates int, latency float64) Scenario {
	s := Scenario{Name: name, About: about, Machine: table1Machine(), Workload: table1Workload()}
	s.Machine.N = n
	s.Machine.MemCycles = 6
	s.Machine.Latency = latency
	s.Workload.Program = program
	s.Workload.Parallelism = par
	s.Workload.Updates = updates
	return s
}

// kernelScenario builds a preset whose workload parameters are fitted from
// a named internal/workload kernel.
func kernelScenario(kernel string, n int, weight float64) Scenario {
	s := study1Scenario("kernel-"+kernel, "fitted from the "+kernel+" kernel: "+kernelAbouts[kernel], 0, n)
	s.Workload.Kernel = kernel
	s.Workload.KernelWeight = weight
	return s
}

// presets holds all named scenarios in presentation order.
var presets = []Scenario{
	study1Scenario("paper-baseline",
		"Table 1 point: half the work is low-locality, 32 PIM nodes", 0.5, 32),
	study1Scenario("paper-extreme",
		"the text's ~100X regime: all work low-locality on 256 nodes", 1.0, 256),
	func() Scenario {
		s := study1Scenario("balanced-overlap",
			"HWP and LWP phases overlapped near the balance point (N=16)", 0.84, 16)
		s.Overlap = true
		return s
	}(),
	study1Scenario("scale-1k",
		"scale-out: 1024 PIM nodes carrying 90% of the work", 0.9, 1024),
	parcelScenario("fig11-point",
		"the Fig. 11/12 reproduction point: 16 nodes, 4 parcels, 200-cycle latency",
		16, 4, 0.3, 200, 200000),
	parcelScenario("latency-extreme",
		"deep latency regime: 5000-cycle interconnect hidden by 32 parcels",
		16, 32, 0.5, 5000, 100000),
	parcelScenario("latency-low",
		"short-latency regime where parcels barely pay for themselves",
		16, 2, 0.3, 10, 100000),
	func() Scenario {
		s := parcelScenario("parcel-software",
			"software-only parcel overheads (the A2 cost point)",
			16, 8, 0.5, 200, 100000)
		s.Software = true
		return s
	}(),
	parcelScenario("parcel-scale-256",
		"scale-out communication: 256 nodes, 8 parcels, 500-cycle latency",
		256, 8, 0.4, 500, 20000),
	func() Scenario {
		s := parcelScenario("parcel-scale-1k",
			"the DES big run: 1024 nodes, 8 parcels, 500-cycle latency, partitioned sim kernel",
			1024, 8, 0.4, 500, 20000)
		// The sim-backend parallel showcase (machine-gups-256 is the VM
		// counterpart): parcelsys partitions the nodes across 4 workers,
		// and the windowed kernel keeps the metrics identical for every
		// worker count >= 1.
		s.Machine.RunParallel = 4
		return s
	}(),
	hybridScenario("hybrid-baseline",
		"study 1 under study-2 communication: 30% remote, 200 cycles, 4 parcels",
		0.5, 32, 4, 0.3, 200, 40000),
	hybridScenario("hybrid-saturated",
		"deep-latency hybrid saturated by 64 parcels per node",
		0.5, 32, 64, 0.3, 2000, 40000),
	kernelScenario("stream", 32, 0.6),
	kernelScenario("gups", 32, 0.6),
	kernelScenario("pointer-chase", 32, 0.6),
	kernelScenario("stencil", 32, 0.6),
	kernelScenario("histogram", 32, 0.6),
	machineScenario("machine-gups",
		"execution-driven GUPS: LCG random updates, 16 VM nodes x 4 threads",
		"gups", 16, 4, 512, 200),
	machineScenario("machine-treesum",
		"parcel-fanout tree sum in PIM assembly across 8 VM nodes",
		"treesum", 8, 1, 256, 200),
	func() Scenario {
		s := machineScenario("machine-ping",
			"flat-network parcel ping 0<->8: exact closed form cross-validates the VM",
			"ping", 16, 1, 64, 200)
		// The analytic counterpart is cycle-exact on the flat network, so
		// pin the agreement tight: any VM timing drift must trip it.
		s.Tol = map[string]float64{MetricTotal: 0.001}
		return s
	}(),
	func() Scenario {
		s := machineScenario("machine-gups-256",
			"the big run: GUPS on 256 VM nodes x 4 threads over a 16x16 torus",
			"gups", 256, 4, 128, 20)
		s.Machine.Topology = "torus"
		// The parallel showcase: partitioned across 4 workers, with the
		// conservative windows keeping the metrics byte-identical to a
		// serial run (RunParallel 0) of the same point.
		s.Machine.RunParallel = 4
		return s
	}(),
	func() Scenario {
		s := machineScenario("machine-dram",
			"wide-word stream triad over per-node DRAM row-buffer timing (open page)",
			"triad", 4, 1, 1024, 200)
		s.Machine.MemWords = 32768
		s.Machine.PagePolicy = "open"
		return s
	}(),
	func() Scenario {
		s := machineScenario("machine-treesum-faults",
			"tree sum on a lossy interconnect: 12% drop, 6% corrupt, 10% dup, jitter, reliable retransmit",
			"treesum", 16, 1, 256, 200)
		s.Machine.FaultDrop = 0.12
		s.Machine.FaultCorrupt = 0.06
		s.Machine.FaultDup = 0.10
		s.Machine.FaultJitter = 8
		// A fixed plan seed keeps the preset's faults (and so its
		// degraded metrics) identical across replications and sweeps;
		// sweep faultseed to explore other draws.
		s.Machine.FaultSeed = 0x9142
		return s
	}(),
	func() Scenario {
		s := machineScenario("machine-gups-straggler",
			"GUPS with a deterministic quarter of the nodes slowed 3x (straggler plan)",
			"gups", 16, 4, 256, 200)
		s.Machine.Straggler = 3
		s.Machine.FaultSeed = 0x9142
		return s
	}(),
}

// Presets returns all named scenarios in presentation order. The slice is
// shared; treat it as read-only (Scenario values are copied on use).
func Presets() []Scenario { return presets }

// PresetNames returns the preset names in presentation order.
func PresetNames() []string {
	out := make([]string, len(presets))
	for i, s := range presets {
		out[i] = s.Name
	}
	return out
}

// Find returns the named preset by value.
func Find(name string) (Scenario, error) {
	for _, s := range presets {
		if s.Name == name {
			return s, nil
		}
	}
	known := append([]string(nil), PresetNames()...)
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("scenario: unknown preset %q (known: %v)", name, known)
}

// MustFind is Find for static preset names; it panics on unknown names.
func MustFind(name string) Scenario {
	s, err := Find(name)
	if err != nil {
		panic(err)
	}
	return s
}
